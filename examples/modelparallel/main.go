// Modelparallel: the paper's §7 extension sketch. A pipeline
// (model-parallel) training job is split into per-worker stage vectors —
// the head worker loads and preprocesses data, interior workers exchange
// activations over the network, the tail worker synchronizes gradients —
// and each worker then schedules and interleaves exactly like a
// data-parallel job. The example splits GPT-2 four ways, shows how the
// bottleneck shifts per worker, and interleaves the pipeline's own
// workers into one group.
package main

import (
	"fmt"
	"log"
	"time"

	"muri"
	"muri/internal/workload"
)

func main() {
	m, err := muri.ModelByName("gpt2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gpt2 data-parallel profile: %v (bottleneck %s)\n\n",
		m.Stages, m.Bottleneck())

	workers, err := workload.ModelParallelWorkers(m, workload.ModelParallelConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-way pipeline split (storage, cpu, gpu, network per iteration):")
	for i, st := range workers {
		role := "interior"
		switch i {
		case 0:
			role = "head"
		case len(workers) - 1:
			role = "tail"
		}
		fmt.Printf("  worker %d (%-8s) [%8v %8v %8v %8v]  bottleneck=%s\n",
			i, role, st[0], st[1], st[2], st[3], st.Bottleneck())
	}

	// The pipeline's own workers have complementary profiles, so Muri can
	// interleave them with one another (or with other jobs) like any
	// staged job — the paper's point (i) in §7.
	plan := muri.PlanGroup(workers)
	fmt.Printf("\ninterleaving the four pipeline workers on one resource set:\n")
	fmt.Printf("  ordering %v, iteration %v, efficiency γ = %.2f\n",
		plan.Order, plan.IterTime.Round(time.Millisecond), plan.Efficiency)

	solo := workers[0].Total() + workers[1].Total() + workers[2].Total() + workers[3].Total()
	fmt.Printf("  serial sum %v → grouped %v per iteration\n",
		solo.Round(time.Millisecond), plan.IterTime.Round(time.Millisecond))
}
