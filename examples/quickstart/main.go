// Quickstart: the multi-resource interleaving calculus on the paper's
// motivating example (§2.2, Table 2). Four jobs bottlenecked on four
// different resources are planned as one interleaving group; the program
// prints the chosen stage ordering, the group iteration time (Eq. 3), the
// interleaving efficiency γ (Eq. 4), and each job's normalized throughput.
package main

import (
	"fmt"
	"log"
	"time"

	"muri"
)

func main() {
	names := []string{"shufflenet", "a2c", "gpt2", "vgg16"}
	var profiles []muri.StageTimes
	fmt.Println("jobs:")
	for _, name := range names {
		m, err := muri.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s bottleneck=%-8s serial iteration=%v\n",
			m.Name, m.Bottleneck(), m.Stages.Total().Round(time.Millisecond))
		profiles = append(profiles, m.Stages)
	}

	plan := muri.PlanGroup(profiles)
	fmt.Printf("\ninterleaving plan:\n")
	fmt.Printf("  stage ordering:        %v\n", plan.Order)
	fmt.Printf("  group iteration time:  %v (Eq. 3)\n", plan.IterTime.Round(time.Millisecond))
	fmt.Printf("  efficiency γ:          %.2f (Eq. 4)\n", plan.Efficiency)

	total := 0.0
	fmt.Printf("\nnormalized throughput when grouped (Table 2):\n")
	ordered := make([]muri.StageTimes, len(plan.Order))
	orderedNames := make([]string, len(plan.Order))
	for pos, idx := range plan.Order {
		ordered[pos] = profiles[idx]
		orderedNames[pos] = names[idx]
	}
	for i, p := range ordered {
		norm := float64(p.Total()) / float64(plan.IterTime)
		total += norm
		fmt.Printf("  %-10s %.2f\n", orderedNames[i], norm)
	}
	fmt.Printf("  %-10s %.2f  (the paper measures 2.00 on its testbed)\n", "total", total)

	// Contrast with a badly matched group: four copies of the same job.
	m, _ := muri.ModelByName("gpt2")
	same := []muri.StageTimes{m.Stages, m.Stages, m.Stages, m.Stages}
	bad := muri.PlanGroup(same)
	fmt.Printf("\nfor contrast, grouping four identical gpt2 jobs: γ = %.2f — "+
		"interleaving only pays off for complementary jobs\n", bad.Efficiency)
}
