// Tracesim: a trace-driven scheduler comparison on a synthetic
// Philly-like workload — the core experiment of the paper's evaluation,
// at laptop scale. It generates a 300-job trace, replays it under six
// schedulers on a 64-GPU simulated cluster, and prints the resulting
// average JCT, makespan, and tail JCT with speedups relative to Muri.
package main

import (
	"fmt"
	"time"

	"muri"
)

func main() {
	tr := muri.GenerateTrace(muri.TraceGen{
		Name:             "demo",
		Jobs:             300,
		Seed:             7,
		MeanInterarrival: 45 * time.Second,
		MaxGPUs:          64,
	})
	fmt.Printf("trace %q: %d jobs, %.0f GPU-hours\n\n", tr.Name, len(tr.Specs), tr.TotalGPUHours())

	cfg := muri.DefaultSimConfig()
	policies := []muri.Policy{
		muri.SRTF(), muri.SRSF(), muri.Tiresias(), muri.Themis(), muri.MuriS(), muri.MuriL(),
	}
	var muriS muri.Summary
	results := make(map[string]muri.Summary, len(policies))
	for _, p := range policies {
		res := muri.Simulate(cfg, tr, p)
		results[p.Name()] = res.Summary
		if p.Name() == "muri-s" {
			muriS = res.Summary
		}
	}

	fmt.Printf("%-9s  %12s  %12s  %12s  %s\n", "policy", "avg JCT", "makespan", "p99 JCT", "JCT vs muri-s")
	for _, p := range policies {
		s := results[p.Name()]
		fmt.Printf("%-9s  %12v  %12v  %12v  %.2fx\n",
			p.Name(),
			s.AvgJCT.Round(time.Minute),
			s.Makespan.Round(time.Minute),
			s.P99JCT.Round(time.Minute),
			float64(s.AvgJCT)/float64(muriS.AvgJCT))
	}
	fmt.Println("\n(Muri interleaves jobs bottlenecked on different resources onto the same GPUs,")
	fmt.Println(" so queued jobs start earlier; the baselines allocate GPUs exclusively.)")
}
