// Distributed: the full scheduler⇄executor prototype in one process —
// the architecture of the paper's Figure 3 over real TCP on loopback.
// A Muri scheduler daemon starts, two executor "machines" register, a
// client submits twelve jobs with mixed bottlenecks, the scheduler
// profiles first-seen models with dry runs, groups jobs with the
// Blossom-based algorithm, and the executors run the groups with
// per-stage synchronization barriers. Virtual time is compressed 2000×
// so the whole run takes a few seconds.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"muri"
	"muri/internal/executor"
)

func main() {
	srv := muri.NewServer(muri.ServerConfig{
		Policy:      muri.MuriL(),
		Interval:    50 * time.Millisecond,
		TimeScale:   0.0005, // 1 virtual second = 0.5 ms wall
		ReportEvery: 25 * time.Millisecond,
		Logf:        func(string, ...any) {}, // quiet
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("scheduler listening on %s\n", addr)

	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		agent := &executor.Agent{
			MachineID: fmt.Sprintf("machine-%d", i),
			GPUs:      8,
			Logf:      func(string, ...any) {},
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = agent.Run(ctx, addr) }()
	}

	client, err := muri.DialScheduler(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	models := []string{"shufflenet", "a2c", "gpt2", "vgg16"}
	fmt.Println("submitting 12 jobs (3 of each bottleneck class):")
	for i := 0; i < 12; i++ {
		model := models[i%4]
		id, err := client.Submit(model, 1, 80)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  job %2d: %s\n", id, model)
	}

	start := time.Now()
	st, err := client.WaitAllDone(60*time.Second, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d jobs finished in %v wall time\n", st.Done, time.Since(start).Round(time.Millisecond))
	fmt.Println("virtual job completion times:")
	for _, j := range st.Jobs {
		fmt.Printf("  job %2d %-10s JCT=%v\n", j.ID, j.Model, j.JCT.Round(time.Second))
	}

	cancel()
	srv.Close()
	wg.Wait()
}
