// Ablation: the design-choice experiments of Figures 11 and 12 at small
// scale. It compares Muri-L against its worst-stage-ordering and
// no-Blossom variants, and sweeps the maximum group size from 2 to 4 on a
// fully loaded (zero-submit) trace.
package main

import (
	"fmt"
	"time"

	"muri"
	"muri/internal/core"
	"muri/internal/sched"
)

func variant(label string, mutate func(*core.Config)) *sched.Muri {
	p := sched.NewMuriL()
	p.Label = label
	mutate(&p.Grouping)
	return p
}

func main() {
	tr := muri.GenerateTrace(muri.TraceGen{
		Name: "ablation", Jobs: 250, Seed: 11, MaxGPUs: 64,
		MeanInterarrival: 45 * time.Second,
	}).ZeroSubmit()
	cfg := muri.DefaultSimConfig()

	fmt.Println("Figure 11-style ablation: ordering and matching choices")
	base := muri.Simulate(cfg, tr, muri.MuriL()).Summary
	fmt.Printf("  %-22s avgJCT=%v makespan=%v\n", "muri-l", base.AvgJCT.Round(time.Minute), base.Makespan.Round(time.Minute))
	for _, p := range []*sched.Muri{
		variant("muri-l w/ worst order", func(c *core.Config) { c.WorstOrdering = true }),
		variant("muri-l w/o blossom", func(c *core.Config) { c.UseBlossom = false }),
	} {
		s := muri.Simulate(cfg, tr, p).Summary
		fmt.Printf("  %-22s avgJCT=%v (%.2fx of muri-l) makespan=%v (%.2fx)\n",
			p.Name(), s.AvgJCT.Round(time.Minute), float64(s.AvgJCT)/float64(base.AvgJCT),
			s.Makespan.Round(time.Minute), float64(s.Makespan)/float64(base.Makespan))
	}

	fmt.Println("\nFigure 12-style ablation: maximum jobs per group")
	for _, max := range []int{2, 3, 4} {
		maxSize := max
		p := variant(fmt.Sprintf("muri-l-%d", maxSize), func(c *core.Config) { c.MaxGroupSize = maxSize })
		s := muri.Simulate(cfg, tr, p).Summary
		fmt.Printf("  %-10s avgJCT=%v makespan=%v\n",
			p.Name(), s.AvgJCT.Round(time.Minute), s.Makespan.Round(time.Minute))
	}
	antman := muri.Simulate(cfg, tr, muri.AntMan()).Summary
	fmt.Printf("  %-10s avgJCT=%v makespan=%v (GPU sharing without interleaving)\n",
		"antman", antman.AvgJCT.Round(time.Minute), antman.Makespan.Round(time.Minute))
}
