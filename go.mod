module muri

go 1.22
