#!/usr/bin/env bash
# Explain/provenance smoke: boot a durable murisched, run a short
# preemption-bearing workload to completion, capture each job's live
# `murictl explain` output, SIGKILL the daemon, and reconstruct the
# same explanations offline with muritrace from the abandoned
# -state-dir. The reconstruction must be byte-identical to the live
# RPC output (diff, rc-checked) — the explain subsystem's core
# guarantee that the WAL alone carries full decision provenance.
#
# Run from the repo root (CI) or anywhere (it cds itself):
#   ./scripts/smoke_explain.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STATE="$WORK/state"
ADDR=127.0.0.1:7809
SCHED_PID=""
EXEC_PID=""
cleanup() {
  [ -n "$EXEC_PID" ] && kill "$EXEC_PID" 2>/dev/null || true
  [ -n "$SCHED_PID" ] && kill -9 "$SCHED_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/murisched" ./cmd/murisched
go build -o "$WORK/muriexec" ./cmd/muriexec
go build -o "$WORK/murictl" ./cmd/murictl
go build -o "$WORK/muritrace" ./cmd/muritrace

ctl() { "$WORK/murictl" -scheduler "$ADDR" "$@"; }

# poll <description> <seconds> <extended-regex on murictl status output>
poll() {
  local desc=$1 secs=$2 pat=$3 out="" i
  for i in $(seq 1 $((secs * 10))); do
    out=$(ctl status 2>/dev/null || true)
    if grep -qE "$pat" <<<"$out"; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: timed out waiting for: $desc" >&2
  echo "$out" >&2
  exit 1
}

echo "== boot durable daemon (state dir $STATE)"
"$WORK/murisched" -addr "$ADDR" -policy srtf -interval 20ms \
  -timescale 0.0005 -report 10ms \
  -state-dir "$STATE" -fsync-every 1 -snapshot-interval 100ms &
SCHED_PID=$!
"$WORK/muriexec" -scheduler "$ADDR" -machine m0 -gpus 8 &
EXEC_PID=$!
poll "executor registration" 10 'executors=1'

echo "== load: a long job, then a shorter one that preempts it (SRTF)"
ctl submit -model gpt2 -gpus 8 -iters 2400
poll "job 1 running" 20 'running=1'
ctl submit -model gpt2 -gpus 8 -iters 1200
ctl wait -timeout 2m
ctl status | grep -qE 'done=2' || { echo "FAIL: expected done=2" >&2; exit 1; }

echo "== capture live explanations"
ctl explain -job 1 | tee "$WORK/live-1.txt"
ctl explain -job 2 | tee "$WORK/live-2.txt"
for j in 1 2; do
  grep -q 'completed' "$WORK/live-$j.txt" \
    || { echo "FAIL: job $j explanation shows no completion" >&2; exit 1; }
  grep -q 'service' "$WORK/live-$j.txt" \
    || { echo "FAIL: job $j explanation lacks service attribution" >&2; exit 1; }
done
grep -q 'preemptions 1' "$WORK/live-1.txt" \
  || { echo "FAIL: job 1 explanation does not show its preemption" >&2; exit 1; }

echo "== SIGKILL the daemon; reconstruct offline from the WAL alone"
kill -9 "$SCHED_PID"
wait "$SCHED_PID" 2>/dev/null || true
SCHED_PID=""
for j in 1 2; do
  "$WORK/muritrace" -state-dir "$STATE" explain -job "$j" > "$WORK/offline-$j.txt"
  diff -u "$WORK/live-$j.txt" "$WORK/offline-$j.txt" || {
    echo "FAIL: job $j offline reconstruction diverges from the live explain RPC" >&2
    exit 1
  }
done

echo "== lifecycle spans export as Chrome trace JSON"
"$WORK/muritrace" -state-dir "$STATE" spans -o "$WORK/spans.json"
grep -q '"ph":"X"' "$WORK/spans.json" \
  || { echo "FAIL: spans.json has no duration events" >&2; exit 1; }

echo "OK: explain smoke passed (live RPC == WAL reconstruction, byte-identical)"
