#!/usr/bin/env bash
# Kill-and-recover smoke: boot a durable murisched, load it with running
# jobs, SIGKILL the daemon mid-run, restart it from the same -state-dir,
# and assert it recovers — the executor re-registers, its surviving
# groups are adopted (no restarts), and every job finishes. Each step is
# rc-checked; the script fails loudly on any timeout.
#
# Run from the repo root (CI) or anywhere (it cds itself):
#   ./scripts/smoke_recover.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STATE="$WORK/state"
ADDR=127.0.0.1:7807
SCHED_PID=""
EXEC_PID=""
cleanup() {
  [ -n "$EXEC_PID" ] && kill "$EXEC_PID" 2>/dev/null || true
  [ -n "$SCHED_PID" ] && kill -9 "$SCHED_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/murisched" ./cmd/murisched
go build -o "$WORK/muriexec" ./cmd/muriexec
go build -o "$WORK/murictl" ./cmd/murictl

ctl() { "$WORK/murictl" -scheduler "$ADDR" "$@"; }

start_sched() {
  "$WORK/murisched" -addr "$ADDR" -policy srtf -interval 20ms \
    -timescale 0.0005 -report 10ms \
    -state-dir "$STATE" -fsync-every 1 -snapshot-interval 100ms &
  SCHED_PID=$!
}

# poll <description> <seconds> <extended-regex on murictl status output>
poll() {
  local desc=$1 secs=$2 pat=$3 out="" i
  for i in $(seq 1 $((secs * 10))); do
    out=$(ctl status 2>/dev/null || true)
    if grep -qE "$pat" <<<"$out"; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: timed out waiting for: $desc" >&2
  echo "$out" >&2
  exit 1
}

echo "== boot durable daemon (state dir $STATE)"
start_sched
"$WORK/muriexec" -scheduler "$ADDR" -machine m0 -gpus 8 &
EXEC_PID=$!
poll "executor registration" 10 'executors=1'

echo "== load: two jobs sharing the machine"
ctl submit -model gpt2 -gpus 4 -iters 3000
ctl submit -model gpt2 -gpus 4 -iters 3000
poll "both jobs running" 20 'running=2'

echo "== SIGKILL the daemon mid-run"
kill -9 "$SCHED_PID"
wait "$SCHED_PID" 2>/dev/null || true

echo "== restart from the same state dir"
start_sched
poll "durable state recovered" 10 'durability: role=solo'
poll "executor re-registered" 15 'executors=1'
poll "running groups adopted or finished" 20 'running=2|done=2'

echo "== drain"
ctl wait -timeout 2m
ctl status
ctl status | grep -qE 'done=2' || { echo "FAIL: expected done=2" >&2; exit 1; }
# Adoption means no machine-lost requeues: the crash recovery kept the
# running groups alive end to end.
if ctl status | grep -qE 'requeues=[1-9]'; then
  echo "FAIL: recovery requeued jobs instead of adopting the surviving groups" >&2
  exit 1
fi
echo "OK: kill-and-recover smoke passed"
