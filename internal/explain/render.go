package explain

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"muri/internal/telemetry"
)

// RenderJob renders one job's explanation: a header, the span
// timeline, the exact wait-time attribution table, notes, and fault /
// preemption counters. The output is deterministic given the builder
// state — the bit-identity tests diff the live daemon's rendering
// against an offline reconstruction byte-for-byte. Unknown jobs render
// a one-line miss (callers decide whether that is an error).
func (b *Builder) RenderJob(id int64) string {
	js := b.jobs[id]
	if js == nil {
		return fmt.Sprintf("job %d: no provenance recorded\n", id)
	}
	var w strings.Builder

	fmt.Fprintf(&w, "job %d", js.ID)
	var meta []string
	if js.Model != "" {
		meta = append(meta, js.Model)
	}
	if js.GPUs > 0 {
		meta = append(meta, fmt.Sprintf("%d GPUs", js.GPUs))
	}
	if js.Tenant != "" {
		meta = append(meta, "tenant "+js.Tenant)
	}
	if len(meta) > 0 {
		fmt.Fprintf(&w, " (%s)", strings.Join(meta, ", "))
	}
	w.WriteByte('\n')

	fmt.Fprintf(&w, "  submitted %s  admitted %s", vdur(js.OriginV), vdur(js.AdmitV))
	if js.Dispatched {
		fmt.Fprintf(&w, "  first-dispatch %s", vdur(js.FirstDispatchV))
	}
	switch {
	case js.Dead:
		fmt.Fprintf(&w, "  dead-lettered %s", vdur(js.FinishedV))
	case js.Done:
		fmt.Fprintf(&w, "  completed %s  jct %s", vdur(js.FinishedV), vdur(js.FinishedV-js.OriginV))
	default:
		fmt.Fprintf(&w, "  in-flight at %s", vdur(b.clockV))
	}
	w.WriteByte('\n')

	spans := append([]Span(nil), js.Spans...)
	spans = append(spans, b.openAsSpans(js)...)
	if len(spans) > 0 {
		w.WriteString("  timeline:\n")
		for i, s := range spans {
			open := ""
			if js.OpenCause != "" && i >= len(js.Spans) {
				open = " (open)"
			}
			fmt.Fprintf(&w, "    %-16s %12s  [%s .. %s)%s", s.Cause,
				vdur(s.EndV-s.StartV), vdur(s.StartV), vdur(s.EndV), open)
			if s.Detail != "" {
				w.WriteString("  ")
				w.WriteString(s.Detail)
			}
			w.WriteByte('\n')
		}
	}

	at, _ := b.AttributionOf(id)
	w.WriteString("  attribution:\n")
	for _, c := range Causes {
		d := at.PerCause[c]
		if d == 0 && c != CauseService {
			continue
		}
		share := 0.0
		if at.Total > 0 {
			share = 100 * float64(d) / float64(at.Total)
		}
		fmt.Fprintf(&w, "    %-16s %12s  %5.1f%%\n", c, vdur(d), share)
	}
	fmt.Fprintf(&w, "    %-16s %12s\n", "total", vdur(at.Total))

	if len(js.Notes) > 0 {
		w.WriteString("  notes:\n")
		for _, n := range js.Notes {
			fmt.Fprintf(&w, "    %s %s", vdur(n.V), n.Cause)
			if n.Detail != "" {
				w.WriteString(": ")
				w.WriteString(n.Detail)
			}
			w.WriteByte('\n')
		}
	}
	if js.Faults > 0 || js.Preemptions > 0 {
		fmt.Fprintf(&w, "  faults %d  preemptions %d\n", js.Faults, js.Preemptions)
	}
	return w.String()
}

// RenderAll renders every known job in ascending ID order, separated
// by blank lines — muritrace's whole-log view.
func (b *Builder) RenderAll() string {
	var w strings.Builder
	for i, id := range b.Jobs() {
		if i > 0 {
			w.WriteByte('\n')
		}
		w.WriteString(b.RenderJob(id))
	}
	return w.String()
}

// vdur formats a virtual-nanosecond stamp as a duration.
func vdur(v int64) string { return time.Duration(v).String() }

// EmitJobSpans exports one job's closed lifecycle spans to the trace
// as real duration events: one "explain" process, one thread per job,
// one complete (ph "X") event per span with the cause as the event
// name and the detail in args. Called at completion so the Chrome
// trace shows the same attribution the explain RPC reports.
func (b *Builder) EmitJobSpans(tr *telemetry.Tracer, id int64) {
	if !tr.Enabled() {
		return
	}
	js := b.jobs[id]
	if js == nil {
		return
	}
	pid := tr.Process("explain")
	tid := tr.Thread(pid, fmt.Sprintf("job %d", js.ID))
	for _, s := range js.Spans {
		var args map[string]any
		if s.Detail != "" {
			args = map[string]any{"detail": s.Detail}
		}
		tr.Span(pid, tid, s.Cause, "explain",
			time.Duration(s.StartV), time.Duration(s.EndV-s.StartV), args)
	}
}

// EmitSpans exports every known job's closed spans (muritrace's trace
// output and end-of-run simulator export).
func (b *Builder) EmitSpans(tr *telemetry.Tracer) {
	for _, id := range b.Jobs() {
		b.EmitJobSpans(tr, id)
	}
}

// SortedCauses returns the attribution's causes with nonzero time in
// canonical order — the iteration order for per-cause histogram
// observation, kept here so server and sim observe identically.
func (at Attribution) SortedCauses() []string {
	out := make([]string, 0, len(at.PerCause))
	for _, c := range Causes {
		if at.PerCause[c] > 0 {
			out = append(out, c)
		}
	}
	// Defensive: include any cause outside the canonical list too.
	var extra []string
	for c, d := range at.PerCause {
		if d > 0 && !contains(Causes, c) {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
