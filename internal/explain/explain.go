// Package explain is the decision-provenance subsystem: it folds the
// daemon's durable record stream — admissions, engine decisions, fault
// ledger mutations, completions, and the structured cause annotations
// each decision site attaches — into per-job lifecycle spans with exact
// wait-time attribution. Every nanosecond of a job's completion time is
// assigned to exactly one cause, so "why is my job waiting?" has a
// number, not a guess.
//
// The builder is deliberately driven by wal.Record values only. The
// live daemon feeds it the records it appends (before the no-WAL
// early-out, so explanations work even without a state dir); recovery
// feeds it the replayed tail on top of the snapshot-restored state; and
// the offline muritrace tool feeds it the recovered log from disk. All
// three paths run the identical fold, which is what makes the live
// `murictl explain` output and the offline reconstruction byte-
// identical — a property the tests pin.
//
// Time is virtual throughout (the same clock the decision stream and
// trace use), so explanations are invariant under -timescale.
package explain

import (
	"encoding/json"
	"sort"
	"strconv"

	"muri/internal/wal"
)

// Causes partition a job's lifetime. Exactly one is open at any moment
// between a job's timeline origin and its completion.
const (
	// CauseIngestQueue is time between acceptance by the ingest queue and
	// the admission round that drained it into the engine.
	CauseIngestQueue = "ingest-queue"
	// CauseThrottled is time a submission spent rejected by tenant rate
	// limiting before a retry succeeded. The daemon rejects throttled
	// submissions outright rather than queueing them, so per-job
	// throttled time is attributed only when a driver synthesizes it;
	// the cause exists so the taxonomy is closed over every verdict the
	// admission layer can return.
	CauseThrottled = "throttled"
	// CauseCapacity is time waiting admitted: the cluster had no
	// capacity for the job (or none was registered, or admission-level
	// fragmentation blocked placement).
	CauseCapacity = "capacity"
	// CauseRankedBehind is time waiting while capacity existed but the
	// policy ordered other work ahead of this job.
	CauseRankedBehind = "ranked-behind"
	// CauseFaultBackoff is time serving a post-fault retry backoff.
	CauseFaultBackoff = "fault-backoff"
	// CauseAdoptionFreeze is time lost to the post-failover adoption
	// freeze, when the promoted daemon holds scheduling until executors
	// re-register.
	CauseAdoptionFreeze = "adoption-freeze"
	// CauseService is time actually running on GPUs.
	CauseService = "service"
)

// Causes lists the full taxonomy in canonical render order.
var Causes = []string{
	CauseIngestQueue,
	CauseThrottled,
	CauseCapacity,
	CauseRankedBehind,
	CauseFaultBackoff,
	CauseAdoptionFreeze,
	CauseService,
}

// Span is one closed interval [StartV, EndV) of a job's timeline,
// attributed to a single cause. Detail is the site-specific
// explanation (comparator keys, preemptor identity, retry budget...).
type Span struct {
	Cause  string `json:"cause"`
	Detail string `json:"detail,omitempty"`
	StartV int64  `json:"start_v"`
	EndV   int64  `json:"end_v"`
}

// Note annotates a job's timeline without consuming time (starvation
// boosts, for example).
type Note struct {
	V      int64  `json:"v"`
	Cause  string `json:"cause"`
	Detail string `json:"detail,omitempty"`
}

// JobState is one job's folded lifecycle.
type JobState struct {
	ID     int64  `json:"id"`
	Model  string `json:"model,omitempty"`
	GPUs   int    `json:"gpus,omitempty"`
	Tenant string `json:"tenant,omitempty"`

	// OriginV is the job's timeline origin: acceptance by the ingest
	// queue (SubmitV − WaitV). Attribution covers [OriginV, FinishedV).
	OriginV int64 `json:"origin_v"`
	// AdmitV is the admission round that drained the job into the
	// engine (= SubmitV of the admit record).
	AdmitV int64 `json:"admit_v"`
	// FirstDispatchV is the first launch, 0 until dispatched.
	FirstDispatchV int64 `json:"first_dispatch_v,omitempty"`
	// Dispatched disambiguates FirstDispatchV == 0 (a launch at v=0 is
	// legal in simulation).
	Dispatched bool `json:"dispatched,omitempty"`

	Spans []Span `json:"spans,omitempty"`
	Notes []Note `json:"notes,omitempty"`

	// Open span, if any.
	OpenCause  string `json:"open_cause,omitempty"`
	OpenDetail string `json:"open_detail,omitempty"`
	OpenStartV int64  `json:"open_start_v,omitempty"`

	// BackoffUntilV is the latest fault's backoff release time; closing
	// a fault-backoff span that straddles it splits the tail into
	// capacity (the backoff elapsed; the job then waited for space).
	BackoffUntilV int64 `json:"backoff_until_v,omitempty"`

	// FrozenPrev* stash the open cause across a global adoption freeze
	// so the prior wait cause resumes when the freeze lifts.
	FrozenPrevCause  string `json:"frozen_prev_cause,omitempty"`
	FrozenPrevDetail string `json:"frozen_prev_detail,omitempty"`
	FrozenStashed    bool   `json:"frozen_stashed,omitempty"`

	Done      bool  `json:"done,omitempty"`
	Dead      bool  `json:"dead,omitempty"`
	FinishedV int64 `json:"finished_v,omitempty"`

	Faults      int `json:"faults,omitempty"`
	Preemptions int `json:"preemptions,omitempty"`
}

// Builder folds wal.Records into per-job lifecycle state. Not safe for
// concurrent use; the daemon drives it under its scheduling lock.
type Builder struct {
	jobs   map[int64]*JobState
	frozen bool
	clockV int64
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{jobs: make(map[int64]*JobState)}
}

// Frozen reports whether the builder last saw an adoption-freeze start
// without a matching end (used by the daemon to re-derive its freeze
// marker state after a restore).
func (b *Builder) Frozen() bool { return b.frozen }

// ClockV is the virtual time of the latest record applied.
func (b *Builder) ClockV() int64 { return b.clockV }

// Jobs lists known job IDs in ascending order.
func (b *Builder) Jobs() []int64 {
	ids := make([]int64, 0, len(b.jobs))
	for id := range b.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Job returns the folded state for one job (nil if unknown).
func (b *Builder) Job(id int64) *JobState { return b.jobs[id] }

// Apply folds one record. Records must arrive in log order; kinds the
// explainer does not model (profile, group, term, progress) only
// advance the clock.
func (b *Builder) Apply(r *wal.Record) {
	if r == nil {
		return
	}
	if r.V > b.clockV {
		b.clockV = r.V
	}
	switch r.Kind {
	case wal.KindAdmit:
		if r.Admit != nil {
			b.applyAdmit(r.Admit)
		}
	case wal.KindDecision:
		if r.Decision != nil {
			b.applyDecision(r.V, r.Decision)
		}
	case wal.KindFault:
		if r.Fault != nil && r.Fault.Job != 0 {
			b.applyFault(r.Fault)
		}
	case wal.KindDone:
		if r.Done != nil {
			b.applyDone(r.Done)
		}
	case wal.KindCause:
		if r.Cause != nil {
			b.applyCause(r.V, r.Cause)
		}
	}
}

func (b *Builder) applyAdmit(a *wal.AdmitRecord) {
	for i := range a.Items {
		it := &a.Items[i]
		if b.jobs[it.Spec.ID] != nil {
			continue // replay overlap; first fold wins
		}
		js := &JobState{
			ID:      it.Spec.ID,
			Model:   it.Spec.Model,
			GPUs:    it.Spec.GPUs,
			Tenant:  it.Spec.Tenant,
			OriginV: it.SubmitV - it.WaitV,
			AdmitV:  it.SubmitV,
		}
		b.jobs[js.ID] = js
		if it.WaitV > 0 {
			detail := ""
			if it.Depth > 0 {
				detail = "behind " + strconv.Itoa(it.Depth) + " queued submissions"
			}
			b.addSpan(js, Span{Cause: CauseIngestQueue, Detail: detail,
				StartV: js.OriginV, EndV: js.AdmitV})
		}
		detail := "awaiting admission"
		if it.Profiling {
			detail = "awaiting model profile"
		}
		b.open(js, js.AdmitV, CauseCapacity, detail)
	}
}

func (b *Builder) applyDecision(v int64, d *wal.DecisionRecord) {
	for _, id := range d.Jobs {
		js := b.jobs[id]
		if js == nil {
			continue
		}
		switch d.Action {
		case "launch":
			if !js.Dispatched {
				js.Dispatched = true
				js.FirstDispatchV = v
			}
			b.transition(js, v, CauseService, d.Cause)
		case "kill":
			js.Preemptions++
			detail := d.Cause
			if detail == "" {
				detail = "preempted"
			}
			b.transition(js, v, CauseCapacity, detail)
		case "requeue":
			cause, detail := CauseCapacity, d.Cause
			if d.Reason == "fault" {
				cause = CauseFaultBackoff
			} else if detail == "" {
				detail = "machine lost"
			}
			b.transition(js, v, cause, detail)
		case "deadletter":
			b.closeOpen(js, v)
			js.Dead = true
			js.FinishedV = v
			if d.Cause != "" {
				js.Notes = append(js.Notes, Note{V: v, Cause: "deadletter", Detail: d.Cause})
			}
		}
	}
	// Jobs launched with a key but absent from d.Jobs do not exist:
	// engine decisions always carry member IDs.
}

func (b *Builder) applyFault(f *wal.FaultRecord) {
	js := b.jobs[f.Job]
	if js == nil {
		return
	}
	if f.Faults > js.Faults {
		js.Faults = f.Faults
	}
	if !f.DeadLettered && f.NotBeforeV > 0 {
		js.BackoffUntilV = f.NotBeforeV
	}
}

func (b *Builder) applyDone(d *wal.DoneRecord) {
	js := b.jobs[d.Job]
	if js == nil || js.Done {
		return
	}
	b.closeOpen(js, d.FinishedV)
	js.Done = true
	js.FinishedV = d.FinishedV
}

func (b *Builder) applyCause(v int64, c *wal.CauseRecord) {
	if c.Job == 0 && c.Cause == CauseAdoptionFreeze {
		b.applyFreeze(v, c.Detail == "start")
		return
	}
	js := b.jobs[c.Job]
	if js == nil {
		return
	}
	if c.Note {
		js.Notes = append(js.Notes, Note{V: v, Cause: c.Cause, Detail: c.Detail})
		return
	}
	// Wait-cause transition. Never displaces service: the engine does
	// not emit wait causes for jobs it placed this round, so a service
	// open span here means a stale record — ignore defensively.
	if js.OpenCause == CauseService || js.Done || js.Dead {
		return
	}
	b.transition(js, v, c.Cause, c.Detail)
}

// applyFreeze opens (or lifts) the global adoption-freeze cause across
// every waiting job, stashing each job's prior cause so it resumes
// when the freeze ends. Jobs in service keep running — an adoption
// freeze stalls scheduling, not adopted groups.
func (b *Builder) applyFreeze(v int64, start bool) {
	b.frozen = start
	for _, id := range b.Jobs() {
		js := b.jobs[id]
		if js.Done || js.Dead {
			continue
		}
		if start {
			if js.OpenCause == "" || js.OpenCause == CauseService || js.OpenCause == CauseAdoptionFreeze {
				continue
			}
			js.FrozenPrevCause, js.FrozenPrevDetail = js.OpenCause, js.OpenDetail
			js.FrozenStashed = true
			b.transition(js, v, CauseAdoptionFreeze, "scheduling frozen during executor adoption")
		} else if js.FrozenStashed {
			b.transition(js, v, js.FrozenPrevCause, js.FrozenPrevDetail)
			js.FrozenPrevCause, js.FrozenPrevDetail = "", ""
			js.FrozenStashed = false
		}
	}
}

// transition closes the open span at v and opens a new one. A
// same-cause transition only refreshes the detail, mirroring the
// engine's emit-on-change dedup.
func (b *Builder) transition(js *JobState, v int64, cause, detail string) {
	if js.OpenCause == cause {
		js.OpenDetail = detail
		return
	}
	b.closeOpen(js, v)
	b.open(js, v, cause, detail)
}

func (b *Builder) open(js *JobState, v int64, cause, detail string) {
	js.OpenCause, js.OpenDetail, js.OpenStartV = cause, detail, v
}

// closeOpen closes the open span at endV. A fault-backoff span that
// straddles the backoff release time splits there: the head was the
// backoff, the tail was waiting for capacity after it elapsed.
func (b *Builder) closeOpen(js *JobState, endV int64) {
	if js.OpenCause == "" {
		return
	}
	cause, detail, start := js.OpenCause, js.OpenDetail, js.OpenStartV
	js.OpenCause, js.OpenDetail, js.OpenStartV = "", "", 0
	if endV < start {
		endV = start
	}
	if cause == CauseFaultBackoff && js.BackoffUntilV > start && js.BackoffUntilV < endV {
		b.addSpan(js, Span{Cause: cause, Detail: detail, StartV: start, EndV: js.BackoffUntilV})
		b.addSpan(js, Span{Cause: CauseCapacity, Detail: "backoff elapsed; awaiting capacity",
			StartV: js.BackoffUntilV, EndV: endV})
		return
	}
	b.addSpan(js, Span{Cause: cause, Detail: detail, StartV: start, EndV: endV})
}

// addSpan appends a span, skipping zero-length intervals (they carry
// no time, and skipping them keeps attribution exact while keeping the
// rendered timeline readable).
func (b *Builder) addSpan(js *JobState, s Span) {
	if s.EndV <= s.StartV {
		return
	}
	js.Spans = append(js.Spans, s)
}

// Attribution is a job's exact wait-time breakdown.
type Attribution struct {
	// PerCause maps cause → total virtual nanoseconds. Every cause in
	// Causes has an entry (possibly zero).
	PerCause map[string]int64
	// Total is the attributed total. For completed jobs this equals
	// FinishedV − OriginV exactly; for live jobs it is ClockV − OriginV
	// (the open span counted up to the builder clock).
	Total int64
	// Done reports whether the job completed (or dead-lettered).
	Done bool
}

// AttributionOf computes a job's wait-time attribution. ok is false
// for unknown jobs.
func (b *Builder) AttributionOf(id int64) (Attribution, bool) {
	js := b.jobs[id]
	if js == nil {
		return Attribution{}, false
	}
	at := Attribution{PerCause: make(map[string]int64, len(Causes)), Done: js.Done || js.Dead}
	for _, c := range Causes {
		at.PerCause[c] = 0
	}
	for _, s := range js.Spans {
		at.PerCause[s.Cause] += s.EndV - s.StartV
		at.Total += s.EndV - s.StartV
	}
	for _, s := range b.openAsSpans(js) {
		at.PerCause[s.Cause] += s.EndV - s.StartV
		at.Total += s.EndV - s.StartV
	}
	return at, true
}

// openAsSpans materializes the open span (if any) closed at the
// builder clock, applying the same fault-backoff split closeOpen
// would, without mutating state.
func (b *Builder) openAsSpans(js *JobState) []Span {
	if js.OpenCause == "" || b.clockV <= js.OpenStartV {
		return nil
	}
	start, end := js.OpenStartV, b.clockV
	if js.OpenCause == CauseFaultBackoff && js.BackoffUntilV > start && js.BackoffUntilV < end {
		return []Span{
			{Cause: js.OpenCause, Detail: js.OpenDetail, StartV: start, EndV: js.BackoffUntilV},
			{Cause: CauseCapacity, Detail: "backoff elapsed; awaiting capacity",
				StartV: js.BackoffUntilV, EndV: end},
		}
	}
	return []Span{{Cause: js.OpenCause, Detail: js.OpenDetail, StartV: start, EndV: end}}
}

// State is the builder's serialized form, embedded in WAL snapshots so
// recovery resumes the fold exactly where the snapshot left it.
type State struct {
	Jobs   []*JobState `json:"jobs,omitempty"`
	Frozen bool        `json:"frozen,omitempty"`
	ClockV int64       `json:"clock_v,omitempty"`
}

// Snapshot serializes the builder (jobs sorted by ID, so snapshot
// bytes are deterministic).
func (b *Builder) Snapshot() (json.RawMessage, error) {
	st := State{Frozen: b.frozen, ClockV: b.clockV}
	for _, id := range b.Jobs() {
		st.Jobs = append(st.Jobs, b.jobs[id])
	}
	return json.Marshal(st)
}

// Restore overwrites the builder from a serialized State. A nil or
// empty raw message resets to fresh (snapshots predating the explain
// subsystem).
func (b *Builder) Restore(raw json.RawMessage) error {
	b.jobs = make(map[int64]*JobState)
	b.frozen = false
	b.clockV = 0
	if len(raw) == 0 {
		return nil
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	b.frozen = st.Frozen
	b.clockV = st.ClockV
	for _, js := range st.Jobs {
		if js != nil {
			b.jobs[js.ID] = js
		}
	}
	return nil
}
