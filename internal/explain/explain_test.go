package explain

import (
	"strings"
	"testing"

	"muri/internal/proto"
	"muri/internal/wal"
)

func admitRec(v int64, items ...wal.AdmitItem) *wal.Record {
	return &wal.Record{Kind: wal.KindAdmit, V: v, Admit: &wal.AdmitRecord{Items: items}}
}

func causeRec(v, jobID int64, cause, detail string, note bool) *wal.Record {
	return &wal.Record{Kind: wal.KindCause, V: v,
		Cause: &wal.CauseRecord{Job: jobID, Cause: cause, Detail: detail, Note: note}}
}

func decisionRec(v int64, action string, reason string, cause string, jobs ...int64) *wal.Record {
	return &wal.Record{Kind: wal.KindDecision, V: v, Decision: &wal.DecisionRecord{
		Action: action, Reason: reason, Cause: cause, Jobs: jobs}}
}

func faultRec(v, jobID int64, faults int, notBeforeV int64, dead bool) *wal.Record {
	return &wal.Record{Kind: wal.KindFault, V: v, Fault: &wal.FaultRecord{
		Job: jobID, Faults: faults, NotBeforeV: notBeforeV, DeadLettered: dead}}
}

func doneRec(v, jobID int64) *wal.Record {
	return &wal.Record{Kind: wal.KindDone, V: v, Done: &wal.DoneRecord{Job: jobID, FinishedV: v}}
}

func apply(b *Builder, recs ...*wal.Record) {
	for _, r := range recs {
		b.Apply(r)
	}
}

// sumAttribution checks the invariant every test leans on: per-cause
// values sum to Total.
func sumAttribution(t *testing.T, at Attribution) {
	t.Helper()
	var sum int64
	for _, v := range at.PerCause {
		sum += v
	}
	if sum != at.Total {
		t.Fatalf("per-cause sum %d ≠ total %d", sum, at.Total)
	}
}

// TestLifecycleFold walks one job through the full pipeline: queued at
// the ingest layer, admitted, ranked behind other work, launched, done.
func TestLifecycleFold(t *testing.T) {
	b := NewBuilder()
	apply(b,
		admitRec(100, wal.AdmitItem{
			Spec:    proto.JobSpec{ID: 1, Model: "resnet50", GPUs: 4, Tenant: "team-a"},
			SubmitV: 100, WaitV: 40, Depth: 3,
		}),
		causeRec(150, 1, CauseRankedBehind, "behind 2 higher-priority units", false),
		decisionRec(200, "launch", "", "interleaved x2 eff=1.80", 1),
		doneRec(500, 1),
	)

	js := b.Job(1)
	if js == nil {
		t.Fatal("job 1 unknown")
	}
	if js.OriginV != 60 || js.AdmitV != 100 {
		t.Fatalf("origin/admit = %d/%d, want 60/100", js.OriginV, js.AdmitV)
	}
	if !js.Dispatched || js.FirstDispatchV != 200 {
		t.Fatalf("first dispatch = %v/%d, want true/200", js.Dispatched, js.FirstDispatchV)
	}
	if !js.Done || js.FinishedV != 500 {
		t.Fatalf("done = %v/%d, want true/500", js.Done, js.FinishedV)
	}

	want := []Span{
		{Cause: CauseIngestQueue, Detail: "behind 3 queued submissions", StartV: 60, EndV: 100},
		{Cause: CauseCapacity, Detail: "awaiting admission", StartV: 100, EndV: 150},
		{Cause: CauseRankedBehind, Detail: "behind 2 higher-priority units", StartV: 150, EndV: 200},
		{Cause: CauseService, Detail: "interleaved x2 eff=1.80", StartV: 200, EndV: 500},
	}
	if len(js.Spans) != len(want) {
		t.Fatalf("got %d spans %+v, want %d", len(js.Spans), js.Spans, len(want))
	}
	for i, s := range js.Spans {
		if s != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, s, want[i])
		}
	}

	at, ok := b.AttributionOf(1)
	if !ok || !at.Done {
		t.Fatalf("attribution ok=%v done=%v", ok, at.Done)
	}
	sumAttribution(t, at)
	if at.Total != 500-60 {
		t.Fatalf("total %d, want %d", at.Total, 500-60)
	}
	if at.PerCause[CauseService] != 300 || at.PerCause[CauseIngestQueue] != 40 {
		t.Fatalf("service/ingest = %d/%d, want 300/40", at.PerCause[CauseService], at.PerCause[CauseIngestQueue])
	}

	out := b.RenderJob(1)
	for _, frag := range []string{
		"job 1 (resnet50, 4 GPUs, tenant team-a)",
		"jct 440ns",
		"behind 3 queued submissions",
		"interleaved x2 eff=1.80",
		"total",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}

// TestFaultBackoffSplit: a requeue-on-fault span straddling the backoff
// release time splits there — the head is fault-backoff, the tail is
// capacity ("backoff elapsed"), so backoff is never over-attributed.
func TestFaultBackoffSplit(t *testing.T) {
	b := NewBuilder()
	apply(b,
		admitRec(0, wal.AdmitItem{Spec: proto.JobSpec{ID: 7}, SubmitV: 0}),
		decisionRec(10, "launch", "", "", 7),
		decisionRec(100, "requeue", "fault", "fault 1 of budget 3", 7),
		faultRec(100, 7, 1, 160, false),
		decisionRec(250, "launch", "", "", 7),
		doneRec(400, 7),
	)
	at, _ := b.AttributionOf(7)
	sumAttribution(t, at)
	if got := at.PerCause[CauseFaultBackoff]; got != 60 {
		t.Errorf("fault-backoff = %d, want 60", got)
	}
	// capacity: [0,10) awaiting admission + [160,250) post-backoff tail.
	if got := at.PerCause[CauseCapacity]; got != 10+90 {
		t.Errorf("capacity = %d, want 100", got)
	}
	if got := at.PerCause[CauseService]; got != 90+150 {
		t.Errorf("service = %d, want 240", got)
	}
	js := b.Job(7)
	if js.Faults != 1 {
		t.Errorf("faults = %d, want 1", js.Faults)
	}
	found := false
	for _, s := range js.Spans {
		if s.Cause == CauseCapacity && s.Detail == "backoff elapsed; awaiting capacity" {
			found = true
			if s.StartV != 160 || s.EndV != 250 {
				t.Errorf("split tail = [%d,%d), want [160,250)", s.StartV, s.EndV)
			}
		}
	}
	if !found {
		t.Error("no post-backoff capacity tail span")
	}
}

// TestPreemptionAndDeadletter: kills count preemptions and open a
// capacity span carrying the preemptor's identity; deadletter closes
// the timeline and leaves a note.
func TestPreemptionAndDeadletter(t *testing.T) {
	b := NewBuilder()
	apply(b,
		admitRec(0, wal.AdmitItem{Spec: proto.JobSpec{ID: 2}, SubmitV: 0}),
		decisionRec(10, "launch", "", "", 2),
		decisionRec(50, "kill", "preempted", "preempted by unit [5] (srsf rank ahead)", 2),
		decisionRec(80, "requeue", "fault", "fault 1 of budget 1", 2),
		decisionRec(80, "deadletter", "", "retry budget exhausted after 1 faults", 2),
	)
	js := b.Job(2)
	if js.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", js.Preemptions)
	}
	if !js.Dead || js.FinishedV != 80 {
		t.Fatalf("dead = %v at %d, want true at 80", js.Dead, js.FinishedV)
	}
	at, _ := b.AttributionOf(2)
	sumAttribution(t, at)
	if !at.Done {
		t.Error("dead-lettered job should report Done attribution")
	}
	if at.Total != 80 {
		t.Errorf("total = %d, want 80", at.Total)
	}
	out := b.RenderJob(2)
	if !strings.Contains(out, "dead-lettered") || !strings.Contains(out, "retry budget exhausted") {
		t.Errorf("rendering missing deadletter evidence:\n%s", out)
	}
}

// TestAdoptionFreezeStashRestore: a global freeze moves every waiting
// job to the adoption-freeze cause and restores each job's prior cause
// (with its detail) when the freeze lifts; running jobs are untouched.
func TestAdoptionFreezeStashRestore(t *testing.T) {
	b := NewBuilder()
	apply(b,
		admitRec(0,
			wal.AdmitItem{Spec: proto.JobSpec{ID: 1}, SubmitV: 0},
			wal.AdmitItem{Spec: proto.JobSpec{ID: 2}, SubmitV: 0},
			wal.AdmitItem{Spec: proto.JobSpec{ID: 3}, SubmitV: 0},
		),
		causeRec(5, 2, CauseRankedBehind, "behind unit [1]", false),
		decisionRec(10, "launch", "", "", 3),
		causeRec(20, 0, CauseAdoptionFreeze, "start", false),
	)
	if !b.Frozen() {
		t.Fatal("builder not frozen after start marker")
	}
	for _, id := range []int64{1, 2} {
		if got := b.Job(id).OpenCause; got != CauseAdoptionFreeze {
			t.Errorf("job %d open cause %q during freeze", id, got)
		}
	}
	if got := b.Job(3).OpenCause; got != CauseService {
		t.Errorf("running job displaced to %q by freeze", got)
	}
	apply(b, causeRec(60, 0, CauseAdoptionFreeze, "end", false))
	if b.Frozen() {
		t.Fatal("builder still frozen after end marker")
	}
	if got := b.Job(1).OpenCause; got != CauseCapacity {
		t.Errorf("job 1 resumed %q, want capacity", got)
	}
	j2 := b.Job(2)
	if j2.OpenCause != CauseRankedBehind || j2.OpenDetail != "behind unit [1]" {
		t.Errorf("job 2 resumed %q/%q, want ranked-behind with original detail", j2.OpenCause, j2.OpenDetail)
	}
	at, _ := b.AttributionOf(2)
	sumAttribution(t, at)
	if got := at.PerCause[CauseAdoptionFreeze]; got != 40 {
		t.Errorf("adoption-freeze = %d, want 40", got)
	}
}

// TestNotesAndSameCauseRefresh: note records never perturb the open
// span, and a same-cause transition only refreshes the detail (no
// zero-length span churn).
func TestNotesAndSameCauseRefresh(t *testing.T) {
	b := NewBuilder()
	apply(b,
		admitRec(0, wal.AdmitItem{Spec: proto.JobSpec{ID: 4}, SubmitV: 0}),
		causeRec(10, 4, CauseCapacity, "cluster full: 0 of 8 GPUs free", false),
		causeRec(20, 4, CauseCapacity, "cluster full: 4 of 8 GPUs free", false),
		causeRec(30, 4, "starvation-boost", "boosted to the front after 5 bypassed rounds", true),
	)
	js := b.Job(4)
	if len(js.Spans) != 0 {
		t.Fatalf("same-cause refresh closed spans: %+v", js.Spans)
	}
	if js.OpenDetail != "cluster full: 4 of 8 GPUs free" {
		t.Errorf("detail not refreshed: %q", js.OpenDetail)
	}
	if len(js.Notes) != 1 || js.Notes[0].V != 30 {
		t.Fatalf("notes = %+v, want one at v=30", js.Notes)
	}
	// Live attribution counts the open span up to the builder clock.
	at, _ := b.AttributionOf(4)
	sumAttribution(t, at)
	if at.Done {
		t.Error("live job reported done")
	}
	if at.Total != 30 {
		t.Errorf("live total = %d, want 30 (clock)", at.Total)
	}
}

// TestSnapshotRestoreResumesFold: folding half the records, detouring
// through Snapshot/Restore, and folding the rest must render exactly
// what the uninterrupted fold renders — the invariant that makes the
// daemon's recovery path and muritrace byte-identical with the live RPC.
func TestSnapshotRestoreResumesFold(t *testing.T) {
	records := []*wal.Record{
		admitRec(0,
			wal.AdmitItem{Spec: proto.JobSpec{ID: 1, Model: "vgg16", GPUs: 2}, SubmitV: 0, WaitV: 0},
			wal.AdmitItem{Spec: proto.JobSpec{ID: 2, Model: "gpt2", GPUs: 4}, SubmitV: 0, WaitV: 0},
		),
		causeRec(5, 2, CauseRankedBehind, "behind unit [1]", false),
		decisionRec(10, "launch", "", "", 1),
		decisionRec(100, "requeue", "fault", "fault 1 of budget unlimited", 1),
		faultRec(100, 1, 1, 130, false),
		decisionRec(200, "launch", "", "", 1),
		decisionRec(200, "launch", "", "", 2),
		doneRec(300, 1),
		doneRec(400, 2),
	}
	for split := 0; split <= len(records); split++ {
		ref := NewBuilder()
		apply(ref, records...)

		b := NewBuilder()
		apply(b, records[:split]...)
		raw, err := b.Snapshot()
		if err != nil {
			t.Fatalf("split %d: snapshot: %v", split, err)
		}
		b2 := NewBuilder()
		if err := b2.Restore(raw); err != nil {
			t.Fatalf("split %d: restore: %v", split, err)
		}
		apply(b2, records[split:]...)

		if got, want := b2.RenderAll(), ref.RenderAll(); got != want {
			t.Fatalf("split %d diverged\nwant:\n%s\ngot:\n%s", split, want, got)
		}
	}
}

// TestRestoreEmpty: nil and empty snapshots reset to a fresh builder
// (snapshots predating the explain subsystem).
func TestRestoreEmpty(t *testing.T) {
	b := NewBuilder()
	apply(b, admitRec(0, wal.AdmitItem{Spec: proto.JobSpec{ID: 9}, SubmitV: 0}))
	if err := b.Restore(nil); err != nil {
		t.Fatalf("restore nil: %v", err)
	}
	if len(b.Jobs()) != 0 || b.Frozen() || b.ClockV() != 0 {
		t.Fatal("restore nil did not reset the builder")
	}
	if got := b.RenderJob(9); !strings.Contains(got, "no provenance recorded") {
		t.Errorf("unknown job rendering = %q", got)
	}
}

// TestReplayOverlapFirstFoldWins: re-applying an admission for a known
// job (snapshot/record-tail overlap during recovery) must not reset
// its state.
func TestReplayOverlapFirstFoldWins(t *testing.T) {
	b := NewBuilder()
	admit := admitRec(0, wal.AdmitItem{Spec: proto.JobSpec{ID: 5}, SubmitV: 0})
	apply(b,
		admit,
		decisionRec(10, "launch", "", "", 5),
		admit, // replayed overlap
		doneRec(50, 5),
		doneRec(60, 5), // replayed overlap
	)
	js := b.Job(5)
	if js.FinishedV != 50 {
		t.Errorf("finished = %d, want 50 (first done wins)", js.FinishedV)
	}
	at, _ := b.AttributionOf(5)
	sumAttribution(t, at)
	if at.PerCause[CauseService] != 40 {
		t.Errorf("service = %d, want 40", at.PerCause[CauseService])
	}
}
