package telemetry

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

// record drives a fixed event sequence into t.
func record(t *Tracer) {
	pid := t.Process("group interleaved:1,2")
	io := t.Thread(pid, "storage")
	gpu := t.Thread(pid, "gpu")
	t.Span(pid, io, "job 1: load data", "stage", 0, 5*time.Millisecond, map[string]any{"job": 1})
	t.Span(pid, gpu, "job 2: propagate", "stage", 0, 4*time.Millisecond, nil)
	sched := t.Process("scheduler")
	rounds := t.Thread(sched, "rounds")
	t.Instant(sched, rounds, "round 1", "round", 6*time.Millisecond, map[string]any{"placed": 1})
}

func TestTracerExportParseRoundtrip(t *testing.T) {
	tr := NewTracer(0)
	record(tr)
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Spans()); got != 2 {
		t.Errorf("parsed %d spans, want 2", got)
	}
	if got := len(f.Instants()); got != 1 {
		t.Errorf("parsed %d instants, want 1", got)
	}
	procs := f.ProcessNames()
	if len(procs) != 2 {
		t.Fatalf("parsed %d processes, want 2: %v", len(procs), procs)
	}
	threads := f.ThreadNames()
	if len(threads) != 3 {
		t.Fatalf("parsed %d threads, want 3: %v", len(threads), threads)
	}
	// Timestamps are microseconds: a 5ms span has dur 5000.
	for _, s := range f.Spans() {
		if s.Name == "job 1: load data" && s.Dur != 5000 {
			t.Errorf("span dur = %v µs, want 5000", s.Dur)
		}
	}
}

func TestTracerDeterministicExport(t *testing.T) {
	a, b := NewTracer(0), NewTracer(0)
	record(a)
	record(b)
	ja, err := a.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("identical recording sequences exported different JSON")
	}
}

func TestTracerStableIDs(t *testing.T) {
	tr := NewTracer(0)
	p1 := tr.Process("a")
	p2 := tr.Process("b")
	if p1 == p2 {
		t.Error("distinct processes share a pid")
	}
	if tr.Process("a") != p1 {
		t.Error("re-registering a process changed its pid")
	}
	t1 := tr.Thread(p1, "x")
	if tr.Thread(p1, "x") != t1 {
		t.Error("re-registering a thread changed its tid")
	}
	if tr.Thread(p2, "x") == 0 {
		t.Error("thread on second process got tid 0")
	}
}

func TestTracerCapDropsAndReports(t *testing.T) {
	tr := NewTracer(3)
	pid := tr.Process("p")                                   // 1 metadata event
	tid := tr.Thread(pid, "t")                               // 2nd
	tr.Span(pid, tid, "keep", "c", 0, time.Millisecond, nil) // 3rd: at cap
	tr.Span(pid, tid, "drop", "c", 0, time.Millisecond, nil) // dropped
	if tr.Len() != 3 {
		t.Errorf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if f.Metadata["droppedEvents"] == nil {
		t.Error("export of a lossy trace does not report droppedEvents")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	// None of these may panic.
	pid := tr.Process("p")
	tid := tr.Thread(pid, "t")
	tr.Span(pid, tid, "s", "c", 0, time.Second, nil)
	tr.Instant(pid, tid, "i", "c", 0, nil)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}
	if err := tr.Export(&bytes.Buffer{}); err == nil {
		t.Error("export of nil tracer should error")
	}
}

func TestTracerWriteFileSelfChecks(t *testing.T) {
	tr := NewTracer(0)
	record(tr)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != tr.Len() {
		t.Errorf("file has %d events, tracer holds %d", len(f.TraceEvents), tr.Len())
	}
}
