package telemetry

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// record drives a fixed event sequence into t.
func record(t *Tracer) {
	pid := t.Process("group interleaved:1,2")
	io := t.Thread(pid, "storage")
	gpu := t.Thread(pid, "gpu")
	t.Span(pid, io, "job 1: load data", "stage", 0, 5*time.Millisecond, map[string]any{"job": 1})
	t.Span(pid, gpu, "job 2: propagate", "stage", 0, 4*time.Millisecond, nil)
	sched := t.Process("scheduler")
	rounds := t.Thread(sched, "rounds")
	t.Instant(sched, rounds, "round 1", "round", 6*time.Millisecond, map[string]any{"placed": 1})
}

func TestTracerExportParseRoundtrip(t *testing.T) {
	tr := NewTracer(0)
	record(tr)
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Spans()); got != 2 {
		t.Errorf("parsed %d spans, want 2", got)
	}
	if got := len(f.Instants()); got != 1 {
		t.Errorf("parsed %d instants, want 1", got)
	}
	procs := f.ProcessNames()
	if len(procs) != 2 {
		t.Fatalf("parsed %d processes, want 2: %v", len(procs), procs)
	}
	threads := f.ThreadNames()
	if len(threads) != 3 {
		t.Fatalf("parsed %d threads, want 3: %v", len(threads), threads)
	}
	// Timestamps are microseconds: a 5ms span has dur 5000.
	for _, s := range f.Spans() {
		if s.Name == "job 1: load data" && s.Dur != 5000 {
			t.Errorf("span dur = %v µs, want 5000", s.Dur)
		}
	}
}

// TestParseTraceDurationEvents pins the duration-event handling:
// complete ("X") events round-trip through export/parse with exact
// timestamps, durations, and args, and foreign begin/end ("B"/"E")
// pairs — legal trace JSON that our tracer never emits but external
// tools produce — parse losslessly, survive a re-marshal round trip,
// and are excluded from Spans() (which is complete-events-only).
func TestParseTraceDurationEvents(t *testing.T) {
	tr := NewTracer(0)
	pid := tr.Process("explain")
	tid := tr.Thread(pid, "job 1")
	tr.Span(pid, tid, "service", "explain", 250*time.Microsecond, 1750*time.Microsecond,
		map[string]any{"detail": "interleaved x2"})
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := f.Spans()
	if len(spans) != 1 {
		t.Fatalf("parsed %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Phase != "X" || s.Name != "service" || s.Cat != "explain" {
		t.Errorf("span = %+v, want X/service/explain", s)
	}
	if s.TS != 250 || s.Dur != 1750 {
		t.Errorf("span ts/dur = %v/%v µs, want 250/1750", s.TS, s.Dur)
	}
	if got, _ := s.Args["detail"].(string); got != "interleaved x2" {
		t.Errorf("span args = %v, want detail preserved", s.Args)
	}

	// Hand-written begin/end pairs alongside a complete event.
	raw := `{"traceEvents":[
		{"name":"fit","cat":"sched","ph":"B","ts":10,"pid":1,"tid":2},
		{"name":"fit","cat":"sched","ph":"E","ts":40,"pid":1,"tid":2},
		{"name":"place","cat":"sched","ph":"X","ts":15,"dur":20,"pid":1,"tid":3}
	]}`
	f2, err := ParseTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f2.TraceEvents); got != 3 {
		t.Fatalf("parsed %d events, want 3", got)
	}
	if got := len(f2.Spans()); got != 1 {
		t.Errorf("Spans() returned %d events, want the single X event", got)
	}
	var phases []string
	for _, e := range f2.TraceEvents {
		phases = append(phases, e.Phase)
	}
	if strings.Join(phases, "") != "BEX" {
		t.Errorf("phases = %v, want B,E,X in order", phases)
	}
	if b, e := f2.TraceEvents[0], f2.TraceEvents[1]; b.TS != 10 || e.TS != 40 ||
		b.Name != e.Name || b.PID != e.PID || b.TID != e.TID {
		t.Errorf("B/E pair did not parse losslessly: %+v / %+v", b, e)
	}
	// Re-marshal and reparse: the B/E events survive our own encoding.
	again, err := json.Marshal(f2)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := ParseTrace(bytes.NewReader(again))
	if err != nil {
		t.Fatalf("re-marshaled trace does not parse: %v", err)
	}
	if len(f3.TraceEvents) != 3 || f3.TraceEvents[0].Phase != "B" || f3.TraceEvents[1].Phase != "E" {
		t.Errorf("round trip lost B/E events: %+v", f3.TraceEvents)
	}
}

func TestTracerDeterministicExport(t *testing.T) {
	a, b := NewTracer(0), NewTracer(0)
	record(a)
	record(b)
	ja, err := a.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("identical recording sequences exported different JSON")
	}
}

func TestTracerStableIDs(t *testing.T) {
	tr := NewTracer(0)
	p1 := tr.Process("a")
	p2 := tr.Process("b")
	if p1 == p2 {
		t.Error("distinct processes share a pid")
	}
	if tr.Process("a") != p1 {
		t.Error("re-registering a process changed its pid")
	}
	t1 := tr.Thread(p1, "x")
	if tr.Thread(p1, "x") != t1 {
		t.Error("re-registering a thread changed its tid")
	}
	if tr.Thread(p2, "x") == 0 {
		t.Error("thread on second process got tid 0")
	}
}

func TestTracerCapDropsAndReports(t *testing.T) {
	tr := NewTracer(3)
	pid := tr.Process("p")                                   // 1 metadata event
	tid := tr.Thread(pid, "t")                               // 2nd
	tr.Span(pid, tid, "keep", "c", 0, time.Millisecond, nil) // 3rd: at cap
	tr.Span(pid, tid, "drop", "c", 0, time.Millisecond, nil) // dropped
	if tr.Len() != 3 {
		t.Errorf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if f.Metadata["droppedEvents"] == nil {
		t.Error("export of a lossy trace does not report droppedEvents")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	// None of these may panic.
	pid := tr.Process("p")
	tid := tr.Thread(pid, "t")
	tr.Span(pid, tid, "s", "c", 0, time.Second, nil)
	tr.Instant(pid, tid, "i", "c", 0, nil)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}
	if err := tr.Export(&bytes.Buffer{}); err == nil {
		t.Error("export of nil tracer should error")
	}
}

func TestTracerWriteFileSelfChecks(t *testing.T) {
	tr := NewTracer(0)
	record(tr)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != tr.Len() {
		t.Errorf("file has %d events, tracer holds %d", len(f.TraceEvents), tr.Len())
	}
}
