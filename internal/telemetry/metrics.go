package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"muri/internal/metrics"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous metric, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram wraps a deterministic fixed-bucket metrics.Histogram with a
// mutex so concurrent observers (the daemon's RPC handlers) can share
// it. See DESIGN.md §9 for the determinism rationale.
type Histogram struct {
	mu sync.Mutex
	h  *metrics.Histogram
}

// NewHistogram builds a concurrent histogram over the bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{h: metrics.NewHistogram(bounds...)}
}

// Observe counts one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.h.Observe(v)
}

// Snapshot returns a copy of the underlying histogram's state.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Bounds(), h.h.Cumulative(), h.h.Sum(), h.h.Count()
}

// HistogramVec is a family of histograms sharing one name and bucket
// layout, split by a single label (e.g. per-cause wait attribution).
// Children materialize on first Observe and export as one metric with
// one HELP/TYPE header and per-label series.
type HistogramVec struct {
	mu     sync.Mutex
	label  string
	bounds []float64
	kids   map[string]*Histogram
}

// NewHistogramVec builds a histogram family keyed by label.
func NewHistogramVec(label string, bounds ...float64) *HistogramVec {
	return &HistogramVec{label: label, bounds: bounds, kids: make(map[string]*Histogram)}
}

// With returns the child histogram for one label value, creating it on
// first use.
func (hv *HistogramVec) With(value string) *Histogram {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h := hv.kids[value]
	if h == nil {
		h = NewHistogram(hv.bounds...)
		hv.kids[value] = h
	}
	return h
}

// Observe counts one value under the label value.
func (hv *HistogramVec) Observe(value string, v float64) { hv.With(value).Observe(v) }

// children snapshots the family in sorted label order (stable scrapes).
func (hv *HistogramVec) children() (label string, values []string, kids []*Histogram) {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	values = make([]string, 0, len(hv.kids))
	for v := range hv.kids {
		values = append(values, v)
	}
	sort.Strings(values)
	kids = make([]*Histogram, len(values))
	for i, v := range values {
		kids[i] = hv.kids[v]
	}
	return hv.label, values, kids
}

// metricKind is the Prometheus metric type of a registration.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// registration is one named metric in a Registry.
type registration struct {
	name string
	help string
	kind metricKind
	// exactly one of the following is set
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	histVec     *HistogramVec
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration order is export order, so scrapes are
// stable. Func-backed metrics are sampled at scrape time — the daemon
// uses them to export engine counters that live under its own mutex,
// guaranteeing /metrics always agrees with the status RPC.
type Registry struct {
	mu   sync.Mutex
	regs []registration
	seen map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

func (r *Registry) add(reg registration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[reg.name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", reg.name))
	}
	r.seen[reg.name] = true
	r.regs = append(r.regs, reg)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(registration{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(registration{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a new histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.add(registration{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramVec registers and returns a label-split histogram family
// over bounds.
func (r *Registry) HistogramVec(name, help, label string, bounds ...float64) *HistogramVec {
	hv := NewHistogramVec(label, bounds...)
	r.add(registration{name: name, help: help, kind: kindHistogram, histVec: hv})
	return hv
}

// CounterFunc registers a counter sampled from fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(registration{name: name, help: help, kind: kindCounter, counterFunc: fn})
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(registration{name: name, help: help, kind: kindGauge, gaugeFunc: fn})
}

// formatFloat renders a value the way Prometheus clients expect.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	regs := append([]registration(nil), r.regs...)
	r.mu.Unlock()
	for _, reg := range regs {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", reg.name, reg.help, reg.name, reg.kind); err != nil {
			return err
		}
		var err error
		switch {
		case reg.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", reg.name, reg.counter.Value())
		case reg.counterFunc != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", reg.name, reg.counterFunc())
		case reg.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", reg.name, reg.gauge.Value())
		case reg.gaugeFunc != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", reg.name, formatFloat(reg.gaugeFunc()))
		case reg.hist != nil:
			err = writeHistogram(w, reg.name, reg.hist)
		case reg.histVec != nil:
			err = writeHistogramVec(w, reg.name, reg.histVec)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram with cumulative le buckets.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	bounds, cum, sum, count := h.Snapshot()
	for i, b := range bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(sum), name, count); err != nil {
		return err
	}
	return nil
}

// writeHistogramVec renders one histogram family: per-label series
// under one name, labels in sorted order.
func writeHistogramVec(w io.Writer, name string, hv *HistogramVec) error {
	label, values, kids := hv.children()
	for i, value := range values {
		bounds, cum, sum, count := kids[i].Snapshot()
		series := fmt.Sprintf("%s=%q", label, value)
		for j, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, series, formatFloat(b), cum[j]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, series, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n",
			name, series, formatFloat(sum), name, series, count); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ParsePrometheus extracts the sample value of every non-comment line
// of a text exposition body, keyed by the full series name (labels
// included). It exists for tests and murictl, not as a general client.
func ParsePrometheus(body string) (map[string]float64, error) {
	out := make(map[string]float64)
	start := 0
	for pos := 0; pos <= len(body); pos++ {
		if pos != len(body) && body[pos] != '\n' {
			continue
		}
		line := body[start:pos]
		start = pos + 1
		if line == "" || line[0] == '#' {
			continue
		}
		sp := -1
		for i := len(line) - 1; i >= 0; i-- {
			if line[i] == ' ' {
				sp = i
				break
			}
		}
		if sp <= 0 {
			return nil, fmt.Errorf("telemetry: malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: malformed sample in %q: %w", line, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.regs))
	for _, reg := range r.regs {
		out = append(out, reg.name)
	}
	sort.Strings(out)
	return out
}
