package telemetry

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// capture collects rendered log lines.
func capture() (*[]string, func(format string, args ...any)) {
	var lines []string
	return &lines, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
}

func TestLoggerRendersKeyValueLines(t *testing.T) {
	lines, sink := capture()
	log := NewLogger(sink, LevelInfo).With("component", "server")
	log.Info("executor registered", "machine", "m-0", "gpus", 4, "lease", 5*time.Second)
	if len(*lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(*lines))
	}
	want := `level=info component=server msg="executor registered" machine=m-0 gpus=4 lease=5s`
	if (*lines)[0] != want {
		t.Errorf("line = %q\nwant  %q", (*lines)[0], want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	lines, sink := capture()
	log := NewLogger(sink, LevelWarn)
	log.Debug("d")
	log.Info("i")
	log.Warn("w")
	log.Error("e")
	if len(*lines) != 2 {
		t.Fatalf("got %d lines, want 2 (warn+error): %v", len(*lines), *lines)
	}
	if !log.Enabled(LevelError) || log.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestLoggerFieldInheritance(t *testing.T) {
	lines, sink := capture()
	base := NewLogger(sink, LevelDebug).With("component", "server")
	child := base.With("job", 12)
	child.Info("faulted", "machine", "m-3")
	want := `level=info component=server job=12 msg=faulted machine=m-3`
	if (*lines)[0] != want {
		t.Errorf("line = %q\nwant  %q", (*lines)[0], want)
	}
	// The parent is unaffected by the child's fields.
	base.Info("round")
	if (*lines)[1] != `level=info component=server msg=round` {
		t.Errorf("parent line = %q", (*lines)[1])
	}
}

func TestLoggerQuoting(t *testing.T) {
	lines, sink := capture()
	log := NewLogger(sink, LevelDebug)
	log.Info("msg with spaces", "err", errors.New(`broken "pipe"`), "empty", "")
	got := (*lines)[0]
	want := `level=info msg="msg with spaces" err="broken \"pipe\"" empty=""`
	if got != want {
		t.Errorf("line = %q\nwant  %q", got, want)
	}
}

func TestLoggerOddFields(t *testing.T) {
	lines, sink := capture()
	NewLogger(sink, LevelDebug).Info("m", "dangling")
	if (*lines)[0] != `level=info msg=m !BADKEY=dangling` {
		t.Errorf("line = %q", (*lines)[0])
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var log *Logger
	log.Info("nothing")        // must not panic
	log = log.With("k", "v")   // must not panic
	log.Error("still nothing") // must not panic
	if log.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
	if NewLogger(nil, LevelInfo) != nil {
		t.Error("nil sink should produce nil logger")
	}
}
