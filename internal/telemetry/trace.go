// Package telemetry is the observability layer over the scheduling
// stack (DESIGN.md §9): a deterministic span tracer exporting Chrome
// trace-event JSON (viewable in Perfetto / chrome://tracing), a small
// Prometheus-text metrics registry served by the daemon's debug
// endpoint, and a leveled key=value logger threaded through the
// daemon's Logf hook.
//
// Everything here is opt-in and passive: a nil *Tracer records nothing,
// a driver that never constructs a Registry pays nothing, and no
// instrumented code path changes behavior when telemetry is disabled —
// the fixed-seed simulator goldens stay bit-identical with tracing off.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// DefaultMaxEvents bounds a tracer's buffer when the caller passes no
// explicit limit: large enough for a full murisim run's stage spans,
// small enough that a daemon snapshot fits comfortably inside one
// proto frame (proto.MaxMessageSize).
const DefaultMaxEvents = 1 << 18

// Phase is the Chrome trace-event phase of one event.
const (
	phaseComplete = "X" // span with a duration
	phaseInstant  = "i" // instantaneous event
	phaseMeta     = "M" // process/thread naming metadata
)

// Event is one Chrome trace-event entry. Timestamps and durations are
// microseconds, per the format; virtual time maps 1ns → 0.001µs so the
// virtual timeline is preserved exactly.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// File is the top-level trace-event JSON object: what Export writes and
// ParseTrace reads.
type File struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// Tracer collects trace events into a bounded in-memory buffer. It is
// safe for concurrent use (the daemon records from several goroutines);
// the simulator drives it single-threaded. All methods on a nil Tracer
// are no-ops, so instrumentation sites never need a guard.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	max     int
	dropped uint64
	// pids and tids assign stable small integers to named processes and
	// threads in first-registration order, so two identical recording
	// sequences export byte-identical JSON.
	pids    map[string]int
	tids    map[pidName]int
	nextTID map[int]int
}

type pidName struct {
	pid  int
	name string
}

// NewTracer creates a tracer holding at most maxEvents events
// (metadata events included); maxEvents ≤ 0 uses DefaultMaxEvents.
// Events past the cap are counted in Dropped and discarded — the
// export notes the loss rather than silently truncating.
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{
		max:     maxEvents,
		pids:    make(map[string]int),
		tids:    make(map[pidName]int),
		nextTID: make(map[int]int),
	}
}

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// micros converts virtual/wall duration-since-start to trace µs.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Process returns a stable pid for name, registering it (and emitting
// the process_name metadata event) on first use.
func (t *Tracer) Process(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pid, ok := t.pids[name]; ok {
		return pid
	}
	pid := len(t.pids) + 1
	t.pids[name] = pid
	t.appendLocked(Event{
		Name: "process_name", Phase: phaseMeta, PID: pid,
		Args: map[string]any{"name": name},
	})
	return pid
}

// Thread returns a stable tid for name within pid, registering it (and
// emitting the thread_name metadata event) on first use.
func (t *Tracer) Thread(pid int, name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := pidName{pid, name}
	if tid, ok := t.tids[key]; ok {
		return tid
	}
	t.nextTID[pid]++
	tid := t.nextTID[pid]
	t.tids[key] = tid
	t.appendLocked(Event{
		Name: "thread_name", Phase: phaseMeta, PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
	return tid
}

// Span records a complete event: name runs on (pid, tid) from start for
// dur. Zero-duration spans are recorded (Perfetto renders them as
// slivers), so purely virtual instants can still form rows.
func (t *Tracer) Span(pid, tid int, name, cat string, start, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(Event{
		Name: name, Cat: cat, Phase: phaseComplete,
		TS: micros(start), Dur: micros(dur), PID: pid, TID: tid, Args: args,
	})
}

// Instant records an instantaneous event at time at on (pid, tid).
func (t *Tracer) Instant(pid, tid int, name, cat string, at time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(Event{
		Name: name, Cat: cat, Phase: phaseInstant, Scope: "t",
		TS: micros(at), PID: pid, TID: tid, Args: args,
	})
}

// appendLocked adds one event, honoring the buffer cap.
func (t *Tracer) appendLocked(e Event) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded at the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshot copies the current buffer state.
func (t *Tracer) snapshot() File {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := File{
		TraceEvents:     append([]Event(nil), t.events...),
		DisplayTimeUnit: "ms",
	}
	if t.dropped > 0 {
		f.Metadata = map[string]any{"droppedEvents": t.dropped}
	}
	return f
}

// Export writes the trace as Chrome trace-event JSON. The output is a
// pure function of the recording sequence: identical recordings export
// byte-identical JSON.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: export of nil tracer")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t.snapshot())
}

// ExportJSON returns the trace as a JSON byte slice.
func (t *Tracer) ExportJSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: export of nil tracer")
	}
	return json.Marshal(t.snapshot())
}

// WriteFile exports the trace to path, then re-reads and re-parses the
// written bytes as a self-check so a truncated or malformed export
// fails loudly at the producer.
func (t *Tracer) WriteFile(path string) error {
	data, err := t.ExportJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: write trace: %w", err)
	}
	if _, err := ReadTraceFile(path); err != nil {
		return fmt.Errorf("telemetry: self-check of written trace: %w", err)
	}
	return nil
}

// ParseTrace decodes Chrome trace-event JSON (as produced by Export).
func ParseTrace(r io.Reader) (File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	return f, nil
}

// ReadTraceFile parses the trace-event JSON file at path.
func ReadTraceFile(path string) (File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return File{}, fmt.Errorf("telemetry: open trace: %w", err)
	}
	defer fh.Close()
	return ParseTrace(fh)
}

// Spans returns the complete ("X") events of the file, in order.
func (f File) Spans() []Event {
	var out []Event
	for _, e := range f.TraceEvents {
		if e.Phase == phaseComplete {
			out = append(out, e)
		}
	}
	return out
}

// Instants returns the instant ("i") events of the file, in order.
func (f File) Instants() []Event {
	var out []Event
	for _, e := range f.TraceEvents {
		if e.Phase == phaseInstant {
			out = append(out, e)
		}
	}
	return out
}

// ThreadNames maps (pid, tid) to the registered thread name.
func (f File) ThreadNames() map[[2]int]string {
	out := make(map[[2]int]string)
	for _, e := range f.TraceEvents {
		if e.Phase == phaseMeta && e.Name == "thread_name" {
			if name, ok := e.Args["name"].(string); ok {
				out[[2]int{e.PID, e.TID}] = name
			}
		}
	}
	return out
}

// ProcessNames maps pid to the registered process name.
func (f File) ProcessNames() map[int]string {
	out := make(map[int]string)
	for _, e := range f.TraceEvents {
		if e.Phase == phaseMeta && e.Name == "process_name" {
			if name, ok := e.Args["name"].(string); ok {
				out[e.PID] = name
			}
		}
	}
	return out
}
