package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Level is a log severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to
// its Level, for command-line flags.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// Logger is a leveled key=value logger. It renders each entry as a
// single logfmt-style line — `level=info component=server msg="..."
// key=value ...` — and hands it to a printf-shaped sink, so it threads
// through the daemon's existing Logf hook unchanged. With-fields are
// carried on every line, giving the daemon's logs stable component /
// job / machine attribution that `grep job=12` can follow.
//
// A nil *Logger discards everything, so call sites never need a guard.
type Logger struct {
	sink   func(format string, args ...any)
	min    Level
	prefix string // pre-rendered "k=v k=v" of With fields
}

// NewLogger builds a logger writing lines at or above min through sink
// (printf-shaped; the daemon passes its Logf hook). A nil sink returns
// a nil logger, which discards everything.
func NewLogger(sink func(format string, args ...any), min Level) *Logger {
	if sink == nil {
		return nil
	}
	return &Logger{sink: sink, min: min}
}

// With returns a child logger whose lines carry the extra key=value
// fields (appended after the parent's).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	extra := renderFields(kv)
	if extra != "" {
		if child.prefix != "" {
			child.prefix += " " + extra
		} else {
			child.prefix = extra
		}
	}
	return &child
}

// Enabled reports whether lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool { return l != nil && lvl >= l.min }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(l.prefix))
	b.WriteString("level=")
	b.WriteString(lvl.String())
	if l.prefix != "" {
		b.WriteByte(' ')
		b.WriteString(l.prefix)
	}
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	if extra := renderFields(kv); extra != "" {
		b.WriteByte(' ')
		b.WriteString(extra)
	}
	l.sink("%s", b.String())
}

// renderFields renders alternating key/value pairs as "k=v k=v". An
// odd trailing value is rendered under the key "!BADKEY" rather than
// dropped, mirroring slog's defensive behavior.
func renderFields(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i+1 >= len(kv) {
			b.WriteString("!BADKEY=")
			b.WriteString(quoteValue(fmt.Sprint(kv[i])))
			break
		}
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
	return b.String()
}

// formatValue renders one value, quoting only when needed.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return quoteValue(x)
	case time.Duration:
		return x.String()
	case error:
		return quoteValue(x.Error())
	case fmt.Stringer:
		return quoteValue(x.String())
	default:
		return quoteValue(fmt.Sprint(v))
	}
}

// quoteValue quotes s if it contains spaces, quotes, or control
// characters; bare tokens pass through unchanged.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
