package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("muri_rounds_total", "Scheduling rounds run.")
	g := r.Gauge("muri_queue_length", "Pending jobs.")
	h := r.Histogram("muri_jct_seconds", "Job completion time.", 1, 10)
	r.CounterFunc("muri_evictions_total", "Lease evictions.", func() uint64 { return 7 })
	r.GaugeFunc("muri_capacity_gpus", "Registered GPUs.", func() float64 { return 16 })

	c.Add(3)
	g.Set(5)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP muri_rounds_total Scheduling rounds run.",
		"# TYPE muri_rounds_total counter",
		"muri_rounds_total 3",
		"# TYPE muri_queue_length gauge",
		"muri_queue_length 5",
		"# TYPE muri_jct_seconds histogram",
		`muri_jct_seconds_bucket{le="1"} 1`,
		`muri_jct_seconds_bucket{le="10"} 2`,
		`muri_jct_seconds_bucket{le="+Inf"} 3`,
		"muri_jct_seconds_sum 102.5",
		"muri_jct_seconds_count 3",
		"muri_evictions_total 7",
		"muri_capacity_gpus 16",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	samples, err := ParsePrometheus(out)
	if err != nil {
		t.Fatal(err)
	}
	if samples["muri_rounds_total"] != 3 {
		t.Errorf("parsed rounds = %v", samples["muri_rounds_total"])
	}
	if samples[`muri_jct_seconds_bucket{le="+Inf"}`] != 3 {
		t.Errorf("parsed +Inf bucket = %v", samples[`muri_jct_seconds_bucket{le="+Inf"}`])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("muri_test_total", "t").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "muri_test_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	if _, err := ParsePrometheus("not a metric line\n"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCounterGaugeConcurrency(t *testing.T) {
	c := &Counter{}
	g := &Gauge{}
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if g.Value() != 4000 {
		t.Errorf("gauge = %d, want 4000", g.Value())
	}
}
