// Package job defines the DL training job model shared by the scheduler,
// the simulator, and the distributed prototype: identity, resource profile,
// progress accounting, and the priority functions (SRSF, 2D-LAS) Muri uses
// to order its queue (paper §4.2, "Optimizing for average JCT").
package job

import (
	"fmt"
	"time"

	"muri/internal/workload"
)

// ID uniquely identifies a job within one scheduler instance.
type ID int64

// State is the lifecycle state of a job.
type State int

const (
	// Pending jobs sit in the scheduler queue.
	Pending State = iota
	// Running jobs hold resources on the cluster.
	Running
	// Done jobs have completed all iterations.
	Done
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one DL training job. The scheduler mutates progress fields; all
// times are virtual durations since the start of the experiment.
type Job struct {
	// ID is the scheduler-assigned identity.
	ID ID
	// Name is a human-readable label (defaults to the model name).
	Name string
	// Model is the DL model this job trains.
	Model workload.Model
	// Profile is the stage-duration vector the scheduler believes
	// (possibly noisy — Figure 14); the simulator executes TrueProfile.
	Profile workload.StageTimes
	// TrueProfile is the actual per-iteration stage durations.
	TrueProfile workload.StageTimes
	// GPUs is the number of GPUs the job needs (a power of two, §5).
	GPUs int
	// Iterations is the total number of training iterations.
	Iterations int64
	// Submit is the submission time.
	Submit time.Duration

	// State is the current lifecycle state.
	State State
	// DoneIterations counts completed iterations.
	DoneIterations int64
	// Attained is the total virtual time the job has spent running,
	// weighted only by wall time (2D-LAS multiplies by GPUs separately).
	Attained time.Duration
	// StartedAt is when the job first obtained resources (-1 if never).
	StartedAt time.Duration
	// FinishedAt is the completion time (valid when State == Done).
	FinishedAt time.Duration
	// Restarts counts how many times the job was preempted and restarted.
	Restarts int
}

// New constructs a pending job with the given identity and requirements.
// The profile defaults to the model's measured stages; call ApplyNoise to
// perturb the scheduler-visible profile.
func New(id ID, m workload.Model, gpus int, iterations int64, submit time.Duration) *Job {
	return &Job{
		ID:          id,
		Name:        m.Name,
		Model:       m,
		Profile:     m.Stages,
		TrueProfile: m.Stages,
		GPUs:        gpus,
		Iterations:  iterations,
		Submit:      submit,
		StartedAt:   -1,
	}
}

// SerialIterTime is the per-iteration duration when the job runs alone,
// according to the true profile.
func (j *Job) SerialIterTime() time.Duration { return j.TrueProfile.Total() }

// RemainingIterations returns how many iterations are left.
func (j *Job) RemainingIterations() int64 {
	r := j.Iterations - j.DoneIterations
	if r < 0 {
		return 0
	}
	return r
}

// RemainingTime estimates the remaining run time at exclusive (serial)
// speed using the scheduler-visible profile. SRSF uses it as the "remaining
// service" estimate.
func (j *Job) RemainingTime() time.Duration {
	return time.Duration(j.RemainingIterations()) * j.Profile.Total()
}

// TotalTime is the job's full duration at exclusive speed (the trace
// duration), from the scheduler-visible profile.
func (j *Job) TotalTime() time.Duration {
	return time.Duration(j.Iterations) * j.Profile.Total()
}

// SRSF returns the Shortest-Remaining-Service-First priority
// p = remaining_time × gpus. Lower is more urgent (paper §4.2).
func (j *Job) SRSF() float64 {
	return j.RemainingTime().Seconds() * float64(j.GPUs)
}

// LAS2D returns the 2D-LAS priority p = attained_service × gpus.
// Lower is more urgent; new jobs get the highest priority.
func (j *Job) LAS2D() float64 {
	return j.Attained.Seconds() * float64(j.GPUs)
}

// JCT returns the job completion time (finish − submit). It panics if the
// job is not done, because reading a JCT early is always a bug.
func (j *Job) JCT() time.Duration {
	if j.State != Done {
		panic(fmt.Sprintf("job %d: JCT requested in state %v", j.ID, j.State))
	}
	return j.FinishedAt - j.Submit
}

// Finished reports whether all iterations are complete.
func (j *Job) Finished() bool { return j.DoneIterations >= j.Iterations }

// Advance records the completion of n iterations over elapsed virtual
// time, clamping at the job's total. It returns the number of iterations
// actually credited.
func (j *Job) Advance(n int64, elapsed time.Duration) int64 {
	if n > j.RemainingIterations() {
		n = j.RemainingIterations()
	}
	j.DoneIterations += n
	j.Attained += elapsed
	return n
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d (%s, %d GPUs, %d iters, %s/iter)",
		j.ID, j.Name, j.GPUs, j.Iterations, j.SerialIterTime())
}
