package job

import (
	"testing"
	"testing/quick"
	"time"

	"muri/internal/workload"
)

func testModel() workload.Model {
	return workload.Model{
		Name:   "toy",
		Stages: workload.StageTimes{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond},
	}
}

func TestNewDefaults(t *testing.T) {
	j := New(7, testModel(), 4, 1000, 5*time.Minute)
	if j.State != Pending {
		t.Errorf("new job state = %v, want pending", j.State)
	}
	if j.Profile != j.TrueProfile {
		t.Errorf("profile %v != true profile %v", j.Profile, j.TrueProfile)
	}
	if j.StartedAt != -1 {
		t.Errorf("StartedAt = %v, want -1", j.StartedAt)
	}
	if j.Name != "toy" {
		t.Errorf("Name = %q, want model name", j.Name)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Pending: "pending", Running: "running", Done: "done", State(9): "state(9)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestRemainingAndTotal(t *testing.T) {
	j := New(1, testModel(), 2, 100, 0)
	if got, want := j.TotalTime(), 100*100*time.Millisecond; got != want {
		t.Errorf("TotalTime = %v, want %v", got, want)
	}
	j.DoneIterations = 40
	if got := j.RemainingIterations(); got != 60 {
		t.Errorf("RemainingIterations = %d, want 60", got)
	}
	if got, want := j.RemainingTime(), 60*100*time.Millisecond; got != want {
		t.Errorf("RemainingTime = %v, want %v", got, want)
	}
	j.DoneIterations = 200 // overshoot clamps to zero
	if got := j.RemainingIterations(); got != 0 {
		t.Errorf("overshot RemainingIterations = %d, want 0", got)
	}
}

func TestPriorities(t *testing.T) {
	j := New(1, testModel(), 4, 100, 0)
	// SRSF = remaining seconds × gpus = 10s × 4.
	if got := j.SRSF(); got != 40 {
		t.Errorf("SRSF = %v, want 40", got)
	}
	j.Attained = 2 * time.Second
	if got := j.LAS2D(); got != 8 {
		t.Errorf("LAS2D = %v, want 8", got)
	}
	// A job with fewer GPUs and the same remaining time is more urgent
	// under SRSF.
	small := New(2, testModel(), 1, 100, 0)
	if small.SRSF() >= j.SRSF() {
		t.Errorf("1-GPU SRSF %v should be < 4-GPU SRSF %v", small.SRSF(), j.SRSF())
	}
}

func TestAdvanceClampsAndAccumulates(t *testing.T) {
	j := New(1, testModel(), 1, 10, 0)
	credited := j.Advance(4, time.Second)
	if credited != 4 || j.DoneIterations != 4 {
		t.Errorf("Advance(4) credited %d, done %d; want 4, 4", credited, j.DoneIterations)
	}
	credited = j.Advance(100, time.Second)
	if credited != 6 || j.DoneIterations != 10 {
		t.Errorf("Advance(100) credited %d, done %d; want 6, 10", credited, j.DoneIterations)
	}
	if !j.Finished() {
		t.Error("job should be finished")
	}
	if j.Attained != 2*time.Second {
		t.Errorf("Attained = %v, want 2s", j.Attained)
	}
}

func TestAdvanceNeverExceedsTotal(t *testing.T) {
	f := func(total uint16, steps [8]uint8) bool {
		j := New(1, testModel(), 1, int64(total%500)+1, 0)
		for _, s := range steps {
			j.Advance(int64(s), time.Millisecond)
		}
		return j.DoneIterations <= j.Iterations && j.RemainingIterations() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJCT(t *testing.T) {
	j := New(1, testModel(), 1, 10, 2*time.Second)
	j.State = Done
	j.FinishedAt = 12 * time.Second
	if got := j.JCT(); got != 10*time.Second {
		t.Errorf("JCT = %v, want 10s", got)
	}
}

func TestJCTPanicsWhenNotDone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("JCT on pending job should panic")
		}
	}()
	New(1, testModel(), 1, 10, 0).JCT()
}

func TestStringContainsEssentials(t *testing.T) {
	s := New(3, testModel(), 8, 42, 0).String()
	for _, frag := range []string{"job 3", "toy", "8 GPUs", "42 iters"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
