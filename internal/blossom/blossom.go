// Package blossom implements maximum-weight matching in general graphs
// using Edmonds's blossom algorithm in O(V³) time.
//
// Muri converts job grouping into maximum weighted matching: vertices are
// jobs (or merged job groups), edge weights are interleaving efficiencies,
// and the matching with the highest total weight is the best grouping plan
// (paper §4.1, Figure 5). This implementation follows the well-known
// primal-dual formulation popularized by Galil ("Efficient algorithms for
// finding maximum matching in graphs", 1986) and van Rantwijk's reference
// implementation: it maintains dual variables for vertices and blossoms and
// alternates between augmenting the matching and adjusting duals.
package blossom

// Edge is a weighted undirected edge between vertices I and J.
type Edge struct {
	I, J   int
	Weight float64
}

// MaxWeightMatching computes a matching of maximum total weight on the
// graph with n vertices (numbered 0..n-1) and the given edges. It returns
// mate, where mate[v] is the vertex matched to v, or -1 if v is single.
//
// If maxCardinality is true, the matching is restricted to maximum
// cardinality matchings (only then maximized by weight). Muri uses
// maxCardinality=false: edge weights (efficiencies) are positive, so a
// maximum weight matching pairs every job that has any beneficial partner.
//
// Self-loops are rejected by panic; duplicate edges are allowed (only one
// can be used). Negative weights are allowed and simply never selected
// unless maxCardinality forces them.
//
// This one-shot form allocates fresh state per call. Hot paths that match
// repeatedly should use MatchPooled (or a long-lived Matcher), which
// reuses state slices across calls and returns bit-identical matchings.
func MaxWeightMatching(n int, edges []Edge, maxCardinality bool) []int {
	var m Matcher
	m.Reset(n, edges)
	return m.Solve(maxCardinality)
}

// Matcher carries the full algorithm state. Vertex indices are 0..n-1;
// blossom indices are 0..2n-1 (the first n are trivial single-vertex
// blossoms).
//
// The zero value is ready for use. Reset prepares the matcher for a graph
// and Solve computes the matching; a Matcher may be Reset and solved any
// number of times, reusing its state slices, and every solve is
// bit-identical to a fresh MaxWeightMatching call on the same input. A
// Matcher is not safe for concurrent use.
type Matcher struct {
	n     int
	edges []Edge

	// endpoint[p] is the vertex at endpoint p; edge k has endpoints 2k
	// (vertex edges[k].I) and 2k+1 (vertex edges[k].J).
	endpoint []int
	// neighbend[v] lists the remote endpoints of edges incident to v.
	neighbend [][]int

	// mate[v] is the remote endpoint of v's matched edge, or -1.
	mate []int
	// label[b] ∈ {0 free, 1 S, 2 T} for top-level blossom b.
	label []int
	// labelend[b] is the endpoint through which b obtained its label.
	labelend []int
	// inblossom[v] is the top-level blossom containing vertex v.
	inblossom []int
	// blossomparent[b] is the immediately enclosing blossom, or -1.
	blossomparent []int
	// blossomchilds[b] lists the sub-blossoms of b in cyclic order.
	blossomchilds [][]int
	// blossombase[b] is the base vertex of blossom b.
	blossombase []int
	// blossomendps[b] lists the endpoints connecting consecutive children.
	blossomendps [][]int
	// bestedge[b] is the edge index of the least-slack edge from b to an
	// S-blossom, or -1.
	bestedge []int
	// blossombestedges[b] lists least-slack edges to other S-blossoms.
	blossombestedges [][]int
	// unusedblossoms is the free list of blossom indices ≥ n.
	unusedblossoms []int
	// dualvar holds vertex duals (0..n-1) and blossom duals (n..2n-1).
	dualvar []float64
	// allowedge[k] marks edge k as having zero slack (usable).
	allowedge []bool
	queue     []int
}

// Reset prepares the matcher for the graph with n vertices and the given
// edges, reusing state-slice capacity left over from earlier solves. The
// edges slice is retained (read-only) until the next Reset; it is never
// mutated. The resulting state is identical to a freshly constructed
// matcher's.
func (m *Matcher) Reset(n int, edges []Edge) {
	m.n = n
	m.edges = edges
	nedge := len(edges)
	maxWeight := 0.0
	for _, e := range edges {
		if e.I == e.J {
			panic("blossom: self-loop edge")
		}
		if e.I < 0 || e.J < 0 || e.I >= n || e.J >= n {
			panic("blossom: edge endpoint out of range")
		}
		if e.Weight > maxWeight {
			maxWeight = e.Weight
		}
	}
	m.endpoint = resizeInts(m.endpoint, 2*nedge, 0)
	for k, e := range edges {
		m.endpoint[2*k] = e.I
		m.endpoint[2*k+1] = e.J
	}
	m.neighbend = resizeLists(m.neighbend, n)
	for k, e := range edges {
		m.neighbend[e.I] = append(m.neighbend[e.I], 2*k+1)
		m.neighbend[e.J] = append(m.neighbend[e.J], 2*k)
	}
	m.mate = resizeInts(m.mate, n, -1)
	m.label = resizeInts(m.label, 2*n, 0)
	m.labelend = resizeInts(m.labelend, 2*n, -1)
	m.inblossom = resizeInts(m.inblossom, n, 0)
	for v := range m.inblossom {
		m.inblossom[v] = v
	}
	m.blossomparent = resizeInts(m.blossomparent, 2*n, -1)
	m.blossomchilds = clearLists(m.blossomchilds, 2*n)
	m.blossombase = resizeInts(m.blossombase, 2*n, -1)
	for v := 0; v < n; v++ {
		m.blossombase[v] = v
	}
	m.blossomendps = clearLists(m.blossomendps, 2*n)
	m.bestedge = resizeInts(m.bestedge, 2*n, -1)
	m.blossombestedges = clearLists(m.blossombestedges, 2*n)
	m.unusedblossoms = m.unusedblossoms[:0]
	for b := n; b < 2*n; b++ {
		m.unusedblossoms = append(m.unusedblossoms, b)
	}
	if cap(m.dualvar) < 2*n {
		m.dualvar = make([]float64, 2*n)
	} else {
		m.dualvar = m.dualvar[:2*n]
	}
	for v := 0; v < n; v++ {
		m.dualvar[v] = maxWeight
	}
	for b := n; b < 2*n; b++ {
		m.dualvar[b] = 0
	}
	if cap(m.allowedge) < nedge {
		m.allowedge = make([]bool, nedge)
	} else {
		m.allowedge = m.allowedge[:nedge]
		for k := range m.allowedge {
			m.allowedge[k] = false
		}
	}
	m.queue = m.queue[:0]
}

// resizeInts returns s resized to length n with every element set to v,
// reusing capacity when possible.
func resizeInts(s []int, n, v int) []int {
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = v
	}
	return s
}

// resizeLists returns s resized to n entries, each truncated to length
// zero but keeping its backing array for append reuse.
func resizeLists(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// clearLists returns s resized to n entries, each set to nil — parts of
// the algorithm distinguish a nil list from an empty one (addBlossom's
// blossombestedges fallback), so these must match fresh construction
// exactly.
func clearLists(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func fill(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// slack returns the slack of edge k: zero slack means the edge is tight
// and can join the alternating forest.
func (m *Matcher) slack(k int) float64 {
	e := m.edges[k]
	return m.dualvar[e.I] + m.dualvar[e.J] - 2*e.Weight
}

// blossomLeaves appends all vertices inside blossom b to out.
func (m *Matcher) blossomLeaves(b int, out *[]int) {
	if b < m.n {
		*out = append(*out, b)
		return
	}
	for _, t := range m.blossomchilds[b] {
		m.blossomLeaves(t, out)
	}
}

// assignLabel labels the top-level blossom containing vertex w with label t
// (1=S, 2=T), reached through endpoint p.
func (m *Matcher) assignLabel(w, t, p int) {
	b := m.inblossom[w]
	if m.label[w] != 0 || m.label[b] != 0 {
		panic("blossom: assignLabel to labeled vertex")
	}
	m.label[w] = t
	m.label[b] = t
	m.labelend[w] = p
	m.labelend[b] = p
	m.bestedge[w] = -1
	m.bestedge[b] = -1
	if t == 1 {
		// b became an S-blossom: add its vertices to the scan queue.
		m.blossomLeaves(b, &m.queue)
	} else {
		// b became a T-blossom: label its mate's blossom S.
		base := m.blossombase[b]
		if m.mate[base] < 0 {
			panic("blossom: T-blossom base is single")
		}
		m.assignLabel(m.endpoint[m.mate[base]], 1, m.mate[base]^1)
	}
}

// scanBlossom traces back from vertices v and w to discover either a new
// blossom (returns its base) or an augmenting path (returns -1).
func (m *Matcher) scanBlossom(v, w int) int {
	var path []int
	base := -1
	for v != -1 || w != -1 {
		b := m.inblossom[v]
		if m.label[b]&4 != 0 {
			base = m.blossombase[b]
			break
		}
		if m.label[b] != 1 {
			panic("blossom: scan reached non-S blossom")
		}
		path = append(path, b)
		m.label[b] = 5
		if m.labelend[b] == -1 {
			// b's base is single; stop tracing this side.
			v = -1
		} else {
			v = m.endpoint[m.labelend[b]]
			b = m.inblossom[v]
			if m.label[b] != 2 {
				panic("blossom: expected T-blossom on trace")
			}
			v = m.endpoint[m.labelend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		m.label[b] = 1
	}
	return base
}

// addBlossom constructs a new blossom with base vertex `base`, through edge
// k, which connects a pair of S vertices.
func (m *Matcher) addBlossom(base, k int) {
	v, w := m.edges[k].I, m.edges[k].J
	bb := m.inblossom[base]
	bv := m.inblossom[v]
	bw := m.inblossom[w]
	b := m.unusedblossoms[len(m.unusedblossoms)-1]
	m.unusedblossoms = m.unusedblossoms[:len(m.unusedblossoms)-1]
	m.blossombase[b] = base
	m.blossomparent[b] = -1
	m.blossomparent[bb] = b
	var path, endps []int
	// Trace from bv up to bb.
	for bv != bb {
		m.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, m.labelend[bv])
		if m.labelend[bv] == -1 {
			panic("blossom: open path while building blossom")
		}
		v = m.endpoint[m.labelend[bv]]
		bv = m.inblossom[v]
	}
	// Reverse and prepend the base.
	path = append(path, bb)
	reverse(path)
	reverse(endps)
	endps = append(endps, 2*k)
	// Trace from bw up to bb.
	for bw != bb {
		m.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, m.labelend[bw]^1)
		if m.labelend[bw] == -1 {
			panic("blossom: open path while building blossom")
		}
		w = m.endpoint[m.labelend[bw]]
		bw = m.inblossom[w]
	}
	m.blossomchilds[b] = path
	m.blossomendps[b] = endps
	m.label[b] = 1
	m.labelend[b] = m.labelend[bb]
	m.dualvar[b] = 0
	var leaves []int
	m.blossomLeaves(b, &leaves)
	for _, leaf := range leaves {
		if m.label[m.inblossom[leaf]] == 2 {
			// T-vertex inside the new S-blossom: queue it for scanning.
			m.queue = append(m.queue, leaf)
		}
		m.inblossom[leaf] = b
	}
	// Compute the blossom's best-edge lists.
	bestedgeto := fill(2*m.n, -1)
	for _, bv := range path {
		var nblists [][]int
		if m.blossombestedges[bv] == nil {
			var lvs []int
			m.blossomLeaves(bv, &lvs)
			for _, vtx := range lvs {
				lst := make([]int, 0, len(m.neighbend[vtx]))
				for _, p := range m.neighbend[vtx] {
					lst = append(lst, p/2)
				}
				nblists = append(nblists, lst)
			}
		} else {
			nblists = [][]int{m.blossombestedges[bv]}
		}
		for _, nblist := range nblists {
			for _, kk := range nblist {
				i, j := m.edges[kk].I, m.edges[kk].J
				if m.inblossom[j] == b {
					i, j = j, i
				}
				bj := m.inblossom[j]
				if bj != b && m.label[bj] == 1 &&
					(bestedgeto[bj] == -1 || m.slack(kk) < m.slack(bestedgeto[bj])) {
					bestedgeto[bj] = kk
				}
			}
		}
		m.blossombestedges[bv] = nil
		m.bestedge[bv] = -1
	}
	var best []int
	for _, kk := range bestedgeto {
		if kk != -1 {
			best = append(best, kk)
		}
	}
	m.blossombestedges[b] = best
	m.bestedge[b] = -1
	for _, kk := range best {
		if m.bestedge[b] == -1 || m.slack(kk) < m.slack(m.bestedge[b]) {
			m.bestedge[b] = kk
		}
	}
}

// expandBlossom undoes blossom b, either because its dual hit zero during
// dual adjustment or at the end of a stage (endstage).
func (m *Matcher) expandBlossom(b int, endstage bool) {
	for _, s := range m.blossomchilds[b] {
		m.blossomparent[s] = -1
		if s < m.n {
			m.inblossom[s] = s
		} else if endstage && m.dualvar[s] == 0 {
			// Recursively expand sub-blossoms with zero dual.
			m.expandBlossom(s, endstage)
		} else {
			var lvs []int
			m.blossomLeaves(s, &lvs)
			for _, vtx := range lvs {
				m.inblossom[vtx] = s
			}
		}
	}
	if !endstage && m.label[b] == 2 {
		// b is a T-blossom mid-stage: relabel the path through it.
		entrychild := m.inblossom[m.endpoint[m.labelend[b]^1]]
		j := indexOf(m.blossomchilds[b], entrychild)
		var jstep, endptrick int
		if j&1 != 0 {
			j -= len(m.blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := m.labelend[b]
		for j != 0 {
			m.label[m.endpoint[p^1]] = 0
			idx := mod(j-endptrick, len(m.blossomendps[b]))
			m.label[m.endpoint[m.blossomendps[b][idx]^endptrick^1]] = 0
			m.assignLabel(m.endpoint[p^1], 2, p)
			m.allowedge[m.blossomendps[b][idx]/2] = true
			j += jstep
			idx = mod(j-endptrick, len(m.blossomendps[b]))
			p = m.blossomendps[b][idx] ^ endptrick
			m.allowedge[p/2] = true
			j += jstep
		}
		bv := m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
		m.label[m.endpoint[p^1]] = 2
		m.label[bv] = 2
		m.labelend[m.endpoint[p^1]] = p
		m.labelend[bv] = p
		m.bestedge[bv] = -1
		j += jstep
		for m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))] != entrychild {
			bv = m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
			if m.label[bv] == 1 {
				j += jstep
				continue
			}
			var lvs []int
			m.blossomLeaves(bv, &lvs)
			v := lvs[len(lvs)-1]
			for _, vtx := range lvs {
				if m.label[vtx] != 0 {
					v = vtx
					break
				}
			}
			if m.label[v] != 0 {
				if m.label[v] != 2 {
					panic("blossom: expected T label inside expanded blossom")
				}
				if m.inblossom[v] != bv {
					panic("blossom: label owner mismatch")
				}
				m.label[v] = 0
				m.label[m.endpoint[m.mate[m.blossombase[bv]]]] = 0
				m.assignLabel(v, 2, m.labelend[v])
			}
			j += jstep
		}
	}
	m.label[b] = -1
	m.labelend[b] = -1
	m.blossomchilds[b] = nil
	m.blossomendps[b] = nil
	m.blossombase[b] = -1
	m.blossombestedges[b] = nil
	m.bestedge[b] = -1
	m.unusedblossoms = append(m.unusedblossoms, b)
}

// augmentBlossom swaps matched and unmatched edges inside blossom b so that
// vertex v becomes the blossom's base.
func (m *Matcher) augmentBlossom(b, v int) {
	t := v
	for m.blossomparent[t] != b {
		t = m.blossomparent[t]
	}
	if t >= m.n {
		m.augmentBlossom(t, v)
	}
	i := indexOf(m.blossomchilds[b], t)
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= len(m.blossomchilds[b])
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
		idx := mod(j-endptrick, len(m.blossomendps[b]))
		p := m.blossomendps[b][idx] ^ endptrick
		if t >= m.n {
			m.augmentBlossom(t, m.endpoint[p])
		}
		j += jstep
		t = m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
		if t >= m.n {
			m.augmentBlossom(t, m.endpoint[p^1])
		}
		m.mate[m.endpoint[p]] = p ^ 1
		m.mate[m.endpoint[p^1]] = p
	}
	// Rotate the child list so that t (containing v) becomes the base.
	m.blossomchilds[b] = append(m.blossomchilds[b][i:], m.blossomchilds[b][:i]...)
	m.blossomendps[b] = append(m.blossomendps[b][i:], m.blossomendps[b][:i]...)
	m.blossombase[b] = m.blossombase[m.blossomchilds[b][0]]
	if m.blossombase[b] != v {
		panic("blossom: augmented base mismatch")
	}
}

// augmentMatching augments the matching along the path through edge k.
func (m *Matcher) augmentMatching(k int) {
	for _, se := range [2][2]int{{m.edges[k].I, 2*k + 1}, {m.edges[k].J, 2 * k}} {
		s, p := se[0], se[1]
		for {
			bs := m.inblossom[s]
			if m.label[bs] != 1 {
				panic("blossom: augment through non-S blossom")
			}
			if m.labelend[bs] != m.mate[m.blossombase[bs]] {
				panic("blossom: inconsistent label endpoint")
			}
			if bs >= m.n {
				m.augmentBlossom(bs, s)
			}
			m.mate[s] = p
			if m.labelend[bs] == -1 {
				break // reached a single vertex: path complete
			}
			t := m.endpoint[m.labelend[bs]]
			bt := m.inblossom[t]
			if m.label[bt] != 2 {
				panic("blossom: expected T blossom on augmenting path")
			}
			s = m.endpoint[m.labelend[bt]]
			j := m.endpoint[m.labelend[bt]^1]
			if m.blossombase[bt] != t {
				panic("blossom: T blossom base mismatch")
			}
			if bt >= m.n {
				m.augmentBlossom(bt, j)
			}
			m.mate[j] = m.labelend[bt]
			p = m.labelend[bt] ^ 1
		}
	}
}

// Solve computes the matching on the graph prepared by the last Reset and
// returns mate as a freshly allocated slice (never aliased to matcher
// state, so callers may retain or mutate it). Solve consumes the prepared
// state; call Reset again before the next Solve.
func (m *Matcher) Solve(maxCardinality bool) []int {
	if len(m.edges) == 0 || m.n == 0 {
		return fill(m.n, -1)
	}
	for t := 0; t < m.n; t++ {
		// Each stage finds one augmenting path (or gives up).
		for i := range m.label {
			m.label[i] = 0
		}
		for i := range m.bestedge {
			m.bestedge[i] = -1
		}
		for b := m.n; b < 2*m.n; b++ {
			m.blossombestedges[b] = nil
		}
		for i := range m.allowedge {
			m.allowedge[i] = false
		}
		m.queue = m.queue[:0]
		for v := 0; v < m.n; v++ {
			if m.mate[v] == -1 && m.label[m.inblossom[v]] == 0 {
				m.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			// Substage: scan S-vertices until augmentation or stuck.
			for len(m.queue) > 0 && !augmented {
				v := m.queue[len(m.queue)-1]
				m.queue = m.queue[:len(m.queue)-1]
				if m.label[m.inblossom[v]] != 1 {
					panic("blossom: queued vertex not in S blossom")
				}
			neighbors:
				for _, p := range m.neighbend[v] {
					k := p / 2
					w := m.endpoint[p]
					if m.inblossom[v] == m.inblossom[w] {
						continue // internal edge
					}
					if !m.allowedge[k] {
						kslack := m.slack(k)
						if kslack <= 0 {
							m.allowedge[k] = true
						}
					}
					if m.allowedge[k] {
						switch m.label[m.inblossom[w]] {
						case 0:
							m.assignLabel(w, 2, p^1)
						case 1:
							base := m.scanBlossom(v, w)
							if base >= 0 {
								m.addBlossom(base, k)
							} else {
								m.augmentMatching(k)
								augmented = true
								break neighbors
							}
						default:
							if m.label[w] == 0 {
								m.label[w] = 2
								m.labelend[w] = p ^ 1
							}
						}
					} else if m.label[m.inblossom[w]] == 1 {
						b := m.inblossom[v]
						kslack := m.slack(k)
						if m.bestedge[b] == -1 || kslack < m.slack(m.bestedge[b]) {
							m.bestedge[b] = k
						}
					} else if m.label[w] == 0 {
						kslack := m.slack(k)
						if m.bestedge[w] == -1 || kslack < m.slack(m.bestedge[w]) {
							m.bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Compute the dual adjustment delta.
			deltatype := -1
			var delta float64
			var deltaedge, deltablossom int
			if !maxCardinality {
				deltatype = 1
				delta = maxf(0, minDual(m.dualvar[:m.n]))
			}
			for v := 0; v < m.n; v++ {
				if m.label[m.inblossom[v]] == 0 && m.bestedge[v] != -1 {
					d := m.slack(m.bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = m.bestedge[v]
					}
				}
			}
			for b := 0; b < 2*m.n; b++ {
				if m.blossomparent[b] == -1 && m.label[b] == 1 && m.bestedge[b] != -1 {
					kslack := m.slack(b2e(m.bestedge[b]))
					d := kslack / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = m.bestedge[b]
					}
				}
			}
			for b := m.n; b < 2*m.n; b++ {
				if m.blossombase[b] >= 0 && m.blossomparent[b] == -1 && m.label[b] == 2 {
					if deltatype == -1 || m.dualvar[b] < delta {
						delta = m.dualvar[b]
						deltatype = 4
						deltablossom = b
					}
				}
			}
			if deltatype == -1 {
				// No further progress possible (maxCardinality stuck case).
				deltatype = 1
				delta = maxf(0, minDual(m.dualvar[:m.n]))
			}
			// Apply delta to dual variables.
			for v := 0; v < m.n; v++ {
				switch m.label[m.inblossom[v]] {
				case 1:
					m.dualvar[v] -= delta
				case 2:
					m.dualvar[v] += delta
				}
			}
			for b := m.n; b < 2*m.n; b++ {
				if m.blossombase[b] >= 0 && m.blossomparent[b] == -1 {
					switch m.label[b] {
					case 1:
						m.dualvar[b] += delta
					case 2:
						m.dualvar[b] -= delta
					}
				}
			}
			// Act on the delta type.
			switch deltatype {
			case 1:
				// Optimum reached.
				goto endstage
			case 2:
				m.allowedge[deltaedge] = true
				i := m.edges[deltaedge].I
				if m.label[m.inblossom[i]] == 0 {
					i = m.edges[deltaedge].J
				}
				if m.label[m.inblossom[i]] != 1 {
					panic("blossom: delta-2 edge has no S endpoint")
				}
				m.queue = append(m.queue, i)
			case 3:
				m.allowedge[deltaedge] = true
				i := m.edges[deltaedge].I
				if m.label[m.inblossom[i]] != 1 {
					panic("blossom: delta-3 edge has no S endpoint")
				}
				m.queue = append(m.queue, i)
			case 4:
				m.expandBlossom(deltablossom, false)
			}
		}
	endstage:
		if !augmented {
			break
		}
		// End of a successful stage: expand all S-blossoms with zero dual.
		for b := m.n; b < 2*m.n; b++ {
			if m.blossomparent[b] == -1 && m.blossombase[b] >= 0 &&
				m.label[b] == 1 && m.dualvar[b] == 0 {
				m.expandBlossom(b, true)
			}
		}
	}
	// Transform mate from endpoints to vertices.
	out := fill(m.n, -1)
	for v := 0; v < m.n; v++ {
		if m.mate[v] >= 0 {
			out[v] = m.endpoint[m.mate[v]]
		}
	}
	for v := 0; v < m.n; v++ {
		if out[v] != -1 && out[out[v]] != v {
			panic("blossom: asymmetric matching")
		}
	}
	return out
}

// b2e exists for symmetry with the reference implementation where
// bestedge stores edge indices directly.
func b2e(k int) int { return k }

func minDual(d []float64) float64 {
	min := d[0]
	for _, v := range d[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	panic("blossom: element not found")
}

func mod(a, n int) int {
	r := a % n
	if r < 0 {
		r += n
	}
	return r
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
