package blossom

import (
	"sync"
	"sync/atomic"

	"muri/internal/metrics"
)

// matcherPool recycles Matcher state across MatchPooled calls. The
// grouping planner matches every GPU bucket every round every scheduling
// interval; recycling keeps the ~15 state slices warm instead of
// reallocating them per call.
var (
	matcherPool = sync.Pool{New: func() any {
		poolNews.Add(1)
		return new(Matcher)
	}}
	poolGets atomic.Uint64
	poolNews atomic.Uint64
)

// MatchPooled is MaxWeightMatching on pool-backed reusable state. The
// matching is bit-identical to the one-shot form (Reset restores exact
// fresh-construction state; see TestMatchPooledEquivalence). Contract: the
// caller's edges slice is read during the call only — the pooled matcher
// drops its reference before returning — and the returned mate slice is
// freshly allocated, so callers may retain or mutate both freely.
func MatchPooled(n int, edges []Edge, maxCardinality bool) []int {
	poolGets.Add(1)
	m := matcherPool.Get().(*Matcher)
	m.Reset(n, edges)
	out := m.Solve(maxCardinality)
	m.edges = nil
	matcherPool.Put(m)
	return out
}

// PoolStats snapshots the matcher-pool counters: Gets counts MatchPooled
// calls, News the subset that had to construct a fresh Matcher. The
// difference is the number of calls that reused recycled state.
func PoolStats() metrics.MatcherPoolStats {
	return metrics.MatcherPoolStats{Gets: poolGets.Load(), News: poolNews.Load()}
}
