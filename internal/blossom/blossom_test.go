package blossom

import (
	"math"
	"math/rand"
	"testing"
)

func checkValidMatching(t *testing.T, n int, edges []Edge, mate []int) {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate has length %d, want %d", len(mate), n)
	}
	adjacent := make(map[[2]int]bool)
	for _, e := range edges {
		adjacent[[2]int{e.I, e.J}] = true
		adjacent[[2]int{e.J, e.I}] = true
	}
	for v, w := range mate {
		if w == -1 {
			continue
		}
		if w < 0 || w >= n {
			t.Fatalf("mate[%d] = %d out of range", v, w)
		}
		if mate[w] != v {
			t.Fatalf("asymmetric: mate[%d]=%d but mate[%d]=%d", v, w, w, mate[w])
		}
		if !adjacent[[2]int{v, w}] {
			t.Fatalf("matched pair (%d,%d) is not an edge", v, w)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	mate := MaxWeightMatching(0, nil, false)
	if len(mate) != 0 {
		t.Errorf("empty graph mate = %v, want []", mate)
	}
	mate = MaxWeightMatching(3, nil, false)
	for v, w := range mate {
		if w != -1 {
			t.Errorf("mate[%d] = %d, want -1 for edgeless graph", v, w)
		}
	}
}

func TestSingleEdge(t *testing.T) {
	mate := MaxWeightMatching(2, []Edge{{0, 1, 1}}, false)
	if mate[0] != 1 || mate[1] != 0 {
		t.Errorf("mate = %v, want [1 0]", mate)
	}
}

func TestNegativeEdgeSkipped(t *testing.T) {
	mate := MaxWeightMatching(2, []Edge{{0, 1, -5}}, false)
	if mate[0] != -1 || mate[1] != -1 {
		t.Errorf("mate = %v, want unmatched for negative weight", mate)
	}
	// With maxCardinality the negative edge must be used anyway.
	mate = MaxWeightMatching(2, []Edge{{0, 1, -5}}, true)
	if mate[0] != 1 {
		t.Errorf("maxCardinality mate = %v, want [1 0]", mate)
	}
}

func TestPathPicksBestPair(t *testing.T) {
	// Path 1-2-3 with weights 10 and 11: only one edge can be used.
	mate := MaxWeightMatching(4, []Edge{{1, 2, 10}, {2, 3, 11}}, false)
	if mate[2] != 3 || mate[3] != 2 || mate[1] != -1 {
		t.Errorf("mate = %v, want 2-3 matched", mate)
	}
}

func TestPathPrefersTwoEdgesWhenHeavier(t *testing.T) {
	// Path 1-2-3-4: 5+8 > 11 alone? (1,2)=5 (2,3)=11 (3,4)=5: best is 11.
	mate := MaxWeightMatching(5, []Edge{{1, 2, 5}, {2, 3, 11}, {3, 4, 5}}, false)
	if mate[2] != 3 {
		t.Errorf("mate = %v, want middle edge", mate)
	}
	// With weights (1,2)=8 (2,3)=10 (3,4)=8 the two outer edges win.
	mate = MaxWeightMatching(5, []Edge{{1, 2, 8}, {2, 3, 10}, {3, 4, 8}}, false)
	if mate[1] != 2 || mate[3] != 4 {
		t.Errorf("mate = %v, want outer edges", mate)
	}
}

func TestTriangleBlossom(t *testing.T) {
	// A triangle forces a blossom; extra pendant vertex resolves it.
	// Classic van Rantwijk test case 14: "create S-blossom and use it for
	// augmentation".
	edges := []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}}
	mate := MaxWeightMatching(5, edges, false)
	want := []int{-1, 2, 1, 4, 3}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
}

func TestSBlossomWithPendants(t *testing.T) {
	// van Rantwijk test 14 variant with two pendant edges.
	edges := []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 5, 6}}
	mate := MaxWeightMatching(7, edges, false)
	want := []int{-1, 6, 3, 2, 5, 4, 1}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
}

func TestTBlossomAugmentation(t *testing.T) {
	// van Rantwijk test 15: create nested S-blossom and use for augmentation.
	edges := []Edge{{1, 2, 9}, {1, 3, 9}, {2, 3, 10}, {2, 4, 8}, {3, 5, 8}, {4, 5, 10}, {5, 6, 6}}
	mate := MaxWeightMatching(7, edges, false)
	want := []int{-1, 3, 4, 1, 2, 6, 5}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
}

func TestNestedSBlossomExpansion(t *testing.T) {
	// van Rantwijk test 21: create nested S-blossom, augment, expand nested.
	edges := []Edge{
		{1, 2, 9}, {1, 3, 9}, {2, 3, 10}, {2, 4, 8}, {3, 5, 8},
		{4, 5, 10}, {5, 6, 6},
	}
	mate := MaxWeightMatching(7, edges, false)
	checkValidMatching(t, 7, edges, mate)
	got := MatchingWeight(mate, edges)
	want := BruteForceMaxWeight(7, edges, false)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weight = %v, want %v", got, want)
	}
}

func TestSToTBlossomRelabel(t *testing.T) {
	// van Rantwijk test 20: create blossom, relabel as T-blossom, use for
	// augmentation.
	edges := []Edge{
		{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3},
	}
	mate := MaxWeightMatching(7, edges, false)
	want := []int{-1, 6, 3, 2, 5, 4, 1}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
}

func TestBlossomExpandDuringDelta4(t *testing.T) {
	// van Rantwijk test 23: create blossom, expand it during dual phase.
	edges := []Edge{
		{1, 2, 8}, {1, 3, 8}, {2, 3, 10}, {2, 4, 12}, {3, 5, 12},
		{4, 5, 14}, {4, 6, 12}, {5, 7, 12}, {6, 7, 14}, {7, 8, 12},
	}
	mate := MaxWeightMatching(9, edges, false)
	want := []int{-1, 2, 1, 5, 6, 3, 4, 8, 7}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
}

func TestNastyBlossomExpansion(t *testing.T) {
	// van Rantwijk tests 24–26: blossom expansion corner cases where the
	// augmenting path goes through different parts of the expanded blossom.
	cases := [][]Edge{
		{
			{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
			{1, 6, 30}, {3, 9, 35}, {4, 8, 35}, {5, 7, 26}, {9, 10, 5},
		},
		{
			{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
			{1, 6, 30}, {3, 9, 35}, {4, 8, 26}, {5, 7, 40}, {9, 10, 5},
		},
		{
			{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
			{1, 6, 30}, {3, 9, 35}, {4, 8, 28}, {5, 7, 26}, {9, 10, 5},
		},
	}
	wants := [][]int{
		{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9},
		{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9},
		{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9},
	}
	for ci, edges := range cases {
		mate := MaxWeightMatching(11, edges, false)
		for v := range wants[ci] {
			if mate[v] != wants[ci][v] {
				t.Fatalf("case %d: mate = %v, want %v", ci, mate, wants[ci])
			}
		}
	}
}

func TestMaxCardinality(t *testing.T) {
	// van Rantwijk test 16: max cardinality changes the answer.
	edges := []Edge{{1, 2, 5}, {2, 3, 11}, {3, 4, 5}}
	mate := MaxWeightMatching(5, edges, true)
	want := []int{-1, 2, 1, 4, 3}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("maxCardinality mate = %v, want %v", mate, want)
		}
	}
}

func TestFloatingPointWeights(t *testing.T) {
	// van Rantwijk test 17: floating point weights.
	edges := []Edge{
		{1, 2, math.Pi}, {2, 3, math.Exp(1)}, {1, 3, 3.0}, {1, 4, math.Sqrt(2.0)},
	}
	mate := MaxWeightMatching(5, edges, false)
	want := []int{-1, 4, 3, 2, 1}
	for v := range want {
		if mate[v] != want[v] {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop should panic")
		}
	}()
	MaxWeightMatching(2, []Edge{{1, 1, 3}}, false)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint should panic")
		}
	}()
	MaxWeightMatching(2, []Edge{{0, 5, 3}}, false)
}

func randomGraph(rng *rand.Rand, n, maxEdges int, intWeights bool) []Edge {
	var edges []Edge
	ne := rng.Intn(maxEdges + 1)
	for e := 0; e < ne; e++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		var w float64
		if intWeights {
			w = float64(rng.Intn(100))
		} else {
			w = rng.Float64() * 100
		}
		edges = append(edges, Edge{i, j, w})
	}
	return edges
}

func TestRandomAgainstBruteForceIntWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(9)
		edges := randomGraph(rng, n, 2*n, true)
		mate := MaxWeightMatching(n, edges, false)
		checkValidMatching(t, n, edges, mate)
		got := MatchingWeight(mate, edges)
		want := BruteForceMaxWeight(n, edges, false)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: n=%d edges=%v\nmatching weight = %v, brute force = %v\nmate = %v",
				trial, n, edges, got, want, mate)
		}
	}
}

func TestRandomAgainstBruteForceFloatWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		edges := randomGraph(rng, n, 2*n, false)
		mate := MaxWeightMatching(n, edges, false)
		checkValidMatching(t, n, edges, mate)
		got := MatchingWeight(mate, edges)
		want := BruteForceMaxWeight(n, edges, false)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: n=%d edges=%v\nmatching weight = %v, brute force = %v",
				trial, n, edges, got, want)
		}
	}
}

func TestRandomMaxCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		edges := randomGraph(rng, n, 2*n, true)
		mate := MaxWeightMatching(n, edges, true)
		checkValidMatching(t, n, edges, mate)
		got := MatchingWeight(mate, edges)
		want := BruteForceMaxWeight(n, edges, true)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: n=%d edges=%v\nweight = %v, want %v", trial, n, edges, got, want)
		}
	}
}

func TestDenseCompleteGraphs(t *testing.T) {
	// Complete graphs with efficiency-like weights in [0,1] — the exact
	// shape Muri's grouping produces.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, Edge{i, j, rng.Float64()})
			}
		}
		mate := MaxWeightMatching(n, edges, false)
		checkValidMatching(t, n, edges, mate)
		got := MatchingWeight(mate, edges)
		want := BruteForceMaxWeight(n, edges, false)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: weight = %v, want %v", trial, got, want)
		}
		// All-positive weights on a complete graph: everyone pairs up.
		if Cardinality(mate) != n/2 {
			t.Fatalf("trial %d: cardinality = %d, want %d", trial, Cardinality(mate), n/2)
		}
	}
}

func TestLargeGraphSmoke(t *testing.T) {
	// 200-vertex complete graph: validates O(n³) implementation stability.
	rng := rand.New(rand.NewSource(5))
	n := 200
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j, rng.Float64()})
		}
	}
	mate := MaxWeightMatching(n, edges, false)
	checkValidMatching(t, n, edges, mate)
	if Cardinality(mate) != n/2 {
		t.Errorf("cardinality = %d, want %d", Cardinality(mate), n/2)
	}
}

func BenchmarkMaxWeightMatching100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j, rng.Float64()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightMatching(n, edges, false)
	}
}
