package blossom

import (
	"math/rand"
	"testing"
)

// equalMates reports whether two mate arrays are identical elementwise.
func equalMates(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMatchPooledEquivalence is the pooling contract's property test: a
// pooled matcher — whose state is recycled across arbitrarily many prior
// solves of unrelated graphs — must return a mate array identical to the
// one-shot MaxWeightMatching on every input. 300 random graphs spanning
// sparse and complete shapes, both cardinality modes.
func TestMatchPooledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(40)
		var edges []Edge
		if trial%3 == 0 {
			// Complete graph with efficiency-like weights.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					edges = append(edges, Edge{i, j, rng.Float64()})
				}
			}
		} else {
			edges = randomGraph(rng, n, 4*n, trial%2 == 0)
		}
		maxCard := trial%5 == 0
		want := MaxWeightMatching(n, edges, maxCard)
		got := MatchPooled(n, edges, maxCard)
		if !equalMates(got, want) {
			t.Fatalf("trial %d: pooled mate differs\none-shot: %v\npooled:   %v\nn=%d edges=%v maxCard=%v",
				trial, want, got, n, edges, maxCard)
		}
	}
	if s := PoolStats(); s.Gets == 0 {
		t.Fatal("pool counters not advancing")
	}
}

// TestMatcherReuseEquivalence drives a single long-lived Matcher through
// 200 consecutive graphs, checking each solve against a fresh one-shot
// run: Reset must restore exact fresh-construction state even after
// solves that leave collapsed blossoms behind.
func TestMatcherReuseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Matcher
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		edges := randomGraph(rng, n, 3*n, false)
		want := MaxWeightMatching(n, edges, false)
		m.Reset(n, edges)
		got := m.Solve(false)
		if !equalMates(got, want) {
			t.Fatalf("trial %d: reused matcher diverged\nwant %v\ngot  %v", trial, want, got)
		}
	}
}

// TestMatchPooledResultIsFresh pins the no-retained-references contract:
// mutating a returned mate slice must not corrupt a later pooled solve.
func TestMatchPooledResultIsFresh(t *testing.T) {
	edges := []Edge{{0, 1, 2}, {1, 2, 3}, {2, 3, 2}}
	first := MatchPooled(4, edges, false)
	for i := range first {
		first[i] = -99
	}
	second := MatchPooled(4, edges, false)
	want := MaxWeightMatching(4, edges, false)
	if !equalMates(second, want) {
		t.Fatalf("pooled result aliased matcher state: got %v want %v", second, want)
	}
}
