package blossom

// BruteForceMaxWeight computes the maximum total matching weight by
// exhaustive search. It is exponential and exists only as a test oracle
// for MaxWeightMatching on small graphs.
func BruteForceMaxWeight(n int, edges []Edge, maxCardinality bool) float64 {
	used := make([]bool, n)
	bestWeight := 0.0
	bestCard := 0
	var rec func(k int, weight float64, card int)
	rec = func(k int, weight float64, card int) {
		if maxCardinality {
			if card > bestCard || (card == bestCard && weight > bestWeight) {
				bestCard = card
				bestWeight = weight
			}
		} else if weight > bestWeight {
			bestWeight = weight
		}
		for ; k < len(edges); k++ {
			e := edges[k]
			if used[e.I] || used[e.J] {
				continue
			}
			used[e.I], used[e.J] = true, true
			rec(k+1, weight+e.Weight, card+1)
			used[e.I], used[e.J] = false, false
		}
	}
	rec(0, 0, 0)
	return bestWeight
}

// MatchingWeight sums the weights of the edges selected by mate. When two
// vertices are mutually matched, the heaviest edge between them is counted
// (parallel edges are legal input).
func MatchingWeight(mate []int, edges []Edge) float64 {
	best := make(map[[2]int]float64)
	for _, e := range edges {
		i, j := e.I, e.J
		if i > j {
			i, j = j, i
		}
		key := [2]int{i, j}
		if w, ok := best[key]; !ok || e.Weight > w {
			best[key] = e.Weight
		}
	}
	total := 0.0
	for v, w := range mate {
		if w > v {
			total += best[[2]int{v, w}]
		}
	}
	return total
}

// Cardinality returns the number of matched pairs in mate.
func Cardinality(mate []int) int {
	c := 0
	for v, w := range mate {
		if w > v {
			c++
		}
	}
	return c
}
