package wal

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"muri/internal/engine"
)

func testRecord(i int) *Record {
	return &Record{
		Kind: KindDecision,
		V:    int64(i) * int64(time.Millisecond),
		Decision: &DecisionRecord{
			Seq:    uint64(i),
			Action: "launch",
			Key:    "exclusive:1,2",
			Jobs:   []int64{1, 2},
		},
	}
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 1; i <= n; i++ {
		lsn, err := w.Append(testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d: lsn %d", i, lsn)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corruption != nil {
		t.Fatalf("unexpected corruption: %v", rec.Corruption)
	}
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		want := testRecord(i + 1)
		want.LSN = uint64(i + 1)
		if !reflect.DeepEqual(&r, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, r, want)
		}
	}
	if rec.NextLSN != n+1 {
		t.Fatalf("NextLSN %d, want %d", rec.NextLSN, n+1)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{})
	for i := 1; i <= 3; i++ {
		w.Append(testRecord(i))
	}
	w.Close()
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w2.Append(testRecord(4))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("lsn after reopen: %d, want 4", lsn)
	}
	w2.Close()
	rec, _ := Recover(dir)
	if len(rec.Records) != 4 || rec.Corruption != nil {
		t.Fatalf("got %d records, corruption %v", len(rec.Records), rec.Corruption)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SegmentBytes: 256, SyncEvery: 1})
	const n = 20
	for i := 1; i <= n; i++ {
		w.Append(testRecord(i))
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	rec, _ := Recover(dir)
	if len(rec.Records) != n || rec.Corruption != nil {
		t.Fatalf("got %d records across segments, corruption %v", len(rec.Records), rec.Corruption)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SyncEvery: 1})
	for i := 1; i <= 5; i++ {
		w.Append(testRecord(i))
	}
	pos := w.Position()
	w.Close()

	// Tear the last record: chop bytes off the segment's tail.
	seg := filepath.Join(dir, segName(pos.Segment))
	fi, _ := os.Stat(seg)
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corruption == nil {
		t.Fatal("expected corruption report for torn tail")
	}
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records before the tear, want 4", len(rec.Records))
	}
	if rec.NextLSN != 5 {
		t.Fatalf("NextLSN %d, want 5", rec.NextLSN)
	}

	// Reopening truncates the tear and appending continues cleanly.
	w2, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, _ := w2.Append(testRecord(5)); lsn != 5 {
		t.Fatalf("post-truncate lsn %d, want 5", lsn)
	}
	w2.Close()
	rec2, _ := Recover(dir)
	if rec2.Corruption != nil || len(rec2.Records) != 5 {
		t.Fatalf("after reopen: %d records, corruption %v", len(rec2.Records), rec2.Corruption)
	}
}

func TestBitFlipStopsScan(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SyncEvery: 1})
	for i := 1; i <= 5; i++ {
		w.Append(testRecord(i))
	}
	pos := w.Position()
	w.Close()

	seg := filepath.Join(dir, segName(pos.Segment))
	data, _ := os.ReadFile(seg)
	// Flip one bit in the third record's payload. Records are equal-sized
	// here except for the V field digits; find the third frame by walking.
	off := 0
	for i := 0; i < 2; i++ {
		size := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += frameHeader + size
	}
	data[off+frameHeader+4] ^= 0x40
	os.WriteFile(seg, data, 0o644)

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corruption == nil {
		t.Fatal("expected corruption report for bit flip")
	}
	if rec.Corruption.Offset != int64(off) {
		t.Fatalf("corruption offset %d, want %d", rec.Corruption.Offset, off)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records before the flip, want 2", len(rec.Records))
	}
}

func TestAbandonLosesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SyncEvery: 100})
	for i := 1; i <= 3; i++ {
		w.Append(testRecord(i))
	}
	w.Sync()
	for i := 4; i <= 6; i++ {
		w.Append(testRecord(i)) // buffered, never synced
	}
	w.Abandon()
	rec, _ := Recover(dir)
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want only the 3 synced ones", len(rec.Records))
	}
}

func TestSnapshotAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SegmentBytes: 256, SyncEvery: 1})
	for i := 1; i <= 10; i++ {
		w.Append(testRecord(i))
	}
	snap := &Snapshot{
		LSN:       10,
		Term:      3,
		TakenWall: 12345,
		V:         int64(time.Second),
		Engine:    engine.Snapshot{Seq: 10},
		NextGroup: 7,
		NextJobID: 11,
	}
	if err := w.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 14; i++ {
		w.Append(testRecord(i))
	}
	w.Close()

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.LSN != 10 || rec.Snapshot.Term != 3 {
		t.Fatalf("snapshot not recovered: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 4 || rec.Records[0].LSN != 11 {
		t.Fatalf("tail: %d records starting at %d", len(rec.Records), rec.Records[0].LSN)
	}
	if rec.NextLSN != 15 {
		t.Fatalf("NextLSN %d, want 15", rec.NextLSN)
	}

	// Segments wholly below the snapshot were pruned.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	for _, s := range segs {
		var first uint64
		if lsn, ok := parseName(filepath.Base(s), segPrefix, segSuffix); ok {
			first = lsn
		}
		_ = first
	}
	if len(segs) == 0 {
		t.Fatal("pruning removed the live tail")
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SyncEvery: 1})
	for i := 1; i <= 4; i++ {
		w.Append(testRecord(i))
	}
	w.WriteSnapshot(&Snapshot{LSN: 2, NextJobID: 3})
	w.WriteSnapshot(&Snapshot{LSN: 4, NextJobID: 5})
	w.Close()

	// Newest snapshot may have been pruned down to just snap-4; write a
	// corrupt newer one and make sure recovery falls back.
	os.WriteFile(filepath.Join(dir, snapName(9)), []byte("garbage"), 0o644)
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.LSN != 4 {
		t.Fatalf("fallback snapshot: %+v", rec.Snapshot)
	}
}

func TestRawReplicationRoundtrip(t *testing.T) {
	leaderDir, standbyDir := t.TempDir(), t.TempDir()
	sw, _ := Open(standbyDir, Options{SyncEvery: 1})
	lw, _ := Open(leaderDir, Options{
		SyncEvery: 1,
		OnAppend: func(lsn uint64, fr []byte) {
			cp := make([]byte, len(fr))
			copy(cp, fr)
			if err := sw.AppendRaw(lsn, cp); err != nil {
				t.Errorf("standby append: %v", err)
			}
		},
	})
	for i := 1; i <= 6; i++ {
		lw.Append(testRecord(i))
	}
	lw.Close()
	sw.Close()

	lr, _ := Recover(leaderDir)
	sr, _ := Recover(standbyDir)
	if !reflect.DeepEqual(lr.Records, sr.Records) {
		t.Fatal("standby replica diverged from leader WAL")
	}
	// Byte-identical segments, not just logically equal records.
	lb, _ := os.ReadFile(filepath.Join(leaderDir, segName(1)))
	sb, _ := os.ReadFile(filepath.Join(standbyDir, segName(1)))
	if string(lb) != string(sb) {
		t.Fatal("standby segment bytes differ from leader")
	}
}

func TestAppendRawGapRejected(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{})
	defer w.Close()
	fr := frame(nil, []byte(`{"lsn":5,"kind":"term"}`))
	if err := w.AppendRaw(5, fr); err == nil {
		t.Fatal("expected LSN-gap rejection")
	}
}

func TestInstallSnapshotResetsLog(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SyncEvery: 1})
	for i := 1; i <= 3; i++ {
		w.Append(testRecord(i))
	}
	// A leader snapshot from far ahead.
	leaderDir := t.TempDir()
	lw, _ := Open(leaderDir, Options{SyncEvery: 1})
	for i := 1; i <= 20; i++ {
		lw.Append(testRecord(i))
	}
	lw.WriteSnapshot(&Snapshot{LSN: 20, Term: 2, NextJobID: 21})
	fr, lsn, ok, err := lw.SnapshotRaw()
	if err != nil || !ok || lsn != 20 {
		t.Fatalf("SnapshotRaw: %v ok=%v lsn=%d", err, ok, lsn)
	}
	lw.Close()

	s, err := w.InstallSnapshot(fr)
	if err != nil {
		t.Fatal(err)
	}
	if s.LSN != 20 || s.Term != 2 {
		t.Fatalf("installed snapshot: %+v", s)
	}
	if err := w.AppendRaw(21, frameFor(t, 21)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rec, _ := Recover(dir)
	if rec.Snapshot == nil || rec.Snapshot.LSN != 20 || len(rec.Records) != 1 || rec.Records[0].LSN != 21 {
		t.Fatalf("post-install recovery: snap=%+v records=%d", rec.Snapshot, len(rec.Records))
	}
}

func frameFor(t *testing.T, lsn uint64) []byte {
	t.Helper()
	r := testRecord(int(lsn))
	r.LSN = lsn
	payload, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return frame(nil, payload)
}

func TestSyncLatencyHook(t *testing.T) {
	dir := t.TempDir()
	var syncs, recs int
	w, _ := Open(dir, Options{
		SyncEvery: 3,
		OnSync: func(d time.Duration, n int) {
			syncs++
			recs += n
		},
	})
	for i := 1; i <= 7; i++ {
		w.Append(testRecord(i))
	}
	w.Close() // flushes the last partial batch
	if syncs != 3 {
		t.Fatalf("fsyncs %d, want 3 (two batches of 3 + close)", syncs)
	}
	if recs != 7 {
		t.Fatalf("records synced %d, want 7", recs)
	}
}

func TestEmptyDirRecovery(t *testing.T) {
	rec, err := Recover(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.NextLSN != 1 || rec.Corruption != nil {
		t.Fatalf("empty recovery: %+v", rec)
	}
}
