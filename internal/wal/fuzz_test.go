package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecover feeds arbitrary bytes to the segment scanner as a WAL
// file: recovery must never panic, must report corruption with an
// offset inside the input, and every record it does return must have
// decoded from a checksum-valid frame. Torn writes, truncated tails and
// bit flips are all just special cases of "arbitrary bytes after a
// valid prefix".
func FuzzRecover(f *testing.F) {
	// Seed with a valid log prefix, a torn tail, and junk.
	valid := func(n int) []byte {
		var out []byte
		for i := 1; i <= n; i++ {
			r := testRecord(i)
			r.LSN = uint64(i)
			payload, _ := json.Marshal(r)
			out = append(out, frame(nil, payload)...)
		}
		return out
	}
	f.Add([]byte{})
	f.Add(valid(3))
	f.Add(valid(2)[:len(valid(2))-5])
	f.Add([]byte("not a wal segment at all"))
	f.Add(append(valid(1), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("Recover returned an I/O error on in-memory-valid input: %v", err)
		}
		if c := rec.Corruption; c != nil {
			if c.Offset < 0 || c.Offset > int64(len(data)) {
				t.Fatalf("corruption offset %d outside input of %d bytes", c.Offset, len(data))
			}
			if c.Reason == "" {
				t.Fatal("corruption with empty reason")
			}
		}
		// Recovered records must be internally consistent: contiguous LSNs
		// starting at 1 (no snapshot in this harness).
		for i, r := range rec.Records {
			if r.LSN != uint64(i+1) {
				t.Fatalf("record %d has LSN %d", i, r.LSN)
			}
		}
		if want := uint64(len(rec.Records) + 1); rec.NextLSN != want {
			t.Fatalf("NextLSN %d with %d records", rec.NextLSN, len(rec.Records))
		}
	})
}

// FuzzDecodeRawRecord hardens the standby-side frame decoder the same
// way: arbitrary replicated bytes must never panic it.
func FuzzDecodeRawRecord(f *testing.F) {
	r := testRecord(1)
	r.LSN = 1
	payload, _ := json.Marshal(r)
	f.Add(frame(nil, payload))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRawRecord(data)
		if err == nil && rec == nil {
			t.Fatal("nil record without error")
		}
	})
}
