// Package wal is the daemon's durability layer: an append-only,
// checksummed write-ahead log of every recoverable mutation (engine
// decisions, admission batches, fault-ledger changes) plus periodic
// full-state snapshots, so recovery is snapshot-load + tail-replay.
//
// On-disk layout inside the state dir:
//
//	wal-<firstLSN>.seg   length-prefixed records: [len u32][crc32c u32][json]
//	snap-<LSN>.snap      one framed wal.Snapshot record
//
// Records carry monotonically increasing LSNs. Appends are buffered in
// user space and fsynced every Options.SyncEvery records (and on
// Sync/Close), so a crash loses at most the unsynced tail — recovery
// treats a torn or corrupt record as the end of the log, truncates it,
// and resumes from the last durable prefix. The same byte frames are
// streamed verbatim to warm standbys, whose replica WALs are therefore
// byte-identical to the leader's.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sync"

	"muri/internal/crashpoint"
)

const (
	frameHeader = 8 // 4-byte big-endian length + 4-byte CRC32-C of the payload
	// MaxRecordSize bounds a single record payload; anything larger in a
	// length prefix is corruption, not a record.
	MaxRecordSize = 16 << 20

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Corruption reports where a WAL scan stopped: the segment's first LSN,
// the byte offset of the bad frame inside that segment, and why. A torn
// tail (crash mid-write) surfaces here and is expected; recovery
// truncates it and continues from the preceding record.
type Corruption struct {
	Segment uint64
	Offset  int64
	Reason  string
}

func (c *Corruption) Error() string {
	return fmt.Sprintf("wal: corrupt record in segment %d at offset %d: %s", c.Segment, c.Offset, c.Reason)
}

// Position identifies a point in the log for status reporting.
type Position struct {
	// Segment is the first LSN of the active segment file.
	Segment uint64
	// Offset is the byte offset within the active segment (including
	// user-space buffered bytes not yet written through).
	Offset int64
	// LSN is the last assigned LSN (0 when the log is empty).
	LSN uint64
}

// Options configures a Writer.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one grows
	// past this size. Default 8 MiB.
	SegmentBytes int64
	// SyncEvery fsyncs after this many appended records. 1 = every
	// record; larger values batch fsyncs and widen the loss window by
	// the same count. Default 64.
	SyncEvery int
	// OnSync observes each fsync: its latency and how many records it
	// made durable. Telemetry hook; may be nil.
	OnSync func(d time.Duration, records int)
	// OnAppend observes each appended frame (header + payload, the exact
	// bytes on disk) under the writer lock, in LSN order. Replication
	// tap; may be nil. The slice is only valid during the call.
	OnAppend func(lsn uint64, frame []byte)
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
}

// Writer appends records to the log. Safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f        *os.File
	bw       *bufio.Writer
	segFirst uint64 // first LSN of the active segment
	segOff   int64  // bytes appended to the active segment (incl. buffered)
	nextLSN  uint64
	pending  int // records appended since the last fsync
	closed   bool

	appends   uint64
	fsyncs    uint64
	snapLSN   uint64
	snapWall  int64
	snapValid bool
	scratch   []byte
}

// Open prepares dir for appending. It scans existing segments to find
// the next LSN, truncates any torn tail left by a crash, and starts a
// fresh segment. Open never discards durable records: the caller is
// expected to Recover(dir) first and replay what Open will preserve.
func Open(dir string, opts Options) (*Writer, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rec, err := Recover(dir)
	if err != nil {
		return nil, err
	}
	// Truncate a torn tail in place so the on-disk prefix is exactly the
	// replayable one; otherwise records appended after it would be
	// unreachable behind a permanently corrupt frame.
	if c := rec.Corruption; c != nil {
		seg := filepath.Join(dir, segName(c.Segment))
		if err := os.Truncate(seg, c.Offset); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	w := &Writer{dir: dir, opts: opts, nextLSN: rec.NextLSN}
	if w.nextLSN == 0 {
		w.nextLSN = 1
	}
	if s := rec.Snapshot; s != nil {
		w.snapLSN = s.LSN
		w.snapWall = s.TakenWall
		w.snapValid = true
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstLSN, segSuffix)
}

func snapName(lsn uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix)
}

// openSegmentLocked starts a new segment whose first record will be
// nextLSN. Caller holds w.mu (or is constructing w).
func (w *Writer) openSegmentLocked() error {
	if w.bw != nil {
		if err := w.flushLocked(true); err != nil {
			return err
		}
		w.f.Close()
	}
	path := filepath.Join(w.dir, segName(w.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segFirst = w.nextLSN
	w.segOff = 0
	return syncDir(w.dir)
}

// frame encodes payload into buf as [len][crc][payload], reusing buf.
func frame(buf []byte, payload []byte) []byte {
	buf = buf[:0]
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Append assigns the next LSN to rec, encodes and buffers it, and
// fsyncs if the batch threshold is reached. It returns the assigned LSN.
func (w *Writer) Append(rec *Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: writer closed")
	}
	rec.LSN = w.nextLSN
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	w.scratch = frame(w.scratch, payload)
	return rec.LSN, w.appendFrameLocked(rec.LSN, w.scratch)
}

// AppendRaw appends an already-framed record (as delivered by a
// leader's OnAppend tap) verbatim. The embedded LSN must be the next
// one; a gap means the replication stream dropped records.
func (w *Writer) AppendRaw(lsn uint64, fr []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer closed")
	}
	if lsn != w.nextLSN {
		return fmt.Errorf("wal: raw append LSN %d, want %d", lsn, w.nextLSN)
	}
	if len(fr) < frameHeader {
		return errors.New("wal: raw frame shorter than header")
	}
	return w.appendFrameLocked(lsn, fr)
}

func (w *Writer) appendFrameLocked(lsn uint64, fr []byte) error {
	if _, err := w.bw.Write(fr); err != nil {
		return err
	}
	w.segOff += int64(len(fr))
	w.nextLSN = lsn + 1
	w.pending++
	w.appends++
	if w.opts.OnAppend != nil {
		w.opts.OnAppend(lsn, fr)
	}
	if w.pending >= w.opts.SyncEvery {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if w.segOff >= w.opts.SegmentBytes {
		return w.openSegmentLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment. After it
// returns, every appended record survives a crash.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer closed")
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error { return w.flushLocked(true) }

func (w *Writer) flushLocked(fsync bool) error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if !fsync || w.pending == 0 {
		return nil
	}
	// The torn-tail window: buffered bytes are in the page cache but not
	// durable until the fsync below.
	crashpoint.Hit(crashpoint.MidFsync)
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	n := w.pending
	w.pending = 0
	w.fsyncs++
	if w.opts.OnSync != nil {
		w.opts.OnSync(time.Since(start), n)
	}
	return nil
}

// Position reports the active segment, its append offset, and the last
// assigned LSN.
func (w *Writer) Position() Position {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Position{Segment: w.segFirst, Offset: w.segOff, LSN: w.nextLSN - 1}
}

// Stats reports lifetime append and fsync counts plus the latest
// snapshot's LSN and wall time (0 if none).
func (w *Writer) Stats() (appends, fsyncs, snapLSN uint64, snapWall int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.fsyncs, w.snapLSN, w.snapWall
}

// WriteSnapshot persists s atomically (temp file + rename), records it
// as the latest checkpoint, and prunes snapshots and segments wholly
// covered by it. s.LSN must reflect every record already appended.
func (w *Writer) WriteSnapshot(s *Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer closed")
	}
	// Records the snapshot claims to cover must be durable before the
	// snapshot can supersede them.
	if err := w.syncLocked(); err != nil {
		return err
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return err
	}
	fr := frame(nil, payload)
	tmp := filepath.Join(w.dir, snapName(s.LSN)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(fr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The crash window: the temp file exists but was not published; a
	// restart ignores *.tmp and recovers from the previous snapshot.
	crashpoint.Hit(crashpoint.MidSnapshot)
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName(s.LSN))); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.snapLSN = s.LSN
	w.snapWall = s.TakenWall
	w.snapValid = true
	w.pruneLocked()
	return nil
}

// SnapshotRaw returns the latest published snapshot's framed bytes and
// LSN, for seeding a standby. ok is false when no snapshot exists.
func (w *Writer) SnapshotRaw() (fr []byte, lsn uint64, ok bool, err error) {
	w.mu.Lock()
	lsn, valid := w.snapLSN, w.snapValid
	w.mu.Unlock()
	if !valid {
		return nil, 0, false, nil
	}
	fr, err = os.ReadFile(filepath.Join(w.dir, snapName(lsn)))
	if err != nil {
		return nil, 0, false, err
	}
	return fr, lsn, true, nil
}

// InstallSnapshot replaces the entire local log with a leader-supplied
// framed snapshot: all local segments and snapshots are deleted, the
// snapshot is published, and appending resumes at its LSN + 1. Standby
// bootstrap only — it discards local history by design.
func (w *Writer) InstallSnapshot(fr []byte) (*Snapshot, error) {
	payload, _, err := decodeFrame(fr)
	if err != nil {
		return nil, fmt.Errorf("wal: installing snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("wal: installing snapshot: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, errors.New("wal: writer closed")
	}
	if w.bw != nil {
		w.bw.Flush()
		w.f.Close()
		w.bw, w.f = nil, nil
	}
	names, err := stateFiles(w.dir)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := os.Remove(filepath.Join(w.dir, n)); err != nil {
			return nil, err
		}
	}
	if err := os.WriteFile(filepath.Join(w.dir, snapName(s.LSN)), fr, 0o644); err != nil {
		return nil, err
	}
	if err := syncDir(w.dir); err != nil {
		return nil, err
	}
	w.snapLSN = s.LSN
	w.snapWall = s.TakenWall
	w.snapValid = true
	w.nextLSN = s.LSN + 1
	w.pending = 0
	return &s, w.openSegmentLocked()
}

// pruneLocked removes snapshots older than the latest and segments
// whose every record is covered by the latest snapshot.
func (w *Writer) pruneLocked() {
	names, err := stateFiles(w.dir)
	if err != nil {
		return
	}
	var segs []uint64
	for _, n := range names {
		if lsn, ok := parseName(n, snapPrefix, snapSuffix); ok && lsn < w.snapLSN {
			os.Remove(filepath.Join(w.dir, n))
		}
		if lsn, ok := parseName(n, segPrefix, segSuffix); ok {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	// A segment's records end where the next segment begins; only drop
	// segments wholly below the snapshot (never the active one).
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= w.snapLSN+1 && segs[i] != w.segFirst {
			os.Remove(filepath.Join(w.dir, segName(segs[i])))
		}
	}
}

// Close fsyncs the tail and closes the active segment. The graceful
// counterpart of Abandon.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	err := w.flushLocked(true)
	w.closed = true
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the file descriptor without flushing user-space
// buffers: everything since the last fsync is lost, exactly as in a
// crash. Test hook for in-process kill -9 simulation.
func (w *Writer) Abandon() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.f.Close()
}

// Recovery is the result of scanning a state dir: the latest loadable
// snapshot (nil if none), every decoded record after it in LSN order,
// the next LSN to append at, and — when the scan stopped early — where
// and why.
type Recovery struct {
	Snapshot   *Snapshot
	Records    []Record
	NextLSN    uint64
	Corruption *Corruption
}

// Recover scans dir without mutating it. It loads the newest snapshot
// that decodes (falling back to older ones if the newest is corrupt),
// then replays segment records with LSN > snapshot LSN. The scan stops
// at the first corrupt or torn record — reported, never panicked on —
// treating everything before it as the durable prefix.
func Recover(dir string) (*Recovery, error) {
	names, err := stateFiles(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &Recovery{NextLSN: 1}, nil
		}
		return nil, err
	}
	var snaps, segs []uint64
	for _, n := range names {
		if lsn, ok := parseName(n, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, lsn)
		}
		if lsn, ok := parseName(n, segPrefix, segSuffix); ok {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	rec := &Recovery{NextLSN: 1}
	for _, lsn := range snaps {
		s, err := readSnapshot(filepath.Join(dir, snapName(lsn)))
		if err != nil {
			continue // corrupt snapshot: fall back to the previous one
		}
		rec.Snapshot = s
		rec.NextLSN = s.LSN + 1
		break
	}

	last := rec.NextLSN - 1 // highest LSN accepted so far
scan:
	for _, first := range segs {
		f, err := os.Open(filepath.Join(dir, segName(first)))
		if err != nil {
			return nil, err
		}
		br := bufio.NewReaderSize(f, 1<<16)
		var off int64
		for {
			payload, n, err := readFrame(br)
			if err == io.EOF {
				break // clean segment end
			}
			if err != nil {
				rec.Corruption = &Corruption{Segment: first, Offset: off, Reason: err.Error()}
				f.Close()
				break scan
			}
			var r Record
			if err := json.Unmarshal(payload, &r); err != nil {
				rec.Corruption = &Corruption{Segment: first, Offset: off, Reason: "record json: " + err.Error()}
				f.Close()
				break scan
			}
			off += n
			if r.LSN <= last {
				continue // covered by the snapshot (or duplicate segment prefix)
			}
			if last > 0 && r.LSN != last+1 {
				rec.Corruption = &Corruption{Segment: first, Offset: off - n, Reason: fmt.Sprintf("LSN gap: got %d, want %d", r.LSN, last+1)}
				f.Close()
				break scan
			}
			last = r.LSN
			rec.Records = append(rec.Records, r)
		}
		f.Close()
	}
	if last+1 > rec.NextLSN {
		rec.NextLSN = last + 1
	}
	return rec, nil
}

// readFrame reads one [len][crc][payload] frame, returning the payload
// and the total bytes consumed. io.EOF means a clean boundary; any
// other error means a torn or corrupt frame.
func readFrame(br *bufio.Reader) ([]byte, int64, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return nil, 0, io.EOF // nothing left: clean end
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return nil, 0, errors.New("torn frame header")
	}
	size := binary.BigEndian.Uint32(hdr[0:4])
	if size == 0 || size > MaxRecordSize {
		return nil, 0, fmt.Errorf("implausible record length %d", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, errors.New("torn frame payload")
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("checksum mismatch: got %08x, want %08x", got, want)
	}
	return payload, int64(frameHeader) + int64(size), nil
}

// decodeFrame validates a single standalone frame (snapshot files,
// replicated frames) and returns its payload.
func decodeFrame(fr []byte) (payload []byte, consumed int64, err error) {
	if len(fr) < frameHeader {
		return nil, 0, errors.New("frame shorter than header")
	}
	size := binary.BigEndian.Uint32(fr[0:4])
	if size == 0 || size > MaxRecordSize {
		return nil, 0, fmt.Errorf("implausible record length %d", size)
	}
	if int64(len(fr)) < int64(frameHeader)+int64(size) {
		return nil, 0, errors.New("frame shorter than its length prefix")
	}
	payload = fr[frameHeader : frameHeader+int(size)]
	want := binary.BigEndian.Uint32(fr[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("checksum mismatch: got %08x, want %08x", got, want)
	}
	return payload, int64(frameHeader) + int64(size), nil
}

// DecodeRawRecord decodes one replicated frame into a Record. Standby
// side of the replication stream.
func DecodeRawRecord(fr []byte) (*Record, error) {
	payload, _, err := decodeFrame(fr)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("record json: %w", err)
	}
	return &r, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, _, err := decodeFrame(data)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

func stateFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, segSuffix) || strings.HasSuffix(n, snapSuffix) {
			names = append(names, n)
		}
	}
	return names, nil
}

func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var lsn uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), "%d", &lsn)
	return lsn, err == nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort on platforms where directories reject fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return nil // tolerate filesystems that refuse directory fsync
	}
	return nil
}
