package wal

import (
	"encoding/json"
	"time"

	"muri/internal/engine"
	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/proto"
)

// Kind enumerates the durable event types the daemon logs. One record
// kind per mutation of recoverable state: everything else (executor
// connections, group→machine placement, in-flight progress reports) is
// soft state that re-registration rebuilds.
type Kind string

const (
	// KindAdmit is one batched-admission boundary: every submission the
	// schedule loop drained into the engine in one round, in ack order.
	KindAdmit Kind = "admit"
	// KindDecision is one engine decision (launch, kill, requeue,
	// deadletter), logged in emission order.
	KindDecision Kind = "decision"
	// KindFault is one fault-ledger mutation: retry budget spent, backoff
	// assigned or the job dead-lettered.
	KindFault Kind = "fault"
	// KindDone is one job completion.
	KindDone Kind = "done"
	// KindProfile is one measured model profile entering the cache.
	KindProfile Kind = "profile"
	// KindProgress is one checkpointed iteration count, logged when a
	// group detaches (kill, fault, lost machine) so the requeued job
	// resumes from its last reported iteration after recovery.
	KindProgress Kind = "progress"
	// KindGroup is one group launch: the daemon-side group ID and each
	// member's start time (the engine's launch decision carries the rest).
	KindGroup Kind = "group"
	// KindTerm is one election-term change (promotion, fencing).
	KindTerm Kind = "term"
	// KindCause is one decision-provenance annotation: a wait-cause
	// transition for a job, a note (starvation boost), or a global
	// adoption-freeze boundary. Pure observability — replay feeds these
	// only to the explain builder, never to the engine.
	KindCause Kind = "cause"
)

// Record is one WAL entry. Exactly one payload field matching Kind is
// set. V and W stamp the daemon's virtual and wall clocks at append
// time; replay uses V to keep virtual-time fields (StartedAt) exact and
// W for replication-lag accounting.
type Record struct {
	LSN  uint64 `json:"lsn"`
	Kind Kind   `json:"kind"`
	V    int64  `json:"v,omitempty"`
	W    int64  `json:"w,omitempty"`

	Admit    *AdmitRecord    `json:"admit,omitempty"`
	Decision *DecisionRecord `json:"decision,omitempty"`
	Fault    *FaultRecord    `json:"fault,omitempty"`
	Done     *DoneRecord     `json:"done,omitempty"`
	Profile  *ProfileRecord  `json:"profile,omitempty"`
	Progress *ProgressRecord `json:"progress,omitempty"`
	Group    *GroupRecord    `json:"group,omitempty"`
	Term     *TermRecord     `json:"term,omitempty"`
	Cause    *CauseRecord    `json:"cause,omitempty"`
}

// CauseRecord is one provenance annotation. Job 0 with the
// adoption-freeze cause marks a global freeze boundary (Detail "start"
// or "end"); Note records annotate a job's timeline without changing
// its open span (starvation boosts).
type CauseRecord struct {
	Job    int64  `json:"job,omitempty"`
	Cause  string `json:"cause"`
	Detail string `json:"detail,omitempty"`
	Note   bool   `json:"note,omitempty"`
}

// AdmitItem is one accepted submission inside an admission batch.
type AdmitItem struct {
	Spec proto.JobSpec `json:"spec"`
	// AtWall is the arrival wall time (unix nanos) for JCT attribution.
	AtWall int64 `json:"at_wall"`
	// SubmitV is the virtual submit time the job was constructed with.
	SubmitV int64 `json:"submit_v"`
	// WaitV is the virtual time the submission spent in the ingest queue
	// before this admission round drained it; SubmitV − WaitV is the
	// job's timeline origin for wait attribution.
	WaitV int64 `json:"wait_v,omitempty"`
	// Depth is the ingest queue depth observed when the submission was
	// accepted (provenance detail for the ingest-queue span).
	Depth int `json:"depth,omitempty"`
	// Profiling marks jobs admitted without a profile (they wait in the
	// profiling phase until a dry run reports stages).
	Profiling bool `json:"profiling,omitempty"`
}

// AdmitRecord is one admission-batch boundary.
type AdmitRecord struct {
	Items []AdmitItem `json:"items"`
}

// DecisionRecord mirrors engine.Decision on disk.
type DecisionRecord struct {
	Seq    uint64  `json:"seq"`
	Action string  `json:"action"`
	Key    string  `json:"key,omitempty"`
	Jobs   []int64 `json:"jobs,omitempty"`
	Reason string  `json:"reason,omitempty"`
	// Cause is the provenance annotation (preemptor identity, grouping
	// efficiency, retry-budget state). Empty when provenance is off.
	Cause string `json:"cause,omitempty"`
}

// ToDecision rebuilds the engine decision.
func (d *DecisionRecord) ToDecision() engine.Decision {
	dec := engine.Decision{
		Seq:    d.Seq,
		Action: engine.Action(d.Action),
		Key:    d.Key,
		Reason: engine.Reason(d.Reason),
		Cause:  d.Cause,
	}
	for _, id := range d.Jobs {
		dec.Jobs = append(dec.Jobs, job.ID(id))
	}
	return dec
}

// FromDecision captures an engine decision for the log.
func FromDecision(d engine.Decision) *DecisionRecord {
	rec := &DecisionRecord{
		Seq:    d.Seq,
		Action: string(d.Action),
		Key:    d.Key,
		Reason: string(d.Reason),
		Cause:  d.Cause,
	}
	for _, id := range d.Jobs {
		rec.Jobs = append(rec.Jobs, int64(id))
	}
	return rec
}

// FaultRecord is one job-level fault ledger mutation.
type FaultRecord struct {
	Job          int64  `json:"job"`
	Origin       string `json:"origin,omitempty"`
	Err          string `json:"err,omitempty"`
	Faults       int    `json:"faults"`
	DeadLettered bool   `json:"dead_lettered,omitempty"`
	// NotBeforeWall is the post-backoff release time (unix nanos).
	NotBeforeWall int64 `json:"not_before_wall,omitempty"`
	// NotBeforeV is the post-backoff release time on the virtual clock,
	// so wait attribution can split fault-backoff from capacity exactly.
	NotBeforeV int64 `json:"not_before_v,omitempty"`
}

// DoneRecord is one job completion.
type DoneRecord struct {
	Job int64 `json:"job"`
	// FinishedWall is the completion wall time (unix nanos); FinishedV
	// the virtual completion time.
	FinishedWall int64 `json:"finished_wall"`
	FinishedV    int64 `json:"finished_v"`
	// ServiceV is the job's 2D service (virtual attained time × GPUs) at
	// completion, logged so replay feeds the online predictor the exact
	// value the live path observed (attained time itself is soft state).
	ServiceV int64 `json:"service_v,omitempty"`
}

// ProfileRecord is one measured model profile.
type ProfileRecord struct {
	Model  string           `json:"model"`
	Stages [4]time.Duration `json:"stages"`
}

// ProgressRecord checkpoints one job's iteration count.
type ProgressRecord struct {
	Job  int64 `json:"job"`
	Done int64 `json:"done"`
}

// GroupMember is one job of a launched group.
type GroupMember struct {
	Job int64 `json:"job"`
	// StartedV is the job's StartedAt virtual time as set at this launch
	// (only meaningful for the launch that first started the job).
	StartedV int64 `json:"started_v"`
}

// GroupRecord is one daemon-side group launch.
type GroupRecord struct {
	ID      int64         `json:"id"`
	Members []GroupMember `json:"members,omitempty"`
}

// TermRecord is one election-term change.
type TermRecord struct {
	Term uint64 `json:"term"`
}

// JobSnapshot is one job's recoverable state inside a snapshot.
type JobSnapshot struct {
	Spec           proto.JobSpec   `json:"spec"`
	Phase          string          `json:"phase"`
	DoneIterations int64           `json:"done_iterations"`
	SubmittedWall  int64           `json:"submitted_wall"`
	FinishedWall   int64           `json:"finished_wall,omitempty"`
	SubmitV        int64           `json:"submit_v"`
	StartedV       int64           `json:"started_v"`
	FinishedV      int64           `json:"finished_v,omitempty"`
	AttainedV      int64           `json:"attained_v,omitempty"`
	Restarts       int             `json:"restarts,omitempty"`
	NotBeforeWall  int64           `json:"not_before_wall,omitempty"`
	FaultLog       []FaultLogEntry `json:"fault_log,omitempty"`
}

// FaultLogEntry is one attribution entry of a job's fault history.
type FaultLogEntry struct {
	AtWall   int64  `json:"at_wall"`
	Executor string `json:"executor,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Snapshot is a full recoverable-state checkpoint: loading it and
// replaying records with LSN greater than Snapshot.LSN reconstructs the
// daemon exactly.
type Snapshot struct {
	// LSN is the last record reflected in this snapshot.
	LSN uint64 `json:"lsn"`
	// Term is the election term at snapshot time.
	Term uint64 `json:"term"`
	// TakenWall is the snapshot wall time (unix nanos); V the virtual
	// clock, restored so virtual time is continuous across restarts.
	TakenWall int64 `json:"taken_wall"`
	V         int64 `json:"v"`

	Engine         engine.Snapshot             `json:"engine"`
	Jobs           []JobSnapshot               `json:"jobs,omitempty"`
	Profiles       map[string][4]time.Duration `json:"profiles,omitempty"`
	NextGroup      int64                       `json:"next_group"`
	NextJobID      int64                       `json:"next_job_id"`
	Faults         metrics.FaultStats          `json:"faults"`
	LeaseEvictions uint64                      `json:"lease_evictions,omitempty"`
	// Predictor is the online estimator's learned state. Done records
	// below Snapshot.LSN are never replayed, so the predictor — which
	// learns exclusively from completions — must checkpoint here; replay
	// of the tail re-feeds post-snapshot completions. Absent in
	// snapshots taken before prediction mode existed.
	Predictor *profile.OnlineState `json:"predictor,omitempty"`
	// Explain is the decision-provenance builder's state (opaque to the
	// WAL layer), checkpointed so a recovered daemon — or an offline
	// muritrace reconstruction — renders explanations byte-identical to
	// the uninterrupted live daemon. Absent in older snapshots.
	Explain json.RawMessage `json:"explain,omitempty"`
}
