package experiments

import (
	"strconv"
	"time"

	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/sim"
)

// predictionSeed fixes the drift model so the sweep is reproducible run
// to run.
const predictionSeed = 11

// PredictionResult is one (error regime, policy mode) cell of the
// online-prediction experiment.
type PredictionResult struct {
	// Regime names the prediction-error intensity ("none", "low", "med",
	// "high"); Amplitude is the drift bound behind it (true stage times
	// land uniformly within ±Amplitude of the submitted profile).
	Regime    string
	Amplitude float64
	// Policy is the scheduling policy evaluated; Mode says where its
	// duration beliefs came from: "oracle" reads the drifted truth,
	// "stale" trusts the submitted (pre-drift) profile, "online" learns
	// from completions through the running estimator.
	Policy string
	Mode   string
	// Summary holds the end-of-run metrics; NormJCT is AvgJCT normalized
	// to the same policy family's oracle run in the same regime (1.00 =
	// no degradation from imperfect prediction).
	Summary metrics.Summary
	NormJCT float64
	// PredErr is the online estimator's mean absolute relative prediction
	// error over ErrSamples scored completions; Reseeds counts beliefs
	// re-seeded after deviating completions; Reprofiles is the engine-side
	// trigger count. All zero for oracle/stale modes.
	PredErr    float64
	ErrSamples int
	Reseeds    int
	Reprofiles int
}

// predRegime parameterizes one prediction-error intensity.
type predRegime struct {
	name      string
	amplitude float64
}

// Prediction runs the online-prediction sweep. The paper's evaluation
// assumes oracle stage profiles; this experiment drifts the execution
// truth away from the submitted profiles at increasing amplitudes and
// compares, per regime, three belief sources for SRTF and Muri-L: the
// oracle (reads the drifted truth — the paper's assumption restored),
// stale profiles (trusts the submission), and the online estimator
// (learns per-model running estimates from completions, re-profiling
// past the engine's deviation threshold). The reported NormJCT is the
// JCT cost of imperfect prediction against the oracle upper bound.
func (o Options) Prediction() ([]PredictionResult, Table) {
	tr := o.traces()[0]
	regimes := []predRegime{
		{"none", 0},
		{"low", 0.2},
		{"med", 0.5},
		{"high", 1.0},
	}
	type predRun struct {
		family, mode string
		make         func() (sched.Policy, profile.Estimator, *profile.Online)
	}
	runs := []predRun{
		{"srtf", "oracle", func() (sched.Policy, profile.Estimator, *profile.Online) {
			return sched.SRTF(), profile.NewOracle(), nil
		}},
		{"srtf", "stale", func() (sched.Policy, profile.Estimator, *profile.Online) {
			return sched.SRTF(), nil, nil
		}},
		{"srtf", "online", func() (sched.Policy, profile.Estimator, *profile.Online) {
			est := profile.NewOnline()
			return sched.SRTFPredicted(est), est, est
		}},
		{"muri-l", "oracle", func() (sched.Policy, profile.Estimator, *profile.Online) {
			return sched.NewMuriL(), profile.NewOracle(), nil
		}},
		{"muri-l", "online", func() (sched.Policy, profile.Estimator, *profile.Online) {
			est := profile.NewOnline()
			return sched.NewMuriLPredicted(est), est, est
		}},
	}
	out := make([]PredictionResult, len(regimes)*len(runs))
	forEach(len(out), func(i int) {
		reg, ru := regimes[i/len(runs)], runs[i%len(runs)]
		p, est, online := ru.make()
		cfg := o.simConfig()
		if est != nil {
			cfg.Estimator = est
		}
		if reg.amplitude > 0 {
			cfg.Drift = &profile.Drift{Amplitude: reg.amplitude, Seed: predictionSeed}
		}
		res := sim.Run(cfg, tr, p)
		r := PredictionResult{
			Regime:     reg.name,
			Amplitude:  reg.amplitude,
			Policy:     res.Policy,
			Mode:       ru.mode,
			Summary:    res.Summary,
			Reprofiles: res.Engine.Reprofiles,
		}
		if online != nil {
			r.PredErr, r.ErrSamples = online.Error()
			_, _, r.Reseeds = online.Stats()
		}
		out[i] = r
	})
	// Normalize each cell against its family's oracle run in the same
	// regime (the runs slice keeps families contiguous with oracle first).
	oracleJCT := make(map[string]time.Duration)
	for i, r := range out {
		if r.Mode == "oracle" {
			oracleJCT[strconv.Itoa(i/len(runs))+"/"+runs[i%len(runs)].family] = r.Summary.AvgJCT
		}
	}
	t := Table{
		Title: "Prediction: online duration estimation vs oracle profiles under drift (trace " + tr.Name + ")",
		Header: []string{"regime", "drift", "policy", "mode", "avg JCT", "p99 JCT", "makespan",
			"norm JCT", "pred err", "reseeds"},
	}
	for i := range out {
		r := &out[i]
		r.NormJCT = metrics.Speedup(r.Summary.AvgJCT,
			oracleJCT[strconv.Itoa(i/len(runs))+"/"+runs[i%len(runs)].family])
		predErr, reseeds := "-", "-"
		if r.Mode == "online" {
			predErr = f2(r.PredErr)
			reseeds = strconv.Itoa(r.Reseeds)
		}
		t.Rows = append(t.Rows, []string{
			r.Regime, f2(r.Amplitude), r.Policy, r.Mode,
			r.Summary.AvgJCT.Round(time.Second).String(),
			r.Summary.P99JCT.Round(time.Second).String(),
			r.Summary.Makespan.Round(time.Second).String(),
			f2(r.NormJCT), predErr, reseeds,
		})
	}
	return out, t
}
