package experiments

import (
	"testing"
)

func TestFidelitySimVsPrototype(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a live scheduler with wall-clock sleeps")
	}
	fc := DefaultFidelityConfig()
	fc.Jobs = 8
	fc.IterationsPerJob = 20
	res, err := RunFidelity(fc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimAvgJCT <= 0 || res.LiveAvgJCT <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// The paper reports <3% against real hardware; against the sleep-based
	// prototype (timer granularity, report quantization) we accept 35%.
	if res.JCTError > 0.35 {
		t.Errorf("JCT error = %.1f%% (sim %v vs live %v), want ≤ 35%%",
			100*res.JCTError, res.SimAvgJCT, res.LiveAvgJCT)
	}
	if res.MakespanError > 0.35 {
		t.Errorf("makespan error = %.1f%% (sim %v vs live %v), want ≤ 35%%",
			100*res.MakespanError, res.SimMakespan, res.LiveMakespan)
	}
	tbl := FidelityTable(res)
	if len(tbl.Rows) != 2 {
		t.Errorf("fidelity table rows = %d, want 2", len(tbl.Rows))
	}
}
