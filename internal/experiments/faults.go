package experiments

import (
	"strconv"
	"time"

	"muri/internal/faults"
	"muri/internal/metrics"
	"muri/internal/sched"
	"muri/internal/sim"
	"muri/internal/trace"
)

// faultsSeed fixes the failure plans so the experiment is reproducible
// run to run.
const faultsSeed = 7

// FaultsResult is one (failure rate, policy) cell of the experiment.
type FaultsResult struct {
	// Rate names the failure regime ("none", "low", "med", "high").
	Rate string
	// MTBF is the per-machine mean time between crashes (0 for "none").
	MTBF time.Duration
	// Policy is the scheduling policy evaluated.
	Policy string
	// Summary holds the end-of-run metrics under that regime.
	Summary metrics.Summary
	// Faults counts the failure-plan activity the run absorbed.
	Faults metrics.FaultStats
}

// faultRegime parameterizes one failure intensity.
type faultRegime struct {
	name          string
	mtbf          time.Duration
	transientProb float64
}

// Faults runs the failure-rate sweep. The paper's evaluation assumes a
// healthy cluster; this experiment stresses the schedulers with the
// deterministic failure model of internal/faults — machine crash/repair
// cycles, transient job faults, and straggler machines — at increasing
// failure rates, and reports how much JCT and makespan degrade for
// Muri-L versus the SRTF/SRSF baselines. Each regime builds one seeded
// plan (shared read-only by every policy, so all policies face the
// exact same crash schedule) and every policy replays the first trace
// against it.
func (o Options) Faults() ([]FaultsResult, Table) {
	tr := o.traces()[0]
	regimes := []faultRegime{
		{"none", 0, 0},
		{"low", 7 * 24 * time.Hour, 0.01},
		{"med", 24 * time.Hour, 0.05},
		{"high", 6 * time.Hour, 0.10},
	}
	policies := func() []sched.Policy {
		return []sched.Policy{sched.SRTF(), sched.SRSF(), sched.NewMuriL()}
	}
	plans := make([]*faults.Plan, len(regimes))
	for i, reg := range regimes {
		if reg.mtbf == 0 && reg.transientProb == 0 {
			continue // nil plan: the healthy baseline
		}
		plans[i] = faults.NewPlan(faults.Config{
			Seed:               faultsSeed,
			Machines:           o.machines(),
			MTBF:               reg.mtbf,
			MTTR:               30 * time.Minute,
			Horizon:            faultsHorizon(tr),
			TransientFaultProb: reg.transientProb,
			StragglerFraction:  0.1,
			StragglerSlowdown:  1.3,
		})
	}
	nPol := len(policies())
	out := make([]FaultsResult, len(regimes)*nPol)
	forEach(len(out), func(i int) {
		reg, p := regimes[i/nPol], policies()[i%nPol]
		cfg := o.simConfig()
		cfg.Faults = plans[i/nPol]
		res := sim.Run(cfg, tr, p)
		out[i] = FaultsResult{
			Rate:    reg.name,
			MTBF:    reg.mtbf,
			Policy:  res.Policy,
			Summary: res.Summary,
			Faults:  res.Faults,
		}
	})
	t := Table{
		Title:  "Faults: scheduling under machine crashes, transient job faults, and stragglers (trace " + tr.Name + ")",
		Header: []string{"rate", "mtbf", "policy", "avg JCT", "p99 JCT", "makespan", "crashes", "transient", "requeues", "work lost"},
	}
	for _, r := range out {
		mtbf := "-"
		if r.MTBF > 0 {
			mtbf = r.MTBF.String()
		}
		t.Rows = append(t.Rows, []string{
			r.Rate, mtbf, r.Policy,
			r.Summary.AvgJCT.Round(time.Second).String(),
			r.Summary.P99JCT.Round(time.Second).String(),
			r.Summary.Makespan.Round(time.Second).String(),
			strconv.Itoa(r.Faults.Crashes), strconv.Itoa(r.Faults.Transient), strconv.Itoa(r.Faults.Requeues),
			r.Faults.WorkLost.Round(time.Second).String(),
		})
	}
	return out, t
}

// faultsHorizon bounds crash generation to the trace's active window
// plus slack for the fault-extended tail.
func faultsHorizon(tr trace.Trace) time.Duration {
	var last time.Duration
	for _, sp := range tr.Specs {
		if sp.Submit > last {
			last = sp.Submit
		}
	}
	return last + 30*24*time.Hour
}
