package experiments

import (
	"strings"
	"testing"
	"time"

	"muri/internal/trace"
)

// tiny returns very small options so every experiment runs in a few
// hundred milliseconds.
func tiny() Options {
	cfgs := trace.PhillyConfigs(16)
	var traces []trace.Trace
	for i := range cfgs {
		cfgs[i].Jobs = 120
		traces = append(traces, trace.Generate(cfgs[i]))
	}
	return Options{Machines: 2, GPUsPerMachine: 8, MaxJobs: 100, Traces: traces}
}

func TestTable1MatchesPaperBottlenecks(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(tbl.Rows))
	}
	want := map[string]string{
		"shufflenet": "storage", "vgg19": "network", "gpt2": "gpu", "a2c": "cpu",
	}
	for _, row := range tbl.Rows {
		if row[5] != want[row[0]] {
			t.Errorf("%s bottleneck = %s, want %s", row[0], row[5], want[row[0]])
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	res := Table2()
	// The paper measures a total normalized throughput of 2.00; the
	// simulated substrate should land in the same region.
	if res.Total < 1.5 || res.Total > 3.0 {
		t.Errorf("total normalized throughput = %.2f, want ≈2 (Table 2)", res.Total)
	}
	for i, v := range res.Normalized {
		if v <= 0 || v > 1.01 {
			t.Errorf("normalized[%d] = %v, want in (0, 1]", i, v)
		}
	}
	if !strings.Contains(res.Table.String(), "total") {
		t.Error("Table 2 output missing total row")
	}
}

func TestTable4Shape(t *testing.T) {
	results, tbl := tiny().Table4()
	if len(results) != 3 {
		t.Fatalf("Table 4 ran %d policies, want 3", len(results))
	}
	byName := summaryByName(results)
	// Muri-S should not lose to SRTF on the saturated testbed window.
	if byName["muri-s"].AvgJCT > byName["srtf"].AvgJCT {
		t.Errorf("Muri-S avg JCT %v worse than SRTF %v on testbed window",
			byName["muri-s"].AvgJCT, byName["srtf"].AvgJCT)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("table rows = %d, want 3", len(tbl.Rows))
	}
}

func TestTable5Shape(t *testing.T) {
	results, _ := tiny().Table5()
	byName := summaryByName(results)
	if byName["muri-l"].AvgJCT > byName["themis"].AvgJCT {
		t.Errorf("Muri-L avg JCT %v worse than Themis %v on testbed window",
			byName["muri-l"].AvgJCT, byName["themis"].AvgJCT)
	}
}

func TestFigure8SeriesPresent(t *testing.T) {
	results, tbl := tiny().Figure8()
	for _, r := range results {
		if len(r.Series) == 0 {
			t.Errorf("%s has empty series", r.Policy)
		}
	}
	if len(tbl.Rows) != 6 {
		t.Errorf("Figure 8 rows = %d, want 6 policies", len(tbl.Rows))
	}
}

func TestFigure13SpeedupGrowsWithJobTypes(t *testing.T) {
	opt := tiny()
	opt.MaxJobs = 120
	results, _ := opt.Figure13()
	if len(results) != 4 {
		t.Fatalf("Figure 13 has %d points, want 4", len(results))
	}
	// The four-type mix should beat the one-type mix for Muri-S (the
	// paper's headline sensitivity result).
	if results[3].SpeedupKnown <= results[0].SpeedupKnown {
		t.Errorf("speedup(4 types)=%.2f not greater than speedup(1 type)=%.2f",
			results[3].SpeedupKnown, results[0].SpeedupKnown)
	}
	// With one job type Muri must roughly match the baseline, never be
	// dramatically worse.
	if results[0].SpeedupKnown < 0.8 {
		t.Errorf("speedup with 1 job type = %.2f, want ≥ 0.8 (Muri ≈ SRTF)", results[0].SpeedupKnown)
	}
}

func TestFigure14NoiseFreeIsUnity(t *testing.T) {
	opt := tiny()
	opt.MaxJobs = 120
	results, _ := opt.Figure14()
	if results[0].Noise != 0 || results[0].NormJCT != 1 || results[0].NormMakespan != 1 {
		t.Errorf("noise-free row = %+v, want exactly 1.0", results[0])
	}
	// High noise must not break the run (values stay finite and positive).
	for _, r := range results {
		if r.NormJCT <= 0 || r.NormJCT > 5 {
			t.Errorf("noise %v: norm JCT %v out of plausible range", r.Noise, r.NormJCT)
		}
	}
}

func TestTableStringAligned(t *testing.T) {
	tbl := Table{
		Title:  "t",
		Header: []string{"a", "longheader"},
		Rows:   [][]string{{"xxxxxx", "y"}},
	}
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "a     ") {
		t.Errorf("header not padded: %q", lines[1])
	}
}

func TestQuickAndFullOptions(t *testing.T) {
	if Full().capacity() != 64 {
		t.Errorf("Full capacity = %d, want 64", Full().capacity())
	}
	if Quick().MaxJobs != 300 {
		t.Errorf("Quick MaxJobs = %d, want 300", Quick().MaxJobs)
	}
	cfg := Quick().simConfig()
	if cfg.Interval != 6*time.Minute {
		t.Errorf("interval = %v, want 6m", cfg.Interval)
	}
}

func summaryByName(results []PolicyResult) map[string]summaryLike {
	out := make(map[string]summaryLike)
	for _, r := range results {
		out[r.Policy] = summaryLike{AvgJCT: r.Summary.AvgJCT, Makespan: r.Summary.Makespan}
	}
	return out
}

type summaryLike struct {
	AvgJCT   time.Duration
	Makespan time.Duration
}

func TestWriteSeriesCSV(t *testing.T) {
	results, _ := tiny().Figure8()
	var buf strings.Builder
	if err := WriteSeriesCSV(&buf, results[0]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines, want header + samples", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,queue_len,blocking_index") {
		t.Errorf("header = %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != 8 {
		t.Errorf("data row has %d commas, want 8", got)
	}
}

// TestSweepDeterministic guards the parallel per-trace harness: two runs
// of the same sweep must render byte-identical tables regardless of how
// the worker pool interleaves traces. Figure 9 exercises the generic
// sweepTraces path, Figure 13 the indexed fan-out over job-type mixes.
func TestSweepDeterministic(t *testing.T) {
	opt := tiny()
	opt.MaxJobs = 60
	_, first := opt.Figure9()
	_, second := opt.Figure9()
	if first.String() != second.String() {
		t.Errorf("Figure 9 sweep not deterministic:\n%s\nvs\n%s", first.String(), second.String())
	}
	_, f13a := opt.Figure13()
	_, f13b := opt.Figure13()
	if f13a.String() != f13b.String() {
		t.Errorf("Figure 13 sweep not deterministic:\n%s\nvs\n%s", f13a.String(), f13b.String())
	}
}
