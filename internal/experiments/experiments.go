// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 Table 1–2, §6 Tables 4–5, Figures 8–14). Each function
// runs the corresponding workload through the simulator and returns both
// structured results and a formatted table whose rows mirror what the
// paper reports. cmd/murisim and the top-level benchmarks are thin
// wrappers around this package.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"muri/internal/blossom"
	"muri/internal/core"
	"muri/internal/interleave"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/sim"
	"muri/internal/trace"
	"muri/internal/workload"
)

// Options scales the experiments. The zero value runs at full paper scale
// (64 GPUs, full traces); Quick() shrinks everything for smoke runs and
// benchmarks.
type Options struct {
	// Machines and GPUsPerMachine define the simulated cluster.
	Machines, GPUsPerMachine int
	// MaxJobs truncates each trace (0 = full trace).
	MaxJobs int
	// Traces overrides the default four Philly-like traces.
	Traces []trace.Trace
	// Shards overrides the shard counts the Scale experiment sweeps
	// (default 1, 2, 4, 8).
	Shards []int
	// Scale50k includes the 50,000-job tier in the Scale experiment. Off
	// by default: the run takes minutes even sharded.
	Scale50k bool
}

// Full returns the paper-scale options: the 8×8 testbed and the four
// synthetic Philly traces (992–5755 jobs).
func Full() Options {
	return Options{Machines: 8, GPUsPerMachine: 8}
}

// Quick returns reduced-scale options for fast iteration: the same
// cluster but truncated traces.
func Quick() Options {
	return Options{Machines: 8, GPUsPerMachine: 8, MaxJobs: 300}
}

func (o Options) machines() int {
	if o.Machines <= 0 {
		return 8
	}
	return o.Machines
}

func (o Options) gpusPerMachine() int {
	if o.GPUsPerMachine <= 0 {
		return 8
	}
	return o.GPUsPerMachine
}

func (o Options) capacity() int { return o.machines() * o.gpusPerMachine() }

func (o Options) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Machines = o.machines()
	cfg.GPUsPerMachine = o.gpusPerMachine()
	cfg.MaxJobs = o.MaxJobs
	return cfg
}

// traces returns the four evaluation traces (generated on first use).
func (o Options) traces() []trace.Trace {
	if len(o.Traces) > 0 {
		return o.Traces
	}
	var out []trace.Trace
	for _, cfg := range trace.PhillyConfigs(o.capacity()) {
		out = append(out, trace.Generate(cfg))
	}
	return out
}

// Table is a generic formatted result: a header plus rows of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Table1 reproduces the stage-duration percentages of Table 1 for the
// four exemplar models (computed from the model zoo profiles rather than
// a PyTorch profiler — see DESIGN.md).
func Table1() Table {
	t := Table{
		Title:  "Table 1: stage duration percentage per iteration",
		Header: []string{"model", "load data", "preprocess", "propagate", "synchronize", "bottleneck"},
	}
	for _, name := range []string{"shufflenet", "vgg19", "gpt2", "a2c"} {
		m, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		fr := m.Stages.Fractions()
		t.Rows = append(t.Rows, []string{
			m.Name,
			fmt.Sprintf("%.1f%%", 100*fr[workload.Storage]),
			fmt.Sprintf("%.1f%%", 100*fr[workload.CPU]),
			fmt.Sprintf("%.1f%%", 100*fr[workload.GPU]),
			fmt.Sprintf("%.1f%%", 100*fr[workload.Network]),
			m.Bottleneck().String(),
		})
	}
	return t
}

// Table2Result carries the 4-job interleaving demonstration of Table 2.
type Table2Result struct {
	Models     []string
	Normalized []float64
	Total      float64
	Table      Table
}

// Table2 interleaves ShuffleNet, A2C, GPT-2 and VGG16 on one resource set
// and reports each job's normalized throughput plus the total (the paper
// measures ≈2.0× on its testbed).
func Table2() Table2Result {
	names := []string{"shufflenet", "a2c", "gpt2", "vgg16"}
	var times []workload.StageTimes
	for _, n := range names {
		m, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		times = append(times, m.Stages)
	}
	cfg := interleave.DefaultConfig
	norm := cfg.NormalizedThroughput(times)
	total := 0.0
	t := Table{
		Title:  "Table 2: multi-resource interleaving of four complementary jobs",
		Header: []string{"model", "bottleneck", "norm. tput"},
	}
	for i, n := range names {
		m, _ := workload.ByName(n)
		total += norm[i]
		t.Rows = append(t.Rows, []string{n, m.Bottleneck().String(), f2(norm[i])})
	}
	t.Rows = append(t.Rows, []string{"total", "", f2(total)})
	return Table2Result{Models: names, Normalized: norm, Total: total, Table: t}
}

// PolicyResult is one policy's summary on one trace.
type PolicyResult struct {
	Trace   string
	Policy  string
	Summary metrics.Summary
	Series  metrics.Series
}

// forEach runs fn(i) for every i in [0, n) over a worker pool bounded by
// GOMAXPROCS. Each index runs exactly once; fn must write its result to
// an index-distinct slot so output order stays deterministic regardless
// of completion order.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runPolicies executes each policy against the trace. Runs are
// independent (each materializes its own jobs from the shared read-only
// trace), so they execute concurrently.
func (o Options) runPolicies(tr trace.Trace, sample time.Duration, policies ...sched.Policy) []PolicyResult {
	out := make([]PolicyResult, len(policies))
	var wg sync.WaitGroup
	for i, p := range policies {
		wg.Add(1)
		go func(i int, p sched.Policy) {
			defer wg.Done()
			cfg := o.simConfig()
			cfg.SampleEvery = sample
			res := sim.Run(cfg, tr, p)
			out[i] = PolicyResult{Trace: tr.Name, Policy: p.Name(), Summary: res.Summary, Series: res.Series}
		}(i, p)
	}
	wg.Wait()
	return out
}

// testbedTrace is the busiest-400-jobs window of trace 1 — the paper's
// method for its testbed workload (§6.1). Durations are drawn deeper than
// the simulation traces: the paper notes one testbed trace "would take
// tens of days" without fast-forwarding, i.e. the busiest interval is
// severely backlogged.
func (o Options) testbedTrace() trace.Trace {
	cfg := trace.PhillyConfigs(o.capacity())[0]
	cfg.MedianDuration = 8 * time.Hour
	cfg.MaxDuration = 48 * time.Hour
	tr := trace.Generate(cfg)
	n := 400
	if o.MaxJobs > 0 && o.MaxJobs < n {
		n = o.MaxJobs
	}
	return tr.BusiestWindow(n)
}

// normalizedTable renders baselines normalized to the reference policy
// (the paper's presentation: "Normalized JCT" of each baseline with Muri
// = 1).
func normalizedTable(title string, results []PolicyResult, ref string) Table {
	var refSum metrics.Summary
	for _, r := range results {
		if r.Policy == ref {
			refSum = r.Summary
		}
	}
	t := Table{
		Title:  title,
		Header: []string{"policy", "norm. JCT", "norm. makespan", "norm. p99 JCT", "avg JCT", "makespan"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			f2(metrics.Speedup(r.Summary.AvgJCT, refSum.AvgJCT)),
			f2(metrics.Speedup(r.Summary.Makespan, refSum.Makespan)),
			f2(metrics.Speedup(r.Summary.P99JCT, refSum.P99JCT)),
			r.Summary.AvgJCT.Round(time.Second).String(),
			r.Summary.Makespan.Round(time.Minute).String(),
		})
	}
	return t
}

// Table4 runs the testbed experiment with known durations: SRTF and SRSF
// versus Muri-S on the busiest 400-job window.
func (o Options) Table4() ([]PolicyResult, Table) {
	tr := o.testbedTrace()
	results := o.runPolicies(tr, 0, sched.SRTF(), sched.SRSF(), sched.NewMuriS())
	return results, normalizedTable("Table 4: testbed, known durations (normalized to Muri-S)", results, "muri-s")
}

// Table5 runs the testbed experiment with unknown durations: Tiresias and
// Themis versus Muri-L.
func (o Options) Table5() ([]PolicyResult, Table) {
	tr := o.testbedTrace()
	results := o.runPolicies(tr, 0, sched.Tiresias(), sched.Themis(), sched.NewMuriL())
	return results, normalizedTable("Table 5: testbed, unknown durations (normalized to Muri-L)", results, "muri-l")
}

// Figure8 collects the detailed time series (queue length, blocking
// index, resource utilization) for the testbed workload under both the
// known- and unknown-duration policy sets.
func (o Options) Figure8() ([]PolicyResult, Table) {
	tr := o.testbedTrace()
	sample := 30 * time.Minute
	results := o.runPolicies(tr, sample,
		sched.SRTF(), sched.SRSF(), sched.NewMuriS(),
		sched.Tiresias(), sched.Themis(), sched.NewMuriL())
	t := Table{
		Title: "Figure 8: time-series means over the run",
		Header: []string{"policy", "mean queue", "mean blocking idx",
			"io util", "cpu util", "gpu util", "net util"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			f2(r.Series.MeanQueueLen()),
			f2(r.Series.MeanBlockingIndex()),
			f2(r.Series.MeanUtil(workload.Storage)),
			f2(r.Series.MeanUtil(workload.CPU)),
			f2(r.Series.MeanUtil(workload.GPU)),
			f2(r.Series.MeanUtil(workload.Network)),
		})
	}
	return results, t
}

// WriteSeriesCSV dumps a policy's detailed time series (Figure 8) as
// CSV: time_s, queue_len, blocking_index, io/cpu/gpu/net utilization,
// running_jobs, used_gpus.
func WriteSeriesCSV(w io.Writer, r PolicyResult) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "queue_len", "blocking_index",
		"io_util", "cpu_util", "gpu_util", "net_util", "running_jobs", "used_gpus"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, s := range r.Series {
		rec := []string{
			strconv.FormatFloat(s.Time.Seconds(), 'f', 1, 64),
			strconv.Itoa(s.QueueLen),
			f(s.BlockingIndex),
			f(s.Util[workload.Storage]), f(s.Util[workload.CPU]),
			f(s.Util[workload.GPU]), f(s.Util[workload.Network]),
			strconv.Itoa(s.RunningJobs),
			strconv.Itoa(s.UsedGPUs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sweepTraces runs the given policies over traces 1–4 and their
// zero-submit variants, normalizing to ref. This is the engine behind
// Figures 9 and 10. The per-trace sweeps are independent, so they run
// over the bounded forEach pool (each one fanning out further per
// policy); results land in index-distinct slots and the table is
// assembled serially afterwards, keeping row order deterministic.
func (o Options) sweepTraces(title, ref string, policies func() []sched.Policy) ([]PolicyResult, Table) {
	var variants []trace.Trace
	for _, base := range o.traces() {
		variants = append(variants, base, base.ZeroSubmit())
	}
	perTrace := make([][]PolicyResult, len(variants))
	forEach(len(variants), func(i int) {
		perTrace[i] = o.runPolicies(variants[i], 0, policies()...)
	})
	var all []PolicyResult
	t := Table{
		Title:  title,
		Header: []string{"trace", "policy", "norm. JCT", "norm. makespan", "norm. p99 JCT"},
	}
	for i, tr := range variants {
		results := perTrace[i]
		all = append(all, results...)
		var refSum metrics.Summary
		for _, r := range results {
			if r.Policy == ref {
				refSum = r.Summary
			}
		}
		for _, r := range results {
			if r.Policy == ref {
				continue
			}
			t.Rows = append(t.Rows, []string{
				tr.Name, r.Policy,
				f2(metrics.Speedup(r.Summary.AvgJCT, refSum.AvgJCT)),
				f2(metrics.Speedup(r.Summary.Makespan, refSum.Makespan)),
				f2(metrics.Speedup(r.Summary.P99JCT, refSum.P99JCT)),
			})
		}
	}
	return all, t
}

// Figure9 sweeps traces 1–4 and 1'–4' with known durations (SRTF, SRSF
// vs Muri-S).
func (o Options) Figure9() ([]PolicyResult, Table) {
	return o.sweepTraces(
		"Figure 9: simulation, known durations (speedups of Muri-S over each baseline)",
		"muri-s",
		func() []sched.Policy { return []sched.Policy{sched.SRTF(), sched.SRSF(), sched.NewMuriS()} })
}

// Figure10 sweeps traces 1–4 and 1'–4' with unknown durations (Tiresias,
// AntMan, Themis vs Muri-L).
func (o Options) Figure10() ([]PolicyResult, Table) {
	return o.sweepTraces(
		"Figure 10: simulation, unknown durations (speedups of Muri-L over each baseline)",
		"muri-l",
		func() []sched.Policy {
			return []sched.Policy{sched.Tiresias(), sched.AntMan{}, sched.Themis(), sched.NewMuriL()}
		})
}

// muriLVariant builds the Figure 11 ablation policies.
func muriLVariant(label string, mutate func(*core.Config)) *sched.Muri {
	p := sched.NewMuriL()
	p.Label = label
	mutate(&p.Grouping)
	return p
}

// Figure11 compares Muri-L against its two ablations: worst stage
// ordering and greedy packing instead of Blossom matching.
func (o Options) Figure11() ([]PolicyResult, Table) {
	var all []PolicyResult
	t := Table{
		Title:  "Figure 11: scheduling-algorithm ablations (normalized to Muri-L)",
		Header: []string{"trace", "variant", "norm. JCT", "norm. makespan"},
	}
	traces := o.traces()
	perTrace := make([][]PolicyResult, len(traces))
	forEach(len(traces), func(i int) {
		perTrace[i] = o.runPolicies(traces[i], 0,
			sched.NewMuriL(),
			muriLVariant("muri-l-worst-order", func(c *core.Config) { c.WorstOrdering = true }),
			muriLVariant("muri-l-no-blossom", func(c *core.Config) { c.UseBlossom = false }),
		)
	})
	for i, tr := range traces {
		results := perTrace[i]
		all = append(all, results...)
		ref := results[0].Summary
		for _, r := range results[1:] {
			t.Rows = append(t.Rows, []string{
				tr.Name, r.Policy,
				f2(metrics.Speedup(r.Summary.AvgJCT, ref.AvgJCT)),
				f2(metrics.Speedup(r.Summary.Makespan, ref.Makespan)),
			})
		}
	}
	return all, t
}

// Figure12 varies the maximum group size (2–4) against AntMan on the
// zero-submit variants of traces 1–4.
func (o Options) Figure12() ([]PolicyResult, Table) {
	var all []PolicyResult
	t := Table{
		Title:  "Figure 12: jobs per group, zero-submit traces (normalized to AntMan)",
		Header: []string{"trace", "policy", "norm. JCT", "norm. makespan"},
	}
	var traces []trace.Trace
	for _, base := range o.traces() {
		traces = append(traces, base.ZeroSubmit())
	}
	perTrace := make([][]PolicyResult, len(traces))
	forEach(len(traces), func(i int) {
		perTrace[i] = o.runPolicies(traces[i], 0,
			sched.AntMan{},
			muriLVariant("muri-l-2", func(c *core.Config) { c.MaxGroupSize = 2 }),
			muriLVariant("muri-l-3", func(c *core.Config) { c.MaxGroupSize = 3 }),
			muriLVariant("muri-l-4", func(c *core.Config) { c.MaxGroupSize = 4 }),
		)
	})
	for i, tr := range traces {
		results := perTrace[i]
		all = append(all, results...)
		ref := results[0].Summary
		for _, r := range results[1:] {
			t.Rows = append(t.Rows, []string{
				tr.Name, r.Policy,
				f2(metrics.Speedup(ref.AvgJCT, r.Summary.AvgJCT)),
				f2(metrics.Speedup(ref.Makespan, r.Summary.Makespan)),
			})
		}
	}
	return all, t
}

// Figure13Result carries the workload-mix sensitivity sweep.
type Figure13Result struct {
	JobTypes        int
	SpeedupKnown    float64 // Muri-S over SRTF
	SpeedupUnknown  float64 // Muri-L over Tiresias
	MuriS, SRTF     metrics.Summary
	MuriL, Tiresias metrics.Summary
}

// Figure13 varies the number of bottleneck job types (1–4) and reports
// Muri's average-JCT speedup over SRTF (known durations) and Tiresias
// (unknown durations).
func (o Options) Figure13() ([]Figure13Result, Table) {
	t := Table{
		Title:  "Figure 13: impact of workload mix (average-JCT speedups)",
		Header: []string{"job types", "muri-s / srtf", "muri-l / tiresias"},
	}
	base := trace.PhillyConfigs(o.capacity())[0]
	out := make([]Figure13Result, 4)
	forEach(4, func(i int) {
		types := i + 1
		cfg := base
		cfg.Name = fmt.Sprintf("mix%d", types)
		cfg.JobTypes = types
		tr := trace.Generate(cfg).ZeroSubmit()
		results := o.runPolicies(tr, 0,
			sched.SRTF(), sched.NewMuriS(), sched.Tiresias(), sched.NewMuriL())
		byName := make(map[string]metrics.Summary)
		for _, r := range results {
			byName[r.Policy] = r.Summary
		}
		out[i] = Figure13Result{
			JobTypes:       types,
			SpeedupKnown:   metrics.Speedup(byName["srtf"].AvgJCT, byName["muri-s"].AvgJCT),
			SpeedupUnknown: metrics.Speedup(byName["tiresias"].AvgJCT, byName["muri-l"].AvgJCT),
			MuriS:          byName["muri-s"], SRTF: byName["srtf"],
			MuriL: byName["muri-l"], Tiresias: byName["tiresias"],
		}
	})
	for _, r := range out {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.JobTypes), f2(r.SpeedupKnown), f2(r.SpeedupUnknown)})
	}
	return out, t
}

// Figure14Result carries the profiling-noise sensitivity sweep.
type Figure14Result struct {
	Noise        float64
	NormJCT      float64 // average JCT normalized to the noise-free run
	NormMakespan float64
}

// Figure14 sweeps profiling noise n_p from 0 to 1 and reports Muri-L's
// average JCT and makespan normalized to the noise-free run.
func (o Options) Figure14() ([]Figure14Result, Table) {
	tr := trace.Generate(trace.PhillyConfigs(o.capacity())[0])
	run := func(noise float64) metrics.Summary {
		cfg := o.simConfig()
		cfg.Profiler = profile.New(noise, 1234)
		return sim.Run(cfg, tr, sched.NewMuriL()).Summary
	}
	noises := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	baseline := run(0)
	summaries := make([]metrics.Summary, len(noises))
	summaries[0] = baseline
	// The noise-free baseline is shared; the noisy runs are independent.
	forEach(len(noises)-1, func(i int) {
		summaries[i+1] = run(noises[i+1])
	})
	var out []Figure14Result
	t := Table{
		Title:  "Figure 14: impact of profiling noise on Muri-L (normalized to noise-free)",
		Header: []string{"noise", "norm. JCT", "norm. makespan"},
	}
	for i, noise := range noises {
		s := summaries[i]
		r := Figure14Result{
			Noise:        noise,
			NormJCT:      metrics.Speedup(s.AvgJCT, baseline.AvgJCT),
			NormMakespan: metrics.Speedup(s.Makespan, baseline.Makespan),
		}
		out = append(out, r)
		t.Rows = append(t.Rows, []string{f2(noise), f2(r.NormJCT), f2(r.NormMakespan)})
	}
	return out, t
}

// ScaleResult is one end-to-end scale run's outcome: the usual summary
// plus wall-clock runtime and the scheduling-path performance counters
// (engine decision activity, completion-heap activity, Blossom
// matcher-pool reuse, and the sharded/incremental planner counters for
// this run alone).
type ScaleResult struct {
	Trace   string
	Sched   string
	Shards  int
	Jobs    int
	Wall    time.Duration
	Summary metrics.Summary
	Engine  metrics.EngineStats
	Heap    metrics.HeapStats
	Pool    metrics.MatcherPoolStats
	Plan    metrics.ShardStats
}

// scaleShards resolves the shard counts the scale experiment sweeps.
func (o Options) scaleShards() []int {
	if len(o.Shards) > 0 {
		return o.Shards
	}
	return []int{1, 2, 4, 8}
}

// Scale runs Muri-L end-to-end, event-driven, on the scheduling-path
// stress tiers (DESIGN.md §6, §10): the 2000- and 5755-job Philly traces
// under the exact paper policy, then the 5755-job trace under the
// sharded incremental muri-l-scale policy across the shard sweep, and
// the philly-10000 tier at the largest shard count. With Scale50k set it
// also runs the 50,000-job tier (muri-l-scale plus a backfill-window
// cap — an explicit approximation, see sched.Muri.BackfillLimit).
// `make bench-sched-scale` records the equivalent runs as benchmarks in
// BENCH_sched.json.
func (o Options) Scale() ([]ScaleResult, Table) {
	var out []ScaleResult
	t := Table{
		Title:  "Scheduling-path scale runs (Muri-L, event-driven)",
		Header: []string{"trace", "jobs", "sched", "shards", "wall", "avg JCT", "makespan", "rounds", "reuse%", "tasks", "pool hit%"},
	}
	all := o.traces()
	scale := trace.ScaleConfigs(o.capacity())
	shards := o.scaleShards()
	maxShards := shards[len(shards)-1]

	type run struct {
		tr     trace.Trace
		policy *sched.Muri
	}
	runs := []run{
		{all[1], sched.NewMuriL()}, // trace2: 2,000 jobs, exact paper policy
		{all[3], sched.NewMuriL()}, // trace4: 5,755 jobs, exact paper policy
	}
	for _, s := range shards {
		runs = append(runs, run{all[3], sched.NewMuriLScale(s)})
	}
	runs = append(runs, run{trace.Generate(scale[0]), sched.NewMuriLScale(maxShards)})
	if o.Scale50k {
		p := sched.NewMuriLScale(maxShards)
		p.BackfillLimit = 2048
		runs = append(runs, run{trace.Generate(scale[1]), p})
	}

	for _, ru := range runs {
		cfg := o.simConfig()
		cfg.EventDriven = true
		before := blossom.PoolStats()
		start := time.Now()
		res := sim.Run(cfg, ru.tr, ru.policy)
		wall := time.Since(start)
		after := blossom.PoolStats()
		plan := ru.policy.PlanStats()
		r := ScaleResult{
			Trace:   ru.tr.Name,
			Sched:   ru.policy.Name(),
			Shards:  ru.policy.Grouping.Shards,
			Jobs:    res.Summary.Jobs,
			Wall:    wall,
			Summary: res.Summary,
			Engine:  res.Engine,
			Heap:    res.Heap,
			Pool:    metrics.MatcherPoolStats{Gets: after.Gets - before.Gets, News: after.News - before.News},
			Plan:    plan,
		}
		if r.Shards == 0 {
			r.Shards = 1
		}
		out = append(out, r)
		t.Rows = append(t.Rows, []string{
			r.Trace,
			strconv.Itoa(r.Jobs),
			r.Sched,
			strconv.Itoa(r.Shards),
			wall.Round(time.Millisecond).String(),
			r.Summary.AvgJCT.Round(time.Second).String(),
			r.Summary.Makespan.Round(time.Second).String(),
			strconv.Itoa(r.Engine.Rounds),
			f2(100 * plan.ReuseRatio()),
			strconv.FormatUint(plan.ShardTasks, 10),
			f2(100 * r.Pool.HitRate()),
		})
	}
	return out, t
}
