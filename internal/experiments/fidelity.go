package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"muri/internal/executor"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/server"
	"muri/internal/sim"
	"muri/internal/trace"
	"muri/internal/workload"
)

// FidelityResult compares the trace-driven simulator against the live
// scheduler⇄executor prototype on an identical workload. The paper
// validates its simulator against the 64-GPU testbed and reports <3%
// metric error (§6.1); this reproduction validates against the prototype
// (whose "hardware" is time-scaled sleeps, so the tolerance is wider —
// timer granularity inflates short stages).
type FidelityResult struct {
	// SimAvgJCT and LiveAvgJCT are the mean job completion times, in
	// virtual time, from the simulator and the prototype.
	SimAvgJCT, LiveAvgJCT time.Duration
	// SimMakespan and LiveMakespan compare the run lengths.
	SimMakespan, LiveMakespan time.Duration
	// JCTError and MakespanError are |live−sim|/sim.
	JCTError, MakespanError float64
	// Jobs is the workload size.
	Jobs int
}

// FidelityConfig parameterizes the comparison.
type FidelityConfig struct {
	// Jobs is the number of single-GPU jobs (round-robin over the zoo).
	Jobs int
	// IterationsPerJob fixes every job's training length.
	IterationsPerJob int64
	// TimeScale compresses virtual time in the live run; coarser scales
	// are more faithful (timer floor) but slower in wall time.
	TimeScale float64
	// VirtualInterval is the scheduling interval in virtual time, used by
	// both sides.
	VirtualInterval time.Duration
	// GPUs is the single executor machine's inventory.
	GPUs int
}

// DefaultFidelityConfig returns a configuration that finishes in a few
// seconds of wall time.
func DefaultFidelityConfig() FidelityConfig {
	return FidelityConfig{
		Jobs:             16,
		IterationsPerJob: 30,
		TimeScale:        0.3,
		VirtualInterval:  2 * time.Second,
		GPUs:             8,
	}
}

// workloadSpecs builds the common job list.
func (fc FidelityConfig) workloadSpecs() []proto.JobSpec {
	zoo := workload.Zoo()
	specs := make([]proto.JobSpec, fc.Jobs)
	for i := range specs {
		m := zoo[i%len(zoo)]
		var st [4]time.Duration
		copy(st[:], m.Stages[:])
		specs[i] = proto.JobSpec{
			Model:      m.Name,
			GPUs:       1,
			Iterations: fc.IterationsPerJob,
			Stages:     st,
		}
	}
	return specs
}

// RunFidelity executes the workload through both the simulator and the
// live prototype and reports the metric error between them.
func RunFidelity(fc FidelityConfig) (FidelityResult, error) {
	specs := fc.workloadSpecs()

	// Simulator side: identical jobs, all submitted at time zero, ideal
	// execution model (the prototype has no contention inflation and no
	// restart cost beyond lost partial iterations).
	var tspecs []trace.Spec
	for i, sp := range specs {
		m, err := workload.ByName(sp.Model)
		if err != nil {
			return FidelityResult{}, err
		}
		tspecs = append(tspecs, trace.Spec{
			ID:       int64(i),
			Submit:   0,
			Duration: time.Duration(sp.Iterations) * m.Stages.Total(),
			GPUs:     sp.GPUs,
			Model:    sp.Model,
		})
	}
	simCfg := sim.Config{
		Machines:        1,
		GPUsPerMachine:  fc.GPUs,
		Interval:        fc.VirtualInterval,
		RestartOverhead: 0,
	}
	simRes := sim.Run(simCfg, trace.Trace{Name: "fidelity", Specs: tspecs}, sched.NewMuriL())

	// Live side: one scheduler, one executor, same policy and interval.
	srv := server.New(server.Config{
		Policy:      sched.NewMuriL(),
		Interval:    time.Duration(float64(fc.VirtualInterval) * fc.TimeScale),
		TimeScale:   fc.TimeScale,
		ReportEvery: 20 * time.Millisecond,
		Logf:        func(string, ...any) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return FidelityResult{}, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	ctx, cancel := context.WithCancel(context.Background())
	agent := &executor.Agent{MachineID: "fidelity-0", GPUs: fc.GPUs, Logf: func(string, ...any) {}}
	wg.Add(1)
	go func() { defer wg.Done(); _ = agent.Run(ctx, ln.Addr().String()) }()
	defer func() { cancel(); srv.Close(); wg.Wait() }()

	client, err := server.Dial(ln.Addr().String())
	if err != nil {
		return FidelityResult{}, err
	}
	defer client.Close()
	start := time.Now()
	for _, sp := range specs {
		if _, err := client.SubmitSpec(sp); err != nil {
			return FidelityResult{}, err
		}
	}
	st, err := client.WaitAllDone(5*time.Minute, 25*time.Millisecond)
	if err != nil {
		return FidelityResult{}, err
	}
	liveMakespan := time.Duration(float64(time.Since(start)) / fc.TimeScale)
	var liveSum time.Duration
	for _, j := range st.Jobs {
		liveSum += j.JCT
	}
	liveAvg := liveSum / time.Duration(len(st.Jobs))

	res := FidelityResult{
		SimAvgJCT:    simRes.Summary.AvgJCT,
		LiveAvgJCT:   liveAvg,
		SimMakespan:  simRes.Summary.Makespan,
		LiveMakespan: liveMakespan,
		Jobs:         len(specs),
	}
	res.JCTError = relError(res.LiveAvgJCT, res.SimAvgJCT)
	res.MakespanError = relError(res.LiveMakespan, res.SimMakespan)
	return res, nil
}

func relError(live, sim time.Duration) float64 {
	if sim == 0 {
		return 0
	}
	d := float64(live - sim)
	if d < 0 {
		d = -d
	}
	return d / float64(sim)
}

// FidelityTable renders the comparison.
func FidelityTable(r FidelityResult) Table {
	return Table{
		Title:  "Simulator fidelity: trace-driven simulator vs live prototype",
		Header: []string{"metric", "simulator", "prototype", "error"},
		Rows: [][]string{
			{"avg JCT", r.SimAvgJCT.Round(time.Millisecond).String(),
				r.LiveAvgJCT.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f%%", 100*r.JCTError)},
			{"makespan", r.SimMakespan.Round(time.Millisecond).String(),
				r.LiveMakespan.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f%%", 100*r.MakespanError)},
		},
	}
}

// MeanJCTError is a convenience used by tests and benchmarks.
func (r FidelityResult) MeanJCTError() float64 { return r.JCTError }
