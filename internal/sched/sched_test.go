package sched

import (
	"testing"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

func mk(id int, model string, gpus int, iters int64, submit time.Duration) *job.Job {
	m, err := workload.ByName(model)
	if err != nil {
		panic(err)
	}
	return job.New(job.ID(id), m, gpus, iters, submit)
}

func ids(units []Unit) [][]job.ID {
	var out [][]job.ID
	for _, u := range units {
		var g []job.ID
		for _, j := range u.Jobs {
			g = append(g, j.ID)
		}
		out = append(out, g)
	}
	return out
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Exclusive: "exclusive", Interleaved: "interleaved",
		SpaceShared: "space-shared", Mode(9): "mode(?)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d) = %q, want %q", int(m), got, want)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	p := FIFO()
	if p.Preemptive() {
		t.Error("FIFO should be non-preemptive")
	}
	jobs := []*job.Job{
		mk(0, "gpt2", 1, 100, 20*time.Second),
		mk(1, "gpt2", 1, 100, 10*time.Second),
	}
	units := p.Plan(0, jobs, 64)
	if units[0].Jobs[0].ID != 1 || units[1].Jobs[0].ID != 0 {
		t.Errorf("FIFO order = %v, want earliest first", ids(units))
	}
	for _, u := range units {
		if u.Mode != Exclusive || len(u.Jobs) != 1 {
			t.Errorf("FIFO unit %v not exclusive singleton", ids([]Unit{u}))
		}
	}
}

func TestSRTFIgnoresGPUs(t *testing.T) {
	// Same remaining time, different GPU counts: SRTF ties, SRSF prefers
	// the smaller job.
	a := mk(0, "gpt2", 8, 100, 0)
	b := mk(1, "gpt2", 1, 100, time.Second)
	srtf := SRTF().Plan(0, []*job.Job{a, b}, 64)
	if srtf[0].Jobs[0].ID != 0 {
		t.Errorf("SRTF tie should fall back to submit order, got %v", ids(srtf))
	}
	srsf := SRSF().Plan(0, []*job.Job{a, b}, 64)
	if srsf[0].Jobs[0].ID != 1 {
		t.Errorf("SRSF should prefer the 1-GPU job, got %v", ids(srsf))
	}
}

func TestTiresiasPrefersLeastAttained(t *testing.T) {
	a := mk(0, "gpt2", 1, 100, 0)
	a.Attained = time.Hour
	b := mk(1, "gpt2", 1, 100, time.Second)
	units := Tiresias().Plan(0, []*job.Job{a, b}, 64)
	if units[0].Jobs[0].ID != 1 {
		t.Errorf("Tiresias should prefer the new job, got %v", ids(units))
	}
}

func TestThemisPrefersMostDelayed(t *testing.T) {
	// Two identical jobs; one has waited 10× longer → higher ρ → first.
	a := mk(0, "gpt2", 1, 100, 0)
	b := mk(1, "gpt2", 1, 100, 90*time.Second)
	units := Themis().Plan(100*time.Second, []*job.Job{a, b}, 64)
	if units[0].Jobs[0].ID != 0 {
		t.Errorf("Themis should prefer the most-delayed job, got %v", ids(units))
	}
}

func TestAntManPairsSameGPUJobs(t *testing.T) {
	p := AntMan{ShareDegree: 2}
	jobs := []*job.Job{
		mk(0, "gpt2", 1, 100, 0),
		mk(1, "a2c", 1, 100, time.Second),
		mk(2, "gpt2", 8, 100, 2*time.Second),
		mk(3, "vgg16", 8, 100, 3*time.Second),
		mk(4, "shufflenet", 1, 100, 4*time.Second),
	}
	units := p.Plan(0, jobs, 64)
	if len(units) != 3 {
		t.Fatalf("units = %v, want 3 (two pairs + leftover)", ids(units))
	}
	for _, u := range units {
		for _, j := range u.Jobs {
			if j.GPUs != u.GPUs {
				t.Errorf("unit gpus %d mixes job with %d", u.GPUs, j.GPUs)
			}
		}
		switch len(u.Jobs) {
		case 1:
			if u.Mode != Exclusive {
				t.Errorf("singleton unit mode = %v, want exclusive", u.Mode)
			}
		case 2:
			if u.Mode != SpaceShared {
				t.Errorf("pair unit mode = %v, want space-shared", u.Mode)
			}
		default:
			t.Errorf("unit with %d members exceeds degree", len(u.Jobs))
		}
	}
}

func TestAntManDefaultDegree(t *testing.T) {
	p := AntMan{}
	jobs := []*job.Job{mk(0, "gpt2", 1, 10, 0), mk(1, "gpt2", 1, 10, 0), mk(2, "gpt2", 1, 10, 0)}
	units := p.Plan(0, jobs, 64)
	if len(units) != 2 {
		t.Errorf("default degree should pair: got %v", ids(units))
	}
}

func TestSpaceSharedSlowdown(t *testing.T) {
	a := workload.StageTimes{0, 0, 10 * time.Millisecond, 0} // pure GPU
	b := workload.StageTimes{10 * time.Millisecond, 0, 0, 0} // pure storage
	// Identical jobs fully overlap → 2× slowdown.
	if got := SpaceSharedSlowdown(a, []workload.StageTimes{a}); got != 2.0 {
		t.Errorf("identical-pair slowdown = %v, want 2", got)
	}
	// Complementary jobs don't overlap → no slowdown.
	if got := SpaceSharedSlowdown(a, []workload.StageTimes{b}); got != 1.0 {
		t.Errorf("complementary-pair slowdown = %v, want 1", got)
	}
	// No co-located jobs → no slowdown.
	if got := SpaceSharedSlowdown(a, nil); got != 1.0 {
		t.Errorf("solo slowdown = %v, want 1", got)
	}
}

func TestMuriGroupsComplementaryJobs(t *testing.T) {
	p := NewMuriS()
	jobs := []*job.Job{
		mk(0, "shufflenet", 1, 1000, 0), // storage
		mk(1, "a2c", 1, 1000, 0),        // cpu
		mk(2, "gpt2", 1, 1000, 0),       // gpu
		mk(3, "vgg16", 1, 1000, 0),      // network
	}
	// Capacity 1 forces sharing: the four complementary single-GPU jobs
	// should form one 4-job interleaved group. (With capacity ≥ 4 the
	// demand fits and Muri degrades to exclusive SRSF.)
	units := p.Plan(0, jobs, 1)
	if len(units) != 1 {
		t.Fatalf("units = %v, want one 4-job group", ids(units))
	}
	if excl := p.Plan(0, jobs, 64); len(excl) != 4 {
		t.Errorf("lightly loaded plan = %v, want 4 exclusive units", ids(excl))
	}
	if units[0].Mode != Interleaved || len(units[0].Jobs) != 4 {
		t.Errorf("unit = %d jobs mode %v, want 4 interleaved", len(units[0].Jobs), units[0].Mode)
	}
	if units[0].Plan.IterTime <= 0 {
		t.Error("group plan has no iteration time")
	}
}

func TestMuriNames(t *testing.T) {
	if got := NewMuriS().Name(); got != "muri-s" {
		t.Errorf("Muri-S name = %q", got)
	}
	if got := NewMuriL().Name(); got != "muri-l" {
		t.Errorf("Muri-L name = %q", got)
	}
	m := NewMuriL()
	m.Label = "muri-l-worst"
	if got := m.Name(); got != "muri-l-worst" {
		t.Errorf("labeled name = %q", got)
	}
	if !m.Preemptive() {
		t.Error("Muri should be preemptive")
	}
}

func TestMuriCandidateBudget(t *testing.T) {
	// With capacity 1 and factor 1, only the single most urgent job is
	// considered, so everything comes back as singletons.
	p := NewMuriS()
	p.CandidateFactor = 1
	var jobs []*job.Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, mk(i, "gpt2", 1, int64(100+i), 0))
	}
	units := p.Plan(0, jobs, 1)
	if len(units) != len(jobs) {
		t.Errorf("got %d units, want %d (grouping budget 1 plus exclusive backfill)", len(units), len(jobs))
	}
	for _, u := range units {
		if len(u.Jobs) != 1 {
			t.Errorf("unit %v grouped despite 1-GPU candidate budget", ids([]Unit{u}))
		}
	}
	if units[0].Jobs[0].ID != 0 {
		t.Errorf("most urgent job should head the plan, got %v", ids(units))
	}
}

func TestMuriNeverMixesGPUBuckets(t *testing.T) {
	p := NewMuriL()
	jobs := []*job.Job{
		mk(0, "shufflenet", 1, 100, 0),
		mk(1, "gpt2", 2, 100, 0),
		mk(2, "a2c", 1, 100, 0),
		mk(3, "vgg16", 2, 100, 0),
	}
	units := p.Plan(0, jobs, 64)
	for _, u := range units {
		for _, j := range u.Jobs {
			if j.GPUs != u.GPUs {
				t.Errorf("unit (%d GPUs) contains job %d needing %d", u.GPUs, j.ID, j.GPUs)
			}
		}
	}
}

func TestMuriPriorityOrdersGroups(t *testing.T) {
	// A nearly-finished job should head the placement order.
	urgent := mk(0, "gpt2", 1, 10, 0)
	var jobs []*job.Job
	jobs = append(jobs, urgent)
	for i := 1; i < 8; i++ {
		jobs = append(jobs, mk(i, "vgg16", 1, 100000, 0))
	}
	units := NewMuriS().Plan(0, jobs, 64)
	found := false
	for _, j := range units[0].Jobs {
		if j.ID == urgent.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("most urgent job not in first unit: %v", ids(units))
	}
}

func TestStickyKeepsGroupsAcrossPlans(t *testing.T) {
	p := NewMuriL()
	p.Sticky = true
	jobs := []*job.Job{
		mk(0, "shufflenet", 1, 100000, 0),
		mk(1, "a2c", 1, 100000, 0),
		mk(2, "gpt2", 1, 100000, 0),
		mk(3, "vgg16", 1, 100000, 0),
	}
	// Capacity 1 forces one 4-job group.
	first := p.Plan(0, jobs, 1)
	if len(first) != 1 || len(first[0].Jobs) != 4 {
		t.Fatalf("first plan = %v, want one 4-group", ids(first))
	}
	// Skew attained service so a fresh matching could reorder; the sticky
	// seed must keep the same member set together.
	jobs[0].Attained = 3 * time.Hour
	second := p.Plan(0, jobs, 1)
	if len(second) != 1 || len(second[0].Jobs) != 4 {
		t.Fatalf("second plan = %v, want the seeded 4-group", ids(second))
	}
}

func TestStickySeedDissolvesWhenMemberLeaves(t *testing.T) {
	p := NewMuriL()
	p.Sticky = true
	jobs := []*job.Job{
		mk(0, "shufflenet", 1, 100000, 0),
		mk(1, "a2c", 1, 100000, 0),
	}
	first := p.Plan(0, jobs, 1)
	if len(first) != 1 || len(first[0].Jobs) != 2 {
		t.Fatalf("first plan = %v, want one pair", ids(first))
	}
	// Job 1 finishes; only job 0 remains. The seed must dissolve.
	second := p.Plan(0, jobs[:1], 1)
	if len(second) != 1 || len(second[0].Jobs) != 1 {
		t.Fatalf("second plan = %v, want a singleton", ids(second))
	}
}

func TestStickyDegradesToExclusiveWhenUnloaded(t *testing.T) {
	p := NewMuriL()
	p.Sticky = true
	jobs := []*job.Job{
		mk(0, "shufflenet", 1, 100000, 0),
		mk(1, "a2c", 1, 100000, 0),
	}
	if u := p.Plan(0, jobs, 1); len(u) != 1 {
		t.Fatalf("loaded plan = %v, want one pair", ids(u))
	}
	// Capacity doubles: demand fits, groups dissolve to exclusive units.
	if u := p.Plan(0, jobs, 64); len(u) != 2 {
		t.Fatalf("unloaded plan = %v, want exclusive units", ids(u))
	}
}
