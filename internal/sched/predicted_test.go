package sched

import (
	"sync"
	"testing"
	"time"

	"muri/internal/job"
	"muri/internal/profile"
	"muri/internal/workload"
)

// With the oracle estimator, the predicted variants must order jobs
// exactly like their oracle-era originals: the estimator returns the
// true profile, which (absent drift or profiling noise) is the profile
// the originals read.
func TestPredictedMatchesOracleOrdering(t *testing.T) {
	jobs := []*job.Job{
		mk(0, "gpt2", 2, 5000, 0),
		mk(1, "resnet18", 1, 100, time.Second),
		mk(2, "vgg19", 4, 800, 2*time.Second),
		mk(3, "bert", 8, 50, 3*time.Second),
	}
	oracle := profile.NewOracle()
	cases := []struct {
		base, pred Policy
	}{
		{SRTF(), SRTFPredicted(oracle)},
		{SRSF(), SRSFPredicted(oracle)},
	}
	for _, c := range cases {
		want := c.base.Plan(0, jobs, 64)
		got := c.pred.Plan(0, jobs, 64)
		if len(want) != len(got) {
			t.Fatalf("%s: %d units vs %d", c.pred.Name(), len(got), len(want))
		}
		for i := range want {
			if want[i].Jobs[0].ID != got[i].Jobs[0].ID {
				t.Errorf("%s: unit %d is job %d, oracle original placed job %d",
					c.pred.Name(), i, got[i].Jobs[0].ID, want[i].Jobs[0].ID)
			}
		}
	}
}

// Once the online estimator has learned that a model's iterations are
// much longer than its zoo profile claims, the predicted SRTF must
// reorder accordingly while oracle-profile SRTF stays fooled.
func TestPredictedUsesLearnedDurations(t *testing.T) {
	est := profile.NewOnline()
	slow, err := workload.ByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	// resnet18 iterations measured 100× the zoo profile.
	for i := 0; i < 10; i++ {
		est.ObserveCompletion(slow.Name, slow.Stages.Scale(100), time.Hour)
	}
	short := mk(0, "resnet18", 1, 1000, 0) // believed short, actually long
	long := mk(1, "gpt2", 1, 2000, time.Second)
	p := SRTFPredicted(est)
	units := p.Plan(0, []*job.Job{short, long}, 64)
	if units[0].Jobs[0].ID != 1 {
		t.Errorf("predicted SRTF kept the stale-profile job first; learned durations ignored")
	}
	if units := SRTF().Plan(0, []*job.Job{short, long}, 64); units[0].Jobs[0].ID != 0 {
		t.Errorf("oracle-profile SRTF unexpectedly reordered: %v", ids(units))
	}
}

// Gittins with a Source must rank against the predictor's completed
// service history and ignore its private log.
func TestGittinsConsumesPredictorHistory(t *testing.T) {
	est := profile.NewOnline()
	m, err := workload.ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		est.ObserveCompletion(m.Name, m.Stages, 10*time.Minute)
	}
	for i := 0; i < 5; i++ {
		est.ObserveCompletion(m.Name, m.Stages, 48*time.Hour)
	}
	g := NewGittinsFromEstimator(est)
	if g.Name() != "gittins-pred" {
		t.Fatalf("name = %q, want gittins-pred", g.Name())
	}
	g.Observe(time.Second) // must be a no-op with a Source attached
	fresh := mk(0, "gpt2", 1, 1000, time.Second)
	survivor := mk(1, "gpt2", 1, 1000, 0)
	survivor.Attained = 2 * time.Hour // outlived the short mass → long
	units := g.Plan(0, []*job.Job{survivor, fresh}, 64)
	if units[0].Jobs[0].ID != 0 {
		t.Errorf("order = %v, want the fresh (probably short) job first", ids(units))
	}
}

// Concurrent Observe and Plan must be race-free (run under -race): the
// sharded scheduling path and the daemon's schedule loop can hit the
// policy from different goroutines.
func TestGittinsConcurrentObservePlan(t *testing.T) {
	g := NewGittins()
	jobs := []*job.Job{
		mk(0, "gpt2", 1, 100, 0),
		mk(1, "resnet18", 2, 200, time.Second),
		mk(2, "vgg19", 4, 300, 2*time.Second),
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Observe(time.Duration(w*1000+i) * time.Second)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Plan(0, jobs, 64)
			}
		}()
	}
	wg.Wait()
	if got := len(g.snapshotHistory()); got != 800 {
		t.Fatalf("history lost observations under concurrency: %d, want 800", got)
	}
}
