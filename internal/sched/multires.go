package sched

import (
	"sort"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

// This file implements the classic multi-resource schedulers the paper
// contrasts itself with (§8): Dominant Resource Fairness (Ghodsi et al.,
// NSDI'11) and Tetris-style multi-resource packing (Grandl et al.,
// SIGCOMM'14). Both allocate resources in *space* using each job's peak
// per-resource demand; the paper's observation is that for DL training
// jobs — whose peak GPU demand is ~1 per requested GPU — space sharing
// has nothing to pack, so these schedulers degenerate to SRTF-like
// behavior (§6.1: "existing multi-resource schedulers degenerate to SRTF
// or its variants when scheduling DL training jobs").

// demandVector is a job's peak fractional demand of each resource type,
// per requested GPU slot, derived from its stage profile: a job that
// spends 70% of its iteration on storage has storage demand 0.7.
func demandVector(j *job.Job) [workload.NumResources]float64 {
	return j.Profile.Fractions()
}

// DRF implements job-level Dominant Resource Fairness: jobs are
// repeatedly granted resources in order of their lowest dominant share,
// where a job's dominant share is its largest fractional demand times
// the GPUs it has been granted so far. With every DL job demanding a
// whole GPU, the dominant resource is effectively the GPU and DRF
// reduces to max-min fairness on GPU counts.
type DRF struct{}

// Name implements Policy.
func (DRF) Name() string { return "drf" }

// Preemptive implements Policy.
func (DRF) Preemptive() bool { return true }

// Plan implements Policy: order jobs by the dominant share they would
// hold if granted, smallest first (progressive filling), tie-broken by
// arrival.
func (DRF) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	type cand struct {
		j        *job.Job
		dominant float64
	}
	cands := make([]cand, len(jobs))
	for i, j := range jobs {
		d := demandVector(j)
		max := 0.0
		for _, v := range d {
			if v > max {
				max = v
			}
		}
		// Dominant share if granted: gpus × peak fractional demand,
		// normalized by cluster capacity.
		share := float64(j.GPUs) * max
		if capacity > 0 {
			share /= float64(capacity)
		}
		cands[i] = cand{j: j, dominant: share}
	}
	sort.SliceStable(cands, func(i, k int) bool {
		if cands[i].dominant != cands[k].dominant {
			return cands[i].dominant < cands[k].dominant
		}
		if cands[i].j.Submit != cands[k].j.Submit {
			return cands[i].j.Submit < cands[k].j.Submit
		}
		return cands[i].j.ID < cands[k].j.ID
	})
	units := make([]Unit, len(cands))
	for i, c := range cands {
		units[i] = Unit{Jobs: []*job.Job{c.j}, GPUs: c.j.GPUs, Mode: Exclusive}
	}
	return units
}

// Tetris implements Tetris-style multi-resource packing: jobs are scored
// by the alignment (dot product) between their peak demand vector and
// the cluster's remaining capacity vector, blended with SRTF to bound
// job completion time — the original paper's "combine packing efficiency
// and average completion time" heuristic. Resources are still allocated
// exclusively in space: with whole-GPU demands there is no sharing to
// exploit, which is exactly the degeneration Muri's paper points out.
type Tetris struct {
	// JCTWeight blends the SRTF term into the packing score (0 = pure
	// packing, 1 = pure SRTF). The Tetris paper recommends an even blend.
	JCTWeight float64
}

// Name implements Policy.
func (Tetris) Name() string { return "tetris" }

// Preemptive implements Policy.
func (Tetris) Preemptive() bool { return true }

// Plan implements Policy.
func (t Tetris) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	w := t.JCTWeight
	if w <= 0 {
		w = 0.5
	}
	// Remaining capacity vector: the fraction of each resource type still
	// free cluster-wide. At plan time (preemptive reset) everything is
	// free, so alignment reduces to the magnitude of the demand vector —
	// the degenerate case the Muri paper describes.
	var remaining [workload.NumResources]float64
	for r := range remaining {
		remaining[r] = 1
	}
	type cand struct {
		j     *job.Job
		score float64
	}
	// Normalize the SRTF term across the candidate set.
	maxRem := time.Duration(1)
	for _, j := range jobs {
		if r := j.RemainingTime(); r > maxRem {
			maxRem = r
		}
	}
	cands := make([]cand, len(jobs))
	for i, j := range jobs {
		d := demandVector(j)
		align := 0.0
		for r := range d {
			align += d[r] * remaining[r]
		}
		srtf := 1 - float64(j.RemainingTime())/float64(maxRem)
		cands[i] = cand{j: j, score: (1-w)*align + w*srtf}
	}
	sort.SliceStable(cands, func(i, k int) bool {
		if cands[i].score != cands[k].score {
			return cands[i].score > cands[k].score // higher score first
		}
		if cands[i].j.Submit != cands[k].j.Submit {
			return cands[i].j.Submit < cands[k].j.Submit
		}
		return cands[i].j.ID < cands[k].j.ID
	})
	units := make([]Unit, len(cands))
	for i, c := range cands {
		units[i] = Unit{Jobs: []*job.Job{c.j}, GPUs: c.j.GPUs, Mode: Exclusive}
	}
	return units
}
