package sched

import (
	"testing"
	"time"

	"muri/internal/job"
)

func TestGittinsColdStartIsStable(t *testing.T) {
	g := NewGittins()
	if g.Name() != "gittins" || !g.Preemptive() {
		t.Fatalf("metadata wrong: %q preemptive=%v", g.Name(), g.Preemptive())
	}
	jobs := []*job.Job{
		mk(0, "gpt2", 1, 100, 0),
		mk(1, "gpt2", 1, 100, time.Second),
	}
	units := g.Plan(0, jobs, 64)
	// With no history every index is equal; tie-break is submit order.
	if units[0].Jobs[0].ID != 0 || units[1].Jobs[0].ID != 1 {
		t.Errorf("cold-start order = %v, want submit order", ids(units))
	}
}

func TestGittinsIndexMonotonicity(t *testing.T) {
	g := NewGittins()
	// History: many short jobs (600s) and a few long ones (100000s).
	for i := 0; i < 90; i++ {
		g.Observe(600 * time.Second)
	}
	for i := 0; i < 10; i++ {
		g.Observe(100000 * time.Second)
	}
	history, quanta := g.snapshotHistory(), g.quanta()
	// A fresh job (attained 0) is very likely short → high index.
	fresh := gittinsIndex(history, quanta, 0)
	// A job that survived 1000s is certainly long → low index.
	old := gittinsIndex(history, quanta, 1000)
	if fresh <= old {
		t.Errorf("index(fresh)=%v should exceed index(survived 1000s)=%v", fresh, old)
	}
	// Beyond all observed demands: lowest priority.
	if beyond := gittinsIndex(history, quanta, 1e9); beyond != 0 {
		t.Errorf("index beyond history = %v, want 0", beyond)
	}
}

func TestGittinsPrefersLikelyShortJobs(t *testing.T) {
	g := NewGittins()
	for i := 0; i < 50; i++ {
		g.Observe(10 * time.Minute)
	}
	for i := 0; i < 5; i++ {
		g.Observe(48 * time.Hour)
	}
	fresh := mk(0, "gpt2", 1, 1000, time.Second)
	survivor := mk(1, "gpt2", 1, 1000, 0)
	survivor.Attained = 2 * time.Hour // outlived the short mass → long
	units := g.Plan(0, []*job.Job{survivor, fresh}, 64)
	if units[0].Jobs[0].ID != 0 {
		t.Errorf("order = %v, want the fresh (probably short) job first", ids(units))
	}
}

func TestGittins2DUsesGPUWeightedService(t *testing.T) {
	g := NewGittins()
	for i := 0; i < 50; i++ {
		g.Observe(10 * time.Minute)
	}
	for i := 0; i < 5; i++ {
		g.Observe(48 * time.Hour)
	}
	// Same attained wall time, but 8 GPUs → 8× service → deeper into the
	// distribution → lower index than the 1-GPU job.
	wide := mk(0, "gpt2", 8, 1000, 0)
	wide.Attained = 5 * time.Minute // 40 GPU-minutes
	narrow := mk(1, "gpt2", 1, 1000, time.Second)
	narrow.Attained = 5 * time.Minute // 5 GPU-minutes
	units := g.Plan(0, []*job.Job{wide, narrow}, 64)
	if units[0].Jobs[0].ID != 1 {
		t.Errorf("order = %v, want the 1-GPU job first (less 2D service)", ids(units))
	}
}
