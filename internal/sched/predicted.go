package sched

import (
	"time"

	"muri/internal/job"
	"muri/internal/profile"
)

// This file holds the estimate-aware policy variants: the same priority
// functions as SRTF/SRSF/Muri-L, but with every duration read routed
// through a profile.Estimator instead of the job's oracle profile. With
// the oracle estimator they order jobs identically to the originals;
// with the online estimator they schedule on learned beliefs, which is
// the prediction-assisted regime the `prediction` experiment sweeps.

// predictedIterTime returns the estimator's believed per-iteration
// duration for j, falling back to the job's scheduler-visible profile
// while the estimator has no belief for the model (cold start). The
// fallback is deterministic: it is exactly what the oracle-era policies
// read.
func predictedIterTime(est profile.Estimator, j *job.Job) time.Duration {
	if e, ok := est.EstimateFor(j); ok && e.Stages.Total() > 0 {
		return e.Stages.Total()
	}
	return j.Profile.Total()
}

// predictedRemaining is the believed remaining serial run time.
func predictedRemaining(est profile.Estimator, j *job.Job) time.Duration {
	return time.Duration(j.RemainingIterations()) * predictedIterTime(est, j)
}

// SRTFPredicted is SRTF ordered by predicted remaining run time.
func SRTFPredicted(est profile.Estimator) Policy {
	return priorityPolicy{name: "srtf-pred", preemptive: true,
		key: func(_ time.Duration, j *job.Job) float64 {
			return predictedRemaining(est, j).Seconds()
		}}
}

// SRSFPredicted is SRSF ordered by predicted remaining service
// (predicted remaining time × GPUs).
func SRSFPredicted(est profile.Estimator) Policy {
	return priorityPolicy{name: "srsf-pred", preemptive: true,
		key: func(_ time.Duration, j *job.Job) float64 {
			return predictedRemaining(est, j).Seconds() * float64(j.GPUs)
		}}
}

// NewMuriLPredicted is Muri-L with its remaining-iteration estimate (the
// JCT merge gate's input) computed from the estimator's believed
// iteration time rather than the oracle profile. The 2D-LAS priority
// itself is already oracle-free.
func NewMuriLPredicted(est profile.Estimator) *Muri {
	m := NewMuriL()
	m.Label = "muri-l-pred"
	m.Grouping.RemainingIters = func(j *job.Job) int64 {
		floor := int64(1)
		if it := predictedIterTime(est, j); it > 0 {
			floor = int64(10 * time.Minute / it)
			if floor < 1 {
				floor = 1
			}
		}
		n := j.DoneIterations
		if n < floor {
			n = floor
		}
		if m.QuantizeEstimates {
			n = quantPow2Int(n)
		}
		return n
	}
	return m
}
