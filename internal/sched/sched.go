// Package sched defines the scheduling-policy interface and implements
// the policies evaluated in the paper: the baselines (FIFO, SRTF, SRSF,
// Tiresias/2D-LAS, Themis, AntMan) and Muri itself (Muri-S with SRSF
// priorities, Muri-L with 2D-LAS priorities), plus the ablation variants
// of Figures 11 and 12.
package sched

import (
	"math"
	"math/bits"
	"slices"
	"sort"
	"time"

	"muri/internal/core"
	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/workload"
)

// Mode describes how the jobs of a unit share their GPUs.
type Mode int

const (
	// Exclusive units hold their GPUs for a single job.
	Exclusive Mode = iota
	// Interleaved units time-interleave their members' stages with
	// synchronization barriers (Muri groups).
	Interleaved
	// SpaceShared units co-locate members on the same GPUs without stage
	// coordination (AntMan-style sharing): members contend whenever their
	// resource usage overlaps.
	SpaceShared
)

// String returns the lowercase mode name.
func (m Mode) String() string {
	switch m {
	case Exclusive:
		return "exclusive"
	case Interleaved:
		return "interleaved"
	case SpaceShared:
		return "space-shared"
	default:
		return "mode(?)"
	}
}

// Unit is one schedulable entity: a set of jobs that share one GPU
// allocation of size GPUs. Exclusive units have exactly one member.
type Unit struct {
	// Jobs lists the members; for Interleaved units they are in plan
	// (stage-offset) order.
	Jobs []*job.Job
	// GPUs is the allocation size every member requires.
	GPUs int
	// Mode is the sharing discipline.
	Mode Mode
	// Plan is the interleaving plan (Interleaved mode only).
	Plan interleave.Plan
}

// Policy decides which units run. The simulator invokes Plan at every
// scheduling interval; for preemptive policies jobs contains every
// unfinished job (running ones included), for non-preemptive policies it
// contains only jobs not currently placed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Preemptive reports whether the policy reconsiders running jobs.
	Preemptive() bool
	// Plan returns candidate units in descending placement priority.
	// capacity is the cluster's total GPU count; policies use it to bound
	// how many queue entries they consider.
	Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit
}

// sortJobs sorts jobs by the given key ascending, breaking ties by
// submission time then ID for determinism.
func sortJobs(jobs []*job.Job, key func(*job.Job) float64) {
	sort.SliceStable(jobs, func(i, k int) bool {
		a, b := key(jobs[i]), key(jobs[k])
		if a != b {
			return a < b
		}
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
}

// exclusiveUnits wraps each job in its own unit, preserving order.
func exclusiveUnits(jobs []*job.Job) []Unit {
	units := make([]Unit, len(jobs))
	for i, j := range jobs {
		units[i] = Unit{Jobs: []*job.Job{j}, GPUs: j.GPUs, Mode: Exclusive}
	}
	return units
}

// priorityPolicy is a generic exclusive-allocation policy ordered by a
// priority key (lower runs first).
type priorityPolicy struct {
	name       string
	preemptive bool
	key        func(now time.Duration, j *job.Job) float64
}

func (p priorityPolicy) Name() string     { return p.name }
func (p priorityPolicy) Preemptive() bool { return p.preemptive }

// PriorityKey exposes the comparator key that orders job j (lower runs
// first) — the engine's provenance layer uses it to explain why a job
// ranked behind its blockers.
func (p priorityPolicy) PriorityKey(now time.Duration, j *job.Job) float64 {
	return p.key(now, j)
}

func (p priorityPolicy) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	ordered := append([]*job.Job{}, jobs...)
	sortJobs(ordered, func(j *job.Job) float64 { return p.key(now, j) })
	return exclusiveUnits(ordered)
}

// FIFO schedules jobs exclusively in arrival order without preemption.
func FIFO() Policy {
	return priorityPolicy{name: "fifo", preemptive: false,
		key: func(_ time.Duration, j *job.Job) float64 { return j.Submit.Seconds() }}
}

// SRTF is Shortest Remaining Time First: preemptive, exclusive, ordered
// by remaining run time (GPU count ignored).
func SRTF() Policy {
	return priorityPolicy{name: "srtf", preemptive: true,
		key: func(_ time.Duration, j *job.Job) float64 { return j.RemainingTime().Seconds() }}
}

// SRSF is Shortest Remaining Service First (Tiresias's duration-aware
// metric): preemptive, exclusive, ordered by remaining time × GPUs.
func SRSF() Policy {
	return priorityPolicy{name: "srsf", preemptive: true,
		key: func(_ time.Duration, j *job.Job) float64 { return j.SRSF() }}
}

// Tiresias is the 2D-LAS configuration of Tiresias: preemptive,
// exclusive, ordered by attained service × GPUs, so new jobs run first.
func Tiresias() Policy {
	return priorityPolicy{name: "tiresias", preemptive: true,
		key: func(_ time.Duration, j *job.Job) float64 { return j.LAS2D() }}
}

// Themis approximates Themis's finish-time fairness: preemptive,
// exclusive, ordered by descending ρ = (waiting + attained + remaining) /
// ideal total — jobs that have been treated most unfairly run first. This
// captures the ordering property the paper's comparison relies on; the
// full auction protocol is out of scope (see DESIGN.md §1).
func Themis() Policy {
	return priorityPolicy{name: "themis", preemptive: true,
		key: func(now time.Duration, j *job.Job) float64 {
			total := j.TotalTime().Seconds()
			if total <= 0 {
				return 0
			}
			age := (now - j.Submit).Seconds()
			if age < 0 {
				age = 0
			}
			rho := (age + j.RemainingTime().Seconds()) / total
			return -rho
		}}
}

// AntMan models AntMan's opportunistic GPU sharing: non-preemptive FIFO
// order, with up to ShareDegree jobs of equal GPU requirement co-located
// on one allocation. Sharing is spatial (no stage coordination), so
// co-located jobs slow each other down in proportion to how much their
// resource usage overlaps.
type AntMan struct {
	// ShareDegree is the maximum number of jobs per GPU allocation
	// (AntMan packs one resource-guaranteed job plus opportunistic ones;
	// 2 is the common case).
	ShareDegree int
}

// Name implements Policy.
func (a AntMan) Name() string { return "antman" }

// Preemptive implements Policy: AntMan is non-preemptive (§6.3).
func (a AntMan) Preemptive() bool { return false }

// Plan implements Policy: FIFO order, pairing adjacent jobs with the same
// GPU requirement.
func (a AntMan) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	degree := a.ShareDegree
	if degree < 1 {
		degree = 2
	}
	ordered := append([]*job.Job{}, jobs...)
	sortJobs(ordered, func(j *job.Job) float64 { return j.Submit.Seconds() })
	var units []Unit
	pendingByGPU := make(map[int][]*job.Job)
	flush := func(g int) {
		batch := pendingByGPU[g]
		if len(batch) == 0 {
			return
		}
		mode := SpaceShared
		if len(batch) == 1 {
			mode = Exclusive
		}
		units = append(units, Unit{Jobs: batch, GPUs: g, Mode: mode})
		pendingByGPU[g] = nil
	}
	for _, j := range ordered {
		pendingByGPU[j.GPUs] = append(pendingByGPU[j.GPUs], j)
		if len(pendingByGPU[j.GPUs]) == degree {
			flush(j.GPUs)
		}
	}
	// Flush leftovers in deterministic order.
	var gs []int
	for g, batch := range pendingByGPU {
		if len(batch) > 0 {
			gs = append(gs, g)
		}
	}
	sort.Ints(gs)
	for _, g := range gs {
		flush(g)
	}
	// Restore global FIFO order across units (earliest member first).
	sort.SliceStable(units, func(i, k int) bool {
		return units[i].Jobs[0].Submit < units[k].Jobs[0].Submit
	})
	return units
}

// SpaceSharedSlowdown returns the multiplicative slowdown each member of a
// space-shared unit experiences: 1 + the pairwise overlap of resource-time
// fractions with every co-located job. Two jobs with identical profiles
// overlap fully (≈2× slowdown, the paper's §2.1 example); complementary
// jobs overlap little.
func SpaceSharedSlowdown(member workload.StageTimes, others []workload.StageTimes) float64 {
	mf := member.Fractions()
	slow := 1.0
	for _, o := range others {
		of := o.Fractions()
		overlap := 0.0
		for r := 0; r < workload.NumResources; r++ {
			if mf[r] < of[r] {
				overlap += mf[r]
			} else {
				overlap += of[r]
			}
		}
		slow += overlap
	}
	return slow
}

// Muri is the paper's scheduler: priority ordering (SRSF or 2D-LAS)
// combined with the multi-round Blossom grouping of Algorithm 1.
type Muri struct {
	// Grouping configures Algorithm 1 (group size cap, Blossom on/off,
	// ordering ablation, contention model).
	Grouping core.Config
	// KnownDurations selects the priority function: true = SRSF (Muri-S),
	// false = 2D-LAS (Muri-L).
	KnownDurations bool
	// CandidateFactor bounds how much work is considered for grouping:
	// jobs are taken in priority order until their summed GPU demand
	// reaches CandidateFactor × capacity (Algorithm 1 line 3: "these n
	// jobs can be fully grouped and they can fully utilize the cluster").
	// Zero defaults to the group-size cap (k jobs per GPU).
	CandidateFactor int
	// Sticky keeps groups formed in earlier scheduling rounds together
	// (as pre-merged matching nodes) while all their members remain
	// candidates, reducing preemption/restart churn. Off by default; the
	// paper's prototype rematches from scratch every interval.
	Sticky bool
	// QuantizeEstimates rounds priority keys and (for Muri-L) the
	// remaining-iteration estimates down to powers of two,
	// Tiresias-style. Quantized estimates only move when a job crosses a
	// power-of-two service boundary, so between queue events the grouping
	// inputs — and therefore the incremental planner's bucket signatures
	// — hold still instead of drifting every round. Set before the first
	// Plan call and leave it fixed for the run.
	QuantizeEstimates bool
	// BackfillLimit caps how many beyond-budget jobs are appended as
	// exclusive backfill units (0 = unlimited, the exact behavior).
	// Massive fleets pay O(queue) per round for backfill units that can
	// never place; bounding them is an explicit approximation for the
	// philly-50k scale tier and changes admission behavior only past the
	// limit.
	BackfillLimit int
	// Label overrides the reported name (used by ablation variants).
	Label string

	// prevGroups remembers the last plan's multi-job groups for Sticky.
	prevGroups [][]job.ID
	// scratch is the reusable candidate-ordering buffer.
	scratch []muriEntry
}

// EnableIncremental attaches a fresh core.PlanState to the grouping
// config, turning on the ID-keyed pair cache and cross-round bucket
// replay (see core.PlanState). Call before the first Plan.
func (m *Muri) EnableIncremental() {
	m.Grouping.Planner = core.NewPlanState()
}

// PlanStats snapshots the incremental/sharded grouping counters (zero
// when EnableIncremental was never called).
func (m *Muri) PlanStats() metrics.ShardStats {
	return m.Grouping.Planner.Stats()
}

// NoteDecisions implements engine.DecisionSink: scheduling decisions
// (launches, preemptions, requeues, deadletters) mark the planner dirty.
// The marks are telemetry — the planner's per-bucket signature check is
// the authoritative dirty test — but they tie the Decision stream into
// the incremental machinery and surface how much change each round saw.
func (m *Muri) NoteDecisions(n int) {
	m.Grouping.Planner.MarkDirty(n)
}

// NewMuriS returns Muri with SRSF priorities (known durations). Known
// durations also enable the JCT merge gate: groups form only when the
// merge lowers the members' summed completion time versus sequential
// execution.
func NewMuriS() *Muri {
	cfg := core.DefaultConfig()
	cfg.Gate = core.GateJCT
	return &Muri{Grouping: cfg, KnownDurations: true}
}

// NewMuriL returns Muri with 2D-LAS priorities (unknown durations). The
// JCT merge gate runs on the least-attained-service estimate of remaining
// work: with heavy-tailed DL job durations, a job that has attained a lot
// of service is expected to need about as much again, while a fresh job
// is expected to be short.
func NewMuriL() *Muri {
	cfg := core.DefaultConfig()
	cfg.Gate = core.GateJCT
	m := &Muri{KnownDurations: false}
	cfg.RemainingIters = func(j *job.Job) int64 {
		// Floor at ten minutes of iterations so brand-new jobs are not
		// treated as instantaneous.
		floor := int64(1)
		if it := j.Profile.Total(); it > 0 {
			floor = int64(10 * time.Minute / it)
			if floor < 1 {
				floor = 1
			}
		}
		est := j.DoneIterations
		if est < floor {
			est = floor
		}
		if m.QuantizeEstimates {
			est = quantPow2Int(est)
		}
		return est
	}
	m.Grouping = cfg
	return m
}

// NewMuriLScale returns the Muri-L configuration tuned for very large
// fleets: quantized Tiresias-style estimates, incremental dirty-bucket
// re-matching, and bucket sharding (shards ≤ 1 keeps whole-bucket
// matching). Scheduling behavior differs from plain Muri-L only through
// the quantized estimates and — at shards > 1 — the sharded matching;
// both are deterministic, and the incremental replay itself is
// bit-identical to full re-matching under the same configuration.
func NewMuriLScale(shards int) *Muri {
	m := NewMuriL()
	m.QuantizeEstimates = true
	m.Grouping.Shards = shards
	m.EnableIncremental()
	m.Label = "muri-l-scale"
	return m
}

// quantPow2Int rounds a positive count down to a power of two (the
// Tiresias discretization: values move only at doubling boundaries).
func quantPow2Int(v int64) int64 {
	if v <= 1 {
		return 1
	}
	return int64(1) << (63 - bits.LeadingZeros64(uint64(v)))
}

// quantPow2 rounds a positive priority key down to a power of two by
// clearing the float's mantissa — a pure bit operation, deterministic on
// every platform.
func quantPow2(x float64) float64 {
	if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	b := math.Float64bits(x)
	b &^= 1<<52 - 1
	return math.Float64frombits(b)
}

// Name implements Policy.
func (m *Muri) Name() string {
	if m.Label != "" {
		return m.Label
	}
	if m.KnownDurations {
		return "muri-s"
	}
	return "muri-l"
}

// Preemptive implements Policy.
func (m *Muri) Preemptive() bool { return true }

// PriorityKey exposes the comparator key orderJobs ranks job j with
// (SRSF for Muri-S, 2D-LAS for Muri-L, quantized when the run
// quantizes estimates), so ranked-behind provenance can cite the exact
// values that ordered the queue.
func (m *Muri) PriorityKey(_ time.Duration, j *job.Job) float64 {
	var key float64
	if m.KnownDurations {
		key = j.SRSF()
	} else {
		key = j.LAS2D()
	}
	if m.QuantizeEstimates {
		key = quantPow2(key)
	}
	return key
}

// Plan implements Policy: sort by priority, take candidates to fill the
// cluster CandidateFactor times over, group with Algorithm 1, and order
// groups by their best member's priority.
func (m *Muri) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	maxGroup := m.Grouping.MaxGroupSize
	if maxGroup <= 0 {
		maxGroup = interleave.MaxGroupSize
	}
	factor := m.CandidateFactor
	if factor <= 0 {
		factor = maxGroup
	}
	budget := factor * capacity
	ordered := m.orderJobs(jobs, budget)
	cut := len(ordered)
	taken := 0
	for i, j := range ordered {
		if taken >= budget {
			cut = i
			break
		}
		taken += j.GPUs
	}
	candidates := ordered[:cut]
	// Capacity-aware Algorithm 1: merges happen only while the candidate
	// demand exceeds the cluster, so a lightly loaded cluster degrades to
	// pure SRSF/2D-LAS with exclusive GPUs. With Sticky, groups whose
	// members all survive as candidates enter as pre-merged nodes.
	demand := 0
	for _, j := range candidates {
		demand += j.GPUs
	}
	var groups []core.Group
	if m.Sticky && demand > capacity {
		seeds, rest := m.extractSeeds(candidates)
		groups = m.Grouping.PlanWithSeeds(seeds, rest, capacity)
	} else {
		groups = m.Grouping.Plan(candidates, capacity)
	}
	m.rememberGroups(groups)
	// Rank groups by their most urgent member (position in the priority
	// order), so capacity goes to the highest-priority work first.
	rank := make(map[job.ID]int, len(ordered))
	for i, j := range ordered {
		rank[j.ID] = i
	}
	groupRank := func(g core.Group) int {
		best := len(ordered)
		for _, j := range g.Jobs {
			if r := rank[j.ID]; r < best {
				best = r
			}
		}
		return best
	}
	sort.SliceStable(groups, func(i, k int) bool {
		return groupRank(groups[i]) < groupRank(groups[k])
	})
	units := make([]Unit, 0, len(groups)+len(ordered)-cut)
	for _, g := range groups {
		mode := Interleaved
		if len(g.Jobs) == 1 {
			mode = Exclusive
		}
		units = append(units, Unit{Jobs: g.Jobs, GPUs: g.GPUs, Mode: mode, Plan: g.Plan})
	}
	// Jobs beyond the grouping budget still back-fill exclusively: when a
	// high-priority multi-GPU unit cannot be placed, the spare capacity
	// must not idle while the queue has work.
	backfill := ordered[cut:]
	if m.BackfillLimit > 0 && len(backfill) > m.BackfillLimit {
		backfill = backfill[:m.BackfillLimit]
	}
	units = append(units, exclusiveUnits(backfill)...)
	return units
}

// muriEntry pairs a job with its precomputed priority key so the sort
// never re-evaluates keys inside the comparator.
type muriEntry struct {
	j   *job.Job
	key float64
}

// entryLess is the total priority order: key, then submission time, then
// ID. IDs are unique, so the order has no ties and any comparison sort
// yields the same permutation as the stable sort it replaces.
func entryLess(a, b muriEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.j.Submit != b.j.Submit {
		return a.j.Submit < b.j.Submit
	}
	return a.j.ID < b.j.ID
}

// entryCmp is entryLess as a three-way comparison. It is a total order
// (job IDs are unique), so sorted output is unique regardless of the
// sort algorithm's stability.
func entryCmp(a, b muriEntry) int {
	switch {
	case a.key != b.key:
		if a.key < b.key {
			return -1
		}
		return 1
	case a.j.Submit != b.j.Submit:
		if a.j.Submit < b.j.Submit {
			return -1
		}
		return 1
	case a.j.ID != b.j.ID:
		if a.j.ID < b.j.ID {
			return -1
		}
		return 1
	}
	return 0
}

// orderJobs returns jobs in priority order. With BackfillLimit set, only
// the top budget+BackfillLimit jobs (by GPU-demand accounting, every job
// needs ≥1 GPU) can ever be used, so the rest are partitioned away with
// quickselect instead of sorted — the result is identical to sorting
// everything and truncating.
func (m *Muri) orderJobs(jobs []*job.Job, budget int) []*job.Job {
	if cap(m.scratch) < len(jobs) {
		m.scratch = make([]muriEntry, len(jobs))
	}
	entries := m.scratch[:len(jobs)]
	for i, j := range jobs {
		var key float64
		if m.KnownDurations {
			key = j.SRSF()
		} else {
			key = j.LAS2D()
		}
		if m.QuantizeEstimates {
			key = quantPow2(key)
		}
		entries[i] = muriEntry{j: j, key: key}
	}
	n := len(entries)
	if m.BackfillLimit > 0 {
		if need := budget + m.BackfillLimit; need < n {
			selectTop(entries, need)
			n = need
		}
	}
	// The generic sort swaps 16-byte entries directly; the reflection-based
	// sort.Slice was the single hottest call in large-fleet profiles.
	slices.SortFunc(entries[:n], entryCmp)
	ordered := make([]*job.Job, n)
	for i := range entries[:n] {
		ordered[i] = entries[i].j
	}
	return ordered
}

// selectTop partitions entries so the k smallest (by entryLess) occupy
// entries[:k], in arbitrary order. Median-of-three quickselect; the
// result set is unique because the order is total.
func selectTop(entries []muriEntry, k int) {
	lo, hi := 0, len(entries)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		// Median-of-three pivot, moved to lo.
		if entryLess(entries[mid], entries[lo]) {
			entries[mid], entries[lo] = entries[lo], entries[mid]
		}
		if entryLess(entries[hi], entries[lo]) {
			entries[hi], entries[lo] = entries[lo], entries[hi]
		}
		if entryLess(entries[hi], entries[mid]) {
			entries[hi], entries[mid] = entries[mid], entries[hi]
		}
		pivot := entries[mid]
		i, j := lo, hi
		for i <= j {
			for entryLess(entries[i], pivot) {
				i++
			}
			for entryLess(pivot, entries[j]) {
				j--
			}
			if i <= j {
				entries[i], entries[j] = entries[j], entries[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k > i {
			lo = i
		} else {
			return
		}
	}
}

// extractSeeds reconstructs the previous plan's multi-job groups from the
// current candidate set: a group survives as a seed only if every member
// is still a candidate. It returns the seeds and the remaining loose
// candidates.
func (m *Muri) extractSeeds(candidates []*job.Job) (seeds [][]*job.Job, rest []*job.Job) {
	if len(m.prevGroups) == 0 {
		return nil, candidates
	}
	byID := make(map[job.ID]*job.Job, len(candidates))
	for _, j := range candidates {
		byID[j.ID] = j
	}
	seeded := make(map[job.ID]bool)
	for _, ids := range m.prevGroups {
		group := make([]*job.Job, 0, len(ids))
		ok := true
		for _, id := range ids {
			j := byID[id]
			if j == nil || seeded[id] {
				ok = false
				break
			}
			group = append(group, j)
		}
		if !ok {
			continue
		}
		for _, j := range group {
			seeded[j.ID] = true
		}
		seeds = append(seeds, group)
	}
	for _, j := range candidates {
		if !seeded[j.ID] {
			rest = append(rest, j)
		}
	}
	return seeds, rest
}

// rememberGroups records the plan's multi-job groups for the next round.
func (m *Muri) rememberGroups(groups []core.Group) {
	m.prevGroups = m.prevGroups[:0]
	for _, g := range groups {
		if len(g.Jobs) < 2 {
			continue
		}
		ids := make([]job.ID, len(g.Jobs))
		for i, j := range g.Jobs {
			ids[i] = j.ID
		}
		m.prevGroups = append(m.prevGroups, ids)
	}
}
