package sched

import (
	"sort"
	"time"

	"muri/internal/job"
)

// Gittins implements the Gittins-index scheduling policy that Tiresias
// offers alongside 2D-LAS (paper §2.1: "LAS and Gittins index are
// effective when the running time is unknown"). The index of a job that
// has attained service a is the best ratio, over service quanta Δ, of
//
//	P(job finishes within Δ more service | it survived a)
//	------------------------------------------------------
//	E(service spent in the next Δ | survived a)
//
// computed against an empirical distribution of previously completed job
// service demands. Jobs with the highest index run first; like 2D-LAS,
// the index needs no per-job duration oracle, only the history of
// completed jobs. The 2D extension multiplies attained service by the
// GPU count, exactly as Tiresias does for LAS.
type Gittins struct {
	// Quanta are the candidate service deltas Δ evaluated for the index.
	// Empty uses a geometric ladder from one minute to one day.
	Quanta []time.Duration

	// dirty marks the history as needing a re-sort before the next index
	// computation. Gittins is not safe for concurrent use; the simulator
	// drives each policy instance from a single goroutine.
	dirty   bool
	history []float64 // completed total service (gpu-seconds), sorted
}

// NewGittins returns the policy with the default quantum ladder.
func NewGittins() *Gittins { return &Gittins{} }

// Name implements Policy.
func (g *Gittins) Name() string { return "gittins" }

// Preemptive implements Policy.
func (g *Gittins) Preemptive() bool { return true }

// Observe records the total service demand of a completed job. The
// simulator calls it on every completion so the empirical prior sharpens
// as the trace plays out.
func (g *Gittins) Observe(totalService time.Duration) {
	g.history = append(g.history, totalService.Seconds())
	g.dirty = true
}

func (g *Gittins) quanta() []time.Duration {
	if len(g.Quanta) > 0 {
		return g.Quanta
	}
	return []time.Duration{
		time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour,
		4 * time.Hour, 12 * time.Hour, 24 * time.Hour,
	}
}

// index computes the Gittins index for attained service a (gpu-seconds).
// With no history, every job gets the same index (degenerates to FIFO
// order via the sort tie-break) — matching a cold-started Tiresias.
func (g *Gittins) index(a float64) float64 {
	if g.dirty {
		sort.Float64s(g.history)
		g.dirty = false
	}
	n := len(g.history)
	if n == 0 {
		return 0
	}
	// survivors: jobs with demand > a.
	lo := sort.SearchFloat64s(g.history, a)
	survivors := g.history[lo:]
	if len(survivors) == 0 {
		// Beyond every observed demand: assume heavy tail, lowest index.
		return 0
	}
	best := 0.0
	for _, q := range g.quanta() {
		dq := q.Seconds()
		finished := 0
		expected := 0.0
		for _, d := range survivors {
			if d <= a+dq {
				finished++
				expected += d - a
			} else {
				expected += dq
			}
		}
		p := float64(finished) / float64(len(survivors))
		if expected <= 0 {
			continue
		}
		if r := p / (expected / float64(len(survivors))); r > best {
			best = r
		}
	}
	return best
}

// Plan implements Policy: exclusive units ordered by descending Gittins
// index on 2D attained service.
func (g *Gittins) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	ordered := append([]*job.Job{}, jobs...)
	sortJobs(ordered, func(j *job.Job) float64 {
		a := j.Attained.Seconds() * float64(j.GPUs)
		return -g.index(a) // highest index first
	})
	return exclusiveUnits(ordered)
}
