package sched

import (
	"sort"
	"sync"
	"time"

	"muri/internal/job"
)

// HistorySource supplies an empirical distribution of completed-job
// total service demands (gpu-seconds, sorted ascending). The online
// predictor (profile.Online) implements it, so the Gittins index can
// consume the shared predictor history instead of keeping a private
// oracle-fed log.
type HistorySource interface {
	ServiceHistory() []float64
}

// Gittins implements the Gittins-index scheduling policy that Tiresias
// offers alongside 2D-LAS (paper §2.1: "LAS and Gittins index are
// effective when the running time is unknown"). The index of a job that
// has attained service a is the best ratio, over service quanta Δ, of
//
//	P(job finishes within Δ more service | it survived a)
//	------------------------------------------------------
//	E(service spent in the next Δ | survived a)
//
// computed against an empirical distribution of previously completed job
// service demands. Jobs with the highest index run first; like 2D-LAS,
// the index needs no per-job duration oracle, only the history of
// completed jobs. The 2D extension multiplies attained service by the
// GPU count, exactly as Tiresias does for LAS.
//
// The policy is safe for concurrent use: the private history is guarded
// by a mutex (the sharded scheduling path at core.Config.Shards > 1 and
// the daemon's schedule loop may Observe and Plan from different
// goroutines), and each Plan works against an immutable snapshot of the
// distribution.
type Gittins struct {
	// Quanta are the candidate service deltas Δ evaluated for the index.
	// Empty uses a geometric ladder from one minute to one day.
	Quanta []time.Duration

	// Source, when non-nil, replaces the private completion log with the
	// shared predictor history: Plan reads Source.ServiceHistory() and
	// Observe becomes a no-op (the driver feeds the predictor, which
	// feeds every consumer). Set before the first Plan call.
	Source HistorySource

	// mu guards history and dirty.
	mu sync.Mutex
	// dirty marks the history as needing a re-sort before the next
	// snapshot.
	dirty   bool
	history []float64 // completed total service (gpu-seconds), sorted
}

// NewGittins returns the policy with the default quantum ladder and a
// private completion log fed through Observe.
func NewGittins() *Gittins { return &Gittins{} }

// NewGittinsFromEstimator returns the policy reading its empirical
// distribution from the shared predictor history (profile.Online) rather
// than a private oracle-fed log.
func NewGittinsFromEstimator(src HistorySource) *Gittins {
	return &Gittins{Source: src}
}

// Name implements Policy.
func (g *Gittins) Name() string {
	if g.Source != nil {
		return "gittins-pred"
	}
	return "gittins"
}

// Preemptive implements Policy.
func (g *Gittins) Preemptive() bool { return true }

// Observe records the total service demand of a completed job. The
// simulator calls it on every completion so the empirical prior sharpens
// as the trace plays out. With a Source attached the call is a no-op:
// the predictor already holds the completion.
func (g *Gittins) Observe(totalService time.Duration) {
	if g.Source != nil {
		return
	}
	g.mu.Lock()
	g.history = append(g.history, totalService.Seconds())
	g.dirty = true
	g.mu.Unlock()
}

func (g *Gittins) quanta() []time.Duration {
	if len(g.Quanta) > 0 {
		return g.Quanta
	}
	return []time.Duration{
		time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour,
		4 * time.Hour, 12 * time.Hour, 24 * time.Hour,
	}
}

// snapshotHistory returns the sorted distribution Plan should rank
// against: a copy of the private log (so concurrent Observe appends
// cannot mutate a plan in flight), or the predictor's own snapshot.
func (g *Gittins) snapshotHistory() []float64 {
	if g.Source != nil {
		return g.Source.ServiceHistory()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dirty {
		sort.Float64s(g.history)
		g.dirty = false
	}
	return append([]float64(nil), g.history...)
}

// gittinsIndex computes the Gittins index for attained service a
// (gpu-seconds) against a sorted demand history. With no history, every
// job gets the same index (degenerates to FIFO order via the sort
// tie-break) — matching a cold-started Tiresias.
func gittinsIndex(history []float64, quanta []time.Duration, a float64) float64 {
	n := len(history)
	if n == 0 {
		return 0
	}
	// survivors: jobs with demand > a.
	lo := sort.SearchFloat64s(history, a)
	survivors := history[lo:]
	if len(survivors) == 0 {
		// Beyond every observed demand: assume heavy tail, lowest index.
		return 0
	}
	best := 0.0
	for _, q := range quanta {
		dq := q.Seconds()
		finished := 0
		expected := 0.0
		for _, d := range survivors {
			if d <= a+dq {
				finished++
				expected += d - a
			} else {
				expected += dq
			}
		}
		p := float64(finished) / float64(len(survivors))
		if expected <= 0 {
			continue
		}
		if r := p / (expected / float64(len(survivors))); r > best {
			best = r
		}
	}
	return best
}

// Plan implements Policy: exclusive units ordered by descending Gittins
// index on 2D attained service, ranked against one immutable history
// snapshot per round.
func (g *Gittins) Plan(now time.Duration, jobs []*job.Job, capacity int) []Unit {
	history := g.snapshotHistory()
	quanta := g.quanta()
	ordered := append([]*job.Job{}, jobs...)
	sortJobs(ordered, func(j *job.Job) float64 {
		a := j.Attained.Seconds() * float64(j.GPUs)
		return -gittinsIndex(history, quanta, a) // highest index first
	})
	return exclusiveUnits(ordered)
}
