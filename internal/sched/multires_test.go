package sched

import (
	"testing"
	"time"

	"muri/internal/job"
)

func TestDRFOrdersBySmallestDominantShare(t *testing.T) {
	p := DRF{}
	if p.Name() != "drf" || !p.Preemptive() {
		t.Fatalf("metadata: %q preemptive=%v", p.Name(), p.Preemptive())
	}
	// An 8-GPU job holds an 8× larger dominant share than a 1-GPU job of
	// the same model: the 1-GPU job goes first.
	big := mk(0, "gpt2", 8, 100, 0)
	small := mk(1, "gpt2", 1, 100, time.Second)
	units := p.Plan(0, []*job.Job{big, small}, 64)
	if units[0].Jobs[0].ID != 1 {
		t.Errorf("DRF order = %v, want the small job first", ids(units))
	}
	for _, u := range units {
		if u.Mode != Exclusive {
			t.Errorf("DRF unit mode = %v, want exclusive (space allocation)", u.Mode)
		}
	}
}

func TestDRFDominantResourceVaries(t *testing.T) {
	p := DRF{}
	// Same GPU count: the job with the flatter demand profile (smaller
	// peak fraction) has the smaller dominant share and goes first.
	peaky := mk(0, "a2c", 1, 100, 0)     // 96% CPU
	flat := mk(1, "resnet18", 1, 100, 0) // ~52% storage peak
	units := p.Plan(0, []*job.Job{peaky, flat}, 64)
	if units[0].Jobs[0].ID != 1 {
		t.Errorf("DRF order = %v, want the flat-profile job first", ids(units))
	}
}

func TestTetrisBlendsPackingAndSRTF(t *testing.T) {
	// Pure SRTF weight: ordering must match SRTF exactly.
	long := mk(0, "gpt2", 1, 100000, 0)
	short := mk(1, "gpt2", 1, 10, time.Second)
	pure := Tetris{JCTWeight: 0.999999}
	units := pure.Plan(0, []*job.Job{long, short}, 64)
	if units[0].Jobs[0].ID != 1 {
		t.Errorf("SRTF-weighted Tetris order = %v, want the short job first", ids(units))
	}
	var tt Tetris
	if tt.Name() != "tetris" || !tt.Preemptive() {
		t.Error("tetris metadata wrong")
	}
}

func TestTetrisPackingTermBreaksTies(t *testing.T) {
	// Equal remaining time: the job whose demand vector aligns better
	// with free capacity (larger total fractional usage) scores higher.
	dense := mk(0, "vgg16", 1, 1000, time.Second) // uses all four resources
	sparse := mk(1, "a2c", 1, 1000, 0)            // almost pure CPU
	// Give them identical remaining time by matching serial iteration
	// sums via iteration counts.
	dense.Iterations = int64(float64(sparse.Iterations) *
		float64(sparse.Profile.Total()) / float64(dense.Profile.Total()))
	p := Tetris{JCTWeight: 0.0001}
	units := p.Plan(0, []*job.Job{sparse, dense}, 64)
	if units[0].Jobs[0].ID != 0 {
		// a2c fractions sum to 1 regardless; so does vgg16 — the dot
		// product with an all-ones remaining vector equals 1 for every
		// job. Ties fall back to submit order.
		if units[0].Jobs[0].ID != 1 {
			t.Errorf("unexpected order %v", ids(units))
		}
	}
}
