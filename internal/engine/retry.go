package engine

import "time"

// RetryPolicy governs how faulted jobs are retried: an exponential
// backoff between requeues and a bounded fault budget after which a job
// is dead-lettered instead of retried.
type RetryPolicy struct {
	// BackoffBase is the requeue delay after a job's first fault; each
	// subsequent fault doubles it up to BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Budget is how many faults a job may accumulate before it is parked
	// in the dead-letter state instead of requeued. Negative means
	// unlimited retries (the simulator's failure model never parks jobs).
	Budget int
}

// Backoff returns the requeue delay for a job's attempt-th fault: the
// base doubled per fault up to the cap, plus up to 25% jitter derived
// deterministically from (job, attempt) so retry storms decorrelate
// without nondeterministic tests.
func (r RetryPolicy) Backoff(jobID int64, attempt int) time.Duration {
	d := r.BackoffBase
	for i := 1; i < attempt && d < r.BackoffMax; i++ {
		d *= 2
	}
	if d > r.BackoffMax {
		d = r.BackoffMax
	}
	h := uint64(jobID)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return d + time.Duration(float64(d)*0.25*float64(h%1024)/1024)
}

// Exhausted reports whether faults many recorded faults exceed the
// budget.
func (r RetryPolicy) Exhausted(faults int) bool {
	return r.Budget >= 0 && faults > r.Budget
}
