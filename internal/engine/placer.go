package engine

import "muri/internal/sched"

// Placer abstracts where units physically land. The simulator's placer
// allocates GPU slots on the modeled cluster (best-fit single machine,
// whole machines for multi-machine units); the daemon's placer best-fits
// units onto registered executors and sends the Launch RPC. The engine
// only ever asks three questions: how much is free, can this unit be
// placed now, and (preemptive replace-all rounds only) release
// everything so the round can re-place from scratch.
type Placer interface {
	// Free returns the currently unallocated GPU capacity.
	Free() int
	// Place tries to place u. The returned handle is opaque to the engine
	// and is passed back to the driver on the unit's Placement (the
	// simulator stores a cluster.Alloc, the daemon a group ID). ok=false
	// means the unit does not fit right now (fragmentation, send failure)
	// and is skipped this round.
	Place(key string, u sched.Unit) (handle any, ok bool)
	// Reset releases every allocation. Called only at the start of a
	// preemptive ReplaceAll round, before the admission sweep reads Free.
	Reset()
}

// Current describes one unit that is running as a round begins. The
// engine keys it by UnitKey(Spec); Handle is the driver's own identifier
// for the unit and is passed back verbatim on kills.
type Current struct {
	// Spec is the unit's composition as the driver currently sees it.
	Spec sched.Unit
	// Handle identifies the unit to the driver (simulator *unit, daemon
	// group ID).
	Handle any
}
