// Package engine is the shared scheduling decision core behind both the
// trace-driven simulator (internal/sim) and the live daemon
// (internal/server). The paper validates Muri by running the same
// policies through a testbed prototype and a simulator with <3%
// divergence (§6); this package makes that structural: one queue and
// lifecycle state machine, one unit canonicalization, one admission
// sweep with anti-starvation, one preemption reconciliation, and one
// fault/retry/backoff path. The drivers stay thin — the simulator feeds
// virtual-clock events, the daemon feeds wall-clock/network events, and
// both consume the engine's decision stream (launch, kill, requeue,
// deadletter) instead of deciding inline. A parity harness replays one
// scripted event sequence through both drivers and asserts the streams
// are byte-identical.
package engine

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/telemetry"
	"muri/internal/workload"
)

// Style selects how a preemptive round reconciles the running set.
// Non-preemptive rounds behave identically under both styles: running
// units are untouchable and only new units are admitted into free
// capacity.
type Style int

const (
	// ReplaceAll releases every allocation and re-places the full
	// admitted set each round (the simulator: placement is cheap and
	// bit-exact virtual state carries across). Units re-placed under an
	// unchanged key are continuations, not restarts.
	ReplaceAll Style = iota
	// Differential keeps running units whose key is re-admitted, kills
	// the rest to reclaim capacity, and places only the new keys (the
	// daemon: a launch is a real RPC, so same-key units must keep their
	// processes).
	Differential
)

// Config parameterizes an engine.
type Config struct {
	// Policy decides grouping and ordering. Required.
	Policy sched.Policy
	// Style is the preemption reconciliation style.
	Style Style
	// StarvationPatience is how many scheduling rounds a unit may be
	// bypassed (skipped for capacity while a lower-priority unit was
	// admitted) before it is boosted to the front of the admission order.
	// Zero uses the default of 5 rounds.
	StarvationPatience int
	// Retry governs fault requeue backoff and the dead-letter budget.
	// The zero value dead-letters on the first fault with no backoff;
	// drivers set it explicitly (Budget -1 for unlimited retries).
	Retry RetryPolicy
	// Observer, when non-nil, receives every decision as it is issued.
	Observer func(Decision)
	// Tracer, when non-nil, records scheduler-round and decision events
	// into the shared telemetry tracer. Both drivers instrument the
	// engine once here instead of each shadowing the decision stream.
	// Nil (the default) records nothing and perturbs nothing.
	Tracer *telemetry.Tracer
	// Now supplies the driver's clock for trace timestamps (virtual time
	// for the simulator, virtualized wall time for the daemon). Only
	// consulted while Tracer is non-nil; when nil, decisions issued
	// outside a round reuse the last round's timestamp.
	Now func() time.Duration
	// Estimator, when non-nil, receives every completion the driver
	// reports through NoteCompletion, replacing the oracle-profile
	// assumption with learned beliefs. Nil (the default) keeps the
	// completion path inert and every fixed-seed run bit-identical.
	Estimator profile.Estimator
	// ReprofileThreshold is the relative deviation between a completion's
	// measured iteration total and the estimator's belief beyond which
	// the belief is discarded and re-seeded from the measurement (the
	// engine-level re-profiling trigger). Zero uses the default of 0.25.
	ReprofileThreshold float64
	// Provenance, when non-nil, receives structured cause annotations
	// from each decision site: wait-cause transitions for jobs left
	// unplaced (capacity vs. ranked-behind, with comparator keys and
	// blocker identities) and starvation-boost notes. Decisions also gain
	// a Cause annotation (grouping efficiency, preemptor identity,
	// retry-budget state). Nil — the default — emits nothing, computes
	// nothing, and keeps every fixed-seed stream bit-identical.
	Provenance func(CauseEvent)
}

// Wait causes the engine itself classifies. The explain layer unions
// these with the driver-level causes (ingest-queue, fault-backoff,
// adoption-freeze, service) into the full attribution taxonomy.
const (
	// CauseCapacity: the job's unit fits no free capacity — the cluster
	// is too small, has no executors, or is fragmented.
	CauseCapacity = "capacity"
	// CauseRankedBehind: capacity exists but higher-priority work
	// consumed it first this round.
	CauseRankedBehind = "ranked-behind"
	// CauseStarvationBoost annotates the round a bypassed unit jumped
	// the admission order (a note, not a span transition).
	CauseStarvationBoost = "starvation-boost"
)

// CauseEvent is one provenance annotation from a decision site. Note
// events annotate a job's timeline without opening a new wait span.
type CauseEvent struct {
	Job    job.ID
	Cause  string
	Detail string
	Note   bool
}

// PriorityKeyer is implemented by policies that can expose the
// comparator key ranking a job (sched's priority policies and Muri);
// the engine uses it to put concrete key values into ranked-behind
// provenance details. Policies without it still get blocker identities.
type PriorityKeyer interface {
	PriorityKey(now time.Duration, j *job.Job) float64
}

// DecisionSink is implemented by policies that want the decision stream
// fed back to them: every emitted decision (launch, kill, requeue,
// deadletter) describes a change to the candidate set or the running
// layout, which is exactly what incremental planners track as dirty
// state (sched.Muri forwards the marks to its core.PlanState).
type DecisionSink interface {
	NoteDecisions(n int)
}

// PlanStatsProvider is implemented by policies that expose incremental/
// sharded grouping counters (sched.Muri); the engine uses it to emit
// per-shard trace rows alongside the round instants.
type PlanStatsProvider interface {
	PlanStats() metrics.ShardStats
}

// Record is the engine's lifecycle state for one tracked job.
type Record struct {
	// Phase is the job's current lifecycle phase.
	Phase Phase
	// Faults counts recorded faults (retry-budget spend).
	Faults int
}

// Engine owns the scheduling decision path. It is not safe for
// concurrent use; the daemon drives it under its own mutex and the
// simulator is single-threaded.
type Engine struct {
	cfg Config
	// prevKeys remembers each running job's unit key from the previous
	// round; an unchanged key means the job continues without a restart.
	prevKeys map[job.ID]string
	// bypassed counts consecutive rounds a job's unit was skipped for
	// capacity while a lower-priority unit was admitted.
	bypassed map[job.ID]int
	// records holds lifecycle state for tracked jobs. The simulator does
	// not track jobs (it keeps job.State); the daemon tracks every
	// submission.
	records map[job.ID]*Record
	stats   metrics.EngineStats
	seq     uint64
	// lastNow is the clock value of the most recent round, used to stamp
	// trace events issued between rounds when cfg.Now is unset.
	lastNow time.Duration
	// sink is the policy's decision feedback hook, resolved once at
	// construction (nil when the policy is not a DecisionSink).
	sink DecisionSink
	// seenScratch is the queue-rebuild dedup set, reused across rounds so
	// a steady-state fleet stops paying per-round map growth.
	seenScratch map[job.ID]bool
	// lastWaitCause gates provenance emission to cause transitions: one
	// record when a waiting job's classification changes, not one per
	// round. Entries clear when the job places, requeues, faults, or
	// completes. Only populated while cfg.Provenance is set.
	lastWaitCause map[job.ID]string
	// keyer is cfg.Policy as a PriorityKeyer, resolved once (nil when the
	// policy does not expose comparator keys).
	keyer PriorityKeyer
}

// New creates an engine. It panics without a policy.
func New(cfg Config) *Engine {
	if cfg.Policy == nil {
		panic("engine: config needs a policy")
	}
	if cfg.StarvationPatience <= 0 {
		cfg.StarvationPatience = 5
	}
	if cfg.ReprofileThreshold <= 0 {
		cfg.ReprofileThreshold = 0.25
	}
	sink, _ := cfg.Policy.(DecisionSink)
	keyer, _ := cfg.Policy.(PriorityKeyer)
	return &Engine{
		cfg:           cfg,
		prevKeys:      make(map[job.ID]string),
		bypassed:      make(map[job.ID]int),
		records:       make(map[job.ID]*Record),
		sink:          sink,
		keyer:         keyer,
		lastWaitCause: make(map[job.ID]string),
	}
}

// emitCause publishes one provenance annotation (no-op without a hook).
func (e *Engine) emitCause(ev CauseEvent) {
	if e.cfg.Provenance != nil {
		e.cfg.Provenance(ev)
	}
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() metrics.EngineStats { return e.stats }

// reseeder is the optional estimator re-profiling hook (profile.Online
// implements it); estimators without it just observe the completion.
type reseeder interface {
	Reseed(model string, measured workload.StageTimes, service time.Duration)
}

// NoteCompletion feeds one job completion to the configured estimator:
// the measured per-iteration stage durations and the job's total 2D
// service demand. When the measurement deviates from the current belief
// beyond ReprofileThreshold, the belief is discarded and re-seeded from
// the measurement (the re-profiling trigger); otherwise the measurement
// folds into the running estimate. Both drivers call this — the
// simulator at virtual completions, the daemon at real ones and during
// WAL replay — so learned state reconstructs identically on recovery.
// A nil estimator makes the call a no-op.
func (e *Engine) NoteCompletion(j *job.Job, measured workload.StageTimes, service time.Duration) (reprofiled bool) {
	est := e.cfg.Estimator
	if est == nil {
		return false
	}
	if b, ok := est.EstimateFor(j); ok && b.Samples > 0 {
		bt, mt := b.Stages.Total().Seconds(), measured.Total().Seconds()
		if mt > 0 && bt > 0 && math.Abs(bt-mt)/mt > e.cfg.ReprofileThreshold {
			if r, ok := est.(reseeder); ok {
				r.Reseed(j.Model.Name, measured, service)
				e.stats.Reprofiles++
				return true
			}
		}
	}
	est.ObserveCompletion(j.Model.Name, measured, service)
	return false
}

// emit stamps and publishes one decision. Every decision also reaches
// the policy's DecisionSink (when it has one): launches, kills,
// requeues, and deadletters are exactly the events that invalidate an
// incremental planner's cached per-bucket state.
func (e *Engine) emit(d Decision) Decision {
	e.seq++
	d.Seq = e.seq
	e.stats.Decisions++
	if e.cfg.Observer != nil {
		e.cfg.Observer(d)
	}
	if e.sink != nil {
		e.sink.NoteDecisions(1)
	}
	e.traceDecision(d)
	return d
}

// traceNow returns the timestamp trace events should carry.
func (e *Engine) traceNow() time.Duration {
	if e.cfg.Now != nil {
		return e.cfg.Now()
	}
	return e.lastNow
}

// traceDecision records one decision as an instant event on the
// scheduler's per-action decision rows.
func (e *Engine) traceDecision(d Decision) {
	tr := e.cfg.Tracer
	if tr == nil {
		return
	}
	pid := tr.Process("scheduler")
	tid := tr.Thread(pid, string(d.Action))
	args := map[string]any{"seq": d.Seq}
	if d.Key != "" {
		args["key"] = d.Key
	}
	if len(d.Jobs) > 0 {
		ids := make([]int64, len(d.Jobs))
		for i, id := range d.Jobs {
			ids[i] = int64(id)
		}
		args["jobs"] = ids
	}
	if d.Reason != "" {
		args["reason"] = string(d.Reason)
	}
	tr.Instant(pid, tid, d.String(), "decision", e.traceNow(), args)
}

// traceRound records one Reconcile round as an instant event carrying
// the round's headline numbers.
func (e *Engine) traceRound(in Input, out *Outcome) {
	tr := e.cfg.Tracer
	if tr == nil {
		return
	}
	pid := tr.Process("scheduler")
	tid := tr.Thread(pid, "rounds")
	tr.Instant(pid, tid, "round "+strconv.Itoa(e.stats.Rounds), "round", in.Now, map[string]any{
		"candidates": len(in.Candidates),
		"capacity":   in.Capacity,
		"planned":    len(out.Planned),
		"placed":     len(out.Placements),
		"kept":       len(out.Kept),
		"killed":     len(out.Killed),
		"queue":      e.stats.QueueDepth,
	})
	e.traceShards(pid, in.Now)
}

// traceShards renders the policy's incremental/sharded grouping counters:
// one row per shard index with its cumulative task count, plus a summary
// row with the sweep-reuse breakdown.
func (e *Engine) traceShards(pid int, now time.Duration) {
	prov, ok := e.cfg.Policy.(PlanStatsProvider)
	if !ok {
		return
	}
	tr := e.cfg.Tracer
	st := prov.PlanStats()
	if st.PlanRounds == 0 {
		return
	}
	for s, n := range st.TasksByShard {
		tid := tr.Thread(pid, "shard-"+strconv.Itoa(s))
		tr.Instant(pid, tid, "tasks "+strconv.FormatUint(n, 10), "shard", now, map[string]any{
			"shard": s,
			"tasks": n,
		})
	}
	tid := tr.Thread(pid, "plan")
	tr.Instant(pid, tid, "plan "+strconv.FormatUint(st.PlanRounds, 10), "shard", now, map[string]any{
		"replay":     st.ReplaySweeps,
		"fixpoint":   st.FixpointSweeps,
		"fresh":      st.FreshSweeps,
		"reuse":      st.ReuseRatio(),
		"dirtyMarks": st.DirtyMarks,
		"pairHits":   st.PairHits,
	})
}

// Track registers a job in the lifecycle state machine at the given
// phase (the daemon: profiling or pending at submission).
func (e *Engine) Track(id job.ID, p Phase) {
	e.records[id] = &Record{Phase: p}
}

// PhaseOf returns a tracked job's phase ("" when untracked).
func (e *Engine) PhaseOf(id job.ID) Phase {
	if r := e.records[id]; r != nil {
		return r.Phase
	}
	return ""
}

// FaultsOf returns a tracked job's recorded fault count.
func (e *Engine) FaultsOf(id job.ID) int {
	if r := e.records[id]; r != nil {
		return r.Faults
	}
	return 0
}

// SetPhase applies a lifecycle transition if the state machine permits
// it, reporting whether it was applied. The transition table doubles as
// the guard the daemon historically wrote by hand (e.g. a completion
// for an already-done job is a no-op).
func (e *Engine) SetPhase(id job.ID, to Phase) bool {
	r := e.records[id]
	if r == nil || !r.Phase.CanTransition(to) {
		return false
	}
	r.Phase = to
	return true
}

// markRunning moves a tracked job to running at placement time.
func (e *Engine) markRunning(id job.ID) {
	if r := e.records[id]; r != nil && r.Phase.CanTransition(PhaseRunning) {
		r.Phase = PhaseRunning
	}
}

// Requeue records a job pushed back to the queue through no fault of its
// own (machine crash, evicted executor): the placement memory is
// forgotten — so the next admission charges a full restart even if the
// unit reforms identically — but no retry budget is spent. Tracked jobs
// move running → pending.
func (e *Engine) Requeue(id job.ID, reason Reason) Decision {
	return e.RequeueWithCause(id, reason, "")
}

// RequeueWithCause is Requeue with a provenance annotation supplied by
// the driver (e.g. the identity of the lost machine). The cause rides
// the decision only while provenance is enabled.
func (e *Engine) RequeueWithCause(id job.ID, reason Reason, cause string) Decision {
	delete(e.prevKeys, id)
	delete(e.lastWaitCause, id)
	if r := e.records[id]; r != nil && r.Phase == PhaseRunning {
		r.Phase = PhasePending
	}
	e.stats.Requeues++
	d := Decision{Action: ActRequeue, Jobs: []job.ID{id}, Reason: reason}
	if e.cfg.Provenance != nil {
		d.Cause = cause
	}
	return e.emit(d)
}

// RecordFault records a job-level fault: retry budget is spent and the
// job is either requeued (with the returned backoff) or dead-lettered.
// The job's progress is untouched — the next launch resumes from its
// checkpoint. Untracked jobs are tracked on first fault so the budget
// accumulates.
func (e *Engine) RecordFault(id job.ID) (backoff time.Duration, deadlettered bool) {
	r := e.records[id]
	if r == nil {
		r = &Record{}
		e.records[id] = r
	}
	r.Faults++
	delete(e.prevKeys, id)
	delete(e.lastWaitCause, id)
	if e.cfg.Retry.Exhausted(r.Faults) {
		r.Phase = PhaseDeadletter
		e.stats.DeadLettered++
		d := Decision{Action: ActDeadletter, Jobs: []job.ID{id}}
		if e.cfg.Provenance != nil {
			d.Cause = "retry budget exhausted after " + strconv.Itoa(r.Faults) + " faults"
		}
		e.emit(d)
		return 0, true
	}
	r.Phase = PhasePending
	e.stats.Requeues++
	d := Decision{Action: ActRequeue, Jobs: []job.ID{id}, Reason: ReasonFault}
	if e.cfg.Provenance != nil {
		budget := "unlimited"
		if e.cfg.Retry.Budget >= 0 {
			budget = strconv.Itoa(e.cfg.Retry.Budget)
		}
		d.Cause = "fault " + strconv.Itoa(r.Faults) + " of budget " + budget
	}
	e.emit(d)
	return e.cfg.Retry.Backoff(int64(id), r.Faults), false
}

// Input is everything one scheduling round needs from the driver.
type Input struct {
	// Now is the driver's clock (virtual for the simulator, virtualized
	// wall time for the daemon).
	Now time.Duration
	// Candidates are the jobs the policy may plan over: pending jobs,
	// plus running jobs for preemptive policies. Jobs held back (fault
	// backoff) are simply omitted.
	Candidates []*job.Job
	// Pending is the driver's pending queue; Reconcile returns its
	// rebuilt successor in Outcome.Pending. Nil when the driver keeps no
	// explicit queue (the daemon derives it from phases).
	Pending []*job.Job
	// Capacity is the total in-service GPU capacity, passed to the
	// policy.
	Capacity int
	// Current lists the units running as the round begins, in the
	// driver's stable order.
	Current []Current
	// Placer places admitted units. Required.
	Placer Placer
	// Kill executes a preemption under the Differential style, freeing
	// the unit's capacity before new placements. Ignored by ReplaceAll
	// (Placer.Reset already released everything).
	Kill func(Current)
}

// Member is one job of a placement, with its restart classification
// relative to the previous round.
type Member struct {
	Job *job.Job
	// Fresh means the job obtained resources for the first time.
	Fresh bool
	// Restart means the job resumes after preemption or its unit's
	// composition changed — either way the worker process restarts.
	Restart bool
	// Continues means the job keeps running in the same unit as last
	// round: fractional progress carries over and no restart is charged.
	Continues bool
}

// Placement is one unit the placer accepted this round.
type Placement struct {
	// Key is the unit's canonical key.
	Key string
	// Spec is the placed unit.
	Spec sched.Unit
	// Handle is the placer's opaque placement handle.
	Handle any
	// Members classifies each member, in Spec.Jobs order.
	Members []Member
	// Restart reports whether any member restarted (the driver charges
	// restart overhead once per unit).
	Restart bool
}

// Outcome is the result of one scheduling round.
type Outcome struct {
	// Planned is the policy's raw unit list, before admission.
	Planned []sched.Unit
	// Placements are the units placed this round, in placement order
	// (descending GPUs).
	Placements []Placement
	// Kept are the current units that keep running untouched.
	Kept []Current
	// Killed are the current units preempted this round (Differential:
	// executed through Input.Kill; ReplaceAll: their re-placement failed
	// or was not re-admitted).
	Killed []Current
	// Pending is the rebuilt pending queue (Input.Pending minus placed
	// jobs, plus preempted-but-unplaced candidates, sorted by submit
	// time for preemptive policies).
	Pending []*job.Job
	// Decisions is the round's decision stream: kills in current order,
	// then launches in placement order. Same-key re-placements are
	// continuations and appear in neither.
	Decisions []Decision
}

// Reconcile runs one scheduling round: invoke the policy, order units
// with anti-starvation, admit into capacity, reconcile preemptions,
// place, and rebuild the queue and placement memory. The admission and
// placement path is the simulator's historical loop moved here verbatim,
// so fixed-seed simulations stay bit-identical.
func (e *Engine) Reconcile(in Input) Outcome {
	e.stats.Rounds++
	e.lastNow = in.Now
	preempt := e.cfg.Policy.Preemptive()
	units := e.cfg.Policy.Plan(in.Now, in.Candidates, in.Capacity)
	out := Outcome{Planned: units}

	curKeys := make([]string, len(in.Current))
	currentKeys := make(map[string]bool, len(in.Current))
	for i := range in.Current {
		curKeys[i] = UnitKey(in.Current[i].Spec)
		currentKeys[curKeys[i]] = true
	}

	// Capacity budget and already-claimed jobs. Preemptive rounds
	// reconsider everything: ReplaceAll physically releases all
	// allocations, Differential counts running units as reclaimable.
	// Non-preemptive rounds keep running units and their members off the
	// table.
	placedJobs := make(map[job.ID]bool)
	var free int
	switch {
	case preempt && e.cfg.Style == ReplaceAll:
		in.Placer.Reset()
		free = in.Placer.Free()
	case preempt:
		free = in.Placer.Free()
		for _, c := range in.Current {
			free += c.Spec.GPUs
		}
	default:
		free = in.Placer.Free()
		for _, c := range in.Current {
			for _, j := range c.Spec.Jobs {
				placedJobs[j.ID] = true
			}
		}
	}

	// Anti-starvation: units whose members have been bypassed too many
	// rounds jump to the front of the admission order (stable within each
	// class), so a large multi-GPU unit cannot be blocked forever by a
	// stream of small higher-priority units.
	starving := func(spec sched.Unit) bool {
		for _, j := range spec.Jobs {
			if e.bypassed[j.ID] >= e.cfg.StarvationPatience {
				return true
			}
		}
		return false
	}
	// Classify each unit once; when nothing is starving (the common round)
	// the planner's order is already the admission order.
	orderedUnits := units
	if len(e.bypassed) > 0 {
		var starv []bool
		nStarv := 0
		for i, spec := range units {
			if starving(spec) {
				if starv == nil {
					starv = make([]bool, len(units))
				}
				starv[i] = true
				nStarv++
			}
		}
		if nStarv > 0 {
			ordered := make([]sched.Unit, 0, len(units))
			for i, spec := range units {
				if starv[i] {
					ordered = append(ordered, spec)
					if e.cfg.Provenance != nil {
						for _, j := range spec.Jobs {
							if e.bypassed[j.ID] >= e.cfg.StarvationPatience {
								e.emitCause(CauseEvent{Job: j.ID, Cause: CauseStarvationBoost, Note: true,
									Detail: "boosted to the front after " + strconv.Itoa(e.bypassed[j.ID]) + " bypassed rounds"})
							}
						}
					}
				}
			}
			for i, spec := range units {
				if !starv[i] {
					ordered = append(ordered, spec)
				}
			}
			orderedUnits = ordered
		}
	}

	// Admission: walk in priority order, admitting units that fit in the
	// remaining capacity. Units skipped for capacity while a later unit
	// is admitted accumulate a bypass count.
	admitted := make([]sched.Unit, 0, len(orderedUnits))
	skipped := make([]sched.Unit, 0, len(orderedUnits))
	bumped := make(map[job.ID]bool)
	claimed := make(map[job.ID]bool, len(placedJobs)+len(orderedUnits))
	for id := range placedJobs {
		claimed[id] = true
	}
	for _, spec := range orderedUnits {
		conflict := false
		for _, j := range spec.Jobs {
			if claimed[j.ID] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		if spec.GPUs > free {
			skipped = append(skipped, spec)
			continue
		}
		free -= spec.GPUs
		admitted = append(admitted, spec)
		for _, j := range spec.Jobs {
			claimed[j.ID] = true
		}
		for _, sk := range skipped {
			for _, j := range sk.Jobs {
				if !bumped[j.ID] {
					bumped[j.ID] = true
					e.bypassed[j.ID]++
				}
			}
		}
		skipped = skipped[:0]
	}

	// Preemption reconciliation. Differential keeps re-admitted keys,
	// kills the rest (through the driver, so capacity frees before
	// placement), and places only the new keys. ReplaceAll re-places the
	// whole admitted set; kills fall out of the key diff afterwards.
	toPlace := admitted
	if preempt && e.cfg.Style == Differential {
		admittedKeys := make(map[string]bool, len(admitted))
		for _, spec := range admitted {
			admittedKeys[UnitKey(spec)] = true
		}
		keptKeys := make(map[string]bool)
		for i, c := range in.Current {
			if admittedKeys[curKeys[i]] {
				out.Kept = append(out.Kept, c)
				keptKeys[curKeys[i]] = true
				continue
			}
			out.Killed = append(out.Killed, c)
			if in.Kill != nil {
				in.Kill(c)
			}
		}
		for _, c := range out.Kept {
			for _, j := range c.Spec.Jobs {
				placedJobs[j.ID] = true
			}
		}
		toPlace = toPlace[:0]
		for _, spec := range admitted {
			if !keptKeys[UnitKey(spec)] {
				toPlace = append(toPlace, spec)
			}
		}
	} else if !preempt {
		out.Kept = in.Current
	}

	// Placement: descending GPU order so large units claim whole machines
	// before small units fragment them (§5). Member classification uses
	// the previous round's placement memory.
	sort.SliceStable(toPlace, func(i, k int) bool { return toPlace[i].GPUs > toPlace[k].GPUs })
	for _, spec := range toPlace {
		key := UnitKey(spec)
		handle, ok := in.Placer.Place(key, spec)
		if !ok {
			continue // fragmentation despite descending order; rare
		}
		p := Placement{Key: key, Spec: spec, Handle: handle, Members: make([]Member, len(spec.Jobs))}
		for i, j := range spec.Jobs {
			prev, wasRunning := e.prevKeys[j.ID]
			m := Member{Job: j}
			if j.StartedAt < 0 {
				m.Fresh = true
			} else if !wasRunning || prev != key {
				m.Restart = true
				p.Restart = true
			}
			m.Continues = wasRunning && prev == key
			p.Members[i] = m
		}
		for _, j := range spec.Jobs {
			j.State = job.Running
			placedJobs[j.ID] = true
			e.markRunning(j.ID)
		}
		out.Placements = append(out.Placements, p)
	}

	// ReplaceAll kill diff: current units whose key did not survive into
	// the placed set were preempted.
	if preempt && e.cfg.Style == ReplaceAll {
		placedKeys := make(map[string]bool, len(out.Placements))
		for _, p := range out.Placements {
			placedKeys[p.Key] = true
		}
		for i, c := range in.Current {
			if !placedKeys[curKeys[i]] {
				out.Killed = append(out.Killed, c)
			}
		}
	}

	// Decision stream: kills first (current order), then launches
	// (placement order). Same-key re-placements are continuations and
	// emit nothing.
	var killCause string
	if e.cfg.Provenance != nil && len(out.Killed) > 0 {
		killCause = e.preemptorDetail(&out, currentKeys)
	}
	for _, c := range out.Killed {
		e.stats.Preemptions++
		out.Decisions = append(out.Decisions,
			e.emit(Decision{Action: ActKill, Key: UnitKey(c.Spec), Jobs: memberIDs(c.Spec), Cause: killCause}))
	}
	for _, p := range out.Placements {
		if currentKeys[p.Key] {
			continue
		}
		e.stats.Launches++
		d := Decision{Action: ActLaunch, Key: p.Key, Jobs: memberIDs(p.Spec)}
		if e.cfg.Provenance != nil {
			d.Cause = launchDetail(p.Spec)
		}
		out.Decisions = append(out.Decisions, e.emit(d))
	}

	// Rebuild the pending queue and the placement memory.
	e.prevKeys = make(map[job.ID]string, len(placedJobs))
	newPending := make([]*job.Job, 0, len(in.Pending))
	for _, j := range in.Pending {
		if !placedJobs[j.ID] {
			j.State = job.Pending
			newPending = append(newPending, j)
		}
	}
	if preempt {
		// Preempted-but-not-replaced jobs rejoin the queue.
		if e.seenScratch == nil {
			e.seenScratch = make(map[job.ID]bool, len(newPending))
		} else {
			clear(e.seenScratch)
		}
		seen := e.seenScratch
		for _, j := range newPending {
			seen[j.ID] = true
		}
		for _, j := range in.Candidates {
			if !placedJobs[j.ID] && !seen[j.ID] && j.State != job.Done {
				j.State = job.Pending
				newPending = append(newPending, j)
				seen[j.ID] = true
			}
		}
		// The queue is usually already Submit-ordered (pending was sorted
		// last round and candidates arrive in submit order); a stable sort
		// of a sorted slice is the identity, so skipping it is exact.
		bySubmit := func(i, k int) bool {
			return newPending[i].Submit < newPending[k].Submit
		}
		if !sort.SliceIsSorted(newPending, bySubmit) {
			sort.SliceStable(newPending, bySubmit)
		}
	}
	out.Pending = newPending
	remember := func(spec sched.Unit) {
		key := UnitKey(spec)
		for _, j := range spec.Jobs {
			e.prevKeys[j.ID] = key
			delete(e.bypassed, j.ID)      // running resets starvation credit
			delete(e.lastWaitCause, j.ID) // next wait re-classifies from scratch
		}
	}
	for _, c := range out.Kept {
		remember(c.Spec)
	}
	for _, p := range out.Placements {
		remember(p.Spec)
	}

	depth := 0
	for _, j := range in.Candidates {
		if !placedJobs[j.ID] && j.State != job.Done {
			depth++
		}
	}
	e.stats.QueueDepth = depth
	if e.cfg.Provenance != nil {
		e.emitWaitCauses(in, orderedUnits, claimed, placedJobs, &out)
	}
	e.traceRound(in, &out)
	return out
}

// preemptorDetail names the work that displaced this round's kills: the
// members of the round's new launches, capped for readability.
func (e *Engine) preemptorDetail(out *Outcome, currentKeys map[string]bool) string {
	var ids []job.ID
	for _, p := range out.Placements {
		if currentKeys[p.Key] {
			continue
		}
		ids = append(ids, memberIDs(p.Spec)...)
	}
	if len(ids) == 0 {
		return "capacity reclaimed (no replacement launched)"
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	var b strings.Builder
	b.WriteString("preempted by job")
	if len(ids) > 1 {
		b.WriteByte('s')
	}
	b.WriteByte(' ')
	for i, id := range ids {
		if i == 4 {
			b.WriteString(" +" + strconv.Itoa(len(ids)-i) + " more")
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(id), 10))
	}
	return b.String()
}

// launchDetail annotates a launch with its grouping provenance: the
// accepted plan's Eq.-3 interleaving efficiency for interleaved units,
// the sharing degree for space-shared ones.
func launchDetail(spec sched.Unit) string {
	switch spec.Mode {
	case sched.Interleaved:
		return "interleaved x" + strconv.Itoa(len(spec.Jobs)) +
			" eff=" + strconv.FormatFloat(spec.Plan.Efficiency, 'g', 6, 64)
	case sched.SpaceShared:
		return "space-shared x" + strconv.Itoa(len(spec.Jobs))
	default:
		return "exclusive"
	}
}

// emitWaitCauses classifies every candidate left unplaced this round and
// emits a provenance event when its classification changed: capacity
// (cluster too small, empty, or fragmented) versus ranked-behind
// (higher-priority work consumed the capacity first), the latter with
// the comparator key values and blocker identities when the policy
// exposes them. Walk order follows the admission order, so emission is
// deterministic.
func (e *Engine) emitWaitCauses(in Input, orderedUnits []sched.Unit, claimed, placedJobs map[job.ID]bool, out *Outcome) {
	blockers := e.blockerDetail(in.Now, out)
	seen := make(map[job.ID]bool)
	for _, spec := range orderedUnits {
		for _, j := range spec.Jobs {
			if placedJobs[j.ID] || seen[j.ID] || j.State == job.Done {
				continue
			}
			seen[j.ID] = true
			var cause, detail string
			switch {
			case in.Capacity <= 0:
				cause, detail = CauseCapacity, "no capacity registered"
			case spec.GPUs > in.Capacity:
				cause = CauseCapacity
				detail = "needs " + strconv.Itoa(spec.GPUs) + " GPUs, cluster capacity " + strconv.Itoa(in.Capacity)
			case claimed[j.ID]:
				cause = CauseCapacity
				detail = "admitted but fragmented: no machine with " + strconv.Itoa(spec.GPUs) + " free GPUs"
			default:
				cause = CauseRankedBehind
				if e.keyer != nil {
					detail = "key=" + strconv.FormatFloat(e.keyer.PriorityKey(in.Now, j), 'g', 6, 64) + " " + blockers
				} else {
					detail = blockers
				}
			}
			if e.lastWaitCause[j.ID] != cause {
				e.lastWaitCause[j.ID] = cause
				e.emitCause(CauseEvent{Job: j.ID, Cause: cause, Detail: detail})
			}
		}
	}
}

// blockerDetail renders the round's highest-priority placed work (the
// jobs that consumed the capacity), with comparator keys when known.
func (e *Engine) blockerDetail(now time.Duration, out *Outcome) string {
	var b strings.Builder
	n := 0
	add := func(spec sched.Unit) {
		for _, j := range spec.Jobs {
			if n >= 3 {
				return
			}
			if n > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(int64(j.ID), 10))
			if e.keyer != nil {
				b.WriteString("(key=" + strconv.FormatFloat(e.keyer.PriorityKey(now, j), 'g', 6, 64) + ")")
			}
			n++
		}
	}
	for _, c := range out.Kept {
		add(c.Spec)
	}
	for _, p := range out.Placements {
		add(p.Spec)
	}
	if n == 0 {
		return "behind higher-priority work"
	}
	return "behind jobs " + b.String()
}
