package engine_test

import (
	"testing"
	"time"

	"muri/internal/engine"
	"muri/internal/job"
	"muri/internal/sched"
	"muri/internal/workload"
)

// scriptedPolicy lets a test dictate each round's plan exactly.
type scriptedPolicy struct {
	preempt bool
	plan    func(now time.Duration, jobs []*job.Job, capacity int) []sched.Unit
}

func (p scriptedPolicy) Name() string     { return "scripted" }
func (p scriptedPolicy) Preemptive() bool { return p.preempt }
func (p scriptedPolicy) Plan(now time.Duration, jobs []*job.Job, capacity int) []sched.Unit {
	return p.plan(now, jobs, capacity)
}

// fakePlacer is a counting placer over a fixed GPU budget.
type fakePlacer struct {
	capacity int
	free     int
	placed   []string
}

func newFakePlacer(capacity int) *fakePlacer {
	return &fakePlacer{capacity: capacity, free: capacity}
}

func (p *fakePlacer) Free() int { return p.free }

func (p *fakePlacer) Reset() {
	p.free = p.capacity
	p.placed = nil
}

func (p *fakePlacer) Place(key string, u sched.Unit) (any, bool) {
	if u.GPUs > p.free {
		return nil, false
	}
	p.free -= u.GPUs
	p.placed = append(p.placed, key)
	return key, true
}

func newJob(t *testing.T, id int64, gpus int) *job.Job {
	t.Helper()
	m, err := workload.ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	return job.New(job.ID(id), m, gpus, 1000, 0)
}

func decisionStrings(ds []engine.Decision) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReconcileAdmitsIntoCapacity(t *testing.T) {
	j1, j2 := newJob(t, 1, 1), newJob(t, 2, 1)
	u1 := sched.Unit{Jobs: []*job.Job{j1}, GPUs: 1, Mode: sched.Exclusive}
	u2 := sched.Unit{Jobs: []*job.Job{j2}, GPUs: 1, Mode: sched.Exclusive}
	e := engine.New(engine.Config{
		Policy: scriptedPolicy{plan: func(time.Duration, []*job.Job, int) []sched.Unit {
			return []sched.Unit{u1, u2}
		}},
	})
	out := e.Reconcile(engine.Input{
		Candidates: []*job.Job{j1, j2},
		Pending:    []*job.Job{j1, j2},
		Capacity:   1,
		Placer:     newFakePlacer(1),
	})
	want := []string{"launch exclusive:1"}
	if got := decisionStrings(out.Decisions); !equalStrings(got, want) {
		t.Errorf("decisions = %v, want %v", got, want)
	}
	if len(out.Pending) != 1 || out.Pending[0] != j2 {
		t.Errorf("pending = %v, want just job 2", out.Pending)
	}
	if st := e.Stats(); st.Rounds != 1 || st.Launches != 1 || st.QueueDepth != 1 {
		t.Errorf("stats = %+v, want 1 round, 1 launch, queue depth 1", st)
	}
}

func TestStarvationBoostPromotesBypassedUnit(t *testing.T) {
	jA, jB, jC := newJob(t, 1, 1), newJob(t, 2, 1), newJob(t, 3, 2)
	uA := sched.Unit{Jobs: []*job.Job{jA}, GPUs: 1, Mode: sched.Exclusive}
	uB := sched.Unit{Jobs: []*job.Job{jB}, GPUs: 1, Mode: sched.Exclusive}
	uC := sched.Unit{Jobs: []*job.Job{jC}, GPUs: 2, Mode: sched.Exclusive}
	e := engine.New(engine.Config{
		Style:              engine.ReplaceAll,
		StarvationPatience: 1,
		// C is planned ahead of B, so admitting B past it charges C one
		// bypass per round.
		Policy: scriptedPolicy{preempt: true, plan: func(time.Duration, []*job.Job, int) []sched.Unit {
			return []sched.Unit{uA, uC, uB}
		}},
	})
	placer := newFakePlacer(2)
	round := func(current []engine.Current) engine.Outcome {
		return e.Reconcile(engine.Input{
			Candidates: []*job.Job{jA, jB, jC},
			Capacity:   2,
			Current:    current,
			Placer:     placer,
		})
	}
	out := round(nil)
	want := []string{"launch exclusive:1", "launch exclusive:2"}
	if got := decisionStrings(out.Decisions); !equalStrings(got, want) {
		t.Fatalf("round 1 decisions = %v, want %v", got, want)
	}
	// Round 2: C has been bypassed past its patience, so it is boosted to
	// the front, takes the whole capacity, and A/B are preempted.
	current := []engine.Current{
		{Spec: uA, Handle: "a"},
		{Spec: uB, Handle: "b"},
	}
	out = round(current)
	want = []string{"kill exclusive:1", "kill exclusive:2", "launch exclusive:3"}
	if got := decisionStrings(out.Decisions); !equalStrings(got, want) {
		t.Errorf("round 2 decisions = %v, want %v", got, want)
	}
	if st := e.Stats(); st.Preemptions != 2 || st.Launches != 3 {
		t.Errorf("stats = %+v, want 2 preemptions, 3 launches", st)
	}
}

func TestDifferentialKeepsSameKeyKillsRest(t *testing.T) {
	j1, j2, j3 := newJob(t, 1, 1), newJob(t, 2, 1), newJob(t, 3, 1)
	uX := sched.Unit{Jobs: []*job.Job{j1}, GPUs: 1, Mode: sched.Exclusive}
	uY := sched.Unit{Jobs: []*job.Job{j2}, GPUs: 1, Mode: sched.Exclusive}
	uZ := sched.Unit{Jobs: []*job.Job{j3}, GPUs: 1, Mode: sched.Exclusive}
	e := engine.New(engine.Config{
		Style: engine.Differential,
		// The plan keeps X, drops Y, introduces Z.
		Policy: scriptedPolicy{preempt: true, plan: func(time.Duration, []*job.Job, int) []sched.Unit {
			return []sched.Unit{uX, uZ}
		}},
	})
	placer := newFakePlacer(2)
	placer.free = 0 // X and Y hold both GPUs as the round begins
	var killed []string
	out := e.Reconcile(engine.Input{
		Candidates: []*job.Job{j1, j2, j3},
		Capacity:   2,
		Current: []engine.Current{
			{Spec: uX, Handle: "x"},
			{Spec: uY, Handle: "y"},
		},
		Placer: placer,
		Kill: func(c engine.Current) {
			killed = append(killed, c.Handle.(string))
			placer.free += c.Spec.GPUs
		},
	})
	if len(killed) != 1 || killed[0] != "y" {
		t.Errorf("killed handles = %v, want [y]", killed)
	}
	if len(out.Kept) != 1 || out.Kept[0].Handle != "x" {
		t.Errorf("kept = %v, want the X unit", out.Kept)
	}
	want := []string{"kill exclusive:2", "launch exclusive:3"}
	if got := decisionStrings(out.Decisions); !equalStrings(got, want) {
		t.Errorf("decisions = %v, want %v", got, want)
	}
	if len(out.Pending) != 1 || out.Pending[0] != j2 {
		t.Errorf("pending = %v, want just the preempted job 2", out.Pending)
	}
}

func TestMemberRestartClassification(t *testing.T) {
	j1, j2 := newJob(t, 1, 1), newJob(t, 2, 1)
	solo := sched.Unit{Jobs: []*job.Job{j1}, GPUs: 1, Mode: sched.Exclusive}
	pair := sched.Unit{Jobs: []*job.Job{j1, j2}, GPUs: 1, Mode: sched.Interleaved}
	plans := [][]sched.Unit{{solo}, {solo}, {pair}}
	roundIdx := 0
	e := engine.New(engine.Config{
		Style: engine.ReplaceAll,
		Policy: scriptedPolicy{preempt: true, plan: func(time.Duration, []*job.Job, int) []sched.Unit {
			return plans[roundIdx]
		}},
	})
	placer := newFakePlacer(2)
	var current []engine.Current
	run := func() engine.Outcome {
		out := e.Reconcile(engine.Input{
			Candidates: []*job.Job{j1, j2},
			Capacity:   2,
			Current:    current,
			Placer:     placer,
		})
		current = current[:0]
		for _, p := range out.Placements {
			current = append(current, engine.Current{Spec: p.Spec, Handle: p.Key})
			// The driver stamps first-start times; the engine's Fresh flag
			// keys off StartedAt.
			for _, m := range p.Members {
				if m.Fresh {
					m.Job.StartedAt = 0
				}
			}
		}
		roundIdx++
		return out
	}

	out := run()
	if m := out.Placements[0].Members[0]; !m.Fresh || m.Restart || m.Continues {
		t.Errorf("round 1: job 1 = %+v, want fresh", m)
	}
	out = run()
	if m := out.Placements[0].Members[0]; !m.Continues || m.Fresh || m.Restart {
		t.Errorf("round 2: job 1 = %+v, want continues (same key)", m)
	}
	if out.Placements[0].Restart {
		t.Error("round 2: same-key re-placement charged a unit restart")
	}
	out = run()
	p := out.Placements[0]
	if m := p.Members[0]; !m.Restart || m.Continues {
		t.Errorf("round 3: job 1 = %+v, want restart (unit composition changed)", m)
	}
	if m := p.Members[1]; !m.Fresh || m.Restart {
		t.Errorf("round 3: job 2 = %+v, want fresh", m)
	}
	if !p.Restart {
		t.Error("round 3: reformed unit should charge a restart")
	}
}

func TestRecordFaultBudgetAndDeadletter(t *testing.T) {
	var seen []string
	retry := engine.RetryPolicy{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Budget:      2,
	}
	e := engine.New(engine.Config{
		Policy:   scriptedPolicy{plan: func(time.Duration, []*job.Job, int) []sched.Unit { return nil }},
		Retry:    retry,
		Observer: func(d engine.Decision) { seen = append(seen, d.String()) },
	})
	e.Track(5, engine.PhasePending)
	for attempt := 1; attempt <= 2; attempt++ {
		backoff, dead := e.RecordFault(5)
		if dead {
			t.Fatalf("fault %d dead-lettered inside budget", attempt)
		}
		if want := retry.Backoff(5, attempt); backoff != want {
			t.Errorf("fault %d backoff = %v, want %v", attempt, backoff, want)
		}
		if ph := e.PhaseOf(5); ph != engine.PhasePending {
			t.Errorf("fault %d phase = %v, want pending", attempt, ph)
		}
	}
	if _, dead := e.RecordFault(5); !dead {
		t.Fatal("third fault should exhaust a budget of 2")
	}
	if ph := e.PhaseOf(5); ph != engine.PhaseDeadletter {
		t.Errorf("phase = %v, want deadletter", ph)
	}
	if n := e.FaultsOf(5); n != 3 {
		t.Errorf("faults = %d, want 3", n)
	}
	want := []string{"requeue 5 (fault)", "requeue 5 (fault)", "deadletter 5"}
	if !equalStrings(seen, want) {
		t.Errorf("decision stream = %v, want %v", seen, want)
	}
	if st := e.Stats(); st.Requeues != 2 || st.DeadLettered != 1 || st.Decisions != 3 {
		t.Errorf("stats = %+v, want 2 requeues, 1 dead-lettered, 3 decisions", st)
	}
}

func TestRetryBackoffDoublesToCapDeterministically(t *testing.T) {
	r := engine.RetryPolicy{BackoffBase: 100 * time.Millisecond, BackoffMax: 800 * time.Millisecond}
	for attempt := 1; attempt <= 6; attempt++ {
		base := r.BackoffBase << (attempt - 1)
		if base > r.BackoffMax {
			base = r.BackoffMax
		}
		got := r.Backoff(42, attempt)
		if got < base || got > base+base/4 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, got, base, base+base/4)
		}
		if again := r.Backoff(42, attempt); again != got {
			t.Errorf("attempt %d: backoff not deterministic (%v vs %v)", attempt, got, again)
		}
	}
	if r.Backoff(1, 2) == r.Backoff(2, 2) {
		t.Error("jitter does not decorrelate different jobs")
	}
}

func TestPhaseTransitions(t *testing.T) {
	cases := []struct {
		from, to engine.Phase
		ok       bool
	}{
		{engine.PhaseProfiling, engine.PhasePending, true},
		{engine.PhaseProfiling, engine.PhaseRunning, false},
		{engine.PhasePending, engine.PhaseRunning, true},
		{engine.PhasePending, engine.PhasePending, true},
		{engine.PhasePending, engine.PhaseDone, true},
		{engine.PhasePending, engine.PhaseDeadletter, true},
		{engine.PhaseRunning, engine.PhasePending, true},
		{engine.PhaseRunning, engine.PhaseDone, true},
		{engine.PhaseRunning, engine.PhaseProfiling, false},
		{engine.PhaseDeadletter, engine.PhaseDone, true},
		{engine.PhaseDeadletter, engine.PhasePending, false},
		{engine.PhaseDone, engine.PhasePending, false},
		{engine.PhaseDone, engine.PhaseDone, false},
	}
	for _, c := range cases {
		if got := c.from.CanTransition(c.to); got != c.ok {
			t.Errorf("CanTransition(%s -> %s) = %v, want %v", c.from, c.to, got, c.ok)
		}
	}
	e := engine.New(engine.Config{
		Policy: scriptedPolicy{plan: func(time.Duration, []*job.Job, int) []sched.Unit { return nil }},
	})
	e.Track(1, engine.PhaseProfiling)
	if e.SetPhase(1, engine.PhaseDone) {
		t.Error("profiling -> done applied; the state machine should reject it")
	}
	if !e.SetPhase(1, engine.PhasePending) || e.PhaseOf(1) != engine.PhasePending {
		t.Error("profiling -> pending rejected")
	}
	if e.SetPhase(2, engine.PhasePending) {
		t.Error("transition applied to an untracked job")
	}
}

func TestRequeueDecisionString(t *testing.T) {
	var seen []string
	e := engine.New(engine.Config{
		Policy:   scriptedPolicy{plan: func(time.Duration, []*job.Job, int) []sched.Unit { return nil }},
		Observer: func(d engine.Decision) { seen = append(seen, d.String()) },
	})
	e.Track(4, engine.PhasePending)
	e.SetPhase(4, engine.PhaseRunning)
	d := e.Requeue(4, engine.ReasonMachineLost)
	if d.String() != "requeue 4 (machine-lost)" {
		t.Errorf("decision = %q, want %q", d.String(), "requeue 4 (machine-lost)")
	}
	if ph := e.PhaseOf(4); ph != engine.PhasePending {
		t.Errorf("phase = %v, want pending after machine-lost requeue", ph)
	}
	if n := e.FaultsOf(4); n != 0 {
		t.Errorf("machine-lost requeue charged %d faults; it must not spend budget", n)
	}
	if !equalStrings(seen, []string{"requeue 4 (machine-lost)"}) {
		t.Errorf("observer saw %v", seen)
	}
}
