package engine

import (
	"sort"
	"strconv"
	"strings"

	"muri/internal/job"
	"muri/internal/sched"
)

// Action is the kind of one scheduling decision.
type Action string

const (
	// ActLaunch starts a unit that was not running under this key before.
	ActLaunch Action = "launch"
	// ActKill preempts a running unit to reclaim its capacity.
	ActKill Action = "kill"
	// ActRequeue pushes a job back to the queue after a fault or a lost
	// machine.
	ActRequeue Action = "requeue"
	// ActDeadletter parks a job that exhausted its retry budget.
	ActDeadletter Action = "deadletter"
)

// Reason qualifies requeue decisions.
type Reason string

const (
	// ReasonMachineLost marks a requeue caused by losing the machine the
	// job ran on (crash or evicted executor); it does not charge the
	// job's retry budget.
	ReasonMachineLost Reason = "machine-lost"
	// ReasonFault marks a requeue caused by the job's own failure; it
	// spends retry budget.
	ReasonFault Reason = "fault"
)

// Decision is one entry of the engine's decision stream. Both drivers —
// the discrete-event simulator and the live daemon — emit the same
// stream for the same event sequence; the parity tests compare streams
// via String, which deliberately excludes timestamps (virtual and wall
// clocks never align byte-for-byte).
type Decision struct {
	// Seq is the engine-assigned sequence number, starting at 1.
	Seq uint64
	// Action is the decision kind.
	Action Action
	// Key is the canonical unit key (launch and kill decisions).
	Key string
	// Jobs lists the affected job IDs in ascending order.
	Jobs []job.ID
	// Reason qualifies requeues.
	Reason Reason
	// Cause is the provenance annotation attached at the decision site
	// (preemptor identity, grouping efficiency, retry-budget state).
	// Only populated when Config.Provenance is set; deliberately excluded
	// from String so parity streams stay byte-identical either way.
	Cause string
}

// String renders the decision without its sequence number or any
// timestamp, so streams from different drivers compare byte-for-byte.
func (d Decision) String() string {
	var b strings.Builder
	b.WriteString(string(d.Action))
	if d.Key != "" {
		b.WriteByte(' ')
		b.WriteString(d.Key)
	} else {
		for i, id := range d.Jobs {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(int64(id), 10))
		}
	}
	if d.Reason != "" {
		b.WriteString(" (")
		b.WriteString(string(d.Reason))
		b.WriteByte(')')
	}
	return b.String()
}

// memberIDs returns a unit's member IDs in ascending order.
func memberIDs(u sched.Unit) []job.ID {
	ids := make([]job.ID, len(u.Jobs))
	for i, j := range u.Jobs {
		ids[i] = j.ID
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	return ids
}
