package engine

// Phase is one state of the job lifecycle state machine the engine owns:
//
//	profiling ──► pending ──► running ──► done
//	                 ▲  │         │
//	                 │  │         ├──► pending   (preemption / requeue)
//	                 │  └──► deadletter ◄┘       (retry budget exhausted)
//	                 │
//	              (requeue after fault, with backoff)
//
// The string values are the daemon's wire states, so a Phase can be put
// on the status API unchanged.
type Phase string

const (
	// PhaseProfiling jobs wait for a dry-run profile of their model.
	PhaseProfiling Phase = "profiling"
	// PhasePending jobs sit in the scheduler queue.
	PhasePending Phase = "pending"
	// PhaseRunning jobs hold resources.
	PhaseRunning Phase = "running"
	// PhaseDone jobs completed every iteration. Terminal.
	PhaseDone Phase = "done"
	// PhaseDeadletter jobs exhausted their fault-retry budget and are
	// parked. A straggling completion report may still finish them.
	PhaseDeadletter Phase = "deadletter"
)

// CanTransition reports whether the lifecycle permits moving from p to
// to. The table encodes the daemon's historical guards: a completion may
// arrive for a job that was already requeued (pending → done) or parked
// (deadletter → done), a fault may strike a job whose group was killed
// moments before (pending → pending requeue, pending → deadletter), and
// done is terminal.
func (p Phase) CanTransition(to Phase) bool {
	switch p {
	case PhaseProfiling:
		return to == PhasePending
	case PhasePending:
		return to == PhasePending || to == PhaseRunning || to == PhaseDone || to == PhaseDeadletter
	case PhaseRunning:
		return to == PhasePending || to == PhaseDone || to == PhaseDeadletter
	case PhaseDeadletter:
		return to == PhaseDone
	default: // PhaseDone and untracked
		return false
	}
}
