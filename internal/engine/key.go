package engine

import (
	"sort"
	"strconv"

	"muri/internal/sched"
)

// UnitKey canonically identifies a schedulable unit by its sharing mode
// and member set: "mode:id,id,...", with member IDs sorted ascending so
// the key is invariant to member order. The simulator and the daemon both
// key their placement memory and desired-state diffing on it — a unit
// whose key is unchanged across scheduling rounds is the same logical
// unit (same jobs, same sharing discipline) and keeps running without a
// restart; any change in composition or mode produces a new key and
// forces a relaunch.
func UnitKey(u sched.Unit) string {
	ids := make([]int64, len(u.Jobs))
	for i, j := range u.Jobs {
		ids[i] = int64(j.ID)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	mode := u.Mode.String()
	buf := make([]byte, 0, len(mode)+1+8*len(ids))
	buf = append(buf, mode...)
	buf = append(buf, ':')
	for i, id := range ids {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, id, 10)
	}
	return string(buf)
}
