package engine_test

import (
	"testing"

	"muri/internal/engine"
	"muri/internal/job"
	"muri/internal/sched"
	"muri/internal/workload"
)

func unitOf(t *testing.T, mode sched.Mode, gpus int, ids ...int64) sched.Unit {
	t.Helper()
	m, err := workload.ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*job.Job, len(ids))
	for i, id := range ids {
		jobs[i] = job.New(job.ID(id), m, 1, 100, 0)
	}
	return sched.Unit{Jobs: jobs, GPUs: gpus, Mode: mode}
}

func TestUnitKeyFormat(t *testing.T) {
	got := engine.UnitKey(unitOf(t, sched.Interleaved, 2, 1, 2))
	if got != "interleaved:1,2" {
		t.Errorf("key = %q, want interleaved:1,2", got)
	}
	got = engine.UnitKey(unitOf(t, sched.Exclusive, 4, 7))
	if got != "exclusive:7" {
		t.Errorf("key = %q, want exclusive:7", got)
	}
}

func TestUnitKeyMemberOrderInvariant(t *testing.T) {
	a := engine.UnitKey(unitOf(t, sched.Interleaved, 1, 3, 1, 2))
	b := engine.UnitKey(unitOf(t, sched.Interleaved, 1, 1, 2, 3))
	c := engine.UnitKey(unitOf(t, sched.Interleaved, 1, 2, 3, 1))
	if a != b || b != c {
		t.Errorf("keys differ across member orders: %q %q %q", a, b, c)
	}
	if a != "interleaved:1,2,3" {
		t.Errorf("key = %q, want interleaved:1,2,3", a)
	}
}

func TestUnitKeyDisambiguates(t *testing.T) {
	interleaved := engine.UnitKey(unitOf(t, sched.Interleaved, 1, 1, 2))
	spaceShared := engine.UnitKey(unitOf(t, sched.SpaceShared, 1, 1, 2))
	if interleaved == spaceShared {
		t.Errorf("mode change did not change the key: %q", interleaved)
	}
	pair := engine.UnitKey(unitOf(t, sched.Interleaved, 1, 1, 2))
	trio := engine.UnitKey(unitOf(t, sched.Interleaved, 1, 1, 2, 3))
	if pair == trio {
		t.Errorf("member change did not change the key: %q", pair)
	}
	// Multi-digit IDs must not collide with concatenations of smaller
	// ones ("1,2" vs "12") — the comma separator guarantees it.
	onetwo := engine.UnitKey(unitOf(t, sched.Exclusive, 1, 12))
	if onetwo == pair || onetwo != "exclusive:12" {
		t.Errorf("key = %q, want exclusive:12 distinct from %q", onetwo, pair)
	}
}
