package engine

import (
	"sort"
	"time"

	"muri/internal/job"
	"muri/internal/metrics"
)

// Snapshot is the engine's replayable state: everything Reconcile and
// the lifecycle methods consult that cannot be rebuilt from the drivers'
// own state. Restoring a snapshot and re-applying the decision records
// logged after it reproduces the engine bit-for-bit, which is what makes
// the recovered daemon's decision stream byte-identical to an
// uninterrupted run.
type Snapshot struct {
	// Seq is the last assigned decision sequence number.
	Seq uint64 `json:"seq"`
	// LastNow is the clock of the most recent round, in nanoseconds.
	LastNow int64 `json:"last_now,omitempty"`
	// PrevKeys is the placement memory: running job → unit key.
	PrevKeys map[int64]string `json:"prev_keys,omitempty"`
	// Bypassed is the anti-starvation ledger: job → consecutive rounds
	// skipped for capacity.
	Bypassed map[int64]int `json:"bypassed,omitempty"`
	// Records is the lifecycle state machine: job → phase + fault count.
	Records map[int64]RecordSnapshot `json:"records,omitempty"`
	// Stats are the engine counters.
	Stats metrics.EngineStats `json:"stats"`
	// WaitCauses is the provenance transition gate: job → last emitted
	// wait cause. Restored so a recovered daemon does not re-emit a cause
	// record an uninterrupted run would have suppressed.
	WaitCauses map[int64]string `json:"wait_causes,omitempty"`
}

// RecordSnapshot is one job's lifecycle record on disk.
type RecordSnapshot struct {
	Phase  string `json:"phase"`
	Faults int    `json:"faults,omitempty"`
}

// Snapshot captures the engine's replayable state.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Seq:     e.seq,
		LastNow: int64(e.lastNow),
		Stats:   e.stats,
	}
	if len(e.prevKeys) > 0 {
		s.PrevKeys = make(map[int64]string, len(e.prevKeys))
		for id, k := range e.prevKeys {
			s.PrevKeys[int64(id)] = k
		}
	}
	if len(e.bypassed) > 0 {
		s.Bypassed = make(map[int64]int, len(e.bypassed))
		for id, n := range e.bypassed {
			s.Bypassed[int64(id)] = n
		}
	}
	if len(e.records) > 0 {
		s.Records = make(map[int64]RecordSnapshot, len(e.records))
		for id, r := range e.records {
			s.Records[int64(id)] = RecordSnapshot{Phase: string(r.Phase), Faults: r.Faults}
		}
	}
	if len(e.lastWaitCause) > 0 {
		s.WaitCauses = make(map[int64]string, len(e.lastWaitCause))
		for id, c := range e.lastWaitCause {
			s.WaitCauses[int64(id)] = c
		}
	}
	return s
}

// Restore overwrites the engine's replayable state from a snapshot. The
// engine keeps its Config (policy, observer, tracer): those are wiring,
// not state, and the restoring driver reconstructs them.
func (e *Engine) Restore(s Snapshot) {
	e.seq = s.Seq
	e.lastNow = time.Duration(s.LastNow)
	e.stats = s.Stats
	e.prevKeys = make(map[job.ID]string, len(s.PrevKeys))
	for id, k := range s.PrevKeys {
		e.prevKeys[job.ID(id)] = k
	}
	e.bypassed = make(map[job.ID]int, len(s.Bypassed))
	for id, n := range s.Bypassed {
		e.bypassed[job.ID(id)] = n
	}
	e.records = make(map[job.ID]*Record, len(s.Records))
	for id, r := range s.Records {
		e.records[job.ID(id)] = &Record{Phase: Phase(r.Phase), Faults: r.Faults}
	}
	e.lastWaitCause = make(map[job.ID]string, len(s.WaitCauses))
	for id, c := range s.WaitCauses {
		e.lastWaitCause[job.ID(id)] = c
	}
}

// ApplyDecision replays one logged decision into the engine's state
// silently: no observer, no sink, no trace, no new sequence number —
// the decision already happened; replay only reproduces its effects.
// The rules mirror what emit-time code did around each decision:
//
//   - launch: members enter the placement memory under the unit key,
//     phases move to running, starvation credit resets.
//   - kill: members leave the placement memory, running phases return to
//     pending. (The live path rebuilds prevKeys wholesale each round;
//     deleting the killed keys is the equivalent incremental form,
//     because every kept or placed unit re-inserts its own members.)
//   - requeue: placement memory forgotten, running → pending.
//   - deadletter: placement memory forgotten, phase parked.
//
// Fault-budget spend and counter increments are NOT derived from the
// decision kind alone — requeue is ambiguous between the free
// (machine-lost) and budget-spending (fault) paths — so replay drives
// them from the richer WAL fault records via ReplayFault. Stats
// counters (requeues, preemptions, launches, deadletters, decisions)
// are restored from the snapshot and advanced here to match the
// emit-time increments exactly.
func (e *Engine) ApplyDecision(d Decision) {
	if d.Seq > e.seq {
		e.seq = d.Seq
	}
	e.stats.Decisions++
	switch d.Action {
	case ActLaunch:
		e.stats.Launches++
		for _, id := range d.Jobs {
			e.prevKeys[id] = d.Key
			delete(e.bypassed, id)
			delete(e.lastWaitCause, id)
			e.markRunning(id)
		}
	case ActKill:
		e.stats.Preemptions++
		for _, id := range d.Jobs {
			delete(e.prevKeys, id)
			if r := e.records[id]; r != nil && r.Phase == PhaseRunning {
				r.Phase = PhasePending
			}
		}
	case ActRequeue:
		e.stats.Requeues++
		for _, id := range d.Jobs {
			delete(e.prevKeys, id)
			delete(e.lastWaitCause, id)
			if r := e.records[id]; r != nil && r.Phase == PhaseRunning {
				r.Phase = PhasePending
			}
		}
	case ActDeadletter:
		e.stats.DeadLettered++
		for _, id := range d.Jobs {
			delete(e.prevKeys, id)
			delete(e.lastWaitCause, id)
			if r := e.records[id]; r == nil {
				e.records[id] = &Record{Phase: PhaseDeadletter}
			} else {
				r.Phase = PhaseDeadletter
			}
		}
	}
}

// ReplayFault replays one WAL fault record's budget spend: the fault
// count is set absolutely (idempotent under re-replay of the same
// record) without emitting the requeue/deadletter decision — that
// decision is its own WAL record and flows through ApplyDecision.
func (e *Engine) ReplayFault(id job.ID, faults int, deadlettered bool) {
	r := e.records[id]
	if r == nil {
		r = &Record{}
		e.records[id] = r
	}
	if faults > r.Faults {
		r.Faults = faults
	}
	_ = deadlettered // phase flows through the deadletter decision record
}

// MarkDone completes a job's lifecycle (running/pending/deadletter →
// done) and clears its placement memory, reporting whether the
// transition applied. Shared by the live completion path and replay.
func (e *Engine) MarkDone(id job.ID) bool {
	if !e.SetPhase(id, PhaseDone) {
		return false
	}
	delete(e.prevKeys, id)
	delete(e.bypassed, id)
	delete(e.lastWaitCause, id)
	return true
}

// RunningKeys returns the placement memory as a sorted job → key list,
// for recovery code that must rebuild driver-side group state.
func (e *Engine) RunningKeys() map[job.ID]string {
	out := make(map[job.ID]string, len(e.prevKeys))
	for id, k := range e.prevKeys {
		out[id] = k
	}
	return out
}

// PhasesInOrder lists tracked jobs in ascending ID order with their
// phases — deterministic iteration for recovery and tests.
func (e *Engine) PhasesInOrder() []struct {
	ID    job.ID
	Phase Phase
} {
	ids := make([]job.ID, 0, len(e.records))
	for id := range e.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]struct {
		ID    job.ID
		Phase Phase
	}, len(ids))
	for i, id := range ids {
		out[i].ID = id
		out[i].Phase = e.records[id].Phase
	}
	return out
}
