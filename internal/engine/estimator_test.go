package engine

import (
	"testing"
	"time"

	"muri/internal/job"
	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/workload"
)

// NoteCompletion must fold in-band completions into the estimator and
// re-seed the belief when the measurement deviates past the threshold,
// counting the re-profile in the engine stats.
func TestNoteCompletionReprofilesOnDeviation(t *testing.T) {
	m, err := workload.ByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	est := profile.NewOnline()
	e := New(Config{Policy: sched.FIFO(), Estimator: est})
	j := job.New(1, m, 1, 100, 0)

	// In-band completions accumulate samples without re-profiling.
	for i := 0; i < 5; i++ {
		if e.NoteCompletion(j, m.Stages, time.Hour) {
			t.Fatalf("in-band completion %d triggered a re-profile", i)
		}
	}
	if b, ok := est.EstimateFor(j); !ok || b.Samples != 5 {
		t.Fatalf("estimator has %d samples, want 5", b.Samples)
	}

	// A 2× deviation (threshold defaults to 0.25) re-seeds the belief.
	if !e.NoteCompletion(j, m.Stages.Scale(2), 2*time.Hour) {
		t.Fatal("2x deviation did not trigger a re-profile")
	}
	if e.Stats().Reprofiles != 1 {
		t.Fatalf("Reprofiles = %d, want 1", e.Stats().Reprofiles)
	}
	b, ok := est.EstimateFor(j)
	if !ok || b.Samples != 1 {
		t.Fatalf("belief not re-seeded: samples = %d, want 1", b.Samples)
	}
	if b.Stages.Total() != m.Stages.Scale(2).Total() {
		t.Fatalf("re-seeded belief = %v, want the deviating measurement %v",
			b.Stages.Total(), m.Stages.Scale(2).Total())
	}
}

// Without an estimator the completion path must be inert.
func TestNoteCompletionNilEstimator(t *testing.T) {
	m, err := workload.ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Policy: sched.FIFO()})
	if e.NoteCompletion(job.New(1, m, 1, 10, 0), m.Stages, time.Hour) {
		t.Fatal("nil estimator reported a re-profile")
	}
	if e.Stats().Reprofiles != 0 {
		t.Fatal("nil estimator accumulated re-profile stats")
	}
}
