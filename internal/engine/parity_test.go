package engine_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"muri/internal/engine"
	"muri/internal/executor"
	"muri/internal/faults"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/server"
	"muri/internal/sim"
	"muri/internal/trace"
)

// The parity script: one 8-GPU machine under SRTF, replayed through both
// drivers. A long job starts; a shorter job arrives and preempts it; the
// short job finishes and the long job resumes; the machine crashes (the
// injected fault) and the long job is requeued without spending retry
// budget; the machine returns and the job relaunches. Both drivers must
// emit exactly this decision stream, byte for byte.
var parityWant = []string{
	"launch exclusive:1",
	"kill exclusive:1",
	"launch exclusive:2",
	"launch exclusive:1",
	"requeue 1 (machine-lost)",
	"launch exclusive:1",
}

// streamTap collects decision strings across goroutines (the daemon's
// observer fires from its schedule loop and connection handlers).
type streamTap struct {
	mu      sync.Mutex
	entries []string
}

func (s *streamTap) observe(d engine.Decision) {
	s.mu.Lock()
	s.entries = append(s.entries, d.String())
	s.mu.Unlock()
}

func (s *streamTap) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.entries...)
}

// simParityStream replays the script through the trace-driven simulator:
// arrivals come from the trace, the crash and repair from a hand-built
// fault plan.
func simParityStream(t *testing.T) []string {
	t.Helper()
	tap := &streamTap{}
	cfg := sim.Config{
		Machines:       1,
		GPUsPerMachine: 8,
		Interval:       time.Minute,
		// Patience large enough that round-count-dependent starvation
		// boosts can never fire: the two drivers run different numbers of
		// (empty) rounds, so any bypass boost would diverge the streams.
		StarvationPatience: 1 << 30,
		Faults: &faults.Plan{Events: []faults.MachineEvent{
			{Time: 40 * time.Minute, Kind: faults.MachineCrash, Machine: 0},
			{Time: 45 * time.Minute, Kind: faults.MachineRepair, Machine: 0},
		}},
		Observer: tap.observe,
	}
	tr := trace.Trace{Name: "parity", Specs: []trace.Spec{
		{ID: 1, Submit: 0, Duration: 10 * time.Hour, GPUs: 8, Model: "gpt2"},
		{ID: 2, Submit: 2 * time.Minute, Duration: 30 * time.Minute, GPUs: 8, Model: "gpt2"},
	}}
	res := sim.Run(cfg, tr, sched.SRTF())
	if len(res.Jobs) != 2 {
		t.Fatalf("simulator finished %d jobs, want 2", len(res.Jobs))
	}
	if res.Faults.Crashes != 1 || res.Faults.Repairs != 1 || res.Faults.Requeues != 1 {
		t.Fatalf("simulator fault stats = %+v, want 1 crash / 1 repair / 1 requeue", res.Faults)
	}
	return tap.snapshot()
}

// serverParityStream replays the same script through the live daemon
// over loopback TCP, using status polls as barriers between steps and
// the chaos-injection API for the crash.
func serverParityStream(t *testing.T) []string {
	t.Helper()
	tap := &streamTap{}
	srv := server.New(server.Config{
		Policy:             sched.SRTF(),
		Interval:           20 * time.Millisecond,
		TimeScale:          0.0005,
		ReportEvery:        10 * time.Millisecond,
		StarvationPatience: 1 << 30,
		Observer:           tap.observe,
		Logf:               t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		srv.Close()
		wg.Wait()
	}()
	startExecutor := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			agent := &executor.Agent{MachineID: "machine-0", GPUs: 8, Logf: t.Logf}
			_ = agent.Run(ctx, addr)
		}()
	}
	startExecutor()

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor := func(desc string, cond func(proto.StatusAck) bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, err := c.Status()
			if err != nil {
				t.Fatal(err)
			}
			if cond(st) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; status %+v", desc, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	jobState := func(st proto.StatusAck, id int64) string {
		for _, j := range st.Jobs {
			if j.ID == id {
				return j.State
			}
		}
		return ""
	}
	waitFor("executor registration", func(st proto.StatusAck) bool { return st.Executors == 1 })

	// Explicit stage times skip the profiling dry run: the parity script
	// exercises scheduling, not the profiler. One virtual second per
	// iteration = 0.5ms wall at this time scale.
	stages := [4]time.Duration{250 * time.Millisecond, 250 * time.Millisecond,
		250 * time.Millisecond, 250 * time.Millisecond}
	submit := func(iters int64) {
		t.Helper()
		if _, err := c.SubmitSpec(proto.JobSpec{
			Model: "gpt2", GPUs: 8, Iterations: iters, Stages: stages,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Long job starts and runs.
	submit(1200)
	waitFor("job 1 running", func(st proto.StatusAck) bool { return jobState(st, 1) == "running" })
	// Shorter job arrives: SRTF preempts job 1.
	submit(100)
	waitFor("job 2 done", func(st proto.StatusAck) bool { return jobState(st, 2) == "done" })
	// Job 1 resumes on the freed machine.
	waitFor("job 1 resumed", func(st proto.StatusAck) bool { return jobState(st, 1) == "running" })
	// Injected fault: the machine crashes; job 1 is requeued without
	// spending retry budget.
	if err := c.InjectFault(0, "machine-0"); err != nil {
		t.Fatal(err)
	}
	waitFor("executor evicted", func(st proto.StatusAck) bool { return st.Executors == 0 })
	// The machine returns to service; job 1 relaunches and finishes.
	startExecutor()
	st, err := c.WaitAllDone(30*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 {
		t.Fatalf("done = %d, want 2", st.Done)
	}
	if st.Faults == nil || st.Faults.Crashes != 1 || st.Faults.Repairs != 1 || st.Faults.Requeues != 1 {
		t.Fatalf("daemon fault summary = %+v, want 1 crash / 1 repair / 1 requeue", st.Faults)
	}
	if st.Engine == nil || st.Engine.Launches != 4 || st.Engine.Preemptions != 1 || st.Engine.Requeues != 1 {
		t.Fatalf("daemon engine summary = %+v, want 4 launches / 1 preemption / 1 requeue", st.Engine)
	}
	return tap.snapshot()
}

// TestDriverParity replays one scripted event sequence — arrivals, an
// SRTF preemption, and an injected machine fault — through both the
// simulator and the live daemon, and asserts the shared engine emitted
// byte-identical decision streams.
func TestDriverParity(t *testing.T) {
	simStream := simParityStream(t)
	srvStream := serverParityStream(t)
	if !equalStrings(simStream, parityWant) {
		t.Errorf("simulator stream = %v, want %v", simStream, parityWant)
	}
	if !equalStrings(srvStream, parityWant) {
		t.Errorf("daemon stream = %v, want %v", srvStream, parityWant)
	}
	if !equalStrings(simStream, srvStream) {
		t.Errorf("streams diverge:\n  sim    = %v\n  daemon = %v", simStream, srvStream)
	}
}
