package faults

import (
	"reflect"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Seed:               42,
		Machines:           8,
		MTBF:               12 * time.Hour,
		MTTR:               45 * time.Minute,
		Horizon:            10 * 24 * time.Hour,
		TransientFaultProb: 0.05,
		StragglerFraction:  0.25,
		StragglerSlowdown:  1.4,
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	a, b := NewPlan(testConfig()), NewPlan(testConfig())
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("two plans from the same config have different event schedules")
	}
	if !reflect.DeepEqual(a.Slowdown, b.Slowdown) {
		t.Fatal("two plans from the same config have different slowdowns")
	}
	other := testConfig()
	other.Seed = 43
	if reflect.DeepEqual(a.Events, NewPlan(other).Events) {
		t.Fatal("different seeds produced identical event schedules")
	}
}

func TestPlanInvariants(t *testing.T) {
	cfg := testConfig()
	p := NewPlan(cfg)
	if len(p.Events) == 0 {
		t.Fatal("10-day horizon at 12h MTBF produced no crashes")
	}
	// Globally time-sorted.
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].Time < p.Events[i-1].Time {
			t.Fatalf("events out of order at %d: %v after %v", i, p.Events[i], p.Events[i-1])
		}
	}
	// Per machine: strict crash/repair alternation starting with a crash,
	// strictly increasing times, machine index in range.
	lastKind := make(map[int]Kind)
	lastTime := make(map[int]time.Duration)
	for _, e := range p.Events {
		if e.Machine < 0 || e.Machine >= cfg.Machines {
			t.Fatalf("event machine %d out of range", e.Machine)
		}
		if k, seen := lastKind[e.Machine]; seen {
			if k == e.Kind {
				t.Fatalf("machine %d: consecutive %v events", e.Machine, e.Kind)
			}
			if e.Time <= lastTime[e.Machine] {
				t.Fatalf("machine %d: non-increasing event times", e.Machine)
			}
		} else if e.Kind != MachineCrash {
			t.Fatalf("machine %d: first event is %v, want crash", e.Machine, e.Kind)
		}
		lastKind[e.Machine] = e.Kind
		lastTime[e.Machine] = e.Time
	}
	// Every crash is paired with a repair: the final event per machine is
	// a repair, so capacity always recovers.
	for m, k := range lastKind {
		if k != MachineRepair {
			t.Errorf("machine %d: schedule ends on %v, want repair", m, k)
		}
	}
	// No crash past the horizon.
	for _, e := range p.Events {
		if e.Kind == MachineCrash && e.Time > cfg.Horizon {
			t.Errorf("crash at %v past horizon %v", e.Time, cfg.Horizon)
		}
	}
	if len(p.Slowdown) != cfg.Machines {
		t.Fatalf("slowdown vector has %d entries, want %d", len(p.Slowdown), cfg.Machines)
	}
	for m, s := range p.Slowdown {
		if s != 1 && s != cfg.StragglerSlowdown {
			t.Errorf("machine %d slowdown %v, want 1 or %v", m, s, cfg.StragglerSlowdown)
		}
	}
}

func TestTransientFaultDeterministicAndCalibrated(t *testing.T) {
	p := NewPlan(Config{Seed: 7, Machines: 1, TransientFaultProb: 0.1})
	hits := 0
	const draws = 20000
	for job := int64(0); job < 200; job++ {
		for attempt := 0; attempt < 100; attempt++ {
			f1, ok1 := p.TransientFault(job, attempt)
			f2, ok2 := p.TransientFault(job, attempt)
			if f1 != f2 || ok1 != ok2 {
				t.Fatalf("transient draw for (%d,%d) not stable", job, attempt)
			}
			if ok1 {
				hits++
				if f1 < 0.05 || f1 > 0.95 {
					t.Fatalf("fault fraction %v outside [0.05, 0.95]", f1)
				}
			}
		}
	}
	rate := float64(hits) / draws
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("observed fault rate %.3f, want ≈0.10", rate)
	}
}

func TestEmptyAndNilPlans(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	if f := nilPlan.SlowdownFor(0); f != 1 {
		t.Errorf("nil plan slowdown = %v, want 1", f)
	}
	if _, ok := nilPlan.TransientFault(1, 0); ok {
		t.Error("nil plan injected a transient fault")
	}
	if !NewPlan(Config{Seed: 1, Machines: 4}).Empty() {
		t.Error("zero-rate plan should be empty")
	}
	if NewPlan(testConfig()).Empty() {
		t.Error("fault-heavy plan reported empty")
	}
	if NewPlan(Config{Seed: 1, Machines: 2, StragglerFraction: 1, StragglerSlowdown: 2}).Empty() {
		t.Error("straggler-only plan reported empty")
	}
}
