// Package faults defines the deterministic failure model shared by the
// discrete-event simulator and the live daemon/executor stack. A Plan is
// generated once from a seed and then consumed read-only: machine
// crash/repair events drawn from exponential MTBF/MTTR distributions,
// per-machine straggler slowdown factors, and a pure-hash transient-fault
// oracle for individual job execution attempts. Two plans built from the
// same Config are identical, and every query on a plan is a pure
// function, so a simulation that consumes a plan is reproducible
// bit-for-bit regardless of scheduling or goroutine order.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind enumerates the machine-level event kinds of a failure plan.
type Kind int

const (
	// MachineCrash takes a machine — and everything running on it —
	// offline until the paired MachineRepair.
	MachineCrash Kind = iota
	// MachineRepair returns a crashed machine to service.
	MachineRepair
)

// String returns the timeline label for the kind ("fault" / "repair").
func (k Kind) String() string {
	switch k {
	case MachineCrash:
		return "fault"
	case MachineRepair:
		return "repair"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MachineEvent is one scheduled crash or repair.
type MachineEvent struct {
	// Time is the virtual timestamp of the event.
	Time time.Duration
	// Kind is MachineCrash or MachineRepair.
	Kind Kind
	// Machine is the machine index in [0, Config.Machines).
	Machine int
}

// Config parameterizes plan generation. The zero value produces an empty
// plan (no crashes, no transient faults, no stragglers).
type Config struct {
	// Seed makes the plan reproducible; two configs differing only in
	// Seed produce statistically equivalent but distinct plans.
	Seed int64
	// Machines is the number of machines to model.
	Machines int
	// MTBF is the per-machine mean time between crashes (exponential).
	// Zero disables machine crashes.
	MTBF time.Duration
	// MTTR is the mean time to repair a crashed machine (exponential).
	// Zero with a non-zero MTBF defaults to 30 minutes.
	MTTR time.Duration
	// Horizon bounds crash generation: no crash is scheduled after it
	// (repairs may land past it so capacity always recovers). Zero with a
	// non-zero MTBF defaults to 30 days.
	Horizon time.Duration
	// TransientFaultProb is the probability that one execution attempt of
	// a job suffers a transient fault (process crash, NCCL error, …) and
	// must be requeued from its last checkpoint. Zero disables.
	TransientFaultProb float64
	// StragglerFraction is the fraction of machines that run slow.
	StragglerFraction float64
	// StragglerSlowdown is the iteration-time multiplier on straggler
	// machines; values ≤ 1 disable straggling.
	StragglerSlowdown float64
}

// Plan is a reproducible failure schedule. Consumers hold it read-only
// and keep their own cursors, so one plan can drive many runs.
type Plan struct {
	// Events holds the machine crash/repair schedule in time order
	// (ties broken by machine index, repairs before crashes).
	Events []MachineEvent
	// Slowdown is the per-machine iteration-time multiplier (1 nominal).
	Slowdown []float64
	// TransientFaultProb is the per-attempt job fault probability
	// consumed by TransientFault.
	TransientFaultProb float64

	seed int64
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixing function used to derive independent draws from (seed,
// key) tuples without any shared-stream ordering dependence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit01 maps a 64-bit hash to a uniform float64 in [0, 1).
func unit01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// NewPlan generates the failure schedule for cfg. Each machine's
// crash/repair sequence is drawn from its own derived seed, so the plan
// is invariant to the machine count of *other* configs and fully
// determined by (Seed, Machines, MTBF, MTTR, Horizon).
func NewPlan(cfg Config) *Plan {
	p := &Plan{
		TransientFaultProb: cfg.TransientFaultProb,
		Slowdown:           make([]float64, cfg.Machines),
		seed:               cfg.Seed,
	}
	mttr := cfg.MTTR
	if mttr <= 0 {
		mttr = 30 * time.Minute
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 30 * 24 * time.Hour
	}
	for m := 0; m < cfg.Machines; m++ {
		mseed := splitmix64(uint64(cfg.Seed) ^ splitmix64(uint64(m)+0x5eed))
		if cfg.StragglerSlowdown > 1 && cfg.StragglerFraction > 0 &&
			unit01(splitmix64(mseed^0x57a661e7)) < cfg.StragglerFraction {
			p.Slowdown[m] = cfg.StragglerSlowdown
		} else {
			p.Slowdown[m] = 1
		}
		if cfg.MTBF <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(int64(mseed)))
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() * float64(cfg.MTBF))
			if t > horizon {
				break
			}
			crash := t
			t += time.Duration(rng.ExpFloat64() * float64(mttr))
			// The repair may land past the horizon: a crashed machine
			// always comes back, so simulations cannot starve forever.
			p.Events = append(p.Events,
				MachineEvent{Time: crash, Kind: MachineCrash, Machine: m},
				MachineEvent{Time: t, Kind: MachineRepair, Machine: m})
		}
	}
	sort.SliceStable(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind == MachineRepair // free capacity before taking it
		}
		return a.Machine < b.Machine
	})
	return p
}

// Empty reports whether the plan (or nil) can never perturb a run; an
// empty plan is the contract for bit-identical no-fault behavior.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	if len(p.Events) > 0 || p.TransientFaultProb > 0 {
		return false
	}
	for _, s := range p.Slowdown {
		if s > 1 {
			return false
		}
	}
	return true
}

// SlowdownFor returns the iteration-time multiplier for a machine; out
// of range indices (a plan generated for a smaller cluster) are nominal.
func (p *Plan) SlowdownFor(machine int) float64 {
	if p == nil || machine < 0 || machine >= len(p.Slowdown) {
		return 1
	}
	return p.Slowdown[machine]
}

// TransientFault reports whether the given execution attempt of a job
// suffers a transient fault and, if so, at which fraction of the
// attempt's estimated remaining work the fault strikes. The draw is a
// pure hash of (plan seed, job, attempt): deterministic regardless of
// call order or how often it is repeated.
func (p *Plan) TransientFault(jobID int64, attempt int) (frac float64, fault bool) {
	if p == nil || p.TransientFaultProb <= 0 {
		return 0, false
	}
	h := splitmix64(uint64(p.seed) ^ splitmix64(uint64(jobID)) ^ splitmix64(uint64(attempt)+0xfa11))
	if unit01(h) >= p.TransientFaultProb {
		return 0, false
	}
	// Strike somewhere in the middle 90% of the attempt, never exactly at
	// its start or end.
	return 0.05 + 0.9*unit01(splitmix64(h)), true
}
