package profile

import (
	"math"
	"sort"
	"sync"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

// Estimate is one estimator belief about a job's per-iteration stage
// durations.
type Estimate struct {
	// Stages is the believed per-iteration stage-duration vector.
	Stages workload.StageTimes
	// Band is the relative error half-width of the belief: the estimator
	// expects the true total to fall within Stages.Total()·(1 ± Band).
	// Zero means exact (the oracle); 1 means "no information".
	Band float64
	// Samples is how many completions back the belief (0 for priors and
	// the oracle, which needs none).
	Samples int
}

// Estimator supplies per-job stage-duration beliefs to scheduling
// policies and drivers, replacing the paper's oracle-profile assumption
// (exact profiles known at submit time). Implementations must be safe
// for concurrent use: the daemon observes completions from its schedule
// loop while policies read estimates.
type Estimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// EstimateFor returns the current belief for job j. ok=false means
	// the estimator has no belief yet (cold start); callers fall back to
	// the job's scheduler-visible profile.
	EstimateFor(j *job.Job) (Estimate, bool)
	// ObserveCompletion feeds one completed job: its measured
	// per-iteration stage durations and its total 2D service demand
	// (attained time × GPUs).
	ObserveCompletion(model string, measured workload.StageTimes, service time.Duration)
}

// Oracle is the paper's assumption as an Estimator: it reads each job's
// true profile directly, with a zero error band. Selecting it must leave
// every fixed-seed decision stream bit-identical to a build without an
// estimator — the golden tests pin that.
type Oracle struct{}

// NewOracle returns the oracle estimator.
func NewOracle() Oracle { return Oracle{} }

// Name implements Estimator.
func (Oracle) Name() string { return "oracle" }

// EstimateFor implements Estimator: the truth, exactly.
func (Oracle) EstimateFor(j *job.Job) (Estimate, bool) {
	return Estimate{Stages: j.TrueProfile}, true
}

// ObserveCompletion implements Estimator: the oracle has nothing to learn.
func (Oracle) ObserveCompletion(string, workload.StageTimes, time.Duration) {}

// onlineModel is the running per-model estimate.
type onlineModel struct {
	n int
	// mean is the incremental per-stage mean, in seconds.
	mean [workload.NumResources]float64
	// meanTotal/m2Total are Welford accumulators over iteration totals
	// (seconds), driving the data-derived part of the error band.
	meanTotal, m2Total float64
}

// priorBand is the error band reported before any completion: no
// information, so the full relative range.
const priorBand = 1.0

// baseBand is the irreducible per-sample band floor: even identical
// observations leave this much residual doubt, divided by √n so the band
// keeps shrinking as evidence accrues.
const baseBand = 0.05

// Online learns per-model stage-duration estimates from completed jobs:
// incremental per-stage means with an error band that shrinks as ~1/√n,
// plus the completed-service history the Gittins index consumes. All
// state is deterministic given the observation order, and it snapshots
// to/restores from the WAL so the daemon's predictions survive restart.
type Online struct {
	mu     sync.Mutex
	models map[string]*onlineModel
	// history holds completed total service demands (gpu-seconds),
	// sorted ascending.
	history []float64
	// sumAbsErr/errSamples accumulate |predicted − measured|/measured of
	// per-iteration totals, taken against the belief in force at each
	// completion (predictions made with ≥1 prior sample).
	sumAbsErr  float64
	errSamples int
	// bandHits/bandChecks score error-band calibration: of the scored
	// predictions, how many measured totals actually fell inside the
	// belief's ±band? A well-calibrated band covers most of them.
	bandHits, bandChecks int
	// predStage/measStage accumulate predicted vs measured per-stage
	// seconds over scored completions, so telemetry can expose the
	// predictor's systematic per-resource bias.
	predStage, measStage [workload.NumResources]float64
	// reseeds counts re-profiling events (Reseed calls).
	reseeds int
}

// NewOnline returns an empty online estimator.
func NewOnline() *Online {
	return &Online{models: make(map[string]*onlineModel)}
}

// Name implements Estimator.
func (o *Online) Name() string { return "online" }

// EstimateFor implements Estimator: the running per-model mean, when at
// least one completion has been observed for the job's model.
func (o *Online) EstimateFor(j *job.Job) (Estimate, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.models[j.Model.Name]
	if m == nil || m.n == 0 {
		return Estimate{Band: priorBand}, false
	}
	var st workload.StageTimes
	for r := 0; r < workload.NumResources; r++ {
		st[r] = time.Duration(m.mean[r] * float64(time.Second))
	}
	return Estimate{Stages: st, Band: m.band(), Samples: m.n}, true
}

// band is the model's current relative error half-width: the sample
// relative standard deviation of iteration totals plus the base floor,
// both shrinking as 1/√n. Callers must hold o.mu.
func (m *onlineModel) band() float64 {
	if m.n == 0 {
		return priorBand
	}
	relStd := 0.0
	if m.n >= 2 && m.meanTotal > 0 {
		relStd = math.Sqrt(m.m2Total/float64(m.n-1)) / m.meanTotal
	}
	return (relStd + baseBand) / math.Sqrt(float64(m.n))
}

// ObserveCompletion implements Estimator: fold one measured profile into
// the model's running estimate, score the prediction it replaces, and
// log the job's service demand for the Gittins history.
func (o *Online) ObserveCompletion(model string, measured workload.StageTimes, service time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.observeLocked(model, measured, service)
}

func (o *Online) observeLocked(model string, measured workload.StageTimes, service time.Duration) {
	m := o.models[model]
	if m == nil {
		m = &onlineModel{}
		o.models[model] = m
	}
	mt := measured.Total().Seconds()
	if m.n > 0 && mt > 0 {
		o.sumAbsErr += math.Abs(m.meanTotal-mt) / mt
		o.errSamples++
		// Calibration: did the truth land inside the predicted band?
		o.bandChecks++
		if math.Abs(mt-m.meanTotal) <= m.band()*m.meanTotal {
			o.bandHits++
		}
		for r := 0; r < workload.NumResources; r++ {
			o.predStage[r] += m.mean[r]
			o.measStage[r] += measured[r].Seconds()
		}
	}
	m.n++
	for r := 0; r < workload.NumResources; r++ {
		x := measured[r].Seconds()
		m.mean[r] += (x - m.mean[r]) / float64(m.n)
	}
	d := mt - m.meanTotal
	m.meanTotal += d / float64(m.n)
	m.m2Total += d * (mt - m.meanTotal)
	o.recordServiceLocked(service)
}

// recordServiceLocked inserts one completed service demand into the
// sorted history. Callers must hold o.mu.
func (o *Online) recordServiceLocked(service time.Duration) {
	if service <= 0 {
		return
	}
	v := service.Seconds()
	i := sort.SearchFloat64s(o.history, v)
	o.history = append(o.history, 0)
	copy(o.history[i+1:], o.history[i:])
	o.history[i] = v
}

// Reseed discards a model's stale belief and restarts it from the given
// measurement — the re-profiling path the engine triggers when measured
// stage times deviate from the belief beyond its threshold. The service
// demand still enters the Gittins history.
func (o *Online) Reseed(model string, measured workload.StageTimes, service time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.reseeds++
	delete(o.models, model)
	o.observeLocked(model, measured, service)
}

// ServiceHistory returns a sorted copy of the completed total service
// demands (gpu-seconds) observed so far — the empirical prior the
// Gittins index consumes instead of a private oracle-fed log.
func (o *Online) ServiceHistory() []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]float64(nil), o.history...)
}

// Completions returns the lifetime completion count (the service-history
// length; unlike per-model sample counts it never resets).
func (o *Online) Completions() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.history)
}

// Error returns the mean absolute relative prediction error over all
// scored completions, and how many were scored.
func (o *Online) Error() (mean float64, samples int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.errSamples == 0 {
		return 0, 0
	}
	return o.sumAbsErr / float64(o.errSamples), o.errSamples
}

// Calibration reports the predictor's error-band coverage — the
// fraction of scored completions whose measured total fell inside the
// belief's ±band — plus the accumulated predicted vs measured
// per-stage seconds. checks is 0 before any scored completion.
func (o *Online) Calibration() (coverage float64, checks int, pred, meas [workload.NumResources]float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.bandChecks > 0 {
		coverage = float64(o.bandHits) / float64(o.bandChecks)
	}
	return coverage, o.bandChecks, o.predStage, o.measStage
}

// Stats summarizes the estimator for telemetry: distinct models with a
// belief, total completions folded in, and re-profiling events.
func (o *Online) Stats() (models, samples, reseeds int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, m := range o.models {
		samples += m.n
	}
	return len(o.models), samples, o.reseeds
}

// BandFor returns the current error band for a model (priorBand when the
// model has never been observed).
func (o *Online) BandFor(model string) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if m := o.models[model]; m != nil {
		return m.band()
	}
	return priorBand
}

// OnlineModelState is one model's serialized running estimate.
type OnlineModelState struct {
	N         int                            `json:"n"`
	MeanS     [workload.NumResources]float64 `json:"mean_s"`
	MeanTotal float64                        `json:"mean_total"`
	M2Total   float64                        `json:"m2_total"`
}

// OnlineState is the estimator's full serialized state, carried inside
// the daemon's WAL snapshots so predictions survive restart and ride the
// warm-standby replication stream.
type OnlineState struct {
	Models     map[string]OnlineModelState    `json:"models,omitempty"`
	History    []float64                      `json:"history,omitempty"`
	SumAbsErr  float64                        `json:"sum_abs_err,omitempty"`
	ErrSamples int                            `json:"err_samples,omitempty"`
	BandHits   int                            `json:"band_hits,omitempty"`
	BandChecks int                            `json:"band_checks,omitempty"`
	PredStage  [workload.NumResources]float64 `json:"pred_stage,omitempty"`
	MeasStage  [workload.NumResources]float64 `json:"meas_stage,omitempty"`
	Reseeds    int                            `json:"reseeds,omitempty"`
}

// Snapshot serializes the estimator.
func (o *Online) Snapshot() OnlineState {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := OnlineState{
		History:    append([]float64(nil), o.history...),
		SumAbsErr:  o.sumAbsErr,
		ErrSamples: o.errSamples,
		BandHits:   o.bandHits,
		BandChecks: o.bandChecks,
		PredStage:  o.predStage,
		MeasStage:  o.measStage,
		Reseeds:    o.reseeds,
	}
	if len(o.models) > 0 {
		st.Models = make(map[string]OnlineModelState, len(o.models))
		for name, m := range o.models {
			st.Models[name] = OnlineModelState{N: m.n, MeanS: m.mean, MeanTotal: m.meanTotal, M2Total: m.m2Total}
		}
	}
	return st
}

// Restore replaces the estimator's state with a snapshot.
func (o *Online) Restore(st OnlineState) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.models = make(map[string]*onlineModel, len(st.Models))
	for name, ms := range st.Models {
		o.models[name] = &onlineModel{n: ms.N, mean: ms.MeanS, meanTotal: ms.MeanTotal, m2Total: ms.M2Total}
	}
	o.history = append([]float64(nil), st.History...)
	sort.Float64s(o.history)
	o.sumAbsErr = st.SumAbsErr
	o.errSamples = st.ErrSamples
	o.bandHits = st.BandHits
	o.bandChecks = st.BandChecks
	o.predStage = st.PredStage
	o.measStage = st.MeasStage
	o.reseeds = st.Reseeds
}

// Drift deterministically perturbs true stage durations away from the
// model zoo, so simulations can model profile drift (hardware
// heterogeneity, dataset changes, interference) without an RNG stream:
// each (seed, job, stage) hashes to an independent multiplicative factor
// in [1−Amplitude, 1+Amplitude]. Being hash-based rather than
// stream-based, the perturbation is independent of job construction
// order.
type Drift struct {
	// Amplitude is the maximum relative divergence per stage, in [0, 1).
	Amplitude float64
	// Seed selects the hash universe.
	Seed int64
}

// Apply returns the job's drifted true stage durations.
func (d *Drift) Apply(id int64, st workload.StageTimes) workload.StageTimes {
	if d == nil || d.Amplitude <= 0 {
		return st
	}
	var out workload.StageTimes
	for r := 0; r < workload.NumResources; r++ {
		u := hash01(uint64(d.Seed)*0x9e3779b97f4a7c15 ^ uint64(id)<<8 ^ uint64(r))
		factor := 1 - d.Amplitude + 2*d.Amplitude*u
		out[r] = time.Duration(float64(st[r]) * factor)
	}
	return out
}

// hash01 maps a 64-bit key to a uniform float in [0, 1) via splitmix64.
func hash01(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
