package profile

import (
	"math/rand"
	"testing"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

func testModel(t *testing.T) workload.Model {
	t.Helper()
	m, err := workload.ByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The oracle must report the job's true profile exactly, with a zero
// band — it is the paper's assumption expressed as an Estimator.
func TestOracleIsExact(t *testing.T) {
	m := testModel(t)
	j := job.New(1, m, 2, 100, 0)
	j.TrueProfile = j.TrueProfile.Scale(1.3)
	e, ok := NewOracle().EstimateFor(j)
	if !ok {
		t.Fatal("oracle returned no estimate")
	}
	if e.Stages != j.TrueProfile {
		t.Fatalf("oracle estimate %v != true profile %v", e.Stages, j.TrueProfile)
	}
	if e.Band != 0 {
		t.Fatalf("oracle band = %v, want 0", e.Band)
	}
}

// With identical observations the online band must shrink strictly
// monotonically: the data-derived spread is zero, so the band is the
// base floor divided by √n.
func TestOnlineBandShrinksMonotonically(t *testing.T) {
	m := testModel(t)
	o := NewOnline()
	prev := o.BandFor(m.Name)
	if prev != priorBand {
		t.Fatalf("cold-start band = %v, want %v", prev, priorBand)
	}
	for i := 0; i < 50; i++ {
		o.ObserveCompletion(m.Name, m.Stages, time.Hour)
		b := o.BandFor(m.Name)
		if b >= prev {
			t.Fatalf("band did not shrink at n=%d: %v -> %v", i+1, prev, b)
		}
		prev = b
	}
}

// Property test: with noisy observations the band still shrinks in
// expectation — the mean band over the second half of a long observation
// run must be below the mean over the first half, across seeds.
func TestOnlineBandShrinksInExpectation(t *testing.T) {
	m := testModel(t)
	const n = 200
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o := NewOnline()
		bands := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			factor := 0.7 + 0.6*rng.Float64() // ±30% observation noise
			o.ObserveCompletion(m.Name, m.Stages.Scale(factor), time.Hour)
			bands = append(bands, o.BandFor(m.Name))
		}
		first, second := 0.0, 0.0
		for i, b := range bands {
			if i < n/2 {
				first += b
			} else {
				second += b
			}
		}
		if second >= first {
			t.Fatalf("seed %d: band grew in expectation: first-half sum %v, second-half sum %v",
				seed, first, second)
		}
	}
}

// The online estimate must converge to the observed mean and its error
// score must reflect how far each prediction was from the measurement.
func TestOnlineConvergesToMean(t *testing.T) {
	m := testModel(t)
	o := NewOnline()
	for i := 0; i < 20; i++ {
		o.ObserveCompletion(m.Name, m.Stages.Scale(1.5), time.Hour)
	}
	j := job.New(1, m, 1, 100, 0)
	e, ok := o.EstimateFor(j)
	if !ok {
		t.Fatal("no estimate after 20 observations")
	}
	want := m.Stages.Scale(1.5).Total()
	got := e.Stages.Total()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(want) {
		t.Fatalf("estimate total %v, want ~%v", got, want)
	}
	if mean, samples := o.Error(); samples != 19 || mean > 1e-9 {
		t.Fatalf("error = (%v, %d), want (~0, 19) for constant observations", mean, samples)
	}
}

// Reseed must discard the stale belief and restart from the new
// measurement — the engine's re-profiling path.
func TestOnlineReseed(t *testing.T) {
	m := testModel(t)
	o := NewOnline()
	for i := 0; i < 10; i++ {
		o.ObserveCompletion(m.Name, m.Stages, time.Hour)
	}
	o.Reseed(m.Name, m.Stages.Scale(2), 2*time.Hour)
	j := job.New(1, m, 1, 100, 0)
	e, _ := o.EstimateFor(j)
	if e.Samples != 1 {
		t.Fatalf("samples after reseed = %d, want 1", e.Samples)
	}
	want := m.Stages.Scale(2).Total()
	if e.Stages.Total() != want {
		t.Fatalf("estimate after reseed = %v, want %v", e.Stages.Total(), want)
	}
	if _, _, reseeds := o.Stats(); reseeds != 1 {
		t.Fatalf("reseeds = %d, want 1", reseeds)
	}
}

// Snapshot/Restore must round-trip every observable: estimates, bands,
// error accounting, and the Gittins service history.
func TestOnlineSnapshotRoundTrip(t *testing.T) {
	m := testModel(t)
	o := NewOnline()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		o.ObserveCompletion(m.Name, m.Stages.Scale(0.8+0.4*rng.Float64()),
			time.Duration(1+rng.Intn(100))*time.Minute)
	}
	restored := NewOnline()
	restored.Restore(o.Snapshot())
	j := job.New(1, m, 1, 100, 0)
	a, _ := o.EstimateFor(j)
	b, _ := restored.EstimateFor(j)
	if a != b {
		t.Fatalf("estimate changed across snapshot: %+v vs %+v", a, b)
	}
	am, as := o.Error()
	bm, bs := restored.Error()
	if am != bm || as != bs {
		t.Fatalf("error accounting changed: (%v,%d) vs (%v,%d)", am, as, bm, bs)
	}
	ha, hb := o.ServiceHistory(), restored.ServiceHistory()
	if len(ha) != len(hb) {
		t.Fatalf("history length changed: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("history[%d] changed: %v vs %v", i, ha[i], hb[i])
		}
	}
}

// Drift must be deterministic, bounded by its amplitude, and identity at
// amplitude zero.
func TestDriftDeterministicAndBounded(t *testing.T) {
	m := testModel(t)
	d := &Drift{Amplitude: 0.4, Seed: 9}
	a := d.Apply(7, m.Stages)
	b := d.Apply(7, m.Stages)
	if a != b {
		t.Fatalf("drift not deterministic: %v vs %v", a, b)
	}
	if a == m.Stages {
		t.Fatal("drift with amplitude 0.4 left the profile unchanged")
	}
	for r := 0; r < workload.NumResources; r++ {
		lo := float64(m.Stages[r]) * 0.6
		hi := float64(m.Stages[r]) * 1.4
		if v := float64(a[r]); v < lo-1 || v > hi+1 {
			t.Fatalf("stage %d drifted out of bounds: %v not in [%v, %v]", r, a[r], time.Duration(lo), time.Duration(hi))
		}
	}
	var none *Drift
	if got := none.Apply(7, m.Stages); got != m.Stages {
		t.Fatalf("nil drift changed the profile: %v", got)
	}
	zero := &Drift{}
	if got := zero.Apply(7, m.Stages); got != m.Stages {
		t.Fatalf("zero-amplitude drift changed the profile: %v", got)
	}
}
