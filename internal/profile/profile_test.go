package profile

import (
	"sync"
	"testing"
	"time"

	"muri/internal/workload"
)

func model(name string) workload.Model {
	return workload.Model{
		Name:   name,
		Stages: workload.StageTimes{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond},
	}
}

func TestZeroNoiseIsExact(t *testing.T) {
	p := New(0, 1)
	m := model("m")
	if got := p.Profile(m); got != m.Stages {
		t.Errorf("Profile = %v, want exact %v", got, m.Stages)
	}
}

func TestCacheReuse(t *testing.T) {
	p := New(0.5, 1)
	m := model("m")
	first := p.Profile(m)
	second := p.Profile(m)
	if first != second {
		t.Errorf("cached profile differs: %v vs %v", first, second)
	}
	if p.DryRuns() != 1 {
		t.Errorf("DryRuns = %d, want 1 after two Profile calls", p.DryRuns())
	}
	p.Profile(model("other"))
	if p.DryRuns() != 2 {
		t.Errorf("DryRuns = %d, want 2 after second model", p.DryRuns())
	}
}

func TestNoiseBounds(t *testing.T) {
	m := model("m")
	for _, noise := range []float64{0.2, 0.5, 1.0} {
		for seed := int64(0); seed < 50; seed++ {
			p := New(noise, seed)
			got := p.Profile(m)
			for r := workload.Resource(0); r < workload.NumResources; r++ {
				lo := time.Duration(float64(m.Stages[r]) * (1 - noise))
				hi := time.Duration(float64(m.Stages[r]) * (1 + noise))
				if got[r] < lo || got[r] > hi {
					t.Fatalf("noise=%v seed=%d: stage %v = %v outside [%v, %v]",
						noise, seed, r, got[r], lo, hi)
				}
			}
		}
	}
}

func TestNoiseVaries(t *testing.T) {
	m := model("m")
	a := New(0.5, 1).Profile(m)
	b := New(0.5, 2).Profile(m)
	if a == b {
		t.Error("different seeds produced identical noisy profiles")
	}
}

func TestInvalidNoisePanics(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", bad)
				}
			}()
			New(bad, 1)
		}()
	}
}

func TestInvalidate(t *testing.T) {
	p := New(0.9, 7)
	m := model("m")
	first := p.Profile(m)
	p.Invalidate("m")
	second := p.Profile(m)
	if p.DryRuns() != 2 {
		t.Errorf("DryRuns = %d, want 2 after invalidation", p.DryRuns())
	}
	// With 90% noise two measurements almost surely differ.
	if first == second {
		t.Log("warning: re-measured profile identical (possible but unlikely)")
	}
}

func TestOverhead(t *testing.T) {
	p := New(0, 1)
	m := model("m")
	p.Profile(m)
	want := time.Duration(DryRunIterations) * m.Stages.Total()
	if got := p.Overhead(); got != want {
		t.Errorf("Overhead = %v, want %v", got, want)
	}
}

func TestConcurrentProfile(t *testing.T) {
	p := New(0.3, 1)
	var wg sync.WaitGroup
	models := []workload.Model{model("a"), model("b"), model("c")}
	results := make([][]workload.StageTimes, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				results[g] = append(results[g], p.Profile(models[i%3]))
			}
		}(g)
	}
	wg.Wait()
	if p.DryRuns() != 3 {
		t.Errorf("DryRuns = %d, want 3 under concurrency", p.DryRuns())
	}
	// Every goroutine must have observed the same cached profile per model.
	for g := 1; g < 8; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i%len(results[0])] && results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d observed inconsistent profile", g)
			}
		}
	}
}
