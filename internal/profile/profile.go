// Package profile implements Muri's resource profiler (paper §3, §5): it
// measures the per-stage durations of a job by dry-running a few
// iterations, caches profiles per model so resubmitted models skip
// profiling, and can inject multiplicative measurement noise to reproduce
// the Figure 14 sensitivity experiment.
package profile

import (
	"math/rand"
	"sync"
	"time"

	"muri/internal/workload"
)

// DryRunIterations is how many iterations the profiler executes to obtain
// a stable profile. The paper uses "tens of iterations" (§5); the exact
// count only matters for the (negligible) profiling overhead accounting.
const DryRunIterations = 20

// Profiler measures and caches model resource profiles.
type Profiler struct {
	// Noise is the profiling-noise amplitude n_p ∈ [0, 1]: each measured
	// stage duration is multiplied by an independent uniform factor in
	// [1−n_p, 1+n_p] (Figure 14). Zero means exact profiles.
	Noise float64

	mu    sync.Mutex
	rng   *rand.Rand
	cache map[string]workload.StageTimes
	runs  int
}

// New creates a profiler with the given noise amplitude and RNG seed.
func New(noise float64, seed int64) *Profiler {
	if noise < 0 || noise > 1 {
		panic("profile: noise must be in [0, 1]")
	}
	return &Profiler{
		Noise: noise,
		rng:   rand.New(rand.NewSource(seed)),
		cache: make(map[string]workload.StageTimes),
	}
}

// Profile returns the stage-duration profile the scheduler should use for
// a job training model m. The first call per model performs a dry run
// (measuring the true stages, perturbed by noise) and caches the result;
// later calls reuse the cached profile, mirroring the paper: "for the jobs
// training the same models that have been submitted previously, the
// resource profile collected in the past can be reused".
func (p *Profiler) Profile(m workload.Model) workload.StageTimes {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.cache[m.Name]; ok {
		return st
	}
	st := p.measure(m)
	p.cache[m.Name] = st
	return st
}

// measure simulates the dry run: the true stage times perturbed by the
// configured noise. Callers must hold p.mu.
func (p *Profiler) measure(m workload.Model) workload.StageTimes {
	p.runs++
	var out workload.StageTimes
	for r, d := range m.Stages {
		factor := 1.0
		if p.Noise > 0 {
			factor = 1 - p.Noise + 2*p.Noise*p.rng.Float64()
		}
		out[r] = time.Duration(float64(d) * factor)
	}
	return out
}

// DryRuns returns how many dry-run profilings have been performed — one
// per distinct model, regardless of how many jobs were submitted.
func (p *Profiler) DryRuns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runs
}

// Overhead returns the total virtual time spent profiling so far: dry-run
// iterations × the serial iteration time of each profiled model. The paper
// argues this is negligible versus training (~136k iterations per job).
func (p *Profiler) Overhead() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total time.Duration
	for _, st := range p.cache {
		total += time.Duration(DryRunIterations) * st.Total()
	}
	return total
}

// Invalidate drops the cached profile for a model, forcing the next
// Profile call to re-measure — used when the worker monitor reports that
// observed iteration times diverge from the profile.
func (p *Profiler) Invalidate(model string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.cache, model)
}
