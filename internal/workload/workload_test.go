package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResourceString(t *testing.T) {
	cases := map[Resource]string{
		Storage:     "storage",
		CPU:         "cpu",
		GPU:         "gpu",
		Network:     "network",
		Resource(9): "resource(9)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Resource(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestStageNames(t *testing.T) {
	cases := map[Resource]string{
		Storage:     "load data",
		CPU:         "preprocess",
		GPU:         "propagate",
		Network:     "synchronize",
		Resource(7): "stage(7)",
	}
	for r, want := range cases {
		if got := r.StageName(); got != want {
			t.Errorf("Resource(%d).StageName() = %q, want %q", int(r), got, want)
		}
	}
}

func TestStageTimesTotal(t *testing.T) {
	s := StageTimes{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	if got, want := s.Total(), 10*time.Millisecond; got != want {
		t.Errorf("Total() = %v, want %v", got, want)
	}
	var zero StageTimes
	if zero.Total() != 0 {
		t.Errorf("zero.Total() = %v, want 0", zero.Total())
	}
}

func TestStageTimesBottleneck(t *testing.T) {
	cases := []struct {
		s    StageTimes
		want Resource
	}{
		{StageTimes{4, 1, 1, 1}, Storage},
		{StageTimes{1, 4, 1, 1}, CPU},
		{StageTimes{1, 1, 4, 1}, GPU},
		{StageTimes{1, 1, 1, 4}, Network},
		// Ties break toward the earliest stage.
		{StageTimes{2, 2, 2, 2}, Storage},
		{StageTimes{0, 3, 3, 1}, CPU},
	}
	for _, c := range cases {
		if got := c.s.Bottleneck(); got != c.want {
			t.Errorf("%v.Bottleneck() = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestStageTimesFractionsSumToOne(t *testing.T) {
	s := StageTimes{10, 20, 30, 40}
	f := s.Fractions()
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum = %v, want 1", sum)
	}
	if f[Network] != 0.4 {
		t.Errorf("f[Network] = %v, want 0.4", f[Network])
	}
}

func TestStageTimesFractionsZero(t *testing.T) {
	var s StageTimes
	f := s.Fractions()
	for r, v := range f {
		if v != 0 {
			t.Errorf("f[%d] = %v, want 0 for zero profile", r, v)
		}
	}
}

func TestScale(t *testing.T) {
	s := StageTimes{10 * time.Millisecond, 20 * time.Millisecond, 0, 5 * time.Millisecond}
	got := s.Scale(2)
	want := StageTimes{20 * time.Millisecond, 40 * time.Millisecond, 0, 10 * time.Millisecond}
	if got != want {
		t.Errorf("Scale(2) = %v, want %v", got, want)
	}
}

func TestScaleProperty(t *testing.T) {
	// Scaling by a nonnegative factor scales the total by the same factor.
	f := func(a, b, c, d uint16, scale uint8) bool {
		s := StageTimes{
			time.Duration(a) * time.Microsecond,
			time.Duration(b) * time.Microsecond,
			time.Duration(c) * time.Microsecond,
			time.Duration(d) * time.Microsecond,
		}
		k := float64(scale % 8)
		scaled := s.Scale(k)
		want := time.Duration(float64(s.Total()) * k)
		diff := scaled.Total() - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 4 // rounding of each component
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZooBottlenecksMatchTable3(t *testing.T) {
	want := map[string]Resource{
		"resnet18":   Storage,
		"shufflenet": Storage,
		"vgg16":      Network,
		"vgg19":      Network,
		"bert":       GPU,
		"gpt2":       GPU,
		"a2c":        CPU,
		"dqn":        CPU,
	}
	zoo := Zoo()
	if len(zoo) != len(want) {
		t.Fatalf("Zoo() has %d models, want %d", len(zoo), len(want))
	}
	for _, m := range zoo {
		wb, ok := want[m.Name]
		if !ok {
			t.Errorf("unexpected model %q in zoo", m.Name)
			continue
		}
		if got := m.Bottleneck(); got != wb {
			t.Errorf("%s bottleneck = %v, want %v (Table 3)", m.Name, got, wb)
		}
	}
}

func TestZooTable1Percentages(t *testing.T) {
	// The four Table 1 exemplars should reproduce the published stage
	// percentages after renormalizing onto the four serial stages.
	type row struct {
		model string
		want  [NumResources]float64 // raw Table 1 percentages
	}
	rows := []row{
		{"shufflenet", [NumResources]float64{0.60, 0.18, 0.06, 0.02}},
		{"vgg19", [NumResources]float64{0.24, 0.04, 0.26, 0.41}},
		{"gpt2", [NumResources]float64{0.0006, 0.0003, 0.85, 0.28}},
		{"a2c", [NumResources]float64{0, 0.91, 0.03, 0.002}},
	}
	for _, r := range rows {
		m, err := ByName(r.model)
		if err != nil {
			t.Fatal(err)
		}
		var paperTotal float64
		for _, v := range r.want {
			paperTotal += v
		}
		got := m.Stages.Fractions()
		for res := Resource(0); res < NumResources; res++ {
			wantFrac := r.want[res] / paperTotal
			if diff := got[res] - wantFrac; diff > 0.02 || diff < -0.02 {
				t.Errorf("%s %v fraction = %.3f, want %.3f (Table 1)", r.model, res, got[res], wantFrac)
			}
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != "nlp" || m.Dataset != "wikitext" {
		t.Errorf("gpt2 metadata = %q/%q, want nlp/wikitext", m.Family, m.Dataset)
	}
	if _, err := ByName("nosuchmodel"); err == nil {
		t.Error("ByName(nosuchmodel) = nil error, want error")
	}
}

func TestByBottleneckPartitionsZoo(t *testing.T) {
	total := 0
	for r := Resource(0); r < NumResources; r++ {
		ms := ByBottleneck(r)
		if len(ms) != 2 {
			t.Errorf("ByBottleneck(%v) returned %d models, want 2", r, len(ms))
		}
		total += len(ms)
	}
	if total != len(Zoo()) {
		t.Errorf("bottleneck partition covers %d models, want %d", total, len(Zoo()))
	}
}

func TestZooBatchSizesMatchTable3(t *testing.T) {
	want := map[string]int{
		"resnet18": 128, "shufflenet": 128, "vgg16": 16, "vgg19": 16,
		"bert": 4, "gpt2": 4, "a2c": 64, "dqn": 128,
	}
	for _, m := range Zoo() {
		if m.BatchSize != want[m.Name] {
			t.Errorf("%s batch size = %d, want %d", m.Name, m.BatchSize, want[m.Name])
		}
	}
}
