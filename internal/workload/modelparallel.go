package workload

import (
	"fmt"
	"time"
)

// ModelParallelConfig controls how a model's profile is split into
// pipeline (model-parallel) worker profiles, following the sketch in the
// paper's §7 discussion: every worker receives intermediate data from its
// predecessor (network), computes its partition (GPU), and sends
// activations to its successor (network); the first worker instead loads
// and preprocesses input data, and the last worker synchronizes
// gradients.
type ModelParallelConfig struct {
	// Workers is the pipeline depth (≥ 1).
	Workers int
	// ActivationFraction scales the per-boundary activation transfer
	// relative to the model's gradient-synchronization time. The paper
	// does not quantify it; 0.5 is the default (activations are usually
	// smaller than full gradients).
	ActivationFraction float64
}

// ModelParallelWorkers derives per-worker stage-duration vectors for a
// pipeline-parallel training job. With Workers == 1 the original profile
// is returned unchanged. The GPU compute is split evenly across workers;
// storage and CPU preprocessing stay on the first worker; gradient
// synchronization stays on the last; interior pipeline boundaries add
// activation transfers to the network stage of both sides.
//
// Each returned vector is a normal StageTimes, so a model-parallel worker
// schedules and interleaves exactly like a data-parallel job — the
// adjustment the paper describes as sufficient to support model parallel
// training ("interleaving stages in one model parallel training job with
// stages of the same propagation direction in other jobs").
func ModelParallelWorkers(m Model, cfg ModelParallelConfig) ([]StageTimes, error) {
	w := cfg.Workers
	if w < 1 {
		return nil, fmt.Errorf("workload: pipeline needs ≥ 1 worker, got %d", w)
	}
	if w == 1 {
		return []StageTimes{m.Stages}, nil
	}
	frac := cfg.ActivationFraction
	if frac <= 0 {
		frac = 0.5
	}
	computeShare := m.Stages[GPU] / time.Duration(w)
	xfer := time.Duration(float64(m.Stages[Network]) * frac)
	out := make([]StageTimes, w)
	for i := range out {
		var st StageTimes
		st[GPU] = computeShare
		switch {
		case i == 0:
			// Head: input pipeline plus the send to worker 1.
			st[Storage] = m.Stages[Storage]
			st[CPU] = m.Stages[CPU]
			st[Network] = xfer
		case i == w-1:
			// Tail: receive from the previous worker plus gradient sync.
			st[Network] = xfer + m.Stages[Network]
		default:
			// Interior: receive and send activations.
			st[Network] = 2 * xfer
		}
		out[i] = st
	}
	return out, nil
}

// PipelineBottlenecks returns the dominant resource of each pipeline
// worker — useful for verifying that a split shifts bottlenecks the way
// §7 predicts (head storage/CPU-bound, tail network-bound for
// communication-heavy models).
func PipelineBottlenecks(workers []StageTimes) []Resource {
	out := make([]Resource, len(workers))
	for i, st := range workers {
		out[i] = st.Bottleneck()
	}
	return out
}
