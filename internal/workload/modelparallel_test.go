package workload

import (
	"testing"
	"time"
)

func TestModelParallelSingleWorkerIsIdentity(t *testing.T) {
	m, err := ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ModelParallelWorkers(m, ModelParallelConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0] != m.Stages {
		t.Errorf("1-worker split = %v, want original profile", ws)
	}
}

func TestModelParallelInvalidWorkers(t *testing.T) {
	m, _ := ByName("gpt2")
	if _, err := ModelParallelWorkers(m, ModelParallelConfig{Workers: 0}); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestModelParallelConservesCompute(t *testing.T) {
	m, _ := ByName("gpt2")
	for _, w := range []int{2, 3, 4, 8} {
		ws, err := ModelParallelWorkers(m, ModelParallelConfig{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != w {
			t.Fatalf("%d workers: got %d vectors", w, len(ws))
		}
		var gpu, storage, cpu time.Duration
		for _, st := range ws {
			gpu += st[GPU]
			storage += st[Storage]
			cpu += st[CPU]
		}
		// GPU compute conserved within per-worker division rounding.
		if diff := gpu - m.Stages[GPU]; diff > time.Duration(w) || diff < -time.Duration(w)*time.Microsecond*100 {
			if gpu > m.Stages[GPU] || m.Stages[GPU]-gpu > time.Duration(w)*time.Millisecond {
				t.Errorf("%d workers: total GPU %v, want ≈%v", w, gpu, m.Stages[GPU])
			}
		}
		// Input pipeline appears exactly once (on the head worker).
		if storage != m.Stages[Storage] || cpu != m.Stages[CPU] {
			t.Errorf("%d workers: storage/cpu = %v/%v, want %v/%v",
				w, storage, cpu, m.Stages[Storage], m.Stages[CPU])
		}
		if ws[0][Storage] != m.Stages[Storage] {
			t.Errorf("%d workers: head has storage %v, want all of it", w, ws[0][Storage])
		}
	}
}

func TestModelParallelNetworkStructure(t *testing.T) {
	m, _ := ByName("vgg16") // network-heavy model
	ws, err := ModelParallelWorkers(m, ModelParallelConfig{Workers: 4, ActivationFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	xfer := time.Duration(float64(m.Stages[Network]) * 0.5)
	if ws[0][Network] != xfer {
		t.Errorf("head network = %v, want one transfer %v", ws[0][Network], xfer)
	}
	for i := 1; i < 3; i++ {
		if ws[i][Network] != 2*xfer {
			t.Errorf("interior %d network = %v, want 2×%v", i, ws[i][Network], xfer)
		}
	}
	if ws[3][Network] != xfer+m.Stages[Network] {
		t.Errorf("tail network = %v, want transfer + full sync", ws[3][Network])
	}
}

func TestModelParallelBottleneckShifts(t *testing.T) {
	// Splitting a GPU-bound model deep enough shifts the head toward its
	// input pipeline and the tail toward synchronization (§7).
	m, _ := ByName("bert")
	ws, err := ModelParallelWorkers(m, ModelParallelConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	bs := PipelineBottlenecks(ws)
	if bs[len(bs)-1] != Network {
		t.Errorf("tail bottleneck = %v, want network after deep split", bs[len(bs)-1])
	}
	// The interior compute share (80ms/8 = 10ms) must no longer dominate
	// everything: head should not be GPU-bound.
	if bs[0] == GPU {
		t.Errorf("head bottleneck still GPU after 8-way split: %v (profile %v)", bs[0], ws[0])
	}
}

func TestModelParallelWorkersInterleave(t *testing.T) {
	// A deep pipeline's complementary workers should themselves form a
	// good interleaving group: head (storage/cpu) with tail (network) and
	// interiors (gpu).
	m, _ := ByName("gpt2")
	ws, err := ModelParallelWorkers(m, ModelParallelConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// All four worker vectors must be valid StageTimes with nonzero total.
	for i, st := range ws {
		if st.Total() <= 0 {
			t.Errorf("worker %d has empty profile", i)
		}
	}
}
