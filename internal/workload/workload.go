// Package workload defines the resource taxonomy and the model zoo used
// throughout the Muri reproduction.
//
// A deep-learning training job has a staged, iterative computation pattern:
// every iteration reads a batch from storage, preprocesses it on the CPU,
// runs forward/backward propagation on the GPU, and synchronizes gradients
// over the network. Each stage predominantly uses one resource type, which
// is what makes inter-job interleaving possible (paper §2.2).
package workload

import (
	"fmt"
	"time"
)

// Resource identifies one of the k resource types a training stage occupies.
// The numeric order is the canonical stage order within one iteration.
type Resource int

const (
	// Storage is storage IO: reading training samples into workers.
	Storage Resource = iota
	// CPU is host compute: preprocessing and (for RL) simulation.
	CPU
	// GPU is accelerator compute: forward and backward propagation.
	GPU
	// Network is network IO: gradient synchronization between workers.
	Network

	// NumResources is k, the number of resource types (paper uses k=4).
	NumResources = 4
)

// String returns the conventional short name of the resource.
func (r Resource) String() string {
	switch r {
	case Storage:
		return "storage"
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// StageName returns the name of the training stage that occupies r.
func (r Resource) StageName() string {
	switch r {
	case Storage:
		return "load data"
	case CPU:
		return "preprocess"
	case GPU:
		return "propagate"
	case Network:
		return "synchronize"
	default:
		return fmt.Sprintf("stage(%d)", int(r))
	}
}

// StageTimes holds the duration of each stage of one training iteration,
// indexed by Resource. It is the unit of currency of the whole scheduler:
// the profiler produces it, the interleaving model consumes it.
type StageTimes [NumResources]time.Duration

// Total returns the serial duration of one iteration, i.e. the sum of all
// stage times. Jobs that run alone (no interleaving partner) complete one
// iteration per Total.
func (s StageTimes) Total() time.Duration {
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return sum
}

// Bottleneck returns the resource with the largest stage time. Ties break
// toward the earliest stage in canonical order.
func (s StageTimes) Bottleneck() Resource {
	best := Resource(0)
	for r := Resource(1); r < NumResources; r++ {
		if s[r] > s[best] {
			best = r
		}
	}
	return best
}

// Fractions returns each stage's share of the serial iteration time.
// This reproduces the Table 1 "duration percentage" view of a profile.
func (s StageTimes) Fractions() [NumResources]float64 {
	var f [NumResources]float64
	total := s.Total()
	if total == 0 {
		return f
	}
	for r, d := range s {
		f[r] = float64(d) / float64(total)
	}
	return f
}

// Scale returns a copy of s with every stage multiplied by factor.
// Scheduling code uses it to apply contention inflation and profiling noise.
func (s StageTimes) Scale(factor float64) StageTimes {
	var out StageTimes
	for r, d := range s {
		out[r] = time.Duration(float64(d) * factor)
	}
	return out
}

// Model is a named DL model with its per-iteration resource profile.
// The zoo mirrors Table 3 of the paper.
type Model struct {
	// Name is the model identifier, e.g. "shufflenet".
	Name string
	// Family is the broad task type: "cv", "nlp", or "rl".
	Family string
	// Dataset names the training dataset or RL environment.
	Dataset string
	// BatchSize is the per-GPU batch size used when profiling.
	BatchSize int
	// Stages is the measured per-iteration stage-duration profile.
	Stages StageTimes
}

// Bottleneck returns the model's dominant resource type.
func (m Model) Bottleneck() Resource { return m.Stages.Bottleneck() }

// Zoo returns the eight evaluation models of Table 3 with stage profiles
// calibrated so that (a) each model's bottleneck matches the table and
// (b) the duration percentages of the four exemplars match Table 1 closely.
//
// Absolute durations are in the tens-to-hundreds of milliseconds per
// iteration, consistent with V100-class measurements; only the ratios
// matter to the scheduler.
func Zoo() []Model {
	ms := time.Millisecond
	return []Model{
		// Table 1: ShuffleNet — load 60%, preprocess 18%, propagate 6%,
		// synchronize 2% (remainder is idle/overlap; we renormalize onto
		// the four stages keeping the same ratios).
		{Name: "shufflenet", Family: "cv", Dataset: "imagenet", BatchSize: 128,
			Stages: StageTimes{60 * ms, 18 * ms, 6 * ms, 2 * ms}},
		// ResNet18 is storage-bound like ShuffleNet but with heavier GPU use.
		{Name: "resnet18", Family: "cv", Dataset: "imagenet", BatchSize: 128,
			Stages: StageTimes{55 * ms, 15 * ms, 25 * ms, 10 * ms}},
		// Table 1: VGG19 — load 24%, preprocess 4%, propagate 26%,
		// synchronize 41%: network-bound.
		{Name: "vgg19", Family: "cv", Dataset: "imagenet", BatchSize: 16,
			Stages: StageTimes{24 * ms, 4 * ms, 26 * ms, 41 * ms}},
		// VGG16 is slightly lighter than VGG19, same bottleneck.
		{Name: "vgg16", Family: "cv", Dataset: "imagenet", BatchSize: 16,
			Stages: StageTimes{22 * ms, 4 * ms, 24 * ms, 38 * ms}},
		// BERT: GPU-bound with substantial synchronization.
		{Name: "bert", Family: "nlp", Dataset: "wikitext", BatchSize: 4,
			Stages: StageTimes{1 * ms, 2 * ms, 80 * ms, 30 * ms}},
		// Table 1: GPT-2 — load 0.06%, preprocess 0.03%, propagate 85%,
		// synchronize 28% (sums >100% in the paper due to overlap; we use
		// the same ratio structure on a serial basis).
		{Name: "gpt2", Family: "nlp", Dataset: "wikitext", BatchSize: 4,
			Stages: StageTimes{100 * time.Microsecond, 50 * time.Microsecond, 85 * ms, 28 * ms}},
		// Table 1: A2C — preprocess (simulation) 91%, propagate 3%,
		// synchronize 0.2%: CPU-bound.
		{Name: "a2c", Family: "rl", Dataset: "breakout", BatchSize: 64,
			Stages: StageTimes{0, 91 * ms, 3 * ms, 200 * time.Microsecond}},
		// DQN: CPU-bound (replay + environment stepping) with more GPU work.
		{Name: "dqn", Family: "rl", Dataset: "breakout", BatchSize: 128,
			Stages: StageTimes{2 * ms, 70 * ms, 12 * ms, 1 * ms}},
	}
}

// ByName returns the zoo model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown model %q", name)
}

// ByBottleneck returns the zoo models whose dominant resource is r.
func ByBottleneck(r Resource) []Model {
	var out []Model
	for _, m := range Zoo() {
		if m.Bottleneck() == r {
			out = append(out, m)
		}
	}
	return out
}
