package sim

import (
	"testing"

	"muri/internal/engine"
	"muri/internal/explain"
	"muri/internal/job"
	"muri/internal/sched"
)

// TestAttributionSumsToJCT is the provenance property test: with the
// explain builder attached, every completed job's per-cause wait
// attribution must sum exactly — to the nanosecond — to its JCT
// (FinishedAt − Submit), under chaos (crashes, transient faults,
// stragglers) and in both clock modes. No double counting, no gaps.
func TestAttributionSumsToJCT(t *testing.T) {
	tr := chaosTrace()
	for _, eventDriven := range []bool{false, true} {
		name := "interval"
		if eventDriven {
			name = "event-driven"
		}
		t.Run(name, func(t *testing.T) {
			cfg := chaosConfig(chaosPlan(7, 4))
			cfg.EventDriven = eventDriven
			b := explain.NewBuilder()
			cfg.Explain = b
			r := Run(cfg, tr, sched.NewMuriL())
			if r.Faults.Requeues == 0 {
				t.Fatal("chaos plan exercised no faults; the property run is too tame")
			}
			known := make(map[string]bool, len(explain.Causes))
			for _, c := range explain.Causes {
				known[c] = true
			}
			var waited int64
			for _, j := range r.Jobs {
				if j.State != job.Done {
					t.Fatalf("job %d did not finish", j.ID)
				}
				at, ok := b.AttributionOf(int64(j.ID))
				if !ok {
					t.Fatalf("job %d unknown to the explain builder", j.ID)
				}
				if !at.Done {
					t.Errorf("job %d finished but attribution says live", j.ID)
				}
				jct := int64(j.FinishedAt - j.Submit)
				if at.Total != jct {
					t.Errorf("job %d: attributed %d ns ≠ jct %d ns (Δ=%d)",
						j.ID, at.Total, jct, at.Total-jct)
				}
				var sum int64
				for c, v := range at.PerCause {
					if !known[c] {
						t.Errorf("job %d: unknown cause %q", j.ID, c)
					}
					if v < 0 {
						t.Errorf("job %d: negative attribution %d for %q", j.ID, v, c)
					}
					sum += v
				}
				if sum != at.Total {
					t.Errorf("job %d: per-cause sum %d ≠ total %d", j.ID, sum, at.Total)
				}
				if at.PerCause[explain.CauseService] <= 0 {
					t.Errorf("job %d completed with zero service time", j.ID)
				}
				waited += at.Total - at.PerCause[explain.CauseService]
			}
			if waited == 0 {
				t.Error("no job waited at all on an oversubscribed cluster")
			}
		})
	}
}

// TestAttributionSumsToJCTWithoutFaults covers the fault-free path: the
// same exactness property on the default interval clock with no plan.
func TestAttributionSumsToJCTWithoutFaults(t *testing.T) {
	tr := chaosTrace()
	cfg := chaosConfig(nil)
	b := explain.NewBuilder()
	cfg.Explain = b
	r := Run(cfg, tr, sched.NewMuriL())
	for _, j := range r.Jobs {
		at, ok := b.AttributionOf(int64(j.ID))
		if !ok {
			t.Fatalf("job %d unknown to the explain builder", j.ID)
		}
		if jct := int64(j.FinishedAt - j.Submit); at.Total != jct {
			t.Errorf("job %d: attributed %d ns ≠ jct %d ns", j.ID, at.Total, jct)
		}
	}
}

// TestExplainBitIdentity pins the standing guarantee: attaching the
// explain builder (which also enables the engine's cause annotations)
// must not perturb the run — metrics, per-job completions, fault
// counters, and the rendered decision stream all stay byte-identical.
func TestExplainBitIdentity(t *testing.T) {
	tr := chaosTrace()
	run := func(withExplain bool) (string, []string) {
		cfg := chaosConfig(chaosPlan(7, 4))
		var stream []string
		cfg.Observer = func(d engine.Decision) { stream = append(stream, d.String()) }
		if withExplain {
			cfg.Explain = explain.NewBuilder()
		}
		return faultFingerprint(Run(cfg, tr, sched.NewMuriL())), stream
	}
	refFP, refStream := run(false)
	gotFP, gotStream := run(true)
	if gotFP != refFP {
		t.Fatalf("explain builder perturbed the run\nwithout:\n%.2000s\nwith:\n%.2000s", refFP, gotFP)
	}
	if len(gotStream) != len(refStream) {
		t.Fatalf("decision stream length changed: %d without, %d with", len(refStream), len(gotStream))
	}
	for i := range refStream {
		if refStream[i] != gotStream[i] {
			t.Fatalf("decision %d diverged\nwithout: %s\nwith:    %s", i, refStream[i], gotStream[i])
		}
	}
}
