package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"muri/internal/faults"
	"muri/internal/sched"
	"muri/internal/telemetry"
	"muri/internal/trace"
)

// traceRun simulates a 100-job Philly trace under Muri-L with the given
// tracer attached.
func traceRun(tr *telemetry.Tracer) Result {
	cfg := DefaultConfig()
	cfg.Trace = tr
	cfg.RecordTimeline = true
	tc := trace.PhillyConfigs(64)[0]
	tc.Jobs = 100
	return Run(cfg, trace.Generate(tc), sched.NewMuriL())
}

// TestTraceShowsInterleaving is the acceptance criterion for the stage
// tracer: a 100-job run must produce trace JSON in which at least one
// group process holds two spans on distinct resource rows that overlap
// in time — the visual proof that interleaving actually interleaves.
func TestTraceShowsInterleaving(t *testing.T) {
	tr := telemetry.NewTracer(0)
	res := traceRun(tr)
	if res.Summary.Jobs != 100 {
		t.Fatalf("run incomplete: %d/100 jobs", res.Summary.Jobs)
	}
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	f, err := telemetry.ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("export is not valid trace JSON: %v", err)
	}
	procs := f.ProcessNames()
	threads := f.ThreadNames()
	// Scan group processes for a pair of time-overlapping spans on
	// distinct resource rows.
	overlaps := 0
	spans := f.Spans()
	for i, a := range spans {
		if !strings.HasPrefix(procs[a.PID], "group ") {
			continue
		}
		for _, b := range spans[i+1:] {
			if b.PID != a.PID || b.TID == a.TID {
				continue
			}
			if a.TS < b.TS+b.Dur && b.TS < a.TS+a.Dur {
				overlaps++
				if overlaps == 1 {
					ra, rb := threads[[2]int{a.PID, a.TID}], threads[[2]int{b.PID, b.TID}]
					if ra == rb {
						t.Errorf("overlapping rows share resource name %q", ra)
					}
				}
			}
		}
	}
	if overlaps == 0 {
		t.Error("no group process shows overlapping spans on distinct resource rows")
	}
	// Scheduler rounds and decisions must be present too.
	rounds, decisions := 0, 0
	for _, e := range f.Instants() {
		switch e.Cat {
		case "round":
			rounds++
		case "decision":
			decisions++
		}
	}
	if rounds == 0 {
		t.Error("trace holds no scheduler-round instants")
	}
	if decisions == 0 {
		t.Error("trace holds no decision instants")
	}
}

// TestTraceDoesNotPerturbRun pins the determinism guarantee: a run with
// a tracer attached must be bit-identical, in everything the metrics
// depend on, to the same run without one.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	off := traceRun(nil)
	on := traceRun(telemetry.NewTracer(0))
	if fingerprint(off) != fingerprint(on) {
		t.Error("attaching a tracer changed the simulation outcome")
	}
	if len(off.Timeline) != len(on.Timeline) {
		t.Errorf("timeline length differs: off=%d on=%d", len(off.Timeline), len(on.Timeline))
	}
}

// TestTraceDeterministicAcrossRuns pins the export itself: two identical
// runs must produce byte-identical trace JSON.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	a, b := telemetry.NewTracer(0), telemetry.NewTracer(0)
	traceRun(a)
	traceRun(b)
	ja, err := a.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("identical runs exported different trace JSON")
	}
}

// TestTraceFaultInstants checks that machine crashes and repairs from a
// failure plan appear as instant events on the fault row.
func TestTraceFaultInstants(t *testing.T) {
	tr := telemetry.NewTracer(0)
	cfg := DefaultConfig()
	cfg.Trace = tr
	plan := faults.NewPlan(faults.Config{
		Seed:               7,
		Machines:           8,
		MTBF:               6 * time.Hour,
		MTTR:               30 * time.Minute,
		Horizon:            24 * time.Hour,
		TransientFaultProb: 0.1,
	})
	cfg.Faults = plan
	tc := trace.PhillyConfigs(64)[0]
	tc.Jobs = 60
	res := Run(cfg, trace.Generate(tc), sched.NewMuriL())
	if res.Faults.Crashes == 0 {
		t.Skip("plan produced no crashes in horizon; nothing to assert")
	}
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	f, err := telemetry.ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	crashes, repairs := 0, 0
	for _, e := range f.Instants() {
		if e.Cat != "fault" {
			continue
		}
		switch {
		case strings.HasPrefix(e.Name, "crash "):
			crashes++
		case strings.HasPrefix(e.Name, "repair "):
			repairs++
		}
	}
	if crashes != res.Faults.Crashes {
		t.Errorf("trace shows %d crash instants, run counted %d", crashes, res.Faults.Crashes)
	}
	if repairs != res.Faults.Repairs {
		t.Errorf("trace shows %d repair instants, run counted %d", repairs, res.Faults.Repairs)
	}
}
