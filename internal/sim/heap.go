package sim

import (
	"time"

	"muri/internal/metrics"
)

// noCompletion is the heap key for a unit none of whose members can ever
// complete (all done or zero iteration time); it sorts after every real
// completion estimate.
const noCompletion = time.Duration(1<<63 - 1)

// heapKey reads a unit's memoized completion estimate as a heap key. The
// caller must have refreshed the memo (unit.earliest) at the current
// query time; the heap only compares keys it has itself refreshed during
// rebuild or fix, so every resident key is valid.
func heapKey(u *unit) time.Duration {
	if u.estAt < 0 {
		return noCompletion
	}
	return u.estAt
}

// completionHeap is the event-driven clock's index: a binary min-heap of
// the running units ordered by earliest absolute member completion, with
// each unit carrying its own heap position (unit.heapIdx) so a single
// invalidated unit can be re-positioned in O(log n) instead of rescanning
// every unit.
//
// Invariants, maintained lazily at query time (earliestCompletion):
//   - stale means running-set membership changed since the last query;
//     the next query heapifies the current running set from scratch
//     (Rebuilds++) and resets all dirty marks.
//   - while not stale, units whose estimates were invalidated are queued
//     on dirty (each at most once, via unit.dirty); the next query
//     recomputes exactly those keys and sifts each unit up or down from
//     its indexed position (Fixes++ per unit).
//   - peek never recomputes anything: the root's key is the minimum
//     completion estimate, and its VALUE equals what a full linear scan
//     would return — ties in the ordering can permute heap layout but
//     never the minimum itself, so wake-up times are bit-identical to
//     the historical scan.
type completionHeap struct {
	units []*unit
	dirty []*unit
	stale bool
	stats metrics.HeapStats
}

// snapshot returns the counters with Size set to current occupancy.
func (h *completionHeap) snapshot() metrics.HeapStats {
	s := h.stats
	s.Size = len(h.units)
	return s
}

// markStale records a running-set membership change; queued dirty fixes
// are dropped because the coming rebuild refreshes every key anyway.
func (h *completionHeap) markStale() {
	h.stale = true
	h.dirty = h.dirty[:0]
}

// noteDirty queues a unit whose completion estimate was invalidated for
// re-positioning at the next query. No-op while stale (the rebuild will
// refresh it) or when the unit is already queued.
func (h *completionHeap) noteDirty(u *unit) {
	if h.stale || u.dirty {
		return
	}
	u.dirty = true
	h.dirty = append(h.dirty, u)
}

// rebuild reloads the heap from the running set: refresh every estimate
// at time now, then heapify bottom-up in O(n).
func (h *completionHeap) rebuild(units []*unit, now time.Duration) {
	h.units = append(h.units[:0], units...)
	for i, u := range h.units {
		u.heapIdx = i
		u.dirty = false
		u.earliest(now)
	}
	for i := len(h.units)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	h.stale = false
	h.dirty = h.dirty[:0]
	h.stats.Rebuilds++
	if len(h.units) > h.stats.Peak {
		h.stats.Peak = len(h.units)
	}
}

// fix re-positions every queued dirty unit from its indexed slot.
func (h *completionHeap) fix(now time.Duration) {
	for _, u := range h.dirty {
		u.dirty = false
		u.earliest(now)
		if !h.siftUp(u.heapIdx) {
			h.siftDown(u.heapIdx)
		}
		h.stats.Fixes++
	}
	h.dirty = h.dirty[:0]
}

// peek returns the minimum completion estimate, matching the linear
// scan's (value, found) contract.
func (h *completionHeap) peek() (time.Duration, bool) {
	if len(h.units) == 0 {
		return 0, false
	}
	if k := heapKey(h.units[0]); k != noCompletion {
		return k, true
	}
	return 0, false
}

func (h *completionHeap) less(i, j int) bool {
	return heapKey(h.units[i]) < heapKey(h.units[j])
}

func (h *completionHeap) swap(i, j int) {
	h.units[i], h.units[j] = h.units[j], h.units[i]
	h.units[i].heapIdx = i
	h.units[j].heapIdx = j
}

// siftUp bubbles index i toward the root, reporting whether it moved.
func (h *completionHeap) siftUp(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

// siftDown pushes index i toward the leaves.
func (h *completionHeap) siftDown(i int) {
	n := len(h.units)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}
