package sim

import (
	"testing"
	"time"

	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/trace"
	"muri/internal/workload"
)

// quickCfg is a small, fast configuration used throughout the tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Machines = 2
	cfg.GPUsPerMachine = 8
	cfg.Interval = time.Minute
	cfg.RestartOverhead = 5 * time.Second
	return cfg
}

// spec builds a trace spec.
func spec(id int, submit, dur time.Duration, gpus int, model string) trace.Spec {
	return trace.Spec{ID: int64(id), Submit: submit, Duration: dur, GPUs: gpus, Model: model}
}

func TestSingleJobCompletes(t *testing.T) {
	tr := trace.Trace{Name: "t", Specs: []trace.Spec{
		spec(0, 0, 10*time.Minute, 1, "gpt2"),
	}}
	res := Run(quickCfg(), tr, sched.FIFO())
	if len(res.Jobs) != 1 {
		t.Fatalf("completed %d jobs, want 1", len(res.Jobs))
	}
	j := res.Jobs[0]
	if j.State != job.Done {
		t.Fatalf("job state = %v, want done", j.State)
	}
	// JCT should be close to the trace duration (within one interval).
	if j.JCT() < 9*time.Minute || j.JCT() > 12*time.Minute {
		t.Errorf("JCT = %v, want ≈10m", j.JCT())
	}
}

func TestAllJobsComplete(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 60, Seed: 5, MaxGPUs: 8,
		MeanInterarrival: 20 * time.Second,
		MedianDuration:   8 * time.Minute,
		MaxDuration:      30 * time.Minute,
	})
	for _, p := range []sched.Policy{
		sched.FIFO(), sched.SRTF(), sched.SRSF(), sched.Tiresias(),
		sched.Themis(), sched.AntMan{}, sched.NewMuriS(), sched.NewMuriL(),
	} {
		res := Run(quickCfg(), tr, p)
		if len(res.Jobs) != 60 {
			t.Errorf("%s: completed %d jobs, want 60", p.Name(), len(res.Jobs))
		}
		if res.Summary.Makespan <= 0 || res.Summary.AvgJCT <= 0 {
			t.Errorf("%s: degenerate summary %+v", p.Name(), res.Summary)
		}
		for _, j := range res.Jobs {
			if j.FinishedAt < j.Submit {
				t.Errorf("%s: job %d finished before submission", p.Name(), j.ID)
			}
			if j.DoneIterations != j.Iterations {
				t.Errorf("%s: job %d incomplete: %d/%d", p.Name(), j.ID, j.DoneIterations, j.Iterations)
			}
		}
	}
}

func TestMuriBeatsExclusiveBaselineOnMixedLoad(t *testing.T) {
	// Heavily loaded queue of complementary jobs: Muri should deliver a
	// clearly better average JCT and makespan than exclusive SRTF —
	// the core claim of the paper.
	var specs []trace.Spec
	models := []string{"shufflenet", "a2c", "gpt2", "vgg16"}
	for i := 0; i < 64; i++ {
		specs = append(specs, spec(i, 0, 20*time.Minute, 1, models[i%4]))
	}
	tr := trace.Trace{Name: "mixed", Specs: specs}
	cfg := quickCfg()
	srtf := Run(cfg, tr, sched.SRTF())
	muri := Run(cfg, tr, sched.NewMuriS())
	jctSpeedup := metrics.Speedup(srtf.Summary.AvgJCT, muri.Summary.AvgJCT)
	msSpeedup := metrics.Speedup(srtf.Summary.Makespan, muri.Summary.Makespan)
	// With uniform 20-minute jobs the theoretical JCT gain is bounded
	// (~1.25× for 2× aggregate throughput); makespan shows the full win.
	if jctSpeedup < 1.15 {
		t.Errorf("Muri JCT speedup = %.2f×, want > 1.15×", jctSpeedup)
	}
	if msSpeedup < 1.5 {
		t.Errorf("Muri makespan speedup = %.2f×, want > 1.5×", msSpeedup)
	}
}

func TestSRSFOrderingAffectsJCT(t *testing.T) {
	// One long job then many short jobs: FIFO suffers HOL blocking, SRSF
	// does not.
	var specs []trace.Spec
	specs = append(specs, spec(0, 0, 4*time.Hour, 16, "gpt2"))
	for i := 1; i <= 20; i++ {
		specs = append(specs, spec(i, time.Second, 5*time.Minute, 16, "gpt2"))
	}
	tr := trace.Trace{Name: "hol", Specs: specs}
	cfg := quickCfg()
	fifo := Run(cfg, tr, sched.FIFO())
	srsf := Run(cfg, tr, sched.SRSF())
	if srsf.Summary.AvgJCT >= fifo.Summary.AvgJCT {
		t.Errorf("SRSF avg JCT %v should beat FIFO %v under HOL blocking",
			srsf.Summary.AvgJCT, fifo.Summary.AvgJCT)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 80, Seed: 8, MaxGPUs: 16,
		MeanInterarrival: 5 * time.Second,
		MedianDuration:   10 * time.Minute,
		MaxDuration:      time.Hour,
	})
	cfg := quickCfg()
	cfg.SampleEvery = time.Minute
	res := Run(cfg, tr, sched.NewMuriL())
	for _, s := range res.Series {
		for r := 0; r < workload.NumResources; r++ {
			if s.Util[r] < 0 || s.Util[r] > 1.0001 {
				t.Fatalf("utilization out of range at %v: %v", s.Time, s.Util)
			}
		}
		if s.QueueLen < 0 {
			t.Fatalf("negative queue length at %v", s.Time)
		}
	}
}

func TestSeriesSampled(t *testing.T) {
	tr := trace.Trace{Name: "t", Specs: []trace.Spec{
		spec(0, 0, 30*time.Minute, 1, "bert"),
	}}
	cfg := quickCfg()
	cfg.SampleEvery = time.Minute
	res := Run(cfg, tr, sched.FIFO())
	if len(res.Series) < 10 {
		t.Errorf("series has %d samples, want ≥ 10 over a 30m run", len(res.Series))
	}
	// Utilization is cluster-wide: one GPU-bound job on a 16-GPU cluster
	// contributes ≈ (1/16)·0.71. GPU must still dominate the other types.
	s := res.Series[3]
	for r := workload.Resource(0); r < workload.NumResources; r++ {
		if r != workload.GPU && s.Util[r] >= s.Util[workload.GPU] {
			t.Errorf("util[%v] = %v ≥ util[gpu] = %v while bert runs", r, s.Util[r], s.Util[workload.GPU])
		}
	}
	if s.Util[workload.GPU] < 0.03 {
		t.Errorf("GPU util = %v, want ≈ 0.044 (1/16 of cluster × 0.71)", s.Util[workload.GPU])
	}
}

func TestRestartOverheadCountsPreemptions(t *testing.T) {
	// A short job arriving later preempts the long job under SRSF (its
	// remaining time is shorter), forcing at least one restart.
	var specs []trace.Spec
	for i := 0; i < 16; i++ {
		specs = append(specs, spec(i, 0, 3*time.Hour, 2, "bert"))
	}
	for i := 16; i < 32; i++ {
		specs = append(specs, spec(i, 30*time.Minute, 5*time.Minute, 2, "shufflenet"))
	}
	tr := trace.Trace{Name: "t", Specs: specs}
	res := Run(quickCfg(), tr, sched.SRSF())
	if res.Preemptions == 0 {
		t.Error("expected preemptions under SRSF with late short jobs")
	}
	restarts := 0
	for _, j := range res.Jobs {
		restarts += j.Restarts
	}
	if restarts == 0 {
		t.Error("expected at least one job restart")
	}
}

func TestProfilingNoiseDegradesButCompletes(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 50, Seed: 4, MaxGPUs: 8,
		MeanInterarrival: 10 * time.Second,
		MedianDuration:   10 * time.Minute,
		MaxDuration:      time.Hour,
	})
	cfg := quickCfg()
	cfg.Profiler = profile.New(1.0, 99)
	res := Run(cfg, tr, sched.NewMuriL())
	if len(res.Jobs) != 50 {
		t.Errorf("noisy run completed %d jobs, want 50", len(res.Jobs))
	}
}

func TestGPURequestClampedToCluster(t *testing.T) {
	tr := trace.Trace{Name: "t", Specs: []trace.Spec{
		spec(0, 0, 10*time.Minute, 64, "gpt2"), // larger than the 16-GPU cluster
	}}
	res := Run(quickCfg(), tr, sched.FIFO())
	if len(res.Jobs) != 1 {
		t.Fatalf("oversized job did not complete")
	}
	if res.Jobs[0].GPUs != 16 {
		t.Errorf("job GPUs = %d, want clamped to 16", res.Jobs[0].GPUs)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := Run(quickCfg(), trace.Trace{Name: "empty"}, sched.FIFO())
	if len(res.Jobs) != 0 || res.Summary.Jobs != 0 {
		t.Errorf("empty trace produced %+v", res.Summary)
	}
}

func TestMaxJobsTruncation(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{Name: "t", Jobs: 100, Seed: 6,
		MedianDuration: 5 * time.Minute, MaxDuration: 10 * time.Minute, MaxGPUs: 8})
	cfg := quickCfg()
	cfg.MaxJobs = 10
	res := Run(cfg, tr, sched.FIFO())
	if len(res.Jobs) != 10 {
		t.Errorf("completed %d jobs, want 10 with MaxJobs", len(res.Jobs))
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{Name: "t", Jobs: 40, Seed: 11, MaxGPUs: 8,
		MeanInterarrival: 15 * time.Second, MedianDuration: 8 * time.Minute, MaxDuration: 40 * time.Minute})
	a := Run(quickCfg(), tr, sched.NewMuriS())
	b := Run(quickCfg(), tr, sched.NewMuriS())
	if a.Summary != b.Summary {
		t.Errorf("nondeterministic summaries:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestInterleavedGroupSpeedsUpWhenMemberFinishes(t *testing.T) {
	// Two complementary jobs, one much shorter: after the short one
	// completes, the survivor should finish roughly as fast as solo
	// execution would from that point.
	short := spec(0, 0, 5*time.Minute, 1, "a2c")
	long := spec(1, 0, 30*time.Minute, 1, "gpt2")
	tr := trace.Trace{Name: "t", Specs: []trace.Spec{short, long}}
	cfg := quickCfg()
	cfg.Interleave = interleave.Config{} // ideal: no contention
	res := Run(cfg, tr, sched.NewMuriS())
	var longJCT time.Duration
	for _, j := range res.Jobs {
		if j.ID == 1 {
			longJCT = j.JCT()
		}
	}
	// gpt2 interleaved with a2c overlaps nearly perfectly (CPU vs GPU), so
	// the long job should finish within ~25% of its solo duration.
	if longJCT > 40*time.Minute {
		t.Errorf("long job JCT = %v, want < 40m (interleaving ≈ no slowdown)", longJCT)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	tr := trace.Trace{Name: "t"}
	for name, cfg := range map[string]Config{
		"zero machines": {GPUsPerMachine: 8, Interval: time.Minute},
		"zero interval": {Machines: 1, GPUsPerMachine: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Run should panic", name)
				}
			}()
			Run(cfg, tr, sched.FIFO())
		}()
	}
}

func TestAntManSharingRunsMoreConcurrently(t *testing.T) {
	// All jobs identical and GPU-bound: AntMan shares GPUs but pays ~2×
	// slowdown, so its makespan should be no better than FIFO's; with
	// complementary jobs, sharing should help makespan.
	mixed := func() trace.Trace {
		var specs []trace.Spec
		models := []string{"shufflenet", "gpt2"}
		for i := 0; i < 32; i++ {
			specs = append(specs, spec(i, 0, 20*time.Minute, 1, models[i%2]))
		}
		return trace.Trace{Name: "m", Specs: specs}
	}
	cfg := quickCfg()
	fifo := Run(cfg, mixed(), sched.FIFO())
	antman := Run(cfg, mixed(), sched.AntMan{})
	if antman.Summary.Makespan >= fifo.Summary.Makespan {
		t.Errorf("AntMan makespan %v should beat FIFO %v on complementary jobs",
			antman.Summary.Makespan, fifo.Summary.Makespan)
	}
}

func TestEventDrivenScheduling(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 40, Seed: 17, MaxGPUs: 8,
		MeanInterarrival: 30 * time.Second,
		MedianDuration:   10 * time.Minute,
		MaxDuration:      time.Hour,
	})
	interval := Run(quickCfg(), tr, sched.SRSF())
	edCfg := quickCfg()
	edCfg.EventDriven = true
	event := Run(edCfg, tr, sched.SRSF())
	if len(event.Jobs) != 40 {
		t.Fatalf("event-driven completed %d jobs, want 40", len(event.Jobs))
	}
	// Reacting to arrivals and completions immediately should not be
	// meaningfully worse than fixed intervals.
	if float64(event.Summary.AvgJCT) > 1.1*float64(interval.Summary.AvgJCT) {
		t.Errorf("event-driven avg JCT %v much worse than interval-driven %v",
			event.Summary.AvgJCT, interval.Summary.AvgJCT)
	}
}

func TestTimelineRecording(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 20, Seed: 19, MaxGPUs: 8,
		MeanInterarrival: 30 * time.Second,
		MedianDuration:   8 * time.Minute,
		MaxDuration:      30 * time.Minute,
	})
	cfg := quickCfg()
	cfg.RecordTimeline = true
	res := Run(cfg, tr, sched.SRSF())
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline events recorded")
	}
	kinds := make(map[string]int)
	perJob := make(map[job.ID]map[string]int)
	var prev time.Duration
	for _, e := range res.Timeline {
		if e.Time < prev {
			t.Fatalf("timeline out of order: %v after %v", e.Time, prev)
		}
		prev = e.Time
		kinds[e.Kind]++
		if perJob[e.Job] == nil {
			perJob[e.Job] = make(map[string]int)
		}
		perJob[e.Job][e.Kind]++
	}
	if kinds["submit"] != 20 || kinds["start"] != 20 || kinds["finish"] != 20 {
		t.Errorf("event counts = %v, want 20 submits/starts/finishes", kinds)
	}
	for id, k := range perJob {
		if k["submit"] != 1 || k["start"] != 1 || k["finish"] != 1 {
			t.Errorf("job %d events = %v, want exactly one of each lifecycle kind", id, k)
		}
	}
	// Default runs record nothing.
	res = Run(quickCfg(), tr, sched.SRSF())
	if len(res.Timeline) != 0 {
		t.Errorf("timeline recorded without RecordTimeline: %d events", len(res.Timeline))
	}
}

func TestWorkConservationProperty(t *testing.T) {
	// Invariant: every completed job's attained service is at least its
	// exclusive serial run time (sharing slows jobs down, never speeds a
	// single job beyond solo execution), and its JCT is at least the
	// attained service minus queueing... more precisely JCT ≥ serial time.
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 60, Seed: 23, MaxGPUs: 8,
		MeanInterarrival: 15 * time.Second,
		MedianDuration:   8 * time.Minute,
		MaxDuration:      30 * time.Minute,
	})
	for _, p := range []sched.Policy{sched.SRSF(), sched.NewMuriS(), sched.AntMan{}} {
		res := Run(quickCfg(), tr, p)
		for _, j := range res.Jobs {
			serial := time.Duration(j.Iterations) * j.SerialIterTime()
			if j.JCT() < serial-time.Second {
				t.Errorf("%s: job %d JCT %v below serial run time %v",
					p.Name(), j.ID, j.JCT(), serial)
			}
			if j.Attained < serial-time.Second {
				t.Errorf("%s: job %d attained %v below serial %v — lost progress",
					p.Name(), j.ID, j.Attained, serial)
			}
		}
	}
}

func TestStickyMuriInSim(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Name: "t", Jobs: 60, Seed: 29, MaxGPUs: 8,
		MeanInterarrival: 10 * time.Second,
		MedianDuration:   10 * time.Minute,
		MaxDuration:      30 * time.Minute,
	})
	plain := Run(quickCfg(), tr, sched.NewMuriL())
	sticky := sched.NewMuriL()
	sticky.Sticky = true
	stickyRes := Run(quickCfg(), tr, sticky)
	if len(stickyRes.Jobs) != 60 {
		t.Fatalf("sticky run completed %d jobs", len(stickyRes.Jobs))
	}
	if stickyRes.Preemptions > plain.Preemptions {
		t.Errorf("sticky preemptions %d exceed plain %d", stickyRes.Preemptions, plain.Preemptions)
	}
}
