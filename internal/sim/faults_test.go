package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"muri/internal/faults"
	"muri/internal/job"
	"muri/internal/sched"
	"muri/internal/trace"
)

// faultFingerprint extends the metric fingerprint with the failure-model
// counters, so two runs agreeing here agree on every fault applied.
func faultFingerprint(r Result) string {
	return fingerprint(r) + fmt.Sprintf("faults=%+v\n", r.Faults)
}

// chaosPlan is a deliberately hostile plan for a small cluster: frequent
// crashes, slow repairs, transient job faults, and stragglers.
func chaosPlan(seed int64, machines int) *faults.Plan {
	return faults.NewPlan(faults.Config{
		Seed:               seed,
		Machines:           machines,
		MTBF:               6 * time.Hour,
		MTTR:               45 * time.Minute,
		Horizon:            10 * 24 * time.Hour,
		TransientFaultProb: 0.08,
		StragglerFraction:  0.25,
		StragglerSlowdown:  1.3,
	})
}

// chaosConfig is a 4×4 cluster small enough that crashes bite.
func chaosConfig(plan *faults.Plan) Config {
	cfg := DefaultConfig()
	cfg.Machines = 4
	cfg.GPUsPerMachine = 4
	cfg.Faults = plan
	return cfg
}

func chaosTrace() trace.Trace {
	cfg := trace.PhillyConfigs(16)[0]
	cfg.Jobs = 40
	return trace.Generate(cfg)
}

// TestZeroPlanBitIdentity is the ISSUE's compatibility guard: running
// with a nil plan, and with an explicitly empty plan, must produce
// results bit-identical to each other (and hence to a build without the
// failure model, whose code paths are all gated on the plan).
func TestZeroPlanBitIdentity(t *testing.T) {
	tr := determinismTrace()
	for _, eventDriven := range []bool{false, true} {
		name := "interval"
		if eventDriven {
			name = "event-driven"
		}
		t.Run(name, func(t *testing.T) {
			base := DefaultConfig()
			base.EventDriven = eventDriven
			withNil := base
			withNil.Faults = nil
			withEmpty := base
			withEmpty.Faults = faults.NewPlan(faults.Config{Seed: 99, Machines: base.Machines})

			ref := faultFingerprint(Run(withNil, tr, sched.NewMuriL()))
			if got := faultFingerprint(Run(withEmpty, tr, sched.NewMuriL())); got != ref {
				t.Fatalf("empty plan perturbed the run\nnil:\n%.2000s\nempty:\n%.2000s", ref, got)
			}
			var zero Result
			if Run(withNil, tr, sched.NewMuriL()).Faults != zero.Faults {
				t.Fatal("nil-plan run reported nonzero fault stats")
			}
		})
	}
}

// TestFaultPlanDeterministic: a fixed nonzero seed must give two runs
// with identical schedules, metrics, and fault counters.
func TestFaultPlanDeterministic(t *testing.T) {
	tr := chaosTrace()
	run := func() string {
		return faultFingerprint(Run(chaosConfig(chaosPlan(7, 4)), tr, sched.NewMuriL()))
	}
	first := run()
	for rep := 0; rep < 2; rep++ {
		if got := run(); got != first {
			t.Fatalf("faulted run %d diverged\nfirst:\n%.2000s\ngot:\n%.2000s", rep+2, first, got)
		}
	}
}

// TestCrashRecoveryProperty: across many seeds and policies, every run
// under chaos must terminate with all work conserved — each job Done
// with DoneIterations == Iterations — and must actually exercise the
// fault machinery.
func TestCrashRecoveryProperty(t *testing.T) {
	tr := chaosTrace()
	policies := []struct {
		name string
		mk   func() sched.Policy
	}{
		{"muri-l", func() sched.Policy { return sched.NewMuriL() }},
		{"srtf", sched.SRTF},
	}
	sawCrash, sawTransient := false, false
	for seed := int64(1); seed <= 8; seed++ {
		for _, p := range policies {
			cfg := chaosConfig(chaosPlan(seed, 4))
			cfg.EventDriven = seed%2 == 0
			r := Run(cfg, tr, p.mk())
			if r.Summary.Jobs != len(tr.Specs) {
				t.Fatalf("seed=%d %s: %d/%d jobs finished", seed, p.name, r.Summary.Jobs, len(tr.Specs))
			}
			for _, j := range r.Jobs {
				if j.State != job.Done || j.DoneIterations != j.Iterations {
					t.Fatalf("seed=%d %s: job %d lost work: %d/%d iterations, state %v",
						seed, p.name, j.ID, j.DoneIterations, j.Iterations, j.State)
				}
				if j.FinishedAt < j.Submit {
					t.Fatalf("seed=%d %s: job %d finished before submit", seed, p.name, j.ID)
				}
			}
			if r.Faults.Crashes > 0 {
				sawCrash = true
			}
			if r.Faults.Transient > 0 {
				sawTransient = true
			}
			if r.Faults.Repairs > r.Faults.Crashes {
				t.Fatalf("seed=%d %s: %d repairs for %d crashes", seed, p.name, r.Faults.Repairs, r.Faults.Crashes)
			}
		}
	}
	if !sawCrash || !sawTransient {
		t.Fatalf("chaos plans never exercised the model: crashes=%v transient=%v", sawCrash, sawTransient)
	}
}

// TestFaultTimelineEvents: with recording enabled, the timeline carries
// machine-level "fault"/"repair" markers and per-job fault entries, and
// fault counters line up with the recorded events.
func TestFaultTimelineEvents(t *testing.T) {
	tr := chaosTrace()
	cfg := chaosConfig(chaosPlan(3, 4))
	cfg.RecordTimeline = true
	r := Run(cfg, tr, sched.NewMuriL())
	machineFaults, machineRepairs, jobFaults := 0, 0, 0
	for _, e := range r.Timeline {
		machineEvent := strings.HasPrefix(e.Unit, "machine-")
		switch e.Kind {
		case "fault":
			if machineEvent {
				machineFaults++
			} else {
				jobFaults++
			}
		case "repair":
			if !machineEvent {
				t.Errorf("repair event on non-machine unit %q", e.Unit)
			}
			machineRepairs++
		}
	}
	if machineFaults != r.Faults.Crashes {
		t.Errorf("timeline has %d machine faults, stats say %d crashes", machineFaults, r.Faults.Crashes)
	}
	if machineRepairs != r.Faults.Repairs {
		t.Errorf("timeline has %d repairs, stats say %d", machineRepairs, r.Faults.Repairs)
	}
	if jobFaults != r.Faults.Requeues {
		t.Errorf("timeline has %d job fault events, stats say %d requeues", jobFaults, r.Faults.Requeues)
	}
	if r.Faults.Crashes == 0 {
		t.Error("chaos run recorded no crashes")
	}
}

// TestFaultTimelineMachineAttribution: every placement-bearing timeline
// event names the machine(s) it happened on. Machine-level fault/repair
// events carry the crashed machine, crash-induced job faults carry the
// machine whose loss requeued them, and start/restart events carry the
// unit's full allocation; submit and finish events have no placement and
// stay blank.
func TestFaultTimelineMachineAttribution(t *testing.T) {
	tr := chaosTrace()
	cfg := chaosConfig(chaosPlan(3, 4))
	cfg.RecordTimeline = true
	r := Run(cfg, tr, sched.NewMuriL())
	attributed := 0
	for _, e := range r.Timeline {
		switch e.Kind {
		case "submit", "finish":
			if e.Machine != "" {
				t.Errorf("%s event carries machine %q", e.Kind, e.Machine)
			}
			continue
		case "start", "restart", "fault", "repair":
			if e.Machine == "" {
				t.Errorf("%s event at %v (job %d, unit %q) has no machine attribution",
					e.Kind, e.Time, e.Job, e.Unit)
				continue
			}
		}
		attributed++
		for _, m := range strings.Split(e.Machine, ",") {
			if !strings.HasPrefix(m, "machine-") {
				t.Errorf("%s event names malformed machine %q", e.Kind, m)
			}
		}
		// Machine-level events attribute to exactly the machine in Unit.
		if strings.HasPrefix(e.Unit, "machine-") && e.Machine != e.Unit {
			t.Errorf("machine-level %s on %q attributed to %q", e.Kind, e.Unit, e.Machine)
		}
	}
	if attributed == 0 {
		t.Error("no timeline event carries machine attribution")
	}
}
