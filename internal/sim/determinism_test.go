package sim

import (
	"fmt"
	"testing"
	"time"

	"muri/internal/sched"
	"muri/internal/trace"
)

// determinismTrace is a seeded trace small enough to simulate repeatedly
// but large enough to force grouping, queueing, preemption, and the
// parallel edge-construction path.
func determinismTrace() trace.Trace {
	cfg := trace.PhillyConfigs(64)[0]
	cfg.Jobs = 120
	return trace.Generate(cfg)
}

// fingerprint renders everything the paper's metrics depend on: the full
// summary plus every job's identity, finish time, and restart count.
func fingerprint(r Result) string {
	s := fmt.Sprintf("policy=%s summary=%+v preemptions=%d\n", r.Policy, r.Summary, r.Preemptions)
	for _, j := range r.Jobs {
		s += fmt.Sprintf("job=%d finished=%d submit=%d restarts=%d done=%d\n",
			j.ID, j.FinishedAt, j.Submit, j.Restarts, j.DoneIterations)
	}
	return s
}

// TestRunDeterministic guards the concurrency introduced on the
// scheduling path: repeated runs over the same seeded trace must be
// byte-identical in summary and per-job completion times, for both Muri
// variants, with and without event-driven wake-ups. The pair-efficiency
// cache, the edge worker pool, and the simulator's completion-estimate
// memo must all be invisible in the results.
func TestRunDeterministic(t *testing.T) {
	tr := determinismTrace()
	cases := []struct {
		name   string
		cfg    func() Config
		policy func() sched.Policy
	}{
		{"muri-s", DefaultConfig, func() sched.Policy { return sched.NewMuriS() }},
		{"muri-l", DefaultConfig, func() sched.Policy { return sched.NewMuriL() }},
		{"muri-l-sticky", DefaultConfig, func() sched.Policy {
			p := sched.NewMuriL()
			p.Sticky = true
			return p
		}},
		{"muri-l-event-driven", func() Config {
			cfg := DefaultConfig()
			cfg.EventDriven = true
			return cfg
		}, func() sched.Policy { return sched.NewMuriL() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first := fingerprint(Run(tc.cfg(), tr, tc.policy()))
			for rep := 0; rep < 2; rep++ {
				if got := fingerprint(Run(tc.cfg(), tr, tc.policy())); got != first {
					t.Fatalf("run %d diverged from first run\nfirst:\n%.2000s\ngot:\n%.2000s",
						rep+2, first, got)
				}
			}
		})
	}
}

// TestRunDeterministicAcrossWorkerCounts pins the schedule against the
// serial edge-construction path: a run whose grouping graph is built by
// one worker must match one built by many.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := determinismTrace()
	run := func(workers int) string {
		p := sched.NewMuriS()
		p.Grouping.EdgeWorkers = workers
		return fingerprint(Run(DefaultConfig(), tr, p))
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != serial {
			t.Fatalf("EdgeWorkers=%d schedule differs from serial\nserial:\n%.2000s\ngot:\n%.2000s",
				workers, serial, got)
		}
	}
}

// TestEventDrivenCompletionEstimates cross-checks the memoized
// earliestCompletion against job completions: with event-driven wake-ups
// and a long interval, completions must still be observed promptly (the
// memo must not let the simulator sleep through a finish).
func TestEventDrivenCompletionEstimates(t *testing.T) {
	tr := determinismTrace()
	ev := DefaultConfig()
	ev.EventDriven = true
	ev.Interval = 2 * time.Hour // wake-ups come almost entirely from events
	got := Run(ev, tr, sched.NewMuriL())
	if got.Summary.Jobs != len(tr.Specs) {
		t.Fatalf("event-driven run incomplete: %d/%d jobs", got.Summary.Jobs, len(tr.Specs))
	}
	for _, j := range got.Jobs {
		if j.FinishedAt < j.Submit {
			t.Fatalf("job %d finished before submit", j.ID)
		}
	}
}
