package sim

import (
	"math/rand"
	"testing"
	"time"

	"muri/internal/job"
	"muri/internal/sched"
	"muri/internal/trace"
	"muri/internal/workload"
)

// heapTestUnit fabricates a running unit with the given per-member
// remaining iterations and iteration times.
func heapTestUnit(rng *rand.Rand, id int) *unit {
	members := 1 + rng.Intn(3)
	u := &unit{
		readyAt:  time.Duration(rng.Intn(500)) * time.Millisecond,
		iterTime: make([]time.Duration, members),
		carry:    make([]float64, members),
	}
	for i := 0; i < members; i++ {
		m := workload.Zoo()[rng.Intn(len(workload.Zoo()))]
		j := job.New(job.ID(100*id+i), m, 1, int64(1+rng.Intn(50)), 0)
		j.State = job.Running
		u.spec.Jobs = append(u.spec.Jobs, j)
		u.iterTime[i] = time.Duration(1+rng.Intn(200)) * time.Millisecond
		u.carry[i] = rng.Float64()
	}
	return u
}

// linearEarliest is the reference implementation the heap replaced: a
// full scan of unit.earliest over the running set.
func linearEarliest(units []*unit, now time.Duration) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, u := range units {
		if at, ok := u.earliest(now); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// TestCompletionHeapMatchesLinearScan drives the heap through random
// sequences of membership changes (stale → rebuild), estimate
// invalidations (dirty → fix), and clock advances, checking after every
// query that peek equals the linear scan — the bit-identical wake-up
// guarantee of DESIGN.md §6.
func TestCompletionHeapMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		var pool []*unit
		for i := 0; i < 2+rng.Intn(30); i++ {
			pool = append(pool, heapTestUnit(rng, i))
		}
		running := append([]*unit(nil), pool...)
		var h completionHeap
		h.markStale()
		now := time.Duration(0)
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // membership change: drop or restore a random unit
				if len(running) > 1 && rng.Intn(2) == 0 {
					i := rng.Intn(len(running))
					running = append(running[:i], running[i+1:]...)
				} else {
					// Restore a pool unit not currently running: s.running
					// never holds the same unit twice.
					in := make(map[*unit]bool, len(running))
					for _, u := range running {
						in[u] = true
					}
					for _, u := range pool {
						if !in[u] {
							running = append(running, u)
							break
						}
					}
				}
				h.markStale()
			case 1: // mutate a unit's progress, as credit/retime would
				if len(running) > 0 {
					u := running[rng.Intn(len(running))]
					i := rng.Intn(len(u.carry))
					u.carry[i] = rng.Float64()
					u.iterTime[i] = time.Duration(rng.Intn(300)) * time.Millisecond
					u.invalidate()
					h.noteDirty(u)
				}
			case 2: // finish a member, then invalidate
				if len(running) > 0 {
					u := running[rng.Intn(len(running))]
					u.spec.Jobs[rng.Intn(len(u.spec.Jobs))].State = job.Done
					u.invalidate()
					h.noteDirty(u)
				}
			case 3: // advance the clock; every unit re-observes it, as the
				// simulator's credit pass does
				now += time.Duration(rng.Intn(100)) * time.Millisecond
				for _, u := range running {
					u.invalidate()
					h.noteDirty(u)
				}
			}
			if h.stale {
				h.rebuild(running, now)
			} else {
				h.fix(now)
			}
			gotAt, gotOK := h.peek()
			wantAt, wantOK := linearEarliest(running, now)
			if gotAt != wantAt || gotOK != wantOK {
				t.Fatalf("trial %d step %d: heap peek (%v,%v) != linear scan (%v,%v)",
					trial, step, gotAt, gotOK, wantAt, wantOK)
			}
		}
		if h.stats.Rebuilds == 0 || h.stats.Fixes == 0 {
			t.Fatalf("trial %d: heap paths unexercised: %+v", trial, h.stats)
		}
	}
}

// TestHeapStatsExposure checks the Result wiring: event-driven runs
// report heap activity, fixed-interval runs report none (the heap is
// never built).
func TestHeapStatsExposure(t *testing.T) {
	cfg := trace.PhillyConfigs(64)[0]
	cfg.Jobs = 60
	tr := trace.Generate(cfg)

	ev := DefaultConfig()
	ev.EventDriven = true
	r := Run(ev, tr, sched.NewMuriL())
	if r.Heap.Rebuilds == 0 || r.Heap.Peak == 0 {
		t.Fatalf("event-driven run reported no heap activity: %+v", r.Heap)
	}

	fixed := Run(DefaultConfig(), tr, sched.NewMuriL())
	if h := fixed.Heap; h.Rebuilds != 0 || h.Fixes != 0 || h.Peak != 0 || h.Size != 0 {
		t.Fatalf("fixed-interval run built the heap: %+v", h)
	}
}
