package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"muri/internal/sched"
)

// goldenHashes pins the exact simulator output — SHA-256 over the full
// metric fingerprint (summary, per-job finish times, restarts, and fault
// counters) — for a spread of policies and configurations. The values
// were captured on the pre-engine-refactor tree; the engine extraction
// must keep every one of them bit-identical. If a deliberate behavior
// change ever lands, blank the affected entries and re-run the test —
// it prints the fresh hash for any unset entry.
var goldenHashes = map[string]string{
	"fifo":               "f3ea43cda19905f5d80df32624d57fa306d7cf13ac1c5ed6f33d226d3e28cb36",
	"srtf":               "72339059300d3ebd81342183d3002a2eca2782c95f9a4db7f736e2f0ab4d4267",
	"antman":             "e8a4719c82e55dd5c5595867828cf6d927d0dea59c1575672014dcb513648af7",
	"muri-s":             "bef2371d89bdf86aa90e9c890b4ff0743673097be645b854cfcef996008f2cd7",
	"muri-l":             "de8db3578ad4ec4f3e2eea461f5dc391766896ddf818324ba8b58aec630e868c",
	"muri-l-event":       "7c9191ff7285c589feb7056cdf4d8139bd9f4ec1b359fc9dbeca7b0a3d0189e7",
	"muri-l-chaos":       "983f993efe059d4742bbdd5aa07208bc7ab9315047eedd412e91f82b9d186b12",
	"srtf-chaos-event":   "492c28d3ffa14aeddbaa9e46266c4f1dd85229012fb4fb92b63ca636075d4b2a",
	"muri-l-chaos-event": "2c9ca8308c223fe75131b30b476b2bd1c2067a35d387a5c0bfafc0f6abae7e9b",
}

// goldenCases builds each pinned configuration fresh (policies carry
// state, so they cannot be shared across runs).
func goldenCases() map[string]func() Result {
	dt := determinismTrace()
	ct := chaosTrace()
	event := func(cfg Config) Config { cfg.EventDriven = true; return cfg }
	return map[string]func() Result{
		"fifo":   func() Result { return Run(DefaultConfig(), dt, sched.FIFO()) },
		"srtf":   func() Result { return Run(DefaultConfig(), dt, sched.SRTF()) },
		"antman": func() Result { return Run(DefaultConfig(), dt, sched.AntMan{}) },
		"muri-s": func() Result { return Run(DefaultConfig(), dt, sched.NewMuriS()) },
		"muri-l": func() Result { return Run(DefaultConfig(), dt, sched.NewMuriL()) },
		"muri-l-event": func() Result {
			return Run(event(DefaultConfig()), dt, sched.NewMuriL())
		},
		"muri-l-chaos": func() Result {
			return Run(chaosConfig(chaosPlan(7, 4)), ct, sched.NewMuriL())
		},
		"srtf-chaos-event": func() Result {
			return Run(event(chaosConfig(chaosPlan(4, 4))), ct, sched.SRTF())
		},
		"muri-l-chaos-event": func() Result {
			return Run(event(chaosConfig(chaosPlan(7, 4))), ct, sched.NewMuriL())
		},
	}
}

func goldenHash(r Result) string {
	sum := sha256.Sum256([]byte(faultFingerprint(r)))
	return hex.EncodeToString(sum[:])
}

// TestGoldenResults replays every pinned configuration and compares the
// fingerprint hash against the recorded golden value.
func TestGoldenResults(t *testing.T) {
	for name, run := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got := goldenHash(run())
			want := goldenHashes[name]
			if want == "" {
				t.Logf("golden[%q] = %q (unset; record this value)", name, got)
				t.Fail()
				return
			}
			if got != want {
				t.Errorf("result diverged from pre-refactor golden value\n got %s\nwant %s", got, want)
			}
		})
	}
}
