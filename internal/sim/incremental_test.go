package sim

import (
	"testing"

	"muri/internal/sched"
	"muri/internal/trace"
)

// quantMuriL is Muri-L with quantized estimates but no planner — the
// reference the incremental runs must reproduce exactly.
func quantMuriL() *sched.Muri {
	p := sched.NewMuriL()
	p.QuantizeEstimates = true
	return p
}

// incrementalTrace is a seeded busy trace: arrivals, completions, and
// (with the chaos plan) faults and preemptions all mark buckets dirty.
func incrementalTrace(seed int64) trace.Trace {
	cfg := trace.PhillyConfigs(64)[0]
	cfg.Jobs = 100
	cfg.Seed = seed
	return trace.Generate(cfg)
}

// TestIncrementalBitIdenticalEndToEnd is the tentpole's end-to-end
// correctness property: over multi-seed arrival/completion/fault
// scripts, Muri-L with the incremental planner must produce results
// bit-identical to full re-matching under the identical (quantized)
// configuration — per-job finish times, restarts, and fault counters
// included. Replayed proposal streams run through the live acceptance
// loop and any divergence falls back to fresh matching, so nothing the
// cache does may show up in the schedule.
func TestIncrementalBitIdenticalEndToEnd(t *testing.T) {
	for _, seed := range []int64{1, 2, 5} {
		tr := incrementalTrace(seed)
		cfg := DefaultConfig()
		cfg.EventDriven = true
		cfg.Faults = chaosPlan(seed, cfg.Machines)

		full := faultFingerprint(Run(cfg, tr, quantMuriL()))
		inc := quantMuriL()
		inc.EnableIncremental()
		if got := faultFingerprint(Run(cfg, tr, inc)); got != full {
			t.Fatalf("seed %d: incremental run diverged from full re-matching\nfull:\n%.2000s\ngot:\n%.2000s",
				seed, full, got)
		}
		if st := inc.PlanStats(); st.ReplaySweeps == 0 {
			t.Errorf("seed %d: replay never engaged (fresh=%d)", seed, st.FreshSweeps)
		}
	}
}

// TestShardedIncrementalBitIdenticalEndToEnd is the same property with
// sharding on: muri-l-scale (sharded + incremental) against the same
// sharded configuration without a planner. Also pins dirty-mark
// forwarding: the engine's decision stream must reach the planner.
func TestShardedIncrementalBitIdenticalEndToEnd(t *testing.T) {
	for _, seed := range []int64{2, 7} {
		tr := incrementalTrace(seed)
		cfg := DefaultConfig()
		cfg.EventDriven = true
		cfg.Faults = chaosPlan(seed, cfg.Machines)

		ref := quantMuriL()
		ref.Grouping.Shards = 4
		full := faultFingerprint(Run(cfg, tr, ref))

		inc := sched.NewMuriLScale(4)
		inc.Label = ref.Name() // fingerprint includes the policy name
		if got := faultFingerprint(Run(cfg, tr, inc)); got != full {
			t.Fatalf("seed %d: sharded incremental run diverged from sharded full re-matching\nfull:\n%.2000s\ngot:\n%.2000s",
				seed, full, got)
		}
		if st := inc.PlanStats(); st.DirtyMarks == 0 {
			t.Errorf("seed %d: engine decision stream never reached the planner", seed)
		}
	}
}
