// Package sim is the trace-driven cluster simulator (paper §6.1). It
// replays a job trace against a scheduling policy on a modeled GPU
// cluster, advancing virtual time between fixed scheduling intervals (the
// paper uses six minutes) and tracking job progress, preemption/restart
// overhead, and the detailed metrics of Figure 8.
//
// The paper validates this style of simulator against its 64-GPU testbed
// with <3% metric error; this reproduction uses the simulator for both
// the "testbed" tables (4, 5) and the large-trace figures (9–14).
package sim

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"muri/internal/cluster"
	"muri/internal/engine"
	"muri/internal/explain"
	"muri/internal/faults"
	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/telemetry"
	"muri/internal/trace"
	"muri/internal/wal"
	"muri/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Machines and GPUsPerMachine define the cluster (default 8×8, the
	// paper's testbed).
	Machines, GPUsPerMachine int
	// Interval is the scheduling interval (default 6 minutes, §5).
	Interval time.Duration
	// RestartOverhead is the virtual time lost when a job is started or
	// restarted in a new unit (preemption, checkpoint reload).
	RestartOverhead time.Duration
	// Interleave is the contention model used to execute shared units.
	Interleave interleave.Config
	// Profiler supplies (possibly noisy) profiles; nil means exact.
	Profiler *profile.Profiler
	// Estimator, when non-nil, replaces the oracle-profile assumption:
	// scheduler-visible profiles are refreshed from the estimator's
	// current beliefs before every round, and completions feed back into
	// it through the engine (which re-profiles past its deviation
	// threshold). The oracle estimator reproduces an estimator-free run
	// bit-identically (pinned by the golden tests); the online estimator
	// schedules on learned durations.
	Estimator profile.Estimator
	// Drift, when non-nil, deterministically perturbs each job's true
	// stage durations away from the model zoo at construction — the
	// profile-drift model. The scheduler's zoo-derived beliefs go stale;
	// only the oracle estimator (or learning from completions) sees the
	// drifted truth.
	Drift *profile.Drift
	// SampleEvery is the metrics sampling period; zero disables the
	// detailed time series.
	SampleEvery time.Duration
	// MaxJobs truncates the trace for quick runs; zero runs everything.
	MaxJobs int
	// StarvationPatience is how many scheduling rounds a unit may be
	// bypassed (skipped for capacity while a lower-priority unit was
	// admitted) before it is boosted to the front of the admission order.
	// Without it, a large multi-GPU job can starve indefinitely behind a
	// stream of small jobs. Zero uses the default of 5 rounds.
	StarvationPatience int
	// EventDriven additionally reschedules at job arrivals and
	// completions (the paper's §3: "periodically invoked on events like
	// job arrival and job completion"), instead of only at fixed
	// intervals (§5 prototype behavior, the default).
	EventDriven bool
	// RecordTimeline captures per-job lifecycle events (start, restart,
	// finish) into Result.Timeline for post-hoc analysis.
	RecordTimeline bool
	// Faults, when non-nil and non-empty, injects the deterministic
	// failure plan: seeded machine crash/repair events preempt and
	// requeue affected jobs against degraded capacity, straggler
	// machines slow their units, and transient job faults push single
	// members back to the queue. A nil or empty plan leaves the
	// simulation bit-identical to a build without the failure model.
	Faults *faults.Plan
	// Observer, when non-nil, receives every decision of the shared
	// scheduling engine as it is issued (the parity harness compares
	// this stream against the live daemon's).
	Observer func(engine.Decision)
	// Trace, when non-nil, records the run into a Chrome trace-event
	// tracer (telemetry.Tracer): per-unit per-resource stage spans,
	// scheduler rounds and decisions, and fault/repair instants, all on
	// the virtual clock. Nil leaves the run bit-identical to an
	// uninstrumented build.
	Trace *telemetry.Tracer
	// TraceStageCycles bounds the stage-level span emission per unit
	// launch: the first N group iterations are rendered (enough to see
	// the interleaving pattern without recording every iteration of a
	// multi-day job). Zero uses the default of 4.
	TraceStageCycles int
	// Explain, when non-nil, collects decision provenance: the simulator
	// synthesizes the same record stream the live daemon appends to its
	// WAL (admissions, decisions, fault-ledger mutations, completions,
	// cause annotations) and folds it through this builder, so per-job
	// lifecycle spans and exact wait-time attribution are available for
	// simulated runs too. It also enables the engine's cause annotations
	// (which never enter Decision.String(), so the decision stream — and
	// every golden pinned to it — is bit-identical with or without it).
	Explain *explain.Builder
	// Debug, when non-nil, receives a one-line summary of every
	// scheduling decision (useful for diagnosing placement behaviour).
	Debug io.Writer
}

// DefaultConfig returns the paper's testbed configuration.
func DefaultConfig() Config {
	return Config{
		Machines:        8,
		GPUsPerMachine:  8,
		Interval:        6 * time.Minute,
		RestartOverhead: 30 * time.Second,
		Interleave:      interleave.DefaultConfig,
	}
}

// Result is the outcome of one simulation run.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Summary holds the end-of-run metrics.
	Summary metrics.Summary
	// Series is the detailed time series (empty unless SampleEvery set).
	Series metrics.Series
	// Jobs are the completed jobs with full progress history.
	Jobs []*job.Job
	// Preemptions counts unit restarts across the run.
	Preemptions int
	// Timeline holds per-job lifecycle events (with RecordTimeline).
	Timeline []Event
	// Heap reports the event-driven completion heap's counters; all zero
	// on fixed-interval runs, which never build the heap.
	Heap metrics.HeapStats
	// Faults reports failure-plan activity; all zero without a plan.
	Faults metrics.FaultStats
	// Engine reports the shared scheduling engine's decision counters.
	Engine metrics.EngineStats
}

// Event is one job-lifecycle event in a run's timeline. The JSON tags
// define the `murisim -timeline-out` JSONL schema.
type Event struct {
	// Time is the virtual timestamp.
	Time time.Duration `json:"t"`
	// Kind is "submit", "start", "restart", "finish", "fault", or
	// "repair". Fault events carry the affected job (zero for a machine
	// crash) and repair events mark a machine returning to service.
	Kind string `json:"kind"`
	// Job identifies the job. It is kept even when zero so a JSONL dump
	// can tell job 0 apart from machine-level fault/repair events, which
	// carry a machine-name Unit instead.
	Job job.ID `json:"job"`
	// Unit names the unit the job runs in (member IDs), empty on submit
	// and finish events; on machine-level fault/repair events it names
	// the machine ("machine-3").
	Unit string `json:"unit,omitempty"`
	// Machine attributes the event to cluster machines: the crashed or
	// repaired machine on machine-level fault/repair events, the machine
	// whose crash requeued the job on crash-induced job faults, and the
	// (comma-joined) machines hosting the unit on start, restart, and
	// transient-fault events. Empty on submit and finish events, which
	// have no placement.
	Machine string `json:"machine,omitempty"`
}

// unit is a placed schedulable unit at run time.
type unit struct {
	spec  sched.Unit
	alloc cluster.Alloc
	// readyAt is when execution (re)starts after restart overhead.
	readyAt time.Duration
	// iterTime is the per-member iteration duration: interleaved units
	// share one group iteration time; space-shared and exclusive units
	// have per-member times.
	iterTime []time.Duration
	// carry is the fractional-iteration progress per member.
	carry []float64
	// estAt memoizes the earliest absolute completion among live members
	// (-1 when none can complete). It is valid only while estValid holds,
	// i.e. until the next progress credit, retime, or member change —
	// any of which must call invalidate(). While the cache is valid the
	// unit's state is frozen (typically restart overhead still pending),
	// so the memo is bit-identical to a fresh scan at any query time.
	estAt    time.Duration
	estValid bool
	// heapIdx is the unit's slot in the event-driven completion heap
	// (meaningful only while the heap holds the unit); dirty marks it as
	// queued for a heap fix after an estimate invalidation.
	heapIdx int
	dirty   bool
	// slow is the straggler slowdown baked into iterTime (> 1 when the
	// unit landed on a slow machine of the fault plan); retime reapplies
	// it after completions shrink the unit. Zero without a fault plan.
	slow float64
}

// invalidate drops the unit's memoized completion estimate. Every
// mutation of carry, iterTime, readyAt, or membership goes through here.
func (u *unit) invalidate() { u.estValid = false }

// earliest returns the soonest absolute completion among the unit's live
// members as of query time now, memoized until the unit next changes.
// Member order and strict-< selection mirror the historical full rescan,
// so ties break identically.
func (u *unit) earliest(now time.Duration) (time.Duration, bool) {
	if !u.estValid {
		start := now
		if u.readyAt > start {
			start = u.readyAt
		}
		u.estAt = -1
		for i, j := range u.spec.Jobs {
			if j.State == job.Done || u.iterTime[i] <= 0 {
				continue
			}
			remaining := float64(j.RemainingIterations()) - u.carry[i]
			if remaining < 0 {
				remaining = 0
			}
			at := start + time.Duration(remaining*float64(u.iterTime[i]))
			if u.estAt < 0 || at < u.estAt {
				u.estAt = at
			}
		}
		u.estValid = true
	}
	return u.estAt, u.estAt >= 0
}

// memberIterTimes computes each member's effective iteration time under
// the unit's sharing mode.
func memberIterTimes(u sched.Unit, cfg interleave.Config) []time.Duration {
	switch u.Mode {
	case sched.Exclusive:
		return []time.Duration{u.Jobs[0].SerialIterTime()}
	case sched.Interleaved:
		times := make([]workload.StageTimes, len(u.Jobs))
		for i, j := range u.Jobs {
			times[i] = j.TrueProfile
		}
		T := interleave.IterationTime(cfg.Inflate(times))
		out := make([]time.Duration, len(u.Jobs))
		for i := range out {
			out[i] = T
		}
		return out
	case sched.SpaceShared:
		out := make([]time.Duration, len(u.Jobs))
		for i, j := range u.Jobs {
			others := make([]workload.StageTimes, 0, len(u.Jobs)-1)
			for k, o := range u.Jobs {
				if k != i {
					others = append(others, o.TrueProfile)
				}
			}
			slow := sched.SpaceSharedSlowdown(j.TrueProfile, others)
			out[i] = time.Duration(float64(j.SerialIterTime()) * slow)
		}
		return out
	default:
		panic("sim: unknown unit mode")
	}
}

// sim is the run state.
type sim struct {
	cfg     Config
	cluster *cluster.Cluster
	policy  sched.Policy
	// eng is the shared scheduling decision core: policy invocation,
	// admission, anti-starvation, placement memory, and the decision
	// stream all live there; the simulator only executes the outcome
	// against virtual time.
	eng *engine.Engine

	now     time.Duration
	pending []*job.Job // submitted, not running
	arrived int        // index into all (sorted by submit)
	all     []*job.Job
	running []*unit
	done    []*job.Job

	series      metrics.Series
	nextSample  time.Duration
	preemptions int
	timeline    []Event
	// heap indexes running units by earliest completion for the
	// event-driven clock; unused (never built) on fixed-interval runs.
	heap completionHeap

	// Failure-model state; all nil/zero when the plan is nil or empty.
	plan *faults.Plan
	// faultIdx is the cursor into plan.Events.
	faultIdx int
	// drawn records the highest execution attempt (job.Restarts value)
	// for which a transient-fault draw was already taken, so preemptive
	// policies re-placing a running job every interval draw once per
	// attempt, not once per interval.
	drawn map[job.ID]int
	// jobFaults are scheduled transient faults not yet due. An entry is
	// stale — and skipped — once its job finished or restarted into a
	// newer attempt.
	jobFaults []jobFault
	fstats    metrics.FaultStats

	// explFaults counts per-job transient faults for the synthesized
	// fault-ledger records (nil unless cfg.Explain is set).
	explFaults map[job.ID]int
}

// jobFault is one scheduled transient job fault.
type jobFault struct {
	at      time.Duration
	job     job.ID
	attempt int
}

// invalidateUnit drops a unit's memoized completion estimate and, on
// event-driven runs, queues it for a heap fix at the next clock query.
func (s *sim) invalidateUnit(u *unit) {
	u.invalidate()
	if s.cfg.EventDriven {
		s.heap.noteDirty(u)
	}
}

// record appends a timeline event when recording is enabled.
func (s *sim) record(kind string, id job.ID, unit, machine string) {
	if s.cfg.RecordTimeline {
		s.timeline = append(s.timeline, Event{Time: s.now, Kind: kind, Job: id, Unit: unit, Machine: machine})
	}
}

// Run simulates the trace under the policy and returns the result.
func Run(cfg Config, tr trace.Trace, policy sched.Policy) Result {
	if cfg.Machines <= 0 || cfg.GPUsPerMachine <= 0 {
		panic("sim: cluster dimensions must be positive")
	}
	if cfg.Interval <= 0 {
		panic("sim: scheduling interval must be positive")
	}
	if cfg.StarvationPatience <= 0 {
		cfg.StarvationPatience = 5
	}
	s := &sim{
		cfg:     cfg,
		cluster: cluster.New(cfg.Machines, cfg.GPUsPerMachine),
		policy:  policy,
	}
	// With provenance enabled, tee the decision stream into the explain
	// builder as synthesized WAL records (the exact shape the daemon
	// appends) and hook the engine's cause annotations.
	observer := cfg.Observer
	var provenance func(engine.CauseEvent)
	if cfg.Explain != nil {
		s.explFaults = make(map[job.ID]int)
		inner := observer
		observer = func(d engine.Decision) {
			if inner != nil {
				inner(d)
			}
			s.explRecord(&wal.Record{Kind: wal.KindDecision, Decision: wal.FromDecision(d)})
		}
		provenance = func(ev engine.CauseEvent) {
			s.explRecord(&wal.Record{Kind: wal.KindCause, Cause: &wal.CauseRecord{
				Job: int64(ev.Job), Cause: ev.Cause, Detail: ev.Detail, Note: ev.Note}})
		}
	}
	s.eng = engine.New(engine.Config{
		Policy:             policy,
		Style:              engine.ReplaceAll,
		StarvationPatience: cfg.StarvationPatience,
		// The simulator's failure model retries from checkpoint
		// indefinitely: no backoff, no dead-letter budget.
		Retry:      engine.RetryPolicy{Budget: -1},
		Observer:   observer,
		Provenance: provenance,
		Tracer:     cfg.Trace,
		Now:        func() time.Duration { return s.now },
		Estimator:  cfg.Estimator,
	})
	if !cfg.Faults.Empty() {
		s.plan = cfg.Faults
		s.drawn = make(map[job.ID]int)
	}
	s.buildJobs(tr)
	s.loop()
	if cfg.Explain != nil && cfg.Trace != nil {
		// Render the folded lifecycle spans as duration events on the
		// run's Chrome trace (one thread per job under an "explain"
		// process), alongside the engine's decision instants.
		cfg.Explain.EmitSpans(cfg.Trace)
	}
	return Result{
		Policy:      policy.Name(),
		Summary:     metrics.Summarize(s.done),
		Series:      s.series,
		Jobs:        s.done,
		Preemptions: s.preemptions,
		Timeline:    s.timeline,
		Heap:        s.heap.snapshot(),
		Faults:      s.fstats,
		Engine:      s.eng.Stats(),
	}
}

// buildJobs materializes jobs from trace specs: iteration counts derive
// from the trace duration and the model's serial iteration time, exactly
// as the paper does ("the number of training iterations is calculated
// according to the duration of the jobs and the average time of one
// iteration", §6.1).
func (s *sim) buildJobs(tr trace.Trace) {
	specs := tr.Specs
	if s.cfg.MaxJobs > 0 && len(specs) > s.cfg.MaxJobs {
		specs = specs[:s.cfg.MaxJobs]
	}
	capGPUs := s.cfg.Machines * s.cfg.GPUsPerMachine
	for _, spec := range specs {
		m, err := workload.ByName(spec.Model)
		if err != nil {
			panic(err)
		}
		gpus := spec.GPUs
		if gpus > capGPUs {
			gpus = capGPUs
		}
		iters := int64(spec.Duration / m.Stages.Total())
		if iters < 1 {
			iters = 1
		}
		j := job.New(job.ID(spec.ID), m, gpus, iters, spec.Submit)
		if s.cfg.Profiler != nil {
			j.Profile = s.cfg.Profiler.Profile(m)
		}
		if s.cfg.Drift != nil {
			// Truth drifts; the scheduler-visible Profile keeps the stale
			// zoo-derived belief until an estimator corrects it.
			j.TrueProfile = s.cfg.Drift.Apply(int64(j.ID), j.TrueProfile)
		}
		s.refreshBelief(j)
		s.all = append(s.all, j)
	}
	sort.SliceStable(s.all, func(i, k int) bool { return s.all[i].Submit < s.all[k].Submit })
}

// loop drives virtual time: admit arrivals, run the policy, advance
// execution to the next scheduling point, repeat until every job is done.
func (s *sim) loop() {
	if len(s.all) == 0 {
		return
	}
	s.now = s.all[0].Submit
	for len(s.done) < len(s.all) {
		s.admitArrivals()
		if s.plan != nil {
			s.applyFaults()
		}
		s.schedule()
		next := s.now + s.cfg.Interval
		if s.cfg.EventDriven {
			// Wake early for the next arrival or the earliest completion.
			if s.arrived < len(s.all) {
				if a := s.all[s.arrived].Submit; a > s.now && a < next {
					next = a
				}
			}
			if c, ok := s.earliestCompletion(); ok && c < next {
				next = c
			}
			if next <= s.now {
				next = s.now + time.Millisecond
			}
		}
		// Fast-forward across idle gaps: if nothing is running and the
		// queue is empty, jump to the next arrival.
		if len(s.running) == 0 && len(s.pending) == 0 && s.arrived < len(s.all) {
			if a := s.all[s.arrived].Submit; a > next {
				next = a
			}
		}
		// Wake exactly at the next crash/repair/transient-fault instant so
		// preemption happens at the event time, not a whole interval late.
		// applyFaults consumed everything due at s.now, so the clamp can
		// never stall the clock.
		if s.plan != nil {
			if at, ok := s.nextFault(); ok && at > s.now && at < next {
				next = at
			}
		}
		s.advance(next)
		s.now = next
	}
}

// applyFaults applies every failure-plan event that has come due:
// machine crashes preempt and requeue the units they host and shrink the
// schedulable capacity, repairs restore it, and scheduled transient
// faults push single members back to the queue. Events apply in
// deterministic plan order at (or, across idle fast-forwards, with) the
// timestamp they carry.
func (s *sim) applyFaults() {
	for s.faultIdx < len(s.plan.Events) && s.plan.Events[s.faultIdx].Time <= s.now {
		e := s.plan.Events[s.faultIdx]
		s.faultIdx++
		if e.Machine < 0 || e.Machine >= s.cfg.Machines {
			continue // plan generated for a bigger cluster
		}
		switch e.Kind {
		case faults.MachineCrash:
			s.crashMachine(e)
		case faults.MachineRepair:
			s.repairMachine(e)
		}
	}
	if len(s.jobFaults) == 0 {
		return
	}
	kept := s.jobFaults[:0]
	for _, f := range s.jobFaults {
		if f.at > s.now {
			kept = append(kept, f)
			continue
		}
		s.failJob(f)
	}
	s.jobFaults = kept
}

// nextFault returns the earliest pending failure-plan instant.
func (s *sim) nextFault() (time.Duration, bool) {
	var at time.Duration
	ok := false
	if s.faultIdx < len(s.plan.Events) {
		at, ok = s.plan.Events[s.faultIdx].Time, true
	}
	for _, f := range s.jobFaults {
		if !ok || f.at < at {
			at, ok = f.at, true
		}
	}
	return at, ok
}

// machineLabel names a machine in timeline events.
func machineLabel(id int) string { return "machine-" + strconv.Itoa(id) }

// recordAt appends a timeline event with an explicit timestamp (fault
// and repair events carry the plan's time, which can precede s.now after
// an idle fast-forward).
func (s *sim) recordAt(at time.Duration, kind string, id job.ID, unit, machine string) {
	if s.cfg.RecordTimeline {
		s.timeline = append(s.timeline, Event{Time: at, Kind: kind, Job: id, Unit: unit, Machine: machine})
	}
}

// allocMachines names an allocation's machines, comma-joined in
// ascending ID order ("machine-1,machine-3").
func allocMachines(a cluster.Alloc) string {
	ids := a.Machines()
	if len(ids) == 0 {
		return ""
	}
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(machineLabel(id))
	}
	return b.String()
}

// crashMachine takes a machine down: every unit with GPUs on it is
// preempted, its live members requeued from their last whole-iteration
// checkpoint (the fractional carry is the work lost), and the capacity
// disappears until the paired repair.
func (s *sim) crashMachine(e faults.MachineEvent) {
	if s.cluster.Machines()[e.Machine].Down() {
		return // double crash cannot happen in a generated plan
	}
	s.fstats.Crashes++
	s.recordAt(e.Time, "fault", 0, machineLabel(e.Machine), machineLabel(e.Machine))
	s.traceFault("crash "+machineLabel(e.Machine), e.Time, map[string]any{"machine": e.Machine})
	var still []*unit
	for _, u := range s.running {
		if u.alloc.Slots[e.Machine] == 0 {
			still = append(still, u)
			continue
		}
		s.cluster.Release(u.alloc)
		key := engine.UnitKey(u.spec)
		for i, j := range u.spec.Jobs {
			if j.State == job.Done {
				continue
			}
			s.fstats.Requeues++
			s.fstats.WorkLost += time.Duration(u.carry[i] * float64(u.iterTime[i]))
			s.recordAt(e.Time, "fault", j.ID, key, machineLabel(e.Machine))
			j.State = job.Pending
			// The engine forgets the placement, so the next admission
			// charges a full checkpoint restart even if the unit reforms
			// identically. The cause annotation names the lost machine
			// (inert — and absent from the decision stream — unless
			// provenance is enabled).
			s.eng.RequeueWithCause(j.ID, engine.ReasonMachineLost, machineLabel(e.Machine)+" lost")
			s.pending = append(s.pending, j)
		}
	}
	s.running = still
	s.heap.markStale()
	s.cluster.SetDown(e.Machine)
}

// repairMachine returns a crashed machine to service.
func (s *sim) repairMachine(e faults.MachineEvent) {
	if !s.cluster.Machines()[e.Machine].Down() {
		return
	}
	s.fstats.Repairs++
	s.recordAt(e.Time, "repair", 0, machineLabel(e.Machine), machineLabel(e.Machine))
	s.traceFault("repair "+machineLabel(e.Machine), e.Time, map[string]any{"machine": e.Machine})
	s.cluster.SetUp(e.Machine)
}

// failJob applies one scheduled transient fault: if the job is still in
// the execution attempt the fault was drawn for, it is removed from its
// unit and requeued; survivors keep running at their recomputed speed.
// Stale entries (the job finished, or was preempted and restarted into a
// newer attempt) are skipped.
func (s *sim) failJob(f jobFault) {
	for _, u := range s.running {
		for i, j := range u.spec.Jobs {
			if j.ID != f.job {
				continue
			}
			if j.State != job.Running || j.Restarts != f.attempt {
				return
			}
			s.fstats.Transient++
			s.fstats.Requeues++
			s.fstats.WorkLost += time.Duration(u.carry[i] * float64(u.iterTime[i]))
			s.recordAt(f.at, "fault", j.ID, engine.UnitKey(u.spec), allocMachines(u.alloc))
			s.traceFault(fmt.Sprintf("transient fault job %d", j.ID), f.at, map[string]any{"job": int64(j.ID)})
			j.State = job.Pending
			backoff, deadlettered := s.eng.RecordFault(j.ID)
			if s.cfg.Explain != nil {
				// Mirror the daemon's fault-ledger record (after the
				// engine's requeue decision, exactly as the WAL orders
				// them). The sim's retry policy has no backoff, but the
				// release time is computed the same way regardless.
				s.explFaults[j.ID]++
				s.explRecord(&wal.Record{Kind: wal.KindFault, Fault: &wal.FaultRecord{
					Job:          int64(j.ID),
					Faults:       s.explFaults[j.ID],
					DeadLettered: deadlettered,
					NotBeforeV:   int64(s.now) + int64(backoff),
				}})
			}
			s.pending = append(s.pending, j)
			s.removeMember(u, i)
			return
		}
	}
}

// removeMember drops member index i from a unit, releasing the unit when
// it empties and retiming the survivors otherwise.
func (s *sim) removeMember(u *unit, i int) {
	u.spec.Jobs = append(u.spec.Jobs[:i], u.spec.Jobs[i+1:]...)
	u.iterTime = append(u.iterTime[:i], u.iterTime[i+1:]...)
	u.carry = append(u.carry[:i], u.carry[i+1:]...)
	if len(u.spec.Jobs) == 0 {
		s.cluster.Release(u.alloc)
		var still []*unit
		for _, o := range s.running {
			if o != u {
				still = append(still, o)
			}
		}
		s.running = still
	} else {
		s.retime(u)
	}
	s.heap.markStale()
}

// earliestCompletion predicts the soonest member completion across all
// running units, for event-driven rescheduling. The completion heap
// answers in O(1) from its root: a full O(n) heapify happens only when
// running-set membership changed since the last query, and otherwise
// only units whose estimates were invalidated are re-positioned
// (O(log n) each) from their indexed slots. The returned time is
// bit-identical to a linear scan of unit.earliest over s.running — the
// heap can permute equal keys but never the minimum value.
func (s *sim) earliestCompletion() (time.Duration, bool) {
	if s.heap.stale {
		s.heap.rebuild(s.running, s.now)
	} else {
		s.heap.fix(s.now)
	}
	return s.heap.peek()
}

// refreshBelief updates one job's scheduler-visible profile from the
// estimator's current belief. Cold-started jobs (no belief for the
// model yet) keep their existing profile; with the oracle estimator the
// write is the identity (Profile already equals TrueProfile absent a
// profiler), so estimator-free runs stay bit-identical.
func (s *sim) refreshBelief(j *job.Job) {
	if s.cfg.Estimator == nil {
		return
	}
	if e, ok := s.cfg.Estimator.EstimateFor(j); ok && e.Stages.Total() > 0 {
		j.Profile = e.Stages
	}
}

// admitArrivals moves jobs whose submit time has passed into the queue.
func (s *sim) admitArrivals() {
	first := s.arrived
	for s.arrived < len(s.all) && s.all[s.arrived].Submit <= s.now {
		s.record("submit", s.all[s.arrived].ID, "", "")
		s.pending = append(s.pending, s.all[s.arrived])
		s.arrived++
	}
	if s.cfg.Explain != nil && s.arrived > first {
		s.explAdmit(s.all[first:s.arrived])
	}
}

// explRecord stamps one synthesized record with the virtual clock and
// folds it into the explain builder (caller guarantees cfg.Explain set).
func (s *sim) explRecord(r *wal.Record) {
	r.V = int64(s.now)
	s.cfg.Explain.Apply(r)
}

// explAdmit feeds one admission batch to the explain builder. The
// simulator has no ingest queue, so WaitV is zero and each job's
// timeline origin is its trace submit time — attribution then sums to
// the same JCT the metrics report (FinishedAt − Submit).
func (s *sim) explAdmit(jobs []*job.Job) {
	rec := &wal.AdmitRecord{Items: make([]wal.AdmitItem, len(jobs))}
	for i, j := range jobs {
		rec.Items[i] = wal.AdmitItem{
			Spec: proto.JobSpec{
				ID:         int64(j.ID),
				Model:      j.Model.Name,
				GPUs:       j.GPUs,
				Iterations: j.Iterations,
			},
			SubmitV: int64(j.Submit),
		}
	}
	s.explRecord(&wal.Record{Kind: wal.KindAdmit, Admit: rec})
}

// simPlacer adapts the modeled cluster to the engine's Placer
// interface: placement is a GPU allocation, and preemptive rounds reset
// the whole cluster (machine down-state survives a Reset).
type simPlacer struct{ c *cluster.Cluster }

func (p simPlacer) Free() int { return p.c.FreeGPUs() }
func (p simPlacer) Reset()    { p.c.Reset() }
func (p simPlacer) Place(_ string, u sched.Unit) (any, bool) {
	alloc, ok := p.c.Allocate(u.GPUs)
	if !ok {
		return nil, false
	}
	return alloc, true
}

// schedule runs one engine round and executes its outcome: placed units
// become live simulation state (iteration times, straggler slowdowns,
// carry restoration, restart overhead, transient-fault draws).
func (s *sim) schedule() {
	var candidates []*job.Job
	if s.policy.Preemptive() {
		// Preemptive policies reconsider everything unfinished.
		candidates = append(candidates, s.pending...)
		for _, u := range s.running {
			candidates = append(candidates, u.spec.Jobs...)
		}
	} else {
		candidates = append(candidates, s.pending...)
	}
	// Prediction mode: re-read every candidate's believed profile before
	// the policy sees it, so completions observed since the last round
	// reshape this round's priorities and groupings.
	if s.cfg.Estimator != nil {
		for _, j := range candidates {
			s.refreshBelief(j)
		}
	}
	// Plan against in-service capacity. Without a fault plan no machine is
	// ever down, so AvailableGPUs equals TotalGPUs and behavior is
	// unchanged; under a plan, a fully-crashed cluster has nothing to
	// schedule (crashMachine already requeued everything).
	capacity := s.cluster.AvailableGPUs()
	if s.plan != nil && capacity == 0 {
		return
	}
	// Remember per-job fractional progress so continuing jobs lose no
	// partial iterations across intervals.
	oldCarry := make(map[job.ID]float64)
	for _, u := range s.running {
		for i, j := range u.spec.Jobs {
			oldCarry[j.ID] = u.carry[i]
		}
	}
	current := make([]engine.Current, len(s.running))
	for i, u := range s.running {
		current[i] = engine.Current{Spec: u.spec, Handle: u}
	}
	out := s.eng.Reconcile(engine.Input{
		Now:        s.now,
		Candidates: candidates,
		Pending:    s.pending,
		Capacity:   capacity,
		Current:    current,
		Placer:     simPlacer{s.cluster},
	})
	var placed []*unit
	if s.policy.Preemptive() {
		// ReplaceAll re-placed everything; the engine's placements are
		// the entire new running set.
		s.running = nil
	} else {
		placed = append(placed, s.running...) // keep current units
	}
	for _, p := range out.Placements {
		u := &unit{
			spec:     p.Spec,
			alloc:    p.Handle.(cluster.Alloc),
			readyAt:  s.now,
			iterTime: memberIterTimes(p.Spec, s.cfg.Interleave),
			carry:    make([]float64, len(p.Spec.Jobs)),
		}
		if s.plan != nil {
			// A unit runs at the pace of its slowest machine: distributed
			// workers synchronize every iteration, so one straggler drags
			// the whole allocation.
			for _, m := range u.alloc.Machines() {
				if f := s.plan.SlowdownFor(m); f > u.slow {
					u.slow = f
				}
			}
			if u.slow > 1 {
				for i := range u.iterTime {
					u.iterTime[i] = time.Duration(float64(u.iterTime[i]) * u.slow)
				}
			}
		}
		for i, m := range p.Members {
			if m.Continues {
				u.carry[i] = oldCarry[m.Job.ID]
			}
		}
		launched := false
		for _, m := range p.Members {
			if m.Fresh {
				m.Job.StartedAt = s.now
				s.record("start", m.Job.ID, p.Key, allocMachines(u.alloc))
				launched = true
			} else if m.Restart {
				// Either the job resumes after preemption or its unit's
				// composition changed — both restart the worker process.
				m.Job.Restarts++
				s.record("restart", m.Job.ID, p.Key, allocMachines(u.alloc))
				launched = true
			}
		}
		if p.Restart && s.cfg.RestartOverhead > 0 {
			u.readyAt = s.now + s.cfg.RestartOverhead
			s.preemptions++
		}
		if launched {
			// Render the first few group iterations of this launch as
			// per-resource stage spans (tracing only; nil tracer is inert).
			s.traceUnitStages(u, p.Key)
		}
		if s.plan != nil {
			// Transient-fault draws: exactly one per execution attempt
			// (attempt = restart count), even though preemptive policies
			// re-place running jobs every interval. The fault, if drawn,
			// strikes at a hash-chosen fraction of the attempt's estimated
			// remaining work.
			for i, j := range p.Spec.Jobs {
				attempt := j.Restarts
				if prev, ok := s.drawn[j.ID]; ok && prev >= attempt {
					continue
				}
				s.drawn[j.ID] = attempt
				frac, fault := s.plan.TransientFault(int64(j.ID), attempt)
				if !fault {
					continue
				}
				remaining := float64(j.RemainingIterations()) - u.carry[i]
				if remaining < 0 {
					remaining = 0
				}
				at := u.readyAt + time.Duration(frac*remaining*float64(u.iterTime[i]))
				if at <= s.now {
					at = s.now + time.Millisecond
				}
				s.jobFaults = append(s.jobFaults, jobFault{at: at, job: j.ID, attempt: attempt})
			}
		}
		placed = append(placed, u)
	}
	// The heap must re-index when the running set's membership changes.
	// placed extends the surviving units in order (preemptive policies
	// recreate every unit, so s.running is nil here and any placement is
	// a change), so pointer-wise prefix equality detects "same units".
	changed := len(placed) != len(s.running)
	if !changed {
		for i := range placed {
			if placed[i] != s.running[i] {
				changed = true
				break
			}
		}
	}
	if changed {
		s.heap.markStale()
	}
	s.running = placed
	s.pending = out.Pending
	if s.cfg.Debug != nil {
		units := out.Planned
		demand := 0
		for _, j := range candidates {
			demand += j.GPUs
		}
		unitGPUs, unitJobs := 0, 0
		sizeHist := make(map[int]int)
		for _, u := range units {
			unitGPUs += u.GPUs
			unitJobs += len(u.Jobs)
			sizeHist[len(u.Jobs)]++
		}
		running := 0
		for _, u := range s.running {
			running += len(u.spec.Jobs)
		}
		fmt.Fprintf(s.cfg.Debug,
			"t=%v cand=%d demand=%d plannedUnits=%d(gpus=%d jobs=%d hist=%v) placed=%d running=%d used=%d pending=%d\n",
			s.now.Round(time.Second), len(candidates), demand, len(units), unitGPUs, unitJobs,
			sizeHist, len(s.running), running, s.cluster.UsedGPUs(), len(s.pending))
	}
}

// advance simulates execution from s.now to deadline, handling member
// completions (which speed up the survivors) and metric sampling.
func (s *sim) advance(deadline time.Duration) {
	if s.cfg.SampleEvery > 0 {
		for s.nextSample <= deadline {
			if s.nextSample >= s.now {
				s.sample(s.nextSample)
			}
			s.nextSample += s.cfg.SampleEvery
		}
	}
	doneBefore := len(s.done)
	for _, u := range s.running {
		s.advanceUnit(u, s.now, deadline)
	}
	if len(s.done) == doneBefore {
		// Nothing completed, so every unit's membership is unchanged:
		// skip the compaction pass (and its per-unit reallocations).
		return
	}
	// Drop units whose members all finished; release their GPUs.
	var still []*unit
	for _, u := range s.running {
		var live []*job.Job
		var liveTimes []time.Duration
		var liveCarry []float64
		for i, j := range u.spec.Jobs {
			if j.State != job.Done {
				live = append(live, j)
				liveTimes = append(liveTimes, u.iterTime[i])
				liveCarry = append(liveCarry, u.carry[i])
			}
		}
		if len(live) == 0 {
			s.cluster.Release(u.alloc)
			continue
		}
		u.spec.Jobs = live
		u.iterTime = liveTimes
		u.carry = liveCarry
		s.invalidateUnit(u)
		still = append(still, u)
	}
	s.running = still
	// Completions shrank the running set (and rewrote member slices):
	// force a heap re-index at the next clock query.
	s.heap.markStale()
}

// advanceUnit advances one unit over [from, to], processing completions
// one at a time because each completion changes the survivors' speed.
func (s *sim) advanceUnit(u *unit, from, to time.Duration) {
	if u.readyAt > from {
		from = u.readyAt
	}
	if from >= to {
		return
	}
	for {
		live := liveMembers(u)
		if len(live) == 0 {
			return
		}
		// Find the earliest completion among live members.
		first := -1
		var firstAt time.Duration
		for _, i := range live {
			j := u.spec.Jobs[i]
			remaining := float64(j.RemainingIterations()) - u.carry[i]
			if remaining < 0 {
				remaining = 0
			}
			at := from + time.Duration(remaining*float64(u.iterTime[i]))
			if first == -1 || at < firstAt {
				first = i
				firstAt = at
			}
		}
		if firstAt > to {
			// No completion before the deadline: advance everyone.
			s.credit(u, live, from, to)
			return
		}
		// Advance to the completion instant, finish that job, recompute
		// the survivors' iteration times, and continue.
		s.credit(u, live, from, firstAt)
		j := u.spec.Jobs[first]
		j.DoneIterations = j.Iterations
		j.State = job.Done
		j.FinishedAt = firstAt
		s.done = append(s.done, j)
		if s.cfg.RecordTimeline {
			s.timeline = append(s.timeline, Event{Time: firstAt, Kind: "finish", Job: j.ID})
		}
		if s.cfg.Explain != nil {
			// Completions carry their own instant (mid-advance, between
			// scheduling points), closing the job's service span exactly
			// at the finish time the metrics see.
			s.cfg.Explain.Apply(&wal.Record{Kind: wal.KindDone, V: int64(firstAt),
				Done: &wal.DoneRecord{Job: int64(j.ID), FinishedV: int64(firstAt)}})
		}
		// Policies that learn from completions (e.g. the Gittins index)
		// observe the job's 2D service demand.
		if obs, ok := s.policy.(interface{ Observe(time.Duration) }); ok {
			obs.Observe(time.Duration(float64(j.Attained) * float64(j.GPUs)))
		}
		// The estimator observes the measured per-iteration stages and the
		// 2D service demand (no-op without one).
		if s.cfg.Estimator != nil {
			s.eng.NoteCompletion(j, j.TrueProfile,
				time.Duration(float64(j.Attained)*float64(j.GPUs)))
		}
		from = firstAt
		s.retime(u)
		if from >= to {
			return
		}
	}
}

// liveMembers returns the indices of unfinished members.
func liveMembers(u *unit) []int {
	var out []int
	for i, j := range u.spec.Jobs {
		if j.State != job.Done {
			out = append(out, i)
		}
	}
	return out
}

// credit advances live members by the elapsed window.
func (s *sim) credit(u *unit, live []int, from, to time.Duration) {
	dt := to - from
	if dt <= 0 {
		return
	}
	s.invalidateUnit(u)
	for _, i := range live {
		j := u.spec.Jobs[i]
		if u.iterTime[i] <= 0 {
			continue
		}
		u.carry[i] += float64(dt) / float64(u.iterTime[i])
		whole := int64(u.carry[i])
		if whole > 0 {
			j.Advance(whole, 0)
			u.carry[i] -= float64(whole)
		}
		j.Attained += dt
	}
}

// retime recomputes member iteration times after a completion shrinks the
// unit (survivors speed up: fewer members to interleave or contend with).
func (s *sim) retime(u *unit) {
	s.invalidateUnit(u)
	var live []*job.Job
	for _, j := range u.spec.Jobs {
		if j.State != job.Done {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return
	}
	mode := u.spec.Mode
	if len(live) == 1 {
		mode = sched.Exclusive
	}
	shrunk := sched.Unit{Jobs: live, GPUs: u.spec.GPUs, Mode: mode}
	times := memberIterTimes(shrunk, s.cfg.Interleave)
	k := 0
	for i, j := range u.spec.Jobs {
		if j.State != job.Done {
			u.iterTime[i] = times[k]
			if u.slow > 1 {
				u.iterTime[i] = time.Duration(float64(u.iterTime[i]) * u.slow)
			}
			k++
		}
	}
}

// sample records one point of the Figure 8 time series.
func (s *sim) sample(at time.Duration) {
	var pending []*job.Job
	for _, j := range s.pending {
		if j.State == job.Pending {
			pending = append(pending, j)
		}
	}
	sm := metrics.Sample{
		Time:          at,
		QueueLen:      len(pending),
		BlockingIndex: metrics.BlockingIndex(pending, at),
		UsedGPUs:      s.cluster.UsedGPUs(),
	}
	for _, u := range s.running {
		for _, j := range u.spec.Jobs {
			if j.State == job.Running {
				sm.RunningJobs++
			}
		}
	}
	total := float64(s.cluster.TotalGPUs())
	for _, u := range s.running {
		if u.readyAt > at {
			continue
		}
		share := float64(u.spec.GPUs) / total
		busy := unitBusyFractions(u, s.cfg.Interleave)
		for r := 0; r < workload.NumResources; r++ {
			sm.Util[r] += share * busy[r]
		}
	}
	s.series = append(s.series, sm)
}

// unitBusyFractions returns, per resource type, the fraction of the
// unit's iteration during which the resource is in use.
func unitBusyFractions(u *unit, cfg interleave.Config) [workload.NumResources]float64 {
	var out [workload.NumResources]float64
	var live []*job.Job
	for _, j := range u.spec.Jobs {
		if j.State != job.Done {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return out
	}
	switch u.spec.Mode {
	case sched.Interleaved:
		times := make([]workload.StageTimes, len(live))
		for i, j := range live {
			times[i] = j.TrueProfile
		}
		inflated := cfg.Inflate(times)
		T := interleave.IterationTime(inflated)
		if T == 0 {
			return out
		}
		for r := 0; r < workload.NumResources; r++ {
			var used time.Duration
			for _, t := range inflated {
				used += t[r]
			}
			f := float64(used) / float64(T)
			if f > 1 {
				f = 1
			}
			out[r] = f
		}
	default:
		// Exclusive and space-shared: average the members' own busy
		// fractions (space sharing does not overlap stages in time).
		for _, j := range live {
			fr := j.TrueProfile.Fractions()
			for r := 0; r < workload.NumResources; r++ {
				out[r] += fr[r] / float64(len(live))
			}
		}
	}
	return out
}
