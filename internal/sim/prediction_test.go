package sim

import (
	"testing"

	"muri/internal/profile"
	"muri/internal/sched"
)

// Selecting the oracle estimator must leave every fixed-seed decision
// stream and metric fingerprint byte-identical to an estimator-free run:
// the oracle reads each job's true profile, which is exactly what the
// oracle-era policies read. This pins the tentpole's bit-identity
// acceptance criterion against the same goldens TestGoldenResults uses.
func TestOracleEstimatorMatchesGoldens(t *testing.T) {
	dt := determinismTrace()
	ct := chaosTrace()
	oracle := func(cfg Config) Config { cfg.Estimator = profile.NewOracle(); return cfg }
	event := func(cfg Config) Config { cfg.EventDriven = true; return cfg }
	cases := map[string]func() Result{
		"fifo":   func() Result { return Run(oracle(DefaultConfig()), dt, sched.FIFO()) },
		"srtf":   func() Result { return Run(oracle(DefaultConfig()), dt, sched.SRTF()) },
		"muri-s": func() Result { return Run(oracle(DefaultConfig()), dt, sched.NewMuriS()) },
		"muri-l": func() Result { return Run(oracle(DefaultConfig()), dt, sched.NewMuriL()) },
		"muri-l-event": func() Result {
			return Run(oracle(event(DefaultConfig())), dt, sched.NewMuriL())
		},
		"muri-l-chaos-event": func() Result {
			return Run(oracle(event(chaosConfig(chaosPlan(7, 4)))), ct, sched.NewMuriL())
		},
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			got := goldenHash(run())
			want := goldenHashes[name]
			if want == "" {
				t.Fatalf("golden[%q] unset", name)
			}
			if got != want {
				t.Errorf("oracle estimator diverged from the estimator-free golden\n got %s\nwant %s", got, want)
			}
		})
	}
}

// The predicted policy variants under the oracle estimator must also
// reproduce their originals' fingerprints exactly (modulo the policy
// name, which the fingerprint includes — so compare fingerprints with
// the name stripped).
func TestPredictedPoliciesOracleParity(t *testing.T) {
	dt := determinismTrace()
	oracle := profile.NewOracle()
	strip := func(r Result) string {
		fp := faultFingerprint(r)
		return fp[len("policy="+r.Policy):]
	}
	cases := []struct {
		name string
		base func() sched.Policy
		pred func() sched.Policy
	}{
		{"srtf", func() sched.Policy { return sched.SRTF() },
			func() sched.Policy { return sched.SRTFPredicted(oracle) }},
		{"srsf", func() sched.Policy { return sched.SRSF() },
			func() sched.Policy { return sched.SRSFPredicted(oracle) }},
		{"muri-l", func() sched.Policy { return sched.NewMuriL() },
			func() sched.Policy { return sched.NewMuriLPredicted(oracle) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Estimator = oracle
			base := strip(Run(DefaultConfig(), dt, c.base()))
			pred := strip(Run(cfg, dt, c.pred()))
			if base != pred {
				t.Errorf("predicted variant under the oracle diverged from %s", c.name)
			}
		})
	}
}

// Under drift with the online estimator, a run must actually learn:
// completions accumulate into the estimator and its error score is
// populated. This is the smoke test for the full sim threading
// (drift → stale beliefs → completions → engine → estimator → policy).
func TestOnlineEstimatorLearnsUnderDrift(t *testing.T) {
	tr := determinismTrace()
	est := profile.NewOnline()
	cfg := DefaultConfig()
	cfg.Estimator = est
	cfg.Drift = &profile.Drift{Amplitude: 0.5, Seed: 21}
	res := Run(cfg, tr, sched.SRTFPredicted(est))
	if res.Summary.Jobs == 0 {
		t.Fatal("no jobs completed")
	}
	models, samples, _ := est.Stats()
	if models == 0 || samples == 0 {
		t.Fatalf("estimator learned nothing: models=%d samples=%d", models, samples)
	}
	// Re-profiling re-seeds a model's sample count, so the retained total
	// can only be bounded, not matched, against completions.
	if samples > res.Summary.Jobs {
		t.Errorf("estimator retained %d samples, run finished only %d jobs", samples, res.Summary.Jobs)
	}
	if len(est.ServiceHistory()) != res.Summary.Jobs {
		t.Errorf("service history holds %d completions, run finished %d jobs",
			len(est.ServiceHistory()), res.Summary.Jobs)
	}
	if _, n := est.Error(); n == 0 {
		t.Error("no prediction errors scored despite repeated models in the trace")
	}
	if len(est.ServiceHistory()) == 0 {
		t.Error("service history empty; Gittins would stay cold")
	}
}

// Drift must change execution outcomes (it perturbs the truth) while
// remaining deterministic run to run.
func TestDriftDeterministicInSim(t *testing.T) {
	tr := determinismTrace()
	run := func() Result {
		cfg := DefaultConfig()
		cfg.Drift = &profile.Drift{Amplitude: 0.3, Seed: 5}
		return Run(cfg, tr, sched.SRTF())
	}
	a, b := run(), run()
	if faultFingerprint(a) != faultFingerprint(b) {
		t.Fatal("drifted run is not deterministic")
	}
	base := Run(DefaultConfig(), tr, sched.SRTF())
	if a.Summary.AvgJCT == base.Summary.AvgJCT && a.Summary.Makespan == base.Summary.Makespan {
		t.Error("drift at amplitude 0.3 left the run unchanged")
	}
}
