// Trace instrumentation: renders simulation activity into the run's
// telemetry.Tracer (Chrome trace-event format, viewable in Perfetto).
//
// The visual contract is the paper's Figure 3: each interleaved group
// gets one trace process with one thread row per resource type
// (storage, cpu, gpu, network), so the stage offsets of Eq. 3 are
// directly visible — while job 0 loads data, job 1 preprocesses, job 2
// propagates, job 3 synchronizes, with a barrier at the end of every
// stage slot. Exclusive units render their serial stage sequence on the
// same rows; space-shared units get one row per member because their
// stages genuinely overlap on every resource.
//
// Everything here is nil-gated: with cfg.Trace == nil no method touches
// any simulation state, keeping uninstrumented runs bit-identical.
package sim

import (
	"fmt"
	"time"

	"muri/internal/sched"
	"muri/internal/telemetry"
	"muri/internal/workload"
)

// defaultTraceStageCycles is how many group iterations of each unit
// launch are rendered as stage spans when TraceStageCycles is zero.
const defaultTraceStageCycles = 4

// traceFault emits an instant event on the fault row of the trace.
func (s *sim) traceFault(name string, at time.Duration, args map[string]any) {
	tr := s.cfg.Trace
	if !tr.Enabled() {
		return
	}
	pid := tr.Process("faults")
	tid := tr.Thread(pid, "events")
	tr.Instant(pid, tid, name, "fault", at, args)
}

// traceStageCycles returns the configured per-launch span budget.
func (s *sim) traceStageCycles() int {
	if s.cfg.TraceStageCycles > 0 {
		return s.cfg.TraceStageCycles
	}
	return defaultTraceStageCycles
}

// traceUnitStages renders the first few group iterations of a freshly
// launched (or restarted) unit as per-resource stage spans, starting at
// the unit's readyAt (restart overhead already applied). Emission
// happens only on actual launches, never on round-to-round
// continuations, which bounds the event volume under preemptive
// policies that re-place every unit every round.
func (s *sim) traceUnitStages(u *unit, key string) {
	tr := s.cfg.Trace
	if !tr.Enabled() {
		return
	}
	cycles := s.traceStageCycles()
	switch u.spec.Mode {
	case sched.Interleaved:
		s.traceInterleavedStages(u, key, cycles)
	case sched.Exclusive:
		s.traceSerialStages(u, key, cycles)
	default: // space-shared
		s.traceSpaceSharedStages(u, key, cycles)
	}
}

// resourceThreads registers (or looks up) the per-resource thread rows
// of a group process, in canonical stage order so rows render as
// storage, cpu, gpu, network top to bottom.
func resourceThreads(tr *telemetry.Tracer, pid int) [workload.NumResources]int {
	var tids [workload.NumResources]int
	for r := workload.Resource(0); r < workload.NumResources; r++ {
		tids[r] = tr.Thread(pid, r.String())
	}
	return tids
}

// traceInterleavedStages draws the Eq. 3 schedule: slot j of a cycle
// lasts max_i inflated[i][(i+j) mod k], and within it the member at
// ordering position i occupies resource (i+j) mod k. Distinct members
// always occupy distinct resources in a slot (i is distinct mod k and
// group size ≤ k), so each resource row holds at most one span per slot.
func (s *sim) traceInterleavedStages(u *unit, key string, cycles int) {
	tr := s.cfg.Trace
	times := make([]workload.StageTimes, len(u.spec.Jobs))
	for i, j := range u.spec.Jobs {
		times[i] = j.TrueProfile
	}
	inflated := s.cfg.Interleave.Inflate(times)
	if u.slow > 1 {
		for i := range inflated {
			inflated[i] = inflated[i].Scale(u.slow)
		}
	}
	const k = workload.NumResources
	pid := tr.Process("group " + key)
	tids := resourceThreads(tr, pid)
	start := u.readyAt
	for c := 0; c < cycles; c++ {
		for j := 0; j < k; j++ {
			var slot time.Duration
			for i := range inflated {
				if d := inflated[i][(i+j)%k]; d > slot {
					slot = d
				}
			}
			for i, j2 := range u.spec.Jobs {
				r := workload.Resource((i + j) % k)
				d := inflated[i][r]
				if d <= 0 {
					continue
				}
				tr.Span(pid, tids[r], fmt.Sprintf("job %d: %s", j2.ID, r.StageName()), "stage",
					start, d, map[string]any{"job": int64(j2.ID), "cycle": c, "slot": j})
			}
			start += slot
		}
	}
}

// traceSerialStages draws an exclusive unit's stage sequence: the single
// member cycles through its four stages back to back, each on its own
// resource row, scaled so one rendered cycle spans exactly iterTime[0]
// (which folds in any straggler slowdown).
func (s *sim) traceSerialStages(u *unit, key string, cycles int) {
	tr := s.cfg.Trace
	j := u.spec.Jobs[0]
	profile := j.TrueProfile
	total := profile.Total()
	if total <= 0 {
		return
	}
	scale := float64(u.iterTime[0]) / float64(total)
	pid := tr.Process("group " + key)
	tids := resourceThreads(tr, pid)
	start := u.readyAt
	for c := 0; c < cycles; c++ {
		for r := workload.Resource(0); r < workload.NumResources; r++ {
			d := time.Duration(float64(profile[r]) * scale)
			if d <= 0 {
				continue
			}
			tr.Span(pid, tids[r], fmt.Sprintf("job %d: %s", j.ID, r.StageName()), "stage",
				start, d, map[string]any{"job": int64(j.ID), "cycle": c})
			start += d
		}
	}
}

// traceSpaceSharedStages draws a space-shared unit: every member runs
// its own serial stage sequence concurrently at its contended speed, so
// each member gets its own thread row (stages overlap on every
// resource, which per-resource rows cannot render).
func (s *sim) traceSpaceSharedStages(u *unit, key string, cycles int) {
	tr := s.cfg.Trace
	pid := tr.Process("group " + key)
	for i, j := range u.spec.Jobs {
		profile := j.TrueProfile
		total := profile.Total()
		if total <= 0 {
			continue
		}
		scale := float64(u.iterTime[i]) / float64(total)
		tid := tr.Thread(pid, fmt.Sprintf("job %d", j.ID))
		start := u.readyAt
		for c := 0; c < cycles; c++ {
			for r := workload.Resource(0); r < workload.NumResources; r++ {
				d := time.Duration(float64(profile[r]) * scale)
				if d <= 0 {
					continue
				}
				tr.Span(pid, tid, fmt.Sprintf("job %d: %s", j.ID, r.StageName()), "stage",
					start, d, map[string]any{"job": int64(j.ID), "cycle": c})
				start += d
			}
		}
	}
}
