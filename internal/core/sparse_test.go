package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"muri/internal/blossom"
	"muri/internal/job"
	"muri/internal/workload"
)

// matchedWeight sums the weight of a matching's edges.
func matchedWeight(edges []blossom.Edge, mate []int) float64 {
	s := 0.0
	for _, e := range edges {
		if mate[e.I] == e.J {
			s += e.Weight
		}
	}
	return s
}

// TestSparseMatchingWeightBound is the sparsification quality property
// promised by DESIGN.md §6: matching the top-k candidate graph loses at
// most a small fraction of the exact matching's total weight. On dense
// random graphs at the default k=16 the empirical loss is zero (the
// optimal matching only ever uses edges near the top of some endpoint's
// ranking); the test enforces the documented ≥97% bound with margin to
// spare so a future regression in sparsifyEdges trips it.
func TestSparseMatchingWeightBound(t *testing.T) {
	if testing.Short() {
		t.Skip("dense Blossom runs are slow")
	}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 100 + rng.Intn(200)
		var edges []blossom.Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.7 {
					// Efficiency-shaped weights: clustered near 1, as the
					// pair-efficiency graph produces.
					edges = append(edges, blossom.Edge{I: i, J: j, Weight: 0.6 + 0.4*rng.Float64()})
				}
			}
		}
		dense := matchedWeight(edges, blossom.MaxWeightMatching(n, edges, false))
		sp, _ := sparsifyEdges(append([]blossom.Edge(nil), edges...), make([]float64, len(edges)), n, DefaultSparseTopK)
		if len(sp) >= len(edges) {
			t.Fatalf("trial %d: sparsifier kept all %d edges of a dense graph", trial, len(edges))
		}
		sparse := matchedWeight(sp, blossom.MaxWeightMatching(n, sp, false))
		if dense > 0 && sparse < 0.97*dense {
			t.Errorf("trial %d: sparse matching weight %.4f < 97%% of dense %.4f (n=%d, %d→%d edges)",
				trial, sparse, dense, n, len(edges), len(sp))
		}
	}
}

// TestSparsifyEdgesProperties pins the sparsifier's structural contract:
// the output is an order-preserving subset of the input, every surviving
// edge is in some endpoint's top-k, and every edge in a node's top-k
// (ranked by weight desc, then input index asc) survives.
func TestSparsifyEdgesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(60)
		k := 1 + rng.Intn(6)
		var edges []blossom.Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					// Coarse weights to exercise tie-breaking.
					edges = append(edges, blossom.Edge{I: i, J: j, Weight: float64(rng.Intn(5))})
				}
			}
		}
		in := append([]blossom.Edge(nil), edges...)
		out, _ := sparsifyEdges(in, make([]float64, len(in)), n, k)

		// Rank every node's incident edges exactly as the sparsifier must.
		topk := make(map[int]bool)
		for v := 0; v < n; v++ {
			var ids []int
			for i, e := range edges {
				if e.I == v || e.J == v {
					ids = append(ids, i)
				}
			}
			for a := 1; a < len(ids); a++ {
				for b := a; b > 0; b-- {
					wa, wb := edges[ids[b-1]].Weight, edges[ids[b]].Weight
					if wa > wb || (wa == wb && ids[b-1] < ids[b]) {
						break
					}
					ids[b-1], ids[b] = ids[b], ids[b-1]
				}
			}
			if len(ids) > k {
				ids = ids[:k]
			}
			for _, id := range ids {
				topk[id] = true
			}
		}

		// out must be exactly the kept set, in input order.
		var want []blossom.Edge
		for i, e := range edges {
			if topk[i] {
				want = append(want, e)
			}
		}
		if len(out) != len(want) {
			t.Fatalf("trial %d (n=%d k=%d): got %d survivors, want %d", trial, n, k, len(out), len(want))
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("trial %d: survivor %d = %+v, want %+v (order or selection broken)", trial, i, out[i], want[i])
			}
		}
	}
}

// planFingerprint serializes a plan's group structure for equality checks.
func planFingerprint(groups []Group) string {
	s := ""
	for _, g := range groups {
		s += fmt.Sprintf("[%d:", g.GPUs)
		for _, j := range g.Jobs {
			s += fmt.Sprintf("%d,", j.ID)
		}
		s += "]"
	}
	return s
}

// sparseJobs builds a single-GPU population large enough to cross the
// default sparsification threshold, with varied stage shapes.
func sparseJobs(n int, seed int64) []*job.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]*job.Job, 0, n)
	for i := 0; i < n; i++ {
		var st workload.StageTimes
		for r := 0; r < workload.NumResources; r++ {
			st[r] = time.Duration(rng.Intn(200)+10) * time.Millisecond
		}
		jobs = append(jobs, mkJob(i, 1, st))
	}
	return jobs
}

// TestSparseModeDeterministic runs the same above-threshold population
// through sparse-mode planning twice; the plans must be identical. The
// sparse graph is a pure function of the dense one, so determinism
// survives sparsification exactly as it does exhaustive construction.
func TestSparseModeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.sparseThreshold(); got != DefaultSparseNodeThreshold {
		t.Fatalf("default threshold = %d, want %d", got, DefaultSparseNodeThreshold)
	}
	a := planFingerprint(cfg.Plan(sparseJobs(300, 4), 0))
	b := planFingerprint(cfg.Plan(sparseJobs(300, 4), 0))
	if a != b {
		t.Fatalf("sparse-mode plan not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty plan")
	}
}

// TestExactModeBelowThreshold pins the bit-identical guarantee for small
// buckets: below SparseNodeThreshold the default config must produce the
// same plan as a config with sparsification disabled outright.
func TestExactModeBelowThreshold(t *testing.T) {
	jobs := func() []*job.Job { return sparseJobs(200, 11) } // 200 < 256 default threshold
	def := DefaultConfig()
	exact := DefaultConfig()
	exact.SparseNodeThreshold = -1
	a := planFingerprint(def.Plan(jobs(), 0))
	b := planFingerprint(exact.Plan(jobs(), 0))
	if a != b {
		t.Fatalf("below-threshold plan differs from exact mode:\n%s\nvs\n%s", a, b)
	}
}

// TestSparseConfigResolution covers the zero/positive/negative semantics
// of the two sparsification knobs.
func TestSparseConfigResolution(t *testing.T) {
	var c Config
	if c.sparseTopK() != DefaultSparseTopK {
		t.Errorf("zero SparseTopK → %d, want default %d", c.sparseTopK(), DefaultSparseTopK)
	}
	c.SparseTopK = 3
	if c.sparseTopK() != 3 {
		t.Errorf("explicit SparseTopK ignored")
	}
	if c.sparseThreshold() != DefaultSparseNodeThreshold {
		t.Errorf("zero threshold → %d, want default %d", c.sparseThreshold(), DefaultSparseNodeThreshold)
	}
	c.SparseNodeThreshold = 64
	if c.sparseThreshold() != 64 {
		t.Errorf("explicit threshold ignored")
	}
	c.SparseNodeThreshold = -1
	big := sparseJobs(300, 2)
	nodes := make([]*node, len(big))
	for i, j := range big {
		nodes[i] = &node{jobs: []*job.Job{j}, profiles: []workload.StageTimes{j.Model.Stages}}
	}
	cfg := DefaultConfig()
	cfg.SparseNodeThreshold = -1
	dense := cfg.bucketEdges(nodes)
	cfg.SparseNodeThreshold = 0
	sparse := cfg.bucketEdges(nodes)
	if len(sparse) >= len(dense) {
		t.Errorf("default threshold did not sparsify a 300-node bucket: %d vs %d edges", len(sparse), len(dense))
	}
}
