package core

import (
	"fmt"
	"testing"

	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/workload"
)

// mixedJobs builds a priority-ordered candidate set spanning the whole
// zoo and several GPU buckets, with a little progress spread so GateJCT
// sees varied remaining-iteration counts.
func mixedJobs(n int) []*job.Job {
	zoo := workload.Zoo()
	gpuMix := []int{1, 1, 1, 1, 2, 2, 4, 8}
	jobs := make([]*job.Job, n)
	for i := 0; i < n; i++ {
		j := job.New(job.ID(i), zoo[i%len(zoo)], gpuMix[i%len(gpuMix)], 50_000, 0)
		j.DoneIterations = int64(i * 37 % 40_000)
		jobs[i] = j
	}
	return jobs
}

// groupsFingerprint renders a plan into a comparable string: member IDs
// in plan order, plan timing, and GPU bucket per group.
func groupsFingerprint(groups []Group) string {
	s := ""
	for _, g := range groups {
		s += fmt.Sprintf("gpus=%d iter=%d eff=%.17g jobs=", g.GPUs, g.Plan.IterTime, g.Plan.Efficiency)
		for _, j := range g.Jobs {
			s += fmt.Sprintf("%d,", j.ID)
		}
		s += "\n"
	}
	return s
}

// TestPlanParallelAndCachedUnchanged is the determinism guard for the
// scheduling-path overhaul: serial vs pooled edge construction, and
// cacheless vs cached evaluation, must produce identical plans for every
// gate. Run under -race this also exercises the worker pool for data
// races (the node-stats precompute, the shared cache, the concurrent
// RemainingIters calls).
func TestPlanParallelAndCachedUnchanged(t *testing.T) {
	remaining := func(j *job.Job) int64 {
		if j.DoneIterations > 100 {
			return j.DoneIterations
		}
		return 100
	}
	for _, gate := range []Gate{GateThroughput, GateJCT, GateNone} {
		for _, capacity := range []int{0, 64} {
			variant := func(workers int, cache *interleave.EffCache) string {
				cfg := DefaultConfig()
				cfg.Gate = gate
				cfg.EdgeWorkers = workers
				cfg.Cache = cache
				if gate == GateJCT {
					cfg.RemainingIters = remaining
				}
				return groupsFingerprint(cfg.Plan(mixedJobs(160), capacity))
			}
			base := variant(1, nil)
			if base == "" {
				t.Fatalf("gate %v cap %d: empty plan", gate, capacity)
			}
			for name, got := range map[string]string{
				"parallel-nocache":   variant(8, nil),
				"serial-cache":       variant(1, interleave.NewEffCache(0)),
				"parallel-cache":     variant(8, interleave.NewEffCache(0)),
				"parallel-tinycache": variant(8, interleave.NewEffCache(16)),
			} {
				if got != base {
					t.Errorf("gate %v cap %d: %s plan differs from serial-nocache\nbase:\n%s\ngot:\n%s",
						gate, capacity, name, base, got)
				}
			}
		}
	}
}

// TestPlanCacheReuseAcrossCalls checks that a warm cache actually short-
// circuits work across scheduling intervals: the second Plan over the
// same candidate profiles must be answered almost entirely from cache.
func TestPlanCacheReuseAcrossCalls(t *testing.T) {
	cfg := DefaultConfig()
	jobs := mixedJobs(120)
	cfg.Plan(jobs, 64)
	st1 := cfg.Cache.Stats()
	if st1.Lookups() == 0 {
		t.Fatal("plan performed no cache lookups")
	}
	cfg.Plan(jobs, 64)
	st2 := cfg.Cache.Stats()
	if st2.Misses != st1.Misses {
		t.Errorf("second plan missed the cache %d times; want 0 new misses", st2.Misses-st1.Misses)
	}
	if st2.Hits <= st1.Hits {
		t.Errorf("second plan recorded no cache hits: %+v -> %+v", st1, st2)
	}
}

// TestBucketEdgesParallelMatchesSerial drives bucketEdges directly at a
// size above the parallel threshold and compares the edge lists.
func TestBucketEdgesParallelMatchesSerial(t *testing.T) {
	jobs := mixedJobs(100)
	nodes := make([]*node, 0, len(jobs))
	for _, j := range jobs {
		if j.GPUs != 1 {
			continue
		}
		nodes = append(nodes, &node{jobs: []*job.Job{j}, profiles: []workload.StageTimes{j.Profile}})
	}
	if len(nodes) < parallelEdgeThreshold {
		t.Fatalf("need ≥%d nodes, have %d", parallelEdgeThreshold, len(nodes))
	}
	mk := func(workers int) Config {
		cfg := DefaultConfig()
		cfg.EdgeWorkers = workers
		return cfg
	}
	// Fresh node copies per run: bucketEdges memoizes stats on the nodes.
	clone := func() []*node {
		out := make([]*node, len(nodes))
		for i, n := range nodes {
			out[i] = &node{jobs: n.jobs, profiles: n.profiles}
		}
		return out
	}
	serial := mk(1).bucketEdges(clone())
	for _, workers := range []int{2, 4, 8} {
		parallel := mk(workers).bucketEdges(clone())
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d edges, serial %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: edge %d = %+v, serial %+v", workers, i, parallel[i], serial[i])
			}
		}
	}
}
