package core

import (
	"math/rand"
	"testing"
	"time"

	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/workload"
)

const unit = time.Second

func mkJob(id int, gpus int, stages workload.StageTimes) *job.Job {
	m := workload.Model{Name: "toy", Stages: stages}
	return job.New(job.ID(id), m, gpus, 1000, 0)
}

// cpuHeavy and gpuHeavy are the Figure 4 job shapes lifted to k=4 with
// small storage/network stages so that efficiency still favors pairing a
// CPU-heavy job with a GPU-heavy one.
func cpuHeavy(id int) *job.Job {
	return mkJob(id, 1, workload.StageTimes{1 * unit, 8 * unit, 2 * unit, 1 * unit})
}

func gpuHeavy(id int) *job.Job {
	return mkJob(id, 1, workload.StageTimes{1 * unit, 2 * unit, 8 * unit, 1 * unit})
}

func ideal() Config {
	c := DefaultConfig()
	c.Interleave = interleave.Config{} // no contention, easier to reason about
	return c
}

func TestGroupBucketPairsComplements(t *testing.T) {
	// Two CPU-heavy and two GPU-heavy jobs: the optimal pairing puts one
	// of each in every group (Figure 4 plan 1), never two alike.
	cfg := ideal()
	cfg.MaxGroupSize = 2
	jobs := []*job.Job{cpuHeavy(0), cpuHeavy(1), gpuHeavy(2), gpuHeavy(3)}
	groups := cfg.GroupBucket(jobs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		if len(g.Jobs) != 2 {
			t.Fatalf("group size %d, want 2", len(g.Jobs))
		}
		a, b := g.Jobs[0], g.Jobs[1]
		aCPU := a.Profile[workload.CPU] > a.Profile[workload.GPU]
		bCPU := b.Profile[workload.CPU] > b.Profile[workload.GPU]
		if aCPU == bCPU {
			t.Errorf("group pairs two alike jobs: %v and %v", a.Profile, b.Profile)
		}
	}
}

func TestGroupBucketRespectsMaxGroupSize(t *testing.T) {
	for _, max := range []int{2, 3, 4} {
		cfg := ideal()
		cfg.MaxGroupSize = max
		var jobs []*job.Job
		for i := 0; i < 11; i++ {
			if i%2 == 0 {
				jobs = append(jobs, cpuHeavy(i))
			} else {
				jobs = append(jobs, gpuHeavy(i))
			}
		}
		groups := cfg.GroupBucket(jobs)
		total := 0
		for _, g := range groups {
			if len(g.Jobs) > max {
				t.Errorf("max=%d: group of %d jobs", max, len(g.Jobs))
			}
			total += len(g.Jobs)
		}
		if total != len(jobs) {
			t.Errorf("max=%d: groups cover %d jobs, want %d", max, total, len(jobs))
		}
	}
}

func TestGroupBucketSingleJob(t *testing.T) {
	cfg := ideal()
	groups := cfg.GroupBucket([]*job.Job{cpuHeavy(0)})
	if len(groups) != 1 || len(groups[0].Jobs) != 1 {
		t.Fatalf("groups = %v, want one singleton", groups)
	}
	if groups[0].Plan.IterTime != 12*unit {
		t.Errorf("singleton iter time = %v, want serial 12s", groups[0].Plan.IterTime)
	}
}

func TestGroupBucketEmpty(t *testing.T) {
	if got := ideal().GroupBucket(nil); got != nil {
		t.Errorf("GroupBucket(nil) = %v, want nil", got)
	}
}

func TestGroupBucketMixedGPUsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed GPU bucket should panic")
		}
	}()
	ideal().GroupBucket([]*job.Job{mkJob(0, 1, workload.StageTimes{unit, 0, 0, 0}), mkJob(1, 2, workload.StageTimes{unit, 0, 0, 0})})
}

func TestBlossomBeatsGreedyOnAdversarialOrder(t *testing.T) {
	// Priority order alternates poorly: greedy pairs adjacent jobs (two
	// alike), Blossom finds the cross pairing. Compare total efficiency.
	jobs := []*job.Job{cpuHeavy(0), cpuHeavy(1), gpuHeavy(2), gpuHeavy(3)}
	withBlossom := ideal()
	withBlossom.MaxGroupSize = 2
	noBlossom := withBlossom
	noBlossom.UseBlossom = false

	sumEff := func(groups []Group) float64 {
		s := 0.0
		for _, g := range groups {
			s += g.Plan.Efficiency
		}
		return s
	}
	gb := sumEff(withBlossom.GroupBucket(jobs))
	gg := sumEff(noBlossom.GroupBucket(jobs))
	if gb <= gg {
		t.Errorf("Blossom total efficiency %v should beat greedy %v", gb, gg)
	}
}

func TestWorstOrderingSlower(t *testing.T) {
	a := mkJob(0, 1, workload.StageTimes{1 * unit, 2 * unit, 1 * unit, 1 * unit})
	b := mkJob(1, 1, workload.StageTimes{1 * unit, 1 * unit, 2 * unit, 1 * unit})
	best := ideal()
	worst := ideal()
	worst.WorstOrdering = true
	gBest := best.GroupBucket([]*job.Job{a, b})
	gWorst := worst.GroupBucket([]*job.Job{a, b})
	if gBest[0].Plan.IterTime >= gWorst[0].Plan.IterTime {
		t.Errorf("best ordering %v should be faster than worst %v",
			gBest[0].Plan.IterTime, gWorst[0].Plan.IterTime)
	}
}

func TestGroupPlanOrderIsIdentityAfterFinalize(t *testing.T) {
	cfg := ideal()
	groups := cfg.GroupBucket([]*job.Job{cpuHeavy(0), gpuHeavy(1), cpuHeavy(2), gpuHeavy(3)})
	for _, g := range groups {
		for i, o := range g.Plan.Order {
			if o != i {
				t.Errorf("plan order %v not identity after finalize", g.Plan.Order)
			}
		}
	}
}

func TestExecutionIterTimeUsesTrueProfile(t *testing.T) {
	a := cpuHeavy(0)
	b := gpuHeavy(1)
	// Scheduler believes the profiles, but true execution is 2× slower.
	a.TrueProfile = a.Profile.Scale(2)
	b.TrueProfile = b.Profile.Scale(2)
	cfg := ideal()
	g := cfg.GroupBucket([]*job.Job{a, b})[0]
	exec := g.ExecutionIterTime(cfg.Interleave)
	if exec != 2*g.Plan.IterTime {
		t.Errorf("execution iter time = %v, want 2× plan %v", exec, g.Plan.IterTime)
	}
}

func TestRoundsCount(t *testing.T) {
	for max, want := range map[int]int{2: 1, 3: 2, 4: 2} {
		c := Config{MaxGroupSize: max}
		if got := c.rounds(); got != want {
			t.Errorf("rounds(max=%d) = %d, want %d", max, got, want)
		}
	}
}

func TestMaxGroupClamping(t *testing.T) {
	if got := (Config{MaxGroupSize: 0}).maxGroup(); got != interleave.MaxGroupSize {
		t.Errorf("maxGroup(0) = %d, want default %d", got, interleave.MaxGroupSize)
	}
	if got := (Config{MaxGroupSize: 9}).maxGroup(); got != interleave.MaxGroupSize {
		t.Errorf("maxGroup(9) = %d, want clamp %d", got, interleave.MaxGroupSize)
	}
}

func TestBucketByGPUs(t *testing.T) {
	jobs := []*job.Job{
		mkJob(0, 1, workload.StageTimes{unit, 0, 0, 0}),
		mkJob(1, 8, workload.StageTimes{unit, 0, 0, 0}),
		mkJob(2, 1, workload.StageTimes{unit, 0, 0, 0}),
		mkJob(3, 4, workload.StageTimes{unit, 0, 0, 0}),
	}
	keys, buckets := BucketByGPUs(jobs)
	if len(keys) != 3 || keys[0] != 8 || keys[1] != 4 || keys[2] != 1 {
		t.Fatalf("keys = %v, want [8 4 1]", keys)
	}
	if len(buckets[1]) != 2 || buckets[1][0].ID != 0 || buckets[1][1].ID != 2 {
		t.Errorf("bucket[1] order not preserved: %v", buckets[1])
	}
}

func TestGroupAllNeverMixesGPURequirements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var jobs []*job.Job
	for i := 0; i < 40; i++ {
		gpus := 1 << rng.Intn(4)
		var st workload.StageTimes
		for r := 0; r < workload.NumResources; r++ {
			st[r] = time.Duration(rng.Intn(50)+1) * time.Millisecond
		}
		jobs = append(jobs, mkJob(i, gpus, st))
	}
	groups := DefaultConfig().GroupAll(jobs)
	seen := make(map[job.ID]bool)
	for _, g := range groups {
		for _, j := range g.Jobs {
			if j.GPUs != g.GPUs {
				t.Errorf("group with GPUs=%d contains job needing %d", g.GPUs, j.GPUs)
			}
			if seen[j.ID] {
				t.Errorf("job %d appears in two groups", j.ID)
			}
			seen[j.ID] = true
		}
	}
	if len(seen) != len(jobs) {
		t.Errorf("groups cover %d jobs, want %d", len(seen), len(jobs))
	}
}

func TestGroupingImprovesAggregateThroughput(t *testing.T) {
	// Property: for complementary workloads, grouped execution should
	// deliver more aggregate normalized throughput than serial execution.
	var jobs []*job.Job
	models := workload.Zoo()
	for i, m := range models {
		jobs = append(jobs, job.New(job.ID(i), m, 1, 1000, 0))
	}
	cfg := DefaultConfig()
	groups := cfg.GroupBucket(jobs)
	totalNorm := 0.0
	for _, g := range groups {
		times := make([]workload.StageTimes, len(g.Jobs))
		for i, j := range g.Jobs {
			times[i] = j.Profile
		}
		totalNorm += cfg.Interleave.SpeedupOverSerial(times)
	}
	// 8 jobs run serially deliver 8 jobs in 8 slots = aggregate 8·(1/8)=1
	// per slot... more simply: summed normalized throughput must exceed
	// the group count (every group beats running its members serially).
	if totalNorm <= float64(len(groups)) {
		t.Errorf("aggregate normalized throughput %v should exceed #groups %d", totalNorm, len(groups))
	}
}

func TestMinEfficiencyFiltersPairs(t *testing.T) {
	cfg := ideal()
	cfg.MinEfficiency = 2 // impossible: no edge survives
	jobs := []*job.Job{cpuHeavy(0), gpuHeavy(1)}
	groups := cfg.GroupBucket(jobs)
	if len(groups) != 2 {
		t.Errorf("got %d groups, want 2 singletons when every edge is filtered", len(groups))
	}
}

func TestDeterministicGrouping(t *testing.T) {
	mk := func() []*job.Job {
		var jobs []*job.Job
		for i, m := range workload.Zoo() {
			jobs = append(jobs, job.New(job.ID(i), m, 1, 100, 0))
		}
		return jobs
	}
	g1 := DefaultConfig().GroupAll(mk())
	g2 := DefaultConfig().GroupAll(mk())
	if len(g1) != len(g2) {
		t.Fatalf("nondeterministic group count: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if len(g1[i].Jobs) != len(g2[i].Jobs) {
			t.Fatalf("group %d size differs", i)
		}
		for k := range g1[i].Jobs {
			if g1[i].Jobs[k].ID != g2[i].Jobs[k].ID {
				t.Errorf("group %d member %d differs: %d vs %d", i, k, g1[i].Jobs[k].ID, g2[i].Jobs[k].ID)
			}
		}
	}
}

func TestPlanWithSeedsKeepsSeed(t *testing.T) {
	cfg := ideal()
	a, b := cpuHeavy(0), gpuHeavy(1)
	c, d := cpuHeavy(2), gpuHeavy(3)
	// Seed {a, b}; loose jobs {c, d}. Capacity 1 forces heavy merging but
	// the seed must stay together (possibly absorbing more members).
	groups := cfg.PlanWithSeeds([][]*job.Job{{a, b}}, []*job.Job{c, d}, 1)
	var seedGroup *Group
	for i := range groups {
		for _, j := range groups[i].Jobs {
			if j.ID == a.ID {
				seedGroup = &groups[i]
			}
		}
	}
	if seedGroup == nil {
		t.Fatal("seed member lost")
	}
	foundB := false
	for _, j := range seedGroup.Jobs {
		if j.ID == b.ID {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("seed split apart: group %v", seedGroup.Jobs)
	}
}

func TestPlanWithSeedsRejectsBadSeeds(t *testing.T) {
	cfg := ideal()
	// Mixed GPU requirements: the seed must be ignored, not panic.
	a := mkJob(0, 1, workload.StageTimes{unit, 0, 0, 0})
	b := mkJob(1, 2, workload.StageTimes{unit, 0, 0, 0})
	groups := cfg.PlanWithSeeds([][]*job.Job{{a, b}}, nil, 1)
	// The bad seed is dropped entirely (its members were not passed as
	// loose jobs), so nothing is planned.
	if len(groups) != 0 {
		t.Errorf("bad seed produced groups: %v", groups)
	}
	// An oversized seed is ignored the same way.
	var five []*job.Job
	for i := 0; i < 5; i++ {
		five = append(five, mkJob(10+i, 1, workload.StageTimes{unit, 0, 0, 0}))
	}
	if groups := cfg.PlanWithSeeds([][]*job.Job{five}, nil, 1); len(groups) != 0 {
		t.Errorf("oversized seed produced groups: %v", groups)
	}
}

func TestPlanCapacityStopsMerging(t *testing.T) {
	// Demand 4 GPUs, capacity 3: exactly one merge is needed; with
	// capacity 4 none are.
	cfg := ideal()
	jobs := []*job.Job{cpuHeavy(0), gpuHeavy(1), cpuHeavy(2), gpuHeavy(3)}
	count := func(groups []Group) (pairs, singles int) {
		for _, g := range groups {
			if len(g.Jobs) > 1 {
				pairs++
			} else {
				singles++
			}
		}
		return
	}
	pairs, singles := count(cfg.Plan(jobs, 3))
	if pairs != 1 || singles != 2 {
		t.Errorf("capacity 3: %d pairs, %d singles; want 1 and 2", pairs, singles)
	}
	pairs, singles = count(cfg.Plan(jobs, 4))
	if pairs != 0 || singles != 4 {
		t.Errorf("capacity 4: %d pairs, %d singles; want 0 and 4", pairs, singles)
	}
	pairs, singles = count(cfg.Plan(jobs, 2))
	if pairs != 2 || singles != 0 {
		t.Errorf("capacity 2: %d pairs, %d singles; want 2 and 0", pairs, singles)
	}
}

func TestPlanCoversAllJobsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		var jobs []*job.Job
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			gpus := 1 << rng.Intn(3)
			var st workload.StageTimes
			for r := 0; r < workload.NumResources; r++ {
				st[r] = time.Duration(rng.Intn(80)+1) * time.Millisecond
			}
			jobs = append(jobs, mkJob(i, gpus, st))
		}
		capacity := 1 + rng.Intn(2*n)
		groups := DefaultConfig().Plan(jobs, capacity)
		seen := make(map[job.ID]int)
		for _, g := range groups {
			for _, j := range g.Jobs {
				seen[j.ID]++
				if j.GPUs != g.GPUs {
					t.Fatalf("trial %d: job %d (%d GPUs) in %d-GPU group", trial, j.ID, j.GPUs, g.GPUs)
				}
			}
			if len(g.Jobs) > 4 {
				t.Fatalf("trial %d: group of %d members", trial, len(g.Jobs))
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: plan covers %d of %d jobs", trial, len(seen), n)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: job %d appears %d times", trial, id, c)
			}
		}
	}
}
