package core

import (
	"math/rand"
	"testing"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

// TestShardOfProperties pins the shard hash contract: assignments are in
// range, stable for a fixed (id, epoch), and the epoch salt actually
// reshuffles the partition (the cross-shard rebalance: pairs split by
// one partition get a chance to meet after any merge).
func TestShardOfProperties(t *testing.T) {
	const shards = 4
	moved := 0
	counts := make([]int, shards)
	for id := 0; id < 4096; id++ {
		s := shardOf(job.ID(id), 0, shards)
		if s < 0 || s >= shards {
			t.Fatalf("shardOf(%d, 0, %d) = %d out of range", id, shards, s)
		}
		if s != shardOf(job.ID(id), 0, shards) {
			t.Fatalf("shardOf unstable for id %d", id)
		}
		if s != shardOf(job.ID(id), 1, shards) {
			moved++
		}
		counts[s]++
	}
	if moved < 4096/4 {
		t.Errorf("epoch salt moved only %d/4096 ids; rebalance is too weak", moved)
	}
	for s, n := range counts {
		if n < 4096/shards/2 || n > 4096*2/shards {
			t.Errorf("shard %d holds %d/4096 ids; partition badly skewed", s, n)
		}
	}
}

// TestEffectiveShards covers the engagement threshold and the
// minimum-nodes-per-shard cap.
func TestEffectiveShards(t *testing.T) {
	cases := []struct {
		shards, threshold, n, want int
	}{
		{0, 0, 1000, 1},  // unsharded config
		{1, 0, 1000, 1},  // explicit serial
		{4, 0, 31, 1},    // below default threshold
		{4, 0, 32, 2},    // at threshold, capped by 32/16
		{4, 0, 64, 4},    // full fan-out
		{8, 0, 64, 4},    // capped: 64/16 = 4 shards
		{8, 0, 1000, 8},  // large bucket, full fan-out
		{4, 100, 64, 1},  // custom threshold not reached
		{4, 100, 100, 4}, // custom threshold reached
	}
	for _, tc := range cases {
		c := Config{Shards: tc.shards, ShardNodeThreshold: tc.threshold}
		if got := c.effectiveShards(tc.n); got != tc.want {
			t.Errorf("effectiveShards(shards=%d thr=%d n=%d) = %d, want %d",
				tc.shards, tc.threshold, tc.n, got, tc.want)
		}
	}
}

// TestShardsOneBitIdentical is the sharding safety property: Shards=1 —
// with any worker-pool width — must produce exactly the plan of the
// unsharded configuration.
func TestShardsOneBitIdentical(t *testing.T) {
	base := DefaultConfig()
	want := planFingerprint(base.Plan(sparseJobs(300, 21), 64))

	one := DefaultConfig()
	one.Shards = 1
	if got := planFingerprint(one.Plan(sparseJobs(300, 21), 64)); got != want {
		t.Fatalf("Shards=1 plan differs from unsharded:\n%s\nvs\n%s", got, want)
	}
	wide := DefaultConfig()
	wide.Shards = 1
	wide.EdgeWorkers = 8
	if got := planFingerprint(wide.Plan(sparseJobs(300, 21), 64)); got != want {
		t.Fatalf("Shards=1/EdgeWorkers=8 plan differs from unsharded:\n%s\nvs\n%s", got, want)
	}
}

// TestShardedPlanDeterministic runs sharded planning repeatedly and
// across worker-pool widths: shard tasks run concurrently, but indexed
// result slots and shard-order concatenation make the plan a pure
// function of (jobs, config).
func TestShardedPlanDeterministic(t *testing.T) {
	mk := func(workers int) string {
		c := DefaultConfig()
		c.Shards = 4
		c.EdgeWorkers = workers
		return planFingerprint(c.Plan(sparseJobs(300, 22), 64))
	}
	want := mk(1)
	if want == "" {
		t.Fatal("empty plan")
	}
	for run := 0; run < 3; run++ {
		if got := mk(8); got != want {
			t.Fatalf("sharded plan not deterministic (run %d):\n%s\nvs\n%s", run, got, want)
		}
	}
}

// TestShardedMatchingWeightBound is the sharding quality property
// (DESIGN.md §10, mirroring the sparsification bound in
// TestSparseMatchingWeightBound): one sharded sweep retains at least 97%
// of the unsharded matching weight. Pair efficiencies cluster near the
// top of the scale, so a random node partition still offers every node a
// near-best partner inside its own shard.
func TestShardedMatchingWeightBound(t *testing.T) {
	if testing.Short() {
		t.Skip("dense Blossom runs are slow")
	}
	weight := func(props []cachedProp) float64 {
		s := 0.0
		for _, p := range props {
			s += p.weight
		}
		return s
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		n := 100 + rng.Intn(150)
		jobs := sparseJobs(n, int64(400+trial))
		nodes := make([]*node, len(jobs))
		for i, j := range jobs {
			nodes[i] = &node{jobs: []*job.Job{j}, profiles: []workload.StageTimes{j.Model.Stages}}
		}
		serial := DefaultConfig()
		serial.SparseNodeThreshold = -1
		dense := weight(serial.matchNodes(nodes, nil))

		sharded := serial
		sharded.Shards = 4
		st := &bucketState{gpus: 1, nodes: nodes}
		split := weight(sharded.freshProposals(st))
		if dense > 0 && split < 0.97*dense {
			t.Errorf("trial %d: sharded matching weight %.4f < 97%% of unsharded %.4f (n=%d)",
				trial, split, dense, n)
		}
	}
}

// TestIncrementalPlanBitIdentical is the correctness property of
// cross-round replay: over a multi-seed script of arrivals, completions,
// and remaining-iteration changes (the quantized-estimate analogue of
// faults and preemptions), a persistent Planner must reproduce the exact
// plan of full re-matching, round for round — sharded and unsharded.
func TestIncrementalPlanBitIdentical(t *testing.T) {
	for _, shards := range []int{0, 4} {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed))
			rem := map[job.ID]int64{}
			remFn := func(j *job.Job) int64 { return rem[j.ID] }

			inc := DefaultConfig()
			inc.Gate = GateJCT
			inc.RemainingIters = remFn
			inc.Shards = shards
			inc.Planner = NewPlanState()
			full := inc
			full.Planner = nil

			var pop []*job.Job
			nextID := 0
			for round := 0; round < 40; round++ {
				for k := rng.Intn(8); k > 0; k-- {
					var stg workload.StageTimes
					for r := 0; r < workload.NumResources; r++ {
						stg[r] = time.Duration(rng.Intn(200)+10) * time.Millisecond
					}
					j := mkJob(nextID, 1<<rng.Intn(3), stg)
					rem[j.ID] = 100 << rng.Intn(4)
					pop = append(pop, j)
					nextID++
				}
				for k := rng.Intn(3); k > 0 && len(pop) > 0; k-- {
					i := rng.Intn(len(pop))
					pop = append(pop[:i], pop[i+1:]...)
				}
				for _, j := range pop {
					if rng.Intn(10) == 0 && rem[j.ID] > 1 {
						rem[j.ID] /= 2 // quantized estimate decay
					}
				}
				a := planFingerprint(inc.Plan(pop, 64))
				b := planFingerprint(full.Plan(pop, 64))
				if a != b {
					t.Fatalf("shards=%d seed=%d round=%d: incremental plan diverged:\n%s\nvs\n%s",
						shards, seed, round, a, b)
				}
			}
			st := inc.Planner.Stats()
			if st.ReplaySweeps == 0 {
				t.Errorf("shards=%d seed=%d: replay never engaged (fresh=%d fixpoint=%d)",
					shards, seed, st.FreshSweeps, st.FixpointSweeps)
			}
		}
	}
}
