package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"muri/internal/blossom"
	"muri/internal/job"
)

// Sharding defaults. Sharding cuts the quadratic pair-evaluation and the
// cubic Blossom cost by the shard count even on one core (S shards of
// n/S nodes evaluate n²/S pairs instead of n²), and the shard tasks run
// concurrently on multicore hosts. Small buckets are matched whole:
// splitting them saves little and costs matching quality.
const (
	// DefaultShardNodeThreshold is the bucket node count at or above
	// which sharding engages.
	DefaultShardNodeThreshold = 32
	// minShardNodes caps the shard count so every shard keeps enough
	// nodes for the matcher to have real choices (quality bound,
	// TestShardedMatchingWeightBound).
	minShardNodes = 16
)

// shardCount resolves the configured shard count.
func (c Config) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 1
}

// shardThreshold resolves the bucket size at which sharding engages.
func (c Config) shardThreshold() int {
	if c.ShardNodeThreshold > 0 {
		return c.ShardNodeThreshold
	}
	return DefaultShardNodeThreshold
}

// effectiveShards returns how many shards an n-node bucket is split into:
// 1 below the threshold, and never so many that shards drop below
// minShardNodes expected nodes.
func (c Config) effectiveShards(n int) int {
	s := c.shardCount()
	if s <= 1 || n < c.shardThreshold() {
		return 1
	}
	if max := n / minShardNodes; s > max {
		s = max
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardOf assigns a node (by its minimum member job ID) to a shard with a
// splitmix64-style hash salted by the bucket's merge epoch. The epoch
// advances only when merges are applied, so the partition is stable while
// the bucket is unchanged (preserving the sweep-fixpoint reuse) and
// reshuffles — the cross-shard rebalance pass — exactly when the node set
// changes, giving pairs split by the previous partition a chance to meet.
func shardOf(id job.ID, epoch uint64, shards int) int {
	x := uint64(id) + 0x9e3779b97f4a7c15*(epoch+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// minJobID returns the smallest member job ID — stable across merges and
// independent of arrival order, which keeps shard assignment
// deterministic for a given node set.
func minJobID(n *node) job.ID {
	min := n.jobs[0].ID
	for _, j := range n.jobs[1:] {
		if j.ID < min {
			min = j.ID
		}
	}
	return min
}

// bucketState carries one GPU bucket through the multi-round planner.
type bucketState struct {
	gpus  int
	nodes []*node
	// epoch counts merges applied to this bucket (the shard rebalance
	// salt).
	epoch uint64
	// dropped is the reusable compaction scratch (satellite: no
	// per-sweep node-slice reallocation).
	dropped []bool

	// lastProps / lastAccepted feed the same-plan fixpoint: a sweep that
	// accepted nothing left the nodes and epoch unchanged, so the next
	// sweep's proposals are necessarily identical.
	lastProps    []cachedProp
	lastAccepted int

	// Cross-round replay bookkeeping (nil planner leaves these unused).
	sig      []int64
	bc       *bucketCache
	clean    bool
	replayed bool // this sweep came from bc (divergence check applies)
	rec      []cachedSweep
}

// ensureDropped sizes the compaction scratch. Flags are reset by the
// compaction pass itself, so the slice stays all-false between uses.
func (st *bucketState) ensureDropped(n int) {
	if cap(st.dropped) < n {
		st.dropped = make([]bool, n)
		return
	}
	st.dropped = st.dropped[:n]
}

// copyProps clones a proposal stream with acceptance flags cleared.
func copyProps(src []cachedProp) []cachedProp {
	out := make([]cachedProp, len(src))
	copy(out, src)
	for i := range out {
		out[i].accepted = false
	}
	return out
}

// sweepProposals produces one bucket's proposals for one sweep, choosing
// the cheapest exact source: the prior round's recorded stream (clean
// bucket, incremental mode), the previous sweep's stream (fixpoint: no
// merge was accepted, so the bucket is unchanged), or fresh edge
// construction + matching, sharded when the bucket is large enough.
func (c Config) sweepProposals(st *bucketState, sweep int) []cachedProp {
	ps := c.Planner
	st.replayed = false
	if st.clean && st.bc != nil && sweep < len(st.bc.sweeps) {
		st.replayed = true
		if ps != nil {
			ps.replays.Add(1)
		}
		return copyProps(st.bc.sweeps[sweep].props)
	}
	if sweep > 0 && st.lastProps != nil && st.lastAccepted == 0 {
		if ps != nil {
			ps.fixpoints.Add(1)
		}
		return copyProps(st.lastProps)
	}
	// Past the cached history with the bucket since modified: replay can
	// never resume.
	st.clean = false
	if len(st.nodes) < 2 {
		return nil
	}
	if ps != nil {
		ps.fresh.Add(1)
	}
	return c.freshProposals(st)
}

// freshProposals runs edge construction and Blossom matching over the
// bucket, splitting large buckets into deterministic shards that run as
// tasks on a bounded worker pool with indexed result slots (the same
// determinism-despite-concurrency pattern as the EdgeWorkers pool).
// Shard streams are concatenated in shard order, so the result is a pure
// function of (nodes, epoch, config) regardless of worker interleaving,
// and Shards=1 — or any bucket below the threshold — follows the exact
// unsharded path.
func (c Config) freshProposals(st *bucketState) []cachedProp {
	shards := c.effectiveShards(len(st.nodes))
	if shards <= 1 {
		return c.matchNodes(st.nodes, nil)
	}
	parts := make([][]int32, shards)
	guess := len(st.nodes)/shards + 1
	for s := range parts {
		parts[s] = make([]int32, 0, guess+guess/2)
	}
	for i, nd := range st.nodes {
		s := shardOf(minJobID(nd), st.epoch, shards)
		parts[s] = append(parts[s], int32(i))
	}
	if ps := c.Planner; ps != nil {
		for s := 0; s < shards; s++ {
			ps.shardTask(s)
		}
	}
	// Shard tasks are the unit of parallelism here; force the per-shard
	// edge construction serial so the pools do not multiply.
	sub := c
	sub.EdgeWorkers = 1
	results := make([][]cachedProp, shards)
	workers := c.edgeWorkers()
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := range parts {
			results[s] = sub.matchShard(st.nodes, parts[s])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= shards {
						return
					}
					results[s] = sub.matchShard(st.nodes, parts[s])
				}
			}()
		}
		wg.Wait()
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]cachedProp, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return c.rebalance(sub, st, out)
}

// rebalance is the cheap cross-shard pass that holds the sharded
// matching weight within the TestShardedMatchingWeightBound quality
// bound (the epoch reshuffle between sweeps is its long-range
// complement). Nodes their shard left unmatched, plus the nodes of the
// weakest eighth of the matched pairs, get one global re-match. The
// dissolved pairs are themselves a feasible matching of that subset, so
// max-weight matching over it can only improve the total weight; the
// subset is an eighth of the bucket, so the extra cost is n²/128 pair
// evaluations against the n²/2S the shards already paid.
func (c Config) rebalance(sub Config, st *bucketState, out []cachedProp) []cachedProp {
	matched := make([]bool, len(st.nodes))
	for _, p := range out {
		matched[p.u] = true
		matched[p.v] = true
	}
	var left []int32
	for i := range st.nodes {
		if !matched[i] {
			left = append(left, int32(i))
		}
	}
	if weak := len(out) / 8; weak > 0 {
		idxs := make([]int, len(out))
		for i := range idxs {
			idxs[i] = i
		}
		sort.Slice(idxs, func(a, b int) bool {
			pa, pb := out[idxs[a]], out[idxs[b]]
			if pa.weight != pb.weight {
				return pa.weight < pb.weight
			}
			if pa.u != pb.u {
				return pa.u < pb.u
			}
			return pa.v < pb.v
		})
		drop := make([]bool, len(out))
		for _, i := range idxs[:weak] {
			drop[i] = true
			left = append(left, out[i].u, out[i].v)
		}
		kept := make([]cachedProp, 0, len(out)-weak)
		for i, p := range out {
			if !drop[i] {
				kept = append(kept, p)
			}
		}
		out = kept
	}
	if len(left) < 2 {
		return out
	}
	sort.Slice(left, func(a, b int) bool { return left[a] < left[b] })
	return append(out, sub.matchShard(st.nodes, left)...)
}

// matchShard matches the sub-bucket selected by idx, mapping proposal
// indices back to bucket-global node indices. idx is ascending, so the
// u < v orientation survives the mapping.
func (c Config) matchShard(nodes []*node, idx []int32) []cachedProp {
	if len(idx) < 2 {
		return nil
	}
	sub := make([]*node, len(idx))
	for k, i := range idx {
		sub[k] = nodes[i]
	}
	return c.matchNodes(sub, idx)
}

// matchNodes is the core of one bucket-sweep: build the gain-gated
// grouping graph, run Blossom, and recover the matched pairs in
// deterministic u-major edge order with their recorded weights and gains.
// gidx, when non-nil, maps local node indices to bucket-global ones.
func (c Config) matchNodes(nodes []*node, gidx []int32) []cachedProp {
	if len(nodes) < 2 {
		return nil
	}
	edges, gains := c.bucketGraph(nodes)
	if len(edges) == 0 {
		return nil
	}
	mate := blossom.MatchPooled(len(nodes), edges, false)
	var props []cachedProp
	for k, e := range edges {
		if mate[e.I] != e.J {
			continue
		}
		u, v := int32(e.I), int32(e.J)
		if gidx != nil {
			u, v = gidx[u], gidx[v]
		}
		props = append(props, cachedProp{u: u, v: v, weight: e.Weight, gain: gains[k]})
	}
	return props
}
