// Package core implements the paper's primary contribution: the
// multi-round, Blossom-based job grouping algorithm (Algorithm 1) together
// with GPU-requirement bucketing for multi-GPU jobs (paper §4.2).
//
// Grouping works on a graph whose nodes are jobs (later: merged job
// groups) and whose edge weights are interleaving efficiencies. Each round
// finds a maximum weighted matching with the Blossom algorithm and merges
// every matched pair into one node; log₂k rounds produce groups of up to
// k jobs for k resource types. Multi-GPU jobs are only grouped with jobs
// of the same GPU requirement, which avoids the cascading slowdown from
// cross-group packing (Figure 7).
package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"muri/internal/blossom"
	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/workload"
)

// Config controls the grouping algorithm. The zero value is not useful;
// use DefaultConfig as a starting point.
type Config struct {
	// Interleave is the contention model used to score and plan groups.
	Interleave interleave.Config
	// MaxGroupSize caps the number of jobs per group (2–4). The paper's
	// default is k = 4, one job per resource type; Figure 12 sweeps 2–4.
	MaxGroupSize int
	// UseBlossom selects the matching strategy: true runs Algorithm 1;
	// false reproduces the "Muri-L w/o Blossom" ablation, which packs
	// adjacent jobs in the given (priority) order.
	UseBlossom bool
	// WorstOrdering reproduces the "Muri-L w/ worst ordering" ablation:
	// groups execute with the least-efficient stage ordering.
	WorstOrdering bool
	// MinEfficiency drops pairings whose interleaving efficiency does not
	// exceed it. Zero keeps every positive-efficiency pairing.
	MinEfficiency float64
	// Gate selects the merge-benefit check (see Gate constants).
	Gate Gate
	// RemainingIters estimates a job's remaining iterations for GateJCT.
	// Nil uses the job's true remaining count (known durations, Muri-S).
	// Muri-L supplies the least-attained-service heuristic: for
	// heavy-tailed DL duration distributions, a job's expected remaining
	// work is proportional to what it has already attained. It must be
	// safe for concurrent calls: the grouping-graph workers invoke it in
	// parallel.
	RemainingIters func(*job.Job) int64
	// Cache memoizes best-ordering group statistics (pair efficiencies,
	// node γ/T, JCT-gate iteration times) across Blossom rounds and
	// scheduling intervals. Profiles are immutable per job, so cached
	// values are bit-identical to fresh computation and schedules do not
	// depend on cache state. Nil disables memoization.
	Cache *interleave.EffCache
	// EdgeWorkers bounds the worker pool that evaluates grouping-graph
	// edge weights. 0 uses GOMAXPROCS; 1 forces serial construction.
	// Edges are collected in deterministic (u,v) order either way.
	EdgeWorkers int
	// SparseTopK bounds the grouping graph handed to the Blossom matcher
	// in sparse mode: each node contributes only its SparseTopK
	// highest-efficiency candidate edges, and an edge survives when either
	// endpoint ranks it. Zero uses DefaultSparseTopK.
	SparseTopK int
	// SparseNodeThreshold is the bucket node count at or above which
	// candidate graphs are sparsified before matching. Below it the full
	// gated graph is matched exactly, so small-bucket schedules are
	// bit-identical to exhaustive construction. Zero uses
	// DefaultSparseNodeThreshold; negative disables sparsification
	// entirely (exact mode at every scale).
	SparseNodeThreshold int
	// Shards splits large buckets into deterministic shards that are
	// edge-constructed and matched independently (concurrently on
	// multicore hosts), cutting the quadratic pair-evaluation and cubic
	// matching cost by the shard count. 0 or 1 keeps whole-bucket
	// matching; plans at Shards=1 are bit-identical to the serial path
	// and deterministic at any shard count (DESIGN.md §10).
	Shards int
	// ShardNodeThreshold is the bucket node count at or above which
	// sharding engages; smaller buckets are always matched whole. Zero
	// uses DefaultShardNodeThreshold.
	ShardNodeThreshold int
	// Planner, when non-nil, carries grouping state across scheduling
	// rounds: an ID-keyed pair-statistics cache, and — with
	// PlanState.Incremental — per-bucket dirty tracking that replays the
	// previous round's proposal stream for buckets whose exact signature
	// is unchanged. Replay is bit-identical to full re-matching by
	// construction. A PlanState must not be shared between policies.
	Planner *PlanState
}

// Sparsification defaults: Philly-scale buckets (≳1,000 single-GPU jobs)
// produce O(n²)-edge graphs whose O(V³) matching dominates planning; the
// top-16 candidate graph keeps total matching weight within a small bound
// of exact (TestSparseMatchingWeightBound, DESIGN.md §6) at O(n·k) edges.
const (
	// DefaultSparseTopK is the per-node candidate bound in sparse mode.
	DefaultSparseTopK = 16
	// DefaultSparseNodeThreshold is the bucket size at which
	// sparsification engages; buckets the paper's own scales produce per
	// scheduling interval (CandidateFactor × capacity) stay below it and
	// remain exact.
	DefaultSparseNodeThreshold = 256
)

// sparseTopK resolves the configured per-node candidate bound.
func (c Config) sparseTopK() int {
	if c.SparseTopK > 0 {
		return c.SparseTopK
	}
	return DefaultSparseTopK
}

// sparseThreshold resolves the bucket size at which sparse mode engages;
// math.MaxInt means never (exact mode).
func (c Config) sparseThreshold() int {
	switch {
	case c.SparseNodeThreshold > 0:
		return c.SparseNodeThreshold
	case c.SparseNodeThreshold < 0:
		return math.MaxInt
	default:
		return DefaultSparseNodeThreshold
	}
}

// Gate chooses how a candidate merge is judged beneficial before it can
// enter the matching graph. The edge weight is always the interleaving
// efficiency γ (paper §4.1); the gate prunes merges that would hurt.
type Gate int

const (
	// GateThroughput admits a merge only when it increases aggregate
	// throughput under saturation: k·γ(u∪v) + 1 > k·γ(u) + k·γ(v), the +1
	// crediting the resource set a merge frees for a queued job. Used by
	// Muri-L, where per-job durations are unknown.
	GateThroughput Gate = iota
	// GateJCT admits a merge only when running the combined group
	// concurrently yields a lower summed completion time than running the
	// two nodes sequentially on one resource set (the relevant baseline
	// when demand exceeds capacity). It needs remaining-time estimates,
	// so Muri-S uses it.
	GateJCT
	// GateNone admits every positive-efficiency merge (ablation).
	GateNone
)

// DefaultConfig is the standard Muri configuration: 4-job groups, Blossom
// matching, best ordering, default contention model.
func DefaultConfig() Config {
	return Config{
		Interleave:   interleave.DefaultConfig,
		MaxGroupSize: interleave.MaxGroupSize,
		UseBlossom:   true,
		Cache:        interleave.NewEffCache(0),
	}
}

// Group is one interleaving group: up to MaxGroupSize jobs that share one
// set of resources, plus the execution plan derived from the scheduler's
// (possibly noisy) view of their profiles.
type Group struct {
	// Jobs lists the members in plan order: Jobs[i] runs with stage
	// offset i.
	Jobs []*job.Job
	// Plan is the interleaving plan computed from the members' profiles.
	Plan interleave.Plan
	// GPUs is the per-job GPU requirement of this group's bucket. Every
	// member needs exactly this many GPUs and the whole group shares one
	// allocation of that size.
	GPUs int
}

// ExecutionIterTime returns the group's actual per-iteration duration:
// Eq. 3 evaluated on the members' true profiles (in plan order) with the
// contention model applied. This is what the simulator and the executor
// advance jobs by; it differs from Plan.IterTime when profiles are noisy.
func (g Group) ExecutionIterTime(cfg interleave.Config) time.Duration {
	times := make([]workload.StageTimes, len(g.Jobs))
	for i, j := range g.Jobs {
		times[i] = j.TrueProfile
	}
	return interleave.IterationTime(cfg.Inflate(times))
}

// node is one vertex of the grouping graph: a set of jobs merged across
// earlier rounds.
type node struct {
	jobs     []*job.Job
	profiles []workload.StageTimes
	gamma    float64       // cached standalone interleaving efficiency
	iterTime time.Duration // cached standalone group iteration time
	// statsDone marks gamma/iterTime as computed. bucketGraph fills the
	// stats for every node before fanning out, so the worker pool only
	// ever reads them.
	statsDone bool
	// remSum/remMax cache the summed and maximum remaining-iteration
	// estimates of the members (JCT gate inputs). Estimates are stable
	// within one Plan call (RemainingIters must be pure per call), so
	// they are filled once per node, serially, before the workers run.
	remSum, remMax int64
	remDone        bool
}

func (c Config) maxGroup() int {
	if c.MaxGroupSize <= 0 {
		return interleave.MaxGroupSize
	}
	if c.MaxGroupSize > interleave.MaxGroupSize {
		return interleave.MaxGroupSize
	}
	return c.MaxGroupSize
}

// rounds returns ⌈log₂(maxGroup)⌉ — the number of matching rounds needed
// so group sizes can reach maxGroup by doubling.
func (c Config) rounds() int {
	r := 0
	for size := 1; size < c.maxGroup(); size *= 2 {
		r++
	}
	return r
}

// Plan groups jobs (already in priority order) so the result fits the
// cluster as well as possible: merging happens only while the summed GPU
// demand exceeds capacityGPUs. Pass capacityGPUs ≤ 0 for the
// unconstrained classic Algorithm 1 (merge every beneficial pair).
// Groups are returned ordered by descending GPU requirement, priority
// order within each bucket.
func (c Config) Plan(jobs []*job.Job, capacityGPUs int) []Group {
	return c.PlanWithSeeds(nil, jobs, capacityGPUs)
}

// PlanWithSeeds is Plan with sticky groups: each seed (a previously
// formed group whose members are all still candidates) enters the
// matching as one pre-merged node, so stable workloads keep their groups
// across scheduling intervals instead of being rematched — and restarted
// — from scratch. Jobs listed in seeds must not also appear in jobs.
func (c Config) PlanWithSeeds(seeds [][]*job.Job, jobs []*job.Job, capacityGPUs int) []Group {
	if len(jobs) == 0 && len(seeds) == 0 {
		return nil
	}
	keys, jobBuckets := BucketByGPUs(jobs)
	buckets := make(map[int][]*node, len(jobBuckets))
	seen := make(map[int]bool)
	for _, gpus := range keys {
		seen[gpus] = true
	}
	for _, seed := range seeds {
		if len(seed) == 0 || len(seed) > c.maxGroup() {
			continue
		}
		gpus := seed[0].GPUs
		uniform := true
		for _, j := range seed {
			if j.GPUs != gpus {
				uniform = false
				break
			}
		}
		if !uniform {
			continue
		}
		n := &node{}
		for _, j := range seed {
			n.jobs = append(n.jobs, j)
			n.profiles = append(n.profiles, j.Profile)
		}
		buckets[gpus] = append(buckets[gpus], n)
		if !seen[gpus] {
			seen[gpus] = true
			keys = append(keys, gpus)
			sort.Sort(sort.Reverse(sort.IntSlice(keys)))
		}
	}
	for gpus, bjobs := range jobBuckets {
		for _, j := range bjobs {
			buckets[gpus] = append(buckets[gpus], &node{
				jobs: []*job.Job{j}, profiles: []workload.StageTimes{j.Profile}})
		}
	}
	if c.UseBlossom {
		c.planRounds(buckets, capacityGPUs)
	} else {
		c.greedyRounds(buckets, capacityGPUs)
	}
	var out []Group
	for _, gpus := range keys {
		for _, n := range buckets[gpus] {
			out = append(out, c.finalize(n, gpus))
		}
	}
	return out
}

// GroupBucket runs unconstrained Algorithm 1 on jobs that all share one
// GPU requirement. Jobs must be passed in priority order (highest
// priority first): the order matters for the no-Blossom ablation and for
// deterministic output. Single-member groups are returned for jobs left
// unmatched.
func (c Config) GroupBucket(jobs []*job.Job) []Group {
	if len(jobs) == 0 {
		return nil
	}
	gpus := jobs[0].GPUs
	for _, j := range jobs {
		if j.GPUs != gpus {
			panic("core: GroupBucket requires uniform GPU requirement")
		}
	}
	return c.Plan(jobs, 0)
}

// groupStats returns the best-ordering iteration time and efficiency of
// a profile multiset, memoized through the configured cache (fresh
// computation when Cache is nil — the values are identical either way).
func (c Config) groupStats(profiles []workload.StageTimes) (time.Duration, float64) {
	return c.Cache.GroupStats(c.Interleave, profiles)
}

// nodeStats computes (and caches on the node) its standalone interleaving
// efficiency γ and group iteration time T under its best ordering.
func (c Config) nodeStats(n *node) (gamma float64, iterTime time.Duration) {
	if !n.statsDone {
		n.iterTime, n.gamma = c.groupStats(n.profiles)
		n.statsDone = true
	}
	return n.gamma, n.iterTime
}

// nodeRemStats fills the node's remaining-iteration aggregates (JCT gate
// inputs). Like nodeStats, it is computed serially before the edge
// workers fan out so the parallel phase is read-only on node state.
func (c Config) nodeRemStats(n *node) {
	if n.remDone {
		return
	}
	var sum, max int64
	for _, j := range n.jobs {
		rem := j.RemainingIterations()
		if c.RemainingIters != nil {
			rem = c.RemainingIters(j)
		}
		sum += rem
		if rem > max {
			max = rem
		}
	}
	n.remSum, n.remMax = sum, max
	n.remDone = true
}

// jctGain evaluates a merge under GateJCT: the reduction in summed
// completion time of running u∪v concurrently (iteration time mergedIter)
// versus running u and v sequentially on one resource set in the better
// of the two orders. Positive means the merge helps average JCT.
//
// With per-node remaining-iteration aggregates the costs reduce to
// arithmetic: a node starting at offset s with iteration time t has
// summed completion len·s + Σrem·t and finishes at s + maxRem·t. The
// int64 algebra distributes exactly, so this is bit-identical to
// materializing the merged node and summing member by member — without
// the two slice allocations per evaluated pair that used to dominate the
// planning profile.
func (c Config) jctGain(u, v *node, mergedIter time.Duration) time.Duration {
	_, tu := c.nodeStats(u)
	_, tv := c.nodeStats(v)
	c.nodeRemStats(u)
	c.nodeRemStats(v)
	mergedSum := time.Duration(u.remSum+v.remSum) * mergedIter
	// Sequential baseline, both orders.
	fu := time.Duration(u.remMax) * tu
	fv := time.Duration(v.remMax) * tv
	su1 := time.Duration(u.remSum) * tu
	sv1 := time.Duration(len(v.jobs))*fu + time.Duration(v.remSum)*tv
	sv2 := time.Duration(v.remSum) * tv
	su2 := time.Duration(len(u.jobs))*fv + time.Duration(u.remSum)*tu
	seq := su1 + sv1
	if alt := su2 + sv2; alt < seq {
		seq = alt
	}
	return seq - mergedSum
}

// mergeNodes concatenates two nodes (Algorithm 1's MergeNode).
func mergeNodes(u, v *node) *node {
	return &node{
		jobs:     append(append([]*job.Job{}, u.jobs...), v.jobs...),
		profiles: append(append([]workload.StageTimes{}, u.profiles...), v.profiles...),
	}
}

// proposal is one Blossom-matched pair a sweep may accept.
type proposal struct {
	st       *bucketState
	bucket   int   // GPU requirement of the bucket
	idx      int32 // position in the bucket's proposal stream this sweep
	u, v     int   // node indices within the bucket
	gain     float64
	accepted bool
}

// pairStats returns the interleaving efficiency and combined iteration
// time of merging two nodes — the matching edge weight and the JCT gate
// input — from a single memo lookup. Single-job pairs are served from the
// planner's ID-keyed cache when one is configured; everything else goes
// through the canonical-multiset EffCache. All paths compute identical
// values.
func (c Config) pairStats(u, v *node) (eff float64, iterTime time.Duration) {
	nu, nv := len(u.profiles), len(v.profiles)
	if nu+nv > interleave.MaxGroupSize {
		return math.Inf(-1), 0
	}
	ps := c.Planner
	single := ps != nil && nu == 1 && nv == 1
	var key pairKey
	if single {
		key, single = makePairKey(u.jobs[0].ID, v.jobs[0].ID)
	}
	if single {
		if e, ok := ps.pairLookup(key); ok {
			return e.eff, e.iterTime
		}
	}
	var buf [interleave.MaxGroupSize]workload.StageTimes
	copy(buf[:], u.profiles)
	copy(buf[nu:], v.profiles)
	t, eff := c.groupStats(buf[:nu+nv])
	if single {
		ps.pairStore(key, pairEntry{iterTime: t, eff: eff})
	}
	return eff, t
}

// mergeGain evaluates a candidate merge under the configured gate, given
// the pair's efficiency (combined) and combined iteration time. It
// returns the gate's benefit score (used to rank accepted merges) and
// whether the merge passes.
func (c Config) mergeGain(u, v *node, combined float64, mergedIter time.Duration) (float64, bool) {
	switch c.Gate {
	case GateJCT:
		g := c.jctGain(u, v, mergedIter).Seconds()
		return g, g > 0
	case GateNone:
		return combined, true
	default: // GateThroughput
		k := float64(workload.NumResources)
		gu, _ := c.nodeStats(u)
		gv, _ := c.nodeStats(v)
		g := k*combined + 1 - k*gu - k*gv
		return g, g > 0
	}
}

// parallelEdgeThreshold is the bucket size below which graph construction
// stays serial: the worker-pool setup costs more than it saves on the
// handful of pairs a small bucket produces.
const parallelEdgeThreshold = 48

// edgeWorkers resolves the configured pool bound.
func (c Config) edgeWorkers() int {
	if c.EdgeWorkers > 0 {
		return c.EdgeWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// bucketEdges is bucketGraph without the gain column, for callers (and
// tests) that only need the matching graph.
func (c Config) bucketEdges(nodes []*node) []blossom.Edge {
	edges, _ := c.bucketGraph(nodes)
	return edges
}

// edgeRow is one worker-produced row of the grouping graph: the edges for
// a fixed u with their gate gains in matching positions.
type edgeRow struct {
	edges []blossom.Edge
	gains []float64
}

// bucketGraph builds the gain-gated grouping graph for one round in one
// bucket: edge weights are interleaving efficiencies (paper §4.1), and
// edges whose merge fails the configured benefit gate are dropped. The
// gate gain of every surviving edge is returned alongside it, so matched
// pairs never re-evaluate the gate.
//
// The O(n²) weight evaluations fan out over a bounded worker pool, one
// row (fixed u, all v > u) at a time; rows are concatenated in u order,
// so the edge list — and therefore the Blossom matching and every
// downstream schedule — is identical to serial construction.
func (c Config) bucketGraph(nodes []*node) ([]blossom.Edge, []float64) {
	maxSize := c.maxGroup()
	n := len(nodes)
	// Precompute node stats serially: mergeGain consults them from the
	// workers, and filling them up front keeps the parallel phase
	// read-only on shared node state.
	jct := c.Gate == GateJCT
	for _, nd := range nodes {
		c.nodeStats(nd)
		if jct {
			c.nodeRemStats(nd)
		}
	}
	rows := make([]edgeRow, n)
	row := func(u int) {
		// One exact-capacity allocation per row: append-growth churn on
		// the hot path costs more than the (short-lived) overshoot for
		// rows the gate thins out.
		edges := make([]blossom.Edge, 0, n-u-1)
		gains := make([]float64, 0, n-u-1)
		for v := u + 1; v < n; v++ {
			if len(nodes[u].jobs)+len(nodes[v].jobs) > maxSize {
				continue
			}
			w, tm := c.pairStats(nodes[u], nodes[v])
			if math.IsInf(w, -1) || w <= c.MinEfficiency {
				continue
			}
			g, ok := c.mergeGain(nodes[u], nodes[v], w, tm)
			if !ok {
				continue
			}
			edges = append(edges, blossom.Edge{I: u, J: v, Weight: w})
			gains = append(gains, g)
		}
		rows[u] = edgeRow{edges: edges, gains: gains}
	}
	workers := c.edgeWorkers()
	if workers > n-1 {
		workers = n - 1
	}
	if workers <= 1 || n < parallelEdgeThreshold {
		for u := 0; u < n-1; u++ {
			row(u)
		}
	} else {
		// Dynamic row assignment: rows shrink as u grows, so a static
		// split would leave the tail workers idle.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u := int(next.Add(1)) - 1
					if u >= n-1 {
						return
					}
					row(u)
				}
			}()
		}
		wg.Wait()
	}
	total := 0
	for _, r := range rows {
		total += len(r.edges)
	}
	edges := make([]blossom.Edge, 0, total)
	gains := make([]float64, 0, total)
	for _, r := range rows {
		edges = append(edges, r.edges...)
		gains = append(gains, r.gains...)
	}
	if k := c.sparseTopK(); n >= c.sparseThreshold() && k < n-1 {
		edges, gains = sparsifyEdges(edges, gains, n, k)
	}
	return edges, gains
}

// sparsifyEdges keeps, for every node, its k highest-weight incident
// edges; an edge survives when either endpoint ranks it among its top k.
// The survivors keep the input's deterministic u-major (u,v) order, and
// per-node ranking breaks weight ties by lower edge index — i.e. by
// lexicographic (u,v) — so the sparse graph is a pure function of the
// dense one. The gains column is filtered in lockstep; both input slices
// are filtered in place.
func sparsifyEdges(edges []blossom.Edge, gains []float64, n, k int) ([]blossom.Edge, []float64) {
	// CSR incidence index: deg doubles as the prefix-offset array.
	deg := make([]int, n+1)
	for _, e := range edges {
		deg[e.I+1]++
		deg[e.J+1]++
	}
	needSelect := false
	for v := 1; v <= n; v++ {
		if deg[v] > k {
			needSelect = true
		}
		deg[v] += deg[v-1]
	}
	if !needSelect {
		return edges, gains
	}
	incident := make([]int32, 2*len(edges))
	next := make([]int, n)
	copy(next, deg[:n])
	for i, e := range edges {
		incident[next[e.I]] = int32(i)
		next[e.I]++
		incident[next[e.J]] = int32(i)
		next[e.J]++
	}
	keep := make([]bool, len(edges))
	// top is the reusable top-k selection buffer, kept sorted by
	// (weight desc, edge index asc). Insertion selection beats sort.Slice
	// here: k is small, most candidates lose to the current k-th entry
	// after warm-up, and no per-node closure or swapper is allocated.
	top := make([]int32, 0, k)
	ranksAbove := func(a, b int32) bool {
		wa, wb := edges[a].Weight, edges[b].Weight
		if wa != wb {
			return wa > wb
		}
		return a < b
	}
	for v := 0; v < n; v++ {
		ids := incident[deg[v]:deg[v+1]]
		if len(ids) <= k {
			for _, id := range ids {
				keep[id] = true
			}
			continue
		}
		top = top[:0]
		for _, id := range ids {
			if len(top) == k && !ranksAbove(id, top[k-1]) {
				continue
			}
			pos := len(top)
			for pos > 0 && ranksAbove(id, top[pos-1]) {
				pos--
			}
			if len(top) < k {
				top = append(top, 0)
			}
			copy(top[pos+1:], top[pos:])
			top[pos] = id
		}
		for _, id := range top {
			keep[id] = true
		}
	}
	out := edges[:0]
	outGains := gains[:0]
	for i := range edges {
		if keep[i] {
			out = append(out, edges[i])
			outGains = append(outGains, gains[i])
		}
	}
	return out, outGains
}

// maxCapacitySweeps bounds the merge passes of capacity-constrained
// planning. Partial acceptance can need more than the classic ⌈log₂k⌉
// rounds before group sizes saturate; every accepted merge strictly
// reduces demand, so the loop terminates regardless. Bound it generously.
const maxCapacitySweeps = 64

// roundSetup computes the state shared by the multi-round planners:
// bucket keys in descending GPU order, the summed GPU demand of all
// nodes, whether capacityGPUs actually constrains merging, and the round
// budget (the classic ⌈log₂k⌉ bound when unconstrained, maxCapacitySweeps
// otherwise).
func (c Config) roundSetup(buckets map[int][]*node, capacityGPUs int) (keys []int, demand int, unconstrained bool, maxRounds int) {
	for gpus, nodes := range buckets {
		keys = append(keys, gpus)
		demand += gpus * len(nodes)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	unconstrained = capacityGPUs <= 0
	maxRounds = c.rounds()
	if !unconstrained {
		maxRounds = maxCapacitySweeps
	}
	return keys, demand, unconstrained, maxRounds
}

// planRounds runs the capacity-aware multi-round matching over all GPU
// buckets. Each round runs Blossom inside every bucket and accepts the
// proposed merges in descending gain order, but only while the summed GPU
// demand of the remaining nodes exceeds capacityGPUs — this realizes
// Algorithm 1's framing that the dequeued jobs "can be fully grouped and
// they can fully utilize the cluster": merging beyond that point slows
// jobs down with no queueing benefit. capacityGPUs ≤ 0 disables the
// constraint (classic Algorithm 1: merge every beneficial pair for
// log₂k rounds).
func (c Config) planRounds(buckets map[int][]*node, capacityGPUs int) {
	keys, demand, unconstrained, maxRounds := c.roundSetup(buckets, capacityGPUs)
	states := make([]*bucketState, 0, len(keys))
	for _, gpus := range keys {
		states = append(states, &bucketState{gpus: gpus, nodes: buckets[gpus]})
	}
	ps := c.Planner
	if ps != nil {
		ps.beginPlan(c, states)
	}
	var proposals []proposal // reused across sweeps
	for sweep := 0; sweep < maxRounds; sweep++ {
		if !unconstrained && demand <= capacityGPUs {
			break
		}
		proposals = proposals[:0]
		for _, st := range states {
			props := c.sweepProposals(st, sweep)
			st.lastProps = props
			for i := range props {
				proposals = append(proposals, proposal{
					st: st, bucket: st.gpus, idx: int32(i),
					u: int(props[i].u), v: int(props[i].v), gain: props[i].gain,
				})
			}
		}
		if len(proposals) == 0 {
			break
		}
		// Accept the most beneficial merges first; each accepted merge
		// frees one resource set of the bucket's size.
		sort.SliceStable(proposals, func(i, k int) bool {
			if proposals[i].gain != proposals[k].gain {
				return proposals[i].gain > proposals[k].gain
			}
			return proposals[i].bucket > proposals[k].bucket
		})
		accepted := 0
		for i := range proposals {
			if !unconstrained && demand <= capacityGPUs {
				break
			}
			proposals[i].accepted = true
			demand -= proposals[i].bucket
			accepted++
		}
		// Fold the acceptance pattern back into each bucket's stream
		// before applying merges: the streams feed the fixpoint shortcut,
		// the replay divergence check, and next round's cache.
		for i := range proposals {
			p := &proposals[i]
			p.st.lastProps[p.idx].accepted = p.accepted
		}
		for _, st := range states {
			c.applySweep(st, sweep, ps != nil)
		}
		if accepted == 0 {
			break
		}
	}
	if ps != nil {
		ps.finishPlan(states)
	}
	for _, st := range states {
		buckets[st.gpus] = st.nodes
	}
}

// applySweep finishes one bucket's sweep: checks replayed streams for
// acceptance divergence (a mismatch invalidates the cached history — the
// bucket's node evolution has left the recorded path, so subsequent
// sweeps must match fresh), records the stream for next round's cache,
// and applies the accepted merges with in-place node compaction so the
// bucket's node slice is reused sweep over sweep.
func (c Config) applySweep(st *bucketState, sweep int, record bool) {
	if st.replayed {
		cached := st.bc.sweeps[sweep].props
		for i := range st.lastProps {
			if st.lastProps[i].accepted != cached[i].accepted {
				st.clean = false
				break
			}
		}
	}
	if record {
		st.rec = append(st.rec, cachedSweep{props: st.lastProps})
	}
	count := 0
	for _, p := range st.lastProps {
		if !p.accepted {
			continue
		}
		if count == 0 {
			st.ensureDropped(len(st.nodes))
		}
		// Matched pairs are disjoint, so merges within a sweep commute.
		st.nodes[p.u] = mergeNodes(st.nodes[p.u], st.nodes[p.v])
		st.dropped[p.v] = true
		count++
	}
	st.lastAccepted = count
	if count == 0 {
		return
	}
	st.epoch += uint64(count)
	out := st.nodes[:0]
	for i, nd := range st.nodes {
		if st.dropped[i] {
			st.dropped[i] = false
			continue
		}
		out = append(out, nd)
	}
	// Clear the vacated tail so dropped nodes are not retained by the
	// backing array for the rest of the plan.
	for i := len(out); i < len(st.nodes); i++ {
		st.nodes[i] = nil
	}
	st.nodes = out
}

// greedyRounds is the no-Blossom ablation ("Muri-L w/o Blossom", Figure
// 11): merges adjacent nodes in priority order instead of matching, with
// the same capacity-aware acceptance.
func (c Config) greedyRounds(buckets map[int][]*node, capacityGPUs int) {
	keys, demand, unconstrained, maxRounds := c.roundSetup(buckets, capacityGPUs)
	maxSize := c.maxGroup()
	for round := 0; round < maxRounds; round++ {
		if !unconstrained && demand <= capacityGPUs {
			break
		}
		accepted := 0
		for _, gpus := range keys {
			nodes := buckets[gpus]
			var out []*node
			i := 0
			for i < len(nodes) {
				canMerge := i+1 < len(nodes) &&
					len(nodes[i].jobs)+len(nodes[i+1].jobs) <= maxSize &&
					(unconstrained || demand > capacityGPUs)
				if canMerge {
					out = append(out, mergeNodes(nodes[i], nodes[i+1]))
					demand -= gpus
					accepted++
					i += 2
				} else {
					out = append(out, nodes[i])
					i++
				}
			}
			buckets[gpus] = out
		}
		if accepted == 0 {
			break
		}
	}
}

// finalize computes the execution plan for a finished node and reorders
// its members into plan order.
func (c Config) finalize(n *node, gpus int) Group {
	plan := c.Interleave.PlanGroup(n.profiles, c.WorstOrdering)
	ordered := make([]*job.Job, len(n.jobs))
	for pos, idx := range plan.Order {
		ordered[pos] = n.jobs[idx]
	}
	// After reordering, the plan's permutation has been applied; rewrite
	// it as the identity so Group.Jobs[i] always has offset i.
	for i := range plan.Order {
		plan.Order[i] = i
	}
	return Group{Jobs: ordered, Plan: plan, GPUs: gpus}
}

// BucketByGPUs partitions jobs by GPU requirement, preserving the input
// order within each bucket. The returned keys are sorted descending so
// that placement can allocate large jobs first (§5: "allocates GPUs in a
// descending order ... which avoids fragmentation").
func BucketByGPUs(jobs []*job.Job) (keys []int, buckets map[int][]*job.Job) {
	buckets = make(map[int][]*job.Job)
	for _, j := range jobs {
		buckets[j.GPUs] = append(buckets[j.GPUs], j)
	}
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	return keys, buckets
}

// GroupAll buckets jobs by GPU requirement and runs unconstrained
// Algorithm 1 inside each bucket, returning groups ordered by descending
// GPU requirement. Jobs must already be in priority order.
func (c Config) GroupAll(jobs []*job.Job) []Group {
	return c.Plan(jobs, 0)
}
