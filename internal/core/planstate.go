package core

import (
	"sync"
	"sync/atomic"
	"time"

	"muri/internal/job"
	"muri/internal/metrics"
)

// DefaultPairCacheEntries bounds each generation of the ID-keyed pair
// statistics cache (~32 B per entry, two generations resident — ~16 MB
// both generations full). Sized for ~10k concurrently-pending jobs: a
// generation that evicts while a pair is still being re-evaluated every
// round turns cheap hits into ~4 µs group-statistics recomputations.
const DefaultPairCacheEntries = 1 << 18

// pairKey identifies an unordered pair of single-job nodes by member job
// ID, packed min<<32|max so lookups take the runtime's uint64 fast path
// (the cache sits on the per-pair hot loop of edge construction). Job
// profiles are immutable for a job's lifetime, so pair statistics keyed
// by ID are valid for as long as the PlanState lives — across Blossom
// sweeps and across scheduling rounds.
type pairKey uint64

// makePairKey packs an ID pair. ok is false when either ID falls outside
// [0, 2^32) — such pairs skip the cache rather than risk a collision.
func makePairKey(a, b job.ID) (pairKey, bool) {
	if a > b {
		a, b = b, a
	}
	if uint64(a)|uint64(b) >= 1<<32 {
		return 0, false
	}
	return pairKey(uint64(a)<<32 | uint64(b)), true
}

// pairEntry memoizes the best-ordering statistics of a two-job group:
// the combined iteration time (the JCT gate's input) and the interleaving
// efficiency (the matching edge weight).
type pairEntry struct {
	iterTime time.Duration
	eff      float64
}

// cachedProp is one recorded matching proposal: node indices within the
// bucket at the sweep it was generated, the edge weight, the gate's gain,
// and whether the central acceptance loop took it.
type cachedProp struct {
	u, v     int32
	weight   float64
	gain     float64
	accepted bool
}

// cachedSweep is the proposal stream one bucket produced in one sweep.
type cachedSweep struct {
	props []cachedProp
}

// bucketCache is the record of one bucket's previous plan: the signature
// of its initial nodes and the per-sweep proposal streams with their
// acceptance pattern. When the next round's signature matches, the bucket
// replays this stream instead of re-running edge construction and
// Blossom; replay stays exact because the stream is a pure function of
// the signature and the (live, re-checked) acceptance history.
type bucketCache struct {
	sig    []int64
	sweeps []cachedSweep
}

// PlanState carries grouping state across scheduling rounds. It has two
// independent roles:
//
//   - An ID-keyed two-generation pair-statistics cache that fronts the
//     canonical-multiset EffCache for single-job pairs — the dominant
//     lookup in sweep 0 — with a far cheaper 16-byte key. Values pass
//     through the same computation, so cached statistics are
//     bit-identical to fresh ones and cache state never changes a
//     scheduling decision.
//
//   - With Incremental set, per-bucket dirty tracking: each plan records
//     every bucket's proposal stream, and the next plan replays the
//     stream for buckets whose exact signature (member IDs plus the
//     gate-relevant remaining-iteration estimates, in candidate order)
//     is unchanged. Any divergence in the central acceptance loop
//     promotes the bucket back to fresh matching from the next sweep, so
//     incremental planning is bit-identical to full re-matching by
//     construction (see DESIGN.md §10).
//
// A PlanState must be owned by a single policy instance: the pair cache
// assumes job IDs are unique and profiles immutable within one run, and
// the replay cache assumes a consistent Config between rounds. The pair
// cache is safe for concurrent use by the edge and shard workers; the
// replay bookkeeping is only touched between parallel sections.
type PlanState struct {
	// Incremental enables cross-round bucket replay. Off, the PlanState
	// still provides the pair cache and telemetry.
	Incremental bool

	mu  sync.RWMutex
	max int
	cur map[pairKey]pairEntry
	old map[pairKey]pairEntry

	buckets map[int]*bucketCache

	shards int
	// tasksBy counts matching tasks per shard index. Sized under mu in
	// beginPlan (between parallel sections); shard workers only Add.
	tasksBy   []atomic.Uint64
	rounds    atomic.Uint64
	replays   atomic.Uint64
	fixpoints atomic.Uint64
	fresh     atomic.Uint64
	tasks     atomic.Uint64
	pairHits  atomic.Uint64
	pairMiss  atomic.Uint64
	marks     atomic.Uint64
}

// NewPlanState returns a PlanState with the default pair-cache bound and
// incremental replay enabled.
func NewPlanState() *PlanState {
	return &PlanState{
		Incremental: true,
		max:         DefaultPairCacheEntries,
		cur:         make(map[pairKey]pairEntry),
		buckets:     make(map[int]*bucketCache),
	}
}

// pairLookup consults the two-generation pair cache, re-promoting hits
// found in the old generation (same policy as EffCache).
func (ps *PlanState) pairLookup(key pairKey) (pairEntry, bool) {
	ps.mu.RLock()
	e, ok := ps.cur[key]
	inOld := false
	if !ok {
		e, ok = ps.old[key]
		inOld = ok
	}
	ps.mu.RUnlock()
	if !ok {
		ps.pairMiss.Add(1)
		return pairEntry{}, false
	}
	ps.pairHits.Add(1)
	if inOld {
		ps.pairStore(key, e)
	}
	return e, true
}

// pairStore inserts into the current generation, rotating generations at
// the size bound. Writers racing on one key store bit-identical values.
func (ps *PlanState) pairStore(key pairKey, e pairEntry) {
	ps.mu.Lock()
	if len(ps.cur) >= ps.max {
		ps.old = ps.cur
		ps.cur = make(map[pairKey]pairEntry, ps.max)
	}
	ps.cur[key] = e
	ps.mu.Unlock()
}

// ensureShards grows the per-shard task counters to n slots, carrying
// accumulated counts over. Called only between parallel sections.
func (ps *PlanState) ensureShards(n int) {
	ps.mu.Lock()
	if len(ps.tasksBy) < n {
		nb := make([]atomic.Uint64, n)
		for i := range ps.tasksBy {
			nb[i].Store(ps.tasksBy[i].Load())
		}
		ps.tasksBy = nb
	}
	ps.mu.Unlock()
}

// shardTask counts one matching task on shard index s.
func (ps *PlanState) shardTask(s int) {
	ps.tasks.Add(1)
	if s >= 0 && s < len(ps.tasksBy) {
		ps.tasksBy[s].Add(1)
	}
}

// MarkDirty records decision-stream dirty notifications (arrivals,
// completions, faults, preemptions). The marks are telemetry: the
// per-bucket signature check is the authoritative dirty test, because
// remaining-iteration estimates can also change without a decision.
func (ps *PlanState) MarkDirty(n int) {
	if ps == nil || n <= 0 {
		return
	}
	ps.marks.Add(uint64(n))
}

// Stats snapshots the plan-state counters. Safe on a nil receiver.
func (ps *PlanState) Stats() metrics.ShardStats {
	if ps == nil {
		return metrics.ShardStats{}
	}
	ps.mu.RLock()
	entries := len(ps.cur) + len(ps.old)
	var byShard []uint64
	if len(ps.tasksBy) > 0 {
		byShard = make([]uint64, len(ps.tasksBy))
		for i := range ps.tasksBy {
			byShard[i] = ps.tasksBy[i].Load()
		}
	}
	ps.mu.RUnlock()
	return metrics.ShardStats{
		Shards:         ps.shards,
		PlanRounds:     ps.rounds.Load(),
		ReplaySweeps:   ps.replays.Load(),
		FixpointSweeps: ps.fixpoints.Load(),
		FreshSweeps:    ps.fresh.Load(),
		ShardTasks:     ps.tasks.Load(),
		TasksByShard:   byShard,
		PairHits:       ps.pairHits.Load(),
		PairMisses:     ps.pairMiss.Load(),
		PairEntries:    entries,
		DirtyMarks:     ps.marks.Load(),
	}
}

// sigEqual compares two bucket signatures.
func sigEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bucketSig flattens the bucket's initial nodes into an exact signature:
// a length separator per node, then each member's job ID, and — when the
// JCT gate consumes them — each member's remaining-iteration estimate.
// Everything else the proposal stream depends on (profiles keyed by job
// ID, the Config, the shard layout as a function of epoch) is constant
// across rounds, so an equal signature implies an identical stream.
func (c Config) bucketSig(st *bucketState) []int64 {
	jct := c.Gate == GateJCT
	width := 2
	if jct {
		width = 3
	}
	sig := make([]int64, 0, width*len(st.nodes))
	for _, nd := range st.nodes {
		// Separators are negative; job IDs are non-negative in every
		// trace and daemon path, so node boundaries are unambiguous.
		sig = append(sig, -int64(len(nd.jobs))-1)
		for _, j := range nd.jobs {
			sig = append(sig, int64(j.ID))
			if jct {
				rem := j.RemainingIterations()
				if c.RemainingIters != nil {
					rem = c.RemainingIters(j)
				}
				sig = append(sig, rem)
			}
		}
	}
	return sig
}

// beginPlan binds prior-round bucket caches to this plan's buckets by
// signature and opens the per-plan bookkeeping.
func (ps *PlanState) beginPlan(c Config, states []*bucketState) {
	ps.rounds.Add(1)
	ps.shards = c.shardCount()
	if ps.shards > 1 {
		ps.ensureShards(ps.shards)
	}
	if !ps.Incremental {
		return
	}
	for _, st := range states {
		st.sig = c.bucketSig(st)
		if bc := ps.buckets[st.gpus]; bc != nil && sigEqual(bc.sig, st.sig) {
			st.bc = bc
			st.clean = true
		}
	}
}

// finishPlan installs this plan's recorded streams as the caches for the
// next round. Buckets absent this round keep their stale entries; the
// signature check makes them harmless and the map stays small (one entry
// per distinct GPU requirement).
func (ps *PlanState) finishPlan(states []*bucketState) {
	if !ps.Incremental {
		return
	}
	for _, st := range states {
		ps.buckets[st.gpus] = &bucketCache{sig: st.sig, sweeps: st.rec}
	}
}
