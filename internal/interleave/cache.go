package interleave

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"muri/internal/metrics"
	"muri/internal/workload"
)

// DefaultCacheEntries is the per-generation size bound of an EffCache
// built with NewEffCache(0). Two generations are resident at once, so the
// worst-case footprint is 2× this many entries (~150 B each).
const DefaultCacheEntries = 1 << 15

// effKey canonically identifies a group-statistics computation: the
// multiset of member profiles (sorted, so member order is irrelevant)
// plus the contention overhead they were inflated with. Profiles are
// immutable for a job's lifetime, which is what makes memoization across
// Blossom rounds and scheduling intervals sound.
type effKey struct {
	n        int
	overhead float64
	profiles [MaxGroupSize]workload.StageTimes
}

// effEntry is a memoized best-ordering result. Only the scalar statistics
// are stored: for a fixed profile multiset, efficiency is a strictly
// decreasing function of iteration time (γ = Σ used / (k·T) with Σ used
// fixed), so (T, γ) is unique across member orderings — the permutation
// itself is not, and is recomputed where needed (group finalization).
type effEntry struct {
	iterTime time.Duration
	eff      float64
}

// EffCache memoizes best-ordering group statistics — the quantity behind
// PairEfficiency edge weights, node γ/T statistics, and the JCT merge
// gate — keyed by the canonical profile multiset. It is safe for
// concurrent use by the parallel grouping-graph workers.
//
// The size bound uses two generations (à la fastcache): inserts go to the
// current generation; when it fills, the previous generation is dropped
// and the current one rotates into its place. Hits in the old generation
// re-promote the entry, so hot keys survive rotation. Resident entries
// never exceed 2× the configured bound.
//
// Determinism invariant: a cached value is always bit-identical to the
// fresh computation, so cache state (including which entries were
// evicted) can never change a scheduling decision — only its cost.
type EffCache struct {
	mu   sync.RWMutex
	max  int
	cur  map[effKey]effEntry
	old  map[effKey]effEntry
	hits atomic.Uint64
	miss atomic.Uint64
	evic atomic.Uint64
}

// NewEffCache returns a cache bounded to maxEntries per generation
// (≤ 2·maxEntries resident). maxEntries ≤ 0 uses DefaultCacheEntries.
func NewEffCache(maxEntries int) *EffCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &EffCache{max: maxEntries, cur: make(map[effKey]effEntry)}
}

// lessStages orders stage-time vectors lexicographically in canonical
// resource order.
func lessStages(a, b workload.StageTimes) bool {
	for r := 0; r < workload.NumResources; r++ {
		if a[r] != b[r] {
			return a[r] < b[r]
		}
	}
	return false
}

// canonicalKey builds the sorted-multiset key for a group of profiles.
func canonicalKey(overhead float64, times []workload.StageTimes) effKey {
	k := effKey{n: len(times), overhead: overhead}
	copy(k.profiles[:], times)
	// Insertion sort: groups have at most MaxGroupSize (4) members.
	for i := 1; i < k.n; i++ {
		for j := i; j > 0 && lessStages(k.profiles[j], k.profiles[j-1]); j-- {
			k.profiles[j], k.profiles[j-1] = k.profiles[j-1], k.profiles[j]
		}
	}
	return k
}

// GroupStats returns the best-ordering iteration time and efficiency of
// the group under cfg's contention model, memoizing by profile multiset.
// A nil receiver computes fresh (no caching), so callers need not guard.
func (ec *EffCache) GroupStats(cfg Config, times []workload.StageTimes) (time.Duration, float64) {
	if ec == nil {
		_, t, eff := BestOrdering(cfg.Inflate(times))
		return t, eff
	}
	key := canonicalKey(cfg.Overhead, times)
	ec.mu.RLock()
	e, ok := ec.cur[key]
	inOld := false
	if !ok {
		e, ok = ec.old[key]
		inOld = ok
	}
	ec.mu.RUnlock()
	if ok {
		ec.hits.Add(1)
		if inOld {
			// Re-promote so hot keys survive the next rotation.
			ec.put(key, e)
		}
		return e.iterTime, e.eff
	}
	ec.miss.Add(1)
	_, t, eff := BestOrdering(cfg.Inflate(times))
	ec.put(key, effEntry{iterTime: t, eff: eff})
	return t, eff
}

// put inserts into the current generation, rotating generations when the
// size bound is reached. Concurrent duplicate computes are idempotent:
// every writer stores the same bit-identical value for a given key.
func (ec *EffCache) put(key effKey, e effEntry) {
	ec.mu.Lock()
	if len(ec.cur) >= ec.max {
		ec.evic.Add(uint64(len(ec.old)))
		ec.old = ec.cur
		ec.cur = make(map[effKey]effEntry, ec.max)
	}
	ec.cur[key] = e
	ec.mu.Unlock()
}

// PairEfficiency is the memoized form of Config.PairEfficiency: the
// best-ordering interleaving efficiency of the union of two candidate
// member sets, or -Inf when the union exceeds MaxGroupSize. A nil
// receiver computes fresh.
func (ec *EffCache) PairEfficiency(cfg Config, a, b []workload.StageTimes) float64 {
	n := len(a) + len(b)
	if n > MaxGroupSize {
		return math.Inf(-1)
	}
	var buf [MaxGroupSize]workload.StageTimes
	copy(buf[:], a)
	copy(buf[len(a):], b)
	_, eff := ec.GroupStats(cfg, buf[:n])
	return eff
}

// Stats snapshots the cache counters. Safe on a nil receiver.
func (ec *EffCache) Stats() metrics.CacheStats {
	if ec == nil {
		return metrics.CacheStats{}
	}
	ec.mu.RLock()
	entries := len(ec.cur) + len(ec.old)
	ec.mu.RUnlock()
	return metrics.CacheStats{
		Hits:      ec.hits.Load(),
		Misses:    ec.miss.Load(),
		Evictions: ec.evic.Load(),
		Entries:   entries,
	}
}
