// Package interleave implements the timing model of multi-resource
// interleaving (paper §4): group iteration time under a stage ordering
// (Eq. 1/3), interleaving efficiency γ (Eq. 2/4), ordering enumeration,
// and the contention-overhead model used by the simulator.
//
// A group of p ≤ k jobs shares one set of resources. Job at ordering
// position i starts its iteration at stage offset i: while job 0 uses
// resource 0 (storage), job 1 uses resource 1 (CPU), and so on, with a
// synchronization barrier at the end of every stage slot. One group
// iteration therefore takes
//
//	T = Σ_{j=0..k-1} max_{i=0..p-1} t_i[(i+j) mod k]   (Eq. 3)
//
// and every job in the group completes exactly one iteration per T.
package interleave

import (
	"fmt"
	"math"
	"time"

	"muri/internal/workload"
)

// MaxGroupSize is the largest number of jobs Muri packs into one group:
// one job per resource type (the paper avoids fusing jobs, §4.1).
const MaxGroupSize = workload.NumResources

// IterationTimeK computes Eq. 3 for an arbitrary number of resource types
// k = len(times[i]): the job at index i executes with stage offset i, and
// the group iteration is the sum over stage slots of the slot's longest
// stage. The paper's two-resource examples (Figures 4–5) use k=2; the full
// system uses k=4.
func IterationTimeK(times [][]time.Duration) time.Duration {
	if len(times) == 0 {
		return 0
	}
	k := len(times[0])
	var total time.Duration
	for j := 0; j < k; j++ {
		var slotMax time.Duration
		for i, t := range times {
			if d := t[(i+j)%k]; d > slotMax {
				slotMax = d
			}
		}
		total += slotMax
	}
	return total
}

// EfficiencyK computes Eq. 4 for an arbitrary number of resource types:
// one minus the average, across resource types, of the fraction of
// group-iteration time the resource sits idle. γ is in [0, 1]; 1 means
// every resource is busy for the whole iteration.
func EfficiencyK(times [][]time.Duration) float64 {
	T := IterationTimeK(times)
	if T == 0 {
		return 0
	}
	k := len(times[0])
	idle := 0.0
	for j := 0; j < k; j++ {
		var used time.Duration
		for _, t := range times {
			used += t[j]
		}
		idle += float64(T-used) / float64(T)
	}
	return 1 - idle/float64(k)
}

func toVecs(times []workload.StageTimes) [][]time.Duration {
	out := make([][]time.Duration, len(times))
	for i := range times {
		out[i] = times[i][:]
	}
	return out
}

// IterationTime computes the duration of one group iteration (Eq. 3) for
// jobs taken in the given order with the system's k=4 resource types.
// A single job degenerates to its serial iteration time.
func IterationTime(times []workload.StageTimes) time.Duration {
	return IterationTimeK(toVecs(times))
}

// Efficiency computes the interleaving efficiency γ (Eq. 4) for jobs taken
// in the given order with the system's k=4 resource types.
func Efficiency(times []workload.StageTimes) float64 {
	return EfficiencyK(toVecs(times))
}

// Ordering is a permutation of group-member indices; member Ordering[i]
// executes with stage offset i.
type Ordering []int

// Apply reorders times according to the ordering.
func (o Ordering) Apply(times []workload.StageTimes) []workload.StageTimes {
	out := make([]workload.StageTimes, len(o))
	for pos, idx := range o {
		out[pos] = times[idx]
	}
	return out
}

// permutations calls fn with every permutation of [0, n). fn must not
// retain the slice. Iteration stops early if fn returns false.
func permutations(n int, fn func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return fn(perm)
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			if !rec(i + 1) {
				return false
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		return true
	}
	rec(0)
}

// BestOrdering enumerates all orderings of the group and returns the one
// with the highest interleaving efficiency, together with its iteration
// time and efficiency. The enumeration is cheap because group size is at
// most the number of resource types (§4.2: "the enumeration can be
// completed quickly").
func BestOrdering(times []workload.StageTimes) (Ordering, time.Duration, float64) {
	return searchOrdering(times, true)
}

// WorstOrdering returns the ordering with the lowest interleaving
// efficiency. It exists to reproduce the "Muri-L w/ worst ordering"
// ablation of Figure 11.
func WorstOrdering(times []workload.StageTimes) (Ordering, time.Duration, float64) {
	return searchOrdering(times, false)
}

func searchOrdering(times []workload.StageTimes, best bool) (Ordering, time.Duration, float64) {
	if len(times) == 0 {
		return nil, 0, 0
	}
	var (
		chosen    Ordering
		chosenT   time.Duration
		chosenEff = math.Inf(-1)
	)
	if !best {
		chosenEff = math.Inf(1)
	}
	scratch := make([]workload.StageTimes, len(times))
	permutations(len(times), func(perm []int) bool {
		for pos, idx := range perm {
			scratch[pos] = times[idx]
		}
		eff := Efficiency(scratch)
		better := eff > chosenEff
		if !best {
			better = eff < chosenEff
		}
		if better {
			chosenEff = eff
			chosenT = IterationTime(scratch)
			chosen = append(chosen[:0], perm...)
		}
		return true
	})
	return chosen, chosenT, chosenEff
}

// Config parameterizes the contention model applied when jobs share
// resources. The paper observes (§6.2) that "one stage mainly occupies one
// resource type, [but] other resource types may still be used in this
// stage. Consequently, the resource contention between different stages
// decreases the processing speed". We model that as a multiplicative
// inflation of every stage time by 1 + Overhead·(p−1) for a group of p
// jobs. Overhead = 0 recovers the ideal model of Figures 1–6.
type Config struct {
	// Overhead is the per-additional-job slowdown factor α. The default
	// used across the reproduction is 0.08, which reproduces the Figure 12
	// finding that 3-job groups can underperform 2-job groups while 4-job
	// groups still win.
	Overhead float64
}

// DefaultConfig is the contention configuration used by the simulator and
// the benchmarks unless an experiment overrides it.
var DefaultConfig = Config{Overhead: 0.08}

// Inflate applies the contention model to a group of p members, returning
// inflated copies of the stage-time vectors.
func (c Config) Inflate(times []workload.StageTimes) []workload.StageTimes {
	p := len(times)
	if p <= 1 || c.Overhead == 0 {
		return times
	}
	factor := 1 + c.Overhead*float64(p-1)
	out := make([]workload.StageTimes, p)
	for i, t := range times {
		out[i] = t.Scale(factor)
	}
	return out
}

// Plan describes how a concrete group of jobs executes: the ordering, the
// resulting group iteration time (contention included), and the efficiency
// the scheduler used to form the group.
type Plan struct {
	// Order is the chosen stage-offset permutation of the group members.
	Order Ordering
	// IterTime is one group iteration's duration with contention applied.
	IterTime time.Duration
	// Efficiency is γ for the chosen ordering (computed on inflated times,
	// so it reflects what actually runs).
	Efficiency float64
}

// PlanGroup builds the execution plan for a group using the best ordering
// (or the worst, for the ablation).
func (c Config) PlanGroup(times []workload.StageTimes, worst bool) Plan {
	if len(times) == 0 {
		return Plan{}
	}
	if len(times) > MaxGroupSize {
		panic(fmt.Sprintf("interleave: group of %d exceeds max %d", len(times), MaxGroupSize))
	}
	inflated := c.Inflate(times)
	var (
		order Ordering
		T     time.Duration
		eff   float64
	)
	if worst {
		order, T, eff = WorstOrdering(inflated)
	} else {
		order, T, eff = BestOrdering(inflated)
	}
	return Plan{Order: order, IterTime: T, Efficiency: eff}
}

// PairEfficiency is the edge-weight function of the grouping graph: the
// best-ordering interleaving efficiency of the union of two candidate
// member sets (contention included). It is what Algorithm 1 calls
// ComputeInterleavingEfficiency.
func (c Config) PairEfficiency(a, b []workload.StageTimes) float64 {
	combined := make([]workload.StageTimes, 0, len(a)+len(b))
	combined = append(combined, a...)
	combined = append(combined, b...)
	if len(combined) > MaxGroupSize {
		return math.Inf(-1)
	}
	_, _, eff := BestOrdering(c.Inflate(combined))
	return eff
}

// NormalizedThroughput returns, for each group member, its throughput when
// grouped divided by its throughput when run alone — the "Norm. Tput" row
// of Table 2. Alone, a job completes one iteration per serial time; in the
// group, one iteration per group iteration time.
func (c Config) NormalizedThroughput(times []workload.StageTimes) []float64 {
	plan := c.PlanGroup(times, false)
	out := make([]float64, len(times))
	if plan.IterTime == 0 {
		return out
	}
	for i, t := range times {
		out[i] = float64(t.Total()) / float64(plan.IterTime)
	}
	return out
}

// SpeedupOverSerial returns the aggregate normalized throughput of a group
// (the "Total Norm. Tput" of Table 2): the sum of per-member normalized
// throughputs, i.e. how many jobs' worth of work the shared resources
// deliver per unit time compared to exclusive execution.
func (c Config) SpeedupOverSerial(times []workload.StageTimes) float64 {
	sum := 0.0
	for _, v := range c.NormalizedThroughput(times) {
		sum += v
	}
	return sum
}
