package interleave

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"muri/internal/workload"
)

// unit is the base time unit used in the paper's toy figures.
const unit = time.Second

// figure4Jobs returns jobs A–D of Figure 4, a k=2 example (CPU, GPU).
// A: 2 CPU + 1 GPU; B: 1 CPU + 2 GPU; C: 2 CPU + 1 GPU; D: 1 CPU + 2 GPU.
func figure4Jobs() map[string][]time.Duration {
	return map[string][]time.Duration{
		"A": {2 * unit, 1 * unit},
		"B": {1 * unit, 2 * unit},
		"C": {2 * unit, 1 * unit},
		"D": {1 * unit, 2 * unit},
	}
}

// bestK returns the best efficiency and its iteration time over both
// orderings of a k-dimensional pair.
func bestK(a, b []time.Duration) (time.Duration, float64) {
	e1 := EfficiencyK([][]time.Duration{a, b})
	e2 := EfficiencyK([][]time.Duration{b, a})
	if e1 >= e2 {
		return IterationTimeK([][]time.Duration{a, b}), e1
	}
	return IterationTimeK([][]time.Duration{b, a}), e2
}

func TestIterationTimeSingleJobIsSerial(t *testing.T) {
	s := workload.StageTimes{1 * unit, 2 * unit, 3 * unit, 4 * unit}
	if got := IterationTime([]workload.StageTimes{s}); got != s.Total() {
		t.Errorf("IterationTime(single) = %v, want %v", got, s.Total())
	}
}

func TestFigure4PerfectPair(t *testing.T) {
	jobs := figure4Jobs()
	// Grouping A with B should perfectly overlap: γ = 1 (paper §4.1).
	// The CPU stage of A (2u) overlaps the GPU stage of B (2u), etc.
	T, eff := bestK(jobs["A"], jobs["B"])
	if math.Abs(eff-1.0) > 1e-9 {
		t.Errorf("efficiency(A,B) = %v, want 1.0", eff)
	}
	if T != 3*unit {
		t.Errorf("T(A,B) = %v, want 3s", T)
	}
}

func TestFigure4ImperfectPair(t *testing.T) {
	jobs := figure4Jobs()
	// Grouping A with C: CPU fully used, GPU idle half the time → γ = 0.75.
	T, eff := bestK(jobs["A"], jobs["C"])
	if math.Abs(eff-0.75) > 1e-9 {
		t.Errorf("efficiency(A,C) = %v, want 0.75 (paper §4.1)", eff)
	}
	if T != 4*unit {
		t.Errorf("T(A,C) = %v, want 4s", T)
	}
}

func TestFigure6OrderingMatters(t *testing.T) {
	// Figure 6: job A spends 2 units on CPU and 1 on each other type;
	// job B spends 2 on GPU and 1 on each other type. The best ordering
	// overlaps them perfectly; a worse ordering adds idle time.
	a := workload.StageTimes{1 * unit, 2 * unit, 1 * unit, 1 * unit}
	b := workload.StageTimes{1 * unit, 1 * unit, 2 * unit, 1 * unit}
	times := []workload.StageTimes{a, b}
	_, bestT, bestEff := BestOrdering(times)
	_, worstT, worstEff := WorstOrdering(times)
	if bestEff <= worstEff {
		t.Errorf("best eff %v should exceed worst eff %v", bestEff, worstEff)
	}
	if bestT >= worstT {
		t.Errorf("best T %v should be shorter than worst T %v", bestT, worstT)
	}
	// Perfect overlap: T = 5 units (sum of slot maxima when offset by one),
	// every resource busy 5 of 5 units for A+B combined usage (5+5)/2... the
	// best ordering overlaps A's CPU-heavy phase against B's GPU-heavy one.
	if bestT != 5*unit {
		t.Errorf("best T = %v, want 5s (Figure 6a)", bestT)
	}
	if worstT != 6*unit {
		t.Errorf("worst T = %v, want 6s (Figure 6b)", worstT)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	// γ must always lie in [0, 1] for any group of ≤ 4 jobs with distinct
	// offsets, because each resource's total use cannot exceed T.
	f := func(raw [4][4]uint16, n uint8) bool {
		p := int(n%4) + 1
		times := make([]workload.StageTimes, p)
		for i := 0; i < p; i++ {
			for j := 0; j < workload.NumResources; j++ {
				times[i][j] = time.Duration(raw[i][j]) * time.Millisecond
			}
		}
		eff := Efficiency(times)
		T := IterationTime(times)
		if T == 0 {
			return eff == 0
		}
		return eff >= -1e-9 && eff <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIterationTimeLowerBound(t *testing.T) {
	// T must be at least the serial time of the longest member and at most
	// the sum of all members' serial times.
	f := func(raw [3][4]uint16) bool {
		times := make([]workload.StageTimes, 3)
		var longest, sum time.Duration
		for i := range times {
			for j := 0; j < workload.NumResources; j++ {
				times[i][j] = time.Duration(raw[i][j]) * time.Millisecond
			}
			tot := times[i].Total()
			sum += tot
			if tot > longest {
				longest = tot
			}
		}
		T := IterationTime(times)
		return T >= longest && T <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBestOrderingAtLeastIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := 2 + rng.Intn(3)
		times := make([]workload.StageTimes, p)
		for i := range times {
			for j := 0; j < workload.NumResources; j++ {
				times[i][j] = time.Duration(rng.Intn(100)) * time.Millisecond
			}
		}
		_, _, best := BestOrdering(times)
		identity := Efficiency(times)
		if best+1e-12 < identity {
			t.Fatalf("best ordering eff %v < identity ordering eff %v", best, identity)
		}
		_, _, worst := WorstOrdering(times)
		if worst-1e-12 > identity {
			t.Fatalf("worst ordering eff %v > identity ordering eff %v", worst, identity)
		}
	}
}

func TestOrderingApply(t *testing.T) {
	a := workload.StageTimes{1, 0, 0, 0}
	b := workload.StageTimes{2, 0, 0, 0}
	c := workload.StageTimes{3, 0, 0, 0}
	o := Ordering{2, 0, 1}
	got := o.Apply([]workload.StageTimes{a, b, c})
	if got[0] != c || got[1] != a || got[2] != b {
		t.Errorf("Apply = %v, want [c a b]", got)
	}
}

func TestInflate(t *testing.T) {
	cfg := Config{Overhead: 0.1}
	s := workload.StageTimes{10 * unit, 0, 0, 0}
	// Single job: no inflation.
	out := cfg.Inflate([]workload.StageTimes{s})
	if out[0] != s {
		t.Errorf("single-member inflation = %v, want unchanged", out[0])
	}
	// Three jobs: 1 + 0.1*2 = 1.2×.
	out = cfg.Inflate([]workload.StageTimes{s, s, s})
	if out[0][0] != 12*unit {
		t.Errorf("3-member inflation = %v, want 12s", out[0][0])
	}
	// Zero overhead returns input unchanged.
	same := Config{}.Inflate([]workload.StageTimes{s, s})
	if same[0] != s {
		t.Errorf("zero-overhead inflation changed times: %v", same[0])
	}
}

func TestPlanGroupWorstVsBest(t *testing.T) {
	a := workload.StageTimes{1 * unit, 2 * unit, 1 * unit, 1 * unit}
	b := workload.StageTimes{1 * unit, 1 * unit, 2 * unit, 1 * unit}
	cfg := Config{} // ideal, no contention
	best := cfg.PlanGroup([]workload.StageTimes{a, b}, false)
	worst := cfg.PlanGroup([]workload.StageTimes{a, b}, true)
	if best.IterTime >= worst.IterTime {
		t.Errorf("best plan %v not faster than worst plan %v", best.IterTime, worst.IterTime)
	}
	if len(best.Order) != 2 {
		t.Errorf("plan order has %d entries, want 2", len(best.Order))
	}
}

func TestPlanGroupEmptyAndOversized(t *testing.T) {
	var cfg Config
	if p := cfg.PlanGroup(nil, false); p.IterTime != 0 || p.Order != nil {
		t.Errorf("empty plan = %+v, want zero", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("PlanGroup with 5 members should panic")
		}
	}()
	s := workload.StageTimes{unit, unit, unit, unit}
	cfg.PlanGroup([]workload.StageTimes{s, s, s, s, s}, false)
}

func TestPairEfficiencyOversizedIsNegInf(t *testing.T) {
	var cfg Config
	s := workload.StageTimes{unit, 0, 0, 0}
	three := []workload.StageTimes{s, s, s}
	two := []workload.StageTimes{s, s}
	if eff := cfg.PairEfficiency(three, two); !math.IsInf(eff, -1) {
		t.Errorf("PairEfficiency(3+2 members) = %v, want -Inf", eff)
	}
}

func TestTable2ShapeFourJobInterleaving(t *testing.T) {
	// Table 2: interleaving ShuffleNet (storage), A2C (CPU), GPT-2 (GPU)
	// and VGG16 (network) yields total normalized throughput around 2×,
	// well short of the ideal 4× but clearly above 1×.
	var times []workload.StageTimes
	for _, name := range []string{"shufflenet", "a2c", "gpt2", "vgg16"} {
		m, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, m.Stages)
	}
	speedup := DefaultConfig.SpeedupOverSerial(times)
	if speedup < 1.5 || speedup > 3.5 {
		t.Errorf("4-job total normalized throughput = %.2f, want ~2 (Table 2 shape)", speedup)
	}
	norm := DefaultConfig.NormalizedThroughput(times)
	for i, v := range norm {
		if v <= 0 || v > 1.01 {
			t.Errorf("normalized throughput[%d] = %v, want in (0, 1]", i, v)
		}
	}
}

func TestNormalizedThroughputZeroGroup(t *testing.T) {
	var cfg Config
	out := cfg.NormalizedThroughput([]workload.StageTimes{{}, {}})
	for i, v := range out {
		if v != 0 {
			t.Errorf("normalized throughput[%d] = %v for zero profiles, want 0", i, v)
		}
	}
}

func TestPermutationsCount(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24} {
		count := 0
		permutations(n, func([]int) bool { count++; return true })
		if count != want {
			t.Errorf("permutations(%d) visited %d, want %d", n, count, want)
		}
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	count := 0
	permutations(4, func([]int) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}
