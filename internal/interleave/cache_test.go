package interleave

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"muri/internal/workload"
)

// randProfile draws a random stage-time vector; zeros are common in real
// profiles (A2C has no storage stage), so include them.
func randProfile(rng *rand.Rand) workload.StageTimes {
	var s workload.StageTimes
	for r := 0; r < workload.NumResources; r++ {
		if rng.Intn(8) == 0 {
			continue // leave the stage at zero
		}
		s[r] = time.Duration(rng.Intn(100_000)) * time.Microsecond
	}
	return s
}

// TestCacheMatchesFresh is the property test guarding the memoization:
// over randomized profile multisets, the cached PairEfficiency and
// GroupStats must equal fresh computation exactly (==, not within an
// epsilon — the determinism invariant requires bit-identical values),
// both on the miss path and on the hit path.
func TestCacheMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cache := NewEffCache(0)
	for trial := 0; trial < 2000; trial++ {
		cfg := Config{Overhead: []float64{0, 0.08, 0.2}[rng.Intn(3)]}
		n := 1 + rng.Intn(MaxGroupSize)
		times := make([]workload.StageTimes, n)
		for i := range times {
			times[i] = randProfile(rng)
		}
		_, wantT, wantEff := BestOrdering(cfg.Inflate(times))
		for pass := 0; pass < 2; pass++ { // miss path, then hit path
			gotT, gotEff := cache.GroupStats(cfg, times)
			if gotT != wantT || gotEff != wantEff {
				t.Fatalf("trial %d pass %d: GroupStats = (%v, %v), fresh = (%v, %v)",
					trial, pass, gotT, gotEff, wantT, wantEff)
			}
		}
		split := rng.Intn(n + 1)
		want := cfg.PairEfficiency(times[:split], times[split:])
		if got := cache.PairEfficiency(cfg, times[:split], times[split:]); got != want {
			t.Fatalf("trial %d: PairEfficiency = %v, fresh = %v", trial, got, want)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("test exercised only one path: %+v", st)
	}
}

// TestCacheOrderIndependence checks the canonical-key claim: member order
// never changes the memoized statistics, and a cache warmed in one order
// answers queries in any other order with the same exact values.
func TestCacheOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Overhead: 0.08}
	for trial := 0; trial < 500; trial++ {
		cache := NewEffCache(0)
		n := 2 + rng.Intn(MaxGroupSize-1)
		times := make([]workload.StageTimes, n)
		for i := range times {
			times[i] = randProfile(rng)
		}
		baseT, baseEff := cache.GroupStats(cfg, times)
		perm := rng.Perm(n)
		permuted := make([]workload.StageTimes, n)
		for i, p := range perm {
			permuted[i] = times[p]
		}
		gotT, gotEff := cache.GroupStats(cfg, permuted)
		if gotT != baseT || gotEff != baseEff {
			t.Fatalf("trial %d: permuted lookup (%v, %v) != original (%v, %v)",
				trial, gotT, gotEff, baseT, baseEff)
		}
		_, wantT, wantEff := BestOrdering(cfg.Inflate(permuted))
		if gotT != wantT || gotEff != wantEff {
			t.Fatalf("trial %d: cached (%v, %v) != fresh permuted (%v, %v)",
				trial, gotT, gotEff, wantT, wantEff)
		}
	}
}

// TestCacheOverheadKeying ensures distinct contention configurations do
// not alias: the overhead is part of the key.
func TestCacheOverheadKeying(t *testing.T) {
	cache := NewEffCache(0)
	times := []workload.StageTimes{
		{60 * time.Millisecond, 18 * time.Millisecond, 6 * time.Millisecond, 2 * time.Millisecond},
		{time.Millisecond, 2 * time.Millisecond, 80 * time.Millisecond, 30 * time.Millisecond},
	}
	t0, _ := cache.GroupStats(Config{Overhead: 0}, times)
	t1, _ := cache.GroupStats(Config{Overhead: 0.2}, times)
	// Contention inflates every stage, so the iteration time must differ
	// (γ is scale-invariant, so it cannot distinguish the two).
	if t0 == t1 {
		t.Fatalf("overhead not keyed: iteration time %v under both configs", t0)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("expected two distinct keys, stats %+v", st)
	}
}

// TestCacheBounded fills a small cache far past its limit and checks the
// resident set respects the two-generation bound, entries are evicted,
// and values remain correct afterwards — the guard against unbounded
// growth on 5755-job traces with per-job noisy profiles.
func TestCacheBounded(t *testing.T) {
	const max = 16
	cache := NewEffCache(max)
	cfg := Config{Overhead: 0.08}
	rng := rand.New(rand.NewSource(99))
	var keys [][]workload.StageTimes
	for i := 0; i < 40*max; i++ {
		times := []workload.StageTimes{randProfile(rng), randProfile(rng)}
		keys = append(keys, times)
		cache.GroupStats(cfg, times)
		if got := cache.Stats().Entries; got > 2*max {
			t.Fatalf("after %d inserts: %d entries resident, bound is %d", i+1, got, 2*max)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite %d distinct keys with bound %d", len(keys), max)
	}
	// Post-eviction queries (mixed hits and recomputes) still match fresh.
	for _, times := range keys[len(keys)-3*max:] {
		_, wantT, wantEff := BestOrdering(cfg.Inflate(times))
		gotT, gotEff := cache.GroupStats(cfg, times)
		if gotT != wantT || gotEff != wantEff {
			t.Fatalf("post-eviction mismatch: (%v, %v) != (%v, %v)", gotT, gotEff, wantT, wantEff)
		}
	}
}

// TestCacheNilReceiver: a nil cache must behave exactly like fresh
// computation so callers need no guards.
func TestCacheNilReceiver(t *testing.T) {
	var cache *EffCache
	cfg := Config{Overhead: 0.08}
	times := []workload.StageTimes{
		{10 * time.Millisecond, 0, 5 * time.Millisecond, 0},
		{0, 8 * time.Millisecond, 0, 3 * time.Millisecond},
	}
	_, wantT, wantEff := BestOrdering(cfg.Inflate(times))
	gotT, gotEff := cache.GroupStats(cfg, times)
	if gotT != wantT || gotEff != wantEff {
		t.Fatalf("nil GroupStats (%v, %v) != fresh (%v, %v)", gotT, gotEff, wantT, wantEff)
	}
	if got := cache.PairEfficiency(cfg, times[:1], times[1:]); got != wantEff {
		t.Fatalf("nil PairEfficiency %v != %v", got, wantEff)
	}
	if st := cache.Stats(); st.Lookups() != 0 || st.Entries != 0 {
		t.Fatalf("nil Stats not empty: %+v", st)
	}
	big := []workload.StageTimes{times[0], times[0], times[0]}
	if got := cache.PairEfficiency(cfg, big, times); !math.IsInf(got, -1) {
		t.Fatalf("oversize pair: got %v, want -Inf", got)
	}
}
