package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"muri/internal/workload"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "t", Jobs: 100, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Specs) != len(b.Specs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Specs), len(b.Specs))
	}
	for i := range a.Specs {
		if a.Specs[i] != b.Specs[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a.Specs[i], b.Specs[i])
		}
	}
	c := Generate(GenConfig{Name: "t", Jobs: 100, Seed: 43})
	same := true
	for i := range a.Specs {
		if a.Specs[i] != c.Specs[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateInvariants(t *testing.T) {
	tr := Generate(GenConfig{Name: "t", Jobs: 500, Seed: 7, MaxGPUs: 64})
	if len(tr.Specs) != 500 {
		t.Fatalf("jobs = %d, want 500", len(tr.Specs))
	}
	var prev time.Duration
	for i, s := range tr.Specs {
		if s.Submit < prev {
			t.Errorf("spec %d: submit %v before previous %v", i, s.Submit, prev)
		}
		prev = s.Submit
		if s.GPUs&(s.GPUs-1) != 0 || s.GPUs < 1 || s.GPUs > 64 {
			t.Errorf("spec %d: gpus %d not a power of two in range", i, s.GPUs)
		}
		if s.Duration < 2*time.Minute || s.Duration > 24*time.Hour {
			t.Errorf("spec %d: duration %v outside clamp", i, s.Duration)
		}
		if _, err := workload.ByName(s.Model); err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
}

func TestGeneratePanicsOnZeroJobs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with 0 jobs should panic")
		}
	}()
	Generate(GenConfig{})
}

func TestJobTypesRestrictsModels(t *testing.T) {
	wantByTypes := map[int][]workload.Resource{
		1: {workload.GPU},
		2: {workload.GPU, workload.CPU},
		3: {workload.GPU, workload.CPU, workload.Storage},
		4: {workload.GPU, workload.CPU, workload.Storage, workload.Network},
	}
	for types, allowed := range wantByTypes {
		tr := Generate(GenConfig{Name: "t", Jobs: 300, Seed: 5, JobTypes: types})
		allowedSet := make(map[workload.Resource]bool)
		for _, r := range allowed {
			allowedSet[r] = true
		}
		seen := make(map[workload.Resource]bool)
		for _, s := range tr.Specs {
			m, err := workload.ByName(s.Model)
			if err != nil {
				t.Fatal(err)
			}
			b := m.Bottleneck()
			if !allowedSet[b] {
				t.Errorf("types=%d: model %s bottleneck %v not allowed", types, s.Model, b)
			}
			seen[b] = true
		}
		if len(seen) != len(allowed) {
			t.Errorf("types=%d: saw %d bottleneck classes, want %d", types, len(seen), len(allowed))
		}
	}
}

func TestGPUDistributionSkewsSmall(t *testing.T) {
	tr := Generate(GenConfig{Name: "t", Jobs: 2000, Seed: 9, MaxGPUs: 64})
	count := make(map[int]int)
	for _, s := range tr.Specs {
		count[s.GPUs]++
	}
	if frac := float64(count[1]) / 2000; frac < 0.6 || frac > 0.8 {
		t.Errorf("1-GPU fraction = %v, want ≈0.7 (Philly-like)", frac)
	}
	if count[64] > 40 {
		t.Errorf("64-GPU jobs = %d, want rare", count[64])
	}
}

func TestZeroSubmit(t *testing.T) {
	tr := Generate(GenConfig{Name: "t", Jobs: 50, Seed: 3})
	z := tr.ZeroSubmit()
	if z.Name != "t'" {
		t.Errorf("name = %q, want t'", z.Name)
	}
	for i, s := range z.Specs {
		if s.Submit != 0 {
			t.Errorf("spec %d submit = %v, want 0", i, s.Submit)
		}
	}
	// Original unchanged.
	if tr.Specs[len(tr.Specs)-1].Submit == 0 {
		t.Error("ZeroSubmit mutated the original trace")
	}
}

func TestBusiestWindow(t *testing.T) {
	specs := []Spec{
		{ID: 0, Submit: 0, Duration: time.Minute, GPUs: 1, Model: "gpt2"},
		{ID: 1, Submit: 100 * time.Second, Duration: time.Minute, GPUs: 1, Model: "gpt2"},
		{ID: 2, Submit: 101 * time.Second, Duration: time.Minute, GPUs: 1, Model: "gpt2"},
		{ID: 3, Submit: 102 * time.Second, Duration: time.Minute, GPUs: 1, Model: "gpt2"},
		{ID: 4, Submit: 500 * time.Second, Duration: time.Minute, GPUs: 1, Model: "gpt2"},
	}
	tr := Trace{Name: "t", Specs: specs}
	w := tr.BusiestWindow(3)
	if len(w.Specs) != 3 {
		t.Fatalf("window size = %d, want 3", len(w.Specs))
	}
	// The busiest 3-job window is jobs 1-3 (span 2s), rebased to zero.
	if w.Specs[0].Submit != 0 || w.Specs[2].Submit != 2*time.Second {
		t.Errorf("window submits = %v..%v, want 0..2s", w.Specs[0].Submit, w.Specs[2].Submit)
	}
	// Window of ≥ len returns the trace unchanged.
	if got := tr.BusiestWindow(10); len(got.Specs) != 5 {
		t.Errorf("oversized window = %d specs, want 5", len(got.Specs))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(GenConfig{Name: "t", Jobs: 120, Seed: 21, MaxGPUs: 16})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Specs) != len(tr.Specs) {
		t.Fatalf("round trip lost specs: %d vs %d", len(got.Specs), len(tr.Specs))
	}
	for i := range tr.Specs {
		a, b := tr.Specs[i], got.Specs[i]
		if a.ID != b.ID || a.GPUs != b.GPUs || a.Model != b.Model {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a, b)
		}
		if d := a.Submit - b.Submit; d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("spec %d submit drift %v", i, d)
		}
		if d := a.Duration - b.Duration; d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("spec %d duration drift %v", i, d)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"short row":    "id,submit_s,duration_s,gpus,model\n1,2,3\n",
		"bad id":       "id,submit_s,duration_s,gpus,model\nx,0,60,1,gpt2\n",
		"bad submit":   "id,submit_s,duration_s,gpus,model\n1,x,60,1,gpt2\n",
		"bad duration": "id,submit_s,duration_s,gpus,model\n1,0,x,1,gpt2\n",
		"bad gpus":     "id,submit_s,duration_s,gpus,model\n1,0,60,x,gpt2\n",
		"zero gpus":    "id,submit_s,duration_s,gpus,model\n1,0,60,0,gpt2\n",
		"bad model":    "id,submit_s,duration_s,gpus,model\n1,0,60,1,nosuch\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV("t", strings.NewReader(data)); err == nil {
			t.Errorf("%s: ReadCSV succeeded, want error", name)
		}
	}
}

func TestReadCSVSortsBySubmit(t *testing.T) {
	data := "id,submit_s,duration_s,gpus,model\n" +
		"0,100,60,1,gpt2\n" +
		"1,50,60,1,gpt2\n"
	tr, err := ReadCSV("t", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Specs[0].ID != 1 {
		t.Errorf("first spec ID = %d, want 1 (earlier submit)", tr.Specs[0].ID)
	}
}

func TestPhillyConfigs(t *testing.T) {
	cfgs := PhillyConfigs(64)
	if len(cfgs) != 4 {
		t.Fatalf("configs = %d, want 4", len(cfgs))
	}
	wantJobs := []int{992, 2000, 3500, 5755}
	for i, cfg := range cfgs {
		if cfg.Jobs != wantJobs[i] {
			t.Errorf("config %d jobs = %d, want %d", i, cfg.Jobs, wantJobs[i])
		}
		tr := Generate(cfg)
		if len(tr.Specs) != cfg.Jobs {
			t.Errorf("%s generated %d jobs, want %d", cfg.Name, len(tr.Specs), cfg.Jobs)
		}
	}
}

func TestTotalGPUHours(t *testing.T) {
	tr := Trace{Specs: []Spec{
		{Duration: time.Hour, GPUs: 2},
		{Duration: 30 * time.Minute, GPUs: 4},
	}}
	if got := tr.TotalGPUHours(); got != 4 {
		t.Errorf("TotalGPUHours = %v, want 4", got)
	}
}

func TestComputeStats(t *testing.T) {
	tr := Trace{Specs: []Spec{
		{ID: 0, Submit: 0, Duration: time.Hour, GPUs: 2, Model: "gpt2"},
		{ID: 1, Submit: time.Hour, Duration: 30 * time.Minute, GPUs: 4, Model: "a2c"},
		{ID: 2, Submit: 2 * time.Hour, Duration: 2 * time.Hour, GPUs: 1, Model: "gpt2"},
	}}
	s := tr.ComputeStats(8)
	if s.Jobs != 3 {
		t.Errorf("Jobs = %d, want 3", s.Jobs)
	}
	if s.Span != 2*time.Hour {
		t.Errorf("Span = %v, want 2h", s.Span)
	}
	if s.GPUHours != 2+2+2 {
		t.Errorf("GPUHours = %v, want 6", s.GPUHours)
	}
	if s.LoadFactor != 6.0/(2*8) {
		t.Errorf("LoadFactor = %v, want 0.375", s.LoadFactor)
	}
	if s.GPUHistogram[2] != 1 || s.ModelMix["gpt2"] != 2 {
		t.Errorf("histograms wrong: %+v", s)
	}
	if s.MedianDuration != time.Hour {
		t.Errorf("median = %v, want 1h", s.MedianDuration)
	}
	if str := s.String(); str == "" {
		t.Error("empty stats string")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := Trace{}.ComputeStats(8)
	if s.Jobs != 0 || s.LoadFactor != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestLargeJobDurationCap(t *testing.T) {
	tr := Generate(GenConfig{Name: "t", Jobs: 3000, Seed: 13, MaxGPUs: 64,
		MedianDuration: time.Hour, MaxDuration: 24 * time.Hour})
	for i, sp := range tr.Specs {
		limit := time.Duration(float64(24*time.Hour) / float64(sp.GPUs))
		if limit < 2*time.Minute {
			limit = 2 * time.Minute
		}
		if sp.Duration > limit {
			t.Fatalf("spec %d: %d GPUs × %v exceeds cap %v", i, sp.GPUs, sp.Duration, limit)
		}
	}
}
