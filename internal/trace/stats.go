package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats summarizes a trace's workload characteristics — the numbers one
// checks before trusting a synthetic trace to stand in for Philly.
type Stats struct {
	// Jobs is the record count.
	Jobs int
	// Span is the submission window (last submit − first submit).
	Span time.Duration
	// GPUHours is the total work (Σ duration × GPUs).
	GPUHours float64
	// MedianDuration and P95Duration describe the duration distribution.
	MedianDuration, P95Duration time.Duration
	// GPUHistogram counts jobs per GPU-request size.
	GPUHistogram map[int]int
	// LoadFactor is GPU-hours divided by (span × capacity): > 1 means the
	// submission window alone carries more work than the cluster can do.
	LoadFactor float64
	// ModelMix counts jobs per model.
	ModelMix map[string]int
}

// ComputeStats summarizes the trace against a cluster of capacityGPUs.
func (t Trace) ComputeStats(capacityGPUs int) Stats {
	s := Stats{
		Jobs:         len(t.Specs),
		GPUHistogram: make(map[int]int),
		ModelMix:     make(map[string]int),
	}
	if len(t.Specs) == 0 {
		return s
	}
	durations := make([]time.Duration, 0, len(t.Specs))
	first, last := t.Specs[0].Submit, t.Specs[0].Submit
	for _, sp := range t.Specs {
		s.GPUHours += sp.Duration.Hours() * float64(sp.GPUs)
		s.GPUHistogram[sp.GPUs]++
		s.ModelMix[sp.Model]++
		durations = append(durations, sp.Duration)
		if sp.Submit < first {
			first = sp.Submit
		}
		if sp.Submit > last {
			last = sp.Submit
		}
	}
	s.Span = last - first
	sort.Slice(durations, func(i, k int) bool { return durations[i] < durations[k] })
	s.MedianDuration = durations[len(durations)/2]
	s.P95Duration = durations[(len(durations)*95)/100]
	if capacityGPUs > 0 && s.Span > 0 {
		s.LoadFactor = s.GPUHours / (s.Span.Hours() * float64(capacityGPUs))
	}
	return s
}

// String renders a one-paragraph summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d jobs over %v: %.0f GPU-hours (load factor %.2f), median %v, p95 %v\n",
		s.Jobs, s.Span.Round(time.Minute), s.GPUHours, s.LoadFactor,
		s.MedianDuration.Round(time.Second), s.P95Duration.Round(time.Second))
	var gs []int
	for g := range s.GPUHistogram {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	b.WriteString("gpus:")
	for _, g := range gs {
		fmt.Fprintf(&b, " %d×%d", g, s.GPUHistogram[g])
	}
	return b.String()
}
