// Package trace provides DL training job traces: a synthetic generator
// calibrated to the published characteristics of the Microsoft Philly
// traces (the paper's workload source, §6.1), plus CSV serialization.
//
// The paper consumes only three fields per trace record — submission time,
// duration, and GPU count — and assigns each job a model drawn randomly
// from the Table 3 zoo. The generator emits exactly that. The Philly trace
// itself is not redistributable, so this package substitutes a seeded
// synthetic equivalent (see DESIGN.md §1).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"muri/internal/workload"
)

// Spec is one trace record: a job to be submitted.
type Spec struct {
	// ID is the job's identity within the trace.
	ID int64
	// Submit is the submission time relative to trace start.
	Submit time.Duration
	// Duration is the job's total run time at exclusive speed.
	Duration time.Duration
	// GPUs is the number of GPUs the job requests (a power of two).
	GPUs int
	// Model is the zoo model name the job trains.
	Model string
}

// Trace is a named sequence of job specs sorted by submission time.
type Trace struct {
	Name  string
	Specs []Spec
}

// ZeroSubmit returns a copy of the trace with every submission time set to
// zero — the 1'–4' variants the paper uses to evaluate high load (§6.3).
func (t Trace) ZeroSubmit() Trace {
	out := Trace{Name: t.Name + "'", Specs: make([]Spec, len(t.Specs))}
	copy(out.Specs, t.Specs)
	for i := range out.Specs {
		out.Specs[i].Submit = 0
	}
	return out
}

// TotalGPUHours sums duration × GPUs over the trace, in hours.
func (t Trace) TotalGPUHours() float64 {
	s := 0.0
	for _, sp := range t.Specs {
		s += sp.Duration.Hours() * float64(sp.GPUs)
	}
	return s
}

// GenConfig parameterizes the synthetic Philly-like generator.
type GenConfig struct {
	// Name labels the generated trace.
	Name string
	// Jobs is the number of jobs to generate.
	Jobs int
	// Seed makes the trace deterministic.
	Seed int64
	// MeanInterarrival is the mean of the exponential inter-arrival
	// distribution. Lower means a busier cluster.
	MeanInterarrival time.Duration
	// MedianDuration is the median of the log-normal duration
	// distribution.
	MedianDuration time.Duration
	// Sigma is the log-normal shape parameter; Philly durations are
	// heavy-tailed (σ ≈ 1.5).
	Sigma float64
	// MinDuration and MaxDuration clamp the sampled durations.
	MinDuration, MaxDuration time.Duration
	// MaxGPUs caps per-job GPU counts (power of two ≤ MaxGPUs).
	MaxGPUs int
	// JobTypes restricts the model pool to the first JobTypes bottleneck
	// classes in the order GPU, CPU, Storage, Network (Figure 13 sweeps
	// this from 1 to 4). Zero or 4 means all classes.
	JobTypes int
}

// bottleneckOrder is the order in which Figure 13 adds job types.
var bottleneckOrder = []workload.Resource{
	workload.GPU, workload.CPU, workload.Storage, workload.Network,
}

// modelPool returns the models allowed by cfg.JobTypes.
func (cfg GenConfig) modelPool() []workload.Model {
	types := cfg.JobTypes
	if types <= 0 || types > len(bottleneckOrder) {
		types = len(bottleneckOrder)
	}
	var pool []workload.Model
	for _, r := range bottleneckOrder[:types] {
		pool = append(pool, workload.ByBottleneck(r)...)
	}
	return pool
}

// phillyGPUWeights approximates the Philly job-size distribution: most
// jobs use a single GPU, with a heavy single-machine tail and a few
// multi-machine jobs.
var phillyGPUWeights = []struct {
	gpus   int
	weight float64
}{
	{1, 0.70}, {2, 0.09}, {4, 0.07}, {8, 0.09}, {16, 0.03}, {32, 0.015}, {64, 0.005},
}

func sampleGPUs(rng *rand.Rand, maxGPUs int) int {
	total := 0.0
	for _, w := range phillyGPUWeights {
		if w.gpus <= maxGPUs {
			total += w.weight
		}
	}
	x := rng.Float64() * total
	for _, w := range phillyGPUWeights {
		if w.gpus > maxGPUs {
			continue
		}
		if x < w.weight {
			return w.gpus
		}
		x -= w.weight
	}
	return 1
}

// Generate produces a deterministic synthetic trace.
func Generate(cfg GenConfig) Trace {
	if cfg.Jobs <= 0 {
		panic("trace: Jobs must be positive")
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 30 * time.Second
	}
	if cfg.MedianDuration <= 0 {
		cfg.MedianDuration = 20 * time.Minute
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 1.5
	}
	if cfg.MinDuration <= 0 {
		cfg.MinDuration = 2 * time.Minute
	}
	if cfg.MaxDuration <= 0 {
		cfg.MaxDuration = 24 * time.Hour
	}
	if cfg.MaxGPUs <= 0 {
		cfg.MaxGPUs = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := cfg.modelPool()
	specs := make([]Spec, 0, cfg.Jobs)
	var now time.Duration
	mu := math.Log(float64(cfg.MedianDuration))
	for i := 0; i < cfg.Jobs; i++ {
		now += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		gpus := sampleGPUs(rng, cfg.MaxGPUs)
		d := time.Duration(math.Exp(mu + cfg.Sigma*rng.NormFloat64()))
		// Large multi-machine jobs are comparatively short-lived in the
		// Philly analysis (Jeon et al., ATC'19: bigger jobs fail or are
		// killed earlier): cap duration inversely with size so a handful
		// of whole-cluster jobs cannot dominate the trace's GPU-hours.
		maxDur := time.Duration(float64(cfg.MaxDuration) / float64(gpus))
		if maxDur < cfg.MinDuration {
			maxDur = cfg.MinDuration
		}
		if d < cfg.MinDuration {
			d = cfg.MinDuration
		}
		if d > maxDur {
			d = maxDur
		}
		specs = append(specs, Spec{
			ID:       int64(i),
			Submit:   now,
			Duration: d,
			GPUs:     gpus,
			Model:    pool[rng.Intn(len(pool))].Name,
		})
	}
	return Trace{Name: cfg.Name, Specs: specs}
}

// PhillyConfigs returns the four standard trace configurations used across
// the evaluation, with job counts spanning the paper's 992–5755 range and
// varying load (trace 3 is deliberately lightly loaded — the paper calls
// it out as the one where Muri's makespan gain vanishes).
func PhillyConfigs(maxGPUs int) []GenConfig {
	return []GenConfig{
		{Name: "trace1", Jobs: 992, Seed: 1, MeanInterarrival: 90 * time.Second,
			MedianDuration: time.Hour, MaxGPUs: maxGPUs},
		{Name: "trace2", Jobs: 2000, Seed: 2, MeanInterarrival: 60 * time.Second,
			MedianDuration: time.Hour, MaxGPUs: maxGPUs},
		{Name: "trace3", Jobs: 3500, Seed: 3, MeanInterarrival: 150 * time.Second,
			MedianDuration: 20 * time.Minute, MaxGPUs: maxGPUs},
		{Name: "trace4", Jobs: 5755, Seed: 4, MeanInterarrival: 45 * time.Second,
			MedianDuration: time.Hour, MaxGPUs: maxGPUs},
	}
}

// ScaleConfigs returns the beyond-paper scale tiers used by the sharded
// scheduler evaluation: 10k jobs at roughly trace4's load, and a 50k
// fleet at Philly-scale arrival pressure. Both keep the standard Philly
// size/duration distributions so per-round bucket shapes match the paper
// tiers and only the population grows.
func ScaleConfigs(maxGPUs int) []GenConfig {
	return []GenConfig{
		{Name: "philly-10000", Jobs: 10000, Seed: 10, MeanInterarrival: 40 * time.Second,
			MedianDuration: time.Hour, MaxGPUs: maxGPUs},
		{Name: "philly-50k", Jobs: 50000, Seed: 50, MeanInterarrival: 25 * time.Second,
			MedianDuration: 45 * time.Minute, MaxGPUs: maxGPUs},
	}
}

// BusiestWindow extracts the n consecutive jobs (by submission order)
// whose submission window is the busiest — the paper's method for picking
// the 400-job testbed workload from a full trace (§6.1). Submission times
// are rebased so the window starts at zero.
func (t Trace) BusiestWindow(n int) Trace {
	if n >= len(t.Specs) {
		return t
	}
	best := 0
	bestSpan := time.Duration(math.MaxInt64)
	for i := 0; i+n <= len(t.Specs); i++ {
		span := t.Specs[i+n-1].Submit - t.Specs[i].Submit
		if span < bestSpan {
			bestSpan = span
			best = i
		}
	}
	out := Trace{Name: fmt.Sprintf("%s-busy%d", t.Name, n), Specs: make([]Spec, n)}
	copy(out.Specs, t.Specs[best:best+n])
	base := out.Specs[0].Submit
	for i := range out.Specs {
		out.Specs[i].Submit -= base
		out.Specs[i].ID = int64(i)
	}
	return out
}

// WriteCSV writes the trace in the canonical CSV format:
// id,submit_seconds,duration_seconds,gpus,model — one row per job, after
// a header row.
func (t Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "submit_s", "duration_s", "gpus", "model"}); err != nil {
		return err
	}
	for _, s := range t.Specs {
		rec := []string{
			strconv.FormatInt(s.ID, 10),
			strconv.FormatFloat(s.Submit.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(s.Duration.Seconds(), 'f', 3, 64),
			strconv.Itoa(s.GPUs),
			s.Model,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Records are re-sorted by
// submission time.
func ReadCSV(name string, r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return Trace{}, fmt.Errorf("trace: empty csv")
	}
	t := Trace{Name: name}
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return Trace{}, fmt.Errorf("trace: row %d has %d fields, want 5", i+2, len(row))
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: row %d id: %w", i+2, err)
		}
		submit, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: row %d submit: %w", i+2, err)
		}
		dur, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: row %d duration: %w", i+2, err)
		}
		gpus, err := strconv.Atoi(row[3])
		if err != nil {
			return Trace{}, fmt.Errorf("trace: row %d gpus: %w", i+2, err)
		}
		if gpus <= 0 {
			return Trace{}, fmt.Errorf("trace: row %d: nonpositive gpus", i+2)
		}
		if _, err := workload.ByName(row[4]); err != nil {
			return Trace{}, fmt.Errorf("trace: row %d: %w", i+2, err)
		}
		t.Specs = append(t.Specs, Spec{
			ID:       id,
			Submit:   time.Duration(submit * float64(time.Second)),
			Duration: time.Duration(dur * float64(time.Second)),
			GPUs:     gpus,
			Model:    row[4],
		})
	}
	sort.SliceStable(t.Specs, func(i, j int) bool { return t.Specs[i].Submit < t.Specs[j].Submit })
	return t, nil
}
