package executor

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"muri/internal/proto"
)

// Agent is the per-machine executor daemon: it registers with the
// scheduler, launches and kills interleaving groups on command, reports
// progress, and answers profiling requests.
type Agent struct {
	// MachineID identifies this machine to the worker monitor.
	MachineID string
	// GPUs is the machine's GPU inventory.
	GPUs int
	// Fault optionally injects job failures (tests, chaos experiments).
	Fault FaultFunc
	// Logf receives diagnostic output; nil uses log.Printf.
	Logf func(format string, args ...any)
	// HeartbeatEvery is the liveness-signal period; zero means one
	// second. The scheduler evicts executors silent for several periods.
	HeartbeatEvery time.Duration

	mu     sync.Mutex
	groups map[int64]*runningGroup
	conn   net.Conn
	codec  *proto.Codec
	wmu    sync.Mutex // serializes codec writes (and codec swaps)
	// wg tracks every connection-lifetime goroutine Serve spawns
	// (heartbeat, context watcher, profiling), so Serve returns only
	// after they exit. Group runners live on gwg instead: groups keep
	// running across disconnects and re-register with the next leader.
	wg sync.WaitGroup
	// gwg tracks group-lifetime goroutines (runners and progress
	// tickers), which outlive individual connections.
	gwg sync.WaitGroup
	// registered reports a connection with an accepted registration;
	// while false, job events buffer in pending instead of being lost.
	registered bool
	pending    []*proto.Message
	// seenTerm is the highest election term any scheduler acked to us;
	// presented on the next Register so a deposed leader fences itself.
	seenTerm uint64
}

type runningGroup struct {
	run    *GroupRun
	cancel context.CancelFunc
	done   chan struct{}
	// key and gpus echo the Launch, so re-registration can offer the
	// group back to a recovered scheduler for adoption.
	key  string
	gpus int
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Run connects to the scheduler at addr and serves until the connection
// closes or ctx is cancelled.
func (a *Agent) Run(ctx context.Context, addr string) error {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("executor: dial scheduler: %w", err)
	}
	defer conn.Close()
	err = a.Serve(ctx, conn)
	if ctx.Err() != nil {
		// Process shutdown: group contexts descend from ctx, so the
		// runners are unwinding — wait for them before returning.
		a.gwg.Wait()
	}
	return err
}

// RunWithRetry keeps the executor connected across scheduler restarts:
// it dials, serves, and on disconnect retries with exponential backoff
// (capped at maxBackoff) until ctx is cancelled. Running groups keep
// running through the disconnect; the next registration offers them
// back for adoption, and only groups the scheduler declines are killed.
func (a *Agent) RunWithRetry(ctx context.Context, addr string, maxBackoff time.Duration) error {
	return a.RunHA(ctx, []string{addr}, maxBackoff)
}

// RunHA is RunWithRetry over an ordered scheduler address list (leader
// plus standbys): on disconnect the agent tries each address in turn —
// a standby rejects registration until promoted — and backs off only
// after a full sweep fails. This is how executors re-register against a
// newly promoted leader without losing running groups.
func (a *Agent) RunHA(ctx context.Context, addrs []string, maxBackoff time.Duration) error {
	if len(addrs) == 0 {
		return fmt.Errorf("executor: no scheduler addresses")
	}
	if maxBackoff <= 0 {
		maxBackoff = 30 * time.Second
	}
	backoff := 250 * time.Millisecond
	for {
		for _, addr := range addrs {
			start := time.Now()
			err := a.Run(ctx, addr)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err != nil {
				a.logf("executor %s: scheduler %s: %v", a.MachineID, addr, err)
			} else {
				a.logf("executor %s: scheduler %s closed the connection", a.MachineID, addr)
			}
			if time.Since(start) > 2*maxBackoff {
				// A long successful session means the outage is fresh, not a
				// flapping loop; restart the backoff ladder.
				backoff = 250 * time.Millisecond
			}
		}
		a.logf("executor %s: no scheduler reachable; retrying in %v", a.MachineID, backoff)
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Serve runs the executor protocol over an established connection
// (exposed separately so tests can use net.Pipe). Groups launched on a
// previous connection keep running: they are offered back in the
// Register for adoption, and only the ones the scheduler declines (the
// daemon requeued or reassigned their jobs meanwhile) are killed.
func (a *Agent) Serve(ctx context.Context, conn net.Conn) error {
	a.mu.Lock()
	a.conn = conn
	if a.groups == nil {
		a.groups = make(map[int64]*runningGroup)
	}
	reg := &proto.Register{MachineID: a.MachineID, GPUs: a.GPUs,
		Groups: a.snapshotGroupsLocked(), SeenTerm: a.seenTerm}
	a.mu.Unlock()
	a.wmu.Lock()
	a.codec = proto.NewCodec(conn)
	a.wmu.Unlock()
	// LIFO: mark unregistered (events buffer again), unblock the
	// watcher, then wait for connection-lifetime goroutines — group
	// runners live on gwg and deliberately survive Serve.
	defer a.wg.Wait()
	defer a.setRegistered(false)

	if err := a.send(&proto.Message{Type: proto.TypeRegister, Register: reg}); err != nil {
		return err
	}
	// Groups offered in this registration; those absent from the ack's
	// adopted set must be killed (their jobs belong elsewhere now).
	offered := make([]int64, len(reg.Groups))
	for i := range reg.Groups {
		offered[i] = reg.Groups[i].GroupID
	}
	// Close the connection when ctx ends so the read loop unblocks.
	watchDone := make(chan struct{})
	defer close(watchDone)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	// Liveness: heartbeat even when no group is running, so the worker
	// monitor can tell an idle machine from a dead one. If the scheduler
	// advertises a lease TTL and no explicit period is configured, pace
	// heartbeats to a third of the lease.
	hbEvery := a.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	leaseCh := make(chan time.Duration, 1)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-watchDone:
				return
			case <-ctx.Done():
				return
			case ttl := <-leaseCh:
				if a.HeartbeatEvery <= 0 && ttl/3 > 0 && ttl/3 < hbEvery {
					hbEvery = ttl / 3
					t.Reset(hbEvery)
				}
			case <-t.C:
				a.mu.Lock()
				n := len(a.groups)
				a.mu.Unlock()
				if err := a.send(&proto.Message{Type: proto.TypeHeartbeat,
					Heartbeat: &proto.Heartbeat{MachineID: a.MachineID, RunningGroups: n}}); err != nil {
					return
				}
			}
		}
	}()
	for {
		m, err := a.codec.Read()
		if err != nil {
			if ctx.Err() != nil || err == io.EOF {
				return nil
			}
			return fmt.Errorf("executor: read: %w", err)
		}
		switch m.Type {
		case proto.TypeRegisterAck:
			ack := m.RegisterAck
			a.mu.Lock()
			if ack.Term > a.seenTerm {
				a.seenTerm = ack.Term
			}
			a.mu.Unlock()
			if !ack.OK {
				return fmt.Errorf("executor: registration rejected: %s", ack.Reason)
			}
			a.reconcileAdoption(offered, ack.AdoptedGroups)
			a.flushPending()
			if ttl := ack.LeaseTTL; ttl > 0 {
				select {
				case leaseCh <- ttl:
				default:
				}
			}
		case proto.TypeLaunch:
			a.handleLaunch(ctx, m.Launch)
		case proto.TypeKill:
			a.handleKill(m.Kill.GroupID)
		case proto.TypeProfileReq:
			a.wg.Add(1)
			go func() {
				defer a.wg.Done()
				a.handleProfile(ctx, m.ProfileReq)
			}()
		default:
			a.logf("executor %s: unexpected message %s", a.MachineID, m.Type)
		}
	}
}

func (a *Agent) send(m *proto.Message) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	if a.codec == nil {
		return fmt.Errorf("executor: not connected")
	}
	return a.codec.Write(m)
}

// sendEvent delivers a job event (JobDone/Fault) or buffers it while
// disconnected, so completions that land between a scheduler crash and
// the re-registration are replayed instead of lost. The scheduler
// validates events against the job's current group, so a buffered event
// for work it reassigned meanwhile is ignored there.
func (a *Agent) sendEvent(m *proto.Message) {
	a.mu.Lock()
	if !a.registered {
		a.pending = append(a.pending, m)
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	if err := a.send(m); err != nil {
		a.mu.Lock()
		a.pending = append(a.pending, m)
		a.mu.Unlock()
	}
}

func (a *Agent) setRegistered(v bool) {
	a.mu.Lock()
	a.registered = v
	a.mu.Unlock()
}

// flushPending replays events buffered across the disconnect, in order.
func (a *Agent) flushPending() {
	a.mu.Lock()
	pending := a.pending
	a.pending = nil
	a.registered = true
	a.mu.Unlock()
	for i, m := range pending {
		if err := a.send(m); err != nil {
			a.mu.Lock()
			a.pending = append(pending[i:], a.pending...)
			a.registered = false
			a.mu.Unlock()
			return
		}
	}
}

// snapshotGroupsLocked renders the running groups for a Register offer.
// Callers hold a.mu.
func (a *Agent) snapshotGroupsLocked() []proto.RunningGroup {
	if len(a.groups) == 0 {
		return nil
	}
	out := make([]proto.RunningGroup, 0, len(a.groups))
	for gid, rg := range a.groups {
		g := proto.RunningGroup{GroupID: gid, Key: rg.key, GPUs: rg.gpus}
		for _, jp := range rg.run.Progress() {
			g.Jobs = append(g.Jobs, proto.RunningJob{ID: jp.ID, DoneIterations: jp.DoneIterations})
		}
		out = append(out, g)
	}
	return out
}

// reconcileAdoption kills every group offered at registration that the
// scheduler declined to adopt: its jobs were requeued, reassigned, or
// finished from the scheduler's point of view, so keeping the local run
// alive would double-execute them.
func (a *Agent) reconcileAdoption(offered, adopted []int64) {
	keep := make(map[int64]bool, len(adopted))
	for _, gid := range adopted {
		keep[gid] = true
	}
	for _, gid := range offered {
		if !keep[gid] {
			a.logf("executor %s: group %d not adopted; killing it", a.MachineID, gid)
			a.handleKill(gid)
		}
	}
}

func (a *Agent) handleLaunch(ctx context.Context, l *proto.Launch) {
	a.mu.Lock()
	if _, exists := a.groups[l.GroupID]; exists {
		a.mu.Unlock()
		a.logf("executor %s: duplicate launch of group %d ignored", a.MachineID, l.GroupID)
		return
	}
	gctx, cancel := context.WithCancel(ctx)
	events := GroupEvents{
		JobDone: func(jobID int64) {
			a.sendEvent(&proto.Message{Type: proto.TypeJobDone,
				JobDone: &proto.JobDone{GroupID: l.GroupID, JobID: jobID}})
		},
		Fault: func(jobID int64, err error) {
			a.sendEvent(&proto.Message{Type: proto.TypeFault,
				Fault: &proto.Fault{GroupID: l.GroupID, JobID: jobID, Error: err.Error(),
					Machine: a.MachineID}})
		},
	}
	run := NewGroupRun(l.Jobs, l.TimeScale, events, a.Fault)
	rg := &runningGroup{run: run, cancel: cancel, done: make(chan struct{}),
		key: l.Key, gpus: l.GPUs}
	a.groups[l.GroupID] = rg
	a.mu.Unlock()

	reportEvery := l.ReportEvery
	if reportEvery <= 0 {
		reportEvery = time.Second
	}
	// Group-lifetime goroutines ride gwg, not wg: the group survives the
	// connection that launched it and re-registers with the next leader.
	a.gwg.Add(1)
	go func() {
		defer a.gwg.Done()
		t := time.NewTicker(reportEvery)
		defer t.Stop()
		for {
			select {
			case <-rg.done:
				return
			case <-t.C:
				a.mu.Lock()
				connected := a.registered
				a.mu.Unlock()
				if !connected {
					continue // progress is best-effort; don't spam a dead pipe
				}
				_ = a.send(&proto.Message{Type: proto.TypeProgress,
					Progress: &proto.Progress{GroupID: l.GroupID, Jobs: run.Progress()}})
			}
		}
	}()
	a.gwg.Add(1)
	go func() {
		defer a.gwg.Done()
		defer close(rg.done)
		_ = run.Run(gctx)
		// Final progress snapshot so the scheduler sees exact counts.
		a.mu.Lock()
		connected := a.registered
		a.mu.Unlock()
		if connected {
			_ = a.send(&proto.Message{Type: proto.TypeProgress,
				Progress: &proto.Progress{GroupID: l.GroupID, Jobs: run.Progress()}})
		}
		a.mu.Lock()
		delete(a.groups, l.GroupID)
		a.mu.Unlock()
	}()
}

func (a *Agent) handleKill(groupID int64) {
	a.mu.Lock()
	rg, ok := a.groups[groupID]
	a.mu.Unlock()
	if !ok {
		return
	}
	rg.cancel()
	<-rg.done
}

func (a *Agent) handleProfile(ctx context.Context, req *proto.ProfileReq) {
	res, err := ProfileModel(ctx, req.Model, req.Iterations, req.TimeScale)
	if err != nil && res.Err == "" {
		res.Err = err.Error()
	}
	_ = a.send(&proto.Message{Type: proto.TypeProfiled, Profiled: &res})
}

func (a *Agent) killAll() {
	a.mu.Lock()
	groups := make([]*runningGroup, 0, len(a.groups))
	for _, rg := range a.groups {
		groups = append(groups, rg)
	}
	a.mu.Unlock()
	for _, rg := range groups {
		rg.cancel()
		<-rg.done
	}
}
