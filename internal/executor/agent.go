package executor

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"muri/internal/proto"
)

// Agent is the per-machine executor daemon: it registers with the
// scheduler, launches and kills interleaving groups on command, reports
// progress, and answers profiling requests.
type Agent struct {
	// MachineID identifies this machine to the worker monitor.
	MachineID string
	// GPUs is the machine's GPU inventory.
	GPUs int
	// Fault optionally injects job failures (tests, chaos experiments).
	Fault FaultFunc
	// Logf receives diagnostic output; nil uses log.Printf.
	Logf func(format string, args ...any)
	// HeartbeatEvery is the liveness-signal period; zero means one
	// second. The scheduler evicts executors silent for several periods.
	HeartbeatEvery time.Duration

	mu     sync.Mutex
	groups map[int64]*runningGroup
	conn   net.Conn
	codec  *proto.Codec
	wmu    sync.Mutex // serializes codec writes
	// wg tracks every goroutine Serve spawns (heartbeat, context watcher,
	// group runners, profiling), so Serve returns only after they exit.
	wg sync.WaitGroup
}

type runningGroup struct {
	run    *GroupRun
	cancel context.CancelFunc
	done   chan struct{}
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Run connects to the scheduler at addr and serves until the connection
// closes or ctx is cancelled.
func (a *Agent) Run(ctx context.Context, addr string) error {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("executor: dial scheduler: %w", err)
	}
	defer conn.Close()
	return a.Serve(ctx, conn)
}

// RunWithRetry keeps the executor connected across scheduler restarts:
// it dials, serves, and on disconnect retries with exponential backoff
// (capped at maxBackoff) until ctx is cancelled. Progress of running
// groups is lost on disconnect — the scheduler requeues those jobs from
// their last reported iteration, exactly as with any executor fault.
func (a *Agent) RunWithRetry(ctx context.Context, addr string, maxBackoff time.Duration) error {
	if maxBackoff <= 0 {
		maxBackoff = 30 * time.Second
	}
	backoff := 250 * time.Millisecond
	for {
		err := a.Run(ctx, addr)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			a.logf("executor %s: connection lost (%v); retrying in %v", a.MachineID, err, backoff)
		} else {
			a.logf("executor %s: scheduler closed the connection; retrying in %v", a.MachineID, backoff)
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Serve runs the executor protocol over an established connection
// (exposed separately so tests can use net.Pipe).
func (a *Agent) Serve(ctx context.Context, conn net.Conn) error {
	a.mu.Lock()
	a.conn = conn
	a.codec = proto.NewCodec(conn)
	a.groups = make(map[int64]*runningGroup)
	a.mu.Unlock()
	// LIFO: unblock the watcher, stop every group, then wait for all
	// spawned goroutines — Serve leaks nothing after it returns.
	defer a.wg.Wait()
	defer a.killAll()

	if err := a.send(&proto.Message{
		Type:     proto.TypeRegister,
		Register: &proto.Register{MachineID: a.MachineID, GPUs: a.GPUs},
	}); err != nil {
		return err
	}
	// Close the connection when ctx ends so the read loop unblocks.
	watchDone := make(chan struct{})
	defer close(watchDone)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	// Liveness: heartbeat even when no group is running, so the worker
	// monitor can tell an idle machine from a dead one. If the scheduler
	// advertises a lease TTL and no explicit period is configured, pace
	// heartbeats to a third of the lease.
	hbEvery := a.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	leaseCh := make(chan time.Duration, 1)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-watchDone:
				return
			case <-ctx.Done():
				return
			case ttl := <-leaseCh:
				if a.HeartbeatEvery <= 0 && ttl/3 > 0 && ttl/3 < hbEvery {
					hbEvery = ttl / 3
					t.Reset(hbEvery)
				}
			case <-t.C:
				a.mu.Lock()
				n := len(a.groups)
				a.mu.Unlock()
				if err := a.send(&proto.Message{Type: proto.TypeHeartbeat,
					Heartbeat: &proto.Heartbeat{MachineID: a.MachineID, RunningGroups: n}}); err != nil {
					return
				}
			}
		}
	}()
	for {
		m, err := a.codec.Read()
		if err != nil {
			if ctx.Err() != nil || err == io.EOF {
				return nil
			}
			return fmt.Errorf("executor: read: %w", err)
		}
		switch m.Type {
		case proto.TypeRegisterAck:
			if !m.RegisterAck.OK {
				return fmt.Errorf("executor: registration rejected: %s", m.RegisterAck.Reason)
			}
			if ttl := m.RegisterAck.LeaseTTL; ttl > 0 {
				select {
				case leaseCh <- ttl:
				default:
				}
			}
		case proto.TypeLaunch:
			a.handleLaunch(ctx, m.Launch)
		case proto.TypeKill:
			a.handleKill(m.Kill.GroupID)
		case proto.TypeProfileReq:
			a.wg.Add(1)
			go func() {
				defer a.wg.Done()
				a.handleProfile(ctx, m.ProfileReq)
			}()
		default:
			a.logf("executor %s: unexpected message %s", a.MachineID, m.Type)
		}
	}
}

func (a *Agent) send(m *proto.Message) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return a.codec.Write(m)
}

func (a *Agent) handleLaunch(ctx context.Context, l *proto.Launch) {
	a.mu.Lock()
	if _, exists := a.groups[l.GroupID]; exists {
		a.mu.Unlock()
		a.logf("executor %s: duplicate launch of group %d ignored", a.MachineID, l.GroupID)
		return
	}
	gctx, cancel := context.WithCancel(ctx)
	events := GroupEvents{
		JobDone: func(jobID int64) {
			_ = a.send(&proto.Message{Type: proto.TypeJobDone,
				JobDone: &proto.JobDone{GroupID: l.GroupID, JobID: jobID}})
		},
		Fault: func(jobID int64, err error) {
			_ = a.send(&proto.Message{Type: proto.TypeFault,
				Fault: &proto.Fault{GroupID: l.GroupID, JobID: jobID, Error: err.Error(),
					Machine: a.MachineID}})
		},
	}
	run := NewGroupRun(l.Jobs, l.TimeScale, events, a.Fault)
	rg := &runningGroup{run: run, cancel: cancel, done: make(chan struct{})}
	a.groups[l.GroupID] = rg
	a.mu.Unlock()

	reportEvery := l.ReportEvery
	if reportEvery <= 0 {
		reportEvery = time.Second
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(reportEvery)
		defer t.Stop()
		for {
			select {
			case <-rg.done:
				return
			case <-t.C:
				_ = a.send(&proto.Message{Type: proto.TypeProgress,
					Progress: &proto.Progress{GroupID: l.GroupID, Jobs: run.Progress()}})
			}
		}
	}()
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		defer close(rg.done)
		_ = run.Run(gctx)
		// Final progress snapshot so the scheduler sees exact counts.
		_ = a.send(&proto.Message{Type: proto.TypeProgress,
			Progress: &proto.Progress{GroupID: l.GroupID, Jobs: run.Progress()}})
		a.mu.Lock()
		delete(a.groups, l.GroupID)
		a.mu.Unlock()
	}()
}

func (a *Agent) handleKill(groupID int64) {
	a.mu.Lock()
	rg, ok := a.groups[groupID]
	a.mu.Unlock()
	if !ok {
		return
	}
	rg.cancel()
	<-rg.done
}

func (a *Agent) handleProfile(ctx context.Context, req *proto.ProfileReq) {
	res, err := ProfileModel(ctx, req.Model, req.Iterations, req.TimeScale)
	if err != nil && res.Err == "" {
		res.Err = err.Error()
	}
	_ = a.send(&proto.Message{Type: proto.TypeProfiled, Profiled: &res})
}

func (a *Agent) killAll() {
	a.mu.Lock()
	groups := make([]*runningGroup, 0, len(a.groups))
	for _, rg := range a.groups {
		groups = append(groups, rg)
	}
	a.mu.Unlock()
	for _, rg := range groups {
		rg.cancel()
		<-rg.done
	}
}
