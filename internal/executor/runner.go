// Package executor implements the Muri executor (paper Figure 3, §5):
// it runs interleaving groups with per-stage synchronization barriers,
// reports progress and faults to the scheduler, and answers dry-run
// profiling requests. Stage execution is simulated by sleeping the
// (time-scaled) stage duration, which preserves the exact concurrency
// structure of the prototype without GPUs.
package executor

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"muri/internal/proto"
	"muri/internal/workload"
)

// FaultFunc lets tests and examples inject failures: it is consulted
// before every iteration and returns a non-nil error to fail the job.
type FaultFunc func(jobID int64, iteration int64) error

// GroupEvents receives runner callbacks. Callbacks run on runner
// goroutines and must not block for long.
type GroupEvents struct {
	// JobDone fires when a member completes all iterations.
	JobDone func(jobID int64)
	// Fault fires when a member fails; the member stops, others continue.
	Fault func(jobID int64, err error)
}

// GroupRun executes one interleaving group: each member runs with a
// distinct stage offset and a barrier separates consecutive stage slots,
// so at any instant each resource type is used by at most one member
// (paper §4.1). The zero value is not usable; construct with NewGroupRun.
type GroupRun struct {
	jobs   []proto.JobSpec
	scale  float64
	events GroupEvents
	fault  FaultFunc

	done   []atomic.Int64 // per-member completed iterations
	iterNS []atomic.Int64 // per-member observed avg iteration nanos
}

// NewGroupRun prepares a group execution. Jobs must be in stage-offset
// order (Jobs[i] starts at offset i). timeScale compresses virtual stage
// durations into wall-clock sleeps; it must be positive.
func NewGroupRun(jobs []proto.JobSpec, timeScale float64, events GroupEvents, fault FaultFunc) *GroupRun {
	if len(jobs) == 0 {
		panic("executor: empty group")
	}
	if len(jobs) > workload.NumResources {
		panic(fmt.Sprintf("executor: group of %d exceeds %d members", len(jobs), workload.NumResources))
	}
	if timeScale <= 0 {
		panic("executor: non-positive time scale")
	}
	g := &GroupRun{
		jobs:   jobs,
		scale:  timeScale,
		events: events,
		fault:  fault,
		done:   make([]atomic.Int64, len(jobs)),
		iterNS: make([]atomic.Int64, len(jobs)),
	}
	for i, j := range jobs {
		g.done[i].Store(j.DoneIterations)
	}
	return g
}

// Progress returns a snapshot of every member's progress.
func (g *GroupRun) Progress() []proto.JobProgress {
	out := make([]proto.JobProgress, len(g.jobs))
	for i, j := range g.jobs {
		out[i] = proto.JobProgress{
			ID:             j.ID,
			DoneIterations: g.done[i].Load(),
			AvgIterTime:    time.Duration(g.iterNS[i].Load()),
		}
	}
	return out
}

// sleep waits for the scaled duration or until ctx is cancelled.
func (g *GroupRun) sleep(ctx context.Context, d time.Duration) error {
	scaled := time.Duration(float64(d) * g.scale)
	if scaled <= 0 {
		// Still yield so zero-length stages cannot starve the scheduler.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(scaled)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run executes the group until all members finish or ctx is cancelled.
// It returns ctx.Err() on cancellation and nil on completion.
func (g *GroupRun) Run(ctx context.Context) error {
	bar := newBarrier(len(g.jobs))
	stop := bar.watchContext(ctx)
	defer stop()
	var wg sync.WaitGroup
	for i := range g.jobs {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			g.runMember(ctx, bar, offset)
		}(i)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// runMember executes one member's iterations. The member at `offset`
// executes stage (offset+slot) mod k in stage slot `slot`; a barrier
// separates consecutive slots so members never use a resource
// concurrently.
func (g *GroupRun) runMember(ctx context.Context, bar *barrier, offset int) {
	k := workload.NumResources
	spec := g.jobs[offset]
	iterStart := time.Now()
	for g.done[offset].Load() < spec.Iterations {
		if g.fault != nil {
			if err := g.fault(spec.ID, g.done[offset].Load()); err != nil {
				bar.Leave()
				if g.events.Fault != nil {
					g.events.Fault(spec.ID, err)
				}
				return
			}
		}
		for slot := 0; slot < k; slot++ {
			stage := (offset + slot) % k
			if err := g.sleep(ctx, spec.Stages[stage]); err != nil {
				bar.Leave()
				return
			}
			if err := bar.Await(); err != nil {
				return
			}
		}
		g.done[offset].Add(1)
		elapsed := time.Since(iterStart)
		iters := g.done[offset].Load() - spec.DoneIterations
		if iters > 0 {
			// Report virtual time: wall time divided by the time scale.
			g.iterNS[offset].Store(int64(float64(elapsed.Nanoseconds()) / float64(iters) / g.scale))
		}
	}
	bar.Leave()
	if g.events.JobDone != nil {
		g.events.JobDone(spec.ID)
	}
}

// ProfileModel dry-runs a model alone for the given iterations and
// returns the measured per-stage durations in virtual time. This is the
// executor side of the resource profiler (paper §3/§5).
func ProfileModel(ctx context.Context, model string, iterations int, timeScale float64) (proto.Profiled, error) {
	m, err := workload.ByName(model)
	if err != nil {
		return proto.Profiled{Model: model, Err: err.Error()}, err
	}
	if iterations <= 0 {
		iterations = 5
	}
	var measured [workload.NumResources]time.Duration
	for it := 0; it < iterations; it++ {
		for r := 0; r < workload.NumResources; r++ {
			start := time.Now()
			scaled := time.Duration(float64(m.Stages[r]) * timeScale)
			if scaled > 0 {
				t := time.NewTimer(scaled)
				select {
				case <-ctx.Done():
					t.Stop()
					return proto.Profiled{Model: model, Err: ctx.Err().Error()}, ctx.Err()
				case <-t.C:
				}
			}
			measured[r] += time.Duration(float64(time.Since(start)) / timeScale)
		}
	}
	var out proto.Profiled
	out.Model = model
	for r := 0; r < workload.NumResources; r++ {
		out.Stages[r] = measured[r] / time.Duration(iterations)
	}
	return out, nil
}
