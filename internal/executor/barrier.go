package executor

import (
	"context"
	"errors"
	"sync"
)

// ErrBarrierClosed is returned by Await after the barrier is closed
// (group cancelled).
var ErrBarrierClosed = errors.New("executor: barrier closed")

// barrier is a reusable cyclic barrier whose party count can shrink as
// group members finish. It realizes the paper's per-stage-slot
// synchronization: "we add a synchronization barrier after the
// overlapped stages of different jobs" (§4.1).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
	closed  bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until every remaining party has arrived (one stage slot
// boundary), then releases the whole generation.
func (b *barrier) Await() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBarrierClosed
	}
	b.arrived++
	if b.arrived >= b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	gen := b.gen
	for gen == b.gen && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return ErrBarrierClosed
	}
	return nil
}

// Leave removes one party (its job finished). If the remaining parties
// have all already arrived, the generation is released.
func (b *barrier) Leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.parties > 0 && b.arrived >= b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	}
}

// Close releases every waiter with ErrBarrierClosed; subsequent Awaits
// fail immediately.
func (b *barrier) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// watchContext closes the barrier when ctx is cancelled; the returned
// stop function releases the watcher.
func (b *barrier) watchContext(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			b.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}
