package executor

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"muri/internal/proto"
)

func TestBarrierReleasesAllParties(t *testing.T) {
	b := newBarrier(3)
	var wg sync.WaitGroup
	var released atomic.Int32
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Await(); err != nil {
				t.Errorf("Await: %v", err)
			}
			released.Add(1)
		}()
	}
	wg.Wait()
	if released.Load() != 3 {
		t.Errorf("released %d, want 3", released.Load())
	}
}

func TestBarrierCyclic(t *testing.T) {
	b := newBarrier(2)
	const rounds = 50
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := b.Await(); err != nil {
					t.Errorf("round %d: %v", r, err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cyclic barrier deadlocked")
	}
}

func TestBarrierLeaveUnblocksWaiters(t *testing.T) {
	b := newBarrier(2)
	done := make(chan error, 1)
	go func() { done <- b.Await() }()
	time.Sleep(20 * time.Millisecond) // let the waiter arrive
	b.Leave()                         // the second party finishes instead of arriving
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Await after Leave = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not released by Leave")
	}
}

func TestBarrierClose(t *testing.T) {
	b := newBarrier(2)
	done := make(chan error, 1)
	go func() { done <- b.Await() }()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	if err := <-done; !errors.Is(err, ErrBarrierClosed) {
		t.Errorf("Await after Close = %v, want ErrBarrierClosed", err)
	}
	if err := b.Await(); !errors.Is(err, ErrBarrierClosed) {
		t.Errorf("Await on closed barrier = %v, want ErrBarrierClosed", err)
	}
}

// twoJobs builds a complementary pair: job 0 heavy on CPU, job 1 heavy on
// GPU, 1ms units so tests run fast at scale 1.
func twoJobs(iters int64) []proto.JobSpec {
	ms := time.Millisecond
	return []proto.JobSpec{
		{ID: 1, Model: "a2c", Stages: [4]time.Duration{0, 2 * ms, 1 * ms, 0}, Iterations: iters},
		{ID: 2, Model: "gpt2", Stages: [4]time.Duration{0, 1 * ms, 2 * ms, 0}, Iterations: iters},
	}
}

func TestGroupRunCompletesAllJobs(t *testing.T) {
	var doneIDs sync.Map
	g := NewGroupRun(twoJobs(20), 1.0, GroupEvents{
		JobDone: func(id int64) { doneIDs.Store(id, true) },
	}, nil)
	if err := g.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, id := range []int64{1, 2} {
		if _, ok := doneIDs.Load(id); !ok {
			t.Errorf("job %d did not complete", id)
		}
	}
	for _, p := range g.Progress() {
		if p.DoneIterations != 20 {
			t.Errorf("job %d done = %d, want 20", p.ID, p.DoneIterations)
		}
		if p.AvgIterTime <= 0 {
			t.Errorf("job %d avg iter time = %v, want > 0", p.ID, p.AvgIterTime)
		}
	}
}

func TestGroupRunInterleavingTiming(t *testing.T) {
	// Perfect complements should run faster together (Eq. 3 cycle of 4ms)
	// than one after another (3ms + 3ms per iteration). Compare against a
	// measured sequential execution so timer overhead and machine load
	// cancel out instead of flaking the test.
	iters := int64(30)
	g := NewGroupRun(twoJobs(iters), 1.0, GroupEvents{}, nil)
	start := time.Now()
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	interleaved := time.Since(start)

	start = time.Now()
	for _, spec := range twoJobs(iters) {
		solo := NewGroupRun([]proto.JobSpec{spec}, 1.0, GroupEvents{}, nil)
		if err := solo.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	sequential := time.Since(start)
	if interleaved >= sequential {
		t.Errorf("interleaved wall %v not faster than sequential %v", interleaved, sequential)
	}
}

func TestGroupRunCancellation(t *testing.T) {
	g := NewGroupRun(twoJobs(1_000_000), 1.0, GroupEvents{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancellation did not stop the group")
	}
	// Progress is preserved for the restart path.
	for _, p := range g.Progress() {
		if p.DoneIterations <= 0 {
			t.Errorf("job %d lost progress on cancel", p.ID)
		}
	}
}

func TestGroupRunResumeFromCheckpoint(t *testing.T) {
	jobs := twoJobs(10)
	jobs[0].DoneIterations = 7
	jobs[1].DoneIterations = 9
	g := NewGroupRun(jobs, 1.0, GroupEvents{}, nil)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Progress() {
		if p.DoneIterations != 10 {
			t.Errorf("job %d done = %d, want 10", p.ID, p.DoneIterations)
		}
	}
}

func TestGroupRunFaultInjection(t *testing.T) {
	faults := make(chan int64, 1)
	var doneJobs sync.Map
	fault := func(jobID, iter int64) error {
		if jobID == 1 && iter >= 5 {
			return errors.New("injected cuda error")
		}
		return nil
	}
	g := NewGroupRun(twoJobs(20), 1.0, GroupEvents{
		JobDone: func(id int64) { doneJobs.Store(id, true) },
		Fault:   func(id int64, err error) { faults <- id },
	}, fault)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-faults:
		if id != 1 {
			t.Errorf("faulted job = %d, want 1", id)
		}
	default:
		t.Fatal("no fault reported")
	}
	// The surviving member must still complete.
	if _, ok := doneJobs.Load(int64(2)); !ok {
		t.Error("healthy job 2 did not finish after peer fault")
	}
	if _, ok := doneJobs.Load(int64(1)); ok {
		t.Error("faulted job 1 reported done")
	}
}

func TestGroupRunFourMembers(t *testing.T) {
	ms := time.Millisecond
	jobs := []proto.JobSpec{
		{ID: 1, Stages: [4]time.Duration{2 * ms, 0, 0, 0}, Iterations: 10},
		{ID: 2, Stages: [4]time.Duration{0, 2 * ms, 0, 0}, Iterations: 10},
		{ID: 3, Stages: [4]time.Duration{0, 0, 2 * ms, 0}, Iterations: 10},
		{ID: 4, Stages: [4]time.Duration{0, 0, 0, 2 * ms}, Iterations: 10},
	}
	var done atomic.Int32
	g := NewGroupRun(jobs, 1.0, GroupEvents{JobDone: func(int64) { done.Add(1) }}, nil)
	start := time.Now()
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 4 {
		t.Fatalf("done = %d, want 4", done.Load())
	}
	// Four perfectly complementary jobs: each slot has exactly one busy
	// member (2ms), so 10 iterations ≈ 10×(4 slots ×2ms) = 80ms total,
	// versus 4×10×2ms = 80ms serial... but concurrent: all four run in
	// the same 80ms instead of sequentially (320ms).
	if wall := time.Since(start); wall > 300*time.Millisecond {
		t.Errorf("four-member group took %v, want well under serial 320ms", wall)
	}
}

func TestNewGroupRunValidation(t *testing.T) {
	cases := map[string]func(){
		"empty":     func() { NewGroupRun(nil, 1, GroupEvents{}, nil) },
		"oversized": func() { NewGroupRun(make([]proto.JobSpec, 5), 1, GroupEvents{}, nil) },
		"zeroScale": func() { NewGroupRun(twoJobs(1), 0, GroupEvents{}, nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProfileModel(t *testing.T) {
	// Profile at a coarse time scale: sleeps below the OS timer floor
	// (~1ms) measure as pure overhead and destroy stage ratios, which is
	// exactly why the server profiles coarser than it executes.
	res, err := ProfileModel(context.Background(), "gpt2", 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// GPU stage (85ms virtual) must dominate the measured profile.
	if res.Stages[2] < res.Stages[0] || res.Stages[2] < res.Stages[3] {
		t.Errorf("measured stages %v: GPU should dominate for gpt2", res.Stages)
	}
}

func TestProfileModelUnknown(t *testing.T) {
	if _, err := ProfileModel(context.Background(), "nosuch", 1, 1); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestProfileModelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileModel(ctx, "gpt2", 100, 1.0); err == nil {
		t.Error("cancelled profile returned nil error")
	}
}

// fakeScheduler drives an Agent over net.Pipe for integration testing.
type fakeScheduler struct {
	codec *proto.Codec
	recv  chan *proto.Message
}

func startAgentPair(t *testing.T, fault FaultFunc) (*fakeScheduler, context.CancelFunc) {
	t.Helper()
	schedConn, execConn := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	agent := &Agent{MachineID: "m0", GPUs: 8, Fault: fault, Logf: t.Logf}
	go func() { _ = agent.Serve(ctx, execConn) }()
	fs := &fakeScheduler{codec: proto.NewCodec(schedConn), recv: make(chan *proto.Message, 100)}
	go func() {
		for {
			m, err := fs.codec.Read()
			if err != nil {
				close(fs.recv)
				return
			}
			fs.recv <- m
		}
	}()
	return fs, func() { cancel(); schedConn.Close() }
}

func (fs *fakeScheduler) expect(t *testing.T, typ proto.Type, timeout time.Duration) *proto.Message {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case m, ok := <-fs.recv:
			if !ok {
				t.Fatalf("connection closed while waiting for %s", typ)
			}
			if m.Type == typ {
				return m
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", typ)
		}
	}
}

func TestAgentRegistersAndRunsGroup(t *testing.T) {
	fs, stop := startAgentPair(t, nil)
	defer stop()
	reg := fs.expect(t, proto.TypeRegister, 2*time.Second)
	if reg.Register.MachineID != "m0" || reg.Register.GPUs != 8 {
		t.Fatalf("register = %+v", reg.Register)
	}
	if err := fs.codec.Write(&proto.Message{Type: proto.TypeRegisterAck, RegisterAck: &proto.RegisterAck{OK: true}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.codec.Write(&proto.Message{Type: proto.TypeLaunch, Launch: &proto.Launch{
		GroupID: 1, GPUs: 1, Jobs: twoJobs(10), TimeScale: 1, ReportEvery: 10 * time.Millisecond,
	}}); err != nil {
		t.Fatal(err)
	}
	// Expect both completions and at least one progress report.
	doneSeen := map[int64]bool{}
	progressSeen := false
	deadline := time.After(5 * time.Second)
	for len(doneSeen) < 2 {
		select {
		case m, ok := <-fs.recv:
			if !ok {
				t.Fatal("connection closed early")
			}
			switch m.Type {
			case proto.TypeJobDone:
				doneSeen[m.JobDone.JobID] = true
			case proto.TypeProgress:
				progressSeen = true
			}
		case <-deadline:
			t.Fatalf("jobs did not finish: %v", doneSeen)
		}
	}
	if !progressSeen {
		t.Error("no progress report received")
	}
}

func TestAgentKillStopsGroup(t *testing.T) {
	fs, stop := startAgentPair(t, nil)
	defer stop()
	fs.expect(t, proto.TypeRegister, 2*time.Second)
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeRegisterAck, RegisterAck: &proto.RegisterAck{OK: true}})
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeLaunch, Launch: &proto.Launch{
		GroupID: 2, GPUs: 1, Jobs: twoJobs(1_000_000), TimeScale: 1, ReportEvery: 20 * time.Millisecond,
	}})
	fs.expect(t, proto.TypeProgress, 2*time.Second)
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeKill, Kill: &proto.Kill{GroupID: 2}})
	// After the kill, a final progress snapshot arrives and then reports
	// stop. Drain until quiet.
	final := fs.expect(t, proto.TypeProgress, 2*time.Second)
	if final.Progress.GroupID != 2 {
		t.Errorf("final progress group = %d, want 2", final.Progress.GroupID)
	}
}

func TestAgentProfileRequest(t *testing.T) {
	fs, stop := startAgentPair(t, nil)
	defer stop()
	fs.expect(t, proto.TypeRegister, 2*time.Second)
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeRegisterAck, RegisterAck: &proto.RegisterAck{OK: true}})
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeProfileReq, ProfileReq: &proto.ProfileReq{
		Model: "a2c", Iterations: 2, TimeScale: 0.05,
	}})
	m := fs.expect(t, proto.TypeProfiled, 3*time.Second)
	if m.Profiled.Model != "a2c" || m.Profiled.Err != "" {
		t.Fatalf("profiled = %+v", m.Profiled)
	}
	// CPU stage dominates A2C.
	if m.Profiled.Stages[1] < m.Profiled.Stages[2] {
		t.Errorf("profiled stages %v: CPU should dominate for a2c", m.Profiled.Stages)
	}
}

func TestAgentFaultPropagates(t *testing.T) {
	fault := func(jobID, iter int64) error {
		if jobID == 1 && iter >= 3 {
			return errors.New("boom")
		}
		return nil
	}
	fs, stop := startAgentPair(t, fault)
	defer stop()
	fs.expect(t, proto.TypeRegister, 2*time.Second)
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeRegisterAck, RegisterAck: &proto.RegisterAck{OK: true}})
	_ = fs.codec.Write(&proto.Message{Type: proto.TypeLaunch, Launch: &proto.Launch{
		GroupID: 3, GPUs: 1, Jobs: twoJobs(50), TimeScale: 1, ReportEvery: 10 * time.Millisecond,
	}})
	m := fs.expect(t, proto.TypeFault, 5*time.Second)
	if m.Fault.JobID != 1 || m.Fault.Error != "boom" {
		t.Errorf("fault = %+v", m.Fault)
	}
}
