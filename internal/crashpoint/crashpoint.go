// Package crashpoint is the crash-injection harness behind
// `murictl debug crash` and the durability tests: named points in the
// daemon's write path (mid-round, mid-fsync, mid-snapshot) call Hit, and
// an armed point panics the process there — the closest in-process
// approximation of `kill -9` at exactly that instruction. Points are
// armed over the wire only when murisched runs with -unsafe-debug; the
// package is a no-op otherwise (one atomic load per Hit).
package crashpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Well-known points in the daemon's durability path. Arbitrary names are
// allowed; these are the ones the harness documents and CI exercises.
const (
	// MidRound fires inside a scheduling round, after batched admission
	// was logged but before the engine reconciles.
	MidRound = "mid-round"
	// MidFsync fires inside the WAL writer, after buffered records were
	// written to the file but before fsync — the torn-tail window.
	MidFsync = "mid-fsync"
	// MidSnapshot fires inside the snapshot writer, after the temp file
	// was written but before the atomic rename publishing it.
	MidSnapshot = "mid-snapshot"
)

var (
	mu     sync.Mutex
	armed  map[string]bool
	nArmed atomic.Int32
	// handler replaces the default panic for tests that want to observe a
	// hit without dying. Nil means panic.
	handler func(point string)
)

// Arm schedules a panic at the next Hit of the named point.
func Arm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = make(map[string]bool)
	}
	if !armed[point] {
		armed[point] = true
		nArmed.Add(1)
	}
}

// Disarm cancels a pending crash at the named point.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if armed[point] {
		delete(armed, point)
		nArmed.Add(-1)
	}
}

// Reset disarms every point and restores the default panic handler
// (tests clean up with it).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	nArmed.Store(0)
	handler = nil
}

// SetHandler replaces the process-killing panic with fn for tests. A nil
// fn restores the default.
func SetHandler(fn func(point string)) {
	mu.Lock()
	defer mu.Unlock()
	handler = fn
}

// Hit crashes the process if point is armed; otherwise it is a cheap
// no-op (a single atomic load when nothing is armed anywhere).
func Hit(point string) {
	if nArmed.Load() == 0 {
		return
	}
	mu.Lock()
	hit := armed[point]
	if hit {
		delete(armed, point)
		nArmed.Add(-1)
	}
	fn := handler
	mu.Unlock()
	if !hit {
		return
	}
	if fn != nil {
		fn(point)
		return
	}
	panic(fmt.Sprintf("crashpoint: injected crash at %q", point))
}
