package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"muri/internal/job"
)

// CDF is an empirical cumulative distribution over durations, as used in
// scheduler papers to plot JCT distributions.
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds a CDF from (unsorted) samples.
func NewCDF(samples []time.Duration) CDF {
	s := append([]time.Duration{}, samples...)
	sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
	return CDF{sorted: s}
}

// JCTCDF builds the JCT distribution of completed jobs.
func JCTCDF(jobs []*job.Job) CDF {
	samples := make([]time.Duration, 0, len(jobs))
	for _, j := range jobs {
		samples = append(samples, j.JCT())
	}
	return NewCDF(samples)
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ d): the fraction of samples at or below d.
func (c CDF) At(d time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > d })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the p-quantile (0 < p ≤ 1) by nearest rank.
func (c CDF) Quantile(p float64) time.Duration {
	return Percentile(c.sorted, p)
}

// Points samples the CDF at n evenly spaced quantiles, suitable for
// plotting. It returns (duration, cumulative fraction) pairs.
func (c CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		out = append(out, [2]float64{c.Quantile(p).Seconds(), p})
	}
	return out
}

// String renders a compact textual summary (p50/p90/p99/max).
func (c CDF) String() string {
	if len(c.sorted) == 0 {
		return "CDF{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CDF{n=%d", len(c.sorted))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&b, " p%.0f=%v", p*100, c.Quantile(p).Round(time.Second))
	}
	fmt.Fprintf(&b, " max=%v}", c.sorted[len(c.sorted)-1].Round(time.Second))
	return b.String()
}
