package metrics

import (
	"math"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=4: +{3, 4}; +Inf: +{100}.
	want := []uint64{2, 4, 6, 7}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative has %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+3+4+100 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0.1, 1)
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Cumulative(); got[0] != 0 || got[1] != 1 {
		t.Errorf("cumulative = %v, want [0 1 1]", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in (1, 2]
	}
	q := h.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within owning bucket (1, 2]", q)
	}
	h2 := NewHistogram(1)
	h2.Observe(50) // above every bound: clamps to the largest bound
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want clamp to 1", got)
	}
}

// TestHistogramQuantileEdges pins the boundary semantics: p=0 and p=1
// return the exact edges of the lowest/highest nonempty bucket — no
// interpolation, no extrapolation past the observed buckets, and no
// float rounding below the upper bound at p=1.
func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	if h.Quantile(0) != 0 || h.Quantile(1) != 0 {
		t.Error("empty histogram edge quantiles should be 0")
	}
	for i := 0; i < 3; i++ {
		h.Observe(1.5) // (1, 2]
	}
	for i := 0; i < 7; i++ {
		h.Observe(3) // (2, 4]
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want exact lower edge 1 of the lowest nonempty bucket", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %v, want exact upper bound 4 of the highest nonempty bucket", got)
	}
	// Interior quantiles still interpolate strictly inside their bucket.
	if q := h.Quantile(0.999); q <= 2 || q > 4 {
		t.Errorf("p99.9 = %v, want within (2, 4]", q)
	}

	// Lowest bucket occupied: p0 is that bucket's lower edge, zero.
	lo := NewHistogram(1, 2)
	lo.Observe(0.5)
	if got := lo.Quantile(0); got != 0 {
		t.Errorf("p0 = %v, want 0 for the first bucket", got)
	}
	if got := lo.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want upper bound 1", got)
	}

	// Only the +Inf bucket occupied: both edges clamp to the largest
	// finite bound rather than extrapolating.
	inf := NewHistogram(1, 2)
	inf.Observe(50)
	if got := inf.Quantile(0); got != 2 {
		t.Errorf("overflow p0 = %v, want clamp to 2", got)
	}
	if got := inf.Quantile(1); got != 2 {
		t.Errorf("overflow p100 = %v, want clamp to 2", got)
	}

	for _, bad := range []float64{-0.01, 1.01, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", bad)
				}
			}()
			h.Quantile(bad)
		}()
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1, 2), NewHistogram(1, 2)
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d, want 3", a.Count())
	}
	if got := a.Cumulative(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("merged cumulative = %v", got)
	}
}

func TestHistogramDeterminism(t *testing.T) {
	mk := func() *Histogram {
		h := NewHistogram(ExponentialBounds(0.001, 2, 12)...)
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i%97) * 0.013)
		}
		return h
	}
	a, b := mk(), mk()
	ca, cb := a.Cumulative(), b.Cumulative()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("bucket %d diverged: %d vs %d", i, ca[i], cb[i])
		}
	}
	if a.Sum() != b.Sum() || a.Count() != b.Count() {
		t.Fatal("sum/count diverged across identical observation sequences")
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN observation was counted")
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}
