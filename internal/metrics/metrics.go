// Package metrics computes the evaluation metrics of the paper (§6.1):
// average JCT, makespan, tail (99th-percentile) JCT, queue length,
// blocking index, and per-resource utilization time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

// Summary aggregates the end-of-run metrics over a set of completed jobs.
type Summary struct {
	// Jobs is the number of completed jobs summarized.
	Jobs int
	// AvgJCT is the mean job completion time.
	AvgJCT time.Duration
	// Makespan is the latest finish time minus the earliest submit time.
	Makespan time.Duration
	// P99JCT is the 99th-percentile job completion time.
	P99JCT time.Duration
	// MedianJCT is the 50th-percentile job completion time.
	MedianJCT time.Duration
}

// Summarize computes the summary over jobs, all of which must be Done.
func Summarize(jobs []*job.Job) Summary {
	if len(jobs) == 0 {
		return Summary{}
	}
	jcts := make([]time.Duration, 0, len(jobs))
	// Mean accumulates quotient and remainder separately: a plain
	// time.Duration sum overflows int64 nanoseconds around 50k jobs of
	// multi-hundred-hour JCTs (2⁶³ ns ≈ 292 years total).
	n := time.Duration(len(jobs))
	var avg, rem time.Duration
	minSubmit := jobs[0].Submit
	var maxFinish time.Duration
	for _, j := range jobs {
		if j.State != job.Done {
			panic(fmt.Sprintf("metrics: job %d not done", j.ID))
		}
		jct := j.JCT()
		jcts = append(jcts, jct)
		avg += jct / n
		rem += jct % n
		if j.Submit < minSubmit {
			minSubmit = j.Submit
		}
		if j.FinishedAt > maxFinish {
			maxFinish = j.FinishedAt
		}
	}
	sort.Slice(jcts, func(i, k int) bool { return jcts[i] < jcts[k] })
	return Summary{
		Jobs:      len(jobs),
		AvgJCT:    avg + rem/n,
		Makespan:  maxFinish - minSubmit,
		P99JCT:    Percentile(jcts, 0.99),
		MedianJCT: Percentile(jcts, 0.50),
	}
}

// Percentile returns the p-quantile (0 < p ≤ 1) of sorted durations using
// the nearest-rank method. It panics on an empty slice or invalid p.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		panic("metrics: percentile of empty slice")
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("metrics: invalid percentile %v", p))
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Sample is one point of the detailed time series of Figure 8.
type Sample struct {
	// Time is the virtual timestamp of the sample.
	Time time.Duration
	// QueueLen is the number of pending jobs.
	QueueLen int
	// BlockingIndex is the mean ratio of pending time to remaining time
	// over pending jobs (§6.1: "showing the ability to avoid job
	// starvation").
	BlockingIndex float64
	// Util is the fraction of each resource type in use, averaged over
	// allocated GPUs' share of the cluster: Util[GPU] is GPU utilization,
	// Util[Storage] is storage-IO utilization, and so on.
	Util [workload.NumResources]float64
	// RunningJobs counts jobs currently holding resources.
	RunningJobs int
	// UsedGPUs counts allocated GPUs.
	UsedGPUs int
}

// Series is an ordered sequence of samples.
type Series []Sample

// Mean returns the average of f over the series.
func (s Series) Mean(f func(Sample) float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s {
		sum += f(x)
	}
	return sum / float64(len(s))
}

// MeanUtil returns the average utilization of resource r over the series.
func (s Series) MeanUtil(r workload.Resource) float64 {
	return s.Mean(func(x Sample) float64 { return x.Util[r] })
}

// MeanQueueLen returns the average queue length over the series.
func (s Series) MeanQueueLen() float64 {
	return s.Mean(func(x Sample) float64 { return float64(x.QueueLen) })
}

// MeanBlockingIndex returns the average blocking index over the series.
func (s Series) MeanBlockingIndex() float64 {
	return s.Mean(func(x Sample) float64 { return x.BlockingIndex })
}

// BlockingIndex computes the instantaneous blocking index at time now over
// the pending jobs: mean over pending jobs of pendingTime / remainingTime.
// Jobs with zero estimated remaining time contribute their pending time in
// hours, bounding the ratio without dividing by zero.
func BlockingIndex(pending []*job.Job, now time.Duration) float64 {
	if len(pending) == 0 {
		return 0
	}
	sum := 0.0
	for _, j := range pending {
		wait := now - j.Submit
		if wait < 0 {
			wait = 0
		}
		rem := j.RemainingTime()
		if rem <= 0 {
			sum += wait.Hours()
			continue
		}
		sum += float64(wait) / float64(rem)
	}
	return sum / float64(len(pending))
}

// Speedup returns baseline/x as a ratio of durations; it is how the paper
// reports "normalized JCT" (baseline normalized to Muri = 1).
func Speedup(baseline, x time.Duration) float64 {
	if x == 0 {
		return 0
	}
	return float64(baseline) / float64(x)
}

// CacheStats is a point-in-time snapshot of a memo cache's counters (the
// scheduling path's pair-efficiency cache reports through this type; see
// DESIGN.md "Performance architecture").
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that had to compute the value fresh.
	Misses uint64
	// Evictions counts entries discarded to honor the size bound.
	Evictions uint64
	// Entries is the number of entries currently resident.
	Entries int
}

// Lookups returns the total number of cache queries.
func (s CacheStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate returns Hits/Lookups, or 0 when the cache was never queried.
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// MatcherPoolStats counts traffic through the reusable Blossom-matcher
// pool (blossom.MatchPooled): how often the scheduling path matched, and
// how often it could reuse recycled solver state instead of allocating.
type MatcherPoolStats struct {
	// Gets counts pooled matching calls.
	Gets uint64
	// News counts calls that had to construct a fresh matcher (pool miss).
	News uint64
}

// Hits returns the calls served by recycled matcher state.
func (s MatcherPoolStats) Hits() uint64 {
	if s.News > s.Gets {
		return 0
	}
	return s.Gets - s.News
}

// HitRate returns Hits/Gets, or 0 when the pool was never used.
func (s MatcherPoolStats) HitRate() float64 {
	if s.Gets > 0 {
		return float64(s.Hits()) / float64(s.Gets)
	}
	return 0
}

// FaultStats aggregates failure-model activity over a run: the
// simulator fills it from its fault plan (sim.Result.Faults), and the
// scheduler daemon maintains the live-path equivalent, exported through
// the status API.
type FaultStats struct {
	// Crashes counts machine crash events applied.
	Crashes int
	// Repairs counts machine repair (or executor re-registration) events.
	Repairs int
	// Transient counts transient job faults injected.
	Transient int
	// Requeues counts job requeues caused by crashes or transient faults.
	Requeues int
	// DeadLettered counts jobs that exhausted their retry budget (live
	// path only; the simulator retries from checkpoint indefinitely).
	DeadLettered int
	// WorkLost is the partial-iteration progress discarded by faults
	// (jobs restart from their last whole-iteration checkpoint).
	WorkLost time.Duration
}

// Add accumulates o into s (for aggregating per-run stats).
func (s *FaultStats) Add(o FaultStats) {
	s.Crashes += o.Crashes
	s.Repairs += o.Repairs
	s.Transient += o.Transient
	s.Requeues += o.Requeues
	s.DeadLettered += o.DeadLettered
	s.WorkLost += o.WorkLost
}

// EngineStats counts the shared scheduling engine's activity (see
// DESIGN.md §8): both the simulator and the daemon drive the same
// decision core, and both surface these counters (sim.Result.Engine,
// the daemon's status API).
type EngineStats struct {
	// Rounds counts Reconcile invocations (scheduling rounds).
	Rounds int
	// Decisions counts decisions issued across the run (launches, kills,
	// requeues, deadletters).
	Decisions int
	// Launches counts units launched under a new key.
	Launches int
	// Preemptions counts units killed to reclaim capacity.
	Preemptions int
	// Requeues counts jobs pushed back to the queue (faults, lost
	// machines).
	Requeues int
	// DeadLettered counts jobs parked after exhausting their retry
	// budget.
	DeadLettered int
	// QueueDepth is the number of candidates left unplaced after the
	// most recent round (a gauge, not a counter).
	QueueDepth int
	// Reprofiles counts estimator re-seeds: completions whose measured
	// stage times deviated from the belief beyond the engine's
	// re-profiling threshold. Zero without an estimator.
	Reprofiles int
}

// HeapStats describes the simulator's completion-estimate min-heap (the
// event-driven clock; see DESIGN.md §6).
type HeapStats struct {
	// Size is the heap occupancy at snapshot time.
	Size int
	// Peak is the largest occupancy observed over the run.
	Peak int
	// Rebuilds counts full heapify passes (running-set membership changed).
	Rebuilds uint64
	// Fixes counts single-unit re-positionings after estimate invalidation.
	Fixes uint64
}

// ShardStats summarizes sharded and incremental grouping activity (see
// DESIGN.md §10): how many bucket-sweeps were served from the cross-round
// replay cache or the same-plan fixpoint shortcut versus matched fresh,
// how many per-shard matching tasks ran, and how the ID-keyed pair-stat
// cache performed.
type ShardStats struct {
	// Shards is the configured shard count (1 = unsharded).
	Shards int
	// PlanRounds counts grouping invocations observed by the plan state.
	PlanRounds uint64
	// ReplaySweeps counts bucket-sweeps replayed from the previous
	// round's recorded proposal stream (clean buckets).
	ReplaySweeps uint64
	// FixpointSweeps counts bucket-sweeps reused from the previous sweep
	// of the same plan (no merge accepted, so the bucket was unchanged).
	FixpointSweeps uint64
	// FreshSweeps counts bucket-sweeps that ran edge construction and
	// Blossom matching.
	FreshSweeps uint64
	// ShardTasks counts per-shard matching tasks executed (a fresh sweep
	// of a sharded bucket contributes its shard count).
	ShardTasks uint64
	// TasksByShard breaks ShardTasks down by shard index; the engine's
	// tracer renders one row per entry. Empty when sharding never engaged.
	TasksByShard []uint64
	// PairHits and PairMisses count lookups of the ID-keyed pair
	// statistics cache.
	PairHits, PairMisses uint64
	// PairEntries is the resident pair-cache entry count at snapshot time.
	PairEntries int
	// DirtyMarks counts decision-stream dirty notifications forwarded by
	// the engine (arrivals, completions, faults, preemptions).
	DirtyMarks uint64
}

// ReuseRatio is the fraction of bucket-sweeps that avoided fresh
// matching work.
func (s ShardStats) ReuseRatio() float64 {
	total := s.ReplaySweeps + s.FixpointSweeps + s.FreshSweeps
	if total == 0 {
		return 0
	}
	return float64(s.ReplaySweeps+s.FixpointSweeps) / float64(total)
}
