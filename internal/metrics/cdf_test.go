package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]time.Duration{4, 1, 3, 2}) // unsorted input
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{0, 0}, {1, 0.25}, {2, 0.5}, {3, 0.75}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.d); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(time.Second) != 0 || c.Len() != 0 {
		t.Error("empty CDF should report zero")
	}
	if c.Points(10) != nil {
		t.Error("empty CDF points should be nil")
	}
	if c.String() != "CDF{empty}" {
		t.Errorf("String = %q", c.String())
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Millisecond
		}
		c := NewCDF(samples)
		// At is monotone nondecreasing and bounded by [0,1].
		prev := 0.0
		for d := time.Duration(0); d < 70*time.Second; d += 5 * time.Second {
			v := c.At(d)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second})
	pts := c.Points(4)
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	if pts[3][1] != 1.0 || pts[3][0] != 4.0 {
		t.Errorf("last point = %v, want (4s, 1.0)", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Errorf("points not monotone: %v", pts)
		}
	}
}

func TestJCTCDF(t *testing.T) {
	m := workload.Model{Name: "toy", Stages: workload.StageTimes{0, 0, time.Millisecond, 0}}
	var jobs []*job.Job
	for i := 0; i < 10; i++ {
		j := job.New(job.ID(i), m, 1, 1, 0)
		j.State = job.Done
		j.FinishedAt = time.Duration(i+1) * time.Minute
		jobs = append(jobs, j)
	}
	c := JCTCDF(jobs)
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	if got := c.Quantile(0.5); got != 5*time.Minute {
		t.Errorf("median = %v, want 5m", got)
	}
	if s := c.String(); s == "" || s == "CDF{empty}" {
		t.Errorf("String = %q", s)
	}
}
