package metrics

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"muri/internal/job"
	"muri/internal/workload"
)

func doneJob(id int, submit, finish time.Duration) *job.Job {
	m := workload.Model{Name: "toy", Stages: workload.StageTimes{0, 0, time.Millisecond, 0}}
	j := job.New(job.ID(id), m, 1, 1, submit)
	j.State = job.Done
	j.FinishedAt = finish
	return j
}

func TestSummarizeBasics(t *testing.T) {
	jobs := []*job.Job{
		doneJob(0, 0, 10*time.Second),
		doneJob(1, 5*time.Second, 10*time.Second),
		doneJob(2, 0, 30*time.Second),
	}
	s := Summarize(jobs)
	if s.Jobs != 3 {
		t.Errorf("Jobs = %d, want 3", s.Jobs)
	}
	// JCTs: 10, 5, 30 → avg 15.
	if s.AvgJCT != 15*time.Second {
		t.Errorf("AvgJCT = %v, want 15s", s.AvgJCT)
	}
	if s.Makespan != 30*time.Second {
		t.Errorf("Makespan = %v, want 30s", s.Makespan)
	}
	if s.P99JCT != 30*time.Second {
		t.Errorf("P99JCT = %v, want 30s", s.P99JCT)
	}
	if s.MedianJCT != 10*time.Second {
		t.Errorf("MedianJCT = %v, want 10s", s.MedianJCT)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Jobs != 0 || s.AvgJCT != 0 {
		t.Errorf("empty summary = %+v, want zero", s)
	}
}

func TestSummarizePanicsOnRunningJob(t *testing.T) {
	j := doneJob(0, 0, time.Second)
	j.State = job.Running
	defer func() {
		if recover() == nil {
			t.Error("Summarize with running job should panic")
		}
	}()
	Summarize([]*job.Job{j})
}

func TestPercentileNearestRank(t *testing.T) {
	d := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.99, 10}, {0.50, 5}, {1.0, 10}, {0.10, 1}, {0.05, 1},
	}
	for _, c := range cases {
		if got := Percentile(d, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, c := range []struct {
		data []time.Duration
		p    float64
	}{
		{nil, 0.5}, {[]time.Duration{1}, 0}, {[]time.Duration{1}, 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v, %v) should panic", c.data, c.p)
				}
			}()
			Percentile(c.data, c.p)
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		d := make([]time.Duration, len(raw))
		for i, v := range raw {
			d[i] = time.Duration(v)
		}
		sort.Slice(d, func(i, k int) bool { return d[i] < d[k] })
		pa := float64(a%100+1) / 100
		pb := float64(b%100+1) / 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(d, pa) <= Percentile(d, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockingIndex(t *testing.T) {
	m := workload.Model{Name: "toy", Stages: workload.StageTimes{0, 0, time.Second, 0}}
	// Job submitted at t=0 with 10 iterations → 10s remaining.
	j := job.New(1, m, 1, 10, 0)
	got := BlockingIndex([]*job.Job{j}, 5*time.Second)
	if got != 0.5 {
		t.Errorf("BlockingIndex = %v, want 0.5 (waited 5s of 10s remaining)", got)
	}
	if BlockingIndex(nil, time.Second) != 0 {
		t.Error("empty blocking index should be 0")
	}
}

func TestBlockingIndexZeroRemaining(t *testing.T) {
	m := workload.Model{Name: "toy", Stages: workload.StageTimes{0, 0, time.Second, 0}}
	j := job.New(1, m, 1, 10, 0)
	j.DoneIterations = 10 // nothing left
	got := BlockingIndex([]*job.Job{j}, 2*time.Hour)
	if got != 2.0 {
		t.Errorf("BlockingIndex with zero remaining = %v, want wait in hours (2)", got)
	}
}

func TestBlockingIndexNegativeWaitClamped(t *testing.T) {
	m := workload.Model{Name: "toy", Stages: workload.StageTimes{0, 0, time.Second, 0}}
	j := job.New(1, m, 1, 10, 10*time.Second)
	if got := BlockingIndex([]*job.Job{j}, 5*time.Second); got != 0 {
		t.Errorf("BlockingIndex before submit = %v, want 0", got)
	}
}

func TestSeriesMeans(t *testing.T) {
	s := Series{
		{QueueLen: 2, BlockingIndex: 1.0, Util: [4]float64{0.5, 0, 1, 0}},
		{QueueLen: 4, BlockingIndex: 3.0, Util: [4]float64{0.7, 0, 0.5, 0}},
	}
	if got := s.MeanQueueLen(); got != 3 {
		t.Errorf("MeanQueueLen = %v, want 3", got)
	}
	if got := s.MeanBlockingIndex(); got != 2 {
		t.Errorf("MeanBlockingIndex = %v, want 2", got)
	}
	if got := s.MeanUtil(workload.Storage); got != 0.6 {
		t.Errorf("MeanUtil(storage) = %v, want 0.6", got)
	}
	if got := s.MeanUtil(workload.GPU); got != 0.75 {
		t.Errorf("MeanUtil(gpu) = %v, want 0.75", got)
	}
	var empty Series
	if empty.MeanQueueLen() != 0 {
		t.Error("empty series mean should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(20*time.Second, 10*time.Second); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Errorf("Speedup with zero denominator = %v, want 0", got)
	}
}
