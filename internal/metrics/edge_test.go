package metrics

import (
	"testing"
	"time"

	"muri/internal/job"
)

// Degenerate-input coverage: single-sample and all-equal distributions
// hit the rank-arithmetic boundaries of the nearest-rank quantile, and
// empty caches must report a 0 hit rate rather than dividing by zero.

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]*job.Job{doneJob(0, 2*time.Second, 9*time.Second)})
	if s.Jobs != 1 {
		t.Errorf("Jobs = %d, want 1", s.Jobs)
	}
	// With one sample every statistic collapses onto it.
	want := 7 * time.Second
	if s.AvgJCT != want || s.MedianJCT != want || s.P99JCT != want {
		t.Errorf("singleton summary = %+v, want all JCT stats %v", s, want)
	}
	if s.Makespan != want {
		t.Errorf("Makespan = %v, want %v", s.Makespan, want)
	}
}

func TestSummarizeAllEqual(t *testing.T) {
	var jobs []*job.Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, doneJob(i, 0, time.Minute))
	}
	s := Summarize(jobs)
	if s.AvgJCT != time.Minute || s.MedianJCT != time.Minute || s.P99JCT != time.Minute {
		t.Errorf("all-equal summary = %+v, want every JCT stat 1m", s)
	}
	if s.Makespan != time.Minute {
		t.Errorf("Makespan = %v, want 1m", s.Makespan)
	}
}

// TestCDFEmptyFromNilSamples complements TestCDFEmpty (zero value) by
// checking the constructed-from-nothing path behaves identically.
func TestCDFEmptyFromNilSamples(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	if got := c.At(time.Hour); got != 0 {
		t.Errorf("At on empty CDF = %v, want 0", got)
	}
	if pts := c.Points(10); pts != nil {
		t.Errorf("Points on empty CDF = %v, want nil", pts)
	}
	if s := c.String(); s != "CDF{empty}" {
		t.Errorf("String = %q", s)
	}
}

func TestCDFSingleton(t *testing.T) {
	c := NewCDF([]time.Duration{10 * time.Second})
	if got := c.At(9 * time.Second); got != 0 {
		t.Errorf("At(9s) = %v, want 0", got)
	}
	if got := c.At(10 * time.Second); got != 1 {
		t.Errorf("At(10s) = %v, want 1", got)
	}
	for _, p := range []float64{0.01, 0.5, 1.0} {
		if got := c.Quantile(p); got != 10*time.Second {
			t.Errorf("Quantile(%v) = %v, want 10s", p, got)
		}
	}
}

func TestCDFAllEqual(t *testing.T) {
	c := NewCDF([]time.Duration{time.Second, time.Second, time.Second, time.Second})
	if got := c.At(time.Second); got != 1 {
		t.Errorf("At(1s) = %v, want 1", got)
	}
	if got := c.At(time.Second - 1); got != 0 {
		t.Errorf("At(just below) = %v, want 0", got)
	}
	if got := c.Quantile(0.5); got != time.Second {
		t.Errorf("median = %v, want 1s", got)
	}
	// Every plotted point sits on the single value.
	for _, pt := range c.Points(4) {
		if pt[0] != 1.0 {
			t.Errorf("point %v, want duration 1s", pt)
		}
	}
}

func TestCacheHitRateZeroLookups(t *testing.T) {
	var s CacheStats
	if s.Lookups() != 0 {
		t.Errorf("Lookups = %d, want 0", s.Lookups())
	}
	if got := s.HitRate(); got != 0 {
		t.Errorf("HitRate with zero lookups = %v, want 0", got)
	}
}

func TestMatcherPoolHitRateZeroGets(t *testing.T) {
	var s MatcherPoolStats
	if got := s.HitRate(); got != 0 {
		t.Errorf("HitRate with zero gets = %v, want 0", got)
	}
	// News > Gets (snapshot torn between counters) must not underflow.
	s = MatcherPoolStats{Gets: 1, News: 2}
	if got := s.Hits(); got != 0 {
		t.Errorf("Hits with torn snapshot = %d, want 0", got)
	}
}
