package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram is a fixed-bucket cumulative histogram: values are counted
// into the first bucket whose upper bound is ≥ the observation, with an
// implicit +Inf bucket at the end. Buckets are fixed at construction, so
// two histograms observing the same sequence are bit-identical — the
// telemetry layer depends on that determinism (DESIGN.md §9). The zero
// value is unusable; construct with NewHistogram.
type Histogram struct {
	// bounds are the finite bucket upper bounds, strictly ascending.
	bounds []float64
	// counts[i] is the number of observations ≤ bounds[i]; the final
	// element counts observations above every finite bound (+Inf).
	counts []uint64
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given finite upper bounds,
// which must be strictly ascending and non-empty. A trailing +Inf bucket
// is implicit and must not be passed.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v after %v", b, bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// ExponentialBounds returns n strictly ascending bounds starting at
// start, each factor× the previous — the usual latency-bucket shape.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: exponential bounds need start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe counts one value. NaN observations are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration counts one duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the finite bucket upper bounds (callers must not
// mutate the slice).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns, for each finite bound plus the +Inf bucket, the
// number of observations at or below it (the Prometheus `le` semantics).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		out[i] = run
	}
	return out
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// within the owning bucket; observations above every finite bound clamp
// to the largest bound. The domain endpoints are exact bucket edges,
// never interpolations: p=0 returns the lower edge of the lowest
// nonempty bucket and p=1 the upper bound of the highest nonempty one,
// so extreme quantiles cannot extrapolate past the observed buckets or
// pick up float rounding. It returns 0 on an empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("metrics: invalid quantile %v", p))
	}
	if h.count == 0 {
		return 0
	}
	if p == 0 {
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			if i == 0 {
				return 0
			}
			return h.bounds[i-1]
		}
	}
	if p == 1 {
		for i := len(h.counts) - 1; i >= 0; i-- {
			if h.counts[i] == 0 {
				continue
			}
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			return h.bounds[i]
		}
	}
	rank := p * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge adds o's observations into h. The bucket layouts must match.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("metrics: merging histograms with different bucket layouts")
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			panic("metrics: merging histograms with different bucket layouts")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	h.count += o.count
}

// String renders a compact summary for logs and tables.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "Histogram{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Histogram{n=%d sum=%.4g", h.count, h.sum)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&b, " p%.0f=%.4g", p*100, h.Quantile(p))
	}
	b.WriteByte('}')
	return b.String()
}
