package proto

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// readWriter adapts a reader to the codec's io.ReadWriter (writes are
// never used by the fuzz target).
type readWriter struct{ *bytes.Reader }

func (readWriter) Write(p []byte) (int, error) { return len(p), nil }

// FuzzCodecRead feeds arbitrary bytes to the framed decoder: it must
// return an error or a well-formed message, never panic, and never
// allocate unbounded memory for a hostile length prefix.
func FuzzCodecRead(f *testing.F) {
	// Seed with valid frames (including the submit-stream and batch
	// messages of the ingest path) and a few corruptions.
	var buf bytes.Buffer
	c := NewCodec(&buf)
	_ = c.Write(&Message{Type: TypeRegister, Register: &Register{MachineID: "m", GPUs: 8}})
	valid := buf.Bytes()
	f.Add(valid)
	var ingestBuf bytes.Buffer
	ic := NewCodec(&ingestBuf)
	_ = ic.Write(&Message{Type: TypeSubmit, Submit: &Submit{Seq: 7,
		Job: JobSpec{Model: "gpt2", GPUs: 1, Iterations: 10, Tenant: "t"}}})
	_ = ic.Write(&Message{Type: TypeSubmitAck, SubmitAck: &SubmitAck{
		Seq: 7, Err: "queue full", Code: CodeQueueFull, Retryable: true}})
	_ = ic.Write(&Message{Type: TypeSubmitBatch, SubmitBatch: &SubmitBatch{
		Jobs: []JobSpec{{Model: "bert", GPUs: 2, Iterations: 5}, {Model: "a2c", GPUs: 1, Iterations: 1}}}})
	_ = ic.Write(&Message{Type: TypeSubmitBatchAck, SubmitBatchAck: &SubmitBatchAck{
		Results: []SubmitResult{{ID: 1}, {Code: CodeThrottled, Retryable: true}}}})
	f.Add(ingestBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	truncated := append([]byte{}, valid[:len(valid)-3]...)
	f.Add(truncated)
	corrupted := append([]byte{}, valid...)
	corrupted[6] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(readWriter{bytes.NewReader(data)})
		for i := 0; i < 4; i++ { // a few frames per input
			m, err := c.Read()
			if err != nil {
				return
			}
			if m.Type == "" {
				t.Fatal("decoded message without type")
			}
		}
	})
}

// FuzzSubmitBatchRoundTrip builds a SubmitBatch from arbitrary field
// values, frames it, and decodes it back: the ingest-path messages must
// survive the codec bit-exactly for any spec contents.
func FuzzSubmitBatchRoundTrip(f *testing.F) {
	f.Add("gpt2", "tenant-a", int64(100), 2, uint8(3))
	f.Add("", "", int64(-1), -4, uint8(0))
	f.Add("model with spaces\x00and bytes", "\xff\xfe", int64(1<<62), 1<<30, uint8(9))
	f.Fuzz(func(t *testing.T, model, tenant string, iters int64, gpus int, n uint8) {
		jobs := make([]JobSpec, int(n%8))
		for i := range jobs {
			jobs[i] = JobSpec{
				ID:         int64(i),
				Model:      model,
				Tenant:     tenant,
				Iterations: iters,
				GPUs:       gpus,
				Stages:     [4]time.Duration{1, 2, 3, time.Duration(iters)},
			}
		}
		msgs := []*Message{
			{Type: TypeSubmitBatch, SubmitBatch: &SubmitBatch{Jobs: jobs}},
			{Type: TypeSubmit, Submit: &Submit{Job: JobSpec{Model: model, Tenant: tenant}, Seq: uint64(n)}},
			{Type: TypeSubmitAck, SubmitAck: &SubmitAck{ID: iters, Seq: uint64(n), Code: CodeQueueFull, Retryable: true}},
		}
		var buf bytes.Buffer
		c := NewCodec(&buf)
		for _, m := range msgs {
			if err := c.Write(m); err != nil {
				// Only invalid UTF-8 can fail JSON marshalling; decode
				// must still never see a torn frame.
				return
			}
		}
		got, err := c.Read()
		if err != nil {
			t.Fatalf("read back batch: %v", err)
		}
		if got.Type != TypeSubmitBatch || got.SubmitBatch == nil {
			t.Fatalf("round trip type = %s", got.Type)
		}
		if len(got.SubmitBatch.Jobs) != len(jobs) {
			t.Fatalf("round trip kept %d jobs, want %d", len(got.SubmitBatch.Jobs), len(jobs))
		}
		for i, j := range got.SubmitBatch.Jobs {
			if j.Iterations != jobs[i].Iterations || j.GPUs != jobs[i].GPUs || j.Stages != jobs[i].Stages {
				t.Fatalf("job %d mutated: %+v != %+v", i, j, jobs[i])
			}
		}
	})
}

// FuzzHTTPSubmitJSON feeds arbitrary bytes to the HTTP ingest bodies:
// decoding must never panic, and anything that decodes must re-encode.
func FuzzHTTPSubmitJSON(f *testing.F) {
	f.Add([]byte(`{"job":{"model":"gpt2","gpus":1,"iterations":10}}`))
	f.Add([]byte(`{"jobs":[{"model":"bert"},{"model":"a2c","tenant":"t"}]}`))
	f.Add([]byte(`{"jobs":null}`))
	f.Add([]byte(`{"job":{"stages":[1,2,3]}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var single HTTPSubmitRequest
		if err := json.Unmarshal(data, &single); err == nil {
			if _, err := json.Marshal(single); err != nil {
				t.Fatalf("re-encode single: %v", err)
			}
		}
		var batch HTTPBatchRequest
		if err := json.Unmarshal(data, &batch); err == nil {
			if _, err := json.Marshal(batch); err != nil {
				t.Fatalf("re-encode batch: %v", err)
			}
		}
		var resp HTTPBatchResponse
		if err := json.Unmarshal(data, &resp); err == nil {
			if _, err := json.Marshal(resp); err != nil {
				t.Fatalf("re-encode response: %v", err)
			}
		}
	})
}
