package proto

import (
	"bytes"
	"testing"
)

// readWriter adapts a reader to the codec's io.ReadWriter (writes are
// never used by the fuzz target).
type readWriter struct{ *bytes.Reader }

func (readWriter) Write(p []byte) (int, error) { return len(p), nil }

// FuzzCodecRead feeds arbitrary bytes to the framed decoder: it must
// return an error or a well-formed message, never panic, and never
// allocate unbounded memory for a hostile length prefix.
func FuzzCodecRead(f *testing.F) {
	// Seed with a valid frame and a few corruptions of it.
	var buf bytes.Buffer
	c := NewCodec(&buf)
	_ = c.Write(&Message{Type: TypeRegister, Register: &Register{MachineID: "m", GPUs: 8}})
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	truncated := append([]byte{}, valid[:len(valid)-3]...)
	f.Add(truncated)
	corrupted := append([]byte{}, valid...)
	corrupted[6] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(readWriter{bytes.NewReader(data)})
		for i := 0; i < 4; i++ { // a few frames per input
			m, err := c.Read()
			if err != nil {
				return
			}
			if m.Type == "" {
				t.Fatal("decoded message without type")
			}
		}
	})
}
