package proto

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []*Message{
		{Type: TypeRegister, Register: &Register{MachineID: "m0", GPUs: 8}},
		{Type: TypeRegisterAck, RegisterAck: &RegisterAck{OK: true}},
		{Type: TypeLaunch, Launch: &Launch{
			GroupID: 7, GPUs: 2, TimeScale: 0.001, ReportEvery: time.Second,
			Jobs: []JobSpec{{ID: 1, Model: "gpt2", Stages: [4]time.Duration{1, 2, 3, 4}, Iterations: 100, GPUs: 2}},
		}},
		{Type: TypeKill, Kill: &Kill{GroupID: 7}},
		{Type: TypeProgress, Progress: &Progress{GroupID: 7, Jobs: []JobProgress{{ID: 1, DoneIterations: 42}}}},
		{Type: TypeJobDone, JobDone: &JobDone{GroupID: 7, JobID: 1}},
		{Type: TypeFault, Fault: &Fault{GroupID: 7, JobID: 1, Error: "cuda oom"}},
		{Type: TypeProfileReq, ProfileReq: &ProfileReq{Model: "bert", Iterations: 20, TimeScale: 0.001}},
		{Type: TypeProfiled, Profiled: &Profiled{Model: "bert", Stages: [4]time.Duration{1, 2, 3, 4}}},
		{Type: TypeSubmit, Submit: &Submit{Job: JobSpec{ID: 9, Model: "a2c", Tenant: "team-a"}, Seq: 3}},
		{Type: TypeSubmitAck, SubmitAck: &SubmitAck{ID: 9, Seq: 3}},
		{Type: TypeSubmitAck, SubmitAck: &SubmitAck{Err: "queue full", Code: CodeQueueFull, Retryable: true}},
		{Type: TypeSubmitBatch, SubmitBatch: &SubmitBatch{Jobs: []JobSpec{
			{Model: "gpt2", GPUs: 1, Iterations: 10},
			{Model: "bert", GPUs: 2, Iterations: 20, Tenant: "team-b"},
		}}},
		{Type: TypeSubmitBatchAck, SubmitBatchAck: &SubmitBatchAck{Results: []SubmitResult{
			{ID: 10},
			{Err: "over rate", Code: CodeThrottled, Retryable: true},
		}}},
		{Type: TypeStatus, Status: &Status{}},
		{Type: TypeStatusAck, StatusAck: &StatusAck{Pending: 1, Running: 2, Done: 3}},
		{Type: TypeTrace, Trace: &TraceReq{}},
		{Type: TypeTraceAck, TraceAck: &TraceAck{Trace: []byte(`{"traceEvents":[]}`)}},
	}
	var buf bytes.Buffer
	c := NewCodec(&buf)
	for _, m := range msgs {
		if err := c.Write(m); err != nil {
			t.Fatalf("write %s: %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := c.Read()
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type {
			t.Fatalf("type = %s, want %s", got.Type, want.Type)
		}
	}
}

func TestLaunchFieldsSurvive(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	in := &Message{Type: TypeLaunch, Launch: &Launch{
		GroupID: 3, GPUs: 4, TimeScale: 0.5, ReportEvery: 2 * time.Second,
		Jobs: []JobSpec{
			{ID: 10, Model: "vgg16", Stages: [4]time.Duration{22, 4, 24, 38}, Iterations: 1000, DoneIterations: 17, GPUs: 4},
			{ID: 11, Model: "gpt2", Stages: [4]time.Duration{1, 1, 85, 28}, Iterations: 2000, GPUs: 4},
		},
	}}
	if err := c.Write(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if out.Launch == nil {
		t.Fatal("launch payload missing")
	}
	if len(out.Launch.Jobs) != 2 || out.Launch.Jobs[0].DoneIterations != 17 {
		t.Errorf("launch payload corrupted: %+v", out.Launch)
	}
	if out.Launch.TimeScale != 0.5 {
		t.Errorf("time scale = %v, want 0.5", out.Launch.TimeScale)
	}
}

func TestTracePayloadOpaque(t *testing.T) {
	// The trace payload is raw JSON that must survive framing untouched:
	// murictl writes it to disk verbatim for Perfetto.
	raw := []byte(`{"traceEvents":[{"name":"round 1","ph":"i","ts":12.5}],"displayTimeUnit":"ms"}`)
	var buf bytes.Buffer
	c := NewCodec(&buf)
	if err := c.Write(&Message{Type: TypeTraceAck, TraceAck: &TraceAck{Trace: raw}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceAck == nil || !bytes.Equal(out.TraceAck.Trace, raw) {
		t.Errorf("trace payload mutated in flight: %s", out.TraceAck.Trace)
	}
}

func TestReadEOFOnClose(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	if _, err := c.Read(); err != io.EOF {
		t.Errorf("Read on empty stream = %v, want io.EOF", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	buf.Write(hdr[:])
	c := NewCodec(&buf)
	if _, err := c.Read(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{\"type\":\"status\"}") // shorter than declared
	c := NewCodec(&buf)
	if _, err := c.Read(); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestGarbageBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	body := []byte("not json at all!")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewCodec(&buf)
	if _, err := c.Read(); err == nil {
		t.Error("garbage body accepted")
	}
}

func TestMissingTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{}")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewCodec(&buf)
	if _, err := c.Read(); err == nil {
		t.Error("typeless message accepted")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Message, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		m, err := NewCodec(conn).Read()
		if err != nil {
			done <- nil
			return
		}
		done <- m
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewCodec(conn)
	if err := c.Write(&Message{Type: TypeRegister, Register: &Register{MachineID: "m1", GPUs: 8}}); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil || got.Type != TypeRegister || got.Register.MachineID != "m1" {
		t.Errorf("TCP round trip failed: %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(machine string, gpus uint8, groupID int64, done int64) bool {
		var buf bytes.Buffer
		c := NewCodec(&buf)
		in := &Message{Type: TypeProgress, Progress: &Progress{
			GroupID: groupID,
			Jobs:    []JobProgress{{ID: 1, DoneIterations: done}},
			Extra:   map[string]any{"machine": machine, "gpus": float64(gpus)},
		}}
		if err := c.Write(in); err != nil {
			return false
		}
		out, err := c.Read()
		if err != nil || out.Progress == nil {
			return false
		}
		return out.Progress.GroupID == groupID && out.Progress.Jobs[0].DoneIterations == done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestManySequentialFrames(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := c.Write(&Message{Type: TypeJobDone, JobDone: &JobDone{GroupID: int64(i), JobID: int64(i * 2)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := c.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.JobDone.GroupID != int64(i) {
			t.Fatalf("frame %d: group %d", i, m.JobDone.GroupID)
		}
	}
}
