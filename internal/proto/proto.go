// Package proto defines the wire protocol between the Muri scheduler and
// its executors (paper Figure 3 and §5), plus the client API used to
// submit jobs. Messages are JSON values framed with a 4-byte big-endian
// length prefix over a TCP (or any stream) connection.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// MaxMessageSize bounds a single frame; anything larger is rejected to
// protect against corrupt length prefixes.
const MaxMessageSize = 16 << 20

// Type enumerates the message kinds.
type Type string

const (
	// Executor → scheduler.
	TypeRegister  Type = "register"  // executor announces itself
	TypeProgress  Type = "progress"  // periodic per-group progress report
	TypeJobDone   Type = "job_done"  // one group member finished
	TypeFault     Type = "fault"     // a job failed; push it back to the queue
	TypeProfiled  Type = "profiled"  // dry-run profiling result
	TypeHeartbeat Type = "heartbeat" // liveness signal from an idle executor

	// Scheduler → executor.
	TypeRegisterAck Type = "register_ack"
	TypeLaunch      Type = "launch"  // start an interleaving group
	TypeKill        Type = "kill"    // stop a group (preemption)
	TypeProfileReq  Type = "profile" // dry-run a model and report stages

	// Client → scheduler.
	TypeSubmit         Type = "submit"
	TypeSubmitAck      Type = "submit_ack"
	TypeSubmitBatch    Type = "submit_batch"     // many jobs in one frame
	TypeSubmitBatchAck Type = "submit_batch_ack" // per-job results, in order
	TypeStatus         Type = "status"
	TypeStatusAck      Type = "status_ack"
	TypeInjectFault    Type = "inject_fault"     // chaos: fail a job or machine
	TypeInjectFaultAck Type = "inject_fault_ack" // result of the injection
	TypeTrace          Type = "trace"            // snapshot the daemon's trace ring
	TypeTraceAck       Type = "trace_ack"        // Chrome trace-event JSON payload
	TypeExplain        Type = "explain"          // ask why a job waited: lifecycle spans + attribution
	TypeExplainAck     Type = "explain_ack"      // rendered explanation text
	TypeDebugCrash     Type = "debug_crash"      // arm a crash-injection point (-unsafe-debug only)
	TypeDebugCrashAck  Type = "debug_crash_ack"

	// Standby ↔ leader WAL replication (durability layer).
	TypeReplSubscribe Type = "repl_subscribe" // standby asks to follow the leader's WAL
	TypeReplSnapshot  Type = "wal_snapshot"   // leader seeds the standby with a full snapshot
	TypeWALAppend     Type = "wal_append"     // leader streams raw WAL frames (empty = lease heartbeat)
	TypeWALAppendAck  Type = "wal_append_ack" // standby acks applied LSN (or rejects a stale term)
)

// JobSpec describes one job inside a Launch message or a Submit request.
type JobSpec struct {
	// ID is the scheduler-assigned job identity.
	ID int64 `json:"id"`
	// Model is the zoo model name the job trains.
	Model string `json:"model"`
	// Stages is the per-iteration stage duration vector (storage, cpu,
	// gpu, network).
	Stages [4]time.Duration `json:"stages"`
	// Iterations is the total iteration count; DoneIterations is the
	// progress at launch (restart from checkpoint).
	Iterations     int64 `json:"iterations"`
	DoneIterations int64 `json:"done_iterations"`
	// GPUs is the job's GPU requirement.
	GPUs int `json:"gpus"`
	// Tenant names the submitting principal for per-tenant admission
	// rate limiting. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// Register announces an executor and its machine inventory.
type Register struct {
	MachineID string `json:"machine_id"`
	GPUs      int    `json:"gpus"`
	// Groups lists groups still running on this machine from a previous
	// registration (the scheduler restarted or failed over while the
	// executor kept its processes alive). The scheduler adopts the ones
	// it still recognizes and kills the rest.
	Groups []RunningGroup `json:"groups,omitempty"`
	// SeenTerm is the highest election term this executor has seen from
	// any scheduler; a leader receiving a higher term fences itself.
	SeenTerm uint64 `json:"seen_term,omitempty"`
}

// RunningGroup describes one group an executor kept alive across a
// scheduler restart, carried in Register for adoption.
type RunningGroup struct {
	GroupID int64        `json:"group_id"`
	Key     string       `json:"key"`
	GPUs    int          `json:"gpus"`
	Jobs    []RunningJob `json:"jobs"`
}

// RunningJob is one member of a surviving group with its live progress.
type RunningJob struct {
	ID             int64 `json:"id"`
	DoneIterations int64 `json:"done_iterations"`
}

// RegisterAck confirms registration.
type RegisterAck struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	// LeaseTTL is the scheduler's liveness lease: the executor must send
	// some message (heartbeats suffice) within every TTL window or be
	// evicted and have its groups requeued. Zero means no lease.
	LeaseTTL time.Duration `json:"lease_ttl,omitempty"`
	// Term is the scheduler's current election term; executors carry the
	// highest term they have seen into future registrations (fencing).
	Term uint64 `json:"term,omitempty"`
	// AdoptedGroups lists the group IDs from Register.Groups the
	// scheduler adopted; the executor kills the rest locally.
	AdoptedGroups []int64 `json:"adopted_groups,omitempty"`
}

// Launch instructs an executor to run an interleaving group.
type Launch struct {
	// GroupID identifies the group for Kill/Progress correlation.
	GroupID int64 `json:"group_id"`
	// Key is the unit's canonical scheduling key, echoed back in
	// Register.Groups so a restarted scheduler can adopt the group.
	Key string `json:"key,omitempty"`
	// GPUs is the number of GPUs the group occupies on the machine.
	GPUs int `json:"gpus"`
	// Jobs lists the members in stage-offset order: Jobs[i] starts at
	// stage offset i (paper §4.1).
	Jobs []JobSpec `json:"jobs"`
	// TimeScale compresses virtual stage durations into wall time: a
	// stage of duration d sleeps d×TimeScale. 1.0 runs in real time.
	TimeScale float64 `json:"time_scale"`
	// ReportEvery is how often the executor sends Progress.
	ReportEvery time.Duration `json:"report_every"`
}

// Kill stops a group; jobs report their progress before stopping.
type Kill struct {
	GroupID int64 `json:"group_id"`
}

// Progress reports per-job progress of a running group.
type Progress struct {
	GroupID int64          `json:"group_id"`
	Jobs    []JobProgress  `json:"jobs"`
	Util    [4]float64     `json:"util"` // observed busy fraction per resource
	Extra   map[string]any `json:"extra,omitempty"`
}

// JobProgress is one member's progress snapshot.
type JobProgress struct {
	ID             int64         `json:"id"`
	DoneIterations int64         `json:"done_iterations"`
	AvgIterTime    time.Duration `json:"avg_iter_time"`
}

// JobDone reports the completion of one member.
type JobDone struct {
	GroupID int64 `json:"group_id"`
	JobID   int64 `json:"job_id"`
}

// Fault reports a failed job; the scheduler pushes it back to the queue
// (§5: "the related DL job will be pushed back to the job queue").
type Fault struct {
	GroupID int64  `json:"group_id"`
	JobID   int64  `json:"job_id"`
	Error   string `json:"error"`
	// Machine names the executor the fault originated on, so the
	// scheduler's fault log can attribute it.
	Machine string `json:"machine,omitempty"`
}

// Heartbeat keeps an executor's registration alive. The worker monitor
// evicts executors that stay silent past its liveness timeout — TCP
// alone cannot distinguish a hung machine from an idle one.
type Heartbeat struct {
	MachineID string `json:"machine_id"`
	// RunningGroups lets the monitor cross-check its view.
	RunningGroups int `json:"running_groups"`
}

// ProfileReq asks an executor to dry-run a model for a few iterations.
type ProfileReq struct {
	Model      string  `json:"model"`
	Iterations int     `json:"iterations"`
	TimeScale  float64 `json:"time_scale"`
}

// Profiled returns measured stage durations (virtual time).
type Profiled struct {
	Model  string           `json:"model"`
	Stages [4]time.Duration `json:"stages"`
	Err    string           `json:"err,omitempty"`
}

// Submit is a client request to enqueue a job.
type Submit struct {
	Job JobSpec `json:"job"`
	// Seq is an optional client-chosen sequence number echoed in the
	// ack, so pipelined streams can correlate acks with requests.
	Seq uint64 `json:"seq,omitempty"`
}

// Admission reject codes carried in SubmitAck.Code / SubmitResult.Code.
// Retryable codes mean the request was well-formed and may be resubmitted
// after backing off; non-retryable codes mean the spec itself is bad.
const (
	CodeInvalid   = "invalid"    // malformed spec (unknown model, bad counts)
	CodeQueueFull = "queue_full" // admission queue at capacity; retry later
	CodeThrottled = "throttled"  // tenant over its token-bucket rate; retry later
	CodeDraining  = "draining"   // scheduler shutting down; retry elsewhere
	CodeNotLeader = "not_leader" // standby or fenced daemon; submit to the leader
)

// SubmitAck confirms a submission and returns the assigned ID.
type SubmitAck struct {
	ID  int64  `json:"id"`
	Err string `json:"err,omitempty"`
	// Seq echoes the request's sequence number for pipelined streams.
	Seq uint64 `json:"seq,omitempty"`
	// Code classifies a rejection (one of the Code* constants);
	// Retryable reports whether resubmitting later can succeed.
	Code      string `json:"code,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// SubmitBatch enqueues many jobs in one frame: arrivals within one
// scheduling interval cost one admission round, not N (batched ingest).
type SubmitBatch struct {
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResult is one job's admission outcome inside a batch ack (and
// the HTTP batch response). Results are in request order.
type SubmitResult struct {
	ID        int64  `json:"id,omitempty"`
	Err       string `json:"err,omitempty"`
	Code      string `json:"code,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// SubmitBatchAck carries per-job results for a SubmitBatch, in order.
type SubmitBatchAck struct {
	Results []SubmitResult `json:"results"`
}

// HTTPSubmitRequest is the JSON body of POST /api/v1/submit.
type HTTPSubmitRequest struct {
	Job JobSpec `json:"job"`
}

// HTTPBatchRequest is the JSON body of POST /api/v1/submit/batch.
type HTTPBatchRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// HTTPBatchResponse is the JSON body answering a batch submission.
type HTTPBatchResponse struct {
	Results []SubmitResult `json:"results"`
}

// ReplSubscribe is a standby's request to follow the leader's WAL. The
// leader answers with one ReplSnapshot, then a stream of WALAppend
// frames. A Term above the leader's own fences the leader.
type ReplSubscribe struct {
	StandbyID string `json:"standby_id"`
	Term      uint64 `json:"term,omitempty"`
}

// ReplSnapshot seeds a standby with the leader's latest snapshot: the
// raw framed wal.Snapshot bytes, installed verbatim so the replica WAL
// stays byte-identical to the leader's. Empty Snapshot means the leader
// has no snapshot yet (fresh log); replication starts from LSN 1.
type ReplSnapshot struct {
	Snapshot []byte `json:"snapshot,omitempty"`
	LSN      uint64 `json:"lsn"`
	Term     uint64 `json:"term"`
}

// WALFrame is one raw WAL record frame (header + payload, the exact
// bytes on the leader's disk).
type WALFrame struct {
	LSN  uint64 `json:"lsn"`
	Data []byte `json:"data"`
}

// WALAppend streams WAL frames to a standby. An empty Records slice is
// a lease heartbeat: it renews the leader's lease without moving the
// log.
type WALAppend struct {
	Term    uint64     `json:"term"`
	Records []WALFrame `json:"records,omitempty"`
}

// WALAppendAck reports the standby's applied position. OK=false with a
// higher Term is the fencing signal: the sender is a deposed leader and
// must stop writing.
type WALAppendAck struct {
	OK      bool   `json:"ok"`
	LastLSN uint64 `json:"last_lsn"`
	Term    uint64 `json:"term"`
}

// DebugCrash arms a crash-injection point in the daemon (only honored
// under -unsafe-debug): the daemon panics at the next hit of the named
// point (mid-round, mid-fsync, mid-snapshot).
type DebugCrash struct {
	Point string `json:"point"`
}

// DebugCrashAck confirms the point was armed.
type DebugCrashAck struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// Status asks for the scheduler's current state.
type Status struct{}

// StatusAck summarizes the scheduler state.
type StatusAck struct {
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Executors int `json:"executors"`
	// DeadLetter counts jobs parked after exhausting their retry budget.
	DeadLetter int                `json:"dead_letter,omitempty"`
	Faults     *FaultSummary      `json:"faults,omitempty"`
	Engine     *EngineSummary     `json:"engine,omitempty"`
	Ingest     *IngestSummary     `json:"ingest,omitempty"`
	Durability *DurabilitySummary `json:"durability,omitempty"`
	Predictor  *PredictorSummary  `json:"predictor,omitempty"`
	Jobs       []JobStatus        `json:"jobs,omitempty"`
	Extra      map[string]any     `json:"extra,omitempty"`
}

// PredictorSummary mirrors the online duration estimator's state on the
// wire (kept separate from internal profile types so proto stays
// dependency-free): how many models it tracks, how many completions it
// has folded in, how often deviating completions re-seeded a belief,
// and its running prediction-error score.
type PredictorSummary struct {
	// Models is the number of distinct model names with a learned belief.
	Models int `json:"models"`
	// Samples is the total completions retained across models (re-seeds
	// reset a model's count, so this can trail lifetime completions).
	Samples int `json:"samples"`
	// Completions is the lifetime completion count (the Gittins service
	// history length).
	Completions int `json:"completions,omitempty"`
	// Reseeds counts beliefs discarded and re-seeded after a deviating
	// completion (the engine's re-profiling trigger).
	Reseeds int `json:"reseeds,omitempty"`
	// MeanAbsErr is the mean absolute relative error of pre-completion
	// predictions against measured totals; ErrSamples is how many
	// completions were scored (only repeat models score).
	MeanAbsErr float64 `json:"mean_abs_err,omitempty"`
	ErrSamples int     `json:"err_samples,omitempty"`
}

// DurabilitySummary mirrors the durability layer's state on the wire:
// role and term of the election state machine, the WAL append position,
// snapshot freshness, and standby replication lag. Present only when
// the daemon runs with a state dir.
type DurabilitySummary struct {
	// Role is one of "solo", "leader", "standby", "fenced".
	Role string `json:"role"`
	Term uint64 `json:"term"`
	// WALSegment is the active segment's first LSN; WALOffset the byte
	// offset within it; WALLSN the last appended record.
	WALSegment uint64 `json:"wal_segment"`
	WALOffset  int64  `json:"wal_offset"`
	WALLSN     uint64 `json:"wal_lsn"`
	// SnapshotLSN is the latest snapshot's covered LSN (0 if none);
	// SnapshotAge is how long ago it was taken.
	SnapshotLSN uint64        `json:"snapshot_lsn,omitempty"`
	SnapshotAge time.Duration `json:"snapshot_age,omitempty"`
	// Standbys counts attached replication subscribers (leader side);
	// ReplLag is the leader's max records-behind across them, or — on a
	// standby — this replica's records behind the leader stream.
	Standbys int    `json:"standbys,omitempty"`
	ReplLag  uint64 `json:"repl_lag,omitempty"`
	// FsyncEvery is the configured fsync batch size; Appends and Fsyncs
	// are lifetime WAL counters.
	FsyncEvery int    `json:"fsync_every,omitempty"`
	Appends    uint64 `json:"appends"`
	Fsyncs     uint64 `json:"fsyncs"`
}

// IngestSummary mirrors the admission front door's counters on the wire:
// queue depth, accept/reject/throttle totals, and how many batched drain
// rounds admitted the accepted jobs (accepted/batches is the average
// admission batch size — the per-job-wakeup collapse factor).
type IngestSummary struct {
	QueueDepth int `json:"queue_depth"`
	Accepted   int `json:"accepted"`
	Rejected   int `json:"rejected,omitempty"`
	Throttled  int `json:"throttled,omitempty"`
	Batches    int `json:"batches,omitempty"`
}

// EngineSummary mirrors the scheduling engine's counters on the wire
// (kept separate from internal metrics types so proto stays
// dependency-free): rounds run, decisions issued, and the current queue
// depth, as surfaced by `murictl status`.
type EngineSummary struct {
	Rounds       int `json:"rounds"`
	Decisions    int `json:"decisions"`
	Launches     int `json:"launches"`
	Preemptions  int `json:"preemptions,omitempty"`
	Requeues     int `json:"requeues,omitempty"`
	DeadLettered int `json:"dead_lettered,omitempty"`
	QueueDepth   int `json:"queue_depth,omitempty"`
	// Reprofiles counts completions whose measured stage times deviated
	// far enough from the predictor's belief to re-seed it.
	Reprofiles int `json:"reprofiles,omitempty"`
}

// FaultSummary mirrors the scheduler's fault counters on the wire (kept
// separate from internal metrics types so proto stays dependency-free).
type FaultSummary struct {
	Crashes      int `json:"crashes"`
	Repairs      int `json:"repairs"`
	Transient    int `json:"transient"`
	Requeues     int `json:"requeues"`
	DeadLettered int `json:"dead_lettered"`
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID             int64         `json:"id"`
	Model          string        `json:"model"`
	State          string        `json:"state"`
	DoneIterations int64         `json:"done_iterations"`
	Iterations     int64         `json:"iterations"`
	JCT            time.Duration `json:"jct,omitempty"`
	// Faults counts this job's recorded faults; FaultExecutor names the
	// machine the most recent one originated on.
	Faults        int    `json:"faults,omitempty"`
	FaultExecutor string `json:"fault_executor,omitempty"`
}

// InjectFault asks the scheduler to inject a failure: exactly one of
// JobID (fail that running job) or Machine (drop that executor as if it
// crashed) should be set.
type InjectFault struct {
	JobID   int64  `json:"job_id,omitempty"`
	Machine string `json:"machine,omitempty"`
}

// InjectFaultAck reports the outcome of an injection.
type InjectFaultAck struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// TraceReq asks the scheduler for a snapshot of its trace ring.
type TraceReq struct{}

// TraceAck carries the snapshot as raw Chrome trace-event JSON (kept
// opaque so proto needs no telemetry types; viewers and murictl write
// it to disk verbatim). Snapshots are bounded by the daemon's trace
// ring, which fits MaxMessageSize by construction.
type TraceAck struct {
	Trace json.RawMessage `json:"trace,omitempty"`
	Err   string          `json:"err,omitempty"`
}

// ExplainReq asks the scheduler for one job's decision provenance:
// its lifecycle span timeline and exact wait-time attribution.
type ExplainReq struct {
	JobID int64 `json:"job_id"`
}

// ExplainAck carries the server-rendered explanation. The text is
// rendered daemon-side (not client-side from structured fields) so the
// live output is byte-identical to what `muritrace` reconstructs from
// the WAL alone — the parity tests diff the two verbatim.
type ExplainAck struct {
	Text string `json:"text,omitempty"`
	Err  string `json:"err,omitempty"`
}

// Message is the framed envelope. Exactly one payload field matching Type
// should be set.
type Message struct {
	Type           Type            `json:"type"`
	Register       *Register       `json:"register,omitempty"`
	RegisterAck    *RegisterAck    `json:"register_ack,omitempty"`
	Launch         *Launch         `json:"launch,omitempty"`
	Kill           *Kill           `json:"kill,omitempty"`
	Progress       *Progress       `json:"progress,omitempty"`
	JobDone        *JobDone        `json:"job_done,omitempty"`
	Fault          *Fault          `json:"fault,omitempty"`
	Heartbeat      *Heartbeat      `json:"heartbeat,omitempty"`
	ProfileReq     *ProfileReq     `json:"profile_req,omitempty"`
	Profiled       *Profiled       `json:"profiled,omitempty"`
	Submit         *Submit         `json:"submit,omitempty"`
	SubmitAck      *SubmitAck      `json:"submit_ack,omitempty"`
	SubmitBatch    *SubmitBatch    `json:"submit_batch,omitempty"`
	SubmitBatchAck *SubmitBatchAck `json:"submit_batch_ack,omitempty"`
	Status         *Status         `json:"status,omitempty"`
	StatusAck      *StatusAck      `json:"status_ack,omitempty"`
	InjectFault    *InjectFault    `json:"inject_fault,omitempty"`
	InjectFaultAck *InjectFaultAck `json:"inject_fault_ack,omitempty"`
	Trace          *TraceReq       `json:"trace,omitempty"`
	TraceAck       *TraceAck       `json:"trace_ack,omitempty"`
	Explain        *ExplainReq     `json:"explain,omitempty"`
	ExplainAck     *ExplainAck     `json:"explain_ack,omitempty"`
	DebugCrash     *DebugCrash     `json:"debug_crash,omitempty"`
	DebugCrashAck  *DebugCrashAck  `json:"debug_crash_ack,omitempty"`
	ReplSubscribe  *ReplSubscribe  `json:"repl_subscribe,omitempty"`
	ReplSnapshot   *ReplSnapshot   `json:"repl_snapshot,omitempty"`
	WALAppend      *WALAppend      `json:"wal_append,omitempty"`
	WALAppendAck   *WALAppendAck   `json:"wal_append_ack,omitempty"`
}

// Codec reads and writes framed messages on a stream. Reads and writes
// are independently safe for one reader plus one writer; concurrent
// writers must synchronize externally (see LockedCodec).
type Codec struct {
	r io.Reader
	w io.Writer
}

// NewCodec wraps a stream (typically a net.Conn).
func NewCodec(rw io.ReadWriter) *Codec { return &Codec{r: rw, w: rw} }

// Write frames and sends one message.
func (c *Codec) Write(m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("proto: marshal %s: %w", m.Type, err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("proto: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("proto: write header: %w", err)
	}
	if _, err := c.w.Write(body); err != nil {
		return fmt.Errorf("proto: write body: %w", err)
	}
	return nil
}

// Read receives and decodes one message.
func (c *Codec) Read() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, fmt.Errorf("proto: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("proto: unmarshal: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("proto: message without type")
	}
	return &m, nil
}
