// Durability and failover: the daemon's decision-stream WAL, snapshot/
// restore recovery, warm-standby replication, and lease-based election.
// See DESIGN.md §12.
//
// Every mutation of recoverable state — admission batches, engine
// decisions, fault-ledger spends, completions, profiles, progress
// checkpoints, group launches, term changes — is appended to a
// checksummed WAL (internal/wal) under s.mu before the daemon acts on
// it further. Recovery loads the newest snapshot and replays the tail,
// reconstructing an engine whose future decision stream is
// byte-identical to the uninterrupted run. A standby follows the
// leader's WAL as raw frames (its replica is byte-identical on disk)
// and promotes itself by replaying that replica when the leader's
// lease lapses; terms fence the deposed leader.
package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"muri/internal/engine"
	"muri/internal/ingest"
	"muri/internal/job"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/wal"
	"muri/internal/workload"
)

// Daemon roles in the HA pair. A daemon with no standby attached runs
// solo; the first ReplSubscribe makes it a leader. A daemon started
// with -standby-of follows the leader until election promotes it.
// Fenced is a deposed leader that observed a higher term: it rejects
// every write until restarted.
const (
	roleSolo    = "solo"
	roleLeader  = "leader"
	roleStandby = "standby"
	roleFenced  = "fenced"
)

// errNotLeader rejects submissions on a standby or fenced daemon. It is
// retryable: HA-aware clients resubmit against the other address.
var errNotLeader = &ingest.Error{Code: proto.CodeNotLeader, Retryable: true,
	Msg: "server: not the leader; submit to the active scheduler"}

// replSub is one attached standby on the leader side: the tap feeds
// copied WAL frames into ch, a per-connection goroutine streams them
// out, and acks flow back for lag accounting.
type replSub struct {
	id string
	ch chan proto.WALFrame
	// acked is the standby's last acknowledged LSN (lag = leader LSN −
	// acked). Written by the ack reader, read by status/metrics.
	acked atomic.Uint64
	// gone marks a detached or hopelessly slow subscriber (channel
	// overflow): the tap skips it and the streamer closes the
	// connection, forcing the standby to re-sync from a fresh snapshot.
	// Guarded by Server.replMu.
	gone bool
}

// startDurability opens the WAL and either recovers local state (solo/
// leader) or starts the follow/election loops (standby). Called once
// from Serve, before the schedule loop can run a round.
func (s *Server) startDurability() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durStarted {
		return nil
	}
	s.durStarted = true
	if s.cfg.StateDir == "" {
		if s.cfg.StandbyOf != "" {
			return errors.New("server: standby mode requires a state dir")
		}
		return nil
	}
	// Recover before Open: Open truncates the torn tail in place, so the
	// read-only scan must happen first to report corruption against the
	// original bytes. Recovery stops at the first corrupt record and
	// treats everything before it as the durable prefix — it never
	// crashes on torn writes, truncated tails, or bit flips.
	var rec *wal.Recovery
	if s.cfg.StandbyOf == "" {
		var err error
		rec, err = wal.Recover(s.cfg.StateDir)
		if err != nil {
			return fmt.Errorf("server: wal recover: %w", err)
		}
		if c := rec.Corruption; c != nil {
			s.log.Warn("wal: replay stopped at corrupt record",
				"segment", c.Segment, "offset", c.Offset, "reason", c.Reason)
		}
	}
	w, err := wal.Open(s.cfg.StateDir, wal.Options{
		SegmentBytes: s.cfg.SegmentBytes,
		SyncEvery:    s.cfg.FsyncEvery,
		OnSync: func(d time.Duration, records int) {
			if s.fsyncHist != nil {
				s.fsyncHist.Observe(d.Seconds())
			}
		},
		OnAppend: s.replTap,
	})
	if err != nil {
		return fmt.Errorf("server: wal open: %w", err)
	}
	s.w = w
	s.lastSnap = time.Now()
	if s.cfg.StandbyOf != "" {
		s.setRoleLocked(roleStandby)
		s.lastLeaderMsg.Store(time.Now().UnixNano())
		s.wg.Add(2)
		go s.standbyLoop()
		go s.electionLoop()
		s.log.Info("standby: replicating", "leader", s.cfg.StandbyOf, "dir", s.cfg.StateDir)
		return nil
	}
	s.restoreLocked(rec)
	return nil
}

// restoreLocked rebuilds daemon state from a recovery scan: snapshot
// first, then every record after it in LSN order. Callers hold s.mu.
func (s *Server) restoreLocked(rec *wal.Recovery) {
	if rec == nil {
		return
	}
	var clockV int64
	if sn := rec.Snapshot; sn != nil {
		s.applySnapshotLocked(sn)
		clockV = sn.V
	}
	for i := range rec.Records {
		r := &rec.Records[i]
		if r.V > clockV {
			clockV = r.V
		}
		s.replayRecordLocked(r)
	}
	s.walReplayed = len(rec.Records)
	s.replayLostOrigin = ""
	// Re-derive the freeze-marker mirror from the replayed fold, so the
	// first post-recovery round emits exactly one start marker (or an
	// end marker if the crash interrupted a freeze).
	s.explFrozen = s.expl.Frozen()
	// Virtual-clock continuity: restart the wall anchor so virtualNow
	// resumes from the last durable virtual instant instead of zero.
	now := time.Now()
	s.started = now.Add(-time.Duration(float64(clockV) * s.cfg.TimeScale))
	// Reconcile job.State with the engine's replayed phases and find
	// orphans: jobs running at crash time whose executors have not yet
	// re-registered. They get one liveness window to be adopted back.
	orphans := 0
	for id, js := range s.jobs {
		switch s.eng.PhaseOf(job.ID(id)) {
		case engine.PhaseRunning:
			js.job.State = job.Running
			if js.groupID == 0 {
				orphans++
			}
		case engine.PhaseDone:
			js.job.State = job.Done
		default:
			js.job.State = job.Pending
		}
	}
	if orphans > 0 {
		s.adoptUntil = now.Add(s.cfg.LivenessTimeout)
	}
	if s.walReplayed > 0 || rec.Snapshot != nil {
		s.log.Info("recovered from wal", "records", s.walReplayed,
			"jobs", len(s.jobs), "orphans", orphans, "term", s.term.Load())
	}
}

// applySnapshotLocked loads one full checkpoint. Callers hold s.mu.
func (s *Server) applySnapshotLocked(sn *wal.Snapshot) {
	s.eng.Restore(sn.Engine)
	s.jobs = make(map[int64]*jobState, len(sn.Jobs))
	for i := range sn.Jobs {
		j := &sn.Jobs[i]
		js := s.rebuildJobLocked(j.Spec, j.SubmitV, time.Unix(0, j.SubmittedWall))
		if js == nil {
			continue
		}
		js.job.DoneIterations = j.DoneIterations
		js.job.StartedAt = time.Duration(j.StartedV)
		js.job.Attained = time.Duration(j.AttainedV)
		js.job.Restarts = j.Restarts
		if j.FinishedWall != 0 {
			js.finishedAt = time.Unix(0, j.FinishedWall)
			js.job.FinishedAt = time.Duration(j.FinishedV)
		}
		if j.NotBeforeWall != 0 {
			js.notBefore = time.Unix(0, j.NotBeforeWall)
		}
		for _, fe := range j.FaultLog {
			js.faultLog = append(js.faultLog,
				faultRecord{at: time.Unix(0, fe.AtWall), executor: fe.Executor, err: fe.Err})
		}
	}
	if len(sn.Profiles) > 0 {
		s.profiles = make(map[string][4]time.Duration, len(sn.Profiles))
		for m, st := range sn.Profiles {
			s.profiles[m] = st
		}
	}
	s.nextGroup = sn.NextGroup
	s.adm.BumpNextID(sn.NextJobID)
	s.faults = sn.Faults
	s.leaseEvictions = sn.LeaseEvictions
	if sn.Predictor != nil {
		s.est.Restore(*sn.Predictor)
	}
	if err := s.expl.Restore(sn.Explain); err != nil {
		s.log.Error("recovery: explain state unreadable; provenance resets", "err", err)
	}
	if sn.Term > s.term.Load() {
		s.term.Store(sn.Term)
	}
}

// rebuildJobLocked reconstructs one jobState the way admitLocked built
// it live, from a logged spec (Stages already resolved at admit time)
// and the logged virtual submit instant. Callers hold s.mu.
func (s *Server) rebuildJobLocked(spec proto.JobSpec, submitV int64, at time.Time) *jobState {
	m, err := workload.ByName(spec.Model)
	if err != nil {
		s.log.Error("recovery: unknown model", "job", spec.ID, "model", spec.Model)
		return nil
	}
	js := &jobState{spec: spec, submittedAt: at, lastSeen: time.Now()}
	var st workload.StageTimes
	copy(st[:], spec.Stages[:])
	model := m
	model.Stages = st
	js.job = job.New(job.ID(spec.ID), model, spec.GPUs, spec.Iterations, time.Duration(submitV))
	js.job.DoneIterations = spec.DoneIterations
	s.jobs[spec.ID] = js
	s.adm.BumpNextID(spec.ID)
	return js
}

// replayRecordLocked applies one WAL record. Replay mirrors exactly the
// state effects the emit-time code had around the append — silently: no
// observer callbacks, no new WAL writes, no histograms (documented
// loss: histograms reset on restart). Callers hold s.mu.
func (s *Server) replayRecordLocked(r *wal.Record) {
	// The explain builder sees every record in log order — the same feed
	// walAppendLocked gave it live — so a recovered daemon renders
	// explanations byte-identical to the uninterrupted one. KindCause
	// records exist only for this fold; they have no other replay effect.
	if s.expl != nil {
		s.expl.Apply(r)
	}
	switch r.Kind {
	case wal.KindAdmit:
		if r.Admit == nil {
			return
		}
		for i := range r.Admit.Items {
			it := &r.Admit.Items[i]
			phase := engine.PhasePending
			if it.Profiling {
				phase = engine.PhaseProfiling
			}
			s.eng.Track(job.ID(it.Spec.ID), phase)
			s.rebuildJobLocked(it.Spec, it.SubmitV, time.Unix(0, it.AtWall))
		}
	case wal.KindDecision:
		if r.Decision == nil {
			return
		}
		s.replayDecisionLocked(r.Decision.ToDecision())
	case wal.KindFault:
		if r.Fault == nil {
			return
		}
		s.replayFaultLocked(r.Fault, r.W)
	case wal.KindDone:
		d := r.Done
		if d == nil {
			return
		}
		js := s.jobs[d.Job]
		if js == nil || !s.eng.SetPhase(job.ID(d.Job), engine.PhaseDone) {
			return
		}
		js.finishedAt = time.Unix(0, d.FinishedWall)
		js.job.DoneIterations = js.job.Iterations
		js.job.State = job.Done
		js.job.FinishedAt = time.Duration(d.FinishedV)
		js.groupID = 0
		// Re-feed the predictor exactly as the live path did (the logged
		// ServiceV pins the soft attained-time input), so the estimator's
		// post-replay beliefs match the pre-crash ones.
		s.eng.NoteCompletion(js.job, js.job.TrueProfile, time.Duration(d.ServiceV))
	case wal.KindProfile:
		p := r.Profile
		if p == nil {
			return
		}
		s.profiles[p.Model] = p.Stages
		var st workload.StageTimes
		copy(st[:], p.Stages[:])
		for id, js := range s.jobs {
			if s.eng.PhaseOf(job.ID(id)) == engine.PhaseProfiling && js.spec.Model == p.Model {
				js.spec.Stages = p.Stages
				js.job.Profile = st
				js.job.TrueProfile = st
				s.eng.SetPhase(job.ID(id), engine.PhasePending)
			}
		}
	case wal.KindProgress:
		p := r.Progress
		if p == nil {
			return
		}
		if js := s.jobs[p.Job]; js != nil && p.Done > js.job.DoneIterations {
			js.job.DoneIterations = p.Done
		}
	case wal.KindGroup:
		g := r.Group
		if g == nil {
			return
		}
		if g.ID > s.nextGroup {
			s.nextGroup = g.ID
		}
		for _, m := range g.Members {
			if js := s.jobs[m.Job]; js != nil {
				js.job.StartedAt = time.Duration(m.StartedV)
			}
		}
	case wal.KindTerm:
		if r.Term != nil && r.Term.Term > s.term.Load() {
			s.term.Store(r.Term.Term)
		}
	}
}

// replayDecisionLocked replays one engine decision plus the daemon-side
// effects the live path applied around it. Daemon effects that read the
// pre-decision phase (Restarts on kill) run first, then the engine's
// own silent replay. Callers hold s.mu.
func (s *Server) replayDecisionLocked(d engine.Decision) {
	switch d.Action {
	case engine.ActKill:
		// killGroupLocked: running members get a restart charged and lose
		// their group binding before the engine flips them to pending.
		for _, id := range d.Jobs {
			if js := s.jobs[int64(id)]; js != nil && s.eng.PhaseOf(id) == engine.PhaseRunning {
				js.job.Restarts++
				js.groupID = 0
			}
		}
	case engine.ActRequeue:
		for _, id := range d.Jobs {
			js := s.jobs[int64(id)]
			if js == nil {
				continue
			}
			js.groupID = 0
			if d.Reason == engine.ReasonMachineLost {
				// dropExecutor's per-member bookkeeping: the machine-loss
				// fault record that precedes these requeues carried the
				// origin for attribution.
				js.faultLog = append(js.faultLog, faultRecord{
					at: time.Now(), executor: s.replayLostOrigin, err: "executor lost"})
			}
		}
		if d.Reason == engine.ReasonMachineLost {
			s.faults.Requeues++
		}
	}
	s.eng.ApplyDecision(d)
}

// replayFaultLocked replays one fault-ledger record. Job-level records
// (Job > 0) restore attribution, retry-budget spend, and backoff; the
// requeue/deadletter decision that followed is its own record. Machine
// records (Job == 0) replay an executor loss. Callers hold s.mu.
func (s *Server) replayFaultLocked(f *wal.FaultRecord, wall int64) {
	if f.Job == 0 {
		// dropExecutor: one crash counted per lost machine; remember the
		// origin so the machine-lost requeues that follow attribute to it.
		s.faults.Crashes++
		s.replayLostOrigin = f.Origin
		if f.Origin != "" {
			s.seenMachines[f.Origin] = true
		}
		return
	}
	js := s.jobs[f.Job]
	if js != nil {
		js.faultLog = append(js.faultLog,
			faultRecord{at: time.Unix(0, wall), executor: f.Origin, err: f.Err})
	}
	s.faults.Transient++
	s.eng.ReplayFault(job.ID(f.Job), f.Faults, f.DeadLettered)
	if f.DeadLettered {
		s.faults.DeadLettered++
		return
	}
	s.faults.Requeues++
	if js != nil && f.NotBeforeWall != 0 {
		js.notBefore = time.Unix(0, f.NotBeforeWall)
	}
}

// walAppendLocked stamps and appends one record. All appends happen
// under s.mu — that single-writer discipline is what lets the
// replication handshake (snapshot + tap attach) promise a gap-free
// stream. Callers hold s.mu.
func (s *Server) walAppendLocked(rec *wal.Record) {
	if s.closed {
		return
	}
	rec.V = int64(s.virtualNowLocked())
	rec.W = time.Now().UnixNano()
	// The explain builder folds every record exactly as it becomes
	// durable — the same fold replay and muritrace run, which is what
	// pins live explanations byte-identical to offline reconstruction.
	// Fed before the no-WAL early-out so explain works without -state-dir.
	if s.expl != nil {
		s.expl.Apply(rec)
	}
	if s.w == nil {
		return
	}
	if _, err := s.w.Append(rec); err != nil {
		s.log.Error("wal append failed", "kind", string(rec.Kind), "err", err)
	}
}

// observeDecision is the engine observer: the caller-provided tap (the
// parity harness) runs first, then the decision is made durable. Runs
// under s.mu (the engine is driven under it).
func (s *Server) observeDecision(d engine.Decision) {
	if s.cfg.Observer != nil {
		s.cfg.Observer(d)
	}
	s.walAppendLocked(&wal.Record{Kind: wal.KindDecision, Decision: wal.FromDecision(d)})
}

// walAdmitLocked logs one admission batch, capturing each job's actual
// virtual submit instant (virtualNow advances per item during the
// drain, and replay must reproduce each one exactly). Callers hold
// s.mu, after admitLocked ran for every item.
func (s *Server) walAdmitLocked(items []ingest.Item) {
	ar := &wal.AdmitRecord{Items: make([]wal.AdmitItem, 0, len(items))}
	for i := range items {
		js := s.jobs[items[i].Spec.ID]
		if js == nil {
			continue // rejected at admit (unknown model)
		}
		waitV := int64(float64(time.Since(items[i].At)) / s.cfg.TimeScale)
		if waitV < 0 {
			waitV = 0
		}
		ar.Items = append(ar.Items, wal.AdmitItem{
			Spec:      js.spec, // stages resolved by admitLocked
			AtWall:    items[i].At.UnixNano(),
			SubmitV:   int64(js.job.Submit),
			WaitV:     waitV,
			Depth:     items[i].Depth,
			Profiling: s.eng.PhaseOf(job.ID(js.spec.ID)) == engine.PhaseProfiling,
		})
	}
	if len(ar.Items) > 0 {
		s.walAppendLocked(&wal.Record{Kind: wal.KindAdmit, Admit: ar})
	}
}

// walProgressLocked checkpoints a job's iteration count at group
// detach, so a requeued job resumes from its last reported iteration
// after recovery. Callers hold s.mu.
func (s *Server) walProgressLocked(js *jobState) {
	if s.w == nil || js == nil {
		return
	}
	s.walAppendLocked(&wal.Record{Kind: wal.KindProgress,
		Progress: &wal.ProgressRecord{Job: js.spec.ID, Done: js.job.DoneIterations}})
}

// walTermLocked persists the current election term. Callers hold s.mu.
func (s *Server) walTermLocked() {
	s.walAppendLocked(&wal.Record{Kind: wal.KindTerm, Term: &wal.TermRecord{Term: s.term.Load()}})
}

// snapshotLocked checkpoints full state, letting the WAL prune segments
// below it. Callers hold s.mu.
func (s *Server) snapshotLocked() {
	if s.w == nil || s.closed {
		return
	}
	if err := s.w.WriteSnapshot(s.buildSnapshotLocked()); err != nil {
		s.log.Error("wal snapshot failed", "err", err)
		return
	}
	s.lastSnap = time.Now()
}

// buildSnapshotLocked assembles the full-state checkpoint. Callers hold
// s.mu.
func (s *Server) buildSnapshotLocked() *wal.Snapshot {
	pos := s.w.Position()
	sn := &wal.Snapshot{
		LSN:            pos.LSN,
		Term:           s.term.Load(),
		TakenWall:      time.Now().UnixNano(),
		V:              int64(s.virtualNowLocked()),
		Engine:         s.eng.Snapshot(),
		NextGroup:      s.nextGroup,
		NextJobID:      s.adm.NextID(),
		Faults:         s.faults,
		LeaseEvictions: s.leaseEvictions,
	}
	if ps := s.est.Snapshot(); len(ps.Models) > 0 || len(ps.History) > 0 {
		sn.Predictor = &ps
	}
	if raw, err := s.expl.Snapshot(); err == nil {
		sn.Explain = raw
	} else {
		s.log.Error("snapshot: explain state unserializable", "err", err)
	}
	if len(s.profiles) > 0 {
		sn.Profiles = make(map[string][4]time.Duration, len(s.profiles))
		for m, st := range s.profiles {
			sn.Profiles[m] = st
		}
	}
	ids := make([]int64, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		js := s.jobs[id]
		j := wal.JobSnapshot{
			Spec:           js.spec,
			Phase:          string(s.eng.PhaseOf(job.ID(id))),
			DoneIterations: js.job.DoneIterations,
			SubmittedWall:  js.submittedAt.UnixNano(),
			SubmitV:        int64(js.job.Submit),
			StartedV:       int64(js.job.StartedAt),
			AttainedV:      int64(js.job.Attained),
			Restarts:       js.job.Restarts,
		}
		if !js.finishedAt.IsZero() {
			j.FinishedWall = js.finishedAt.UnixNano()
			j.FinishedV = int64(js.job.FinishedAt)
		}
		if !js.notBefore.IsZero() {
			j.NotBeforeWall = js.notBefore.UnixNano()
		}
		for _, fe := range js.faultLog {
			j.FaultLog = append(j.FaultLog, wal.FaultLogEntry{
				AtWall: fe.at.UnixNano(), Executor: fe.executor, Err: fe.err})
		}
		sn.Jobs = append(sn.Jobs, j)
	}
	return sn
}

// setRoleLocked flips the election role and the lock-free not-leader
// gate consulted by the submit fast path. Callers hold s.mu.
func (s *Server) setRoleLocked(role string) {
	s.role = role
	s.notLeader.Store(role == roleStandby || role == roleFenced)
}

// fence marks this daemon deposed after observing a strictly higher
// term: no more WAL writes, submissions and registrations rejected.
func (s *Server) fence(term uint64) {
	s.mu.Lock()
	s.fenceLocked(term)
	s.mu.Unlock()
}

func (s *Server) fenceLocked(term uint64) {
	if term <= s.term.Load() {
		return
	}
	s.term.Store(term)
	if s.role == roleLeader || s.role == roleSolo {
		s.walTermLocked()
		s.setRoleLocked(roleFenced)
		s.log.Warn("fenced: observed higher election term", "term", term)
	}
}

// freezeForAdoptionLocked gates scheduling while recovered running jobs
// await their executors. Running a round with orphans missing from
// Current would wipe their placement memory (Reconcile rebuilds it from
// kept+placed units) and diverge the decision stream, so the scheduler
// holds rounds until every orphan is adopted or the grace expires —
// then the machines are treated as lost and the orphans requeue.
// Returns true when the round must be skipped. Callers hold s.mu.
func (s *Server) freezeForAdoptionLocked(wallNow time.Time) bool {
	if s.w == nil || s.adoptUntil.IsZero() {
		return false
	}
	var orphans []int64
	for id, js := range s.jobs {
		if js.groupID == 0 && s.eng.PhaseOf(job.ID(id)) == engine.PhaseRunning {
			orphans = append(orphans, id)
		}
	}
	if len(orphans) == 0 {
		s.adoptUntil = time.Time{}
		return false
	}
	if wallNow.Before(s.adoptUntil) {
		return true
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, id := range orphans {
		js := s.jobs[id]
		s.walProgressLocked(js)
		js.faultLog = append(js.faultLog, faultRecord{
			at: wallNow, err: "executor did not re-register after recovery"})
		s.faults.Requeues++
		s.eng.RequeueWithCause(job.ID(id), engine.ReasonMachineLost,
			"executor did not re-register after recovery")
	}
	s.log.Warn("adoption grace expired; orphans requeued", "jobs", len(orphans))
	s.adoptUntil = time.Time{}
	return false
}

// adoptGroupLocked validates and re-binds one surviving group offered
// by a re-registering executor: every member must still be running
// under exactly the offered unit key with no other group binding, and
// the executor must have the capacity. Adopted groups emit no decisions
// — the engine's placement memory already holds them, so the next
// Differential round keeps them untouched. Callers hold s.mu.
func (s *Server) adoptGroupLocked(e *executorConn, rg *proto.RunningGroup) bool {
	if rg.GroupID <= 0 || rg.GPUs <= 0 || len(rg.Jobs) == 0 ||
		s.groups[rg.GroupID] != nil || e.free < rg.GPUs {
		return false
	}
	keys := s.eng.RunningKeys()
	jobs := make([]*job.Job, 0, len(rg.Jobs))
	ids := make([]int64, 0, len(rg.Jobs))
	for i := range rg.Jobs {
		rj := &rg.Jobs[i]
		js := s.jobs[rj.ID]
		if js == nil || js.groupID != 0 ||
			s.eng.PhaseOf(job.ID(rj.ID)) != engine.PhaseRunning ||
			keys[job.ID(rj.ID)] != rg.Key {
			return false
		}
		jobs = append(jobs, js.job)
		ids = append(ids, rj.ID)
	}
	mode, ok := modeFromKey(rg.Key)
	if !ok {
		return false
	}
	unit := sched.Unit{Jobs: jobs, GPUs: rg.GPUs, Mode: mode}
	if engine.UnitKey(unit) != rg.Key {
		return false
	}
	now := time.Now()
	for i := range rg.Jobs {
		rj := &rg.Jobs[i]
		js := s.jobs[rj.ID]
		if rj.DoneIterations > js.job.DoneIterations {
			js.job.DoneIterations = rj.DoneIterations
		}
		js.groupID = rg.GroupID
		js.lastSeen = now
	}
	e.free -= rg.GPUs
	s.groups[rg.GroupID] = &groupState{id: rg.GroupID, key: rg.Key, exec: e,
		gpus: rg.GPUs, jobs: ids, spec: unit, since: now}
	if rg.GroupID > s.nextGroup {
		s.nextGroup = rg.GroupID
	}
	s.log.Info("adopted running group", "group", rg.GroupID, "machine", e.id,
		"key", rg.Key, "jobs", len(ids))
	return true
}

// modeFromKey parses the sharing mode off a canonical unit key
// ("mode:id,id,...").
func modeFromKey(key string) (sched.Mode, bool) {
	prefix, _, ok := strings.Cut(key, ":")
	if !ok {
		return 0, false
	}
	for _, m := range []sched.Mode{sched.Exclusive, sched.Interleaved, sched.SpaceShared} {
		if m.String() == prefix {
			return m, true
		}
	}
	return 0, false
}

// --- Leader-side replication ---------------------------------------

// replTap is the WAL OnAppend hook: it fans each appended frame out to
// every attached standby. Called under the WAL writer lock in LSN
// order; the frame slice is only valid during the call, so it is
// copied once and shared by all subscribers.
func (s *Server) replTap(lsn uint64, frame []byte) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if len(s.subs) == 0 {
		return
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	f := proto.WALFrame{LSN: lsn, Data: cp}
	for _, sub := range s.subs {
		if sub.gone {
			continue
		}
		select {
		case sub.ch <- f:
		default:
			// The standby cannot keep up; cut it loose and let it re-sync
			// from a fresh snapshot on reconnect rather than block appends.
			sub.gone = true
		}
	}
}

func (s *Server) subGone(rs *replSub) bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return rs.gone
}

func (s *Server) detachSub(rs *replSub) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	rs.gone = true
	for i, sub := range s.subs {
		if sub == rs {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
}

// handleReplSubscribe serves one standby connection: seed it with a
// fresh snapshot, then stream every subsequent WAL frame. The snapshot
// write and the tap attach happen in one s.mu critical section — and
// every WAL append happens under s.mu — so no record can fall between
// the snapshot edge and the stream.
func (s *Server) handleReplSubscribe(conn net.Conn, codec *proto.Codec, req *proto.ReplSubscribe) {
	s.mu.Lock()
	if s.w == nil || s.notLeader.Load() || s.closed {
		term := s.term.Load()
		s.mu.Unlock()
		_ = codec.Write(&proto.Message{Type: proto.TypeWALAppendAck,
			WALAppendAck: &proto.WALAppendAck{OK: false, Term: term}})
		return
	}
	if req.Term > s.term.Load() {
		s.fenceLocked(req.Term)
		term := s.term.Load()
		s.mu.Unlock()
		_ = codec.Write(&proto.Message{Type: proto.TypeWALAppendAck,
			WALAppendAck: &proto.WALAppendAck{OK: false, Term: term}})
		return
	}
	if s.role == roleSolo {
		s.setRoleLocked(roleLeader)
	}
	s.snapshotLocked()
	fr, lsn, ok, err := s.w.SnapshotRaw()
	rs := &replSub{id: req.StandbyID, ch: make(chan proto.WALFrame, 8192)}
	// The seed snapshot covers everything up to lsn; start lag accounting
	// there rather than at zero.
	rs.acked.Store(lsn)
	s.replMu.Lock()
	s.subs = append(s.subs, rs)
	s.replMu.Unlock()
	term := s.term.Load()
	ttl := s.cfg.ElectionTTL
	s.mu.Unlock()
	defer s.detachSub(rs)
	if err != nil || !ok {
		s.log.Error("replication: no snapshot to seed standby", "standby", req.StandbyID, "err", err)
		return
	}
	if err := codec.Write(&proto.Message{Type: proto.TypeReplSnapshot,
		ReplSnapshot: &proto.ReplSnapshot{Snapshot: fr, LSN: lsn, Term: term}}); err != nil {
		return
	}
	s.log.Info("standby attached", "standby", req.StandbyID, "from_lsn", lsn, "term", term)
	// Ack reader: tracks the standby's applied LSN and watches for the
	// fencing signal (a rejection carrying a higher term).
	done := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(done)
		for {
			m, err := codec.Read()
			if err != nil {
				return
			}
			if m.Type != proto.TypeWALAppendAck || m.WALAppendAck == nil {
				continue
			}
			a := m.WALAppendAck
			if !a.OK && a.Term > s.term.Load() {
				s.fence(a.Term)
				return
			}
			rs.acked.Store(a.LastLSN)
		}
	}()
	// Streamer: batch frames opportunistically; an empty WALAppend every
	// TTL/3 doubles as the leader's lease heartbeat.
	hb := time.NewTicker(ttl / 3)
	defer hb.Stop()
	for {
		var msg proto.Message
		select {
		case <-done:
			return
		case f := <-rs.ch:
			batch := []proto.WALFrame{f}
		drain:
			for len(batch) < 64 {
				select {
				case f2 := <-rs.ch:
					batch = append(batch, f2)
				default:
					break drain
				}
			}
			msg = proto.Message{Type: proto.TypeWALAppend,
				WALAppend: &proto.WALAppend{Term: s.term.Load(), Records: batch}}
		case <-hb.C:
			if s.subGone(rs) {
				return // overflowed: close so the standby re-syncs
			}
			msg = proto.Message{Type: proto.TypeWALAppend,
				WALAppend: &proto.WALAppend{Term: s.term.Load()}}
		}
		if err := codec.Write(&msg); err != nil {
			return
		}
	}
}

// --- Standby side ---------------------------------------------------

func (s *Server) standbyGone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.role != roleStandby
}

// standbyLoop keeps the standby attached to the leader, re-dialing with
// a short delay until promoted or closed.
func (s *Server) standbyLoop() {
	defer s.wg.Done()
	for {
		if s.standbyGone() {
			return
		}
		conn, err := net.DialTimeout("tcp", s.cfg.StandbyOf, s.cfg.ElectionTTL)
		if err == nil {
			s.followLeader(conn)
			conn.Close()
		}
		select {
		case <-s.stopCh:
			return
		case <-time.After(s.cfg.ElectionTTL / 8):
		}
	}
}

// followLeader runs one replication session: subscribe, install the
// seed snapshot, then append every streamed frame to the local replica
// WAL (byte-identical to the leader's log). The standby applies nothing
// live — promotion replays the replica from disk.
func (s *Server) followLeader(conn net.Conn) {
	s.mu.Lock()
	if s.closed || s.role != roleStandby {
		s.mu.Unlock()
		return
	}
	s.standbyConn = conn
	myTerm := s.term.Load()
	id := s.cfg.StandbyID
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.standbyConn == conn {
			s.standbyConn = nil
		}
		s.mu.Unlock()
	}()
	codec := proto.NewCodec(conn)
	if err := codec.Write(&proto.Message{Type: proto.TypeReplSubscribe,
		ReplSubscribe: &proto.ReplSubscribe{StandbyID: id, Term: myTerm}}); err != nil {
		return
	}
	m, err := codec.Read()
	if err != nil || m.Type != proto.TypeReplSnapshot || m.ReplSnapshot == nil {
		return
	}
	seed := m.ReplSnapshot
	s.observeLeaderTerm(seed.Term)
	s.lastLeaderMsg.Store(time.Now().UnixNano())
	if len(seed.Snapshot) > 0 {
		s.mu.Lock()
		_, err := s.w.InstallSnapshot(seed.Snapshot)
		s.mu.Unlock()
		if err != nil {
			s.log.Error("standby: install snapshot failed", "err", err)
			return
		}
		s.appliedLSN.Store(seed.LSN)
		s.leaderLSN.Store(seed.LSN)
	}
	s.log.Info("standby: following leader", "leader", s.cfg.StandbyOf,
		"from_lsn", seed.LSN, "term", seed.Term)
	for {
		m, err := codec.Read()
		if err != nil {
			return
		}
		if s.standbyGone() {
			return
		}
		wa := m.WALAppend
		if m.Type != proto.TypeWALAppend || wa == nil {
			continue
		}
		if wa.Term < s.term.Load() {
			// A deposed leader is still streaming: reject with our term so
			// it fences itself.
			_ = codec.Write(&proto.Message{Type: proto.TypeWALAppendAck,
				WALAppendAck: &proto.WALAppendAck{OK: false, Term: s.term.Load()}})
			return
		}
		s.observeLeaderTerm(wa.Term)
		s.lastLeaderMsg.Store(time.Now().UnixNano())
		for i := range wa.Records {
			if err := s.appendReplica(&wa.Records[i]); err != nil {
				s.log.Error("standby: replica append failed", "lsn", wa.Records[i].LSN, "err", err)
				return // reconnect re-seeds from a fresh snapshot
			}
		}
		if n := len(wa.Records); n > 0 {
			last := wa.Records[n-1].LSN
			s.appliedLSN.Store(last)
			if last > s.leaderLSN.Load() {
				s.leaderLSN.Store(last)
			}
			if err := codec.Write(&proto.Message{Type: proto.TypeWALAppendAck,
				WALAppendAck: &proto.WALAppendAck{OK: true, LastLSN: last, Term: s.term.Load()}}); err != nil {
				return
			}
		}
	}
}

// appendReplica writes one leader frame into the replica WAL, under
// s.mu so replication serializes with promotion's replay-from-disk.
func (s *Server) appendReplica(fr *proto.WALFrame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.role != roleStandby {
		return errors.New("server: no longer a standby")
	}
	if err := s.w.AppendRaw(fr.LSN, fr.Data); err != nil {
		return err
	}
	if rec, err := wal.DecodeRawRecord(fr.Data); err == nil && rec.W != 0 && s.applyLagHist != nil {
		s.applyLagHist.Observe(time.Since(time.Unix(0, rec.W)).Seconds())
	}
	return nil
}

func (s *Server) observeLeaderTerm(term uint64) {
	s.mu.Lock()
	if term > s.term.Load() {
		s.term.Store(term)
	}
	s.mu.Unlock()
}

// electionLoop promotes the standby once the leader has been silent —
// no frames, no heartbeats — for a full election TTL.
func (s *Server) electionLoop() {
	defer s.wg.Done()
	ttl := s.cfg.ElectionTTL
	t := time.NewTicker(ttl / 4)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		}
		if s.standbyGone() {
			return
		}
		if time.Since(time.Unix(0, s.lastLeaderMsg.Load())) > ttl {
			s.promote()
			return
		}
	}
}

// promote turns the standby into the leader: bump the term past
// everything observed, replay the local replica WAL into live state,
// persist the new term, and open for business. Executors re-register
// (RunHA cycles addresses) and their surviving groups are adopted.
func (s *Server) promote() {
	s.mu.Lock()
	if s.closed || s.role != roleStandby {
		s.mu.Unlock()
		return
	}
	if c := s.standbyConn; c != nil {
		c.Close()
	}
	newTerm := s.term.Load() + 1 // term already tracks max(own, observed leader)
	if err := s.w.Sync(); err != nil {
		s.log.Error("promotion: wal sync failed", "err", err)
	}
	rec, err := wal.Recover(s.cfg.StateDir)
	if err != nil {
		s.log.Error("promotion: replica recover failed; staying standby", "err", err)
		s.mu.Unlock()
		return
	}
	if c := rec.Corruption; c != nil {
		s.log.Warn("promotion: replica replay stopped at corrupt record",
			"segment", c.Segment, "offset", c.Offset, "reason", c.Reason)
	}
	s.restoreLocked(rec)
	s.term.Store(newTerm)
	s.setRoleLocked(roleLeader)
	s.walTermLocked()
	s.lastSnap = time.Now()
	s.mu.Unlock()
	s.log.Warn("standby promoted to leader", "term", newTerm, "replayed", s.walReplayed)
	s.kickSchedule()
}

// --- Status, crash injection ----------------------------------------

// durabilitySummaryLocked renders the durability line for the status
// RPC; the same numbers back the muri_wal_* and muri_repl_* metrics.
// Callers hold s.mu.
func (s *Server) durabilitySummaryLocked() *proto.DurabilitySummary {
	if s.w == nil {
		return nil
	}
	d := &proto.DurabilitySummary{
		Role:       s.role,
		Term:       s.term.Load(),
		FsyncEvery: s.cfg.FsyncEvery,
	}
	pos := s.w.Position()
	d.WALSegment, d.WALOffset, d.WALLSN = pos.Segment, pos.Offset, pos.LSN
	appends, fsyncs, snapLSN, snapWall := s.w.Stats()
	d.Appends, d.Fsyncs, d.SnapshotLSN = appends, fsyncs, snapLSN
	if snapWall != 0 {
		d.SnapshotAge = time.Since(time.Unix(0, snapWall))
	}
	if s.role == roleStandby {
		if l, a := s.leaderLSN.Load(), s.appliedLSN.Load(); l > a {
			d.ReplLag = l - a
		}
	} else {
		s.replMu.Lock()
		for _, sub := range s.subs {
			if sub.gone {
				continue
			}
			d.Standbys++
			if a := sub.acked.Load(); pos.LSN > a && pos.LSN-a > d.ReplLag {
				d.ReplLag = pos.LSN - a
			}
		}
		s.replMu.Unlock()
	}
	return d
}

// replLagLocked is durabilitySummaryLocked's lag figure alone, for the
// func-backed gauge. Callers hold s.mu.
func (s *Server) replLagLocked() uint64 {
	if s.w == nil {
		return 0
	}
	if s.role == roleStandby {
		if l, a := s.leaderLSN.Load(), s.appliedLSN.Load(); l > a {
			return l - a
		}
		return 0
	}
	pos := s.w.Position()
	var lag uint64
	s.replMu.Lock()
	for _, sub := range s.subs {
		if a := sub.acked.Load(); !sub.gone && pos.LSN > a && pos.LSN-a > lag {
			lag = pos.LSN - a
		}
	}
	s.replMu.Unlock()
	return lag
}

// Crash simulates a process crash for tests: the WAL descriptor is
// abandoned without flushing (records buffered in user space are lost,
// exactly as in a SIGKILL), every connection and the listener close,
// and background loops stop. Disk state afterwards is precisely what
// fsync had made durable.
func (s *Server) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopCh)
	s.adm.SetDraining(true)
	if s.w != nil {
		s.w.Abandon()
	}
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sc := s.standbyConn
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if sc != nil {
		sc.Close()
	}
	s.kickSchedule()
	s.wg.Wait()
}
