package server

import (
	"context"
	"fmt"
	"net"
	"time"

	"muri/internal/ingest"
	"muri/internal/proto"
	"muri/internal/trace"
	"muri/internal/workload"
)

// Client talks to a running scheduler daemon over TCP.
type Client struct {
	conn  net.Conn
	codec *proto.Codec
}

// Dial connects a client to the scheduler at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	return &Client{conn: conn, codec: proto.NewCodec(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Submit enqueues a job training the named model and returns its ID.
// Pass zero stages to let the scheduler profile the model (or reuse its
// cache); iterations must be positive.
func (c *Client) Submit(model string, gpus int, iterations int64) (int64, error) {
	return c.SubmitSpec(proto.JobSpec{Model: model, GPUs: gpus, Iterations: iterations})
}

// SubmitSpec enqueues a fully specified job: non-zero Stages skip the
// scheduler-side profiling dry run (a user-supplied profile).
func (c *Client) SubmitSpec(spec proto.JobSpec) (int64, error) {
	msg := &proto.Message{Type: proto.TypeSubmit, Submit: &proto.Submit{Job: spec}}
	if err := c.codec.Write(msg); err != nil {
		return 0, err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return 0, err
	}
	if reply.Type != proto.TypeSubmitAck || reply.SubmitAck == nil {
		return 0, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if err := submitErr(reply.SubmitAck.Err, reply.SubmitAck.Code); err != nil {
		return 0, err
	}
	return reply.SubmitAck.ID, nil
}

// submitErr reconstructs a client-side error from a wire rejection.
// Known admission codes come back as their canonical sentinels, so
// errors.Is(err, ingest.ErrQueueFull) works across the connection.
func submitErr(msg, code string) error {
	if msg == "" {
		return nil
	}
	if sentinel := ingest.FromCode(code); sentinel != nil {
		return sentinel
	}
	return fmt.Errorf("client: submit rejected: %s", msg)
}

// SubmitBatch submits many jobs in one round trip. The ack carries one
// result per job, in order; per-job rejections live in the results, so
// a non-nil error means the whole exchange failed.
func (c *Client) SubmitBatch(specs []proto.JobSpec) ([]proto.SubmitResult, error) {
	msg := &proto.Message{Type: proto.TypeSubmitBatch,
		SubmitBatch: &proto.SubmitBatch{Jobs: specs}}
	if err := c.codec.Write(msg); err != nil {
		return nil, err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return nil, err
	}
	if reply.Type != proto.TypeSubmitBatchAck || reply.SubmitBatchAck == nil {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if got := len(reply.SubmitBatchAck.Results); got != len(specs) {
		return nil, fmt.Errorf("client: batch ack carries %d results for %d jobs", got, len(specs))
	}
	return reply.SubmitBatchAck.Results, nil
}

// Status fetches the scheduler's state snapshot.
func (c *Client) Status() (proto.StatusAck, error) {
	if err := c.codec.Write(&proto.Message{Type: proto.TypeStatus, Status: &proto.Status{}}); err != nil {
		return proto.StatusAck{}, err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return proto.StatusAck{}, err
	}
	if reply.Type != proto.TypeStatusAck || reply.StatusAck == nil {
		return proto.StatusAck{}, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return *reply.StatusAck, nil
}

// InjectFault asks the scheduler to inject a failure: a positive jobID
// fails that running job; a non-empty machine drops that executor as if
// the machine crashed. Exactly one of the two must be set.
func (c *Client) InjectFault(jobID int64, machine string) error {
	msg := &proto.Message{Type: proto.TypeInjectFault,
		InjectFault: &proto.InjectFault{JobID: jobID, Machine: machine}}
	if err := c.codec.Write(msg); err != nil {
		return err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return err
	}
	if reply.Type != proto.TypeInjectFaultAck || reply.InjectFaultAck == nil {
		return fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if !reply.InjectFaultAck.OK {
		return fmt.Errorf("client: inject fault: %s", reply.InjectFaultAck.Err)
	}
	return nil
}

// DebugCrash arms a crash point in the daemon: the next time its write
// path passes that point, the process panics there (the in-process
// `kill -9`). Refused unless murisched runs with -unsafe-debug.
func (c *Client) DebugCrash(point string) error {
	msg := &proto.Message{Type: proto.TypeDebugCrash,
		DebugCrash: &proto.DebugCrash{Point: point}}
	if err := c.codec.Write(msg); err != nil {
		return err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return err
	}
	if reply.Type != proto.TypeDebugCrashAck || reply.DebugCrashAck == nil {
		return fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if !reply.DebugCrashAck.OK {
		return fmt.Errorf("client: debug crash: %s", reply.DebugCrashAck.Err)
	}
	return nil
}

// TraceSnapshot fetches the daemon's trace ring as Chrome trace-event
// JSON (viewable in Perfetto). The daemon keeps recording; snapshots
// taken later include everything earlier ones did, up to the ring's cap.
func (c *Client) TraceSnapshot() ([]byte, error) {
	if err := c.codec.Write(&proto.Message{Type: proto.TypeTrace, Trace: &proto.TraceReq{}}); err != nil {
		return nil, err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return nil, err
	}
	if reply.Type != proto.TypeTraceAck || reply.TraceAck == nil {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if reply.TraceAck.Err != "" {
		return nil, fmt.Errorf("client: trace snapshot: %s", reply.TraceAck.Err)
	}
	return reply.TraceAck.Trace, nil
}

// Explain fetches one job's decision provenance: its lifecycle span
// timeline and exact wait-time attribution, rendered daemon-side so the
// text is byte-identical to a muritrace reconstruction from the WAL.
func (c *Client) Explain(jobID int64) (string, error) {
	if err := c.codec.Write(&proto.Message{Type: proto.TypeExplain,
		Explain: &proto.ExplainReq{JobID: jobID}}); err != nil {
		return "", err
	}
	reply, err := c.codec.Read()
	if err != nil {
		return "", err
	}
	if reply.Type != proto.TypeExplainAck || reply.ExplainAck == nil {
		return "", fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if reply.ExplainAck.Err != "" {
		return "", fmt.Errorf("client: explain: %s", reply.ExplainAck.Err)
	}
	return reply.ExplainAck.Text, nil
}

// Replay submits every job of a trace to the scheduler, pacing the
// submissions by the trace's inter-arrival gaps compressed by timeScale
// (wall sleep = virtual gap × timeScale). Iteration counts derive from
// each spec's duration and its model's serial iteration time, exactly as
// the simulator does. It returns the submitted job IDs.
func (c *Client) Replay(ctx context.Context, tr trace.Trace, timeScale float64) ([]int64, error) {
	if timeScale <= 0 {
		return nil, fmt.Errorf("client: non-positive time scale")
	}
	var ids []int64
	var prev time.Duration
	for i, sp := range tr.Specs {
		if gap := sp.Submit - prev; gap > 0 && i > 0 {
			t := time.NewTimer(time.Duration(float64(gap) * timeScale))
			select {
			case <-ctx.Done():
				t.Stop()
				return ids, ctx.Err()
			case <-t.C:
			}
		}
		prev = sp.Submit
		m, err := workload.ByName(sp.Model)
		if err != nil {
			return ids, err
		}
		iters := int64(sp.Duration / m.Stages.Total())
		if iters < 1 {
			iters = 1
		}
		id, err := c.Submit(sp.Model, sp.GPUs, iters)
		if err != nil {
			return ids, fmt.Errorf("client: replay spec %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// WaitAllDone polls until every submitted job is done or the timeout
// elapses, returning the final status.
func (c *Client) WaitAllDone(timeout, poll time.Duration) (proto.StatusAck, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status()
		if err != nil {
			return st, err
		}
		if len(st.Jobs) > 0 && st.Pending == 0 && st.Running == 0 {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("client: timed out with %d pending, %d running", st.Pending, st.Running)
		}
		time.Sleep(poll)
	}
}
