package server

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"muri/internal/executor"
	"muri/internal/proto"
	"muri/internal/sched"
)

// TestPredictorStateSurvivesRestart crashes the daemon after completions
// have trained the online predictor and requires the restarted daemon —
// whether it recovered from a snapshot, Done-record replay, or both — to
// report the identical predictor state: the estimator's beliefs are
// recoverable state, not a cache that resets with the process.
func TestPredictorStateSurvivesRestart(t *testing.T) {
	cfg := Config{
		Policy:        sched.SRTF(),
		Interval:      20 * time.Millisecond,
		TimeScale:     0.0005,
		ReportEvery:   10 * time.Millisecond,
		Logf:          t.Logf,
		StateDir:      t.TempDir(),
		FsyncEvery:    1,
		SnapshotEvery: 50 * time.Millisecond,
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	serve := func(s *Server, l net.Listener) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Serve(l)
		}()
	}
	serve(srv, ln)
	cur := srv
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		cur.Close()
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		agent := &executor.Agent{MachineID: "machine-0", GPUs: 8, Logf: t.Logf}
		_ = agent.RunWithRetry(ctx, addr, time.Second)
	}()

	c := dialRetry(t, addr)
	defer func() { c.Close() }()
	waitStatus(t, c, "executor registration",
		func(st proto.StatusAck) bool { return st.Executors == 1 })
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitSpec(proto.JobSpec{
			Model: "gpt2", GPUs: 8, Iterations: 400, Stages: parityStages,
		}); err != nil {
			t.Fatal(err)
		}
	}
	pre := waitStatus(t, c, "all jobs done and predictor trained",
		func(st proto.StatusAck) bool {
			return st.Done == 3 && st.Predictor != nil && st.Predictor.Completions == 3
		})
	if pre.Predictor.Models != 1 {
		t.Fatalf("pre-crash predictor tracks %d models, want 1 (gpt2)", pre.Predictor.Models)
	}

	srv.Crash()
	c.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := New(cfg) // same state dir, fresh predictor instance
	serve(srv2, ln2)
	cur = srv2
	c = dialRetry(t, addr)
	post := waitStatus(t, c, "recovered status with predictor",
		func(st proto.StatusAck) bool { return st.Done == 3 && st.Predictor != nil })
	if *post.Predictor != *pre.Predictor {
		t.Errorf("predictor state diverged across restart:\n  pre  = %+v\n  post = %+v",
			*pre.Predictor, *post.Predictor)
	}
}
