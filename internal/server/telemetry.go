// Daemon observability surface: the /metrics registry, the debug HTTP
// handler (murisched -debug-addr), and the trace snapshot served to
// murictl. See DESIGN.md §9.
package server

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"

	"muri/internal/ingest"
	"muri/internal/metrics"
	"muri/internal/telemetry"
	"muri/internal/workload"
)

// initMetrics registers the daemon's metric set. Engine, fault, and
// capacity figures are func-backed: each scrape samples the live state
// under s.mu, so /metrics always agrees with the status RPC's
// EngineSummary rather than drifting behind duplicate counters.
func (s *Server) initMetrics() {
	r := telemetry.NewRegistry()
	s.reg = r

	engCounter := func(pick func() int) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return uint64(pick())
		}
	}
	r.CounterFunc("muri_sched_rounds_total", "Scheduling rounds run.",
		engCounter(func() int { return s.eng.Stats().Rounds }))
	r.CounterFunc("muri_sched_admissions_total", "Units launched under a new key.",
		engCounter(func() int { return s.eng.Stats().Launches }))
	r.CounterFunc("muri_sched_preemptions_total", "Units killed to reclaim capacity.",
		engCounter(func() int { return s.eng.Stats().Preemptions }))
	r.CounterFunc("muri_sched_requeues_total", "Jobs pushed back to the queue.",
		engCounter(func() int { return s.eng.Stats().Requeues }))
	r.CounterFunc("muri_sched_deadletters_total", "Jobs parked after exhausting retries.",
		engCounter(func() int { return s.eng.Stats().DeadLettered }))
	r.CounterFunc("muri_fault_crashes_total", "Executor losses (disconnects and evictions).",
		engCounter(func() int { return s.faults.Crashes }))
	r.CounterFunc("muri_fault_transient_total", "Transient job faults reported or injected.",
		engCounter(func() int { return s.faults.Transient }))
	r.CounterFunc("muri_fault_repairs_total", "Executors re-registering after a loss.",
		engCounter(func() int { return s.faults.Repairs }))
	r.CounterFunc("muri_lease_evictions_total", "Executors evicted for lease expiry.",
		func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.leaseEvictions
		})

	engGauge := func(pick func() int) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(pick())
		}
	}
	r.GaugeFunc("muri_queue_length", "Candidates left unplaced after the last round.",
		engGauge(func() int { return s.eng.Stats().QueueDepth }))
	r.GaugeFunc("muri_capacity_gpus_total", "GPUs across registered executors.",
		engGauge(func() int {
			total := 0
			for _, e := range s.executors {
				total += e.gpus
			}
			return total
		}))
	r.GaugeFunc("muri_capacity_gpus_free", "Unallocated GPUs across registered executors.",
		engGauge(func() int {
			free := 0
			for _, e := range s.executors {
				free += e.free
			}
			return free
		}))
	r.GaugeFunc("muri_machines_degraded", "Machines seen before but absent now (crashed, not yet repaired).",
		engGauge(func() int { return len(s.seenMachines) - len(s.executors) }))

	// Ingest front door: counters and depth come func-backed from the
	// admitter (its own lock — scrapes never contend with s.mu), so they
	// agree with the status RPC's IngestSummary at every instant.
	admCounter := func(pick func(ingest.Stats) uint64) func() uint64 {
		return func() uint64 { return pick(s.adm.Stats()) }
	}
	r.CounterFunc("muri_ingest_accepted_total", "Submissions accepted into the admission queue.",
		admCounter(func(st ingest.Stats) uint64 { return st.Accepted }))
	r.CounterFunc("muri_ingest_rejected_total", "Submissions rejected for a full admission queue.",
		admCounter(func(st ingest.Stats) uint64 { return st.RejectedFull }))
	r.CounterFunc("muri_ingest_throttled_total", "Submissions rejected by per-tenant rate limits.",
		admCounter(func(st ingest.Stats) uint64 { return st.Throttled }))
	r.CounterFunc("muri_ingest_batches_total", "Admission batches drained into the engine.",
		admCounter(func(st ingest.Stats) uint64 { return st.Batches }))
	r.GaugeFunc("muri_ingest_queue_depth", "Submissions queued awaiting engine admission.",
		func() float64 { return float64(s.adm.Depth()) })
	s.batchHist = r.Histogram("muri_ingest_batch_size",
		"Jobs admitted per batched admission round.",
		metrics.ExponentialBounds(1, 2, 16)...)
	s.submitWaitHist = r.Histogram("muri_submit_latency_seconds",
		"Queue wait between submission accept and engine admission.",
		metrics.ExponentialBounds(1e-6, 10, 8)...)

	// Online predictor: func-backed off the estimator's own lock (never
	// s.mu), so scrapes agree with the status RPC's PredictorSummary.
	r.GaugeFunc("muri_predictor_models", "Models with a learned duration belief.",
		func() float64 { m, _, _ := s.est.Stats(); return float64(m) })
	r.GaugeFunc("muri_predictor_samples", "Completions retained across model beliefs (re-seeds reset a model).",
		func() float64 { _, n, _ := s.est.Stats(); return float64(n) })
	r.CounterFunc("muri_predictor_completions_total", "Lifetime completions folded into the predictor.",
		func() uint64 { return uint64(s.est.Completions()) })
	r.CounterFunc("muri_predictor_reseeds_total", "Beliefs re-seeded after a deviating completion.",
		func() uint64 { _, _, rs := s.est.Stats(); return uint64(rs) })
	r.GaugeFunc("muri_predictor_error_mean", "Mean absolute relative prediction error over scored completions.",
		func() float64 { e, _ := s.est.Error(); return e })
	// Predictor calibration: error-band coverage plus predicted vs
	// measured per-stage service sums (workload.Resources order).
	r.GaugeFunc("muri_predictor_band_coverage", "Fraction of scored completions whose measured total fell inside the predicted error band.",
		func() float64 { c, _, _, _ := s.est.Calibration(); return c })
	r.GaugeFunc("muri_predictor_band_checks", "Scored completions behind the band-coverage rate.",
		func() float64 { _, n, _, _ := s.est.Calibration(); return float64(n) })
	for res := 0; res < workload.NumResources; res++ {
		stage := workload.Resource(res).String()
		r.GaugeFunc("muri_predictor_stage_predicted_seconds_"+stage,
			"Predicted per-iteration "+stage+" stage seconds, summed over scored completions.",
			func() float64 { _, _, p, _ := s.est.Calibration(); return p[res] })
		r.GaugeFunc("muri_predictor_stage_measured_seconds_"+stage,
			"Measured per-iteration "+stage+" stage seconds, summed over scored completions.",
			func() float64 { _, _, _, m := s.est.Calibration(); return m[res] })
	}
	r.CounterFunc("muri_sched_reprofiles_total", "Completions that tripped the engine's re-profiling threshold.",
		engCounter(func() int { return s.eng.Stats().Reprofiles }))

	// Virtual JCT spans seconds to hours on scaled runs; round latency is
	// wall time in the microsecond-to-second range.
	s.jctHist = r.Histogram("muri_jct_seconds",
		"Virtual job completion time of finished jobs.",
		metrics.ExponentialBounds(1, 2, 16)...)
	// Per-cause wait attribution: each finished job contributes one
	// observation per cause with nonzero time, in virtual seconds. The
	// sum over causes of _sum equals the total attributed JCT exactly.
	s.waitAttrHist = r.HistogramVec("muri_wait_attribution_seconds",
		"Virtual seconds of finished jobs' lifetime attributed to each wait cause.",
		"cause", metrics.ExponentialBounds(1, 2, 16)...)
	s.roundHist = r.Histogram("muri_round_latency_seconds",
		"Wall-clock latency of scheduling rounds.",
		metrics.ExponentialBounds(1e-6, 10, 8)...)

	// Durability & failover. Everything is func-backed off the same
	// state the status RPC's DurabilitySummary reads, so the two can
	// never disagree; all figures read 0 when the WAL is disabled.
	walCounter := func(pick func() uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.w == nil {
				return 0
			}
			return pick()
		}
	}
	r.CounterFunc("muri_wal_appends_total", "Records appended to the WAL.",
		walCounter(func() uint64 { a, _, _, _ := s.w.Stats(); return a }))
	r.CounterFunc("muri_wal_fsyncs_total", "WAL fsync batches flushed to disk.",
		walCounter(func() uint64 { _, f, _, _ := s.w.Stats(); return f }))
	r.CounterFunc("muri_wal_replayed_total", "Records replayed from the WAL at the last recovery.",
		walCounter(func() uint64 { return uint64(s.walReplayed) }))
	walGauge := func(pick func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.w == nil {
				return 0
			}
			return pick()
		}
	}
	r.GaugeFunc("muri_wal_lsn", "Last assigned WAL log sequence number.",
		walGauge(func() float64 { return float64(s.w.Position().LSN) }))
	r.GaugeFunc("muri_wal_segment", "Active WAL segment number (its first LSN).",
		walGauge(func() float64 { return float64(s.w.Position().Segment) }))
	r.GaugeFunc("muri_wal_offset", "Write offset into the active WAL segment.",
		walGauge(func() float64 { return float64(s.w.Position().Offset) }))
	r.GaugeFunc("muri_wal_snapshot_lsn", "LSN of the newest durable snapshot.",
		walGauge(func() float64 { _, _, lsn, _ := s.w.Stats(); return float64(lsn) }))
	r.GaugeFunc("muri_wal_snapshot_age_seconds", "Age of the newest durable snapshot.",
		walGauge(func() float64 {
			_, _, _, wall := s.w.Stats()
			if wall == 0 {
				return 0
			}
			return time.Since(time.Unix(0, wall)).Seconds()
		}))
	r.GaugeFunc("muri_role", "Daemon election role (0 solo, 1 leader, 2 standby, 3 fenced).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			switch s.role {
			case roleLeader:
				return 1
			case roleStandby:
				return 2
			case roleFenced:
				return 3
			}
			return 0
		})
	r.GaugeFunc("muri_term", "Current election term.",
		func() float64 { return float64(s.term.Load()) })
	r.GaugeFunc("muri_repl_standbys", "Standbys attached to the replication stream.",
		func() float64 {
			s.replMu.Lock()
			defer s.replMu.Unlock()
			n := 0
			for _, sub := range s.subs {
				if !sub.gone {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeFunc("muri_repl_lag_records", "Replication lag in WAL records (leader: max over standbys).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.replLagLocked())
		})
	s.fsyncHist = r.Histogram("muri_wal_fsync_seconds",
		"WAL fsync batch latency.",
		metrics.ExponentialBounds(1e-6, 10, 8)...)
	s.applyLagHist = r.Histogram("muri_repl_apply_lag_seconds",
		"Standby apply lag behind the leader append (wall clock).",
		metrics.ExponentialBounds(1e-6, 10, 8)...)
}

// Metrics exposes the daemon's registry (tests scrape it directly).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// TraceJSON snapshots the daemon's trace ring as Chrome trace-event
// JSON. The ring keeps recording; the snapshot is a copy.
func (s *Server) TraceJSON() ([]byte, error) { return s.tracer.ExportJSON() }

// DebugHandler serves the observability endpoints murisched binds on
// -debug-addr: /metrics (Prometheus text), /debug/vars (expvar),
// /debug/pprof (the standard profiles), and — so a single port works for
// small deployments — the HTTP submission API (see APIHandler).
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.apiRoutes(mux)
	return mux
}
