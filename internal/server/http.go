// HTTP/JSON front door: the second ingest transport next to the framed
// proto stream. Browsers, curl, and non-Go clients submit jobs here;
// the same admission queue, rate limits, and backpressure apply, so a
// rejection carries the identical typed code on both transports.
//
//	POST /api/v1/submit        {"job": {...JobSpec...}}      → SubmitResult
//	POST /api/v1/submit/batch  {"jobs": [{...}, ...]}        → {"results": [...]}
//	GET  /api/v1/status                                      → StatusAck
//
// Backpressure maps onto status codes: 429 for queue-full and
// per-tenant throttling (with Retry-After), 503 while draining, 400 for
// malformed specs. Batch submissions always answer 200 with per-job
// results, because one batch can mix outcomes.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"muri/internal/ingest"
	"muri/internal/proto"
)

// maxHTTPBody bounds a submission body, mirroring proto.MaxMessageSize
// on the framed transport.
const maxHTTPBody = proto.MaxMessageSize

// APIHandler serves the HTTP submission API on its own mux (murisched
// -http-addr). DebugHandler mounts the same routes next to /metrics.
func (s *Server) APIHandler() http.Handler {
	mux := http.NewServeMux()
	s.apiRoutes(mux)
	return mux
}

// apiRoutes registers the API endpoints onto mux.
func (s *Server) apiRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/api/v1/submit", s.handleHTTPSubmit)
	mux.HandleFunc("/api/v1/submit/batch", s.handleHTTPSubmitBatch)
	mux.HandleFunc("/api/v1/status", s.handleHTTPStatus)
}

// submitResult converts a submit outcome to the shared wire result.
func submitResult(id int64, err error) proto.SubmitResult {
	ack := submitAck(id, err)
	return proto.SubmitResult{ID: ack.ID, Err: ack.Err, Code: ack.Code, Retryable: ack.Retryable}
}

// statusFor maps a rejection onto its HTTP status code.
func statusFor(err error) int {
	if err == nil {
		return http.StatusOK
	}
	var ie *ingest.Error
	if errors.As(err, &ie) {
		switch {
		case ie == ingest.ErrDraining:
			return http.StatusServiceUnavailable
		case ie.Retryable:
			return http.StatusTooManyRequests
		}
	}
	return http.StatusBadRequest
}

// writeJSON renders v with the given status. Retryable rejections get a
// Retry-After hint sized to the scheduling interval (the queue drains
// once per round, so that is when capacity reappears).
func (s *Server) writeJSON(w http.ResponseWriter, status int, retryable bool, v any) {
	w.Header().Set("Content-Type", "application/json")
	if retryable {
		secs := int(s.cfg.Interval.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody unmarshals a bounded request body into v, answering false
// (with the error already written) on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeJSON(w, http.StatusMethodNotAllowed, false,
			proto.SubmitResult{Err: "use POST", Code: proto.CodeInvalid})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHTTPBody))
	if err := dec.Decode(v); err != nil {
		s.writeJSON(w, http.StatusBadRequest, false,
			proto.SubmitResult{Err: "bad request body: " + err.Error(), Code: proto.CodeInvalid})
		return false
	}
	return true
}

// handleHTTPSubmit admits one job.
func (s *Server) handleHTTPSubmit(w http.ResponseWriter, r *http.Request) {
	var req proto.HTTPSubmitRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id, err := s.submit(req.Job)
	res := submitResult(id, err)
	s.writeJSON(w, statusFor(err), res.Retryable, res)
}

// handleHTTPSubmitBatch admits many jobs in one request: one admission
// kick for the whole body, per-job results in order.
func (s *Server) handleHTTPSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req proto.HTTPBatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	results := make([]proto.SubmitResult, len(req.Jobs))
	for i, spec := range req.Jobs {
		id, err := s.submit(spec)
		results[i] = submitResult(id, err)
	}
	s.writeJSON(w, http.StatusOK, false, proto.HTTPBatchResponse{Results: results})
}

// handleHTTPStatus serves the same snapshot as the status RPC.
func (s *Server) handleHTTPStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeJSON(w, http.StatusMethodNotAllowed, false,
			proto.SubmitResult{Err: "use GET", Code: proto.CodeInvalid})
		return
	}
	st := s.status()
	s.writeJSON(w, http.StatusOK, false, st)
}
