package server

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"muri/internal/crashpoint"
	"muri/internal/engine"
	"muri/internal/executor"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/telemetry"
)

// decisionTap collects decision strings across goroutines, like the
// parity harness in internal/engine.
type decisionTap struct {
	mu      sync.Mutex
	entries []string
}

func (s *decisionTap) observe(d engine.Decision) {
	s.mu.Lock()
	s.entries = append(s.entries, d.String())
	s.mu.Unlock()
}

func (s *decisionTap) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.entries...)
}

// dialRetry dials the daemon, retrying while it restarts.
func dialRetry(t *testing.T, addr string) *Client {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitStatus polls the status RPC until cond holds.
func waitStatus(t *testing.T, c *Client, desc string, cond func(proto.StatusAck) bool) proto.StatusAck {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatalf("status while waiting for %s: %v", desc, err)
		}
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; status %+v", desc, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func stateOf(st proto.StatusAck, id int64) string {
	for _, j := range st.Jobs {
		if j.ID == id {
			return j.State
		}
	}
	return ""
}

// parityStages make one iteration take one virtual second (0.5ms wall at
// the test time scale) and skip the profiling dry run.
var parityStages = [4]time.Duration{250 * time.Millisecond, 250 * time.Millisecond,
	250 * time.Millisecond, 250 * time.Millisecond}

// killRestartStream runs the kill-restart parity script and returns the
// observed decision stream. With crash=false it is the uninterrupted
// reference run; with crash=true the daemon is crashed (WAL abandoned
// without flushing, as in SIGKILL) between the preemption and the short
// job's completion, then restarted from the state dir. The executor
// keeps its running group alive across the outage and offers it back
// for adoption, so the recovered stream must be byte-identical.
func killRestartStream(t *testing.T, crash bool) []string {
	t.Helper()
	tap := &decisionTap{}
	cfg := Config{
		Policy:             sched.SRTF(),
		Interval:           20 * time.Millisecond,
		TimeScale:          0.0005,
		ReportEvery:        10 * time.Millisecond,
		StarvationPatience: 1 << 30,
		Observer:           tap.observe,
		Logf:               t.Logf,
	}
	if crash {
		cfg.StateDir = t.TempDir()
		cfg.FsyncEvery = 1 // every observed decision is durable
		cfg.SnapshotEvery = 50 * time.Millisecond
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	serve := func(s *Server, l net.Listener) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Serve(l)
		}()
	}
	serve(srv, ln)
	cur := srv // the server cleanup must close (swapped on restart)
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		cur.Close()
		wg.Wait()
	}()
	// RunWithRetry keeps the group running through the daemon outage and
	// re-registers against the restarted daemon, offering it back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		agent := &executor.Agent{MachineID: "machine-0", GPUs: 8, Logf: t.Logf}
		_ = agent.RunWithRetry(ctx, addr, time.Second)
	}()

	c := dialRetry(t, addr)
	defer func() { c.Close() }()
	waitStatus(t, c, "executor registration",
		func(st proto.StatusAck) bool { return st.Executors == 1 })
	submit := func(iters int64) {
		t.Helper()
		if _, err := c.SubmitSpec(proto.JobSpec{
			Model: "gpt2", GPUs: 8, Iterations: iters, Stages: parityStages,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Long job starts; a shorter job preempts it under SRTF.
	submit(1200)
	waitStatus(t, c, "job 1 running",
		func(st proto.StatusAck) bool { return stateOf(st, 1) == "running" })
	submit(600)
	waitStatus(t, c, "job 2 preempted job 1", func(st proto.StatusAck) bool {
		return stateOf(st, 2) == "running" && stateOf(st, 1) == "pending"
	})
	if crash {
		prefix := len(tap.snapshot())
		srv.Crash()
		c.Close()
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		srv2 := New(cfg) // same state dir, same tap
		serve(srv2, ln2)
		cur = srv2
		c = dialRetry(t, addr)
		waitStatus(t, c, "executor re-registration",
			func(st proto.StatusAck) bool { return st.Executors == 1 })
		waitStatus(t, c, "running group adopted", func(st proto.StatusAck) bool {
			return stateOf(st, 2) != "pending"
		})
		// Recovery replays silently and adoption emits no decisions: the
		// tap must not have moved.
		if got := len(tap.snapshot()); got != prefix {
			t.Fatalf("recovery emitted %d decisions, want 0: %v",
				got-prefix, tap.snapshot()[prefix:])
		}
	}
	st, err := c.WaitAllDone(60*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 {
		t.Fatalf("done = %d, want 2", st.Done)
	}
	if crash {
		// Zero running groups lost: the preserved group was adopted, never
		// requeued as machine-lost.
		if st.Faults != nil && st.Faults.Requeues != 0 {
			t.Fatalf("fault summary after recovery = %+v, want no requeues", st.Faults)
		}
		if st.Durability == nil || st.Durability.Role != "solo" {
			t.Fatalf("durability summary after recovery = %+v, want solo role", st.Durability)
		}
	}
	return tap.snapshot()
}

// TestKillRestartParity is the tentpole acceptance test: crash the
// daemon mid-run (unsynced WAL tail abandoned), restart it from the
// state dir, and require the decision stream — replayed prefix plus
// live tail — byte-identical to an uninterrupted run of the same
// script.
func TestKillRestartParity(t *testing.T) {
	want := []string{
		"launch exclusive:1",
		"kill exclusive:1",
		"launch exclusive:2",
		"launch exclusive:1",
	}
	ref := killRestartStream(t, false)
	got := killRestartStream(t, true)
	if strings.Join(ref, "\n") != strings.Join(want, "\n") {
		t.Errorf("reference stream = %v, want %v", ref, want)
	}
	if strings.Join(got, "\n") != strings.Join(ref, "\n") {
		t.Errorf("recovered stream diverges:\n  recovered = %v\n  reference = %v", got, ref)
	}
}

// TestRecoveryRequeuesUnadoptedOrphans covers the adoption grace
// expiring: the executor never comes back, so the recovered daemon
// treats its machine as lost and requeues the orphaned jobs, which a
// fresh executor then runs to completion.
func TestRecoveryRequeuesUnadoptedOrphans(t *testing.T) {
	cfg := Config{
		Policy:             sched.SRTF(),
		Interval:           20 * time.Millisecond,
		TimeScale:          0.0005,
		ReportEvery:        10 * time.Millisecond,
		StarvationPatience: 1 << 30,
		LivenessTimeout:    500 * time.Millisecond,
		Logf:               t.Logf,
		StateDir:           t.TempDir(),
		FsyncEvery:         1,
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	actx, acancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		agent := &executor.Agent{MachineID: "machine-0", GPUs: 8, Logf: t.Logf}
		_ = agent.Run(actx, addr)
	}()
	c := dialRetry(t, addr)
	waitStatus(t, c, "executor registration",
		func(st proto.StatusAck) bool { return st.Executors == 1 })
	if _, err := c.SubmitSpec(proto.JobSpec{
		Model: "gpt2", GPUs: 8, Iterations: 800, Stages: parityStages,
	}); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, "job running",
		func(st proto.StatusAck) bool { return stateOf(st, 1) == "running" })
	srv.Crash()
	c.Close()
	acancel() // the original executor is gone for good
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(cfg)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv2.Serve(ln2)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		srv2.Close()
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		agent := &executor.Agent{MachineID: "machine-1", GPUs: 8, Logf: t.Logf}
		_ = agent.Run(ctx, addr)
	}()
	c = dialRetry(t, addr)
	defer c.Close()
	st, err := c.WaitAllDone(60*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1", st.Done)
	}
	if st.Faults == nil || st.Faults.Requeues != 1 {
		t.Fatalf("fault summary = %+v, want exactly 1 requeue (orphan grace expired)", st.Faults)
	}
	// The requeue spent no retry budget (machine loss, not a job fault):
	// the job's budget-backed fault count stays zero.
	if st.Jobs[0].Faults != 0 {
		t.Errorf("job spent %d retry-budget faults, want 0 for an adoption expiry", st.Jobs[0].Faults)
	}
}

// TestFailoverPromotesStandbyAndFencesOldLeader wires a leader/standby
// pair, crashes the leader mid-run, and requires the standby to promote
// within the lease window, adopt the surviving group (zero running
// groups lost), and finish the workload — while the restarted old
// leader fences itself on first contact with the new term and rejects
// writes.
func TestFailoverPromotesStandbyAndFencesOldLeader(t *testing.T) {
	const ttl = 300 * time.Millisecond
	base := Config{
		Policy:             sched.SRTF(),
		Interval:           20 * time.Millisecond,
		TimeScale:          0.0005,
		ReportEvery:        10 * time.Millisecond,
		StarvationPatience: 1 << 30,
		Logf:               t.Logf,
		FsyncEvery:         1,
		SnapshotEvery:      time.Hour,
		ElectionTTL:        ttl,
	}
	dirL, dirS := t.TempDir(), t.TempDir()

	lnL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrL := lnL.Addr().String()
	lnS, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrS := lnS.Addr().String()

	cfgL := base
	cfgL.StateDir = dirL
	srvL := New(cfgL)
	cfgS := base
	cfgS.StateDir = dirS
	cfgS.StandbyOf = addrL
	cfgS.StandbyID = "sb0"
	srvS := New(cfgS)

	var wg sync.WaitGroup
	serve := func(s *Server, l net.Listener) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Serve(l)
		}()
	}
	serve(srvL, lnL)
	serve(srvS, lnS)
	ctx, cancel := context.WithCancel(context.Background())
	var srvL2 *Server
	defer func() {
		cancel()
		srvL.Close()
		srvS.Close()
		if srvL2 != nil {
			srvL2.Close()
		}
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		agent := &executor.Agent{MachineID: "machine-0", GPUs: 8, Logf: t.Logf}
		_ = agent.RunHA(ctx, []string{addrL, addrS}, time.Second)
	}()

	cL := dialRetry(t, addrL)
	defer cL.Close()
	waitStatus(t, cL, "executor registration",
		func(st proto.StatusAck) bool { return st.Executors == 1 })
	waitStatus(t, cL, "standby attached", func(st proto.StatusAck) bool {
		return st.Durability != nil && st.Durability.Standbys == 1
	})
	if _, err := cL.SubmitSpec(proto.JobSpec{
		Model: "gpt2", GPUs: 8, Iterations: 1500, Stages: parityStages,
	}); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, cL, "job running",
		func(st proto.StatusAck) bool { return stateOf(st, 1) == "running" })
	waitStatus(t, cL, "replication caught up", func(st proto.StatusAck) bool {
		return st.Durability != nil && st.Durability.Role == "leader" && st.Durability.ReplLag == 0
	})

	crashed := time.Now()
	srvL.Crash()
	cS := dialRetry(t, addrS)
	defer cS.Close()
	waitStatus(t, cS, "standby promotion", func(st proto.StatusAck) bool {
		return st.Durability != nil && st.Durability.Role == "leader"
	})
	if elapsed := time.Since(crashed); elapsed > 2*time.Second {
		t.Errorf("promotion took %v, want within the lease window (ttl %v)", elapsed, ttl)
	}
	waitStatus(t, cS, "executor re-attached to new leader",
		func(st proto.StatusAck) bool { return st.Executors == 1 })
	waitStatus(t, cS, "running group adopted",
		func(st proto.StatusAck) bool { return st.Running == 1 })
	// The new leader accepts writes: a second job runs after the first.
	if _, err := cS.SubmitSpec(proto.JobSpec{
		Model: "gpt2", GPUs: 8, Iterations: 200, Stages: parityStages,
	}); err != nil {
		t.Fatalf("submit to promoted leader: %v", err)
	}
	st, err := cS.WaitAllDone(60*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 {
		t.Fatalf("done = %d, want 2", st.Done)
	}
	// Zero running groups lost across the failover: the adopted group was
	// never requeued, so the fault ledger records nothing.
	if st.Faults != nil && (st.Faults.Requeues != 0 || st.Faults.Crashes != 0) {
		t.Fatalf("fault summary after failover = %+v, want clean ledger", st.Faults)
	}
	if st.Durability == nil || st.Durability.Term == 0 {
		t.Fatalf("promoted leader durability = %+v, want a positive term", st.Durability)
	}
	newTerm := st.Durability.Term

	// Restart the deposed leader from its own state dir (fresh port; the
	// executors stay with the new leader). It comes back believing it can
	// lead — until the first contact carrying the new term fences it.
	lnL2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvL2 = New(cfgL)
	serve(srvL2, lnL2)
	addrL2 := lnL2.Addr().String()
	conn, err := net.Dial("tcp", addrL2)
	if err != nil {
		t.Fatal(err)
	}
	codec := proto.NewCodec(conn)
	if err := codec.Write(&proto.Message{Type: proto.TypeRegister, Register: &proto.Register{
		MachineID: "fencer", GPUs: 1, SeenTerm: newTerm,
	}}); err != nil {
		t.Fatal(err)
	}
	m, err := codec.Read()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if m.Type != proto.TypeRegisterAck || m.RegisterAck == nil {
		t.Fatalf("unexpected reply %s", m.Type)
	}
	if m.RegisterAck.OK || !strings.Contains(m.RegisterAck.Reason, "not_leader") {
		t.Fatalf("stale leader accepted a registration carrying term %d: %+v", newTerm, m.RegisterAck)
	}
	cL2 := dialRetry(t, addrL2)
	defer cL2.Close()
	if _, err := cL2.Submit("gpt2", 1, 10); err == nil ||
		!strings.Contains(err.Error(), "leader") {
		t.Fatalf("fenced leader accepted a write, err = %v", err)
	}
	fst, err := cL2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if fst.Durability == nil || fst.Durability.Role != "fenced" {
		t.Fatalf("stale leader durability = %+v, want fenced role", fst.Durability)
	}
}

// TestDebugCrashArmsCrashpoint covers the murictl-facing crash
// injection path: the RPC arms a named point and the daemon's next
// scheduling round trips it.
func TestDebugCrashArmsCrashpoint(t *testing.T) {
	defer crashpoint.Reset()
	var mu sync.Mutex
	var hits []string
	crashpoint.SetHandler(func(p string) {
		mu.Lock()
		hits = append(hits, p)
		mu.Unlock()
	})
	h := startHarness(t, Config{UnsafeDebug: true}, 1, nil)
	c := h.client(t)
	if err := c.DebugCrash(crashpoint.MidRound); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(hits)
		mu.Unlock()
		if n > 0 {
			mu.Lock()
			got := hits[0]
			mu.Unlock()
			if got != crashpoint.MidRound {
				t.Fatalf("crash point hit = %q, want %q", got, crashpoint.MidRound)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("armed crash point never hit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Points are one-shot: with the handler observing instead of dying,
	// the daemon keeps scheduling.
	if _, err := c.Submit("gpt2", 1, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestDebugCrashRefusedWithoutFlag: the crash RPC is a no-op unless the
// daemon opted in with -unsafe-debug.
func TestDebugCrashRefusedWithoutFlag(t *testing.T) {
	defer crashpoint.Reset()
	h := startHarness(t, Config{}, 0, nil)
	c := h.client(t)
	err := c.DebugCrash(crashpoint.MidRound)
	if err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("debug crash without -unsafe-debug: err = %v, want disabled", err)
	}
}

// TestDurabilityMetricsMatchStatus extends the metrics≡status
// acceptance to the durability surface: the muri_wal_* and muri_repl_*
// samples must equal the DurabilitySummary the status RPC reports.
func TestDurabilityMetricsMatchStatus(t *testing.T) {
	h := startHarness(t, Config{
		StateDir:      t.TempDir(),
		FsyncEvery:    1,
		SnapshotEvery: 25 * time.Millisecond,
	}, 1, nil)
	c := h.client(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit("gpt2", 1, 30); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Let the post-drain snapshot land so SnapshotLSN is stable between
	// the scrape and the status snapshot.
	time.Sleep(150 * time.Millisecond)
	rec := httptest.NewRecorder()
	h.srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples, err := telemetry.ParsePrometheus(rec.Body.String())
	if err != nil {
		t.Fatalf("scrape is not valid Prometheus text: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	d := st.Durability
	if d == nil {
		t.Fatal("status carries no durability summary")
	}
	if d.Role != "solo" {
		t.Fatalf("role = %q, want solo", d.Role)
	}
	for name, want := range map[string]float64{
		"muri_wal_appends_total":  float64(d.Appends),
		"muri_wal_fsyncs_total":   float64(d.Fsyncs),
		"muri_wal_replayed_total": 0,
		"muri_wal_lsn":            float64(d.WALLSN),
		"muri_wal_segment":        float64(d.WALSegment),
		"muri_wal_offset":         float64(d.WALOffset),
		"muri_wal_snapshot_lsn":   float64(d.SnapshotLSN),
		"muri_role":               0, // solo
		"muri_term":               float64(d.Term),
		"muri_repl_standbys":      float64(d.Standbys),
		"muri_repl_lag_records":   float64(d.ReplLag),
	} {
		got, ok := samples[name]
		if !ok {
			t.Errorf("scrape missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, status says %v", name, got, want)
		}
	}
	if d.Appends == 0 || d.Fsyncs == 0 || d.WALLSN == 0 {
		t.Errorf("durability summary never counted WAL work: %+v", d)
	}
	if d.SnapshotLSN == 0 {
		t.Errorf("snapshot cadence never published a snapshot: %+v", d)
	}
	if got := samples["muri_wal_fsync_seconds_count"]; int(got) == 0 {
		t.Error("fsync-latency histogram never observed a flush")
	}
	if age, ok := samples["muri_wal_snapshot_age_seconds"]; !ok || age < 0 {
		t.Errorf("muri_wal_snapshot_age_seconds = %v (present %v), want non-negative", age, ok)
	}
}
