// Tests for the admission front door as wired into the daemon: kick
// collapsing under bursts, typed backpressure over both transports,
// per-tenant throttling, batch RPCs, and the HTTP/JSON API.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"muri/internal/ingest"
	"muri/internal/proto"
	"muri/internal/sched"
)

// pendSpec is a job that runs long enough to outlive any test: explicit
// stages skip profiling, and ~12 virtual days of iterations keep it
// from completing.
func pendSpec(tenant string) proto.JobSpec {
	return proto.JobSpec{
		Model: "gpt2", GPUs: 1, Iterations: 1 << 20, Tenant: tenant,
		Stages: [4]time.Duration{250 * time.Millisecond, 250 * time.Millisecond,
			250 * time.Millisecond, 250 * time.Millisecond},
	}
}

// TestBurstSubmissionsCollapseRounds is the kick-collapse regression
// test: a 1k-job burst over the pipelined stream must cost a handful of
// engine rounds, not one per job. Before batched admission every submit
// kicked its own round; the issue's bar is a ≥10× collapse.
func TestBurstSubmissionsCollapseRounds(t *testing.T) {
	h := startHarness(t, Config{
		Policy:        sched.FIFO(), // non-preemptive, cheap rounds at depth 1000
		Interval:      time.Minute,  // rounds come from kicks, not the ticker
		MaxBatchDelay: 30 * time.Millisecond,
	}, 1, nil)
	status := h.client(t)
	st0, err := status.Status()
	if err != nil {
		t.Fatal(err)
	}
	before := st0.Engine.Rounds

	const n = 1000
	stream := h.client(t).SubmitStream(256)
	var got int
	var firstErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range stream.Results() {
			got++
			if res.Err != nil && firstErr == nil {
				firstErr = res.Err
			}
		}
	}()
	for i := 0; i < n; i++ {
		if err := stream.Send(pendSpec("")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	stream.CloseSend()
	<-done
	if err := stream.Err(); err != nil {
		t.Fatalf("stream died: %v", err)
	}
	if got != n || firstErr != nil {
		t.Fatalf("acks = %d (first error %v), want %d clean", got, firstErr, n)
	}

	waitFor(t, 20*time.Second, func() bool {
		st, err := status.Status()
		return err == nil && st.Pending+st.Running == n
	}, "jobs never all reached the engine")

	st, err := status.Status()
	if err != nil {
		t.Fatal(err)
	}
	rounds := st.Engine.Rounds - before
	if rounds > n/10 {
		t.Errorf("1k-job burst cost %d engine rounds, want ≤ %d (≥10× collapse)", rounds, n/10)
	}
	if st.Ingest == nil || st.Ingest.Accepted != n || st.Ingest.QueueDepth != 0 {
		t.Errorf("ingest summary = %+v, want %d accepted and drained", st.Ingest, n)
	}
	if st.Ingest.Batches == 0 || st.Ingest.Batches > n/10 {
		t.Errorf("accepted %d jobs across %d admission batches, want 1..%d", n, st.Ingest.Batches, n/10)
	}
	t.Logf("burst of %d jobs: %d engine rounds, %d admission batches", n, rounds, st.Ingest.Batches)
}

// TestIngestBackpressureAndShutdown saturates the bounded queue from
// concurrent streams (run under -race): rejects must be the typed
// retryable queue-full sentinel, the daemon must stay responsive, and a
// Stop/Close teardown must not leak goroutines.
func TestIngestBackpressureAndShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Run("saturate", func(t *testing.T) {
		h := startHarness(t, Config{
			IngestCapacity: 8,
			Interval:       time.Hour,
			// A long linger holds the drain back so concurrent submitters
			// deterministically overrun the 8-slot queue.
			MaxBatchDelay: 400 * time.Millisecond,
		}, 1, nil)
		const senders, per = 4, 10
		var mu sync.Mutex
		var accepted, rejected int
		var wg sync.WaitGroup
		for w := 0; w < senders; w++ {
			stream := h.client(t).SubmitStream(4)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for res := range stream.Results() {
					mu.Lock()
					switch {
					case res.Err == nil:
						accepted++
					case errors.Is(res.Err, ingest.ErrQueueFull):
						var ie *ingest.Error
						if !errors.As(res.Err, &ie) || !ie.Retryable {
							t.Errorf("queue-full result not typed retryable: %v", res.Err)
						}
						rejected++
					default:
						t.Errorf("unexpected submit error: %v", res.Err)
					}
					mu.Unlock()
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stream.CloseSend()
				for i := 0; i < per; i++ {
					if err := stream.Send(pendSpec("")); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if accepted+rejected != senders*per {
			t.Fatalf("acks = %d accepted + %d rejected, want %d total", accepted, rejected, senders*per)
		}
		if rejected == 0 {
			t.Fatal("40 submits into an 8-slot held queue produced no backpressure")
		}
		st, err := h.client(t).Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingest.Accepted != accepted || st.Ingest.Rejected != rejected {
			t.Errorf("ingest summary %+v, clients saw %d accepted / %d rejected",
				st.Ingest, accepted, rejected)
		}
		// Graceful stop: running groups won't finish within the context, so
		// Stop falls back to Close on expiry. Either way every loop exits.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = h.srv.Stop(ctx)
	})
	// The subtest's Cleanup tore the harness down; goroutines must return
	// to baseline (tolerance for runtime housekeeping).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew %d -> %d after teardown\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTenantThrottleOverWire drives the per-tenant token bucket through
// the RPC path: the sentinel survives the trip as a typed error.
func TestTenantThrottleOverWire(t *testing.T) {
	h := startHarness(t, Config{TenantRate: 0.001, TenantBurst: 2}, 1, nil)
	c := h.client(t)
	for i := 0; i < 2; i++ {
		if _, err := c.SubmitSpec(pendSpec("team-a")); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := c.SubmitSpec(pendSpec("team-a"))
	if !errors.Is(err, ingest.ErrThrottled) {
		t.Fatalf("over-burst submit returned %v, want ErrThrottled across the wire", err)
	}
	// Another tenant's bucket is untouched.
	if _, err := c.SubmitSpec(pendSpec("team-b")); err != nil {
		t.Fatalf("other tenant throttled too: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.Throttled != 1 || st.Ingest.Accepted != 3 {
		t.Errorf("ingest summary = %+v, want 3 accepted / 1 throttled", st.Ingest)
	}
}

// TestSubmitBatchRPC sends one batch with a bad job in the middle:
// per-job results, valid jobs run to completion.
func TestSubmitBatchRPC(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	res, err := c.SubmitBatch([]proto.JobSpec{
		{Model: "gpt2", GPUs: 1, Iterations: 30},
		{Model: "no-such-model", GPUs: 1, Iterations: 30},
		{Model: "dqn", GPUs: 1, Iterations: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].Err != "" || res[0].ID != 1 {
		t.Errorf("result[0] = %+v, want accepted with ID 1", res[0])
	}
	if res[1].Err == "" || res[1].Code != proto.CodeInvalid || res[1].Retryable {
		t.Errorf("result[1] = %+v, want non-retryable invalid rejection", res[1])
	}
	if res[2].Err != "" || res[2].ID != 2 {
		t.Errorf("result[2] = %+v, want accepted with ID 2", res[2])
	}
	st, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 {
		t.Errorf("done = %d, want 2", st.Done)
	}
}

// httpPost posts a JSON body and decodes the response into out.
func httpPost(t *testing.T, hd http.Handler, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	hd.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s: response %q is not JSON: %v", path, rec.Body.String(), err)
		}
	}
	return rec
}

// TestHTTPSubmitEndpoint exercises the JSON API against a daemon whose
// schedule loop is not running (New without Serve): nothing drains the
// queue, so the capacity-2 server rejects the third job with a
// deterministic 429.
func TestHTTPSubmitEndpoint(t *testing.T) {
	s := New(Config{IngestCapacity: 2, Logf: t.Logf})
	api := s.APIHandler()

	var res proto.SubmitResult
	rec := httpPost(t, api, "/api/v1/submit", `{"job":{"model":"gpt2","gpus":1,"iterations":10}}`, &res)
	if rec.Code != http.StatusOK || res.ID != 1 || res.Err != "" {
		t.Fatalf("first submit: HTTP %d, result %+v", rec.Code, res)
	}
	rec = httpPost(t, api, "/api/v1/submit", `{"job":{"model":"no-such-model","iterations":10}}`, &res)
	if rec.Code != http.StatusBadRequest || res.Code != proto.CodeInvalid || res.Retryable {
		t.Errorf("bad model: HTTP %d, result %+v, want 400 invalid", rec.Code, res)
	}
	rec = httpPost(t, api, "/api/v1/submit", `not json`, &res)
	if rec.Code != http.StatusBadRequest || res.Code != proto.CodeInvalid {
		t.Errorf("garbage body: HTTP %d, result %+v, want 400 invalid", rec.Code, res)
	}
	if rec := httpPost(t, api, "/api/v1/submit", `{"job":{"model":"gpt2","gpus":1,"iterations":10}}`, &res); rec.Code != http.StatusOK {
		t.Fatalf("second submit: HTTP %d", rec.Code)
	}
	// Queue full at capacity 2: 429 with the typed code and a Retry-After.
	rec = httpPost(t, api, "/api/v1/submit", `{"job":{"model":"gpt2","gpus":1,"iterations":10}}`, &res)
	if rec.Code != http.StatusTooManyRequests || res.Code != proto.CodeQueueFull || !res.Retryable {
		t.Errorf("over capacity: HTTP %d, result %+v, want 429 queue_full retryable", rec.Code, res)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}

	var st proto.StatusAck
	req := httptest.NewRequest("GET", "/api/v1/status", nil)
	srec := httptest.NewRecorder()
	api.ServeHTTP(srec, req)
	if srec.Code != http.StatusOK {
		t.Fatalf("status: HTTP %d", srec.Code)
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil || st.Ingest.QueueDepth != 2 || st.Ingest.Accepted != 2 || st.Ingest.Rejected != 1 {
		t.Errorf("status ingest = %+v, want depth 2, 2 accepted, 1 rejected", st.Ingest)
	}

	// Wrong methods answer 405 with an Allow header.
	if rec := httptest.NewRecorder(); true {
		api.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/submit", nil))
		if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "POST" {
			t.Errorf("GET submit: HTTP %d Allow %q", rec.Code, rec.Header().Get("Allow"))
		}
	}
}

// TestHTTPBatchEndpoint posts one batch with a mix of outcomes: always
// 200, per-job results in order.
func TestHTTPBatchEndpoint(t *testing.T) {
	s := New(Config{IngestCapacity: 1, Logf: t.Logf})
	var resp proto.HTTPBatchResponse
	body := `{"jobs":[
		{"model":"gpt2","gpus":1,"iterations":10},
		{"model":"no-such-model","iterations":10},
		{"model":"dqn","gpus":1,"iterations":10}]}`
	rec := httpPost(t, s.APIHandler(), "/api/v1/submit/batch", body, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: HTTP %d", rec.Code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(resp.Results))
	}
	if r := resp.Results[0]; r.Err != "" || r.ID != 1 {
		t.Errorf("results[0] = %+v, want accepted ID 1", r)
	}
	if r := resp.Results[1]; r.Code != proto.CodeInvalid {
		t.Errorf("results[1] = %+v, want invalid", r)
	}
	// Capacity 1 is spent: the third job in the same batch hits queue-full.
	if r := resp.Results[2]; r.Code != proto.CodeQueueFull || !r.Retryable {
		t.Errorf("results[2] = %+v, want retryable queue_full", r)
	}
}

// TestDebugHandlerMountsAPI checks the single-port deployment shape:
// -debug-addr serves the submission API next to /metrics.
func TestDebugHandlerMountsAPI(t *testing.T) {
	s := New(Config{Logf: t.Logf})
	var res proto.SubmitResult
	rec := httpPost(t, s.DebugHandler(), "/api/v1/submit", `{"job":{"model":"gpt2","gpus":1,"iterations":10}}`, &res)
	if rec.Code != http.StatusOK || res.ID != 1 {
		t.Errorf("submit via debug mux: HTTP %d, result %+v", rec.Code, res)
	}
}

// TestStreamDrainingRejection: a daemon in drain mode answers streamed
// submits with the non-retryable draining sentinel instead of hanging.
func TestStreamDrainingRejection(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	h.srv.adm.SetDraining(true)
	stream := h.client(t).SubmitStream(4)
	if err := stream.Send(pendSpec("")); err != nil {
		t.Fatal(err)
	}
	stream.CloseSend()
	res, ok := <-stream.Results()
	if !ok {
		t.Fatalf("stream closed without a result: %v", stream.Err())
	}
	if !errors.Is(res.Err, ingest.ErrDraining) {
		t.Fatalf("draining submit returned %v, want ErrDraining", res.Err)
	}
	var ie *ingest.Error
	if !errors.As(res.Err, &ie) || ie.Retryable {
		t.Fatalf("draining error should be typed non-retryable: %v", res.Err)
	}
}

// TestStreamPipelinesManyAcks sanity-checks seq/ack bookkeeping at a
// window much smaller than the send count.
func TestStreamPipelinesManyAcks(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	stream := h.client(t).SubmitStream(8)
	const n = 100
	results := make([]StreamResult, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range stream.Results() {
			results = append(results, res)
		}
	}()
	for i := 0; i < n; i++ {
		if err := stream.Send(pendSpec("")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	stream.CloseSend()
	<-done
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Seq != uint64(i+1) || res.Err != nil || res.ID != int64(i+1) {
			t.Fatalf("results[%d] = %+v, want seq %d id %d", i, res, i+1, i+1)
		}
		if res.RTT <= 0 {
			t.Errorf("results[%d] has non-positive RTT %v", i, res.RTT)
		}
	}
	sum := fmt.Sprintf("%d acks in order", len(results))
	t.Log(sum)
}
