package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"muri/internal/explain"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/wal"
)

// TestExplainLiveMatchesWALRebuild is the byte-identity acceptance
// test: run a preemption-bearing workload against a durable daemon,
// capture each job's `explain` RPC text, SIGKILL-equivalently crash the
// daemon (WAL abandoned unsynced; FsyncEvery=1 makes every appended
// record durable anyway), then reconstruct the explanation offline from
// the state dir exactly as cmd/muritrace does. The reconstruction must
// equal the live RPC output byte-for-byte.
func TestExplainLiveMatchesWALRebuild(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Policy:             sched.SRTF(),
		StarvationPatience: 1 << 30,
		StateDir:           dir,
		FsyncEvery:         1,
		SnapshotEvery:      40 * time.Millisecond,
	}
	h := startHarness(t, cfg, 1, nil)
	c := h.client(t)
	submit := func(iters int64) int64 {
		t.Helper()
		id, err := c.SubmitSpec(proto.JobSpec{
			Model: "gpt2", GPUs: 8, Iterations: iters, Stages: parityStages,
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// Long job starts; a shorter one preempts it under SRTF, so job 1's
	// timeline carries service → capacity (preemptor identity) → service.
	id1 := submit(1200)
	waitStatus(t, c, "job 1 running",
		func(st proto.StatusAck) bool { return stateOf(st, id1) == "running" })
	id2 := submit(600)
	waitStatus(t, c, "job 2 preempted job 1", func(st proto.StatusAck) bool {
		return stateOf(st, id2) == "running" && stateOf(st, id1) == "pending"
	})
	if _, err := c.WaitAllDone(60*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	live := make(map[int64]string)
	for _, id := range []int64{id1, id2} {
		text, err := c.Explain(id)
		if err != nil {
			t.Fatalf("explain %d: %v", id, err)
		}
		if !strings.Contains(text, "completed") || !strings.Contains(text, explain.CauseService) {
			t.Errorf("explain %d missing lifecycle evidence:\n%s", id, text)
		}
		live[id] = text
	}
	if !strings.Contains(live[id1], "preemptions 1") {
		t.Errorf("job %d explanation does not show its preemption:\n%s", id1, live[id1])
	}
	// RPC edge cases: unknown jobs render the one-line miss; a missing
	// id is a wire error.
	if text, err := c.Explain(999); err != nil || !strings.Contains(text, "no provenance recorded") {
		t.Errorf("explain 999 = %q, %v; want a provenance miss", text, err)
	}
	if _, err := c.Explain(0); err == nil {
		t.Error("explain without a job id should be rejected")
	}

	// The wait-attribution histogram observed both completions, per
	// cause, and the predictor-calibration gauges are exported.
	rec := httptest.NewRecorder()
	h.srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, frag := range []string{
		`muri_wait_attribution_seconds_count{cause="service"} 2`,
		`muri_wait_attribution_seconds_bucket{cause="capacity"`,
		"muri_predictor_band_coverage",
		"muri_predictor_stage_predicted_seconds_gpu",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("metrics scrape missing %q", frag)
		}
	}

	h.srv.Crash()

	recov, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recov.Corruption != nil {
		t.Fatalf("unexpected corruption: %+v", recov.Corruption)
	}
	b := explain.NewBuilder()
	if recov.Snapshot != nil {
		if err := b.Restore(recov.Snapshot.Explain); err != nil {
			t.Fatalf("restore snapshot explain state: %v", err)
		}
	}
	for i := range recov.Records {
		b.Apply(&recov.Records[i])
	}
	for id, want := range live {
		if got := b.RenderJob(id); got != want {
			t.Errorf("job %d: offline reconstruction diverges from live RPC\nlive:\n%s\noffline:\n%s",
				id, want, got)
		}
	}
}
