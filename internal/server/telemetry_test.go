package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"muri/internal/telemetry"
)

// TestMetricsEndpointMatchesStatus is the acceptance criterion of the
// metrics surface: after a workload completes, a /metrics scrape must be
// valid Prometheus text whose round/admission/preemption/fault counters
// equal the EngineSummary the status RPC reports.
func TestMetricsEndpointMatchesStatus(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit("gpt2", 1, 30); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Scrape over HTTP, exactly as a Prometheus server would, then take a
	// status snapshot. Both read the same live engine state; with the
	// workload drained the counters are quiescent and must agree.
	rec := httptest.NewRecorder()
	h.srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	samples, err := telemetry.ParsePrometheus(rec.Body.String())
	if err != nil {
		t.Fatalf("scrape is not valid Prometheus text: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine == nil {
		t.Fatal("status carries no engine summary")
	}
	for name, want := range map[string]int{
		"muri_sched_rounds_total":      st.Engine.Rounds,
		"muri_sched_admissions_total":  st.Engine.Launches,
		"muri_sched_preemptions_total": st.Engine.Preemptions,
		"muri_sched_requeues_total":    st.Engine.Requeues,
		"muri_sched_deadletters_total": st.Engine.DeadLettered,
		"muri_queue_length":            st.Engine.QueueDepth,
	} {
		got, ok := samples[name]
		if !ok {
			t.Errorf("scrape missing %s", name)
			continue
		}
		if int(got) != want {
			t.Errorf("%s = %v, status says %d", name, got, want)
		}
	}
	if got := samples["muri_capacity_gpus_total"]; got != 8 {
		t.Errorf("muri_capacity_gpus_total = %v, want 8", got)
	}
	// Ingest metrics agree with the status RPC's IngestSummary the same
	// way: func-backed off one set of admitter counters.
	if st.Ingest == nil {
		t.Fatal("status carries no ingest summary")
	}
	for name, want := range map[string]int{
		"muri_ingest_accepted_total":  st.Ingest.Accepted,
		"muri_ingest_rejected_total":  st.Ingest.Rejected,
		"muri_ingest_throttled_total": st.Ingest.Throttled,
		"muri_ingest_batches_total":   st.Ingest.Batches,
		"muri_ingest_queue_depth":     st.Ingest.QueueDepth,
	} {
		got, ok := samples[name]
		if !ok {
			t.Errorf("scrape missing %s", name)
			continue
		}
		if int(got) != want {
			t.Errorf("%s = %v, status says %d", name, got, want)
		}
	}
	if st.Ingest.Accepted != 3 || st.Ingest.QueueDepth != 0 {
		t.Errorf("ingest summary = %+v, want 3 accepted and an empty queue", st.Ingest)
	}
	if got := samples["muri_ingest_batch_size_count"]; int(got) != st.Ingest.Batches {
		t.Errorf("batch-size histogram holds %v observations, %d batches drained", got, st.Ingest.Batches)
	}
	if got := samples["muri_submit_latency_seconds_count"]; int(got) != st.Ingest.Accepted {
		t.Errorf("submit-latency histogram holds %v observations, %d accepted", got, st.Ingest.Accepted)
	}
	if got := samples["muri_jct_seconds_count"]; int(got) != st.Done {
		t.Errorf("JCT histogram holds %v observations, %d jobs done", got, st.Done)
	}
	if samples["muri_round_latency_seconds_count"] == 0 {
		t.Error("round-latency histogram never observed a round")
	}
}

// TestTraceSnapshotRPC drives a workload, snapshots the daemon's trace
// over the wire, and checks the payload parses as Chrome trace JSON
// containing scheduler rounds and decisions on the virtual clock.
func TestTraceSnapshotRPC(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	if _, err := c.Submit("vgg19", 1, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	data, err := c.TraceSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	f, err := telemetry.ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("snapshot is not valid trace JSON: %v", err)
	}
	rounds, launches := 0, 0
	for _, e := range f.Instants() {
		switch {
		case e.Cat == "round":
			rounds++
		case e.Cat == "decision" && strings.HasPrefix(e.Name, "launch"):
			launches++
		}
	}
	if rounds == 0 {
		t.Error("trace snapshot holds no scheduler rounds")
	}
	if launches == 0 {
		t.Error("trace snapshot holds no launch decisions")
	}
}

// TestStructuredLogLines checks the daemon's diagnostics flow through
// the Logf hook as logfmt lines carrying component and machine fields.
func TestStructuredLogLines(t *testing.T) {
	lines := make(chan string, 256)
	cfg := Config{}
	cfg.Logf = func(format string, args ...any) {
		select {
		case lines <- fmt.Sprintf(format, args...):
		default:
		}
	}
	h := startHarness(t, cfg, 1, nil)
	h.client(t) // the harness already saw the executor register
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-lines:
			if strings.Contains(line, `msg="executor registered"`) {
				for _, want := range []string{"level=info", "component=server", "machine=machine-0", "gpus=8"} {
					if !strings.Contains(line, want) {
						t.Errorf("registration line %q missing %q", line, want)
					}
				}
				return
			}
		case <-deadline:
			t.Fatal("no structured registration line observed")
		}
	}
}
