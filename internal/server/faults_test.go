package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"muri/internal/engine"
	"muri/internal/job"
	"muri/internal/proto"
)

// fastFaultConfig keeps retry backoffs tiny so fault tests run quickly.
func fastFaultConfig() Config {
	return Config{
		FaultBackoffBase: time.Millisecond,
		FaultBackoffMax:  5 * time.Millisecond,
	}
}

// TestFaultBackoffThenSuccess: a job that faults twice must be backed
// off, retried, and completed — with both faults attributed to the
// executor they happened on.
func TestFaultBackoffThenSuccess(t *testing.T) {
	var mu sync.Mutex
	failures := 0
	fault := func(jobID, iter int64) error {
		mu.Lock()
		defer mu.Unlock()
		if jobID == 1 && failures < 2 && iter >= 5 {
			failures++
			return errors.New("flaky kernel")
		}
		return nil
	}
	h := startHarness(t, fastFaultConfig(), 1, fault)
	c := h.client(t)
	if _, err := c.Submit("dqn", 1, 40); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1", st.Done)
	}
	if st.Jobs[0].Faults != 2 {
		t.Errorf("job recorded %d faults, want 2", st.Jobs[0].Faults)
	}
	if st.Jobs[0].FaultExecutor != "machine-0" {
		t.Errorf("fault attributed to %q, want machine-0", st.Jobs[0].FaultExecutor)
	}
	if st.Faults == nil || st.Faults.Transient != 2 || st.Faults.Requeues != 2 {
		t.Errorf("fault summary = %+v, want 2 transient / 2 requeues", st.Faults)
	}
	h.srv.mu.Lock()
	js := h.srv.jobs[1]
	logLen := len(js.faultLog)
	origin := ""
	if logLen > 0 {
		origin = js.faultLog[0].executor
	}
	h.srv.mu.Unlock()
	if logLen != 2 || origin != "machine-0" {
		t.Errorf("fault log has %d entries from %q, want 2 from machine-0", logLen, origin)
	}
}

// TestRetryBudgetDeadLetter: a job that faults past its retry budget is
// parked in the dead-letter state; healthy jobs are unaffected and the
// run still terminates.
func TestRetryBudgetDeadLetter(t *testing.T) {
	fault := func(jobID, iter int64) error {
		if jobID == 1 {
			return errors.New("always broken")
		}
		return nil
	}
	cfg := fastFaultConfig()
	cfg.FaultRetryBudget = 2
	h := startHarness(t, cfg, 1, fault)
	c := h.client(t)
	if _, err := c.Submit("dqn", 1, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("gpt2", 1, 40); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.DeadLetter != 1 {
		t.Fatalf("done = %d, deadletter = %d, want 1 and 1 (status %+v)", st.Done, st.DeadLetter, st)
	}
	var dead string
	for _, j := range st.Jobs {
		if j.ID == 1 {
			dead = j.State
		}
	}
	if dead != "deadletter" {
		t.Errorf("job 1 state = %q, want deadletter", dead)
	}
	if st.Faults == nil || st.Faults.DeadLettered != 1 {
		t.Errorf("fault summary = %+v, want 1 dead-lettered", st.Faults)
	}
	if st.Faults != nil && st.Faults.Transient != 3 {
		t.Errorf("transient = %d, want 3 (budget 2 + final strike)", st.Faults.Transient)
	}
}

// TestStopDrains: Stop lets the in-flight group finish, rejects new
// submissions while draining, and returns nil once idle.
func TestStopDrains(t *testing.T) {
	h := startHarness(t, fastFaultConfig(), 1, nil)
	c := h.client(t)
	if _, err := c.Submit("gpt2", 1, 200); err != nil {
		t.Fatal(err)
	}
	// Wait until the job is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.srv.mu.Lock()
		running := len(h.srv.groups) > 0
		h.srv.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never launched")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stopErr := make(chan error, 1)
	go func() { stopErr <- h.srv.Stop(ctx) }()
	// Submissions during the drain are rejected.
	for {
		h.srv.mu.Lock()
		draining := h.srv.draining
		h.srv.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Submit("gpt2", 1, 10); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("submit during drain: got %v, want draining rejection", err)
	}
	if err := <-stopErr; err != nil {
		t.Fatalf("Stop = %v, want nil (clean drain)", err)
	}
	h.srv.mu.Lock()
	groups, done := len(h.srv.groups), 0
	for id := range h.srv.jobs {
		if h.srv.eng.PhaseOf(job.ID(id)) == engine.PhaseDone {
			done++
		}
	}
	h.srv.mu.Unlock()
	if groups != 0 || done != 1 {
		t.Errorf("after drain: %d groups, %d done jobs; want 0 and 1", groups, done)
	}
}

// TestInjectFaultJob: a client-injected job fault goes through the
// normal fault path (recorded, backed off) and the job still completes.
func TestInjectFaultJob(t *testing.T) {
	h := startHarness(t, fastFaultConfig(), 1, nil)
	c := h.client(t)
	id, err := c.Submit("gpt2", 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.srv.mu.Lock()
		running := h.srv.jobs[id] != nil && h.srv.eng.PhaseOf(job.ID(id)) == engine.PhaseRunning
		h.srv.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.InjectFault(id, ""); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if err := c.InjectFault(0, "no-such-machine"); err == nil {
		t.Error("injecting on an unknown machine should fail")
	}
	st, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1", st.Done)
	}
	if st.Jobs[0].Faults != 1 || st.Jobs[0].FaultExecutor != "machine-0" {
		t.Errorf("job shows %d faults from %q, want 1 from machine-0",
			st.Jobs[0].Faults, st.Jobs[0].FaultExecutor)
	}
}

// TestInjectFaultMachine: crashing an executor migrates its jobs to the
// survivor, counts a crash, and the work still finishes.
func TestInjectFaultMachine(t *testing.T) {
	h := startHarness(t, fastFaultConfig(), 2, nil)
	c := h.client(t)
	for i := 0; i < 4; i++ {
		if _, err := c.Submit("gpt2", 1, 200); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.srv.mu.Lock()
		running := len(h.srv.groups) > 0
		h.srv.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no group ever launched")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.InjectFault(0, "machine-0"); err != nil {
		t.Fatalf("inject machine crash: %v", err)
	}
	st, err := c.WaitAllDone(30*time.Second, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 4 {
		t.Fatalf("done = %d, want 4", st.Done)
	}
	if st.Executors != 1 {
		t.Errorf("executors = %d, want 1 after the crash", st.Executors)
	}
	if st.Faults == nil || st.Faults.Crashes != 1 {
		t.Errorf("fault summary = %+v, want exactly 1 crash", st.Faults)
	}
}

// TestHeartbeatTimeoutEvicts: a hung executor — registered, connection
// open, but never sending — is evicted when its lease expires, and any
// jobs launched onto it migrate to the healthy survivor.
func TestHeartbeatTimeoutEvicts(t *testing.T) {
	cfg := fastFaultConfig()
	cfg.LivenessTimeout = 400 * time.Millisecond
	h := startHarness(t, cfg, 1, nil)
	// A hung machine: it completes registration, then goes silent while
	// keeping TCP open, so only the lease can detect it.
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	codec := proto.NewCodec(conn)
	if err := codec.Write(&proto.Message{Type: proto.TypeRegister,
		Register: &proto.Register{MachineID: "hung", GPUs: 8}}); err != nil {
		t.Fatal(err)
	}
	ack, err := codec.Read()
	if err != nil || ack.RegisterAck == nil || !ack.RegisterAck.OK {
		t.Fatalf("hung executor registration failed: %v %+v", err, ack)
	}
	if ack.RegisterAck.LeaseTTL != cfg.LivenessTimeout {
		t.Errorf("advertised lease %v, want %v", ack.RegisterAck.LeaseTTL, cfg.LivenessTimeout)
	}
	c := h.client(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit("gpt2", 1, 200); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.WaitAllDone(30*time.Second, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 3 {
		t.Fatalf("done = %d, want 3", st.Done)
	}
	if st.Executors != 1 {
		t.Errorf("executors = %d, want only the healthy one after eviction", st.Executors)
	}
	if st.Faults == nil || st.Faults.Crashes < 1 {
		t.Errorf("fault summary = %+v, want the eviction counted as a crash", st.Faults)
	}
}

// TestNoGoroutineLeaks: a full harness lifecycle — faults, an injected
// crash, drain, close — must not leave goroutines behind.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Run("lifecycle", func(t *testing.T) {
		fault := func(jobID, iter int64) error {
			if jobID == 1 && iter == 3 {
				return errors.New("one-shot fault")
			}
			return nil
		}
		h := startHarness(t, fastFaultConfig(), 2, fault)
		c := h.client(t)
		for i := 0; i < 3; i++ {
			if _, err := c.Submit("dqn", 1, 60); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	// The subtest's Cleanup tore everything down; give straggling exits
	// a moment, then compare with tolerance for runtime housekeeping.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew %d -> %d after full teardown\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
