// Pipelined submission streaming: one persistent connection carrying
// many submit frames without waiting for each ack. The server answers
// acks strictly in frame order, so the client keeps a FIFO window of
// in-flight sends and a background reader matches acks back to them.
// Throughput is bounded by bandwidth and the window, not by round-trip
// latency — the difference between ~1/RTT jobs per second and the
// ≥100k/min the load generator drives.
package server

import (
	"fmt"
	"sync"
	"time"

	"muri/internal/proto"
)

// StreamResult is one job's outcome on a submission stream.
type StreamResult struct {
	// Seq is the client-assigned sequence number of the submit frame
	// this result answers (1-based, in send order).
	Seq uint64
	// ID is the assigned job ID on acceptance.
	ID int64
	// Err is nil on acceptance; admission rejections come back as the
	// typed ingest sentinels (errors.Is against ingest.ErrQueueFull,
	// ErrThrottled, ErrDraining works).
	Err error
	// RTT is the submit→ack round trip as seen by this client.
	RTT time.Duration
}

// inflight tracks one unacked submit frame.
type inflight struct {
	seq    uint64
	sentAt time.Time
}

// SubmitStream pipelines submissions over the client's connection.
// Send and CloseSend must come from one goroutine; Results is consumed
// concurrently. While a stream is open the connection speaks only
// submits — use a separate Client for status polling.
type SubmitStream struct {
	c       *Client
	window  chan inflight
	results chan StreamResult
	done    chan struct{}
	err     error
	errOnce sync.Once
	seq     uint64
}

// SubmitStream opens a pipelined submission stream with the given
// window (max unacked frames in flight; <=0 means 256).
func (c *Client) SubmitStream(window int) *SubmitStream {
	if window <= 0 {
		window = 256
	}
	st := &SubmitStream{
		c:       c,
		window:  make(chan inflight, window),
		results: make(chan StreamResult, window),
		done:    make(chan struct{}),
	}
	go st.readLoop()
	return st
}

// Send writes one submit frame. It blocks only when the window is full
// of unacked frames — flow control, not ack latency. The result
// arrives later on Results.
func (st *SubmitStream) Send(spec proto.JobSpec) error {
	st.seq++
	// Register the frame before writing it, so the reader can never see
	// an ack for an unregistered send.
	select {
	case st.window <- inflight{seq: st.seq, sentAt: time.Now()}:
	case <-st.done:
		return st.err
	}
	msg := &proto.Message{Type: proto.TypeSubmit,
		Submit: &proto.Submit{Job: spec, Seq: st.seq}}
	if err := st.c.codec.Write(msg); err != nil {
		st.fail(err)
		return err
	}
	return nil
}

// CloseSend signals that no more frames will be sent. Results closes
// once every outstanding ack has arrived; check Err after that.
func (st *SubmitStream) CloseSend() { close(st.window) }

// Results delivers one StreamResult per successful Send, in send
// order. The channel closes after CloseSend once the stream drains, or
// early if the stream fails (see Err).
func (st *SubmitStream) Results() <-chan StreamResult { return st.results }

// Err reports why the stream died. Valid once Results is closed; nil
// means a clean drain.
func (st *SubmitStream) Err() error {
	select {
	case <-st.done:
		return st.err
	default:
		return nil
	}
}

// fail records the stream's first error and wakes blocked senders.
func (st *SubmitStream) fail(err error) {
	st.errOnce.Do(func() {
		st.err = err
		close(st.done)
	})
}

// readLoop matches in-order acks to the in-flight window and publishes
// results until the window closes empty or the connection errors.
func (st *SubmitStream) readLoop() {
	defer close(st.results)
	for {
		fl, ok := <-st.window
		if !ok {
			st.errOnce.Do(func() { close(st.done) })
			return
		}
		reply, err := st.c.codec.Read()
		if err != nil {
			st.fail(err)
			return
		}
		if reply.Type != proto.TypeSubmitAck || reply.SubmitAck == nil {
			st.fail(fmt.Errorf("client: unexpected reply %s on submit stream", reply.Type))
			return
		}
		ack := reply.SubmitAck
		if ack.Seq != 0 && ack.Seq != fl.seq {
			st.fail(fmt.Errorf("client: ack seq %d does not match frame %d", ack.Seq, fl.seq))
			return
		}
		st.results <- StreamResult{
			Seq: fl.seq,
			ID:  ack.ID,
			Err: submitErr(ack.Err, ack.Code),
			RTT: time.Since(fl.sentAt),
		}
	}
}
