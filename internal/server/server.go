// Package server implements the Muri scheduler daemon of Figure 3: a job
// queue fed by clients, a resource profiler that dry-runs first-seen
// models on an executor, a job scheduler that periodically runs the
// grouping policy, and a worker monitor that tracks executors, job
// progress, and faults.
//
// The daemon speaks the internal/proto protocol over TCP. Executors
// register and receive Launch/Kill commands; clients submit jobs and poll
// status. Time is virtual: stage durations are scaled by TimeScale on the
// executors, and the scheduler converts wall-clock spans back to virtual
// time for metrics.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"muri/internal/crashpoint"
	"muri/internal/engine"
	"muri/internal/explain"
	"muri/internal/ingest"
	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/telemetry"
	"muri/internal/wal"
	"muri/internal/workload"
)

// Config parameterizes the scheduler daemon.
type Config struct {
	// Policy decides grouping and ordering; nil defaults to Muri-L.
	Policy sched.Policy
	// Interval is the scheduling period (virtual-time semantics are up to
	// the caller; the prototype usually runs with a short wall interval).
	Interval time.Duration
	// TimeScale is forwarded to executors: virtual stage duration ×
	// TimeScale = wall sleep.
	TimeScale float64
	// ReportEvery is the executor progress-report period (wall time).
	ReportEvery time.Duration
	// ProfileIterations is the dry-run length for first-seen models.
	ProfileIterations int
	// LivenessTimeout is the executor lease TTL: an executor that sends
	// nothing (not even a heartbeat) within one TTL is evicted and its
	// groups requeued. It is advertised to executors in RegisterAck so
	// they can pace heartbeats to it. Zero means 5 seconds.
	LivenessTimeout time.Duration
	// FaultBackoffBase is the requeue delay after a job's first fault;
	// each subsequent fault doubles it (with deterministic jitter) up to
	// FaultBackoffMax. Zero means 100ms base, 5s cap.
	FaultBackoffBase time.Duration
	FaultBackoffMax  time.Duration
	// FaultRetryBudget is how many faults a job may accumulate before it
	// is parked in the dead-letter state instead of being requeued. Zero
	// means 8; negative means unlimited retries.
	FaultRetryBudget int
	// ProfileTimeScale is the time scale used for dry-run profiling. It
	// defaults to 0.05 — coarser than TimeScale — because measuring
	// microsecond sleeps is dominated by timer overhead and would destroy
	// the stage ratios the scheduler depends on.
	ProfileTimeScale float64
	// StarvationPatience is forwarded to the scheduling engine: how many
	// rounds a unit may be bypassed for capacity before it is boosted to
	// the front of the admission order. Zero uses the engine default.
	StarvationPatience int
	// Predictor is the online duration estimator fed by every job
	// completion; nil constructs a fresh one. Pass the same instance to a
	// prediction-aware policy (sched.SRTFPredicted and friends) so the
	// policy reads the beliefs the daemon learns. Its state rides WAL
	// snapshots and Done-record replay, surviving restarts.
	Predictor *profile.Online
	// ReprofileThreshold is forwarded to the engine: a completion whose
	// measured stage total deviates from the predictor's belief by more
	// than this fraction re-seeds the model instead of averaging in.
	// Zero uses the engine default (0.25).
	ReprofileThreshold float64
	// Observer, when non-nil, receives every engine decision as it is
	// issued (the parity harness taps the decision stream here).
	Observer func(engine.Decision)
	// Logf receives diagnostics; nil uses log.Printf. Lines are rendered
	// by the structured logger (level=... component=server key=value), so
	// any printf-shaped sink works unchanged.
	Logf func(format string, args ...any)
	// LogLevel is the minimum severity emitted; the zero value (debug)
	// keeps everything.
	LogLevel telemetry.Level
	// TraceEvents bounds the daemon's always-on trace ring (scheduler
	// rounds and decisions on the virtual clock, snapshotted by the
	// TraceSnapshot RPC). Zero uses telemetry.DefaultMaxEvents.
	TraceEvents int
	// IngestCapacity bounds the admission queue between the submission
	// front door and the scheduling engine; beyond it submissions are
	// rejected with a typed, retryable queue-full error instead of
	// blocking a connection handler. Zero means 65536.
	IngestCapacity int
	// IngestMaxBatch caps how many queued submissions one scheduling
	// round admits (the rest carry to the next round). Zero means
	// unlimited: every arrival since the last round joins one batch.
	IngestMaxBatch int
	// MaxBatchDelay is how long the schedule loop lingers after an
	// event wakeup to coalesce more arrivals into the same admission
	// round. Zero runs the round immediately; small values (1–10ms)
	// trade bounded extra latency for larger admission batches under
	// trickle load.
	MaxBatchDelay time.Duration
	// TenantRate is each tenant's sustained submission rate in jobs per
	// second (token bucket keyed on JobSpec.Tenant); zero disables rate
	// limiting. TenantBurst is the bucket depth (zero derives it).
	TenantRate  float64
	TenantBurst int
	// StateDir enables durability: every engine decision (plus admission
	// batches, fault-ledger spends, and completions) is logged to a
	// checksummed WAL there, with periodic snapshots. A restarted daemon
	// pointed at the same directory replays to the exact pre-crash
	// state. Empty disables the WAL (in-memory daemon, as before).
	StateDir string
	// FsyncEvery batches WAL fsyncs: one fsync per N appended records
	// (and on shutdown). 1 is fsync-per-record; zero means 64.
	FsyncEvery int
	// SnapshotEvery is the full-state checkpoint cadence; recovery
	// replays only the WAL tail past the newest snapshot. Zero means 10s.
	SnapshotEvery time.Duration
	// SegmentBytes caps each WAL segment file; zero uses the WAL default.
	SegmentBytes int64
	// StandbyOf runs this daemon as a warm standby replicating the WAL
	// of the leader at this address; it serves no clients or executors
	// until the leader's lease lapses and it promotes itself. Requires
	// StateDir.
	StandbyOf string
	// StandbyID names this standby on the replication stream.
	StandbyID string
	// ElectionTTL is the leader lease: a standby hearing nothing (no
	// frames, no heartbeats) for one TTL promotes itself. Zero means 2s.
	ElectionTTL time.Duration
	// UnsafeDebug enables the crash-injection debug RPC (murictl debug
	// crash). Never enable outside tests.
	UnsafeDebug bool
}

// jobState tracks one submitted job's daemon-side bookkeeping. The
// job's lifecycle phase and fault count live in the scheduling engine
// (engine.PhaseOf / engine.FaultsOf); the daemon keeps only what the
// engine has no business knowing: wire specs, wall-clock timestamps,
// and the fault attribution log.
type jobState struct {
	spec    proto.JobSpec
	job     *job.Job
	groupID int64
	// virtual bookkeeping
	submittedAt time.Time
	finishedAt  time.Time
	lastSeen    time.Time
	// notBefore holds the job out of scheduling until the backoff after
	// its last fault has elapsed.
	notBefore time.Time
	// faultLog records every fault with its origin, so repeated failures
	// are attributable (e.g. the same flaky machine every time).
	faultLog []faultRecord
}

// faultRecord is one entry of a job's fault history.
type faultRecord struct {
	at       time.Time
	executor string
	err      string
}

// executorConn is one registered executor.
type executorConn struct {
	id    string
	gpus  int
	free  int
	codec *proto.Codec
	wmu   sync.Mutex
	conn  net.Conn
	gone  bool
	// leaseExpiry is the liveness lease: renewed by every inbound
	// message, checked by the worker monitor each scheduling round.
	leaseExpiry time.Time
}

func (e *executorConn) send(m *proto.Message) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.codec.Write(m)
}

// groupState is one launched group.
type groupState struct {
	id    int64
	key   string
	exec  *executorConn
	gpus  int
	jobs  []int64
	spec  sched.Unit
	since time.Time
}

// Server is the scheduler daemon.
type Server struct {
	cfg Config
	ln  net.Listener

	mu sync.Mutex
	// eng is the shared scheduling decision core (internal/engine): job
	// lifecycle phases, admission, preemption reconciliation, and the
	// fault/retry state machine all live there. Driven under s.mu.
	eng       *engine.Engine
	executors map[string]*executorConn
	jobs      map[int64]*jobState
	groups    map[int64]*groupState
	profiles  map[string][4]time.Duration
	// profiling maps each model with an in-flight dry run to the executor
	// serving it, so an eviction can release the request for a retry.
	profiling map[string]string
	nextGroup int64
	started   time.Time
	closed    bool
	// est is the online duration estimator (cfg.Predictor or a fresh
	// one): every completion folds in through eng.NoteCompletion, and its
	// learned state checkpoints into WAL snapshots. It has its own lock,
	// so metrics scrape it without s.mu.
	est *profile.Online
	// draining rejects new submissions while in-flight groups finish
	// (set by Stop).
	draining bool
	// seenMachines remembers every machine id that ever registered, so a
	// re-registration after an eviction counts as a repair.
	seenMachines map[string]bool
	faults       metrics.FaultStats
	// leaseEvictions counts executors evicted specifically for lease
	// expiry (a subset of faults.Crashes, which also counts disconnects).
	leaseEvictions uint64
	conns          map[net.Conn]bool
	kick           chan struct{}
	wg             sync.WaitGroup

	// log is the structured logger (component=server), rendered through
	// cfg.Logf.
	log *telemetry.Logger
	// tracer records scheduler rounds and decisions on the virtual clock
	// for the TraceSnapshot RPC. Always on, bounded by cfg.TraceEvents.
	tracer *telemetry.Tracer
	// reg is the /metrics registry; engine and fault counters are
	// func-backed so every scrape agrees with the status RPC.
	reg *telemetry.Registry
	// jctHist observes each finished job's virtual JCT in seconds;
	// roundHist observes each scheduling round's wall latency in seconds.
	jctHist, roundHist *telemetry.Histogram
	// waitAttrHist observes, per cause, each finished job's exact
	// wait-time attribution in virtual seconds.
	waitAttrHist *telemetry.HistogramVec

	// expl folds the daemon's record stream into per-job lifecycle spans
	// (decision provenance). Fed by walAppendLocked before the no-WAL
	// early-out and by replay, so live rendering and the offline
	// muritrace reconstruction are byte-identical. Guarded by s.mu.
	expl *explain.Builder
	// explFrozen mirrors the last adoption-freeze marker emitted, so
	// scheduleLocked logs exactly one start/end pair per freeze.
	explFrozen bool

	// adm is the admission front door: submissions queue here under the
	// admitter's own lock (never s.mu, so submit latency stays flat even
	// mid-round) and the schedule loop drains them in batches.
	adm *ingest.Admitter
	// batchHist observes admission batch sizes; submitWaitHist observes
	// each job's queue wait (accept → engine admission) in seconds.
	batchHist, submitWaitHist *telemetry.Histogram

	// --- durability & failover (see durable.go) ---
	// w is the decision-stream WAL; nil when StateDir is unset. Appends
	// happen exclusively under s.mu.
	w          *wal.Writer
	durStarted bool
	role       string
	// notLeader gates the lock-free submit path (standby/fenced daemons
	// reject writes without touching s.mu).
	notLeader atomic.Bool
	term      atomic.Uint64
	lastSnap  time.Time
	// adoptUntil is the post-recovery grace deadline: scheduling rounds
	// freeze until every orphaned running job is re-adopted by its
	// returning executor, or the deadline passes and they requeue.
	adoptUntil  time.Time
	walReplayed int
	// replayLostOrigin threads a machine-loss record's origin to the
	// requeue decisions replayed right after it (replay-only state).
	replayLostOrigin string
	// stopCh wakes durable background loops (standby/election) on Close.
	stopCh chan struct{}

	// replMu guards subs; always acquired after s.mu when both are held.
	replMu      sync.Mutex
	subs        []*replSub
	standbyConn net.Conn
	// lastLeaderMsg (unix nanos) is the standby's view of leader
	// liveness; appliedLSN/leaderLSN drive the replication-lag gauge.
	lastLeaderMsg           atomic.Int64
	appliedLSN, leaderLSN   atomic.Uint64
	fsyncHist, applyLagHist *telemetry.Histogram
}

// New creates a daemon with defaults filled in.
func New(cfg Config) *Server {
	if cfg.Policy == nil {
		cfg.Policy = sched.NewMuriL()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 0.001
	}
	if cfg.ReportEvery <= 0 {
		cfg.ReportEvery = 50 * time.Millisecond
	}
	if cfg.ProfileIterations <= 0 {
		cfg.ProfileIterations = 5
	}
	if cfg.ProfileTimeScale <= 0 {
		cfg.ProfileTimeScale = 0.05
	}
	if cfg.LivenessTimeout <= 0 {
		cfg.LivenessTimeout = 5 * time.Second
	}
	if cfg.FaultBackoffBase <= 0 {
		cfg.FaultBackoffBase = 100 * time.Millisecond
	}
	if cfg.FaultBackoffMax <= 0 {
		cfg.FaultBackoffMax = 5 * time.Second
	}
	if cfg.FaultRetryBudget == 0 {
		cfg.FaultRetryBudget = 8
	}
	if cfg.TraceEvents <= 0 {
		// A TraceAck must fit one proto frame (16MB); at ~150 bytes per
		// JSON event, 64Ki events stay safely under it.
		cfg.TraceEvents = 1 << 16
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = 64
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10 * time.Second
	}
	if cfg.ElectionTTL <= 0 {
		cfg.ElectionTTL = 2 * time.Second
	}
	if cfg.Predictor == nil {
		cfg.Predictor = profile.NewOnline()
	}
	s := &Server{
		cfg:          cfg,
		est:          cfg.Predictor,
		executors:    make(map[string]*executorConn),
		jobs:         make(map[int64]*jobState),
		groups:       make(map[int64]*groupState),
		profiles:     make(map[string][4]time.Duration),
		profiling:    make(map[string]string),
		seenMachines: make(map[string]bool),
		conns:        make(map[net.Conn]bool),
		kick:         make(chan struct{}, 1),
		stopCh:       make(chan struct{}),
		role:         roleSolo,
		started:      time.Now(),
		tracer:       telemetry.NewTracer(cfg.TraceEvents),
		expl:         explain.NewBuilder(),
		adm: ingest.New(ingest.Config{
			Capacity:    cfg.IngestCapacity,
			TenantRate:  cfg.TenantRate,
			TenantBurst: cfg.TenantBurst,
		}),
	}
	sink := cfg.Logf
	if sink == nil {
		sink = log.Printf
	}
	s.log = telemetry.NewLogger(sink, cfg.LogLevel).With("component", "server")
	s.eng = engine.New(engine.Config{
		Policy:             cfg.Policy,
		Style:              engine.Differential,
		StarvationPatience: cfg.StarvationPatience,
		Estimator:          s.est,
		ReprofileThreshold: cfg.ReprofileThreshold,
		Retry: engine.RetryPolicy{
			BackoffBase: cfg.FaultBackoffBase,
			BackoffMax:  cfg.FaultBackoffMax,
			Budget:      cfg.FaultRetryBudget,
		},
		// observeDecision wraps the caller's tap and makes every decision
		// durable in the WAL before the round moves on.
		Observer: s.observeDecision,
		// provenance turns each decision site's cause annotation into a
		// durable KindCause record feeding the explain builder.
		Provenance: s.provenance,
		Tracer:     s.tracer,
		// virtualNowLocked reads only immutable fields, so the engine may
		// stamp trace events from any point of the reconcile path.
		Now: s.virtualNowLocked,
	})
	s.initMetrics()
	return s
}

// ListenAndServe binds addr and serves until Close. It returns the bound
// address through Addr once listening.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. When StateDir is set it
// first recovers durable state from the WAL (or, as a standby, starts
// replicating the leader) — before the first scheduling round can run.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.startDurability(); err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.scheduleLoop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Addr returns the bound listener address (for tests using port 0).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the daemon: the listener closes, executors are
// disconnected, and background loops drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopCh)
	s.adm.SetDraining(true)
	if s.w != nil {
		// Graceful shutdown flushes and fsyncs the WAL tail before any
		// listener closes: every acked decision is durable.
		if err := s.w.Sync(); err != nil {
			s.log.Error("wal sync on close failed", "err", err)
		}
	}
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sc := s.standbyConn
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if sc != nil {
		sc.Close()
	}
	s.kickSchedule() // wake the schedule loop so it observes closed
	s.wg.Wait()
	s.mu.Lock()
	if s.w != nil {
		if err := s.w.Close(); err != nil {
			s.log.Error("wal close failed", "err", err)
		}
	}
	s.mu.Unlock()
}

// Stop drains the daemon gracefully: new submissions are rejected while
// groups already in flight run to completion (or fault), then the
// listener and all connections close. If ctx expires first, the daemon
// closes anyway and the context error is returned.
func (s *Server) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.adm.SetDraining(true)
	s.mu.Unlock()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := len(s.groups) == 0
		s.mu.Unlock()
		if idle {
			s.Close()
			return nil
		}
		select {
		case <-ctx.Done():
			s.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// handleConn dispatches a new connection based on its first message.
func (s *Server) handleConn(conn net.Conn) {
	codec := proto.NewCodec(conn)
	m, err := codec.Read()
	if err != nil {
		conn.Close()
		return
	}
	switch m.Type {
	case proto.TypeRegister:
		s.handleExecutor(conn, codec, m.Register)
	case proto.TypeReplSubscribe:
		if m.ReplSubscribe != nil {
			s.handleReplSubscribe(conn, codec, m.ReplSubscribe)
		}
	case proto.TypeSubmit, proto.TypeSubmitBatch, proto.TypeStatus, proto.TypeInjectFault,
		proto.TypeTrace, proto.TypeExplain, proto.TypeDebugCrash:
		s.handleClient(conn, codec, m)
	default:
		s.log.Warn("unexpected first message", "type", m.Type)
		conn.Close()
	}
}

// handleExecutor serves one executor connection until it drops.
func (s *Server) handleExecutor(conn net.Conn, codec *proto.Codec, reg *proto.Register) {
	e := &executorConn{id: reg.MachineID, gpus: reg.GPUs, free: reg.GPUs,
		codec: codec, conn: conn, leaseExpiry: time.Now().Add(s.cfg.LivenessTimeout)}
	s.mu.Lock()
	// Fencing: an executor that has seen a higher election term carries
	// proof this daemon was deposed; and a standby/fenced daemon serves
	// no executors at all.
	if reg.SeenTerm > s.term.Load() {
		s.fenceLocked(reg.SeenTerm)
	}
	if s.notLeader.Load() {
		role, term := s.role, s.term.Load()
		s.mu.Unlock()
		_ = e.send(&proto.Message{Type: proto.TypeRegisterAck,
			RegisterAck: &proto.RegisterAck{OK: false, Term: term,
				Reason: "not_leader: daemon is " + role}})
		conn.Close()
		return
	}
	if _, dup := s.executors[e.id]; dup || reg.GPUs <= 0 {
		s.mu.Unlock()
		_ = e.send(&proto.Message{Type: proto.TypeRegisterAck,
			RegisterAck: &proto.RegisterAck{OK: false, Reason: "duplicate machine id or no GPUs"}})
		conn.Close()
		return
	}
	s.executors[e.id] = e
	rejoined := s.seenMachines[e.id]
	s.seenMachines[e.id] = true
	if rejoined {
		// A machine coming back after an eviction (or clean disconnect)
		// is the live-path analogue of a repair event.
		s.faults.Repairs++
	}
	// Adoption: re-bind groups the executor kept running across our
	// crash or a failover. Anything not adopted is the executor's to
	// kill (its jobs were requeued or reassigned meanwhile).
	var adopted []int64
	for i := range reg.Groups {
		if s.adoptGroupLocked(e, &reg.Groups[i]) {
			adopted = append(adopted, reg.Groups[i].GroupID)
		}
	}
	s.mu.Unlock()
	ack := &proto.RegisterAck{OK: true, LeaseTTL: s.cfg.LivenessTimeout,
		Term: s.term.Load(), AdoptedGroups: adopted}
	if err := e.send(&proto.Message{Type: proto.TypeRegisterAck, RegisterAck: ack}); err != nil {
		s.dropExecutor(e)
		return
	}
	s.log.Info("executor registered", "machine", e.id, "gpus", e.gpus, "lease", s.cfg.LivenessTimeout)
	s.kickSchedule()
	for {
		m, err := codec.Read()
		if err != nil {
			s.dropExecutor(e)
			return
		}
		s.mu.Lock()
		e.leaseExpiry = time.Now().Add(s.cfg.LivenessTimeout)
		s.mu.Unlock()
		switch m.Type {
		case proto.TypeProgress:
			s.onProgress(m.Progress)
		case proto.TypeJobDone:
			s.onJobDone(m.JobDone)
		case proto.TypeFault:
			s.onFault(m.Fault, e.id)
		case proto.TypeProfiled:
			s.onProfiled(m.Profiled)
		case proto.TypeHeartbeat:
			// The lease renewal above is all a heartbeat needs.
		default:
			s.log.Warn("unexpected executor message", "machine", e.id, "type", m.Type)
		}
	}
}

// dropExecutor handles an executor disconnect or lease expiry: its
// groups' jobs go back to the queue (the worker monitor's fault
// handling, §5). Losing a machine is not the job's fault, so requeued
// jobs keep their retry budget; the loss is still recorded in their
// fault log for attribution.
func (s *Server) dropExecutor(e *executorConn) {
	e.conn.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.gone {
		return
	}
	e.gone = true
	delete(s.executors, e.id)
	if s.closed {
		// The daemon is dying, not the machine: connections drop because
		// Close/Crash closed them. Leave the jobs bound so recovery sees
		// them as running orphans (the executor re-offers them for
		// adoption), and emit nothing into a stream the WAL no longer
		// accepts.
		return
	}
	s.faults.Crashes++
	// One machine-loss record up front carries the origin; the requeue
	// decisions that follow are logged by the engine observer.
	s.walAppendLocked(&wal.Record{Kind: wal.KindFault,
		Fault: &wal.FaultRecord{Origin: e.id, Err: "executor lost"}})
	// Release any profiling dry run the dead executor was serving, so the
	// next scheduling round re-requests it from a healthy machine (a
	// request stuck on a hung executor would otherwise block its model's
	// jobs in the profiling phase forever).
	for model, owner := range s.profiling {
		if owner == e.id {
			delete(s.profiling, model)
		}
	}
	requeued := 0
	// Walk the dead executor's groups in ascending group-ID order so the
	// engine's requeue decision stream is deterministic.
	gids := make([]int64, 0, len(s.groups))
	for gid, g := range s.groups {
		if g.exec == e {
			gids = append(gids, gid)
		}
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		g := s.groups[gid]
		for _, jid := range g.jobs {
			if js := s.jobs[jid]; js != nil && s.eng.PhaseOf(job.ID(jid)) == engine.PhaseRunning {
				s.walProgressLocked(js)
				s.eng.RequeueWithCause(job.ID(jid), engine.ReasonMachineLost,
					"machine "+e.id+" lost")
				js.groupID = 0
				js.faultLog = append(js.faultLog,
					faultRecord{at: time.Now(), executor: e.id, err: "executor lost"})
				s.faults.Requeues++
				requeued++
			}
		}
		delete(s.groups, gid)
	}
	s.log.Warn("executor dropped", "machine", e.id, "requeued", requeued)
	s.kickSchedule()
}

// handleClient serves a client connection: each request gets a reply,
// and the connection may carry many requests.
func (s *Server) handleClient(conn net.Conn, codec *proto.Codec, first *proto.Message) {
	defer conn.Close()
	m := first
	for {
		var reply proto.Message
		switch m.Type {
		case proto.TypeSubmit:
			id, err := s.submit(m.Submit.Job)
			ack := submitAck(id, err)
			ack.Seq = m.Submit.Seq
			reply = proto.Message{Type: proto.TypeSubmitAck, SubmitAck: &ack}
		case proto.TypeSubmitBatch:
			results := make([]proto.SubmitResult, len(m.SubmitBatch.Jobs))
			for i, spec := range m.SubmitBatch.Jobs {
				id, err := s.submit(spec)
				ack := submitAck(id, err)
				results[i] = proto.SubmitResult{ID: ack.ID, Err: ack.Err,
					Code: ack.Code, Retryable: ack.Retryable}
			}
			reply = proto.Message{Type: proto.TypeSubmitBatchAck,
				SubmitBatchAck: &proto.SubmitBatchAck{Results: results}}
		case proto.TypeStatus:
			st := s.status()
			reply = proto.Message{Type: proto.TypeStatusAck, StatusAck: &st}
		case proto.TypeInjectFault:
			ack := proto.InjectFaultAck{OK: true}
			if err := s.injectFault(m.InjectFault); err != nil {
				ack.OK = false
				ack.Err = err.Error()
			}
			reply = proto.Message{Type: proto.TypeInjectFaultAck, InjectFaultAck: &ack}
		case proto.TypeTrace:
			ack := proto.TraceAck{}
			if data, err := s.TraceJSON(); err != nil {
				ack.Err = err.Error()
			} else {
				ack.Trace = data
			}
			reply = proto.Message{Type: proto.TypeTraceAck, TraceAck: &ack}
		case proto.TypeExplain:
			ack := proto.ExplainAck{}
			if m.Explain == nil || m.Explain.JobID <= 0 {
				ack.Err = "explain needs a job id"
			} else {
				ack.Text = s.explainJob(m.Explain.JobID)
			}
			reply = proto.Message{Type: proto.TypeExplainAck, ExplainAck: &ack}
		case proto.TypeDebugCrash:
			ack := proto.DebugCrashAck{OK: true}
			switch {
			case !s.cfg.UnsafeDebug:
				ack.OK = false
				ack.Err = "debug interface disabled (run murisched -unsafe-debug)"
			case m.DebugCrash == nil || m.DebugCrash.Point == "":
				ack.OK = false
				ack.Err = "debug crash needs a point name"
			default:
				crashpoint.Arm(m.DebugCrash.Point)
				s.log.Warn("crash point armed", "point", m.DebugCrash.Point)
			}
			reply = proto.Message{Type: proto.TypeDebugCrashAck, DebugCrashAck: &ack}
		default:
			s.log.Warn("unexpected client message", "type", m.Type)
			return
		}
		if err := codec.Write(&reply); err != nil {
			return
		}
		var err error
		m, err = codec.Read()
		if err != nil {
			return
		}
	}
}

// provenance is the engine's cause hook: every structured annotation a
// decision site emits (wait-cause transitions, starvation-boost notes)
// becomes a durable KindCause record, which both feeds the live
// explain builder and lets muritrace reconstruct the identical
// explanation offline. Runs under s.mu (the engine is driven under it).
func (s *Server) provenance(ev engine.CauseEvent) {
	s.walAppendLocked(&wal.Record{Kind: wal.KindCause, Cause: &wal.CauseRecord{
		Job: int64(ev.Job), Cause: ev.Cause, Detail: ev.Detail, Note: ev.Note}})
}

// explainJob renders one job's provenance under the scheduling lock.
func (s *Server) explainJob(id int64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expl.RenderJob(id)
}

// submit validates a spec and offers it to the admission queue. It
// deliberately never takes s.mu: the heavy lifting — engine tracking,
// job construction, profile resolution — happens in batched drains at
// the top of each scheduling round, so the front door stays fast even
// while a planning round holds the scheduling lock. The returned ID is
// final (assigned in arrival order under the admitter's lock).
func (s *Server) submit(spec proto.JobSpec) (int64, error) {
	if s.notLeader.Load() {
		return 0, errNotLeader
	}
	if spec.Iterations <= 0 {
		return 0, errors.New("server: job needs a positive iteration count")
	}
	if spec.GPUs <= 0 {
		spec.GPUs = 1
	}
	if _, err := workload.ByName(spec.Model); err != nil {
		return 0, err
	}
	id, wasEmpty, err := s.adm.Offer(spec)
	if err != nil {
		return 0, err
	}
	// One wakeup per burst: only the offer that found the queue empty
	// kicks the schedule loop; everything arriving before the next drain
	// rides the same admission round.
	if wasEmpty {
		s.kickSchedule()
	}
	return id, nil
}

// submitAck maps a submit outcome onto the wire ack, carrying the typed
// rejection code and retryability for backpressure-aware clients.
func submitAck(id int64, err error) proto.SubmitAck {
	ack := proto.SubmitAck{ID: id}
	if err == nil {
		return ack
	}
	ack.Err = err.Error()
	var ie *ingest.Error
	if errors.As(err, &ie) {
		ack.Code = ie.Code
		ack.Retryable = ie.Retryable
	} else {
		ack.Code = proto.CodeInvalid
	}
	return ack
}

// drainIngestLocked admits every queued submission (up to
// cfg.IngestMaxBatch) into the engine as one batch. Items drain FIFO,
// so engine admission order equals ack order — the determinism the
// decision-stream goldens pin. Callers hold s.mu.
func (s *Server) drainIngestLocked() {
	items := s.adm.Drain(s.cfg.IngestMaxBatch)
	if len(items) == 0 {
		return
	}
	now := time.Now()
	for i := range items {
		s.admitLocked(&items[i], now)
	}
	// The admission batch becomes durable as one record: a recovered
	// daemon re-admits exactly these jobs in exactly this order.
	s.walAdmitLocked(items)
	s.batchHist.Observe(float64(len(items)))
	if s.adm.Depth() > 0 {
		// A bounded batch left items behind; run another round promptly.
		s.kickSchedule()
	}
}

// admitLocked materializes one accepted submission: stage durations come
// from, in order, the submitted spec, the profile cache, or a dry-run
// profiling round on an executor (the job waits in "profiling" state
// meanwhile). Callers hold s.mu.
func (s *Server) admitLocked(it *ingest.Item, now time.Time) {
	spec := it.Spec
	m, err := workload.ByName(spec.Model)
	if err != nil {
		// Validated at submit; unreachable unless the zoo changes between
		// accept and drain.
		s.log.Error("admitted job has unknown model", "job", spec.ID, "model", spec.Model)
		return
	}
	js := &jobState{spec: spec, submittedAt: it.At, lastSeen: now}
	var stages [4]time.Duration
	phase := engine.PhasePending
	switch {
	case spec.Stages != ([4]time.Duration{}):
		stages = spec.Stages
	case s.profiles[spec.Model] != ([4]time.Duration{}):
		stages = s.profiles[spec.Model]
	default:
		phase = engine.PhaseProfiling
		s.requestProfileLocked(spec.Model)
	}
	s.eng.Track(job.ID(spec.ID), phase)
	js.spec.Stages = stages
	var st workload.StageTimes
	copy(st[:], stages[:])
	model := m
	model.Stages = st
	js.job = job.New(job.ID(spec.ID), model, spec.GPUs, spec.Iterations, s.virtualNowLocked())
	js.job.DoneIterations = spec.DoneIterations
	s.jobs[spec.ID] = js
	s.submitWaitHist.Observe(now.Sub(it.At).Seconds())
}

// requestProfileLocked asks any executor to dry-run the model. Callers
// hold s.mu.
func (s *Server) requestProfileLocked(model string) {
	if _, inflight := s.profiling[model]; inflight {
		return
	}
	for _, e := range s.executors {
		s.profiling[model] = e.id
		req := &proto.Message{Type: proto.TypeProfileReq, ProfileReq: &proto.ProfileReq{
			Model: model, Iterations: s.cfg.ProfileIterations, TimeScale: s.cfg.ProfileTimeScale,
		}}
		exec := e
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := exec.send(req); err != nil {
				s.mu.Lock()
				delete(s.profiling, model)
				s.mu.Unlock()
			}
		}()
		return
	}
	// No executor yet: retried by the schedule loop.
}

// onProfiled stores a measured profile and releases waiting jobs.
func (s *Server) onProfiled(p *proto.Profiled) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.profiling, p.Model)
	if p.Err != "" {
		s.log.Warn("profiling failed", "model", p.Model, "err", p.Err)
		return
	}
	s.profiles[p.Model] = p.Stages
	s.walAppendLocked(&wal.Record{Kind: wal.KindProfile,
		Profile: &wal.ProfileRecord{Model: p.Model, Stages: p.Stages}})
	var st workload.StageTimes
	copy(st[:], p.Stages[:])
	for id, js := range s.jobs {
		if s.eng.PhaseOf(job.ID(id)) == engine.PhaseProfiling && js.spec.Model == p.Model {
			js.spec.Stages = p.Stages
			js.job.Profile = st
			js.job.TrueProfile = st
			s.eng.SetPhase(job.ID(id), engine.PhasePending)
		}
	}
	s.kickSchedule()
}

// virtualNowLocked converts wall time since start to virtual time.
func (s *Server) virtualNowLocked() time.Duration {
	return time.Duration(float64(time.Since(s.started)) / s.cfg.TimeScale)
}

// onProgress updates the worker monitor's view of a group.
func (s *Server) onProgress(p *proto.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, jp := range p.Jobs {
		js := s.jobs[jp.ID]
		if js == nil || s.eng.PhaseOf(job.ID(jp.ID)) == engine.PhaseDone {
			continue
		}
		if jp.DoneIterations > js.job.DoneIterations {
			js.job.DoneIterations = jp.DoneIterations
		}
		now := time.Now()
		if s.eng.PhaseOf(job.ID(jp.ID)) == engine.PhaseRunning {
			wall := now.Sub(js.lastSeen)
			js.job.Attained += time.Duration(float64(wall) / s.cfg.TimeScale)
		}
		js.lastSeen = now
	}
}

// onJobDone finalizes a completed job.
func (s *Server) onJobDone(d *proto.JobDone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := s.jobs[d.JobID]
	if js == nil || (js.groupID != 0 && js.groupID != d.GroupID) {
		// Unknown job, or a stale report from a group the job no longer
		// belongs to (an executor that kept running through a failover can
		// replay events for reassigned work).
		return
	}
	if !s.eng.SetPhase(job.ID(d.JobID), engine.PhaseDone) {
		// The state machine rejected the transition (the job already
		// completed); nothing to finalize.
		return
	}
	js.finishedAt = time.Now()
	js.job.DoneIterations = js.job.Iterations
	js.job.State = job.Done
	js.job.FinishedAt = s.virtualNowLocked()
	service := time.Duration(float64(js.job.Attained) * float64(js.job.GPUs))
	s.walAppendLocked(&wal.Record{Kind: wal.KindDone, Done: &wal.DoneRecord{
		Job: d.JobID, FinishedWall: js.finishedAt.UnixNano(),
		FinishedV: int64(js.job.FinishedAt), ServiceV: int64(service)}})
	if s.eng.NoteCompletion(js.job, js.job.TrueProfile, service) {
		s.log.Info("predictor re-profiled model on completion deviation",
			"job", d.JobID, "model", js.spec.Model)
	}
	jct := time.Duration(float64(js.finishedAt.Sub(js.submittedAt)) / s.cfg.TimeScale)
	s.jctHist.Observe(jct.Seconds())
	// The done record just folded into the explain builder, so the job's
	// attribution is final: observe each cause's exact share and export
	// the lifecycle spans onto the trace.
	if at, ok := s.expl.AttributionOf(d.JobID); ok {
		for _, c := range at.SortedCauses() {
			s.waitAttrHist.Observe(c, time.Duration(at.PerCause[c]).Seconds())
		}
		s.expl.EmitJobSpans(s.tracer, d.JobID)
	}
	s.detachFromGroupLocked(d.GroupID, d.JobID)
	s.kickSchedule()
}

// onFault pushes a failed job back to the queue (§5), preserving its
// progress (the next launch resumes from DoneIterations) and recording
// the fault's origin for attribution. Repeated faults back the job off
// exponentially; past the retry budget it is dead-lettered.
func (s *Server) onFault(f *proto.Fault, from string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := s.jobs[f.JobID]
	if js == nil || s.eng.PhaseOf(job.ID(f.JobID)) == engine.PhaseDone {
		return
	}
	if js.groupID != 0 && js.groupID != f.GroupID {
		// Stale fault from a group the job was already detached from.
		return
	}
	origin := f.Machine
	if origin == "" {
		origin = from
	}
	s.detachFromGroupLocked(f.GroupID, f.JobID)
	s.recordJobFaultLocked(js, origin, f.Error)
	s.kickSchedule()
}

// recordJobFaultLocked applies one job-level fault: log its origin, then
// let the engine spend retry budget and decide between requeue-with-
// backoff and dead-letter. The job's progress is untouched —
// js.job.DoneIterations survives, so the next launch resumes the
// remaining iterations. Callers hold s.mu.
func (s *Server) recordJobFaultLocked(js *jobState, origin, errMsg string) {
	id := job.ID(js.spec.ID)
	s.walProgressLocked(js)
	js.faultLog = append(js.faultLog, faultRecord{at: time.Now(), executor: origin, err: errMsg})
	js.groupID = 0
	s.faults.Transient++
	backoff, deadlettered := s.eng.RecordFault(id)
	fr := &wal.FaultRecord{Job: js.spec.ID, Origin: origin, Err: errMsg,
		Faults: s.eng.FaultsOf(id), DeadLettered: deadlettered}
	if deadlettered {
		s.walAppendLocked(&wal.Record{Kind: wal.KindFault, Fault: fr})
		s.faults.DeadLettered++
		s.log.Error("job dead-lettered", "job", js.spec.ID, "faults", s.eng.FaultsOf(id),
			"machine", origin, "err", errMsg)
		return
	}
	js.notBefore = time.Now().Add(backoff)
	fr.NotBeforeWall = js.notBefore.UnixNano()
	// The backoff release on the virtual clock, so wait attribution can
	// split fault-backoff from capacity exactly at the boundary.
	fr.NotBeforeV = int64(s.virtualNowLocked()) + int64(float64(backoff)/s.cfg.TimeScale)
	s.walAppendLocked(&wal.Record{Kind: wal.KindFault, Fault: fr})
	s.faults.Requeues++
	s.log.Warn("job faulted; requeued", "job", js.spec.ID, "machine", origin, "err", errMsg,
		"fault", s.eng.FaultsOf(id), "backoff", backoff,
		"done", js.job.DoneIterations, "iterations", js.job.Iterations)
}

// detachFromGroupLocked removes a job from its group, freeing the
// executor when the group empties. Callers hold s.mu.
func (s *Server) detachFromGroupLocked(groupID, jobID int64) {
	g := s.groups[groupID]
	if g == nil {
		return
	}
	var rest []int64
	for _, id := range g.jobs {
		if id != jobID {
			rest = append(rest, id)
		}
	}
	g.jobs = rest
	if len(g.jobs) == 0 {
		g.exec.free += g.gpus
		delete(s.groups, groupID)
	}
}

// scheduleLoop replans periodically and on events: the paper's scheduler
// "is periodically invoked on events like job arrival and job
// completion" (§3). Event kicks coalesce through a 1-slot channel, and —
// when MaxBatchDelay is set — the loop lingers briefly after a kick so a
// trickle of arrivals lands in one admission round instead of N.
func (s *Server) scheduleLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-s.kick:
			if d := s.cfg.MaxBatchDelay; d > 0 {
				linger := time.NewTimer(d)
			coalesce:
				for {
					select {
					case <-s.kick: // absorb further kicks into this round
					case <-linger.C:
						break coalesce
					}
				}
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.scheduleLocked()
		s.mu.Unlock()
	}
}

// kickSchedule requests an immediate scheduling round (non-blocking).
func (s *Server) kickSchedule() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// scheduleLocked runs one scheduling round. Callers hold s.mu.
func (s *Server) scheduleLocked() {
	// A standby or fenced daemon plans nothing: its engine state is
	// either a replica (applied only at promotion) or deposed.
	if s.notLeader.Load() {
		return
	}
	// Batched admission first: every submission accepted since the last
	// round joins the candidate set in one engine round.
	s.drainIngestLocked()
	crashpoint.Hit(crashpoint.MidRound)
	// Worker-monitor liveness: evict executors whose lease expired. A
	// hung machine keeps its TCP connection open, so read errors alone
	// are not enough.
	wallNow := time.Now()
	defer func() { s.roundHist.Observe(time.Since(wallNow).Seconds()) }()
	for _, e := range s.executors {
		if wallNow.After(e.leaseExpiry) {
			dead := e
			s.leaseEvictions++
			s.log.Warn("executor lease expired; evicting", "machine", dead.id)
			s.wg.Add(1)
			go func() { // takes s.mu; must run outside this lock
				defer s.wg.Done()
				s.dropExecutor(dead)
			}()
		}
	}
	if s.draining {
		// Drain: in-flight groups run to completion, nothing new launches.
		return
	}
	// Periodic full-state checkpoint; recovery replays only the tail
	// past it, and the WAL prunes segments below it.
	if s.w != nil && time.Since(s.lastSnap) >= s.cfg.SnapshotEvery {
		s.snapshotLocked()
	}
	// Post-recovery adoption grace: hold rounds while recovered running
	// jobs wait for their executors to re-register. Freeze boundaries are
	// logged as global provenance markers so every waiting job's
	// attribution charges the frozen rounds to adoption, not capacity.
	frozen := s.freezeForAdoptionLocked(wallNow)
	if frozen != s.explFrozen {
		detail := "end"
		if frozen {
			detail = "start"
		}
		s.walAppendLocked(&wal.Record{Kind: wal.KindCause,
			Cause: &wal.CauseRecord{Cause: explain.CauseAdoptionFreeze, Detail: detail}})
		s.explFrozen = frozen
	}
	if frozen {
		return
	}
	// Retry profiling for jobs stuck without an executor earlier.
	for id, js := range s.jobs {
		_, inflight := s.profiling[js.spec.Model]
		if s.eng.PhaseOf(job.ID(id)) == engine.PhaseProfiling && !inflight {
			if _, ok := s.profiles[js.spec.Model]; ok {
				js.spec.Stages = s.profiles[js.spec.Model]
				s.eng.SetPhase(job.ID(id), engine.PhasePending)
			} else {
				s.requestProfileLocked(js.spec.Model)
			}
		}
	}
	capacity := 0
	for _, e := range s.executors {
		capacity += e.gpus
	}
	if capacity == 0 {
		return
	}
	// Candidates: pending plus (for preemptive policies) running jobs, in
	// ascending job-ID order so the engine's decision stream is
	// deterministic. Jobs still in their post-fault backoff window sit
	// out this round.
	ids := make([]int64, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var candidates []*job.Job
	for _, id := range ids {
		js := s.jobs[id]
		ph := s.eng.PhaseOf(job.ID(id))
		if ph == engine.PhasePending && wallNow.Before(js.notBefore) {
			continue
		}
		if ph == engine.PhasePending || (s.cfg.Policy.Preemptive() && ph == engine.PhaseRunning) {
			candidates = append(candidates, js.job)
		}
	}
	if len(candidates) == 0 {
		return
	}
	// Current groups, in ascending group-ID order (again: determinism of
	// the kill stream). The engine re-derives each unit's key from the
	// spec; the handle is the group ID, passed back verbatim on kills.
	gids := make([]int64, 0, len(s.groups))
	for gid := range s.groups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	current := make([]engine.Current, 0, len(gids))
	for _, gid := range gids {
		current = append(current, engine.Current{Spec: s.groups[gid].spec, Handle: gid})
	}
	// One engine round: plan, admit (with anti-starvation), reconcile
	// preemptions (kills run through killGroupLocked so capacity frees
	// before placement), and place via the executor best-fit placer (the
	// Launch RPCs happen inside Place).
	s.eng.Reconcile(engine.Input{
		Now:        s.virtualNowLocked(),
		Candidates: candidates,
		Capacity:   capacity,
		Current:    current,
		Placer:     &serverPlacer{s: s},
		Kill:       func(c engine.Current) { s.killGroupLocked(c.Handle.(int64)) },
	})
}

// serverPlacer adapts the daemon's executor pool to the engine's Placer
// interface: free capacity is the sum over registered executors, and
// placing a unit best-fits it onto one executor and sends the Launch
// RPC. Methods are called with s.mu held (Reconcile runs under it).
type serverPlacer struct {
	s *Server
}

func (p *serverPlacer) Free() int {
	free := 0
	for _, e := range p.s.executors {
		free += e.free
	}
	return free
}

func (p *serverPlacer) Place(key string, u sched.Unit) (any, bool) {
	exec := p.s.pickExecutorLocked(u.GPUs)
	if exec == nil {
		return nil, false
	}
	gid, ok := p.s.launchLocked(exec, u, key)
	if !ok {
		return nil, false
	}
	return gid, true
}

// Reset is never called under the Differential style; the daemon cannot
// release real processes wholesale.
func (p *serverPlacer) Reset() {}

// pickExecutorLocked returns the executor with the least sufficient free
// GPUs (best fit). Callers hold s.mu.
func (s *Server) pickExecutorLocked(gpus int) *executorConn {
	var best *executorConn
	ids := make([]string, 0, len(s.executors))
	for id := range s.executors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := s.executors[id]
		if e.free >= gpus && (best == nil || e.free < best.free) {
			best = e
		}
	}
	return best
}

// launchLocked sends a Launch for unit u to exec and returns the new
// group's ID. ok=false means the send failed and nothing was recorded
// (the engine skips the unit this round). The members' phase flip to
// running happens in the engine after Place succeeds. Callers hold s.mu.
func (s *Server) launchLocked(exec *executorConn, u sched.Unit, key string) (int64, bool) {
	s.nextGroup++
	gid := s.nextGroup
	specs := make([]proto.JobSpec, len(u.Jobs))
	ids := make([]int64, len(u.Jobs))
	for i, j := range u.Jobs {
		js := s.jobs[int64(j.ID)]
		spec := js.spec
		spec.DoneIterations = js.job.DoneIterations
		specs[i] = spec
		ids[i] = int64(j.ID)
	}
	msg := &proto.Message{Type: proto.TypeLaunch, Launch: &proto.Launch{
		GroupID:     gid,
		Key:         key,
		GPUs:        u.GPUs,
		Jobs:        specs,
		TimeScale:   s.cfg.TimeScale,
		ReportEvery: s.cfg.ReportEvery,
	}}
	if err := exec.send(msg); err != nil {
		s.log.Warn("launch failed", "machine", exec.id, "err", err)
		return 0, false
	}
	exec.free -= u.GPUs
	g := &groupState{id: gid, key: key, exec: exec, gpus: u.GPUs, jobs: ids, spec: u, since: time.Now()}
	s.groups[gid] = g
	for _, id := range ids {
		js := s.jobs[id]
		js.groupID = gid
		js.lastSeen = time.Now()
		if js.job.StartedAt < 0 {
			js.job.StartedAt = s.virtualNowLocked()
		}
	}
	if s.w != nil {
		gr := &wal.GroupRecord{ID: gid, Members: make([]wal.GroupMember, len(ids))}
		for i, id := range ids {
			gr.Members[i] = wal.GroupMember{Job: id, StartedV: int64(s.jobs[id].job.StartedAt)}
		}
		s.walAppendLocked(&wal.Record{Kind: wal.KindGroup, Group: gr})
	}
	return gid, true
}

// killGroupLocked preempts a group: members go back to pending with
// their current progress. Callers hold s.mu.
func (s *Server) killGroupLocked(gid int64) {
	g := s.groups[gid]
	if g == nil {
		return
	}
	_ = g.exec.send(&proto.Message{Type: proto.TypeKill, Kill: &proto.Kill{GroupID: gid}})
	for _, id := range g.jobs {
		if js := s.jobs[id]; js != nil && s.eng.PhaseOf(job.ID(id)) == engine.PhaseRunning {
			// Checkpoint progress before the kill decision lands in the WAL,
			// so recovery resumes the member from its last reported iteration.
			s.walProgressLocked(js)
			s.eng.SetPhase(job.ID(id), engine.PhasePending)
			js.groupID = 0
			js.job.Restarts++
		}
	}
	g.exec.free += g.gpus
	delete(s.groups, gid)
}

// injectFault applies a client-requested chaos injection: kill a running
// job (as if its process crashed) or drop a whole executor (as if the
// machine died). Injections go through the same fault paths as organic
// failures, so backoff, budgets, and counters all apply.
func (s *Server) injectFault(req *proto.InjectFault) error {
	if req == nil || (req.JobID == 0) == (req.Machine == "") {
		return errors.New("server: inject fault needs exactly one of job or machine")
	}
	if req.Machine != "" {
		s.mu.Lock()
		e := s.executors[req.Machine]
		s.mu.Unlock()
		if e == nil {
			return fmt.Errorf("server: unknown machine %q", req.Machine)
		}
		s.log.Info("injected crash", "machine", req.Machine)
		s.dropExecutor(e)
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	js := s.jobs[req.JobID]
	if js == nil {
		return fmt.Errorf("server: unknown job %d", req.JobID)
	}
	if ph := s.eng.PhaseOf(job.ID(req.JobID)); ph != engine.PhaseRunning {
		return fmt.Errorf("server: job %d is %s, not running", req.JobID, ph)
	}
	origin := ""
	if g := s.groups[js.groupID]; g != nil {
		origin = g.exec.id
	}
	// Kill the whole group (the executor cannot stop one member of an
	// interleaved unit); innocent members requeue as preemptions, only
	// the target is charged a fault.
	s.killGroupLocked(js.groupID)
	s.recordJobFaultLocked(js, origin, "injected fault")
	s.kickSchedule()
	return nil
}

// status snapshots the scheduler state for clients.
func (s *Server) status() proto.StatusAck {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ack proto.StatusAck
	ack.Executors = len(s.executors)
	ids := make([]int64, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var jctSum, jctMax time.Duration
	for _, id := range ids {
		js := s.jobs[id]
		phase := s.eng.PhaseOf(job.ID(id))
		st := proto.JobStatus{
			ID:             id,
			Model:          js.spec.Model,
			State:          string(phase),
			DoneIterations: js.job.DoneIterations,
			Iterations:     js.spec.Iterations,
			Faults:         s.eng.FaultsOf(job.ID(id)),
		}
		if n := len(js.faultLog); n > 0 {
			st.FaultExecutor = js.faultLog[n-1].executor
		}
		switch phase {
		case engine.PhasePending, engine.PhaseProfiling:
			ack.Pending++
		case engine.PhaseRunning:
			ack.Running++
		case engine.PhaseDeadletter:
			ack.DeadLetter++
		case engine.PhaseDone:
			ack.Done++
			st.JCT = time.Duration(float64(js.finishedAt.Sub(js.submittedAt)) / s.cfg.TimeScale)
			jctSum += st.JCT
			if st.JCT > jctMax {
				jctMax = st.JCT
			}
		}
		ack.Jobs = append(ack.Jobs, st)
	}
	if s.faults != (metrics.FaultStats{}) {
		ack.Faults = &proto.FaultSummary{
			Crashes:      s.faults.Crashes,
			Repairs:      s.faults.Repairs,
			Transient:    s.faults.Transient,
			Requeues:     s.faults.Requeues,
			DeadLettered: s.faults.DeadLettered,
		}
	}
	ist := s.adm.Stats()
	ack.Ingest = &proto.IngestSummary{
		QueueDepth: ist.Depth,
		Accepted:   int(ist.Accepted),
		Rejected:   int(ist.RejectedFull),
		Throttled:  int(ist.Throttled),
		Batches:    int(ist.Batches),
	}
	es := s.eng.Stats()
	ack.Engine = &proto.EngineSummary{
		Rounds:       es.Rounds,
		Decisions:    es.Decisions,
		Launches:     es.Launches,
		Preemptions:  es.Preemptions,
		Requeues:     es.Requeues,
		DeadLettered: es.DeadLettered,
		QueueDepth:   es.QueueDepth,
		Reprofiles:   es.Reprofiles,
	}
	// Print whenever the estimator has learned anything: oracle-family
	// policies don't consult it, but it still learns from completions,
	// and status should say so (gate on samples, not models).
	if models, samples, reseeds := s.est.Stats(); models > 0 || samples > 0 {
		meanErr, errN := s.est.Error()
		ack.Predictor = &proto.PredictorSummary{
			Models:      models,
			Samples:     samples,
			Completions: s.est.Completions(),
			Reseeds:     reseeds,
			MeanAbsErr:  meanErr,
			ErrSamples:  errN,
		}
	}
	if ack.Done > 0 {
		ack.Extra = map[string]any{
			"avg_jct_s": (jctSum / time.Duration(ack.Done)).Seconds(),
			"max_jct_s": jctMax.Seconds(),
		}
	}
	ack.Durability = s.durabilitySummaryLocked()
	return ack
}
