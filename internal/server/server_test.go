package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"muri/internal/engine"
	"muri/internal/executor"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/trace"
)

// harness spins up a scheduler plus n executors on loopback TCP.
type harness struct {
	srv  *Server
	wg   sync.WaitGroup
	addr string
}

func startHarness(t *testing.T, cfg Config, executors int, fault executor.FaultFunc) *harness {
	t.Helper()
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Millisecond
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.0005 // 1 virtual second = 0.5ms wall
	}
	if cfg.ReportEvery == 0 {
		cfg.ReportEvery = 20 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{srv: srv, addr: ln.Addr().String()}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		_ = srv.Serve(ln)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < executors; i++ {
		agent := &executor.Agent{
			MachineID: fmt.Sprintf("machine-%d", i),
			GPUs:      8,
			Fault:     fault,
			Logf:      t.Logf,
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			_ = agent.Run(ctx, h.addr)
		}()
	}
	t.Cleanup(func() {
		cancel()
		srv.Close()
		h.wg.Wait()
	})
	// Wait for all executors to register.
	deadline := time.Now().Add(3 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.executors)
		srv.mu.Unlock()
		if n == executors {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d executors registered", n, executors)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *harness) client(t *testing.T) *Client {
	t.Helper()
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndSingleJob(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	id, err := c.Submit("gpt2", 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first job ID = %d, want 1", id)
	}
	st, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1", st.Done)
	}
	if st.Jobs[0].JCT <= 0 {
		t.Errorf("JCT = %v, want positive virtual duration", st.Jobs[0].JCT)
	}
}

func TestEndToEndInterleavedGroup(t *testing.T) {
	h := startHarness(t, Config{Policy: sched.NewMuriL()}, 1, nil)
	c := h.client(t)
	// Four complementary jobs on a single 8-GPU machine, demand 4×... to
	// force grouping we need demand > capacity: submit 12 single-GPU jobs
	// across the four bottleneck classes on one 8-GPU machine.
	models := []string{"shufflenet", "a2c", "gpt2", "vgg16"}
	for i := 0; i < 12; i++ {
		if _, err := c.Submit(models[i%4], 1, 60); err != nil {
			t.Fatal(err)
		}
	}
	// Observe that at some point a group with more than one job runs.
	sawGroup := make(chan struct{}, 1)
	go func() {
		for {
			h.srv.mu.Lock()
			for _, g := range h.srv.groups {
				if len(g.jobs) > 1 {
					select {
					case sawGroup <- struct{}{}:
					default:
					}
				}
			}
			h.srv.mu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()
	st, err := c.WaitAllDone(30*time.Second, 30*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v (status %+v)", err, st)
	}
	if st.Done != 12 {
		t.Fatalf("done = %d, want 12", st.Done)
	}
	select {
	case <-sawGroup:
	default:
		t.Error("no multi-job interleaving group was ever launched")
	}
}

func TestEndToEndMultipleExecutors(t *testing.T) {
	h := startHarness(t, Config{Policy: sched.NewMuriS()}, 3, nil)
	c := h.client(t)
	for i := 0; i < 10; i++ {
		gpus := 1
		if i%3 == 0 {
			gpus = 4
		}
		if _, err := c.Submit("bert", gpus, 40); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.WaitAllDone(30*time.Second, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 10 {
		t.Fatalf("done = %d, want 10", st.Done)
	}
}

func TestFaultRequeuesAndCompletes(t *testing.T) {
	var mu sync.Mutex
	failed := make(map[int64]bool)
	fault := func(jobID, iter int64) error {
		mu.Lock()
		defer mu.Unlock()
		// Fail job 1 exactly once, partway through.
		if jobID == 1 && !failed[jobID] && iter >= 10 {
			failed[jobID] = true
			return errors.New("injected fault")
		}
		return nil
	}
	h := startHarness(t, Config{}, 1, fault)
	c := h.client(t)
	if _, err := c.Submit("dqn", 1, 40); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("done = %d, want 1 (job should recover from fault)", st.Done)
	}
	mu.Lock()
	defer mu.Unlock()
	if !failed[1] {
		t.Error("fault was never injected")
	}
	h.srv.mu.Lock()
	faults := h.srv.eng.FaultsOf(1)
	h.srv.mu.Unlock()
	if faults != 1 {
		t.Errorf("recorded faults = %d, want 1", faults)
	}
}

func TestProfilingOnFirstSubmission(t *testing.T) {
	h := startHarness(t, Config{ProfileIterations: 2}, 1, nil)
	c := h.client(t)
	if _, err := c.Submit("resnet18", 1, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	h.srv.mu.Lock()
	prof, ok := h.srv.profiles["resnet18"]
	h.srv.mu.Unlock()
	if !ok {
		t.Fatal("no cached profile after first submission")
	}
	// Storage dominates ResNet18 in the zoo.
	if prof[0] < prof[1] || prof[0] < prof[3] {
		t.Errorf("profile %v: storage should dominate resnet18", prof)
	}
	// A second submission of the same model must reuse the cache (no
	// profiling state).
	if _, err := c.Submit("resnet18", 1, 10); err != nil {
		t.Fatal(err)
	}
	h.srv.mu.Lock()
	state := h.srv.eng.PhaseOf(2)
	h.srv.mu.Unlock()
	if state == engine.PhaseProfiling {
		t.Error("second submission re-profiled instead of reusing the cache")
	}
	if _, err := c.WaitAllDone(20*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	if _, err := c.Submit("nosuchmodel", 1, 10); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := c.Submit("gpt2", 1, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestStatusCounts(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Executors != 1 || len(st.Jobs) != 0 {
		t.Errorf("fresh status = %+v", st)
	}
	if _, err := c.Submit("a2c", 1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending+st.Running != 1 {
		t.Errorf("status after submit = %+v, want one live job", st)
	}
}

func TestExecutorDropRequeuesJobs(t *testing.T) {
	h := startHarness(t, Config{}, 2, nil)
	c := h.client(t)
	if _, err := c.Submit("bert", 1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Wait until it runs, then kill its executor's connection.
	deadline := time.Now().Add(5 * time.Second)
	var victim *executorConn
	for victim == nil {
		h.srv.mu.Lock()
		for _, g := range h.srv.groups {
			victim = g.exec
		}
		h.srv.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.conn.Close()
	// The job must be requeued and resume on the surviving executor.
	deadline = time.Now().Add(5 * time.Second)
	for {
		h.srv.mu.Lock()
		running := false
		for _, g := range h.srv.groups {
			if g.exec != victim {
				running = true
			}
		}
		execs := len(h.srv.executors)
		h.srv.mu.Unlock()
		if running && execs == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not migrate after executor drop")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// silentConn registers as an executor and then goes quiet without
// closing the TCP connection — a hung machine.
func TestLivenessEvictsSilentExecutor(t *testing.T) {
	cfg := Config{
		Interval:        20 * time.Millisecond,
		LivenessTimeout: 150 * time.Millisecond,
		TimeScale:       0.001,
	}
	cfg.Logf = t.Logf
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close(); wg.Wait() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	codec := newTestCodec(conn)
	if err := codec.register("silent-machine", 8); err != nil {
		t.Fatal(err)
	}
	// Registered?
	waitFor(t, 2*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.executors) == 1
	}, "executor never registered")
	// Now stay silent: no heartbeats. The reaper must evict it.
	waitFor(t, 3*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.executors) == 0
	}, "silent executor never evicted")
}

// TestHeartbeatKeepsExecutorAlive runs a real agent (which heartbeats)
// against a short liveness timeout: it must stay registered.
func TestHeartbeatKeepsExecutorAlive(t *testing.T) {
	cfg := Config{
		Interval:        20 * time.Millisecond,
		LivenessTimeout: 250 * time.Millisecond,
		TimeScale:       0.001,
	}
	cfg.Logf = t.Logf
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	ctx, cancel := context.WithCancel(context.Background())
	agent := &executor.Agent{MachineID: "alive", GPUs: 8, Logf: t.Logf,
		HeartbeatEvery: 50 * time.Millisecond}
	wg.Add(1)
	go func() { defer wg.Done(); _ = agent.Run(ctx, ln.Addr().String()) }()
	t.Cleanup(func() { cancel(); srv.Close(); wg.Wait() })

	waitFor(t, 2*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.executors) == 1
	}, "agent never registered")
	// Hold well past the liveness timeout; the heartbeats must keep it.
	time.Sleep(4 * cfg.LivenessTimeout)
	srv.mu.Lock()
	n := len(srv.executors)
	srv.mu.Unlock()
	if n != 1 {
		t.Fatalf("heartbeating executor evicted (registered=%d)", n)
	}
}

// TestRunWithRetryReconnects restarts the scheduler and checks the agent
// re-registers.
func TestRunWithRetryReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	cfg := Config{Interval: 20 * time.Millisecond, TimeScale: 0.001}
	cfg.Logf = t.Logf
	srv1 := New(cfg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv1.Serve(ln) }()

	ctx, cancel := context.WithCancel(context.Background())
	agent := &executor.Agent{MachineID: "retry", GPUs: 8, Logf: t.Logf,
		HeartbeatEvery: 30 * time.Millisecond}
	wg.Add(1)
	go func() { defer wg.Done(); _ = agent.RunWithRetry(ctx, addr, time.Second) }()
	t.Cleanup(func() { cancel(); wg.Wait() })

	waitFor(t, 2*time.Second, func() bool {
		srv1.mu.Lock()
		defer srv1.mu.Unlock()
		return len(srv1.executors) == 1
	}, "agent never registered with first server")
	srv1.Close()

	// Start a replacement scheduler on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := New(cfg)
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { srv2.Close() })
	waitFor(t, 5*time.Second, func() bool {
		srv2.mu.Lock()
		defer srv2.mu.Unlock()
		return len(srv2.executors) == 1
	}, "agent never re-registered after scheduler restart")
}

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testCodec is a minimal hand-rolled executor for protocol tests.
type testCodec struct{ c *proto.Codec }

func newTestCodec(conn net.Conn) *testCodec { return &testCodec{proto.NewCodec(conn)} }

func (tc *testCodec) register(machine string, gpus int) error {
	if err := tc.c.Write(&proto.Message{Type: proto.TypeRegister,
		Register: &proto.Register{MachineID: machine, GPUs: gpus}}); err != nil {
		return err
	}
	m, err := tc.c.Read()
	if err != nil {
		return err
	}
	if m.Type != proto.TypeRegisterAck || !m.RegisterAck.OK {
		return errors.New("registration rejected")
	}
	return nil
}

func TestClientReplayTrace(t *testing.T) {
	h := startHarness(t, Config{}, 2, nil)
	c := h.client(t)
	tr := trace.Generate(trace.GenConfig{
		Name: "replay", Jobs: 10, Seed: 31, MaxGPUs: 8,
		MeanInterarrival: 2 * time.Second, // virtual; compressed below
		MedianDuration:   time.Minute,
		MaxDuration:      2 * time.Minute,
	})
	ids, err := c.Replay(context.Background(), tr, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("replayed %d jobs, want 10", len(ids))
	}
	st, err := c.WaitAllDone(30*time.Second, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 10 {
		t.Errorf("done = %d, want 10", st.Done)
	}
}

func TestClientReplayValidation(t *testing.T) {
	h := startHarness(t, Config{}, 1, nil)
	c := h.client(t)
	if _, err := c.Replay(context.Background(), trace.Trace{}, 0); err == nil {
		t.Error("zero time scale accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := trace.Generate(trace.GenConfig{Name: "t", Jobs: 3, Seed: 1,
		MeanInterarrival: time.Hour, MedianDuration: time.Minute, MaxDuration: time.Minute, MaxGPUs: 1})
	if _, err := c.Replay(ctx, tr, 1.0); err == nil {
		t.Error("cancelled replay returned nil error")
	}
}
