// Package ingest is the scheduler daemon's admission front door: a
// bounded FIFO queue between the submission transports (proto stream,
// HTTP) and the scheduling engine, with per-tenant token-bucket rate
// limiting and explicit backpressure.
//
// The design decouples submission from scheduling: Offer runs under the
// admitter's own mutex — never the daemon's scheduling lock — so submit
// latency stays flat even while a planning round is in flight, and the
// schedule loop drains all arrivals since its last round as one batch
// (one engine admission round per scheduling interval, not one per job).
//
// Determinism: job IDs are assigned monotonically in Offer order under
// one lock, and Drain returns items strictly FIFO, so the engine admits
// jobs in exactly the order clients were acked — the decision-stream
// goldens and the driver-parity test stay byte-identical.
package ingest

import (
	"sync"
	"time"

	"muri/internal/proto"
)

// Typed admission errors. All are *Error values, so errors.Is against
// these sentinels works and callers can read the wire code and
// retryability off any of them.
var (
	// ErrQueueFull means the bounded queue is at capacity; the request
	// was well-formed and may be retried after backing off.
	ErrQueueFull = &Error{Code: proto.CodeQueueFull, Retryable: true,
		Msg: "ingest: admission queue full"}
	// ErrThrottled means the tenant is over its token-bucket rate.
	ErrThrottled = &Error{Code: proto.CodeThrottled, Retryable: true,
		Msg: "ingest: tenant over submission rate"}
	// ErrDraining means the scheduler is shutting down.
	ErrDraining = &Error{Code: proto.CodeDraining, Retryable: false,
		Msg: "ingest: scheduler draining; not accepting new jobs"}
)

// Error is a typed admission rejection: Code matches the wire constants
// in proto, and Retryable tells clients whether backing off and
// resubmitting can succeed.
type Error struct {
	Code      string
	Retryable bool
	Msg       string
}

func (e *Error) Error() string { return e.Msg }

// FromCode maps a wire rejection code back to its canonical sentinel,
// so clients can errors.Is against ErrQueueFull et al. across the
// connection. Unknown codes return nil.
func FromCode(code string) *Error {
	switch code {
	case proto.CodeQueueFull:
		return ErrQueueFull
	case proto.CodeThrottled:
		return ErrThrottled
	case proto.CodeDraining:
		return ErrDraining
	}
	return nil
}

// Item is one accepted submission waiting for admission into the
// engine. Spec.ID is already assigned.
type Item struct {
	Spec proto.JobSpec
	// At is the arrival wall time, for queue-wait accounting and JCT
	// attribution (a job's clock starts when it was accepted, not when a
	// batch drain got around to admitting it).
	At time.Time
	// Depth is the queue depth observed just before this item entered —
	// provenance detail for the ingest-queue wait span.
	Depth int
}

// Stats snapshots the admitter's counters.
type Stats struct {
	// Accepted counts submissions that entered the queue.
	Accepted uint64
	// RejectedFull counts queue-full rejections.
	RejectedFull uint64
	// Throttled counts per-tenant rate-limit rejections.
	Throttled uint64
	// Batches counts non-empty Drain calls (admission rounds that
	// admitted at least one job). Accepted/Batches is the average
	// admission batch size.
	Batches uint64
	// Depth is the current queue length.
	Depth int
}

// Config parameterizes an Admitter.
type Config struct {
	// Capacity bounds the queue; Offer rejects with ErrQueueFull beyond
	// it. Zero means 65536.
	Capacity int
	// TenantRate is each tenant's sustained submission rate in jobs per
	// second; zero or negative disables rate limiting.
	TenantRate float64
	// TenantBurst is each tenant's token-bucket burst size. Zero derives
	// max(1, TenantRate).
	TenantBurst int
	// Now supplies the clock (tests fake it). Nil means time.Now.
	Now func() time.Time
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Admitter is the bounded admission queue. Safe for concurrent use.
type Admitter struct {
	mu       sync.Mutex
	cfg      Config
	q        []Item
	nextID   int64
	draining bool
	tenants  map[string]*bucket
	stats    Stats
}

// New creates an admitter with defaults filled in.
func New(cfg Config) *Admitter {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 16
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = int(cfg.TenantRate)
		if cfg.TenantBurst < 1 {
			cfg.TenantBurst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Admitter{cfg: cfg, tenants: make(map[string]*bucket)}
}

// Offer validates admission capacity for one spec, assigns its job ID,
// and enqueues it. wasEmpty reports whether the queue was empty before
// this item — the caller's cue to wake the schedule loop exactly once
// per burst instead of once per job.
func (a *Admitter) Offer(spec proto.JobSpec) (id int64, wasEmpty bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return 0, false, ErrDraining
	}
	now := a.cfg.Now()
	if a.cfg.TenantRate > 0 && !a.takeTokenLocked(spec.Tenant, now) {
		a.stats.Throttled++
		return 0, false, ErrThrottled
	}
	if len(a.q) >= a.cfg.Capacity {
		a.stats.RejectedFull++
		return 0, false, ErrQueueFull
	}
	a.nextID++
	spec.ID = a.nextID
	wasEmpty = len(a.q) == 0
	a.q = append(a.q, Item{Spec: spec, At: now, Depth: len(a.q)})
	a.stats.Accepted++
	return spec.ID, wasEmpty, nil
}

// takeTokenLocked refills and spends one token from the tenant's
// bucket, reporting whether one was available. Callers hold a.mu.
func (a *Admitter) takeTokenLocked(tenant string, now time.Time) bool {
	b := a.tenants[tenant]
	if b == nil {
		b = &bucket{tokens: float64(a.cfg.TenantBurst), last: now}
		a.tenants[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.cfg.TenantRate
		if max := float64(a.cfg.TenantBurst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Drain removes and returns up to max queued items in FIFO order (max
// <= 0 means all). A non-empty drain counts one admission batch.
func (a *Admitter) Drain(max int) []Item {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.q)
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	items := make([]Item, n)
	copy(items, a.q)
	rest := copy(a.q, a.q[n:])
	a.q = a.q[:rest]
	a.stats.Batches++
	return items
}

// Depth returns the current queue length.
func (a *Admitter) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.q)
}

// Stats snapshots the counters (Depth included).
func (a *Admitter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.Depth = len(a.q)
	return st
}

// SetDraining flips drain mode: while true, every Offer is rejected
// with ErrDraining. Items already queued still drain.
func (a *Admitter) SetDraining(v bool) {
	a.mu.Lock()
	a.draining = v
	a.mu.Unlock()
}

// Drain-on-crash semantics: the admission queue is deliberately NOT
// durable. A submission is only persisted once a scheduling round
// drains it into the engine (the daemon logs the admission batch to its
// WAL at that point); accepted-but-undrained items die with the
// process. This is the one allowed loss window of the durability layer
// — the ack a client received for such an item promises an ID, not
// execution, and clients that need the stronger guarantee resubmit on
// a status miss. BumpNextID keeps ID assignment monotonic across that
// window: recovery replays the last durable ID, so fresh submissions
// can reuse at most the IDs of items that were lost (never IDs the
// engine has seen).

// BumpNextID raises the ID counter to at least id, so post-recovery
// submissions never reuse an ID the engine already admitted.
func (a *Admitter) BumpNextID(id int64) {
	a.mu.Lock()
	if id > a.nextID {
		a.nextID = id
	}
	a.mu.Unlock()
}

// NextID reports the last assigned submission ID (for snapshots).
func (a *Admitter) NextID() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextID
}
