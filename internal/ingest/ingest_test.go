package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"muri/internal/proto"
)

func spec(model, tenant string) proto.JobSpec {
	return proto.JobSpec{Model: model, Tenant: tenant, GPUs: 1, Iterations: 10}
}

func TestOfferAssignsMonotonicIDsAndDrainsFIFO(t *testing.T) {
	a := New(Config{Capacity: 100})
	for i := 0; i < 10; i++ {
		id, wasEmpty, err := a.Offer(spec(fmt.Sprintf("m%d", i), ""))
		if err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
		if id != int64(i+1) {
			t.Fatalf("offer %d assigned id %d, want %d", i, id, i+1)
		}
		if wasEmpty != (i == 0) {
			t.Errorf("offer %d wasEmpty = %v", i, wasEmpty)
		}
	}
	items := a.Drain(0)
	if len(items) != 10 {
		t.Fatalf("drained %d items, want 10", len(items))
	}
	for i, it := range items {
		if it.Spec.ID != int64(i+1) || it.Spec.Model != fmt.Sprintf("m%d", i) {
			t.Errorf("drain[%d] = id %d model %s, want FIFO order", i, it.Spec.ID, it.Spec.Model)
		}
	}
	if a.Depth() != 0 {
		t.Errorf("depth after full drain = %d", a.Depth())
	}
}

func TestPartialDrainKeepsOrder(t *testing.T) {
	a := New(Config{Capacity: 100})
	for i := 0; i < 7; i++ {
		if _, _, err := a.Offer(spec("gpt2", "")); err != nil {
			t.Fatal(err)
		}
	}
	first := a.Drain(3)
	second := a.Drain(0)
	if len(first) != 3 || len(second) != 4 {
		t.Fatalf("drains = %d + %d, want 3 + 4", len(first), len(second))
	}
	want := int64(1)
	for _, it := range append(first, second...) {
		if it.Spec.ID != want {
			t.Fatalf("drain order broke: got id %d, want %d", it.Spec.ID, want)
		}
		want++
	}
	if st := a.Stats(); st.Batches != 2 {
		t.Errorf("batches = %d, want 2", st.Batches)
	}
}

func TestQueueFullIsTypedAndRetryable(t *testing.T) {
	a := New(Config{Capacity: 2})
	for i := 0; i < 2; i++ {
		if _, _, err := a.Offer(spec("gpt2", "")); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := a.Offer(spec("gpt2", ""))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity offer returned %v, want ErrQueueFull", err)
	}
	var ie *Error
	if !errors.As(err, &ie) || !ie.Retryable || ie.Code != proto.CodeQueueFull {
		t.Fatalf("queue-full error not typed retryable: %+v", err)
	}
	st := a.Stats()
	if st.Accepted != 2 || st.RejectedFull != 1 {
		t.Errorf("stats = %+v, want 2 accepted / 1 rejected", st)
	}
	// Draining frees capacity again.
	a.Drain(0)
	if _, _, err := a.Offer(spec("gpt2", "")); err != nil {
		t.Errorf("offer after drain: %v", err)
	}
}

func TestTenantTokenBucketThrottles(t *testing.T) {
	now := time.Unix(0, 0)
	a := New(Config{Capacity: 100, TenantRate: 2, TenantBurst: 3,
		Now: func() time.Time { return now }})
	// Burst of 3 passes, the 4th throttles.
	for i := 0; i < 3; i++ {
		if _, _, err := a.Offer(spec("gpt2", "team-a")); err != nil {
			t.Fatalf("burst offer %d: %v", i, err)
		}
	}
	if _, _, err := a.Offer(spec("gpt2", "team-a")); !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-burst offer returned %v, want ErrThrottled", err)
	}
	// Another tenant has its own bucket.
	if _, _, err := a.Offer(spec("gpt2", "team-b")); err != nil {
		t.Errorf("other tenant throttled too: %v", err)
	}
	// Refill: 1 second at 2 tokens/s buys two more submissions.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if _, _, err := a.Offer(spec("gpt2", "team-a")); err != nil {
			t.Fatalf("post-refill offer %d: %v", i, err)
		}
	}
	if _, _, err := a.Offer(spec("gpt2", "team-a")); !errors.Is(err, ErrThrottled) {
		t.Fatalf("third post-refill offer returned %v, want ErrThrottled", err)
	}
	if st := a.Stats(); st.Throttled != 2 {
		t.Errorf("throttled = %d, want 2", st.Throttled)
	}
}

func TestThrottleDoesNotSpendQueueCapacity(t *testing.T) {
	now := time.Unix(0, 0)
	a := New(Config{Capacity: 1, TenantRate: 1, TenantBurst: 1,
		Now: func() time.Time { return now }})
	if _, _, err := a.Offer(spec("gpt2", "t")); err != nil {
		t.Fatal(err)
	}
	// Queue is full AND the tenant is out of tokens: the throttle fires
	// first and the rejection must not double-count.
	_, _, err := a.Offer(spec("gpt2", "t"))
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", err)
	}
	st := a.Stats()
	if st.RejectedFull != 0 || st.Throttled != 1 {
		t.Errorf("stats = %+v, want only one throttle", st)
	}
}

func TestDrainingRejectsNewOffersButKeepsQueue(t *testing.T) {
	a := New(Config{Capacity: 10})
	if _, _, err := a.Offer(spec("gpt2", "")); err != nil {
		t.Fatal(err)
	}
	a.SetDraining(true)
	_, _, err := a.Offer(spec("gpt2", ""))
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("draining offer returned %v, want ErrDraining", err)
	}
	var ie *Error
	if !errors.As(err, &ie) || ie.Retryable {
		t.Fatalf("draining error should not be retryable: %+v", err)
	}
	if got := a.Drain(0); len(got) != 1 {
		t.Errorf("queued item lost on drain mode: drained %d", len(got))
	}
}

func TestFromCodeRoundTrip(t *testing.T) {
	for _, sentinel := range []*Error{ErrQueueFull, ErrThrottled, ErrDraining} {
		if got := FromCode(sentinel.Code); got != sentinel {
			t.Errorf("FromCode(%q) = %v, want sentinel", sentinel.Code, got)
		}
	}
	if got := FromCode("nonsense"); got != nil {
		t.Errorf("FromCode(nonsense) = %v, want nil", got)
	}
}

// TestConcurrentOffersAndDrains hammers the admitter from many
// goroutines under -race: every accepted ID must come out exactly once,
// in strictly increasing order within the drain stream.
func TestConcurrentOffersAndDrains(t *testing.T) {
	a := New(Config{Capacity: 1 << 14})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := a.Offer(spec("gpt2", fmt.Sprintf("t%d", w))); err != nil {
					t.Errorf("offer: %v", err) // capacity is ample; nothing may fail
				}
			}
		}(w)
	}
	// Drain concurrently with the offers, then sweep the remainder.
	var drained []Item
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(drained) < workers*per {
			items := a.Drain(64)
			if len(items) == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			drained = append(drained, items...)
		}
	}()
	wg.Wait()
	<-done
	if len(drained) != workers*per {
		t.Fatalf("drained %d items, accepted %d", len(drained), workers*per)
	}
	seen := make(map[int64]bool, len(drained))
	prev := int64(0)
	for _, it := range drained {
		if seen[it.Spec.ID] {
			t.Fatalf("id %d drained twice", it.Spec.ID)
		}
		seen[it.Spec.ID] = true
		if it.Spec.ID <= prev {
			t.Fatalf("drain order not increasing: %d after %d", it.Spec.ID, prev)
		}
		prev = it.Spec.ID
	}
}
