package cluster

import (
	"math/rand"
	"testing"
)

func TestNewCounts(t *testing.T) {
	c := New(8, 8)
	if c.TotalGPUs() != 64 {
		t.Errorf("TotalGPUs = %d, want 64", c.TotalGPUs())
	}
	if c.FreeGPUs() != 64 || c.UsedGPUs() != 0 {
		t.Errorf("fresh cluster free=%d used=%d, want 64/0", c.FreeGPUs(), c.UsedGPUs())
	}
	if len(c.Machines()) != 8 {
		t.Errorf("machines = %d, want 8", len(c.Machines()))
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, args := range [][2]int{{0, 8}, {8, 0}, {-1, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", args[0], args[1])
				}
			}()
			New(args[0], args[1])
		}()
	}
}

func TestSingleMachineBestFit(t *testing.T) {
	c := New(2, 8)
	// Fill machine 0 partially so it has 4 free; machine 1 has 8 free.
	a0, ok := c.Allocate(4)
	if !ok {
		t.Fatal("first allocation failed")
	}
	if len(a0.Slots) != 1 {
		t.Fatalf("allocation spans %d machines, want 1", len(a0.Slots))
	}
	// A 4-GPU request should best-fit onto the half-full machine.
	a1, ok := c.Allocate(4)
	if !ok {
		t.Fatal("second allocation failed")
	}
	m0 := a0.Machines()[0]
	if a1.Machines()[0] != m0 {
		t.Errorf("best fit chose machine %d, want %d (partially used)", a1.Machines()[0], m0)
	}
	if c.FreeGPUs() != 8 {
		t.Errorf("free = %d, want 8", c.FreeGPUs())
	}
}

func TestMultiMachineNeedsFullyFree(t *testing.T) {
	c := New(3, 8)
	if _, ok := c.Allocate(1); !ok { // dirty one machine
		t.Fatal("allocate 1 failed")
	}
	// 16 GPUs need two fully free machines; two remain.
	a, ok := c.Allocate(16)
	if !ok {
		t.Fatal("allocate 16 failed with two free machines")
	}
	if len(a.Slots) != 2 {
		t.Errorf("16-GPU allocation spans %d machines, want 2", len(a.Slots))
	}
	// Another 16 GPUs cannot fit: no two fully free machines remain.
	if _, ok := c.Allocate(16); ok {
		t.Error("allocate 16 succeeded without two fully free machines")
	}
}

func TestAllocateInsufficientCapacity(t *testing.T) {
	c := New(1, 8)
	if _, ok := c.Allocate(9); ok {
		t.Error("allocated more than total capacity")
	}
	if c.FreeGPUs() != 8 {
		t.Errorf("failed allocation changed state: free = %d", c.FreeGPUs())
	}
}

func TestAllocateZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Allocate(0) should panic")
		}
	}()
	New(1, 8).Allocate(0)
}

func TestReleaseRestores(t *testing.T) {
	c := New(2, 8)
	a, _ := c.Allocate(8)
	b, _ := c.Allocate(8)
	c.Release(a)
	if c.FreeGPUs() != 8 {
		t.Errorf("free = %d after one release, want 8", c.FreeGPUs())
	}
	c.Release(b)
	if c.FreeGPUs() != 16 || c.UsedGPUs() != 0 {
		t.Errorf("free=%d used=%d after all releases, want 16/0", c.FreeGPUs(), c.UsedGPUs())
	}
}

func TestOverReleasePanics(t *testing.T) {
	c := New(1, 8)
	a, _ := c.Allocate(2)
	c.Release(a)
	defer func() {
		if recover() == nil {
			t.Error("double release should panic")
		}
	}()
	c.Release(a)
}

func TestReset(t *testing.T) {
	c := New(4, 8)
	c.Allocate(8)
	c.Allocate(3)
	c.Reset()
	if c.FreeGPUs() != 32 || c.UsedGPUs() != 0 {
		t.Errorf("after Reset free=%d used=%d, want 32/0", c.FreeGPUs(), c.UsedGPUs())
	}
}

func TestRandomizedInvariant(t *testing.T) {
	// Allocate and release randomly; free+used must always equal total and
	// per-machine free must stay within [0, GPUs].
	rng := rand.New(rand.NewSource(11))
	c := New(8, 8)
	var live []Alloc
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 && len(live) > 0 {
			i := rng.Intn(len(live))
			c.Release(live[i])
			live = append(live[:i], live[i+1:]...)
		} else {
			gpus := 1 << rng.Intn(6) // 1..32
			if a, ok := c.Allocate(gpus); ok {
				live = append(live, a)
			}
		}
		if c.FreeGPUs()+c.UsedGPUs() != c.TotalGPUs() {
			t.Fatalf("step %d: free %d + used %d != total %d",
				step, c.FreeGPUs(), c.UsedGPUs(), c.TotalGPUs())
		}
		for _, m := range c.Machines() {
			if m.Free() < 0 || m.Free() > m.GPUs {
				t.Fatalf("step %d: machine %d free %d out of range", step, m.ID, m.Free())
			}
		}
	}
}

func TestFragmentationAvoidance(t *testing.T) {
	// Descending allocation order should leave room for an 8-GPU job:
	// allocate 8, then four 1-GPU jobs; the singles must pile onto as few
	// machines as possible, keeping a machine fully free.
	c := New(3, 8)
	if _, ok := c.Allocate(8); !ok {
		t.Fatal("allocate 8 failed")
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.Allocate(1); !ok {
			t.Fatalf("allocate 1 (%d) failed", i)
		}
	}
	// One machine holds the 8-GPU job, one holds the singles, one is free.
	if _, ok := c.Allocate(8); !ok {
		t.Error("fragmentation: no room left for a second 8-GPU job")
	}
}

func TestDownMachinesExcludedFromPlacement(t *testing.T) {
	c := New(3, 4)
	c.SetDown(0)
	if c.TotalGPUs() != 12 {
		t.Errorf("TotalGPUs = %d, want 12 (nominal capacity includes down machines)", c.TotalGPUs())
	}
	if c.AvailableGPUs() != 8 || c.FreeGPUs() != 8 {
		t.Errorf("available = %d free = %d, want 8/8", c.AvailableGPUs(), c.FreeGPUs())
	}
	// Single-machine placement must skip the down machine.
	for i := 0; i < 2; i++ {
		a, ok := c.Allocate(4)
		if !ok {
			t.Fatalf("allocate 4 (%d) failed with two machines up", i)
		}
		if a.Slots[0] != 0 {
			t.Fatalf("allocation landed on down machine: %v", a.Slots)
		}
	}
	if _, ok := c.Allocate(1); ok {
		t.Error("allocation succeeded with every in-service GPU taken")
	}
	// Multi-machine placement must not count the down machine as fully free.
	c.Reset()
	if _, ok := c.Allocate(12); ok {
		t.Error("12-GPU allocation succeeded with only 8 GPUs in service")
	}
	if a, ok := c.Allocate(8); !ok || a.Slots[0] != 0 {
		t.Errorf("8-GPU allocation = %v ok=%v, want machines 1+2", a.Slots, ok)
	}
	// Reset preserves availability; SetUp restores it.
	c.Reset()
	if c.AvailableGPUs() != 8 {
		t.Errorf("reset cleared the down flag: available = %d", c.AvailableGPUs())
	}
	c.SetUp(0)
	if c.AvailableGPUs() != 12 || c.FreeGPUs() != 12 {
		t.Errorf("after repair available = %d free = %d, want 12/12", c.AvailableGPUs(), c.FreeGPUs())
	}
	if _, ok := c.Allocate(12); !ok {
		t.Error("12-GPU allocation failed after repair")
	}
}

func TestSetDownIsIdempotentAndChecksDrain(t *testing.T) {
	c := New(2, 4)
	c.SetDown(1)
	c.SetDown(1) // idempotent
	if c.AvailableGPUs() != 4 {
		t.Errorf("double SetDown counted twice: available = %d", c.AvailableGPUs())
	}
	c.SetUp(1)
	c.SetUp(1)
	if c.AvailableGPUs() != 8 {
		t.Errorf("double SetUp counted twice: available = %d", c.AvailableGPUs())
	}
	if _, ok := c.Allocate(4); !ok {
		t.Fatal("allocate failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetDown on an undrained machine did not panic")
		}
	}()
	c.SetDown(0) // best-fit put the 4-GPU job on machine 0
}
