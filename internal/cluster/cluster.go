// Package cluster models the GPU cluster: machines, their GPU inventory,
// and the placement policy. The paper's testbed is 8 machines × 8 V100
// GPUs (§6.1); placement allocates GPUs to jobs in descending order of
// GPU requirement and keeps each job on as few machines as possible to
// avoid fragmentation (§5).
package cluster

import (
	"fmt"
	"sort"
)

// Machine is one server with a fixed number of GPUs.
type Machine struct {
	// ID is the machine index within the cluster.
	ID int
	// GPUs is the machine's total GPU count.
	GPUs int

	free int
	down bool
}

// Free returns the number of currently unallocated GPUs.
func (m *Machine) Free() int { return m.free }

// Down reports whether the machine is out of service (crashed).
func (m *Machine) Down() bool { return m.down }

// Cluster is a set of machines with GPU allocation tracking.
type Cluster struct {
	machines []*Machine
	total    int
	used     int
	// down is the GPU capacity of out-of-service machines.
	down int
}

// New creates a cluster of n machines with gpusPerMachine GPUs each.
func New(n, gpusPerMachine int) *Cluster {
	if n <= 0 || gpusPerMachine <= 0 {
		panic("cluster: machine and GPU counts must be positive")
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		m := &Machine{ID: i, GPUs: gpusPerMachine, free: gpusPerMachine}
		c.machines = append(c.machines, m)
		c.total += gpusPerMachine
	}
	return c
}

// Machines returns the machines in ID order. Callers must not mutate them.
func (c *Cluster) Machines() []*Machine { return c.machines }

// TotalGPUs returns the cluster's nominal GPU capacity, including
// machines currently out of service.
func (c *Cluster) TotalGPUs() int { return c.total }

// AvailableGPUs returns the capacity of in-service machines — what a
// scheduler can actually plan against under degraded conditions. With no
// machine down it equals TotalGPUs.
func (c *Cluster) AvailableGPUs() int { return c.total - c.down }

// FreeGPUs returns the number of unallocated GPUs across in-service
// machines.
func (c *Cluster) FreeGPUs() int { return c.total - c.down - c.used }

// UsedGPUs returns the number of allocated GPUs.
func (c *Cluster) UsedGPUs() int { return c.used }

// Alloc records a placement: how many GPUs were taken from each machine.
type Alloc struct {
	// Slots maps machine ID to the number of GPUs taken on it.
	Slots map[int]int
	// GPUs is the total size of the allocation.
	GPUs int
}

// Machines returns the machine IDs of the allocation in ascending order.
func (a Alloc) Machines() []int {
	ids := make([]int, 0, len(a.Slots))
	for id := range a.Slots {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Allocate reserves gpus GPUs. Placement minimizes the number of machines
// used: a job that fits on one machine goes to the machine with the least
// sufficient free capacity (best fit); larger jobs take whole machines.
// It returns false without side effects when capacity is insufficient.
func (c *Cluster) Allocate(gpus int) (Alloc, bool) {
	if gpus <= 0 {
		panic(fmt.Sprintf("cluster: allocate %d GPUs", gpus))
	}
	if gpus > c.FreeGPUs() {
		return Alloc{}, false
	}
	per := c.machines[0].GPUs
	if gpus <= per {
		// Best fit: the machine with the smallest free count that still
		// fits, preferring lower IDs on ties for determinism.
		best := -1
		for _, m := range c.machines {
			if !m.down && m.free >= gpus && (best == -1 || m.free < c.machines[best].free) {
				best = m.ID
			}
		}
		if best == -1 {
			return Alloc{}, false
		}
		c.machines[best].free -= gpus
		c.used += gpus
		return Alloc{Slots: map[int]int{best: gpus}, GPUs: gpus}, true
	}
	// Multi-machine job: needs ⌈gpus/per⌉ machines; all but the last must
	// be fully free (distributed workers are balanced across machines).
	need := (gpus + per - 1) / per
	var fullyFree []int
	for _, m := range c.machines {
		if !m.down && m.free == m.GPUs {
			fullyFree = append(fullyFree, m.ID)
		}
	}
	if len(fullyFree) < need {
		return Alloc{}, false
	}
	slots := make(map[int]int, need)
	remaining := gpus
	for _, id := range fullyFree[:need] {
		take := per
		if take > remaining {
			take = remaining
		}
		slots[id] = take
		c.machines[id].free -= take
		remaining -= take
	}
	c.used += gpus
	return Alloc{Slots: slots, GPUs: gpus}, true
}

// Release returns an allocation's GPUs to the cluster.
func (c *Cluster) Release(a Alloc) {
	for id, n := range a.Slots {
		if id < 0 || id >= len(c.machines) {
			panic(fmt.Sprintf("cluster: release on unknown machine %d", id))
		}
		m := c.machines[id]
		if m.free+n > m.GPUs {
			panic(fmt.Sprintf("cluster: over-release on machine %d", id))
		}
		m.free += n
	}
	c.used -= a.GPUs
	if c.used < 0 {
		panic("cluster: negative usage after release")
	}
}

// Reset frees every allocation. Schedulers that recompute the whole
// placement each interval use it instead of tracking individual releases.
// Machine availability (SetDown/SetUp) survives a reset: a crashed
// machine stays crashed across scheduling rounds.
func (c *Cluster) Reset() {
	for _, m := range c.machines {
		m.free = m.GPUs
	}
	c.used = 0
}

// SetDown takes a machine out of service. The caller must have drained
// it first (every allocation touching it released); a crash preempts the
// units it hosts before the capacity disappears.
func (c *Cluster) SetDown(id int) {
	if id < 0 || id >= len(c.machines) {
		panic(fmt.Sprintf("cluster: SetDown on unknown machine %d", id))
	}
	m := c.machines[id]
	if m.down {
		return
	}
	if m.free != m.GPUs {
		panic(fmt.Sprintf("cluster: SetDown on machine %d with %d GPUs still allocated", id, m.GPUs-m.free))
	}
	m.down = true
	c.down += m.GPUs
}

// SetUp returns a machine to service after a repair.
func (c *Cluster) SetUp(id int) {
	if id < 0 || id >= len(c.machines) {
		panic(fmt.Sprintf("cluster: SetUp on unknown machine %d", id))
	}
	m := c.machines[id]
	if !m.down {
		return
	}
	m.down = false
	c.down -= m.GPUs
}
