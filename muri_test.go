package muri_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"muri"
	"muri/internal/executor"
)

func TestModelsZoo(t *testing.T) {
	models := muri.Models()
	if len(models) != 8 {
		t.Fatalf("zoo has %d models, want 8", len(models))
	}
	m, err := muri.ModelByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if m.Bottleneck() != muri.GPU {
		t.Errorf("gpt2 bottleneck = %v, want GPU", m.Bottleneck())
	}
}

func TestEfficiencyAndPlan(t *testing.T) {
	var profiles []muri.StageTimes
	for _, name := range []string{"shufflenet", "a2c", "gpt2", "vgg16"} {
		m, err := muri.ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, m.Stages)
	}
	plan := muri.PlanGroup(profiles)
	if plan.Efficiency <= 0 || plan.Efficiency > 1 {
		t.Errorf("plan efficiency = %v, want (0, 1]", plan.Efficiency)
	}
	if plan.IterTime <= 0 {
		t.Errorf("plan iteration time = %v, want > 0", plan.IterTime)
	}
	if got := muri.GroupIterationTime(profiles); got <= 0 {
		t.Errorf("GroupIterationTime = %v, want > 0", got)
	}
	if eff := muri.Efficiency(profiles); eff <= 0 {
		t.Errorf("Efficiency = %v, want > 0", eff)
	}
}

func TestSimulateSmallTrace(t *testing.T) {
	tr := muri.GenerateTrace(muri.TraceGen{Name: "t", Jobs: 40, Seed: 3, MaxGPUs: 8,
		MeanInterarrival: 20 * time.Second, MedianDuration: 8 * time.Minute, MaxDuration: 30 * time.Minute})
	cfg := muri.DefaultSimConfig()
	cfg.Machines = 2
	res := muri.Simulate(cfg, tr, muri.MuriS())
	if res.Summary.Jobs != 40 {
		t.Errorf("completed %d jobs, want 40", res.Summary.Jobs)
	}
	base := muri.Simulate(cfg, tr, muri.FIFO())
	if base.Summary.Jobs != 40 {
		t.Errorf("FIFO completed %d jobs, want 40", base.Summary.Jobs)
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]muri.Policy{
		"fifo": muri.FIFO(), "srtf": muri.SRTF(), "srsf": muri.SRSF(),
		"tiresias": muri.Tiresias(), "themis": muri.Themis(),
		"antman": muri.AntMan(), "muri-s": muri.MuriS(), "muri-l": muri.MuriL(),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("policy name = %q, want %q", p.Name(), name)
		}
	}
}

func TestPhillyTraces(t *testing.T) {
	traces := muri.PhillyTraces(64)
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want 4", len(traces))
	}
	if len(traces[0].Specs) != 992 || len(traces[3].Specs) != 5755 {
		t.Errorf("trace sizes = %d..%d, want 992..5755", len(traces[0].Specs), len(traces[3].Specs))
	}
}

// TestLiveSchedulerEndToEnd drives the public distributed API: a
// scheduler daemon, one in-process executor agent, and a client.
func TestLiveSchedulerEndToEnd(t *testing.T) {
	srv := muri.NewServer(muri.ServerConfig{
		Interval:    30 * time.Millisecond,
		TimeScale:   0.0005,
		ReportEvery: 20 * time.Millisecond,
		Logf:        t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	ctx, cancel := context.WithCancel(context.Background())
	agent := &executor.Agent{MachineID: "m0", GPUs: 8, Logf: t.Logf}
	wg.Add(1)
	go func() { defer wg.Done(); _ = agent.Run(ctx, ln.Addr().String()) }()
	defer func() { cancel(); srv.Close(); wg.Wait() }()

	c, err := muri.DialScheduler(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, m := range []string{"gpt2", "a2c", "shufflenet", "vgg16"} {
		if _, err := c.Submit(m, 1, 40); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.WaitAllDone(30*time.Second, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 4 {
		t.Errorf("done = %d, want 4", st.Done)
	}
}

func TestMultiResourceBaselineFacade(t *testing.T) {
	if muri.DRF().Name() != "drf" || muri.Tetris().Name() != "tetris" || muri.Gittins().Name() != "gittins" {
		t.Error("facade policy names wrong")
	}
	tr := muri.GenerateTrace(muri.TraceGen{Name: "t", Jobs: 25, Seed: 5, MaxGPUs: 8,
		MeanInterarrival: 30 * time.Second, MedianDuration: 8 * time.Minute, MaxDuration: 20 * time.Minute})
	cfg := muri.DefaultSimConfig()
	cfg.Machines = 2
	for _, p := range []muri.Policy{muri.DRF(), muri.Tetris(), muri.Gittins()} {
		res := muri.Simulate(cfg, tr, p)
		if res.Summary.Jobs != 25 {
			t.Errorf("%s completed %d jobs, want 25", p.Name(), res.Summary.Jobs)
		}
	}
	c := muri.JCTDistribution(muri.Simulate(cfg, tr, muri.MuriS()))
	if c.Len() != 25 || c.Quantile(0.5) <= 0 {
		t.Errorf("JCT distribution: %v", c)
	}
}
