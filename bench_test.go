// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment at
// reduced scale (truncated traces, same 64-GPU cluster) and reports the
// headline numbers as custom metrics, so `go test -bench=.` both times
// the harness and reproduces the paper's shape:
//
//	go test -bench=Table4 -benchtime=1x
//	go test -bench=. -benchmem          # everything
//
// Paper-scale runs go through cmd/murisim instead.
package muri_test

import (
	"testing"
	"time"

	"muri/internal/blossom"
	"muri/internal/core"
	"muri/internal/experiments"
	"muri/internal/explain"
	"muri/internal/interleave"
	"muri/internal/job"
	"muri/internal/metrics"
	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/sim"
	"muri/internal/trace"
	"muri/internal/workload"
)

// benchOpts returns reduced-scale experiment options: four truncated
// traces on the full 8×8 cluster. Small enough that a full figure sweep
// stays in seconds, large enough to preserve the contention the paper's
// results depend on.
func benchOpts() experiments.Options {
	cfgs := trace.PhillyConfigs(64)
	var traces []trace.Trace
	for i := range cfgs {
		cfgs[i].Jobs = 250
		traces = append(traces, trace.Generate(cfgs[i]))
	}
	return experiments.Options{Machines: 8, GPUsPerMachine: 8, Traces: traces}
}

// speedup reports baseline/muri as a bench metric.
func speedup(results []experiments.PolicyResult, baseline, ref string) float64 {
	var b, r metrics.Summary
	for _, x := range results {
		switch x.Policy {
		case baseline:
			b = x.Summary
		case ref:
			r = x.Summary
		}
	}
	return metrics.Speedup(b.AvgJCT, r.AvgJCT)
}

// BenchmarkTable1StageBreakdown regenerates Table 1 (stage-duration
// percentages per model).
func BenchmarkTable1StageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1()
		if len(tbl.Rows) != 4 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkTable2InterleaveThroughput regenerates Table 2 (4-job
// interleaving) and reports the total normalized throughput (paper: 2.00).
func BenchmarkTable2InterleaveThroughput(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = experiments.Table2().Total
	}
	b.ReportMetric(total, "total-norm-tput")
}

// BenchmarkTable4TestbedKnown regenerates Table 4 (testbed, known
// durations) and reports Muri-S's JCT speedups (paper: 2.12× over SRTF,
// 2.03× over SRSF).
func BenchmarkTable4TestbedKnown(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Table4()
	}
	b.ReportMetric(speedup(results, "srtf", "muri-s"), "jct-speedup-vs-srtf")
	b.ReportMetric(speedup(results, "srsf", "muri-s"), "jct-speedup-vs-srsf")
}

// BenchmarkTable5TestbedUnknown regenerates Table 5 (testbed, unknown
// durations) and reports Muri-L's JCT speedups (paper: 2.59× over
// Tiresias, 3.56× over Themis).
func BenchmarkTable5TestbedUnknown(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Table5()
	}
	b.ReportMetric(speedup(results, "tiresias", "muri-l"), "jct-speedup-vs-tiresias")
	b.ReportMetric(speedup(results, "themis", "muri-l"), "jct-speedup-vs-themis")
}

// BenchmarkFigure8DetailedMetrics regenerates the Figure 8 time series
// and reports Muri-S's mean queue length against SRSF's (the paper shows
// Muri draining the queue much faster).
func BenchmarkFigure8DetailedMetrics(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure8()
	}
	for _, r := range results {
		switch r.Policy {
		case "srsf":
			b.ReportMetric(r.Series.MeanQueueLen(), "srsf-mean-queue")
		case "muri-s":
			b.ReportMetric(r.Series.MeanQueueLen(), "muri-s-mean-queue")
			b.ReportMetric(r.Series.MeanUtil(workload.GPU), "muri-s-gpu-util")
		}
	}
}

// BenchmarkFigure9SimKnown regenerates Figure 9 (traces 1–4 and 1'–4',
// known durations) and reports the mean JCT speedup of Muri-S over SRTF
// across all eight traces (paper range: 1.13–2.26×).
func BenchmarkFigure9SimKnown(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure9()
	}
	b.ReportMetric(meanSpeedupByTrace(results, "srtf", "muri-s"), "mean-jct-speedup-vs-srtf")
	b.ReportMetric(meanSpeedupByTrace(results, "srsf", "muri-s"), "mean-jct-speedup-vs-srsf")
}

// BenchmarkFigure10SimUnknown regenerates Figure 10 (unknown durations,
// AntMan included; paper JCT range 1.53–6.15×).
func BenchmarkFigure10SimUnknown(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure10()
	}
	b.ReportMetric(meanSpeedupByTrace(results, "tiresias", "muri-l"), "mean-jct-speedup-vs-tiresias")
	b.ReportMetric(meanSpeedupByTrace(results, "antman", "muri-l"), "mean-jct-speedup-vs-antman")
}

// meanSpeedupByTrace averages baseline/ref JCT ratios per trace.
func meanSpeedupByTrace(results []experiments.PolicyResult, baseline, ref string) float64 {
	type pair struct{ b, r metrics.Summary }
	byTrace := make(map[string]*pair)
	for _, x := range results {
		p := byTrace[x.Trace]
		if p == nil {
			p = &pair{}
			byTrace[x.Trace] = p
		}
		switch x.Policy {
		case baseline:
			p.b = x.Summary
		case ref:
			p.r = x.Summary
		}
	}
	sum, n := 0.0, 0
	for _, p := range byTrace {
		if p.b.Jobs > 0 && p.r.Jobs > 0 {
			sum += metrics.Speedup(p.b.AvgJCT, p.r.AvgJCT)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkFigure11AblationOrderingBlossom regenerates Figure 11 (worst
// ordering and no-Blossom ablations; the paper reports ≤14% JCT and ≤6%
// makespan inflation for no-Blossom).
func BenchmarkFigure11AblationOrderingBlossom(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure11()
	}
	b.ReportMetric(meanSpeedupByTrace(results, "muri-l-worst-order", "muri-l"), "jct-vs-worst-order")
	b.ReportMetric(meanSpeedupByTrace(results, "muri-l-no-blossom", "muri-l"), "jct-vs-no-blossom")
}

// BenchmarkFigure12GroupSize regenerates Figure 12 (group-size cap 2–4
// against AntMan on zero-submit traces).
func BenchmarkFigure12GroupSize(b *testing.B) {
	opt := benchOpts()
	var results []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure12()
	}
	for _, cap := range []string{"muri-l-2", "muri-l-3", "muri-l-4"} {
		b.ReportMetric(meanSpeedupByTrace(results, "antman", cap), "jct-speedup-"+cap)
	}
}

// BenchmarkFigure13WorkloadMix regenerates Figure 13 (speedup versus the
// number of bottleneck job types; paper: 1→2.26× over SRTF, 1→3.92× over
// Tiresias as types go 1→4).
func BenchmarkFigure13WorkloadMix(b *testing.B) {
	opt := benchOpts()
	opt.MaxJobs = 250
	var results []experiments.Figure13Result
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure13()
	}
	b.ReportMetric(results[0].SpeedupKnown, "speedup-1type")
	b.ReportMetric(results[3].SpeedupKnown, "speedup-4types")
}

// BenchmarkFigure14ProfilingNoise regenerates Figure 14 (profiling noise
// 0→1; paper: normalized JCT grows to ~1.3×, makespan stays ~1×).
func BenchmarkFigure14ProfilingNoise(b *testing.B) {
	opt := benchOpts()
	opt.MaxJobs = 250
	var results []experiments.Figure14Result
	for i := 0; i < b.N; i++ {
		results, _ = opt.Figure14()
	}
	b.ReportMetric(results[len(results)-1].NormJCT, "norm-jct-at-noise-1")
	b.ReportMetric(results[len(results)-1].NormMakespan, "norm-makespan-at-noise-1")
}

// BenchmarkBlossomScalability validates the paper's §5 scalability claim:
// "the centralized scheduler can generate a grouping plan for 1,000 jobs
// in a few seconds".
func BenchmarkBlossomScalability(b *testing.B) {
	zoo := workload.Zoo()
	var jobs []*job.Job
	for i := 0; i < 1000; i++ {
		m := zoo[i%len(zoo)]
		jobs = append(jobs, job.New(job.ID(i), m, 1, 100000, 0))
	}
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := cfg.Plan(jobs, 64)
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkMaxWeightMatching500 times the Blossom algorithm itself on a
// 500-vertex complete graph.
func BenchmarkMaxWeightMatching500(b *testing.B) {
	n := 500
	var edges []blossom.Edge
	w := 0.1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w = w*1.000003 + 0.0001
			if w > 1 {
				w = 0.1
			}
			edges = append(edges, blossom.Edge{I: i, J: j, Weight: w})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blossom.MaxWeightMatching(n, edges, false)
	}
}

// benchTrace is a single truncated trace reused by the ablation benches.
func benchTrace() trace.Trace {
	cfg := trace.PhillyConfigs(64)[0]
	cfg.Jobs = 250
	return trace.Generate(cfg)
}

// BenchmarkAblationGainGate compares Muri-L with and without the
// merge-benefit gate (DESIGN.md §4): without it every positive-efficiency
// pair merges, which slows jobs with no queueing benefit.
func BenchmarkAblationGainGate(b *testing.B) {
	tr := benchTrace()
	cfg := sim.DefaultConfig()
	var gated, ungated metrics.Summary
	for i := 0; i < b.N; i++ {
		gated = sim.Run(cfg, tr, sched.NewMuriL()).Summary
		open := sched.NewMuriL()
		open.Label = "muri-l-nogate"
		open.Grouping.Gate = core.GateNone
		ungated = sim.Run(cfg, tr, open).Summary
	}
	b.ReportMetric(metrics.Speedup(ungated.AvgJCT, gated.AvgJCT), "jct-speedup-from-gate")
}

// BenchmarkAblationContention sweeps the contention factor α of the
// interleaving execution model.
func BenchmarkAblationContention(b *testing.B) {
	tr := benchTrace()
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0, 0.08, 0.2} {
			cfg := sim.DefaultConfig()
			cfg.Interleave = interleave.Config{Overhead: alpha}
			p := sched.NewMuriS()
			p.Grouping.Interleave = cfg.Interleave
			res := sim.Run(cfg, tr, p)
			if i == b.N-1 {
				b.ReportMetric(res.Summary.AvgJCT.Minutes(),
					"avg-jct-min-alpha-"+trimFloat(alpha))
			}
		}
	}
}

// BenchmarkAblationSchedulingInterval sweeps the scheduling interval
// (the paper uses six minutes to bound preemption overhead).
func BenchmarkAblationSchedulingInterval(b *testing.B) {
	tr := benchTrace()
	for i := 0; i < b.N; i++ {
		for _, interval := range []time.Duration{time.Minute, 6 * time.Minute, 30 * time.Minute} {
			cfg := sim.DefaultConfig()
			cfg.Interval = interval
			res := sim.Run(cfg, tr, sched.NewMuriL())
			if i == b.N-1 {
				b.ReportMetric(res.Summary.AvgJCT.Minutes(), "avg-jct-min-interval-"+interval.String())
			}
		}
	}
}

func trimFloat(f float64) string {
	s := time.Duration(f * float64(time.Second)).String()
	return s
}

// BenchmarkSimulatorThroughput times one full simulation run of a
// 250-job trace under Muri-S — the unit of work behind every figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := benchTrace()
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(cfg, tr, sched.NewMuriS())
		if res.Summary.Jobs != len(tr.Specs) {
			b.Fatal("incomplete run")
		}
	}
}

// BenchmarkExplainOverhead prices the decision-provenance tax: the same
// 250-job simulator run with provenance off (the nil-gated default —
// every cause annotation short-circuits before allocating) and with a
// live explain.Builder folding the synthesized record stream. The two
// sub-benchmark ns/op lines land side by side in BENCH_sched.json; the
// budget is <3% on the scheduling hot path.
func BenchmarkExplainOverhead(b *testing.B) {
	tr := benchTrace()
	b.Run("nil-gated", func(b *testing.B) {
		cfg := sim.DefaultConfig()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := sim.Run(cfg, tr, sched.NewMuriS())
			if res.Summary.Jobs != len(tr.Specs) {
				b.Fatal("incomplete run")
			}
		}
	})
	b.Run("provenance-on", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig()
			cfg.Explain = explain.NewBuilder()
			res := sim.Run(cfg, tr, sched.NewMuriS())
			if res.Summary.Jobs != len(tr.Specs) {
				b.Fatal("incomplete run")
			}
			at, ok := cfg.Explain.AttributionOf(tr.Specs[0].ID)
			if !ok || !at.Done {
				b.Fatal("provenance run produced no attribution")
			}
		}
	})
}

// BenchmarkPredictionOnline times a full prediction-mode run (DESIGN.md
// §13): the 250-job trace under ±50% profile drift with the online
// estimator learning from completions and SRTF ranking by its
// predictions. Reported metrics track the prediction-mode row in
// BENCH_sched.json: the estimator's mean absolute relative error, how
// many completions were scored, and how many beliefs were re-seeded.
func BenchmarkPredictionOnline(b *testing.B) {
	tr := benchTrace()
	var meanErr float64
	var scored, reseeds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := profile.NewOnline()
		cfg := sim.DefaultConfig()
		cfg.Estimator = est
		cfg.Drift = &profile.Drift{Amplitude: 0.5, Seed: 11}
		res := sim.Run(cfg, tr, sched.SRTFPredicted(est))
		if res.Summary.Jobs != len(tr.Specs) {
			b.Fatal("incomplete run")
		}
		meanErr, scored = est.Error()
		_, _, reseeds = est.Stats()
	}
	b.ReportMetric(meanErr, "pred-err")
	b.ReportMetric(float64(scored), "pred-scored")
	b.ReportMetric(float64(reseeds), "pred-reseeds")
}

// benchSchedScale replays one full Philly trace end-to-end through the
// event-driven simulator under Muri-L — the whole-system scale runs
// `make bench-sched-scale` appends to BENCH_sched.json. Heap and
// matcher-pool counters are reported so the record tracks how hard the
// scheduling-path machinery worked, not just how long.
func benchSchedScale(b *testing.B, traceIdx int) {
	tr := trace.Generate(trace.PhillyConfigs(64)[traceIdx])
	cfg := sim.DefaultConfig()
	cfg.EventDriven = true
	var res sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = sim.Run(cfg, tr, sched.NewMuriL())
		if res.Summary.Jobs != len(tr.Specs) {
			b.Fatalf("incomplete run: %d/%d jobs", res.Summary.Jobs, len(tr.Specs))
		}
	}
	b.ReportMetric(float64(res.Heap.Peak), "heap-peak")
	b.ReportMetric(float64(res.Heap.Rebuilds), "heap-rebuilds")
	b.ReportMetric(float64(res.Heap.Fixes), "heap-fixes")
	b.ReportMetric(blossom.PoolStats().HitRate(), "pool-hit-rate")
}

// BenchmarkSchedScale2000 is the trace2 (2,000 jobs) end-to-end run.
func BenchmarkSchedScale2000(b *testing.B) { benchSchedScale(b, 1) }

// BenchmarkSchedScale5755 is the trace4 (5,755 jobs) end-to-end run —
// the paper's largest trace, exercising sparse grouping, the pooled
// matcher, and the completion heap at full scale.
func BenchmarkSchedScale5755(b *testing.B) { benchSchedScale(b, 3) }

// benchSchedScaleSharded is the sharded-incremental counterpart of
// benchSchedScale: the same end-to-end replay under the muri-l-scale
// policy (quantized estimates, incremental replay, the given shard
// count), reporting the planner's reuse counters next to the usual
// scheduling-path metrics.
func benchSchedScaleSharded(b *testing.B, gen trace.GenConfig, shards int) {
	tr := trace.Generate(gen)
	cfg := sim.DefaultConfig()
	cfg.EventDriven = true
	var res sim.Result
	var plan metrics.ShardStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sched.NewMuriLScale(shards)
		res = sim.Run(cfg, tr, p)
		if res.Summary.Jobs != len(tr.Specs) {
			b.Fatalf("incomplete run: %d/%d jobs", res.Summary.Jobs, len(tr.Specs))
		}
		plan = p.PlanStats()
	}
	b.ReportMetric(100*plan.ReuseRatio(), "sweep-reuse-%")
	b.ReportMetric(float64(plan.ShardTasks), "shard-tasks")
	b.ReportMetric(float64(res.Heap.Peak), "heap-peak")
	b.ReportMetric(blossom.PoolStats().HitRate(), "pool-hit-rate")
}

// BenchmarkSchedScale5755Shards{1,4} bracket the shard sweep on the
// paper's largest trace; Shards1 isolates the incremental/quantization
// win, Shards4 adds the sharded matching cut.
func BenchmarkSchedScale5755Shards1(b *testing.B) {
	benchSchedScaleSharded(b, trace.PhillyConfigs(64)[3], 1)
}

func BenchmarkSchedScale5755Shards4(b *testing.B) {
	benchSchedScaleSharded(b, trace.PhillyConfigs(64)[3], 4)
}

// BenchmarkSchedScale10000Shards4 is the beyond-paper philly-10000 tier.
func BenchmarkSchedScale10000Shards4(b *testing.B) {
	benchSchedScaleSharded(b, trace.ScaleConfigs(64)[0], 4)
}

// BenchmarkAblationStickiness compares Muri-L with and without sticky
// groups: keeping a surviving group together across intervals avoids the
// kill/relaunch churn of rematching from scratch.
func BenchmarkAblationStickiness(b *testing.B) {
	tr := benchTrace()
	cfg := sim.DefaultConfig()
	var plain, sticky sim.Result
	for i := 0; i < b.N; i++ {
		plain = sim.Run(cfg, tr, sched.NewMuriL())
		sp := sched.NewMuriL()
		sp.Label = "muri-l-sticky"
		sp.Sticky = true
		sticky = sim.Run(cfg, tr, sp)
	}
	b.ReportMetric(float64(plain.Preemptions), "preemptions-plain")
	b.ReportMetric(float64(sticky.Preemptions), "preemptions-sticky")
	b.ReportMetric(metrics.Speedup(plain.Summary.AvgJCT, sticky.Summary.AvgJCT), "jct-speedup-from-sticky")
}

// BenchmarkGittinsPolicy runs the Gittins-index Tiresias variant (an
// extension beyond the paper's evaluated 2D-LAS configuration) against
// Muri-L on the same trace.
func BenchmarkGittinsPolicy(b *testing.B) {
	tr := benchTrace()
	cfg := sim.DefaultConfig()
	var git, muriL sim.Result
	for i := 0; i < b.N; i++ {
		git = sim.Run(cfg, tr, sched.NewGittins())
		muriL = sim.Run(cfg, tr, sched.NewMuriL())
	}
	b.ReportMetric(metrics.Speedup(git.Summary.AvgJCT, muriL.Summary.AvgJCT), "muri-l-jct-speedup-vs-gittins")
}

// BenchmarkFidelity compares the simulator against the live prototype —
// the reproduction of the paper's "<3% simulator error" validation
// (wider tolerance here: the prototype's hardware is time-scaled sleeps).
func BenchmarkFidelity(b *testing.B) {
	var res experiments.FidelityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFidelity(experiments.DefaultFidelityConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.JCTError, "jct-error-pct")
	b.ReportMetric(100*res.MakespanError, "makespan-error-pct")
}

// BenchmarkAblationEventDriven compares fixed-interval scheduling (the
// paper's §5 prototype) with event-driven rescheduling (§3's design
// statement).
func BenchmarkAblationEventDriven(b *testing.B) {
	tr := benchTrace()
	var interval, event sim.Result
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		interval = sim.Run(cfg, tr, sched.NewMuriL())
		cfg.EventDriven = true
		event = sim.Run(cfg, tr, sched.NewMuriL())
	}
	b.ReportMetric(metrics.Speedup(interval.Summary.AvgJCT, event.Summary.AvgJCT), "jct-speedup-from-events")
}

// BenchmarkMultiResourceBaselines validates the paper's §6.1 claim that
// classic space-dimension multi-resource schedulers (DRF, Tetris)
// degenerate to SRTF-like behavior on DL workloads — whole-GPU demands
// leave nothing to pack in space — while Muri's time-dimension
// interleaving still wins.
func BenchmarkMultiResourceBaselines(b *testing.B) {
	tr := benchTrace()
	cfg := sim.DefaultConfig()
	var srtf, tetris, drf, muriS sim.Result
	for i := 0; i < b.N; i++ {
		srtf = sim.Run(cfg, tr, sched.SRTF())
		tetris = sim.Run(cfg, tr, sched.Tetris{})
		drf = sim.Run(cfg, tr, sched.DRF{})
		muriS = sim.Run(cfg, tr, sched.NewMuriS())
	}
	// Tetris ≈ SRTF (degeneration), Muri beats both.
	b.ReportMetric(metrics.Speedup(tetris.Summary.AvgJCT, srtf.Summary.AvgJCT), "srtf-jct-speedup-vs-tetris")
	b.ReportMetric(metrics.Speedup(tetris.Summary.AvgJCT, muriS.Summary.AvgJCT), "muri-s-jct-speedup-vs-tetris")
	b.ReportMetric(metrics.Speedup(drf.Summary.AvgJCT, muriS.Summary.AvgJCT), "muri-s-jct-speedup-vs-drf")
}

// benchMixedJobs builds a large candidate set spanning the whole model
// zoo and several GPU buckets with spread-out progress — the shape of a
// busy cluster's scheduling interval.
func benchMixedJobs(n int) []*job.Job {
	zoo := workload.Zoo()
	gpuMix := []int{1, 1, 1, 1, 2, 2, 4, 8}
	jobs := make([]*job.Job, n)
	for i := 0; i < n; i++ {
		j := job.New(job.ID(i), zoo[i%len(zoo)], gpuMix[i%len(gpuMix)], 100_000, 0)
		j.DoneIterations = int64(i * 37 % 80_000)
		jobs[i] = j
	}
	return jobs
}

// BenchmarkPlanLarge times Algorithm 1 end-to-end on 1,200 mixed-GPU
// jobs — beyond the paper's 1,000-job scalability claim — and reports
// the pair-efficiency cache hit rate. Repeated iterations model repeated
// scheduling intervals over a stable candidate set, the case the memo
// cache exists for.
func BenchmarkPlanLarge(b *testing.B) {
	jobs := benchMixedJobs(1200)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(cfg.Plan(jobs, 64)) == 0 {
			b.Fatal("no groups")
		}
	}
	b.ReportMetric(cfg.Cache.Stats().HitRate(), "cache-hit-rate")
}

// BenchmarkPlanLarge2000 is the Philly-trace-2 scale point (2,000 jobs):
// its single-GPU bucket crosses the sparsification threshold, so this is
// the benchmark that exercises sparse candidate graphs plus the pooled
// matcher end-to-end. Reports matcher-pool reuse alongside the cache hit
// rate.
func BenchmarkPlanLarge2000(b *testing.B) {
	jobs := benchMixedJobs(2000)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(cfg.Plan(jobs, 64)) == 0 {
			b.Fatal("no groups")
		}
	}
	b.ReportMetric(cfg.Cache.Stats().HitRate(), "cache-hit-rate")
	b.ReportMetric(blossom.PoolStats().HitRate(), "pool-hit-rate")
}

// BenchmarkScheduleHotLoop times the full Muri-S policy hot path (sort,
// candidate cut, grouping, ranking) on 1,000 jobs — the per-interval
// work the simulator performs thousands of times per figure.
func BenchmarkScheduleHotLoop(b *testing.B) {
	jobs := benchMixedJobs(1000)
	p := sched.NewMuriS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.Plan(0, jobs, 64)) == 0 {
			b.Fatal("no units")
		}
	}
	b.ReportMetric(p.Grouping.Cache.Stats().HitRate(), "cache-hit-rate")
}
