# Development entry points. `make check` is the gate every change must
# pass: gofmt, build, vet, and the full test suite under the race
# detector (the scheduling path runs worker pools and a shared cache, so
# -race is not optional).

GO ?= go

.PHONY: check fmt build vet test test-race race smoke-recover smoke-explain bench bench-sched bench-sched-scale bench-sched-scale-quick bench-ingest clean

check: fmt build vet test-race smoke-recover

# Fail if any file needs reformatting (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector. The fault-injection and drain
# tests lean on this: lease eviction, backoff requeues, and agent
# shutdown all exercise cross-goroutine state.
test-race:
	$(GO) test -race ./...

# Back-compat alias.
race: test-race

# Kill-and-recover smoke: SIGKILL a durable daemon mid-run, restart it
# from its -state-dir, and assert the executor's running groups are
# adopted (not requeued) and every job drains. Real binaries, real
# kill -9 — the one failure mode unit tests can only approximate.
smoke-recover:
	./scripts/smoke_recover.sh

# Explain/provenance smoke: run a preemption-bearing workload on a
# durable daemon, capture live `murictl explain` output, kill -9 the
# daemon, and require muritrace's offline WAL reconstruction to be
# byte-identical to the live RPC text.
smoke-explain:
	./scripts/smoke_explain.sh

# Scheduling-path microbenchmarks (ns/op, allocs/op, B/op, plus
# cache/pool hit rates), captured as a machine-readable stream in
# BENCH_sched.json for before/after comparison. See DESIGN.md
# "Performance architecture" and §6.
bench-sched:
	$(GO) test -run '^$$' -bench 'PlanLarge|ScheduleHotLoop|SimulatorThroughput|BlossomScalability|PredictionOnline|ExplainOverhead' \
		-benchtime 3x -benchmem -json . | tee BENCH_sched.json

# End-to-end scale runs: the 2,000- and 5,755-job Philly traces replayed
# through the event-driven simulator under Muri-L, plus the sharded
# incremental muri-l-scale runs (5,755 jobs at 1 and 4 shards, and the
# philly-10000 tier), appended to BENCH_sched.json. Use
# bench-sched-scale-quick (truncated traces, Shards=4, no record) for a
# smoke run.
bench-sched-scale:
	$(GO) test -run '^$$' -bench 'SchedScale' -benchtime 1x -benchmem -timeout 60m -json . | tee -a BENCH_sched.json

bench-sched-scale-quick:
	$(GO) run ./cmd/murisim -experiment scale -quick -shards 4

# Ingest throughput: a self-hosted daemon loaded at 120k submissions/min
# over both transports for 30s. Reports p50/p99 submit latency,
# accept/reject/throttle counts, and engine rounds/sec; the JSON line is
# appended to BENCH_sched.json next to the scheduling benchmarks.
bench-ingest:
	$(GO) run ./cmd/loadgen -selfhost -transport both -rate 120000 -duration 30s -json | tee -a BENCH_sched.json

# Full evaluation benchmark sweep (regenerates every table/figure once).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	rm -f BENCH_sched.json cpu.pprof mem.pprof
